// TAB-6 (ablation) — which block of Algorithm 1 rescues which instance
// type. DESIGN.md calls out the one-block-per-type structure of Section
// 3.1.1; this experiment runs block-masked variants of AlmostUniversalRV:
//   * each single block alone ("does block k solve its own type?"),
//   * leave-one-out ("is block k necessary, or do the others rescue it?").
// The runs are horizon/fuel-bounded: "no" means no rendezvous within the
// budget that the full algorithm needs, not a proof of impossibility.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace aurv;
  using agents::Instance;
  using numeric::Rational;
  bench::header("TAB-6 (ablation): block k vs instance type (Section 3.1.1)",
                "Block-masked AlmostUniversalRV variants; yes = meets within budget.");

  struct Case {
    std::string label;
    Instance instance;
  };
  const geom::Vec2 along = geom::unit_vector(0.5);
  const std::vector<Case> cases = {
      // Hard representatives — easy instances are solved by several blocks
      // incidentally, hard ones isolate the responsible mechanism.
      {"type-1 (e=1/16)", Instance(1.0, 3.0 * along + 0.8 * along.perp(), 1.0, 1, 1,
                                   Rational::from_string("33/16"), -1)},
      {"type-2 (d=5.5)", Instance::synchronous(1.0, {5.5, 0.0}, 0.0, 5, 1)},
      {"type-3 (tau=9/8)", Instance(1.0, {6.0, 1.0}, 0.0, Rational::from_string("9/8"), 1, 0, 1)},
      {"type-4 (v=5/4)", Instance(1.0, {5.0, 0.0}, 0.0, 1, Rational::from_string("5/4"), 0, 1)},
  };

  struct Variant {
    std::string name;
    unsigned mask;
  };
  std::vector<Variant> variants;
  for (int block = 1; block <= 4; ++block) {
    variants.push_back({"only-b" + std::to_string(block), 1u << (block - 1)});
  }
  for (int block = 1; block <= 4; ++block) {
    variants.push_back({"without-b" + std::to_string(block), 0b1111u & ~(1u << (block - 1))});
  }
  variants.push_back({"full", 0b1111u});

  std::printf("%-18s", "instance \\ variant");
  for (const Variant& variant : variants) std::printf(" %-11s", variant.name.c_str());
  std::printf("\n");

  // Phase index under a masked variant's own schedule.
  const auto masked_phase_at = [](unsigned mask, const numeric::Rational& elapsed) {
    numeric::Rational total = 0;
    for (std::uint32_t i = 1; i <= 30; ++i) {
      for (int block = 1; block <= 4; ++block) {
        if (mask & (1u << (block - 1))) total += core::aurv_block_duration(i, block);
      }
      if (elapsed < total) return i;
    }
    return 30u;
  };

  for (const Case& test : cases) {
    std::printf("%-18s", test.label.c_str());
    for (const Variant& variant : variants) {
      sim::EngineConfig config;
      config.max_events = 2'000'000;
      const unsigned mask = variant.mask;
      const sim::SimResult result =
          sim::Engine(test.instance, config).run([mask] {
            return core::almost_universal_rv_blocks(mask);
          });
      if (result.met) {
        char cell[32];
        std::snprintf(cell, sizeof cell, "yes(p%u)",
                      masked_phase_at(mask, result.meet_window_start));
        std::printf(" %-11s", cell);
      } else {
        std::printf(" %-11s", "no");
      }
    }
    std::printf("\n");
  }

  std::printf(
      "\nReading: the diagonal of the only-bk columns shows each block solving\n"
      "the type it was designed for; off-diagonal 'yes' cells quantify the\n"
      "redundancy between the search-based blocks (blocks 1/3/4 all contain\n"
      "planar searches); leave-one-out rows show whether any single block is\n"
      "strictly necessary for the hard representative of its type.\n"
      "Note: phase indices reported against the masked variant's own schedule.\n");
  return 0;
}
