// TAB-3 — per-type cost scaling (the Lemmas 3.2-3.5 shape): meet time as a
// function of the governing parameter of each type:
//   type 1: the margin e = t - (dist_proj - r)  (blows up as e -> 0+)
//   type 2: the wake-up delay t                 (benign above the boundary)
//   type 3: the clock ratio tau                 (easier as the skew grows)
//   type 4: the speed ratio v                   (fixed point moves with v)
#include <cmath>

#include "algo/latecomers.hpp"
#include "bench_util.hpp"
#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace aurv;
  using agents::Instance;
  using numeric::Rational;
  bench::header("TAB-3: per-type scaling (Lemmas 3.2-3.5)",
                "Meet time / events vs the governing parameter of each type.");

  const auto run = [](const Instance& instance, std::uint64_t fuel) {
    sim::EngineConfig config;
    config.max_events = fuel;
    return sim::Engine(instance, config).run([] { return core::almost_universal_rv(); });
  };

  bench::section(
      "type 1: margin e = t - (dist_proj - r); rotated line phi=1, dp=3, r=1");
  bench::row("%-10s %-8s %-14s %-9s %-12s", "e", "met", "log2(meet t)", "phase", "events");
  const geom::Vec2 along1 = geom::unit_vector(0.5);
  for (const double e : {4.0, 1.0, 0.25, 0.0625, 0.02}) {
    const Instance instance(1.0, 3.0 * along1 + 0.8 * along1.perp(), 1.0, 1, 1,
                            Rational::from_double(2.0 + e), -1);
    const sim::SimResult result = run(instance, 120'000'000);
    bench::row("%-10.4f %-8s %-14.2f %-9u %-12llu", e, result.met ? "yes" : "no",
               result.met && result.meet_time > 1 ? std::log2(result.meet_time) : 0.0,
               result.met ? core::aurv_phase_at(result.meet_window_start) : 0,
               static_cast<unsigned long long>(result.events));
  }

  bench::section("type 2: delay t above the boundary t* = 4.5 (d=5.5, r=1)");
  bench::row("%-10s %-8s %-14s %-9s %-12s", "t", "met", "log2(meet t)", "phase", "events");
  for (const char* t : {"23/5", "5", "6", "10", "20"}) {
    const Instance instance =
        Instance::synchronous(1.0, {5.5, 0.0}, 0.0, Rational::from_string(t), 1);
    const sim::SimResult result = run(instance, 60'000'000);
    bench::row("%-10s %-8s %-14.2f %-9u %-12llu", t, result.met ? "yes" : "no",
               result.met && result.meet_time > 1 ? std::log2(result.meet_time) : 0.0,
               result.met ? core::aurv_phase_at(result.meet_window_start) : 0,
               static_cast<unsigned long long>(result.events));
  }

  bench::section("type 3: clock ratio tau (d~6, r=1, t=0)");
  bench::row("%-10s %-8s %-14s %-9s %-12s", "tau", "met", "log2(meet t)", "phase", "events");
  for (const char* tau : {"9/8", "5/4", "3/2", "2", "4", "1/2", "1/4"}) {
    const Instance instance(1.0, {6.0, 1.0}, 0.0, Rational::from_string(tau), 1, 0, 1);
    const sim::SimResult result = run(instance, 60'000'000);
    // Meet times can be astronomically large (the 2^(15 i^2) waits); report
    // log2 for readability.
    const double log_meet = result.met && result.meet_time > 0
                                ? std::log2(result.meet_time)
                                : 0.0;
    bench::row("%-10s %-8s 2^%-12.2f %-9u %-12llu", tau, result.met ? "yes" : "no", log_meet,
               result.met ? core::aurv_phase_at(result.meet_window_start) : 0,
               static_cast<unsigned long long>(result.events));
  }

  bench::section("type 4: speed ratio v (tau=1, t=0, chi=+1, phi=0, d=5, r=1)");
  bench::row("%-10s %-8s %-14s %-9s %-12s", "v", "met", "log2(meet t)", "phase", "events");
  for (const char* v : {"5/4", "3/2", "2", "3", "5", "1/2", "1/4"}) {
    const Instance instance(1.0, {5.0, 0.0}, 0.0, 1, Rational::from_string(v), 0, 1);
    const sim::SimResult result = run(instance, 120'000'000);
    bench::row("%-10s %-8s %-14.2f %-9u %-12llu", v, result.met ? "yes" : "no",
               result.met && result.meet_time > 1 ? std::log2(result.meet_time) : 0.0,
               result.met ? core::aurv_phase_at(result.meet_window_start) : 0,
               static_cast<unsigned long long>(result.events));
  }

  std::printf(
      "\nShape checks: the rendezvous phase climbs as the governing parameter\n"
      "approaches its hard limit — e -> 0+ for type 1 (impossible at e = 0,\n"
      "see TAB-4), tau -> 1 and v -> 1 for types 3/4 (the symmetry-breaking\n"
      "signal vanishes; at v = 1 exactly the fixed point recedes to\n"
      "infinity). Absolute meet times are dominated by the 2^(15 i^2) waits\n"
      "of the last phase traversed, hence reported as log2.\n");
  return 0;
}
