// FIG-5 — regenerates the two cases of Figure 5 (proof of Lemma 3.9): on
// the S2 boundary (t = dist(projA,projB) - r) the dedicated algorithm walks
// each agent to its projection on the canonical line and shuttles North
// then South by t. Case 1: projB is "North" of projA in the rotated system
// — the agents end at distance exactly r when the earlier agent finishes
// its North move (time z). Case 2: projB is "South" — they end at distance
// exactly r at time z + t, after the later agent's approach.
#include <cmath>

#include "algo/boundary.hpp"
#include "bench_util.hpp"
#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace aurv;
  bench::header("FIG-5: the two cases of Lemma 3.9 (Figure 5)",
                "Dedicated S2 rendezvous; meet time pins down which case realized.");

  bench::row("%-10s %-8s %-9s %-9s %-11s %-12s %-8s", "case", "phi", "t", "met", "meet time",
             "final dist", "z / z+t");

  // The agents' shared North along L is the direction phi/2 + pi; "projB
  // North of projA" therefore means coordinate(B) > coordinate(A) along
  // that direction. Flip B's placement to realize both cases.
  for (const double phi : {0.0, geom::kPi / 2}) {
    for (const int side : {+1, -1}) {
      const geom::Vec2 along = geom::unit_vector(phi / 2.0);
      const double dist_proj = 3.0;
      const double lateral = 1.0;
      const double r = 1.0;
      const geom::Vec2 b = side * dist_proj * along + lateral * along.perp();
      const agents::Instance probe(r, b, phi, 1, 1, 0, -1);
      const agents::Instance instance =
          probe.with_delay(numeric::Rational::from_double(probe.projection_distance() - r));
      const core::Classification c = core::classify(instance, 1e-9);

      const sim::SimResult result = sim::Engine(instance, {}).run([&instance] {
        return algo::boundary_s2_algorithm(instance);
      });

      // z = time for the earlier agent to reach its projection and finish
      // the North move: |projection walk| + t.
      const geom::Line line = instance.canonical_line();
      const double walk = line.project(geom::Vec2{0, 0}).norm();
      const double z = walk + instance.t_d();
      const bool case1 = result.met && std::fabs(result.meet_time - z) < 1e-6;
      const bool case2 = result.met && std::fabs(result.meet_time - (z + instance.t_d())) < 1e-6;
      bench::row("%-10s %-8.4f %-9.4f %-9s %-11.4f %-12.9f z=%.3f z+t=%.3f",
                 case1   ? "case-1"
                 : case2 ? "case-2"
                         : "(between)",
                 phi, instance.t_d(), result.met ? "yes" : "no", result.meet_time,
                 result.final_distance, z, z + instance.t_d());
      if (c.kind != core::InstanceKind::BoundaryS2) {
        bench::row("  (warning: classified as %s)", core::to_string(c.kind).c_str());
      }
    }
  }
  std::printf(
      "\nShape check: both cases occur, each meeting at distance exactly r\n"
      "(up to the engine's 1e-9 contact slack), at time z or z + t.\n");
  return 0;
}
