// TAB-4 — the impossibility table (Theorem 4.1 and the S1 analogue from
// [38]): for each candidate algorithm the adversary constructs a boundary
// instance aimed into the largest unused direction gap; simulation verifies
// no rendezvous within the analyzed horizon (distance stays > r), while the
// dedicated boundary algorithm solves the very same instance at distance
// exactly r.
#include <string>
#include <vector>

#include "algo/boundary.hpp"
#include "algo/cgkk.hpp"
#include "algo/latecomers.hpp"
#include "bench_util.hpp"
#include "core/adversary.hpp"
#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace aurv;
  using numeric::Rational;
  bench::header("TAB-4: the exception sets S1/S2 (Theorem 4.1 + [38])",
                "Adversary defeats every fixed algorithm on the boundary; dedicated wins.");

  struct Candidate {
    std::string name;
    sim::AlgorithmFactory factory;
  };
  const std::vector<Candidate> candidates = {
      {"AlmostUniversalRV", [] { return core::almost_universal_rv(); }},
      {"Latecomers", [] { return algo::latecomers(); }},
      {"CGKK", [] { return algo::cgkk(); }},
  };

  bench::row("%-20s %-4s %-6s %-9s %-9s %-9s %-11s %-10s", "algorithm", "set", "dirs",
             "gap(rad)", "defeated", "min dist", "dedicated", "ded dist");

  int all_ok = 0;
  int total = 0;
  for (const Candidate& candidate : candidates) {
    for (const bool s2 : {false, true}) {
      core::AdversaryConfig adversary;
      adversary.analysis_horizon = 2048;
      adversary.r = 1.0;
      adversary.t = 2;
      const core::AdversaryReport report =
          s2 ? core::construct_s2_counterexample(candidate.factory, adversary)
             : core::construct_s1_counterexample(candidate.factory, adversary);

      sim::EngineConfig config;
      config.horizon = Rational(2048);
      config.max_events = 6'000'000;
      const sim::SimResult defeat =
          sim::Engine(report.instance, config).run(candidate.factory);

      const sim::SimResult dedicated =
          sim::Engine(report.instance, {}).run([&report, s2] {
            return s2 ? algo::boundary_s2_algorithm(report.instance)
                      : algo::boundary_s1_algorithm(report.instance);
          });

      const bool ok = !defeat.met && defeat.min_distance_seen > report.instance.r() &&
                      dedicated.met;
      ++total;
      if (ok) ++all_ok;
      bench::row("%-20s %-4s %-6zu %-9.4f %-9s %-9.4f %-11s %-10.6f",
                 candidate.name.c_str(), s2 ? "S2" : "S1", report.directions_used,
                 report.angular_gap, defeat.met ? "NO" : "yes", defeat.min_distance_seen,
                 dedicated.met ? "meets" : "FAILS", dedicated.final_distance);
    }
  }
  std::printf("\nvalidated: %d/%d (expected: all defeated + all dedicated meet)\n", all_ok,
              total);
  std::printf(
      "Shape check: the boundary sets are unreachable for every fixed\n"
      "algorithm (countably many directions vs a continuum), yet each\n"
      "individual boundary instance is feasible — Section 4's \"we miss\n"
      "little and cannot avoid it altogether\".\n");
  return all_ok == total ? 0 : 1;
}
