// KERN — google-benchmark micro-kernels for the library's hot paths: exact
// rational time arithmetic, the closest-approach solver, instruction-stream
// generation, and end-to-end simulator event throughput.
//
// Run with --json[=path] to additionally write a flat { name -> ns/op }
// baseline file (default BENCH_micro.json); see bench/bench_json.hpp.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>

#include "bench_json.hpp"

#include "algo/cow_walk.hpp"
#include "core/almost_universal.hpp"
#include "algo/latecomers.hpp"
#include "gather/engine.hpp"
#include "geom/closest_approach.hpp"
#include "sim/batch.hpp"
#include "numeric/filter.hpp"
#include "numeric/rational.hpp"
#include "program/combinators.hpp"
#include "sim/engine.hpp"

namespace {

using aurv::numeric::BigInt;
using aurv::numeric::Rational;

void BM_RationalAddSmall(benchmark::State& state) {
  const Rational a(BigInt(355), BigInt(113));
  const Rational b(BigInt(-22), BigInt(7));
  for (auto _ : state) {
    Rational c = a;
    c += b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_RationalAddSmall);

void BM_RationalAddHuge(benchmark::State& state) {
  // The simulator's worst realistic case: a phase-5 wait boundary plus a
  // dyadic offset (hundreds of bits of integer part).
  const Rational a = Rational::pow2(375) + Rational::dyadic(3, 7);
  const Rational b = Rational::dyadic(5, 9);
  for (auto _ : state) {
    Rational c = a;
    c += b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_RationalAddHuge);

void BM_RationalCompareHuge(benchmark::State& state) {
  const Rational a = Rational::pow2(375) + Rational::dyadic(3, 7);
  const Rational b = Rational::pow2(375) + Rational::dyadic(5, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a < b);
  }
}
BENCHMARK(BM_RationalCompareHuge);

void BM_FilteredCompareFastPath(benchmark::State& state) {
  // Two cleanly separated dyadic values: the double-interval tier answers
  // every comparison (filter.fast_hits). The floor the filter puts under a
  // hot comparison.
  using aurv::numeric::Filtered;
  const Filtered a(Rational::dyadic(3, 7));
  const Filtered b(Rational::dyadic(5, 9));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a < b);
  }
}
BENCHMARK(BM_FilteredCompareFastPath);

void BM_FilteredCompareNearTie(benchmark::State& state) {
  // Values whose 2-ulp intervals overlap but whose mantissas still fit two
  // limbs: the comparison escalates to the Dyadic128 tier (filter.limb2_hits)
  // and is settled there without touching Rational.
  using aurv::numeric::Filtered;
  const Filtered a(Rational::pow2(60) + Rational::dyadic(3, 60));
  const Filtered b(Rational::pow2(60) + Rational::dyadic(5, 61));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a < b);
  }
}
BENCHMARK(BM_FilteredCompareNearTie);

void BM_FilteredAddHuge(benchmark::State& state) {
  // The same phase-5 worst case as BM_RationalAddHuge pushed through the
  // filtered kernel: the 383-bit numerator overflows Dyadic128, so this
  // measures the escaped tier — Rational arithmetic plus the interval
  // rebuild. The overhead ceiling of the ladder.
  using aurv::numeric::Filtered;
  const Filtered a(Rational::pow2(375) + Rational::dyadic(3, 7));
  const Filtered b(Rational::dyadic(5, 9));
  for (auto _ : state) {
    Filtered c = a;
    c += b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_FilteredAddHuge);

void BM_FilteredAddModerate(benchmark::State& state) {
  // Moderate-phase event times (the BatchSweepThousand regime): mantissas
  // stay within two limbs, so accumulation runs entirely in the Dyadic128
  // tier — the case the engine's += leans on.
  using aurv::numeric::Filtered;
  const Filtered a(Rational::pow2(60) + Rational::dyadic(3, 7));
  const Filtered b(Rational::dyadic(5, 9));
  for (auto _ : state) {
    Filtered c = a;
    c += b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_FilteredAddModerate);

void BM_BigIntMul(benchmark::State& state) {
  const BigInt a = BigInt::pow2(static_cast<std::uint64_t>(state.range(0))) - BigInt(12345);
  const BigInt b = BigInt::pow2(static_cast<std::uint64_t>(state.range(0))) - BigInt(54321);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMul)->Arg(64)->Arg(256)->Arg(1024);

void BM_ClosestApproach(benchmark::State& state) {
  const aurv::geom::Vec2 offset{3.0, 4.0};
  const aurv::geom::Vec2 velocity{-1.0, -0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(aurv::geom::closest_approach(offset, velocity, 10.0));
    benchmark::DoNotOptimize(aurv::geom::first_contact(offset, velocity, 1.0, 10.0));
  }
}
BENCHMARK(BM_ClosestApproach);

void BM_PlanarCowWalkGeneration(benchmark::State& state) {
  const auto i = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    auto walk = aurv::algo::planar_cow_walk(i);
    while (walk.next()) ++instructions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_PlanarCowWalkGeneration)->Arg(2)->Arg(4)->Arg(6);

void BM_TakeDurationSlicing(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(aurv::program::take_duration(
        aurv::core::almost_universal_rv(), Rational::pow2(8)));
  }
}
BENCHMARK(BM_TakeDurationSlicing);

void BM_GatherEngineThreeAgents(benchmark::State& state) {
  // Multi-agent window processing: O(n^2) pair checks per event.
  const std::vector<aurv::gather::GatherAgent> agents = {
      {{0.0, 0.0}, 0}, {{200.0, 0.0}, 1}, {{-200.0, 50.0}, 2}};
  std::uint64_t events = 0;
  for (auto _ : state) {
    aurv::gather::GatherConfig config;
    config.r = 0.5;
    config.max_events = static_cast<std::uint64_t>(state.range(0));
    const aurv::gather::GatherResult result =
        aurv::gather::GatherEngine(agents, config).run([] {
          return aurv::algo::latecomers();
        });
    events += result.events;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_GatherEngineThreeAgents)->Arg(10'000);

void BM_BatchSweepScaling(benchmark::State& state) {
  // Thread-pool scaling of the sweep runner on independent never-meeting
  // simulations.
  std::vector<aurv::agents::Instance> instances;
  for (int k = 0; k < 24; ++k) {
    instances.push_back(
        aurv::agents::Instance::synchronous(0.25, {300.0 + k, 0.0}, 0.0, 0, 1));
  }
  aurv::sim::EngineConfig config;
  config.max_events = 20'000;
  for (auto _ : state) {
    const auto results = aurv::sim::run_sweep(
        instances, [] { return aurv::core::almost_universal_rv(); }, config,
        static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 24 * 20'000);
}
BENCHMARK(BM_BatchSweepScaling)->Arg(1)->Arg(4)->Arg(16);

void BM_BatchSweepThousand(benchmark::State& state) {
  // The acceptance workload for numeric-stack optimizations: a sweep of
  // 1000 independent AlmostUniversalRV instances, auto-threaded. Dominated
  // by exact rational event arithmetic.
  std::vector<aurv::agents::Instance> instances;
  instances.reserve(1000);
  for (int k = 0; k < 1000; ++k) {
    instances.push_back(aurv::agents::Instance::synchronous(
        0.25, {300.0 + 0.25 * k, 0.0}, 0.0, 0, 1));
  }
  aurv::sim::EngineConfig config;
  config.max_events = 500;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto results = aurv::sim::run_sweep(
        instances, [] { return aurv::core::almost_universal_rv(); }, config, 0);
    for (const auto& result : results) events += result.events;
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_BatchSweepThousand)->Unit(benchmark::kMillisecond);

void BM_EngineEventThroughput(benchmark::State& state) {
  // A never-meeting symmetric instance driven by the full Algorithm 1:
  // measures end-to-end events/second of the exact-time engine.
  const aurv::agents::Instance instance =
      aurv::agents::Instance::synchronous(0.25, {500.0, 0.0}, 0.0, 0, 1);
  std::uint64_t events = 0;
  for (auto _ : state) {
    aurv::sim::EngineConfig config;
    config.max_events = static_cast<std::uint64_t>(state.range(0));
    const aurv::sim::SimResult result =
        aurv::sim::Engine(instance, config)
            .run([] { return aurv::core::almost_universal_rv(); });
    events += result.events;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(10'000)->Arg(100'000);

void BM_FilteredEngineThroughput(benchmark::State& state) {
  // The filtered-kernel acceptance workload: the same never-meeting
  // Algorithm 1 drive as BM_EngineEventThroughput, with the numeric ladder
  // pinned to the requested mode — 0 = full filter (interval + Dyadic128
  // tiers live), 1 = exact-rational-only (every operation and comparison
  // forced to the Rational authority, as under AURV_EXACT_ONLY=1). The
  // ratio of the /1 row to the /0 row is the filter's measured speedup on
  // identical work; results are byte-identical by the soundness contract.
  const bool exact_only = state.range(1) != 0;
  aurv::numeric::set_filter_exact_only(exact_only);
  const aurv::agents::Instance instance =
      aurv::agents::Instance::synchronous(0.25, {500.0, 0.0}, 0.0, 0, 1);
  std::uint64_t events = 0;
  for (auto _ : state) {
    aurv::sim::EngineConfig config;
    config.max_events = static_cast<std::uint64_t>(state.range(0));
    const aurv::sim::SimResult result =
        aurv::sim::Engine(instance, config)
            .run([] { return aurv::core::almost_universal_rv(); });
    events += result.events;
    benchmark::DoNotOptimize(result);
  }
  aurv::numeric::set_filter_exact_only(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_FilteredEngineThroughput)
    ->Args({10'000, 0})
    ->Args({10'000, 1})
    ->Args({100'000, 0})
    ->Args({100'000, 1});

}  // namespace

int main(int argc, char** argv) {
  // Strip --json[=path] before handing the remaining flags to benchmark.
  bool json = false;
  std::string json_path = "BENCH_micro.json";
  int out = 1;
  for (int in = 1; in < argc; ++in) {
    if (std::strcmp(argv[in], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[in], "--json=", 7) == 0) {
      json = true;
      json_path = argv[in] + 7;
    } else {
      argv[out++] = argv[in];
    }
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (json) {
    aurv::bench::JsonCaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    try {
      aurv::bench::write_json(json_path, reporter.results());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 1;
    }
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
