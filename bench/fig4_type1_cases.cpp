// FIG-4 — regenerates the case analysis of Figure 4 (proof of Lemma 3.2):
// during the positive/negative moves along the canonical line, rendezvous
// realizes either as (a) the projections of A and B crossing (a time u with
// projA(u) = projB(u) inside the window) or (b) the projection gap shrinking
// monotonically to at most r - e/2 without crossing. For a sweep of type-1
// instances we simulate AlmostUniversalRV with tracing and report which
// case occurred.
#include <cmath>

#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "bench_util.hpp"
#include "geom/angle.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"

int main() {
  using namespace aurv;
  bench::header("FIG-4: positive/negative move cases (Figure 4, Lemma 3.2)",
                "Projection-crossing (a) vs monotone-shrink (b) at the meeting.");

  bench::row("%-28s %-7s %-9s %-11s %-11s %-6s", "instance (dp, lat, t, phi)", "kind",
             "met", "meet time", "proj gap", "case");

  struct Config {
    double dist_proj;
    double lateral;
    double t;
    double phi;
  };
  const Config configs[] = {
      {2.0, 0.6, 1.5, 0.0},          {2.0, 1.2, 1.8, 0.0},
      {1.5, 0.4, 1.0, 0.0},          {2.0, 0.5, 1.5, geom::kPi / 2},
      {2.5, 0.8, 2.0, geom::kPi / 4}, {1.2, 0.3, 4.0, 0.0},
  };
  for (const Config& config : configs) {
    const geom::Vec2 along = geom::unit_vector(config.phi / 2.0);
    const geom::Vec2 b = config.dist_proj * along + config.lateral * along.perp();
    const agents::Instance instance(1.0, b, config.phi, 1, 1,
                                    numeric::Rational::from_double(config.t), -1);
    const core::Classification c = core::classify(instance);

    sim::EngineConfig engine_config;
    engine_config.max_events = 30'000'000;
    engine_config.trace_capacity = 1 << 18;
    const sim::SimResult result = sim::Engine(instance, engine_config)
                                      .run([] { return core::almost_universal_rv(); });

    // Figure 4's dichotomy, computed by the trace-analytics module.
    const auto figure4 = sim::classify_figure4_case(instance, result.trace);
    const auto gaps = sim::projection_gap_series(instance, result.trace);
    const double last_gap = gaps.empty() ? 0.0 : std::fabs(gaps.back().signed_gap);
    const char* case_label = "-";
    if (result.met && figure4) {
      case_label = *figure4 == sim::Figure4Case::Crossing ? "(a)" : "(b)";
    }
    bench::row("(%.1f, %.1f, %.1f, %.2f)%*s %-7s %-9s %-11.4f %-11.4f %-6s", config.dist_proj,
               config.lateral, config.t, config.phi, 6, "", core::to_string(c.kind).c_str(),
               result.met ? "yes" : "no", result.meet_time, last_gap, case_label);
  }
  std::printf(
      "\nShape check: every type-1 instance meets; both Figure-4 cases occur\n"
      "across the sweep, and the projection gap at the meeting is <= r.\n");
  return 0;
}
