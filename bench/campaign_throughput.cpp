// BENCH-campaign — end-to-end throughput of the campaign runner: how many
// simulation runs per second the sharded work-queue + streaming aggregation
// pipeline sustains, at 1 thread and at hardware concurrency, with and
// without the JSONL sink; plus the gathering-census pipeline (gatherx) on
// the same harness. Writes BENCH_campaign.json (same flat schema as
// BENCH_micro.json, ns/op = ns per simulation run) when given --json.
//
//   ./campaign_throughput [--json[=path]] [--count N] [--threads N]
//
// --threads pins the multi-worker rows to N workers (default: hardware
// concurrency; rows appear whenever the pinned count is > 1), so CI can
// emit comparable `threads:N` baselines regardless of the runner's core
// count.
//
// The workload is a fixed type-2 census (cheap per-run, so the harness
// overhead — job generation, per-shard aggregation, in-order flushing — is
// a visible fraction, which is exactly what this bench is watching); the
// gather rows run a disk census through both stop policies. Rows at
// hardware concurrency appear whenever more than one core is available, so
// multicore baselines expose parallel-efficiency regressions.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>

#include "bench_json.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "gatherx/census.hpp"
#include "gatherx/scenario.hpp"
#include "support/parse.hpp"

namespace {

using namespace aurv;

exp::ScenarioSpec bench_spec(std::uint64_t count) {
  exp::ScenarioSpec spec;
  spec.name = "campaign_throughput";
  spec.algorithm = "aurv";
  spec.seed = 99;
  spec.sampler = "type2";
  spec.count = count;
  spec.engine.max_events = 2'000'000;
  return spec;
}

double ns_per_run(const exp::ScenarioSpec& spec, std::size_t threads,
                  const std::string& jsonl_path) {
  exp::CampaignOptions options;
  options.threads = threads;
  options.jsonl_path = jsonl_path;
  const auto start = std::chrono::steady_clock::now();
  const exp::CampaignResult result = exp::run_campaign(spec, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (result.aggregate.runs != spec.total_jobs()) {
    std::fprintf(stderr, "campaign_throughput: short run!\n");
    std::exit(1);
  }
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
         static_cast<double>(result.aggregate.runs);
}

gatherx::GatherScenarioSpec gather_bench_spec(std::uint64_t count) {
  gatherx::GatherScenarioSpec spec;
  spec.name = "gather_census_throughput";
  spec.algorithm = "latecomers";
  spec.seed = 99;
  spec.sampler = "disk";
  spec.count = count;
  spec.ranges.n_min = 2;
  spec.ranges.n_max = 4;
  spec.ranges.wake_max = 6.0;
  spec.max_events = 500'000;
  spec.horizon = numeric::Rational(2048);
  return spec;
}

double ns_per_gather_run(const gatherx::GatherScenarioSpec& spec, std::size_t threads) {
  gatherx::CensusOptions options;
  options.threads = threads;
  const auto start = std::chrono::steady_clock::now();
  const gatherx::CensusResult result = gatherx::run_census(spec, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const std::uint64_t runs =
      result.aggregate.first_sight.runs + result.aggregate.all_visible.runs;
  if (runs != spec.total_jobs() * spec.policies.size()) {
    std::fprintf(stderr, "campaign_throughput: short gather run!\n");
    std::exit(1);
  }
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
         static_cast<double>(runs);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t count = 20'000;
  std::string json_path;
  bool write = false;
  std::size_t threads = 0;
  for (int k = 1; k < argc; ++k) {
    if (std::strncmp(argv[k], "--json", 6) == 0 &&
        (argv[k][6] == '\0' || argv[k][6] == '=')) {
      write = true;
      json_path = argv[k][6] == '=' ? argv[k] + 7 : "BENCH_campaign.json";
    } else if (std::strcmp(argv[k], "--count") == 0 && k + 1 < argc) {
      count = support::parse_uint(argv[++k], "--count");
    } else if (std::strcmp(argv[k], "--threads") == 0 && k + 1 < argc) {
      threads = support::parse_uint(argv[++k], "--threads");
    } else {
      std::fprintf(stderr, "usage: %s [--json[=path]] [--count N] [--threads N]\n", argv[0]);
      return 2;
    }
  }

  std::size_t hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  const std::size_t parallel = threads > 0 ? threads : hardware;
  const exp::ScenarioSpec spec = bench_spec(count);
  const std::string jsonl_tmp =
      (std::filesystem::temp_directory_path() / "campaign_throughput.jsonl").string();

  std::map<std::string, double> results;
  const auto record = [&](const std::string& name, double ns) {
    results[name] = ns;
    const double rate = 1e9 / ns;
    std::printf("%-44s %10.1f ns/run  %12.0f runs/s\n", name.c_str(), ns, rate);
  };

  (void)ns_per_run(spec, 1, "");  // warm-up (page cache, allocator)
  record("BM_CampaignRun/threads:1", ns_per_run(spec, 1, ""));
  if (parallel > 1) {
    record("BM_CampaignRun/threads:" + std::to_string(parallel),
           ns_per_run(spec, parallel, ""));
  }
  record("BM_CampaignRunJsonl/threads:" + std::to_string(parallel),
         ns_per_run(spec, parallel, jsonl_tmp));
  std::filesystem::remove(jsonl_tmp);

  // Gathering census (gatherx) through the same sharded harness: ns per
  // gather-engine run (each configuration runs once per stop policy).
  const gatherx::GatherScenarioSpec gather_spec =
      gather_bench_spec(std::max<std::uint64_t>(1, count / 4));
  record("BM_GatherCensus/threads:1", ns_per_gather_run(gather_spec, 1));
  if (parallel > 1) {
    record("BM_GatherCensus/threads:" + std::to_string(parallel),
           ns_per_gather_run(gather_spec, parallel));
  }

  if (write) {
    aurv::bench::write_json(json_path, results);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
