// TAB-7 (extension) — the paper's concluding open problem, explored
// empirically: gathering n >= 2 agents in the restricted shifted-frames
// model of [38], driven by our Latecomers procedure, under the two natural
// generalizations of the stop rule (see src/gather/engine.hpp).
//
// The experiment maps which configurations gather: staggered "funnel"
// lines, symmetric stars (which contain equal-delay pairs with provably
// constant gaps — ungatherable), and random-ish scattered groups.
#include <string>
#include <vector>

#include "algo/latecomers.hpp"
#include "bench_util.hpp"
#include "gather/engine.hpp"
#include "geom/angle.hpp"

int main() {
  using namespace aurv;
  using gather::GatherAgent;
  using geom::Vec2;
  using numeric::Rational;
  bench::header("TAB-7 (extension): n-agent gathering (Section 5 open problem)",
                "Latecomers-driven gathering under both stop-rule generalizations.");

  struct Scenario {
    std::string label;
    std::vector<GatherAgent> agents;
  };
  std::vector<Scenario> scenarios;

  // Two agents (sanity: must match the rendezvous results).
  scenarios.push_back({"n=2 funnel", {{Vec2{0, 0}, 0}, {Vec2{1.5, 0}, 1}}});
  scenarios.push_back({"n=2 boundary-violating", {{Vec2{0, 0}, 0}, {Vec2{3.0, 0}, 1}}});

  // Staggered funnel lines: delays comfortably exceed distances.
  scenarios.push_back({"n=3 staggered line",
                       {{Vec2{0, 0}, 0}, {Vec2{1.2, 0}, 2}, {Vec2{2.2, 0.1}, 5}}});
  scenarios.push_back({"n=4 staggered line",
                       {{Vec2{0, 0}, 0},
                        {Vec2{1.0, 0}, 2},
                        {Vec2{1.8, 0.1}, 5},
                        {Vec2{2.4, -0.1}, 9}}});

  // Symmetric star: equal-delay pairs -> constant mutual gaps, ungatherable
  // under AllVisible by *any* algorithm.
  scenarios.push_back({"n=3 equal-delay star",
                       {{Vec2{0, 0}, 0}, {Vec2{2.4, 0}, 2}, {Vec2{-2.4, 0}, 2}}});

  // Tight cluster with scattered wakes (diameter close to r already).
  scenarios.push_back({"n=4 tight cluster",
                       {{Vec2{0, 0}, 0},
                        {Vec2{0.8, 0.2}, 1},
                        {Vec2{-0.4, 0.6}, 3},
                        {Vec2{0.3, -0.7}, 6}}});

  bench::row("%-26s %-7s %-8s %-13s %-11s %-11s %-10s", "scenario", "funnel?", "policy",
             "outcome", "time", "diameter", "min diam");
  for (const Scenario& scenario : scenarios) {
    const bool funnel = gather::is_funnel_configuration(scenario.agents, 1.0);
    for (const gather::StopPolicy policy :
         {gather::StopPolicy::FirstSight, gather::StopPolicy::AllVisible}) {
      gather::GatherConfig config;
      config.r = 1.0;
      config.policy = policy;
      // FirstSight builds chains: accept diameter (n-1) * r.
      if (policy == gather::StopPolicy::FirstSight) {
        config.success_diameter =
            static_cast<double>(scenario.agents.size() - 1) * config.r + 1e-6;
      }
      config.max_events = 3'000'000;
      config.horizon = Rational(100'000);
      const gather::GatherResult result =
          gather::GatherEngine(scenario.agents, config).run([] {
            return algo::latecomers();
          });
      bench::row("%-26s %-7s %-8s %-13s %-11.4f %-11.4f %-10.4f", scenario.label.c_str(),
                 funnel ? "yes" : "no",
                 policy == gather::StopPolicy::FirstSight ? "first" : "all",
                 to_string(result.reason).c_str(), result.gather_time,
                 result.final_diameter, result.min_diameter_seen);
    }
  }

  std::printf(
      "\nReading: funnel lines gather under FirstSight (accreting chains) and\n"
      "often under AllVisible; the equal-delay star can never gather — two\n"
      "same-wake agents keep a constant mutual gap under any common program\n"
      "in shifted frames (min diam stays pinned at their distance). This is\n"
      "the executable counterpart of why the paper's two-agent analysis does\n"
      "not lift to n agents for free, and why [38]'s gathering needs its own\n"
      "'good configuration' condition.\n");
  return 0;
}
