// TAB-5 — the Section 5 extension: distinct visibility radii r_a != r_b.
// The far-sighted agent freezes at its own radius on first sighting; the
// near-sighted one keeps searching until within its radius. Re-runs the
// TAB-2 representatives under several radius splits.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace aurv;
  using agents::Instance;
  using numeric::Rational;
  bench::header("TAB-5: distinct visibility radii (Section 5)",
                "Far-sighted agent freezes at r1; run completes at r2 = min radius.");

  struct Case {
    std::string label;
    Instance instance;
    double r_a;
    double r_b;
  };
  const std::vector<Case> cases = {
      {"T1, A far-sighted", Instance::synchronous(0.75, {2.0, 0.6}, 0.0,
                                                  Rational::from_string("3/2"), -1),
       1.5, 0.75},
      {"T1, B far-sighted", Instance::synchronous(0.75, {2.0, 0.6}, 0.0,
                                                  Rational::from_string("3/2"), -1),
       0.75, 1.5},
      {"T2, A far-sighted", Instance::synchronous(0.8, {1.5, 0.0}, 0.0, 1, 1), 1.6, 0.8},
      {"T3, A far-sighted", Instance(0.8, {2.0, 0.5}, 0.3, 2, 1, 0, 1), 1.6, 0.8},
      {"T4, B far-sighted", Instance(0.6, {1.5, 0.0}, 0.0, 1, 2, 0, 1), 0.6, 1.2},
      {"T4, equal radii", Instance(0.6, {1.5, 0.0}, 0.0, 1, 2, 0, 1), 0.6, 0.6},
  };

  bench::row("%-20s %-8s %-6s %-6s %-5s %-12s %-12s", "case", "kind", "r_a", "r_b", "met",
             "meet time", "final dist");
  int successes = 0;
  for (const Case& test : cases) {
    sim::EngineConfig config;
    config.max_events = 60'000'000;
    config.r_a = test.r_a;
    config.r_b = test.r_b;
    const sim::SimResult result = sim::Engine(test.instance, config)
                                      .run([] { return core::almost_universal_rv(); });
    if (result.met) ++successes;
    bench::row("%-20s %-8s %-6.2f %-6.2f %-5s %-12.4f %-12.6f", test.label.c_str(),
               core::to_string(core::classify(test.instance).kind).c_str(), test.r_a, test.r_b,
               result.met ? "yes" : "no", result.meet_time, result.final_distance);
    if (result.met) {
      const double r_min = std::min(test.r_a, test.r_b);
      if (result.final_distance > r_min + 1e-6) {
        bench::row("  (warning: final distance exceeds min radius %.3f)", r_min);
      }
    }
  }
  std::printf("\nsuccess rate: %d/%zu (expected: all)\n", successes, cases.size());
  std::printf(
      "Shape check: rendezvous completes at the *smaller* radius in every\n"
      "split, matching Section 5's argument that AlmostUniversalRV needs no\n"
      "modification (each phase already contains a search procedure).\n");
  return successes == static_cast<int>(cases.size()) ? 0 : 1;
}
