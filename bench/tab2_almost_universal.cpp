// TAB-2 — the Theorem 3.2 validation table: AlmostUniversalRV achieves
// rendezvous on sweeps of every type it claims to cover, with the observed
// phase index, meet time and event counts. The observed phases (1-5) sit
// far below the paper's worst-case bounds — see EXPERIMENTS.md.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace aurv;
  using agents::Instance;
  using numeric::Rational;
  bench::header("TAB-2: Theorem 3.2 — AlmostUniversalRV coverage",
                "Success, observed phase, meet time and events per instance type.");

  struct Case {
    std::string label;
    Instance instance;
  };
  const geom::Vec2 diag_along = geom::unit_vector(geom::kPi / 4.0);
  const std::vector<Case> cases = {
      // --- type 1: synchronous, chi = -1 ---
      {"T1 axis line, e=0.5", Instance::synchronous(1.0, {2.0, 0.6}, 0.0,
                                                    Rational::from_string("3/2"), -1)},
      {"T1 axis line, e=3.5", Instance::synchronous(1.0, {2.0, 0.4}, 0.0, 4, -1)},
      {"T1 rotated line", Instance::synchronous(1.0, 2.0 * diag_along + 0.5 * diag_along.perp(),
                                                geom::kPi / 2, Rational::from_string("3/2"),
                                                -1)},
      // --- type 2: synchronous shift ---
      {"T2 axis offset", Instance::synchronous(1.0, {1.5, 0.0}, 0.0, 1, 1)},
      {"T2 generic offset", Instance::synchronous(1.0, {1.2, 0.9}, 0.0, 1, 1)},
      // --- type 3: clock skew ---
      {"T3 tau=2", Instance(1.0, {2.0, 0.5}, 0.3, 2, 1, Rational::from_string("3/4"), 1)},
      {"T3 tau=1/2 chi=-1", Instance(1.0, {2.0, 0.5}, 0.0, Rational::from_string("1/2"), 1, 0,
                                     -1)},
      {"T3 tau=3/2", Instance(1.0, {1.5, 0.25}, 0.0, Rational::from_string("3/2"), 1, 0, 1)},
      // --- type 4: rotation / speed ---
      {"T4 sync phi=pi/2", Instance::synchronous(0.8, {2.0, 0.0}, geom::kPi / 2, 0, 1)},
      {"T4 v=2", Instance(0.8, {1.5, 0.0}, 0.0, 1, 2, 0, 1)},
      {"T4 v=2 chi=-1", Instance(0.8, {1.0, 0.5}, 0.7, 1, 2, 0, -1)},
      {"T4 v=2 delayed", Instance(0.75, {1.2, 0.0}, 0.0, 1, 2, Rational::from_string("1/2"), 1)},
      // --- harder variants: larger distances / finer margins force later
      //     phases and exercise the 2^(15 i^2)-wait machinery ---
      {"T1 far, e=1/16",
       Instance(1.0, 3.0 * diag_along + 0.8 * diag_along.perp(), geom::kPi / 2, 1, 1,
                Rational::from_string("33/16"), -1)},
      {"T2 far (d=5.5)", Instance::synchronous(1.0, {5.5, 0.0}, 0.0, 5, 1)},
      {"T3 tau=9/8 far", Instance(1.0, {6.0, 1.0}, 0.0, Rational::from_string("9/8"), 1, 0, 1)},
      {"T4 v=5/4 far", Instance(1.0, {5.0, 0.0}, 0.0, 1, Rational::from_string("5/4"), 0, 1)},
  };

  bench::row("%-22s %-8s %-5s %-7s %-14s %-12s %-10s", "case", "kind", "met", "phase",
             "meet time", "meet dist", "events");
  int successes = 0;
  for (const Case& test : cases) {
    const core::Classification c = core::classify(test.instance);
    sim::EngineConfig config;
    config.max_events = 40'000'000;
    const sim::SimResult result = sim::Engine(test.instance, config)
                                      .run([] { return core::almost_universal_rv(); });
    if (result.met) ++successes;
    bench::row("%-22s %-8s %-5s %-7u %-14.6g %-12.6f %-10llu", test.label.c_str(),
               core::to_string(c.kind).c_str(), result.met ? "yes" : "no",
               result.met ? core::aurv_phase_at(result.meet_window_start) : 0u,
               result.meet_time, result.final_distance,
               static_cast<unsigned long long>(result.events));
  }
  std::printf("\nsuccess rate: %d/%zu (expected: all)\n", successes, cases.size());
  return successes == static_cast<int>(cases.size()) ? 0 : 1;
}
