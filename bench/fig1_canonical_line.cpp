// FIG-1 — regenerates the data behind Figure 1 of the paper: an instance
// with different chiralities, its two coordinate systems, the bisectrix D
// of the angle between the x-axes, and the canonical line L equidistant
// from both origins, with the origin projections projA / projB.
#include <cmath>

#include "agents/instance.hpp"
#include "bench_util.hpp"
#include "geom/angle.hpp"
#include "geom/canonical_line.hpp"

int main() {
  using namespace aurv;
  bench::header("FIG-1: the canonical line (Definition 2.1)",
                "Figure 1 geometry for a chi = -1 instance; plot-ready rows.");

  // An instance shaped like the paper's Figure 1: B up-right of A, both
  // x-axes visibly rotated, opposite chirality.
  const agents::Instance instance(
      /*r=*/0.5, geom::Vec2{3.0, 2.0}, /*phi=*/geom::kPi / 3, 1, 1, 0, -1);
  std::printf("instance: %s\n", instance.to_string().c_str());

  bench::section("coordinate systems (origin, x-axis direction, y-axis direction)");
  const geom::Similarity pose = instance.b_pose();
  const geom::Vec2 bx = pose.apply_linear(geom::Vec2{1, 0});
  const geom::Vec2 by = pose.apply_linear(geom::Vec2{0, 1});
  bench::row("A: origin (%.3f, %.3f)  x-> (%.3f, %.3f)  y-> (%.3f, %.3f)", 0.0, 0.0, 1.0, 0.0,
             0.0, 1.0);
  bench::row("B: origin (%.3f, %.3f)  x-> (%.3f, %.3f)  y-> (%.3f, %.3f)  (chirality -1)",
             instance.b_start().x, instance.b_start().y, bx.x, bx.y, by.x, by.y);

  bench::section("bisectrix D and canonical line L");
  const geom::Line line = instance.canonical_line();
  bench::row("D inclination      : %.6f rad (phi/2)", instance.phi() / 2.0);
  bench::row("L point            : (%.6f, %.6f)  (midpoint of origins)", line.point().x,
             line.point().y);
  bench::row("L direction        : (%.6f, %.6f)", line.direction().x, line.direction().y);
  bench::row("L inclination      : %.6f rad", line.inclination());

  bench::section("equidistance and projections (the chi = -1 feasibility quantities)");
  const geom::Vec2 proj_a = line.project(geom::Vec2{0, 0});
  const geom::Vec2 proj_b = line.project(instance.b_start());
  bench::row("dist(A, L)         : %.6f", line.distance_to(geom::Vec2{0, 0}));
  bench::row("dist(B, L)         : %.6f   (equal by Definition 2.1)",
             line.distance_to(instance.b_start()));
  bench::row("projA              : (%.6f, %.6f)", proj_a.x, proj_a.y);
  bench::row("projB              : (%.6f, %.6f)", proj_b.x, proj_b.y);
  bench::row("dist(projA, projB) : %.6f", instance.projection_distance());
  bench::row("dist(A, B)         : %.6f  (>= projection distance)", instance.initial_distance());

  bench::section("polyline samples of L for plotting (x y)");
  for (int k = -3; k <= 3; ++k) {
    const geom::Vec2 p = line.point() + static_cast<double>(k) * line.direction();
    bench::row("%.6f %.6f", p.x, p.y);
  }
  return 0;
}
