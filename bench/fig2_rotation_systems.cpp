// FIG-2 — regenerates the construction of Figure 2 / Lemma 3.2: the three
// coordinate systems Gamma (agent A's), Sigma (rotated so its x-axis is
// parallel to the canonical line L with projA not West of projB), and the
// epoch system Rot(j*pi/2^i) of phase i whose x-axis forms an angle
// 0 <= alpha < pi/2^i with Sigma's and points between East (incl.) and
// North (excl.).
//
// For each phase i the table reports the witnessing epoch j and the
// residual angle alpha — the quantity the type-1 analysis bounds.
#include <cmath>

#include "agents/instance.hpp"
#include "bench_util.hpp"
#include "geom/angle.hpp"

int main() {
  using namespace aurv;
  bench::header("FIG-2: systems Gamma, Sigma and Rot(j*pi/2^i) (Lemma 3.2)",
                "Witness epoch j and residual angle alpha per phase, alpha < pi/2^i.");

  const agents::Instance instance(
      /*r=*/1.0, geom::Vec2{2.0, 0.6}, /*phi=*/geom::kPi / 3, 1, 1,
      numeric::Rational::from_string("3/2"), -1);
  std::printf("instance: %s\n\n", instance.to_string().c_str());

  // Sigma: x-axis parallel to L, oriented so projA is not West of projB.
  const geom::Line line = instance.canonical_line();
  double sigma = line.inclination();
  const double coord_a = line.coordinate(geom::Vec2{0, 0});
  const double coord_b = line.coordinate(instance.b_start());
  if (coord_a < coord_b) sigma += geom::kPi;  // flip so projA is East-of-or-equal
  sigma = geom::normalize_angle(sigma);
  bench::row("Gamma x-axis: 0.000000 rad   Sigma x-axis: %.6f rad (parallel to L)", sigma);

  bench::section("phase table");
  bench::row("%-6s %-8s %-14s %-14s %-8s", "i", "j", "alpha", "pi/2^i", "alpha<bound");
  for (std::uint32_t i = 2; i <= 10; ++i) {
    const double bound = geom::kPi / std::ldexp(1.0, static_cast<int>(i));
    // Find the epoch j in 1..2^(i+1) whose frame satisfies both Lemma 3.2
    // properties w.r.t. Sigma.
    std::uint64_t witness = 0;
    double alpha = -1.0;
    const std::uint64_t epochs = std::uint64_t{1} << (i + 1);
    for (std::uint64_t j = 1; j <= epochs; ++j) {
      const double axis = geom::normalize_angle(
          geom::dyadic_angle(static_cast<std::int64_t>(j), i));
      // Angle of this frame's +x direction measured in Sigma.
      const double in_sigma = geom::normalize_angle(axis - sigma);
      // Property 2: direction between East (included) and North (excluded).
      if (in_sigma < geom::kPi / 2 - 1e-15) {
        // Property 1: angle with Sigma's x-axis (as lines) below pi/2^i.
        if (in_sigma < bound && (witness == 0 || in_sigma < alpha)) {
          witness = j;
          alpha = in_sigma;
        }
      }
    }
    bench::row("%-6u %-8llu %-14.9f %-14.9f %-8s", i,
               static_cast<unsigned long long>(witness), alpha, bound,
               (witness != 0 && alpha < bound) ? "yes" : "NO");
  }
  std::printf(
      "\nShape check: a witness epoch exists at every phase and alpha\n"
      "shrinks by ~2x per phase — the alignment the type-1 proof consumes.\n");
  return 0;
}
