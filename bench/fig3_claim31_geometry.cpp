// FIG-3 — regenerates the Claim 3.1 geometry of Figure 3: within the epoch
// frame Rot(j*pi/2^i), the intersection o of the frame's y-axis with the
// canonical line L lies within sqrt(x^2+y^2) of A's origin, hence at a
// dyadic height |y_o| <= 2^i reachable by PlanarCowWalk's rung grid, so the
// walk starts a LinearCowWalk from a point o' with dist(o, o') <= 1/2^i —
// which the type-1 proof needs below min{r, e}/8.
#include <cmath>

#include "agents/instance.hpp"
#include "bench_util.hpp"
#include "geom/angle.hpp"

int main() {
  using namespace aurv;
  bench::header("FIG-3: Claim 3.1 geometry (Figure 3)",
                "Distance from the walk's rung grid to the canonical line, per phase.");

  const agents::Instance instance(
      /*r=*/1.0, geom::Vec2{2.0, 0.6}, /*phi=*/geom::kPi / 3, 1, 1,
      numeric::Rational::from_string("3/2"), -1);
  const double e = instance.t_d() - (instance.projection_distance() - instance.r());
  std::printf("instance: %s\ne (margin) = %.6f\n\n", instance.to_string().c_str(), e);

  const geom::Line line = instance.canonical_line();
  const double dist_bound = instance.initial_distance();

  bench::row("%-4s %-6s %-12s %-12s %-12s %-12s %-10s", "i", "j", "alpha", "|A o|", "grid step",
             "min{r,e}/8", "ok");
  for (std::uint32_t i = 2; i <= 10; ++i) {
    // Epoch whose frame aligns with L (as in FIG-2).
    const double bound = geom::kPi / std::ldexp(1.0, static_cast<int>(i));
    std::uint64_t witness = 0;
    double alpha = 0.0;
    const std::uint64_t epochs = std::uint64_t{1} << (i + 1);
    for (std::uint64_t j = 1; j <= epochs; ++j) {
      const double axis =
          geom::normalize_angle(geom::dyadic_angle(static_cast<std::int64_t>(j), i));
      const double a = geom::line_angle_between(axis, line.inclination());
      if (a < bound) {
        witness = j;
        alpha = a;
        break;
      }
    }
    // o = intersection of the frame's y-axis (through A's origin) with L;
    // |A o| <= sqrt(x^2+y^2)/(2 cos alpha) <= sqrt(x^2+y^2).
    const double dist_a_line = line.distance_to(geom::Vec2{0, 0});
    const double dist_o = dist_a_line / std::cos(alpha);
    const double grid_step = 1.0 / std::ldexp(1.0, static_cast<int>(i));
    const double needed = std::min(instance.r(), e) / 8.0;
    bench::row("%-4u %-6llu %-12.8f %-12.8f %-12.8f %-12.8f %-10s", i,
               static_cast<unsigned long long>(witness), alpha, dist_o, grid_step, needed,
               (dist_o <= dist_bound && grid_step <= needed) ? "yes" : "not-yet");
  }
  std::printf(
      "\nShape check: |A o| stays below sqrt(x^2+y^2) = %.6f at every phase,\n"
      "and from the first phase with 1/2^i <= min{r,e}/8 the rung grid gives\n"
      "Claim 3.1's starting point within min{r,e}/8 of L.\n",
      dist_bound);
  return 0;
}
