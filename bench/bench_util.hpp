// Shared formatting helpers for the figure/table reproduction binaries.
// Each bench prints a self-describing header (which paper artifact it
// regenerates) followed by aligned rows; EXPERIMENTS.md records the
// expected shapes.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace aurv::bench {

inline void header(const char* artifact, const char* description) {
  std::printf("================================================================\n");
  std::printf("%s\n", artifact);
  std::printf("%s\n", description);
  std::printf("================================================================\n");
}

inline void section(const char* title) { std::printf("\n-- %s --\n", title); }

// printf-style row with trailing newline.
inline void row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vprintf(format, args);  // NOLINT(clang-diagnostic-format-nonliteral)
  va_end(args);
  std::printf("\n");
}

}  // namespace aurv::bench
