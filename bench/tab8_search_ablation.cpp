// TAB-8 (ablation) — the planar-search design choice the paper leaves open
// in Section 3.1.1: "spiral movements or series of parallel linear
// searches". Algorithm 1 uses the parallel-lines PlanarCowWalk; this
// experiment quantifies the trade-off against an expanding square spiral
// with the same coverage guarantee:
//   (a) solo coverage — local time for a searcher to pass within r of a
//       static target at distance d;
//   (b) rendezvous — CGKK built on each search, on type-4 instances.
#include <cmath>

#include "algo/cgkk.hpp"
#include "algo/cow_walk.hpp"
#include "algo/spiral.hpp"
#include "bench_util.hpp"
#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "program/combinators.hpp"
#include "sim/engine.hpp"

namespace {

using namespace aurv;
using agents::Instance;
using numeric::Rational;

/// Local time at which the searcher's path first passes within `r` of the
/// target: simulated as a rendezvous against a never-waking static agent.
double coverage_time(const sim::AlgorithmFactory& searcher, geom::Vec2 target, double r) {
  const Instance instance = Instance::synchronous(r, target, 0.0, 1'000'000, 1);
  sim::EngineConfig config;
  config.max_events = 8'000'000;
  const sim::SimResult result = sim::Engine(instance, config).run(
      searcher(), program::replay({}));
  return result.met ? result.meet_time : -1.0;
}

}  // namespace

int main() {
  bench::header("TAB-8 (ablation): PlanarCowWalk vs SpiralSearch (Section 3.1.1)",
                "The paper's open design choice for the planar search, quantified.");

  bench::section("search duration per phase (local time units, exact)");
  bench::row("%-6s %-16s %-16s %-8s", "i", "cow walk", "spiral", "ratio");
  for (std::uint32_t i = 1; i <= 6; ++i) {
    const double walk = algo::planar_cow_walk_duration(i).to_double();
    const double spiral = algo::spiral_search_duration(i).to_double();
    bench::row("%-6u %-16.0f %-16.0f %-8.2f", i, walk, spiral, walk / spiral);
  }

  bench::section("solo coverage: time to pass within r=0.5 of a target at distance d");
  bench::row("%-8s %-14s %-14s %-8s", "d", "cgkk (walk)", "cgkk (spiral)", "ratio");
  for (const double d : {1.0, 2.0, 4.0, 7.0}) {
    const geom::Vec2 target = d * geom::unit_vector(0.9);
    const double walk =
        coverage_time([] { return algo::cgkk(); }, target, 0.5);
    const double spiral =
        coverage_time([] { return algo::cgkk_spiral(); }, target, 0.5);
    bench::row("%-8.1f %-14.2f %-14.2f %-8.2f", d, walk, spiral,
               spiral > 0 ? walk / spiral : 0.0);
  }

  bench::section("rendezvous: type-4 instances, CGKK on each search");
  bench::row("%-26s %-12s %-12s", "instance", "walk meets", "spiral meets");
  const Instance cases[] = {
      Instance::synchronous(0.8, {2.0, 0.0}, geom::kPi / 2, 0, 1),
      Instance(0.8, {1.5, 0.0}, 0.0, 1, 2, 0, 1),
      Instance(0.8, {1.0, 0.5}, 0.7, 1, 2, 0, -1),
      Instance(1.0, {5.0, 0.0}, 0.0, 1, Rational::from_string("3/2"), 0, 1),
  };
  for (const Instance& instance : cases) {
    sim::EngineConfig config;
    config.max_events = 8'000'000;
    const sim::SimResult walk =
        sim::Engine(instance, config).run([] { return algo::cgkk(); });
    const sim::SimResult spiral =
        sim::Engine(instance, config).run([] { return algo::cgkk_spiral(); });
    char walk_cell[32];
    char spiral_cell[32];
    std::snprintf(walk_cell, sizeof walk_cell, "%s@%.5g", walk.met ? "yes" : "no",
                  walk.meet_time);
    std::snprintf(spiral_cell, sizeof spiral_cell, "%s@%.5g", spiral.met ? "yes" : "no",
                  spiral.meet_time);
    bench::row("%-26s %-12s %-12s", core::classify(instance).clause.substr(0, 24).c_str(),
               walk_cell, spiral_cell);
  }

  std::printf(
      "\nReading: both searches carry the same 1/2^i coverage guarantee, but\n"
      "the spiral visits each arm once while the cow walk re-walks every\n"
      "rung line three times — a ~4x duration cost Algorithm 1 pays for the\n"
      "simpler per-line analysis its type-1 proof performs (Claim 3.3\n"
      "reasons about individual East-West runs, which the spiral lacks).\n");
  return 0;
}
