// BENCH-search — end-to-end throughput of the branch-and-bound: how many
// parameter boxes per second the wave executor + deterministic merge
// pipeline sustains, at 1 worker and at hardware concurrency, plus the
// prune rate the interval bounds achieve on a boundary-straddling slab.
// Writes BENCH_search.json (same flat schema as BENCH_micro.json; ns/op =
// ns per evaluated box) when given --json.
//
//   ./search_throughput [--json[=path]] [--boxes N] [--shards N]
//
// --shards pins the multi-worker rows to N workers (default: hardware
// concurrency; rows appear whenever the pinned count is > 1), so CI can
// emit comparable `shards:N` baselines regardless of the runner's core
// count. A spilled-frontier row (hot set capped, cold tail in disk
// segments) runs beside the in-memory rows, and the frontier high-water
// marks are reported alongside boxes/sec.
//
// The workload is the committed type-1 worst-meet-time shape (tuple space
// over (x, t) straddling the t = |x| - r feasibility boundary), scaled up:
// per-box cost is one short engine run, so the harness overhead — wave
// assembly, bound evaluation, frontier maintenance, in-order merging — is
// a visible fraction, which is exactly what this bench is watching. A
// second workload drives the gather-tuple family (max-gather-time over a
// staggered chain's spread/delay), so the n-agent oracle's throughput is
// baselined too. Rows at hardware concurrency appear whenever more than
// one core is available, so multicore baselines expose parallel-efficiency
// regressions.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <thread>

#include "bench_json.hpp"
#include "exp/scenario.hpp"
#include "exp/search_driver.hpp"
#include "support/parse.hpp"

namespace {

using namespace aurv;
using numeric::BigInt;
using numeric::Rational;

exp::SearchSpec bench_spec(std::uint64_t boxes) {
  exp::SearchSpec spec;
  spec.name = "search_throughput";
  spec.algorithm = "aurv";
  spec.objective = "max-meet-time";
  spec.space.family = search::SearchSpace::Family::Tuple;
  spec.space.chi = -1;
  spec.space.fixed = {{"r", Rational(1)},
                      {"y", Rational(BigInt(6), BigInt(5))},
                      {"phi", Rational(0)}};
  spec.space.dim_names = {"x", "t"};
  spec.box = {search::Interval{Rational(BigInt(3), BigInt(2)), Rational(BigInt(7), BigInt(2))},
              search::Interval{Rational(0), Rational(3)}};
  spec.limits.max_boxes = boxes;
  spec.limits.wave_size = 64;
  spec.limits.min_width = Rational(BigInt(1), BigInt(1u << 20));
  spec.engine.max_events = 2'000'000;
  spec.engine.horizon = Rational(256);
  return spec;
}

exp::SearchSpec gather_bench_spec(std::uint64_t boxes) {
  exp::SearchSpec spec;
  spec.name = "gather_search_throughput";
  spec.algorithm = "latecomers";
  spec.objective = "max-gather-time";
  spec.space.family = search::SearchSpace::Family::GatherTuple;
  spec.space.fixed = {{"n", Rational(3)}, {"r", Rational(1)}, {"policy", Rational(0)}};
  spec.space.dim_names = {"spread", "delay"};
  spec.box = {search::Interval{Rational(BigInt(1), BigInt(2)), Rational(4)},
              search::Interval{Rational(0), Rational(3)}};
  spec.limits.max_boxes = boxes;
  spec.limits.wave_size = 64;
  spec.limits.min_width = Rational(BigInt(1), BigInt(1u << 20));
  spec.engine.max_events = 500'000;
  spec.engine.horizon = Rational(512);
  return spec;
}

struct BenchRun {
  double ns_per_box;
  double prune_rate;
  std::uint64_t max_frontier;      ///< open boxes, memory + disk (deterministic)
  std::uint64_t hot_high_water;    ///< boxes resident in memory at once
  std::uint64_t spilled;           ///< boxes written to disk segments
};

BenchRun run_once(const exp::SearchSpec& spec, std::size_t max_shards,
                  const std::string& spill_dir = "", std::size_t frontier_mem = 0) {
  exp::SearchOptions options;
  options.max_shards = max_shards;
  options.spill_dir = spill_dir;
  options.frontier_mem = frontier_mem;
  const auto start = std::chrono::steady_clock::now();
  const exp::SearchRunResult result = exp::run_search(spec, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (result.bnb.stats.evaluated != spec.limits.max_boxes) {
    std::fprintf(stderr, "search_throughput: short run!\n");
    std::exit(1);
  }
  const auto evaluated = static_cast<double>(result.bnb.stats.evaluated);
  const auto considered =
      evaluated + static_cast<double>(result.bnb.stats.pruned);
  return {static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
              evaluated,
          considered > 0 ? static_cast<double>(result.bnb.stats.pruned) / considered : 0.0,
          result.bnb.stats.max_frontier, result.bnb.frontier_hot_high_water,
          result.bnb.frontier_spilled};
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t boxes = 20'000;
  std::string json_path;
  bool write = false;
  std::size_t shards = 0;
  for (int k = 1; k < argc; ++k) {
    if (std::strncmp(argv[k], "--json", 6) == 0 &&
        (argv[k][6] == '\0' || argv[k][6] == '=')) {
      write = true;
      json_path = argv[k][6] == '=' ? argv[k] + 7 : "BENCH_search.json";
    } else if (std::strcmp(argv[k], "--boxes") == 0 && k + 1 < argc) {
      boxes = support::parse_uint(argv[++k], "--boxes");
    } else if (std::strcmp(argv[k], "--shards") == 0 && k + 1 < argc) {
      shards = support::parse_uint(argv[++k], "--shards");
    } else {
      std::fprintf(stderr, "usage: %s [--json[=path]] [--boxes N] [--shards N]\n", argv[0]);
      return 2;
    }
  }

  std::size_t hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  const std::size_t parallel = shards > 0 ? shards : hardware;
  const exp::SearchSpec spec = bench_spec(boxes);

  std::map<std::string, double> results;
  const auto record = [&](const std::string& name, double ns) {
    results[name] = ns;
    std::printf("%-44s %10.1f ns/box  %12.0f boxes/s\n", name.c_str(), ns, 1e9 / ns);
  };

  (void)run_once(spec, 1);  // warm-up (page cache, allocator)
  const BenchRun serial = run_once(spec, 1);
  record("BM_SearchBnb/shards:1", serial.ns_per_box);
  if (parallel > 1) {
    record("BM_SearchBnb/shards:" + std::to_string(parallel),
           run_once(spec, parallel).ns_per_box);
  }
  // The prune rate is a search-quality metric, not a time: committed so a
  // bound regression (weaker pruning) shows up in review as a diff. Same
  // for the frontier high-water mark — the memory the search would need
  // without spilling, in boxes.
  results["BM_SearchBnb/prune_rate_pct"] = serial.prune_rate * 100.0;
  std::printf("%-44s %10.2f %% of considered boxes pruned\n", "BM_SearchBnb/prune_rate_pct",
              serial.prune_rate * 100.0);
  results["BM_SearchBnb/frontier_high_water_boxes"] =
      static_cast<double>(serial.max_frontier);
  std::printf("%-44s %10.0f open boxes at peak\n", "BM_SearchBnb/frontier_high_water_boxes",
              static_cast<double>(serial.max_frontier));

  // The spilled-frontier mode on the same workload: hot set capped at 64
  // boxes, cold tail in JSONL disk segments. The ns/box delta against
  // shards:1 is the spill overhead; hot high-water is the resident memory
  // the cap actually achieved.
  // Random-suffixed: SpillDeque directories are single-owner, and two
  // bench processes on one machine must not sweep each other's segments.
  const std::string spill_dir =
      (std::filesystem::temp_directory_path() /
       ("search_throughput_spill." + std::to_string(std::random_device{}())))
          .string();
  struct TempDirJanitor {  // cleans up even when the spilled run throws
    std::string path;
    ~TempDirJanitor() {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  } spill_janitor{spill_dir};
  const BenchRun spilled = run_once(spec, 1, spill_dir, 64);
  record("BM_SearchBnbSpill/shards:1", spilled.ns_per_box);
  results["BM_SearchBnbSpill/hot_high_water_boxes"] =
      static_cast<double>(spilled.hot_high_water);
  std::printf("%-44s %10.0f boxes resident at peak (%llu spilled)\n",
              "BM_SearchBnbSpill/hot_high_water_boxes",
              static_cast<double>(spilled.hot_high_water),
              static_cast<unsigned long long>(spilled.spilled));

  // The gathering oracle (n-agent engine midpoints, reachability-bound
  // pruning) on the same branch-and-bound harness.
  const exp::SearchSpec gather_spec =
      gather_bench_spec(std::max<std::uint64_t>(1, boxes / 4));
  const BenchRun gather_serial = run_once(gather_spec, 1);
  record("BM_SearchBnbGather/shards:1", gather_serial.ns_per_box);
  if (parallel > 1) {
    record("BM_SearchBnbGather/shards:" + std::to_string(parallel),
           run_once(gather_spec, parallel).ns_per_box);
  }
  results["BM_SearchBnbGather/prune_rate_pct"] = gather_serial.prune_rate * 100.0;
  std::printf("%-44s %10.2f %% of considered boxes pruned\n",
              "BM_SearchBnbGather/prune_rate_pct", gather_serial.prune_rate * 100.0);
  results["BM_SearchBnbGather/frontier_high_water_boxes"] =
      static_cast<double>(gather_serial.max_frontier);
  std::printf("%-44s %10.0f open boxes at peak\n",
              "BM_SearchBnbGather/frontier_high_water_boxes",
              static_cast<double>(gather_serial.max_frontier));

  if (write) {
    aurv::bench::write_json(json_path, results);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
