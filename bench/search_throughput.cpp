// BENCH-search — end-to-end throughput of the branch-and-bound: how many
// parameter boxes per second the wave executor + deterministic merge
// pipeline sustains, at 1 worker and at hardware concurrency, plus the
// prune rate the interval bounds achieve on a boundary-straddling slab.
// Writes BENCH_search.json (same flat schema as BENCH_micro.json; ns/op =
// ns per evaluated box) when given --json.
//
//   ./search_throughput [--json[=path]] [--boxes N]
//
// The workload is the committed type-1 worst-meet-time shape (tuple space
// over (x, t) straddling the t = |x| - r feasibility boundary), scaled up:
// per-box cost is one short engine run, so the harness overhead — wave
// assembly, bound evaluation, frontier maintenance, in-order merging — is
// a visible fraction, which is exactly what this bench is watching. A
// second workload drives the gather-tuple family (max-gather-time over a
// staggered chain's spread/delay), so the n-agent oracle's throughput is
// baselined too. Rows at hardware concurrency appear whenever more than
// one core is available, so multicore baselines expose parallel-efficiency
// regressions.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "bench_json.hpp"
#include "exp/scenario.hpp"
#include "exp/search_driver.hpp"
#include "support/parse.hpp"

namespace {

using namespace aurv;
using numeric::BigInt;
using numeric::Rational;

exp::SearchSpec bench_spec(std::uint64_t boxes) {
  exp::SearchSpec spec;
  spec.name = "search_throughput";
  spec.algorithm = "aurv";
  spec.objective = "max-meet-time";
  spec.space.family = search::SearchSpace::Family::Tuple;
  spec.space.chi = -1;
  spec.space.fixed = {{"r", Rational(1)},
                      {"y", Rational(BigInt(6), BigInt(5))},
                      {"phi", Rational(0)}};
  spec.space.dim_names = {"x", "t"};
  spec.box = {search::Interval{Rational(BigInt(3), BigInt(2)), Rational(BigInt(7), BigInt(2))},
              search::Interval{Rational(0), Rational(3)}};
  spec.limits.max_boxes = boxes;
  spec.limits.wave_size = 64;
  spec.limits.min_width = Rational(BigInt(1), BigInt(1u << 20));
  spec.engine.max_events = 2'000'000;
  spec.engine.horizon = Rational(256);
  return spec;
}

exp::SearchSpec gather_bench_spec(std::uint64_t boxes) {
  exp::SearchSpec spec;
  spec.name = "gather_search_throughput";
  spec.algorithm = "latecomers";
  spec.objective = "max-gather-time";
  spec.space.family = search::SearchSpace::Family::GatherTuple;
  spec.space.fixed = {{"n", Rational(3)}, {"r", Rational(1)}, {"policy", Rational(0)}};
  spec.space.dim_names = {"spread", "delay"};
  spec.box = {search::Interval{Rational(BigInt(1), BigInt(2)), Rational(4)},
              search::Interval{Rational(0), Rational(3)}};
  spec.limits.max_boxes = boxes;
  spec.limits.wave_size = 64;
  spec.limits.min_width = Rational(BigInt(1), BigInt(1u << 20));
  spec.engine.max_events = 500'000;
  spec.engine.horizon = Rational(512);
  return spec;
}

struct BenchRun {
  double ns_per_box;
  double prune_rate;
};

BenchRun run_once(const exp::SearchSpec& spec, std::size_t max_shards) {
  exp::SearchOptions options;
  options.max_shards = max_shards;
  const auto start = std::chrono::steady_clock::now();
  const exp::SearchRunResult result = exp::run_search(spec, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (result.bnb.stats.evaluated != spec.limits.max_boxes) {
    std::fprintf(stderr, "search_throughput: short run!\n");
    std::exit(1);
  }
  const auto evaluated = static_cast<double>(result.bnb.stats.evaluated);
  const auto considered =
      evaluated + static_cast<double>(result.bnb.stats.pruned);
  return {static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
              evaluated,
          considered > 0 ? static_cast<double>(result.bnb.stats.pruned) / considered : 0.0};
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t boxes = 20'000;
  std::string json_path;
  bool write = false;
  for (int k = 1; k < argc; ++k) {
    if (std::strncmp(argv[k], "--json", 6) == 0 &&
        (argv[k][6] == '\0' || argv[k][6] == '=')) {
      write = true;
      json_path = argv[k][6] == '=' ? argv[k] + 7 : "BENCH_search.json";
    } else if (std::strcmp(argv[k], "--boxes") == 0 && k + 1 < argc) {
      boxes = support::parse_uint(argv[++k], "--boxes");
    } else {
      std::fprintf(stderr, "usage: %s [--json[=path]] [--boxes N]\n", argv[0]);
      return 2;
    }
  }

  std::size_t hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  const exp::SearchSpec spec = bench_spec(boxes);

  std::map<std::string, double> results;
  const auto record = [&](const std::string& name, double ns) {
    results[name] = ns;
    std::printf("%-44s %10.1f ns/box  %12.0f boxes/s\n", name.c_str(), ns, 1e9 / ns);
  };

  (void)run_once(spec, 1);  // warm-up (page cache, allocator)
  const BenchRun serial = run_once(spec, 1);
  record("BM_SearchBnb/shards:1", serial.ns_per_box);
  if (hardware > 1) {
    record("BM_SearchBnb/shards:" + std::to_string(hardware),
           run_once(spec, hardware).ns_per_box);
  }
  // The prune rate is a search-quality metric, not a time: committed so a
  // bound regression (weaker pruning) shows up in review as a diff.
  results["BM_SearchBnb/prune_rate_pct"] = serial.prune_rate * 100.0;
  std::printf("%-44s %10.2f %% of considered boxes pruned\n", "BM_SearchBnb/prune_rate_pct",
              serial.prune_rate * 100.0);

  // The gathering oracle (n-agent engine midpoints, reachability-bound
  // pruning) on the same branch-and-bound harness.
  const exp::SearchSpec gather_spec =
      gather_bench_spec(std::max<std::uint64_t>(1, boxes / 4));
  const BenchRun gather_serial = run_once(gather_spec, 1);
  record("BM_SearchBnbGather/shards:1", gather_serial.ns_per_box);
  if (hardware > 1) {
    record("BM_SearchBnbGather/shards:" + std::to_string(hardware),
           run_once(gather_spec, hardware).ns_per_box);
  }
  results["BM_SearchBnbGather/prune_rate_pct"] = gather_serial.prune_rate * 100.0;
  std::printf("%-44s %10.2f %% of considered boxes pruned\n",
              "BM_SearchBnbGather/prune_rate_pct", gather_serial.prune_rate * 100.0);

  if (write) {
    aurv::bench::write_json(json_path, results);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
