// Minimal JSON emission for the committed benchmark baseline files.
//
// `micro_kernels --json[=path]` writes a flat { benchmark name -> ns/op }
// object (default path BENCH_micro.json), and `campaign_throughput` does
// the same into BENCH_campaign.json. The committed BENCH_*.json files at
// the repo root are the perf trajectory: each optimization PR re-runs the
// kernels and updates them, so regressions are visible in review as a diff.
//
// The JSON-writing half of this header is dependency-free; the
// JsonCaptureReporter needs google-benchmark, so it is only compiled when
// the including TU has already pulled in <benchmark/benchmark.h> (as
// micro_kernels does, under AURV_BENCH). Plain chrono-based benches like
// campaign_throughput just call write_json and never link the library.
#pragma once

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace aurv::bench {

#ifdef BENCHMARK_BENCHMARK_H_  // <benchmark/benchmark.h> include guard

namespace detail {

/// google-benchmark renamed Run::error_occurred to Run::skipped in v1.8;
/// both library generations are in the wild (system packages are often
/// 1.6/1.7, the FetchContent fallback pins 1.8.3). Resolve at compile time
/// via overload ranking instead of a version macro.
template <typename RunT>
auto run_errored(const RunT& run, int) -> decltype(static_cast<bool>(run.error_occurred)) {
  return run.error_occurred;
}
template <typename RunT>
auto run_errored(const RunT& run, long) -> decltype(run.skipped != RunT::NotSkipped) {
  return run.skipped != RunT::NotSkipped;
}

}  // namespace detail

/// Console reporter that additionally collects adjusted real time per
/// benchmark (in the benchmark's time unit; all kernels here use the
/// default, nanoseconds).
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (detail::run_errored(run, 0)) continue;
      if (run.run_type != Run::RT_Iteration) continue;  // skip aggregates
      if (run.iterations == 0) continue;
      // Normalize to ns/op regardless of the benchmark's display time unit
      // (real_accumulated_time is in seconds).
      results_[run.benchmark_name()] =
          run.real_accumulated_time / static_cast<double>(run.iterations) * 1e9;
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::map<std::string, double>& results() const { return results_; }

 private:
  std::map<std::string, double> results_;
};

#endif  // BENCHMARK_BENCHMARK_H_

/// Escapes the handful of characters benchmark names can contain that JSON
/// strings cannot hold verbatim.
inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Extracts the raw `"pre_change_baseline": { ... }` block from an existing
/// baseline file, so refreshing the benchmarks section never discards the
/// historical record (the whole point of committing it). Returns "" when
/// the file or section does not exist.
inline std::string read_preserved_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::size_t key = text.find("\"pre_change_baseline\"");
  if (key == std::string::npos) return "";
  const std::size_t open = text.find('{', key);
  if (open == std::string::npos) return "";
  int depth = 0;
  for (std::size_t pos = open; pos < text.size(); ++pos) {
    if (text[pos] == '{') ++depth;
    if (text[pos] == '}' && --depth == 0)
      return text.substr(key, pos + 1 - key);
  }
  return "";
}

/// Writes { "schema": 1, "unit": "ns/op", "benchmarks": { name: ns, ... } },
/// carrying over an existing pre_change_baseline section verbatim.
inline void write_json(const std::string& path, const std::map<std::string, double>& results) {
  const std::string preserved = read_preserved_baseline(path);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) throw std::runtime_error("bench_json: cannot open " + path);
  std::fprintf(file, "{\n  \"schema\": 1,\n  \"unit\": \"ns/op\",\n  \"benchmarks\": {\n");
  std::size_t index = 0;
  for (const auto& [name, ns] : results) {
    std::fprintf(file, "    \"%s\": %.2f%s\n", json_escape(name).c_str(), ns,
                 ++index < results.size() ? "," : "");
  }
  if (preserved.empty()) {
    std::fprintf(file, "  }\n}\n");
  } else {
    std::fprintf(file, "  },\n  %s\n}\n", preserved.c_str());
  }
  std::fclose(file);
}

}  // namespace aurv::bench
