// TAB-1 — the Theorem 3.1 validation table: a structured sweep over all
// eight instance parameters, cross-checking the feasibility classifier
// against simulation ground truth:
//   * feasible & covered  -> AlmostUniversalRV meets within the budget;
//   * boundary (S1/S2)    -> the dedicated algorithm meets at distance ~ r;
//   * infeasible          -> the analytic lower bound on the distance holds
//                            throughout a long simulation.
#include <cmath>
#include <map>
#include <random>
#include <string>

#include "algo/boundary.hpp"
#include "agents/sampler.hpp"
#include "bench_util.hpp"
#include "sim/batch.hpp"
#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace aurv;
  using agents::Instance;
  using core::InstanceKind;
  using numeric::Rational;
  bench::header("TAB-1: Theorem 3.1 — feasibility characterization vs simulation",
                "Classifier verdicts cross-checked against simulated outcomes.");

  std::mt19937_64 rng(2020);
  std::uniform_real_distribution<double> lateral(0.2, 1.0);
  std::uniform_real_distribution<double> angle(0.1, geom::kTwoPi - 0.1);

  std::map<std::string, int> census;
  int checked = 0;
  int agreements = 0;

  bench::section("sweep (classification census over 600 structured instances)");
  for (int k = 0; k < 600; ++k) {
    const int chi = (k % 2 == 0) ? 1 : -1;
    const double phi = (k % 3 == 0) ? 0.0 : angle(rng);
    const Rational tau = (k % 5 == 0) ? Rational::from_string("3/2") : Rational(1);
    const Rational v = (k % 7 == 0) ? Rational(2) : Rational(1);
    const double r = 0.5 + 0.25 * (k % 3);
    const geom::Vec2 along = geom::unit_vector(phi / 2.0);
    const geom::Vec2 b =
        (1.0 + (k % 4)) * 0.8 * along + lateral(rng) * along.perp();
    const Rational t = Rational(k % 5);
    const Instance instance(r, b, phi, tau, v, t, chi);
    census[core::to_string(core::classify(instance).kind)]++;
  }
  for (const auto& [kind, count] : census) bench::row("%-18s %d", kind.c_str(), count);

  const auto check = [&](const Instance& instance, const char* expected_kind) {
    const core::Classification c = core::classify(instance, 1e-9);
    ++checked;
    sim::EngineConfig config;
    config.max_events = 20'000'000;
    bool ok = false;
    std::string observed;
    std::string detail;
    char buffer[64];
    if (c.kind == InstanceKind::Infeasible) {
      config.max_events = 1'000'000;
      const sim::SimResult result =
          sim::Engine(instance, config).run([] { return core::almost_universal_rv(); });
      const double lower_bound =
          instance.chi() == 1
              ? instance.initial_distance() - instance.t_d()
              : instance.projection_distance() - instance.t_d();
      ok = !result.met && result.min_distance_seen >= lower_bound - 1e-6;
      observed = "no-meet";
      std::snprintf(buffer, sizeof buffer, "min=%.3f>=%.3f", result.min_distance_seen,
                    lower_bound);
      detail = buffer;
    } else if (c.kind == InstanceKind::BoundaryS1 || c.kind == InstanceKind::BoundaryS2) {
      const bool s2 = c.kind == InstanceKind::BoundaryS2;
      const sim::SimResult result = sim::Engine(instance, config).run([&instance, s2] {
        return s2 ? algo::boundary_s2_algorithm(instance)
                  : algo::boundary_s1_algorithm(instance);
      });
      ok = result.met && std::fabs(result.final_distance - instance.r()) < 1e-5;
      observed = result.met ? "meet@r" : "no-meet";
      std::snprintf(buffer, sizeof buffer, "dist=%.6f", result.final_distance);
      detail = buffer;
    } else {
      const sim::SimResult result =
          sim::Engine(instance, config).run([] { return core::almost_universal_rv(); });
      ok = result.met;
      observed = result.met ? "meet" : "no-meet";
      std::snprintf(buffer, sizeof buffer, "t=%.3f", result.meet_time);
      detail = buffer;
    }
    if (ok) ++agreements;
    bench::row("%-16s %-10s %-12s %-14s %-8s", core::to_string(c.kind).c_str(), expected_kind,
               observed.c_str(), detail.c_str(), ok ? "yes" : "NO");
  };

  // Randomized per-region sweeps (sampler-drawn, simulated in parallel):
  // every covered draw must meet, every infeasible draw must respect the
  // analytic closest-approach bound.
  bench::section("randomized sweeps (40 draws per region, parallel)");
  {
    std::mt19937_64 sweep_rng(99);
    std::vector<Instance> covered;
    for (int k = 0; k < 10; ++k) covered.push_back(agents::sample_type1(sweep_rng));
    for (int k = 0; k < 10; ++k) covered.push_back(agents::sample_type2(sweep_rng));
    for (int k = 0; k < 10; ++k) covered.push_back(agents::sample_type3(sweep_rng));
    for (int k = 0; k < 10; ++k) covered.push_back(agents::sample_type4(sweep_rng));
    sim::EngineConfig sweep_config;
    sweep_config.max_events = 30'000'000;
    const std::vector<sim::SimResult> met = sim::run_sweep(
        covered, [] { return core::almost_universal_rv(); }, sweep_config);
    int meets = 0;
    for (const sim::SimResult& result : met) meets += result.met ? 1 : 0;
    bench::row("covered draws meeting      : %d/40 (expected 40)", meets);

    std::vector<Instance> infeasible;
    for (int k = 0; k < 40; ++k) infeasible.push_back(agents::sample_infeasible(sweep_rng));
    sim::EngineConfig inf_config;
    inf_config.max_events = 300'000;
    const std::vector<sim::SimResult> blocked = sim::run_sweep(
        infeasible, [] { return core::almost_universal_rv(); }, inf_config);
    int bound_ok = 0;
    for (std::size_t k = 0; k < infeasible.size(); ++k) {
      const double bound = infeasible[k].chi() == 1
                               ? infeasible[k].initial_distance() - infeasible[k].t_d()
                               : infeasible[k].projection_distance() - infeasible[k].t_d();
      if (!blocked[k].met && blocked[k].min_distance_seen >= bound - 1e-6) ++bound_ok;
    }
    bench::row("infeasible draws respecting bound: %d/40 (expected 40)", bound_ok);
    if (meets != 40 || bound_ok != 40) {
      bench::row("  !! randomized sweep disagreement");
    }
  }

  bench::section("deterministic representatives (simulation cross-check)");
  bench::row("%-16s %-10s %-12s %-14s %-8s", "kind", "expected", "observed", "detail", "ok");
  // One representative per region of the characterization.
  check(Instance::synchronous(2.0, {1.0, 0.5}, 0.0, 0, 1), "trivial");
  check(Instance::synchronous(1.0, {2.0, 0.6}, 0.0, Rational::from_string("3/2"), -1),
        "type-1");
  check(Instance::synchronous(1.0, {1.5, 0.0}, 0.0, 1, 1), "type-2");
  check(Instance(1.0, {2.0, 0.5}, 0.3, 2, 1, 0, 1), "type-3");
  check(Instance::synchronous(0.8, {2.0, 0.0}, geom::kPi / 2, 0, 1), "type-4");
  check(Instance(0.8, {1.5, 0.0}, 0.0, 1, 2, 0, 1), "type-4");
  check(Instance::synchronous(1.0, {3.0, 4.0}, 0.0, 4, 1), "S1");
  check(Instance::synchronous(1.0, {4.0, 1.0}, 0.0, 3, -1), "S2");
  check(Instance::synchronous(1.0, {4.0, 0.0}, 0.0, 1, 1), "infeasible");
  check(Instance::synchronous(1.0, {5.0, 0.8}, 0.0, 2, -1), "infeasible");

  std::printf("\nagreement: %d/%d regions validated\n", agreements, checked);
  return agreements == checked ? 0 : 1;
}
