// The knife-edge of Theorem 4.1, executed: an S2 boundary instance
// (synchronous, chi = -1, t = dist(projA,projB) - r) defeats the universal
// algorithm — the adversary even *constructs* it from AURV's own trajectory
// — yet the same instance is solved, with the agents stopping at distance
// exactly r, by Lemma 3.9's dedicated algorithm.
//
//   $ ./boundary_rendezvous [t [lateral_offset [r]]]
//
// The optional arguments reshape the adversarial geometry: B's wake-up
// delay t (exact rational, e.g. 5/2), the lateral offset across the
// canonical line, and the visibility radius. All strictly parsed
// (support/parse.hpp) — garbage is an error, not a silent zero.
#include <cstdio>

#include "algo/boundary.hpp"
#include "core/adversary.hpp"
#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "sim/engine.hpp"
#include "support/parse.hpp"

int main(int argc, char** argv) {
  using namespace aurv;
  using numeric::Rational;

  const sim::AlgorithmFactory universal = [] { return core::almost_universal_rv(); };

  // 1. The adversary inspects the universal algorithm's trajectory prefix
  //    and aims the canonical line into its largest unused inclination gap.
  core::AdversaryConfig adversary;
  adversary.analysis_horizon = 4096;
  adversary.r = 1.0;
  adversary.t = 2;
  try {
    if (argc > 1) adversary.t = Rational::from_string(argv[1]);
    if (argc > 2) adversary.lateral_offset = support::parse_double(argv[2], "lateral_offset");
    if (argc > 3) adversary.r = support::parse_double(argv[3], "r");
    if (argc > 4 || adversary.t.is_negative() || adversary.r <= 0.0)
      throw std::invalid_argument("usage: boundary_rendezvous [t [lateral_offset [r]]]");
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  const core::AdversaryReport report = core::construct_s2_counterexample(universal, adversary);
  std::printf("adversarial instance : %s\n", report.instance.to_string().c_str());
  std::printf("  canonical-line inclination phi/2 = %.6f rad\n", report.chosen_direction);
  std::printf("  distinct inclinations used by AURV's prefix: %zu (gap %.4f rad)\n",
              report.directions_used, report.angular_gap);
  std::printf("  classification: %s\n\n",
              core::to_string(core::classify(report.instance).kind).c_str());

  // 2. The universal algorithm fails on it (within the analyzed horizon).
  sim::EngineConfig config;
  config.horizon = Rational(4096);
  config.max_events = 8'000'000;
  const sim::SimResult universal_run = sim::Engine(report.instance, config).run(universal);
  std::printf("AlmostUniversalRV   : met=%s  closest approach %.6f (> r = %.2f)\n",
              universal_run.met ? "yes" : "no", universal_run.min_distance_seen,
              report.instance.r());

  // 3. The dedicated Lemma 3.9 algorithm solves the very same instance.
  const sim::SimResult dedicated_run =
      sim::Engine(report.instance, {}).run([&report] {
        return algo::boundary_s2_algorithm(report.instance);
      });
  std::printf("Lemma 3.9 dedicated : met=%s  at time %.4f, distance %.9f (= r)\n",
              dedicated_run.met ? "yes" : "no", dedicated_run.meet_time,
              dedicated_run.final_distance);

  // 4. And the knife-edge: half a time unit of extra delay puts the
  //    instance back inside AlmostUniversalRV's coverage (type 1).
  const agents::Instance nudged =
      report.instance.with_delay(report.instance.t() + Rational::from_string("1/2"));
  sim::EngineConfig nudged_config;
  nudged_config.max_events = 30'000'000;
  const sim::SimResult nudged_run = sim::Engine(nudged, nudged_config).run(universal);
  std::printf("same + t += 1/2     : kind=%s  met=%s  at time %.4f\n",
              core::to_string(core::classify(nudged).kind).c_str(),
              nudged_run.met ? "yes" : "no", nudged_run.meet_time);
  return 0;
}
