// The observability invocation surface shared by the example drivers
// (aurv_sweep, aurv_cli sweep): flag parsing and lifecycle for the
// heartbeat (`--progress [SECS]`), the end-of-run metrics snapshot
// (`--metrics-out PATH`), the Chrome-trace span stream
// (`--trace-out PATH`) and the embedded HTTP status server
// (`--status-port PORT`, 0 = ephemeral).
//
// None of these can change an artifact byte — heartbeats go to stderr,
// the snapshot and the trace to their own files, the status server only
// reads and answers sockets, and both the trace sink and the server
// degrade soft on failure (PR 7's hard invariant: observation never
// perturbs a deterministic artifact).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "support/json.hpp"
#include "support/parse.hpp"
#include "support/statusd.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

namespace aurv::driver {

namespace telemetry = support::telemetry;

/// The telemetry flags shared by `run`, `search` and `aurv_cli sweep`:
/// `--progress[=secs]` turns on the heartbeat (one JSON line on stderr
/// every N seconds; bare flag = 10 s, 0 = off; each line carries the
/// active phase/span name), `--metrics-out PATH` writes the end-of-run
/// metrics snapshot, `--trace-out PATH` streams structured spans as a
/// Chrome Trace Event Format file (load it in Perfetto or
/// chrome://tracing).
struct TelemetryCli {
  double heartbeat_s = 0.0;
  std::string metrics_out;
  std::string trace_out;
  int status_port = -1;  ///< -1 = no server; 0 = ephemeral; else the port

  /// Handles one flag; `true` when it consumed the flag. `--progress`
  /// takes an *optional* value: the next token is consumed only when it
  /// does not look like another flag.
  bool parse(const std::string& flag, int& k, int argc, char** argv) {
    if (flag == "--metrics-out") {
      if (k + 1 >= argc) throw std::invalid_argument("--metrics-out needs a value");
      metrics_out = argv[++k];
      return true;
    }
    if (flag == "--trace-out") {
      if (k + 1 >= argc) throw std::invalid_argument("--trace-out needs a value");
      trace_out = argv[++k];
      return true;
    }
    if (flag == "--progress") {
      heartbeat_s = 10.0;
      if (k + 1 < argc && argv[k + 1][0] != '-')
        heartbeat_s = support::parse_double(argv[++k], "--progress");
      return true;
    }
    if (flag == "--status-port") {
      if (k + 1 >= argc) throw std::invalid_argument("--status-port needs a value");
      const std::uint64_t port = support::parse_uint(argv[++k], "--status-port");
      if (port > 65535) throw std::invalid_argument("--status-port: port out of range");
      status_port = static_cast<int>(port);
      return true;
    }
    return false;
  }

  /// Opens the process-wide trace sink when `--trace-out` was given.
  /// An unopenable path degrades the sink (one stderr warning) — the
  /// run itself proceeds untouched.
  void open_trace() const {
    if (!trace_out.empty()) support::trace::sink().open(trace_out);
  }

  /// Seals the trace file (footer + flush). Call after the last span of
  /// the run has closed and before the metrics snapshot, so the
  /// snapshot's `trace.*` counters are final.
  void close_trace(bool quiet) const {
    if (trace_out.empty()) return;
    const bool healthy = !support::trace::sink().degraded();
    support::trace::sink().close();
    if (!quiet && healthy)
      std::fprintf(stderr, "trace written to %s\n", trace_out.c_str());
  }

  [[nodiscard]] std::optional<telemetry::Heartbeat> start_heartbeat(
      std::string kind, std::string spec) const {
    if (heartbeat_s <= 0) return std::nullopt;
    telemetry::HeartbeatConfig config;
    config.interval_s = heartbeat_s;
    config.extra = [kind = std::move(kind), spec = std::move(spec)] {
      support::Json extra = support::Json::object();
      extra.set("kind", support::Json(kind));
      extra.set("spec", support::Json(spec));
      return extra;
    };
    return std::optional<telemetry::Heartbeat>(std::in_place, std::move(config));
  }

  void write_metrics(const telemetry::RunManifest& manifest, double wall_ms,
                     bool quiet) const {
    if (metrics_out.empty()) return;
    telemetry::write_metrics(metrics_out, manifest, wall_ms);
    if (!quiet) std::fprintf(stderr, "metrics written to %s\n", metrics_out.c_str());
  }

  /// Starts the embedded HTTP status server when `--status-port` was
  /// given. Returns nullptr both when the flag is absent and when the
  /// bind fails soft (one stderr warning + `statusd.dropped`) — callers
  /// just hold the handle; destruction stops the server.
  [[nodiscard]] std::unique_ptr<support::statusd::StatusServer> start_statusd(
      std::string kind, std::string spec, std::string fingerprint,
      std::uint64_t threads) const {
    if (status_port < 0) return nullptr;
    support::statusd::Config config;
    config.port = status_port;
    config.run.kind = std::move(kind);
    config.run.spec = std::move(spec);
    config.run.fingerprint = std::move(fingerprint);
    config.run.threads = threads;
    return support::statusd::StatusServer::start(std::move(config));
  }
};

inline double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

/// The manifest records the *effective* worker count: 0 means "hardware"
/// everywhere in the option structs, which would read as nonsense in a
/// metrics snapshot.
inline std::uint64_t resolved_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace aurv::driver
