// aurv_sweep — campaign, census and search driver: execute a declarative
// scenario spec (scenarios/*.json) through the sharded campaign runner (a
// gathering census when the spec's kind is "gather-census"), or a search
// spec (scenarios/search_*.json) through the deterministic branch-and-bound.
//
//   aurv_sweep run <scenario.json> [options]
//       --threads N          worker threads (0 = hardware, default)
//       --out PATH           summary JSON artifact (default: stdout)
//       --jsonl PATH         per-run JSONL records, in job order
//       --checkpoint PATH    checkpoint file (enables --resume)
//       --checkpoint-every K checkpoint every K shards (default 64)
//       --resume             continue from the checkpoint; a missing,
//                            truncated or foreign checkpoint is refused
//                            with one structured stderr line (exit 5)
//       --shard-size K       jobs per shard (default 256)
//       --max-shards K       stop after K shards (incremental execution)
//       --quiet              no progress on stderr
//       --progress [SECS]    heartbeat: one JSON line on stderr every SECS
//                            seconds (bare flag = 10; 0 = off); each line
//                            names the active phase/span
//       --metrics-out PATH   end-of-run metrics snapshot (counters, timers,
//                            run manifest) as JSON
//       --trace-out PATH     structured span trace in Chrome Trace Event
//                            Format (open in Perfetto / chrome://tracing)
//       --status-port PORT   embedded HTTP status server on 127.0.0.1:PORT
//                            (0 = ephemeral; the chosen port is announced as
//                            one stderr JSON line): /metrics /status /healthz
//                            /trace — see EXPERIMENTS.md "Watching a live run"
//   aurv_sweep search <search.json> [options]
//       --max-shards N       parallel box evaluations per wave (0 = hardware;
//                            --threads is an alias); a worker cap, never a work
//                            limiter — it cannot change the result (bound work
//                            with --max-waves)
//       --out PATH           certificate JSON artifact (default: stdout)
//       --incumbent-log PATH incumbent-improvement JSONL, deterministic order
//       --provenance PATH    prune-provenance JSONL: one auditable decision
//                            record per popped box (byte-identical at any
//                            worker count and across resume); audit it with
//                            scripts/provenance_report.py
//       --checkpoint PATH    base checkpoint + per-wave delta journal
//                            (enables --resume)
//       --compact-every K    compact the wave journal into a fresh base
//                            every K waves (default 16; --checkpoint-every
//                            is an alias)
//       --resume             continue from the checkpoint; a missing,
//                            truncated or foreign checkpoint is refused
//                            with one structured stderr line (exit 5)
//       --max-waves K        stop after K waves (incremental execution)
//       --spill-dir PATH     spill the cold frontier tail to JSONL segment
//                            files in PATH (in-memory frontier otherwise);
//                            PATH belongs to this search alone, like the
//                            checkpoint file — use one directory per hunt
//       --frontier-mem N     max open boxes held in memory (needs
//                            --spill-dir; 0 = unbounded, default)
//       --spill-segments N   open segment files before a k-way merge
//                            compacts them (default 8)
//       --degraded-cap N     max open boxes held in memory after the spill
//                            directory goes unwritable/full and the
//                            frontier degrades to in-memory mode (0 =
//                            unbounded, default); past it the run fails
//                            with a structured error
//       --quiet              no progress on stderr
//       --progress [SECS]    heartbeat: one JSON line on stderr every SECS
//                            seconds (bare flag = 10; 0 = off); each line
//                            names the active phase/span
//       --metrics-out PATH   end-of-run metrics snapshot (counters, timers,
//                            run manifest) as JSON
//       --trace-out PATH     structured span trace in Chrome Trace Event
//                            Format (open in Perfetto / chrome://tracing)
//       --status-port PORT   embedded HTTP status server on 127.0.0.1:PORT
//                            (0 = ephemeral; the chosen port is announced as
//                            one stderr JSON line): /metrics /status /healthz
//                            /trace — see EXPERIMENTS.md "Watching a live run"
//
//       The spill/compaction flags are invocation-side: certificates,
//       incumbent logs and prune stats are byte-identical in-memory vs.
//       spilled, at any --max-shards, and across checkpoint/resume —
//       including runs whose spill directory failed mid-hunt (the
//       degradation is reported on stderr, never in the certificate).
//   aurv_sweep describe <spec.json>       parsed spec + first instances (either kind)
//   aurv_sweep list                       registered algorithms, samplers, objectives
//
// Summary and certificate artifacts are deterministic: identical at any
// --threads / --max-shards value, and identical whether the run completed
// in one go or across checkpoint/resume cycles.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include "driver_telemetry.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/search_driver.hpp"
#include "gatherx/census.hpp"
#include "gatherx/scenario.hpp"
#include "search/objective.hpp"
#include "support/jsonl.hpp"
#include "support/parse.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

namespace {

using namespace aurv;
namespace telemetry = support::telemetry;
using driver::TelemetryCli;
using driver::resolved_threads;
using driver::wall_ms_since;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  aurv_sweep run <scenario.json> [--threads N] [--out PATH] [--jsonl PATH]\n"
               "             [--checkpoint PATH] [--checkpoint-every K] [--resume]\n"
               "             [--shard-size K] [--max-shards K] [--quiet]\n"
               "             [--progress [SECS]] [--metrics-out PATH] [--trace-out PATH]\n"
               "             [--status-port PORT]\n"
               "  aurv_sweep search <search.json> [--max-shards N] [--out PATH]\n"
               "             [--incumbent-log PATH] [--provenance PATH]\n"
               "             [--checkpoint PATH] [--compact-every K]\n"
               "             [--resume] [--max-waves K] [--spill-dir PATH]\n"
               "             [--frontier-mem N] [--spill-segments N] [--degraded-cap N]\n"
               "             [--quiet] [--progress [SECS]] [--metrics-out PATH]\n"
               "             [--trace-out PATH] [--status-port PORT]\n"
               "  aurv_sweep describe <spec.json>\n"
               "  aurv_sweep list\n");
  return 2;
}

int cmd_list() {
  std::printf("algorithms:");
  for (const std::string& name : exp::algorithm_names()) std::printf(" %s", name.c_str());
  std::printf("\nsamplers:  ");
  for (const std::string& name : exp::sampler_names()) std::printf(" %s", name.c_str());
  std::printf("\ngather samplers:");
  for (const std::string& name : exp::gather_sampler_names()) std::printf(" %s", name.c_str());
  std::printf("\nobjectives:");
  for (const std::string& name : search::objective_names()) std::printf(" %s", name.c_str());
  std::printf("\n");
  return 0;
}

int cmd_describe(const std::string& path) {
  // One load + parse; campaign scenario specs have no top-level "kind" field.
  try {
    const support::Json json = support::Json::load_file(path);
    if (json.string_or("kind", "") == "search") {
      const exp::SearchSpec spec = exp::SearchSpec::from_json(json);
      std::printf("%s", spec.to_json().dump(2).c_str());
      const search::ParamBox root = spec.root_box();
      std::printf("root box width: %s\n", root.width().to_string().c_str());
      if (spec.space.family == search::SearchSpace::Family::GatherTuple) {
        const std::vector<numeric::Rational> midpoint = root.midpoint();
        std::printf("root midpoint:  %s policy=%s\n",
                    spec.space.gather_instance_at(midpoint).to_string().c_str(),
                    gather::to_string(spec.space.gather_policy_at(midpoint)).c_str());
      } else {
        std::printf("root midpoint:  %s\n",
                    spec.space.instance_at(root.midpoint()).to_string().c_str());
      }
      return 0;
    }
    if (json.string_or("kind", "") == "gather-census") {
      const gatherx::GatherScenarioSpec spec = gatherx::GatherScenarioSpec::from_json(json);
      std::printf("%s", spec.to_json().dump(2).c_str());
      std::printf("total jobs: %llu (x%zu policies)\n",
                  static_cast<unsigned long long>(spec.total_jobs()), spec.policies.size());
      const std::uint64_t preview = std::min<std::uint64_t>(3, spec.total_jobs());
      for (std::uint64_t job = 0; job < preview; ++job) {
        const agents::GatherInstance instance = gatherx::census_instance(spec, job);
        const bool funnel = instance.n() < 2 ||
                            gather::is_funnel_configuration(instance.agents, instance.r);
        std::printf("job %llu: %s funnel=%s\n", static_cast<unsigned long long>(job),
                    instance.to_string().c_str(), funnel ? "yes" : "no");
      }
      return 0;
    }
    const exp::ScenarioSpec spec = exp::ScenarioSpec::from_json(json);
    std::printf("%s", spec.to_json().dump(2).c_str());
    std::printf("total jobs: %llu\n", static_cast<unsigned long long>(spec.total_jobs()));
    const std::uint64_t preview = std::min<std::uint64_t>(3, spec.total_jobs());
    for (std::uint64_t job = 0; job < preview; ++job) {
      std::printf("job %llu: %s\n", static_cast<unsigned long long>(job),
                  exp::campaign_instance(spec, job).to_string().c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    throw std::invalid_argument(path + ": " + error.what());
  }
}

int cmd_search(int argc, char** argv) {
  if (argc < 1) return usage();
  const auto started = std::chrono::steady_clock::now();
  const std::string spec_path = argv[0];
  exp::SearchOptions options;
  TelemetryCli telemetry_cli;
  std::string out_path;
  bool quiet = false;

  for (int k = 1; k < argc; ++k) {
    const std::string flag = argv[k];
    const auto value = [&]() -> std::string {
      if (k + 1 >= argc) throw std::invalid_argument(flag + " needs a value");
      return argv[++k];
    };
    // --threads is accepted as an alias: both cap the workers per wave
    // (the campaign subcommand's spelling), and neither limits work —
    // that is --max-waves.
    if (flag == "--max-shards" || flag == "--threads")
      options.max_shards = support::parse_uint(value(), flag.c_str());
    else if (flag == "--out") out_path = value();
    else if (flag == "--incumbent-log") options.incumbent_log_path = value();
    else if (flag == "--provenance") options.provenance_path = value();
    else if (flag == "--checkpoint") options.checkpoint_path = value();
    // --checkpoint-every is the pre-delta-journal spelling, kept as an alias.
    else if (flag == "--compact-every" || flag == "--checkpoint-every")
      options.checkpoint_every = support::parse_uint(value(), flag.c_str());
    else if (flag == "--resume") options.resume = true;
    else if (flag == "--max-waves")
      options.max_waves = support::parse_uint(value(), "--max-waves");
    else if (flag == "--spill-dir") options.spill_dir = value();
    else if (flag == "--frontier-mem")
      options.frontier_mem = support::parse_uint(value(), "--frontier-mem");
    else if (flag == "--spill-segments")
      options.spill_max_segments = support::parse_uint(value(), "--spill-segments");
    else if (flag == "--degraded-cap")
      options.frontier_degraded_capacity = support::parse_uint(value(), "--degraded-cap");
    else if (flag == "--quiet") quiet = true;
    else if (telemetry_cli.parse(flag, k, argc, argv)) {}
    else {
      std::fprintf(stderr, "unknown option: %s\n", flag.c_str());
      return usage();
    }
  }

  telemetry_cli.open_trace();

  telemetry::Timer& load_timer = telemetry::registry().timer("phase.load");
  telemetry::Timer& run_timer = telemetry::registry().timer("phase.run");
  telemetry::Timer& emit_timer = telemetry::registry().timer("phase.emit");

  std::optional<exp::SearchSpec> loaded;
  {
    const telemetry::ScopedTimer time_load(load_timer);
    const support::trace::Span span("load", "phase",
                                    support::trace::Span::Options{.announce = true});
    loaded.emplace(exp::SearchSpec::load(spec_path));
  }
  const exp::SearchSpec& spec = *loaded;
  std::optional<telemetry::Heartbeat> heartbeat =
      telemetry_cli.start_heartbeat("search", spec_path);
  // Held to end of scope: scraping stays live through emit + metrics.
  const auto statusd = telemetry_cli.start_statusd(
      "search", spec_path, support::fingerprint_hex(spec.fingerprint()),
      resolved_threads(options.max_shards));
  if (!quiet) {
    options.progress = [](std::uint64_t evaluated, std::uint64_t open) {
      std::fprintf(stderr, "\r%llu boxes evaluated, %llu open   ",
                   static_cast<unsigned long long>(evaluated),
                   static_cast<unsigned long long>(open));
    };
  }

  std::optional<exp::SearchRunResult> run;
  {
    const telemetry::ScopedTimer time_run(run_timer);
    const support::trace::Span span("run", "phase",
                                    support::trace::Span::Options{.announce = true});
    run.emplace(exp::run_search(spec, options));
  }
  const exp::SearchRunResult& result = *run;
  if (heartbeat.has_value()) heartbeat->stop();
  if (!quiet) {
    std::fprintf(stderr, "\r%llu boxes evaluated (%s)          \n",
                 static_cast<unsigned long long>(result.bnb.stats.evaluated),
                 result.bnb.exhausted        ? "frontier exhausted"
                 : result.bnb.budget_reached ? "box budget spent"
                                             : "stopped by --max-waves");
  }
  // Invocation-side only — the certificate is byte-identical regardless.
  if (result.bnb.frontier_degraded)
    std::fprintf(stderr, "warning: spill degraded to in-memory mode (%s)\n",
                 result.bnb.frontier_degradation.c_str());

  {
    const telemetry::ScopedTimer time_emit(emit_timer);
    const support::trace::Span span("emit", "phase",
                                    support::trace::Span::Options{.announce = true});
    const support::Json certificate = result.certificate(spec);
    if (out_path.empty()) {
      std::printf("%s", certificate.dump(2).c_str());
    } else {
      certificate.save_file(out_path);
      if (!quiet) std::fprintf(stderr, "certificate written to %s\n", out_path.c_str());
    }
  }
  // Seal the trace before the snapshot so its trace.* counters are final.
  telemetry_cli.close_trace(quiet);

  telemetry::RunManifest manifest;
  manifest.kind = "search";
  manifest.spec_path = spec_path;
  manifest.fingerprint = support::fingerprint_hex(spec.fingerprint());
  manifest.threads = resolved_threads(options.max_shards);
  manifest.extra.set("max_waves", support::Json(static_cast<std::uint64_t>(options.max_waves)));
  manifest.extra.set("spill_dir", support::Json(options.spill_dir));
  manifest.extra.set("frontier_mem",
                     support::Json(static_cast<std::uint64_t>(options.frontier_mem)));
  manifest.extra.set("resume", support::Json(options.resume));
  telemetry_cli.write_metrics(manifest, wall_ms_since(started), quiet);

  return result.bnb.complete() ? 0 : 4;  // 4 = stopped early (max_waves)
}

int cmd_run(int argc, char** argv) {
  if (argc < 1) return usage();
  const auto started = std::chrono::steady_clock::now();
  const std::string spec_path = argv[0];
  exp::CampaignOptions options;
  TelemetryCli telemetry_cli;
  std::string out_path;
  bool quiet = false;

  for (int k = 1; k < argc; ++k) {
    const std::string flag = argv[k];
    const auto value = [&]() -> std::string {
      if (k + 1 >= argc) throw std::invalid_argument(flag + " needs a value");
      return argv[++k];
    };
    if (flag == "--threads") options.threads = support::parse_uint(value(), "--threads");
    else if (flag == "--out") out_path = value();
    else if (flag == "--jsonl") options.jsonl_path = value();
    else if (flag == "--checkpoint") options.checkpoint_path = value();
    else if (flag == "--checkpoint-every")
      options.checkpoint_every = support::parse_uint(value(), "--checkpoint-every");
    else if (flag == "--resume") options.resume = true;
    else if (flag == "--shard-size")
      options.shard_size = support::parse_uint(value(), "--shard-size");
    else if (flag == "--max-shards")
      options.max_shards = support::parse_uint(value(), "--max-shards");
    else if (flag == "--quiet") quiet = true;
    else if (telemetry_cli.parse(flag, k, argc, argv)) {}
    else {
      std::fprintf(stderr, "unknown option: %s\n", flag.c_str());
      return usage();
    }
  }

  telemetry_cli.open_trace();

  telemetry::Timer& load_timer = telemetry::registry().timer("phase.load");
  telemetry::Timer& run_timer = telemetry::registry().timer("phase.run");
  telemetry::Timer& emit_timer = telemetry::registry().timer("phase.emit");

  support::Json spec_json;
  {
    const telemetry::ScopedTimer time_load(load_timer);
    const support::trace::Span span("load", "phase",
                                    support::trace::Span::Options{.announce = true});
    try {
      spec_json = support::Json::load_file(spec_path);
    } catch (const std::exception& error) {
      throw std::invalid_argument(spec_path + ": " + error.what());
    }
  }

  if (!quiet) {
    options.progress = [](std::uint64_t done, std::uint64_t total) {
      // One status line, overwritten in place; ~64 updates over the run.
      const std::uint64_t step = std::max<std::uint64_t>(1, total / 64);
      if (done % step < 256 || done == total)
        std::fprintf(stderr, "\r%llu/%llu jobs", static_cast<unsigned long long>(done),
                     static_cast<unsigned long long>(total));
    };
  }

  // The two sweep kinds share the whole invocation surface; only the spec
  // type and runner differ.
  const auto report = [&](std::uint64_t jobs, std::uint64_t jobs_run,
                          std::uint64_t resumed_shards, bool complete) {
    if (quiet) return;
    std::fprintf(stderr, "\r%llu/%llu jobs done (%llu run now%s)\n",
                 static_cast<unsigned long long>(
                     complete ? jobs : resumed_shards * options.shard_size + jobs_run),
                 static_cast<unsigned long long>(jobs),
                 static_cast<unsigned long long>(jobs_run),
                 resumed_shards > 0 ? ", resumed" : "");
  };
  const auto emit = [&](const support::Json& summary) {
    const telemetry::ScopedTimer time_emit(emit_timer);
    const support::trace::Span span("emit", "phase",
                                    support::trace::Span::Options{.announce = true});
    if (out_path.empty()) {
      std::printf("%s", summary.dump(2).c_str());
    } else {
      summary.save_file(out_path);
      if (!quiet) std::fprintf(stderr, "summary written to %s\n", out_path.c_str());
    }
  };
  const auto write_metrics = [&](const char* kind, std::uint64_t fingerprint) {
    // Seal the trace before the snapshot so its trace.* counters are final.
    telemetry_cli.close_trace(quiet);
    telemetry::RunManifest manifest;
    manifest.kind = kind;
    manifest.spec_path = spec_path;
    manifest.fingerprint = support::fingerprint_hex(fingerprint);
    manifest.threads = resolved_threads(options.threads);
    manifest.extra.set("shard_size",
                       support::Json(static_cast<std::uint64_t>(options.shard_size)));
    manifest.extra.set("checkpoint_every",
                       support::Json(static_cast<std::uint64_t>(options.checkpoint_every)));
    manifest.extra.set("resume", support::Json(options.resume));
    telemetry_cli.write_metrics(manifest, wall_ms_since(started), quiet);
  };

  if (spec_json.string_or("kind", "") == "gather-census") {
    gatherx::GatherScenarioSpec spec;
    try {
      spec = gatherx::GatherScenarioSpec::from_json(spec_json);
    } catch (const std::exception& error) {
      throw std::invalid_argument(spec_path + ": " + error.what());
    }
    std::optional<telemetry::Heartbeat> heartbeat =
        telemetry_cli.start_heartbeat("gather-census", spec_path);
    const auto statusd = telemetry_cli.start_statusd(
        "gather-census", spec_path, support::fingerprint_hex(spec.fingerprint()),
        resolved_threads(options.threads));
    std::optional<gatherx::CensusResult> run;
    {
      const telemetry::ScopedTimer time_run(run_timer);
      const support::trace::Span span("run", "phase",
                                      support::trace::Span::Options{.announce = true});
      run.emplace(gatherx::run_census(spec, options));
    }
    const gatherx::CensusResult& result = *run;
    if (heartbeat.has_value()) heartbeat->stop();
    report(result.jobs, result.jobs_run, result.resumed_shards, result.complete);
    emit(result.summary(spec));
    write_metrics("gather-census", spec.fingerprint());
    return result.complete ? 0 : 4;  // 4 = stopped early (max_shards)
  }

  exp::ScenarioSpec spec;
  try {
    spec = exp::ScenarioSpec::from_json(spec_json);
  } catch (const std::exception& error) {
    throw std::invalid_argument(spec_path + ": " + error.what());
  }
  std::optional<telemetry::Heartbeat> heartbeat =
      telemetry_cli.start_heartbeat("campaign", spec_path);
  const auto statusd = telemetry_cli.start_statusd(
      "campaign", spec_path, support::fingerprint_hex(spec.fingerprint()),
      resolved_threads(options.threads));
  std::optional<exp::CampaignResult> run;
  {
    const telemetry::ScopedTimer time_run(run_timer);
    const support::trace::Span span("run", "phase",
                                    support::trace::Span::Options{.announce = true});
    run.emplace(exp::run_campaign(spec, options));
  }
  const exp::CampaignResult& result = *run;
  if (heartbeat.has_value()) heartbeat->stop();
  report(result.jobs, result.jobs_run, result.resumed_shards, result.complete);
  emit(result.summary(spec));
  write_metrics("campaign", spec.fingerprint());
  return result.complete ? 0 : 4;  // 4 = stopped early (max_shards)
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "list") == 0) return cmd_list();
    if (std::strcmp(argv[1], "describe") == 0 && argc == 3) return cmd_describe(argv[2]);
    if (std::strcmp(argv[1], "run") == 0) return cmd_run(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "search") == 0) return cmd_search(argc - 2, argv + 2);
  } catch (const support::CheckpointError& error) {
    // One machine-parseable line: {"error":"checkpoint-resume","path":...,"reason":...}
    std::fprintf(stderr, "%s\n", error.structured().c_str());
    return 5;  // 5 = unresumable checkpoint
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 3;
  }
  return usage();
}
