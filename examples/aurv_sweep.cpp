// aurv_sweep — campaign driver: execute a declarative scenario spec
// (scenarios/*.json) through the sharded campaign runner.
//
//   aurv_sweep run <scenario.json> [options]
//       --threads N          worker threads (0 = hardware, default)
//       --out PATH           summary JSON artifact (default: stdout)
//       --jsonl PATH         per-run JSONL records, in job order
//       --checkpoint PATH    checkpoint file (enables --resume)
//       --checkpoint-every K checkpoint every K shards (default 64)
//       --resume             continue from the checkpoint if it exists
//       --shard-size K       jobs per shard (default 256)
//       --max-shards K       stop after K shards (incremental execution)
//       --quiet              no progress on stderr
//   aurv_sweep describe <scenario.json>   parsed spec, job count, first instances
//   aurv_sweep list                       registered algorithms and samplers
//
// The summary JSON is deterministic: identical at any --threads value, and
// identical whether the campaign ran in one go or across checkpoint/resume
// cycles.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "support/parse.hpp"

namespace {

using namespace aurv;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  aurv_sweep run <scenario.json> [--threads N] [--out PATH] [--jsonl PATH]\n"
               "             [--checkpoint PATH] [--checkpoint-every K] [--resume]\n"
               "             [--shard-size K] [--max-shards K] [--quiet]\n"
               "  aurv_sweep describe <scenario.json>\n"
               "  aurv_sweep list\n");
  return 2;
}

int cmd_list() {
  std::printf("algorithms:");
  for (const std::string& name : exp::algorithm_names()) std::printf(" %s", name.c_str());
  std::printf("\nsamplers:  ");
  for (const std::string& name : exp::sampler_names()) std::printf(" %s", name.c_str());
  std::printf("\n");
  return 0;
}

int cmd_describe(const std::string& path) {
  const exp::ScenarioSpec spec = exp::ScenarioSpec::load(path);
  std::printf("%s", spec.to_json().dump(2).c_str());
  std::printf("total jobs: %llu\n", static_cast<unsigned long long>(spec.total_jobs()));
  const std::uint64_t preview = std::min<std::uint64_t>(3, spec.total_jobs());
  for (std::uint64_t job = 0; job < preview; ++job) {
    std::printf("job %llu: %s\n", static_cast<unsigned long long>(job),
                exp::campaign_instance(spec, job).to_string().c_str());
  }
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string spec_path = argv[0];
  exp::CampaignOptions options;
  std::string out_path;
  bool quiet = false;

  for (int k = 1; k < argc; ++k) {
    const std::string flag = argv[k];
    const auto value = [&]() -> std::string {
      if (k + 1 >= argc) throw std::invalid_argument(flag + " needs a value");
      return argv[++k];
    };
    if (flag == "--threads") options.threads = support::parse_uint(value(), "--threads");
    else if (flag == "--out") out_path = value();
    else if (flag == "--jsonl") options.jsonl_path = value();
    else if (flag == "--checkpoint") options.checkpoint_path = value();
    else if (flag == "--checkpoint-every")
      options.checkpoint_every = support::parse_uint(value(), "--checkpoint-every");
    else if (flag == "--resume") options.resume = true;
    else if (flag == "--shard-size")
      options.shard_size = support::parse_uint(value(), "--shard-size");
    else if (flag == "--max-shards")
      options.max_shards = support::parse_uint(value(), "--max-shards");
    else if (flag == "--quiet") quiet = true;
    else {
      std::fprintf(stderr, "unknown option: %s\n", flag.c_str());
      return usage();
    }
  }

  const exp::ScenarioSpec spec = exp::ScenarioSpec::load(spec_path);
  if (!quiet) {
    options.progress = [](std::uint64_t done, std::uint64_t total) {
      // One status line, overwritten in place; ~64 updates over the run.
      const std::uint64_t step = std::max<std::uint64_t>(1, total / 64);
      if (done % step < 256 || done == total)
        std::fprintf(stderr, "\r%llu/%llu jobs", static_cast<unsigned long long>(done),
                     static_cast<unsigned long long>(total));
    };
  }

  const exp::CampaignResult result = exp::run_campaign(spec, options);
  if (!quiet) {
    std::fprintf(stderr, "\r%llu/%llu jobs done (%llu run now%s)\n",
                 static_cast<unsigned long long>(
                     result.complete ? result.jobs
                                     : result.resumed_shards * options.shard_size +
                                           result.jobs_run),
                 static_cast<unsigned long long>(result.jobs),
                 static_cast<unsigned long long>(result.jobs_run),
                 result.resumed_shards > 0 ? ", resumed" : "");
  }

  const support::Json summary = result.summary(spec);
  if (out_path.empty()) {
    std::printf("%s", summary.dump(2).c_str());
  } else {
    summary.save_file(out_path);
    if (!quiet) std::fprintf(stderr, "summary written to %s\n", out_path.c_str());
  }
  return result.complete ? 0 : 4;  // 4 = stopped early (max_shards)
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "list") == 0) return cmd_list();
    if (std::strcmp(argv[1], "describe") == 0 && argc == 3) return cmd_describe(argv[2]);
    if (std::strcmp(argv[1], "run") == 0) return cmd_run(argc - 2, argv + 2);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 3;
  }
  return usage();
}
