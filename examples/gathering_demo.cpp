// Gathering demo — the paper's concluding open problem, interactive: n
// agents in the restricted shifted-frames model of [38] run Latecomers
// under both generalizations of the stop rule, from a staggered funnel
// line, from a provably ungatherable equal-delay star, and from a tight
// cluster. Prints what the gather engine observes.
//
//   $ ./gathering_demo [--r R] [--horizon T] [--fuel N]
//
// Options are strictly parsed (support/parse.hpp): a typo'd radius fails
// loudly instead of silently running a different experiment. Scenario
// geometry is scaled for the default r = 1; a different radius reuses the
// same starts, which is itself instructive (chains stop forming once
// delays no longer exceed dist - r).
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/latecomers.hpp"
#include "gather/engine.hpp"
#include "support/parse.hpp"

int main(int argc, char** argv) {
  using namespace aurv;
  using gather::GatherAgent;
  using geom::Vec2;

  double r = 1.0;
  double horizon = 50'000.0;
  std::uint64_t fuel = 2'000'000;
  try {
    for (int k = 1; k < argc; ++k) {
      const std::string flag = argv[k];
      const auto value = [&]() -> std::string {
        if (k + 1 >= argc) throw std::invalid_argument(flag + " needs a value");
        return argv[++k];
      };
      if (flag == "--r") r = support::parse_double(value(), "--r");
      else if (flag == "--horizon") horizon = support::parse_double(value(), "--horizon");
      else if (flag == "--fuel") fuel = support::parse_uint(value(), "--fuel");
      else throw std::invalid_argument("unknown option: " + flag);
    }
    if (!(r > 0.0)) throw std::invalid_argument("--r must be positive");
    if (!(horizon > 0.0)) throw std::invalid_argument("--horizon must be positive");
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\nusage: %s [--r R] [--horizon T] [--fuel N]\n",
                 error.what(), argv[0]);
    return 2;
  }

  std::printf(
      "Gathering n anonymous agents (shifted frames, common program):\n"
      "the conclusion of the paper asks which configurations admit it.\n\n");

  struct Scenario {
    std::string name;
    std::string note;
    std::vector<GatherAgent> agents;
  };
  const std::vector<Scenario> scenarios = {
      {"staggered funnel (n=3)",
       "delays comfortably exceed distances to the earliest agent",
       {{Vec2{0, 0}, 0}, {Vec2{1.2, 0}, 2}, {Vec2{2.2, 0.1}, 5}}},
      {"equal-delay star (n=3)",
       "agents 1 and 2 wake together: their gap is constant forever",
       {{Vec2{0, 0}, 0}, {Vec2{2.4, 0}, 2}, {Vec2{-2.4, 0}, 2}}},
      {"tight cluster (n=4)",
       "starts almost within one radius, wakes scattered",
       {{Vec2{0, 0}, 0}, {Vec2{0.8, 0.2}, 1}, {Vec2{-0.4, 0.6}, 3}, {Vec2{0.3, -0.7}, 6}}},
  };

  for (const Scenario& scenario : scenarios) {
    std::printf("-- %s --\n   (%s)\n", scenario.name.c_str(), scenario.note.c_str());
    std::printf("   funnel predicate: %s\n",
                gather::is_funnel_configuration(scenario.agents, r) ? "accepted" : "rejected");
    for (const gather::StopPolicy policy :
         {gather::StopPolicy::FirstSight, gather::StopPolicy::AllVisible}) {
      gather::GatherConfig config;
      config.r = r;
      config.policy = policy;
      // Accretion chains legitimately span up to (n-1) * r; the shared
      // policy-natural default keeps "gathered" aligned with the census.
      config.success_diameter =
          gather::default_success_diameter(policy, scenario.agents.size(), config.r);
      config.max_events = fuel;
      config.horizon = numeric::Rational::from_double(horizon);
      const gather::GatherResult result =
          gather::GatherEngine(scenario.agents, config).run([] {
            return algo::latecomers();
          });
      std::printf("   %-12s -> %-15s", to_string(policy).c_str(),
                  to_string(result.reason).c_str());
      if (result.gathered) {
        std::printf(" at t=%.3f, diameter %.3f\n", result.gather_time, result.final_diameter);
      } else {
        std::printf(" (closest sampled diameter %.3f)\n", result.min_diameter_seen);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Takeaway: pairwise 'late-enough' conditions are not the whole story\n"
      "for n >= 3 — equal-delay pairs keep a constant gap no matter what the\n"
      "common program does. See TAB-7 and src/gather/engine.hpp.\n");
  return 0;
}
