// Gathering demo — the paper's concluding open problem, interactive: n
// agents in the restricted shifted-frames model of [38] run Latecomers
// under both generalizations of the stop rule, from a staggered funnel
// line, from a provably ungatherable equal-delay star, and from a tight
// cluster. Prints what the gather engine observes.
//
//   $ ./gathering_demo
//
#include <cstdio>
#include <string>
#include <vector>

#include "algo/latecomers.hpp"
#include "gather/engine.hpp"

int main() {
  using namespace aurv;
  using gather::GatherAgent;
  using geom::Vec2;

  std::printf(
      "Gathering n anonymous agents (shifted frames, common program):\n"
      "the conclusion of the paper asks which configurations admit it.\n\n");

  struct Scenario {
    std::string name;
    std::string note;
    std::vector<GatherAgent> agents;
  };
  const std::vector<Scenario> scenarios = {
      {"staggered funnel (n=3)",
       "delays comfortably exceed distances to the earliest agent",
       {{Vec2{0, 0}, 0}, {Vec2{1.2, 0}, 2}, {Vec2{2.2, 0.1}, 5}}},
      {"equal-delay star (n=3)",
       "agents 1 and 2 wake together: their gap is constant forever",
       {{Vec2{0, 0}, 0}, {Vec2{2.4, 0}, 2}, {Vec2{-2.4, 0}, 2}}},
      {"tight cluster (n=4)",
       "starts almost within one radius, wakes scattered",
       {{Vec2{0, 0}, 0}, {Vec2{0.8, 0.2}, 1}, {Vec2{-0.4, 0.6}, 3}, {Vec2{0.3, -0.7}, 6}}},
  };

  for (const Scenario& scenario : scenarios) {
    std::printf("-- %s --\n   (%s)\n", scenario.name.c_str(), scenario.note.c_str());
    std::printf("   funnel predicate: %s\n",
                gather::is_funnel_configuration(scenario.agents, 1.0) ? "accepted" : "rejected");
    for (const gather::StopPolicy policy :
         {gather::StopPolicy::FirstSight, gather::StopPolicy::AllVisible}) {
      gather::GatherConfig config;
      config.r = 1.0;
      config.policy = policy;
      if (policy == gather::StopPolicy::FirstSight) {
        // Accretion chains legitimately span up to (n-1) * r.
        config.success_diameter =
            static_cast<double>(scenario.agents.size() - 1) * config.r + 1e-6;
      }
      config.max_events = 2'000'000;
      config.horizon = numeric::Rational(50'000);
      const gather::GatherResult result =
          gather::GatherEngine(scenario.agents, config).run([] {
            return algo::latecomers();
          });
      std::printf("   %-12s -> %-15s", to_string(policy).c_str(),
                  to_string(result.reason).c_str());
      if (result.gathered) {
        std::printf(" at t=%.3f, diameter %.3f\n", result.gather_time, result.final_diameter);
      } else {
        std::printf(" (closest sampled diameter %.3f)\n", result.min_diameter_seen);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Takeaway: pairwise 'late-enough' conditions are not the whole story\n"
      "for n >= 3 — equal-delay pairs keep a constant gap no matter what the\n"
      "common program does. See TAB-7 and src/gather/engine.hpp.\n");
  return 0;
}
