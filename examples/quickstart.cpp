// Quickstart: describe a rendezvous instance, ask the library whether it is
// feasible (Theorem 3.1), pick the right algorithm (AlmostUniversalRV or a
// dedicated boundary algorithm), and simulate until the agents meet.
//
//   $ ./quickstart
//
#include <cstdio>

#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace aurv;

  // Agent B starts at (2, 0.6) in A's coordinates, with a mirrored (chi=-1)
  // coordinate system, the same clock rate and speed, and wakes up 1.5 time
  // units after A. Both agents see at distance r = 1.
  const agents::Instance instance =
      agents::Instance::synchronous(/*r=*/1.0, geom::Vec2{2.0, 0.6}, /*phi=*/0.0,
                                    /*t=*/numeric::Rational::from_string("3/2"),
                                    /*chi=*/-1);
  std::printf("instance : %s\n", instance.to_string().c_str());

  // 1. Feasibility (Theorem 3.1) and taxonomy (Section 3.1.1).
  const core::Classification verdict = core::classify(instance);
  std::printf("kind     : %s\n", core::to_string(verdict.kind).c_str());
  std::printf("clause   : %s\n", verdict.clause.c_str());
  std::printf("feasible : %s, covered by AlmostUniversalRV: %s\n",
              verdict.feasible ? "yes" : "no", verdict.covered_by_aurv ? "yes" : "no");
  if (!verdict.feasible) {
    std::printf("No deterministic algorithm can solve this instance.\n");
    return 0;
  }

  // 2. Simulate the recommended algorithm. Both (anonymous!) agents run the
  //    same program; the engine interprets it through each agent's private
  //    frame and reports the first time they see each other.
  sim::EngineConfig config;
  config.max_events = 20'000'000;
  const sim::SimResult result =
      sim::Engine(instance, config).run(core::recommended_algorithm(instance));

  if (result.met) {
    std::printf("rendezvous at time %.6f, distance %.6f (<= r = %.3f)\n", result.meet_time,
                result.final_distance, instance.r());
    std::printf("  A stops at (%.4f, %.4f)\n", result.a_position.x, result.a_position.y);
    std::printf("  B stops at (%.4f, %.4f)\n", result.b_position.x, result.b_position.y);
    std::printf("  phase of Algorithm 1 in progress: %u\n",
                core::aurv_phase_at(result.meet_window_start));
    std::printf("  simulated events: %llu (A ran %llu instructions, B %llu)\n",
                static_cast<unsigned long long>(result.events),
                static_cast<unsigned long long>(result.instructions_a),
                static_cast<unsigned long long>(result.instructions_b));
  } else {
    std::printf("no rendezvous within budget: %s (closest approach %.6f)\n",
                sim::to_string(result.reason).c_str(), result.min_distance_seen);
  }
  return result.met ? 0 : 1;
}
