// Feasibility explorer: classify any instance from the command line, or —
// with no arguments — walk a tour of the instance space showing how each
// parameter of the tuple (r, x, y, phi, tau, v, t, chi) flips the verdict
// of Theorem 3.1.
//
//   $ ./feasibility_explorer                 # guided tour
//   $ ./feasibility_explorer r x y phi tau v t chi
//     e.g. ./feasibility_explorer 1 3 4 0 1 1 4 1     -> boundary-S1
//     (tau, v, t accept exact rationals like 3/2)
//
#include <cstdio>
#include <string>

#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "support/parse.hpp"

namespace {

void show(const char* label, const aurv::agents::Instance& instance) {
  const aurv::core::Classification c = aurv::core::classify(instance);
  std::printf("%-34s %-15s feasible=%-3s aurv=%-3s slack=%+.4f\n", label,
              aurv::core::to_string(c.kind).c_str(), c.feasible ? "yes" : "no",
              c.covered_by_aurv ? "yes" : "no", c.boundary_slack);
  std::printf("    %s\n", c.clause.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aurv;
  using agents::Instance;
  using geom::Vec2;
  using numeric::Rational;

  if (argc == 9) {
    // Strict numerics (support/parse.hpp): atof/atoi would silently turn a
    // typo into a different instance instead of an error.
    try {
      const Instance instance(
          support::parse_double(argv[1], "r"),
          Vec2{support::parse_double(argv[2], "x"), support::parse_double(argv[3], "y")},
          support::parse_double(argv[4], "phi"), Rational::from_string(argv[5]),
          Rational::from_string(argv[6]), Rational::from_string(argv[7]),
          static_cast<int>(support::parse_int(argv[8], "chi")));
      std::printf("%s\n", instance.to_string().c_str());
      show("your instance:", instance);
      return 0;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 3;
    }
  }
  if (argc != 1) {
    std::fprintf(stderr, "usage: %s [r x y phi tau v t chi]\n", argv[0]);
    return 2;
  }

  std::printf("A tour of Theorem 3.1 — how each attribute flips feasibility.\n");
  std::printf("Base geometry: B at (3,4) (dist 5), r = 1.\n\n");
  const Vec2 b{3.0, 4.0};

  std::printf("-- perfectly symmetric agents (the impossible core) --\n");
  show("sync, phi=0, chi=+1, t=0", Instance::synchronous(1.0, b, 0.0, 0, 1));

  std::printf("\n-- wake-up delay as the symmetry breaker (Lemma 3.8) --\n");
  show("t=3  < dist-r", Instance::synchronous(1.0, b, 0.0, 3, 1));
  show("t=4  = dist-r (set S1)", Instance::synchronous(1.0, b, 0.0, 4, 1));
  show("t=5  > dist-r", Instance::synchronous(1.0, b, 0.0, 5, 1));

  std::printf("\n-- orientation as the symmetry breaker (clause 2a) --\n");
  show("phi=0.7, chi=+1, t=0", Instance::synchronous(1.0, b, 0.7, 0, 1));

  std::printf("\n-- opposite chirality: only projections matter (Lemma 3.9) --\n");
  // dist_proj for phi=0 is |x| = 3.
  show("chi=-1, t=1 < distproj-r", Instance::synchronous(1.0, b, 0.0, 1, -1));
  show("chi=-1, t=2 = distproj-r (S2)", Instance::synchronous(1.0, b, 0.0, 2, -1));
  show("chi=-1, t=3 > distproj-r", Instance::synchronous(1.0, b, 0.0, 3, -1));

  std::printf("\n-- dynamics as the symmetry breaker (Theorem 3.1(1)) --\n");
  show("tau=3/2 (clock skew)", {1.0, b, 0.0, Rational::from_string("3/2"), 1, 0, 1});
  show("v=2 (speed difference)", {1.0, b, 0.0, 1, 2, 0, 1});
  show("tau=2, chi=-1, t=0", {1.0, b, 0.0, 2, 1, 0, -1});

  std::printf("\n-- trivial overlap --\n");
  show("r=6 >= dist", Instance::synchronous(6.0, b, 0.0, 0, 1));
  return 0;
}
