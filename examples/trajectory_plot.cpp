// Trajectory dump and ASCII plot: simulate an instance with trace recording
// and render both agents' paths. With --tsv, emit plot-ready rows
// (time, ax, ay, bx, by, dist) for external plotting instead.
//
//   $ ./trajectory_plot           # ASCII render of a type-4 rendezvous
//   $ ./trajectory_plot --tsv     # machine-readable trace
//
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/almost_universal.hpp"
#include "geom/angle.hpp"
#include "sim/engine.hpp"

namespace {

void ascii_render(const aurv::sim::SimResult& result) {
  // Bounding box over both trajectories.
  double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
  for (const aurv::sim::TracePoint& p : result.trace.points()) {
    for (const aurv::geom::Vec2 v : {p.a, p.b}) {
      min_x = std::min(min_x, v.x);
      max_x = std::max(max_x, v.x);
      min_y = std::min(min_y, v.y);
      max_y = std::max(max_y, v.y);
    }
  }
  const double pad_x = 0.05 * (max_x - min_x + 1e-9);
  const double pad_y = 0.05 * (max_y - min_y + 1e-9);
  min_x -= pad_x, max_x += pad_x, min_y -= pad_y, max_y += pad_y;

  constexpr int kWidth = 100;
  constexpr int kHeight = 36;
  std::vector<std::string> canvas(kHeight, std::string(kWidth, ' '));
  const auto plot = [&](aurv::geom::Vec2 p, char glyph) {
    const int col = static_cast<int>((p.x - min_x) / (max_x - min_x) * (kWidth - 1));
    const int row = static_cast<int>((p.y - min_y) / (max_y - min_y) * (kHeight - 1));
    char& cell = canvas[kHeight - 1 - row][col];
    if (cell == ' ' || glyph == 'X') cell = glyph;
    else if (cell != glyph && glyph != '.') cell = '#';  // both agents visited
  };
  // Densify: interpolate between consecutive trace points.
  const auto& pts = result.trace.points();
  for (std::size_t k = 1; k < pts.size(); ++k) {
    for (int s = 0; s <= 20; ++s) {
      const double f = s / 20.0;
      plot({pts[k - 1].a.x + f * (pts[k].a.x - pts[k - 1].a.x),
            pts[k - 1].a.y + f * (pts[k].a.y - pts[k - 1].a.y)},
           'a');
      plot({pts[k - 1].b.x + f * (pts[k].b.x - pts[k - 1].b.x),
            pts[k - 1].b.y + f * (pts[k].b.y - pts[k - 1].b.y)},
           'b');
    }
  }
  if (result.met) {
    plot(result.a_position, 'X');
    plot(result.b_position, 'X');
  }
  std::printf("  y in [%.2f, %.2f], x in [%.2f, %.2f]   a=agent A, b=agent B, #=both, X=meet\n",
              min_y, max_y, min_x, max_x);
  for (const std::string& row : canvas) std::printf("|%s|\n", row.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aurv;
  const bool tsv = argc > 1 && std::strcmp(argv[1], "--tsv") == 0;

  // A type-4 instance: same clocks, B twice as fast, mirrored chirality.
  const agents::Instance instance(/*r=*/0.8, geom::Vec2{1.0, 0.5}, /*phi=*/0.7,
                                  /*tau=*/1, /*v=*/2, /*t=*/0, /*chi=*/-1);

  sim::EngineConfig config;
  config.max_events = 8'000'000;
  config.trace_capacity = 1 << 15;
  const sim::SimResult result =
      sim::Engine(instance, config).run([] { return core::almost_universal_rv(); });

  if (tsv) {
    std::printf("time\tax\tay\tbx\tby\tdist\n");
    for (const sim::TracePoint& p : result.trace.points()) {
      std::printf("%.9g\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\n", p.time, p.a.x, p.a.y, p.b.x, p.b.y,
                  p.distance);
    }
    // Truncation notice on stderr so TSV consumers are untouched: a plot
    // built from a silently clipped trace is a wrong plot.
    if (result.trace.dropped() > 0)
      std::fprintf(stderr, "warning: trace full, %llu points dropped (raise trace_capacity)\n",
                   static_cast<unsigned long long>(result.trace.dropped()));
    return 0;
  }

  std::printf("instance: %s\n", instance.to_string().c_str());
  std::printf("result  : met=%s at t=%.4f, distance %.4f, %llu events\n",
              result.met ? "yes" : "no", result.meet_time, result.final_distance,
              static_cast<unsigned long long>(result.events));
  std::printf("trace   : %zu points recorded, %llu dropped%s\n\n", result.trace.points().size(),
              static_cast<unsigned long long>(result.trace.dropped()),
              result.trace.dropped() > 0 ? " (raise trace_capacity for a faithful plot)" : "");
  ascii_render(result);
  return 0;
}
