// "Latecomers help to meet": with identical, shifted coordinate systems the
// wake-up delay t is the *only* symmetry breaker — and it must be at least
// dist - r. This demo sweeps the delay across the feasibility boundary for
// one fixed geometry and simulates our Latecomers procedure (the [38]
// substitute) on each instance.
//
//   $ ./latecomers_demo [x y [r]]
//
// The optional arguments move B's start (and the visibility radius) so the
// sweep crosses a different boundary t* = dist - r. Strictly parsed
// (support/parse.hpp) — garbage is an error, not a silent zero.
#include <cstdio>

#include "algo/latecomers.hpp"
#include "core/feasibility.hpp"
#include "sim/engine.hpp"
#include "support/parse.hpp"

int main(int argc, char** argv) {
  using namespace aurv;
  using agents::Instance;
  using numeric::Rational;

  geom::Vec2 b{1.5, 0.0};
  double r = 1.0;  // boundary at t = dist - r = 0.5
  try {
    if (argc != 1 && argc != 3 && argc != 4)
      throw std::invalid_argument("usage: latecomers_demo [x y [r]]");
    if (argc >= 3)
      b = {support::parse_double(argv[1], "x"), support::parse_double(argv[2], "y")};
    if (argc == 4) r = support::parse_double(argv[3], "r");
    if (r <= 0.0 || b.norm() <= r)
      throw std::invalid_argument("need r > 0 and dist(b) > r (a non-trivial boundary)");
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  // The sweep is expressed in multiples of t* so it crosses *this*
  // geometry's boundary; t* is the exact rational matching the double
  // dist - r, so the m = 1 row lands on the boundary up to the rounding
  // already inherent in dist.
  const Rational t_star = Rational::from_double(b.norm() - r);
  std::printf("Geometry: B at (%.1f, %.1f), dist = %.2f, r = %.2f  =>  boundary t* = %.2f\n\n",
              b.x, b.y, b.norm(), r, t_star.to_double());
  std::printf("%-8s %-15s %-10s %-12s %-12s\n", "t", "kind", "met", "meet time", "min dist");

  for (const char* multiple_text : {"0", "1/2", "1", "3/2", "2", "4", "8", "16"}) {
    const Rational t = t_star * Rational::from_string(multiple_text);
    const Instance instance = Instance::synchronous(r, b, 0.0, t, 1);
    const core::Classification c = core::classify(instance);

    sim::EngineConfig config;
    config.max_events = 4'000'000;
    // For infeasible instances a horizon keeps the run finite and lets us
    // report the closest approach instead.
    if (!c.feasible) config.horizon = Rational(5000);
    const sim::SimResult result =
        sim::Engine(instance, config).run([] { return algo::latecomers(); });

    std::printf("%-8.4g %-15s %-10s ", t.to_double(), core::to_string(c.kind).c_str(),
                result.met ? "yes" : "no");
    if (result.met) {
      std::printf("%-12.4f %-12.4f\n", result.meet_time, result.final_distance);
    } else {
      std::printf("%-12s %-12.4f\n", "-", result.min_distance_seen);
    }
  }

  std::printf(
      "\nReading: below t* = %.4g the later agent cannot compensate the shift —\n"
      "the closest approach stays pinned at dist - t > r; from t* on the\n"
      "instance is feasible. The t = t* row sits on the feasibility boundary\n"
      "(the exception set S1, up to the double rounding of dist): meeting there\n"
      "requires a full-speed straight run aimed *exactly* at B, so it succeeds\n"
      "only when B happens to lie on one of Latecomers' directions — and\n"
      "./boundary_rendezvous shows how an adversary aims the geometry into\n"
      "a direction gap to defeat any fixed algorithm on S1/S2.\n",
      t_star.to_double());
  return 0;
}
