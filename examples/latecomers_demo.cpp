// "Latecomers help to meet": with identical, shifted coordinate systems the
// wake-up delay t is the *only* symmetry breaker — and it must be at least
// dist - r. This demo sweeps the delay across the feasibility boundary for
// one fixed geometry and simulates our Latecomers procedure (the [38]
// substitute) on each instance.
//
//   $ ./latecomers_demo
//
#include <cstdio>

#include "algo/latecomers.hpp"
#include "core/feasibility.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace aurv;
  using agents::Instance;
  using numeric::Rational;

  const geom::Vec2 b{1.5, 0.0};
  const double r = 1.0;  // boundary at t = dist - r = 0.5
  std::printf("Geometry: B at (%.1f, %.1f), dist = %.2f, r = %.2f  =>  boundary t* = %.2f\n\n",
              b.x, b.y, b.norm(), r, b.norm() - r);
  std::printf("%-8s %-15s %-10s %-12s %-12s\n", "t", "kind", "met", "meet time", "min dist");

  for (const char* t_text : {"0", "1/4", "1/2", "3/4", "1", "2", "4", "8"}) {
    const Instance instance =
        Instance::synchronous(r, b, 0.0, Rational::from_string(t_text), 1);
    const core::Classification c = core::classify(instance);

    sim::EngineConfig config;
    config.max_events = 4'000'000;
    // For infeasible instances a horizon keeps the run finite and lets us
    // report the closest approach instead.
    if (!c.feasible) config.horizon = Rational(5000);
    const sim::SimResult result =
        sim::Engine(instance, config).run([] { return algo::latecomers(); });

    std::printf("%-8s %-15s %-10s ", t_text, core::to_string(c.kind).c_str(),
                result.met ? "yes" : "no");
    if (result.met) {
      std::printf("%-12.4f %-12.4f\n", result.meet_time, result.final_distance);
    } else {
      std::printf("%-12s %-12.4f\n", "-", result.min_distance_seen);
    }
  }

  std::printf(
      "\nReading: below t* = 0.5 the later agent cannot compensate the shift —\n"
      "the closest approach stays pinned at dist - t > r. From t* on, the first\n"
      "eastward trip already closes the gap (B is still asleep) at time 0.5.\n"
      "The t = t* row sits in the exception set S1 and meets here only because\n"
      "this B happens to lie exactly on one of Latecomers' directions: meeting\n"
      "on the boundary requires a full-speed straight run aimed *exactly* at B,\n"
      "and ./boundary_rendezvous shows how an adversary aims the geometry into\n"
      "a direction gap to defeat any fixed algorithm on S1/S2.\n");
  return 0;
}
