// aurv_cli — command-line driver for the library: classify instances, run
// any of the implemented algorithms on them, or build adversarial boundary
// instances, without writing C++.
//
//   aurv_cli classify  r x y phi tau v t chi
//   aurv_cli run       r x y phi tau v t chi [algorithm] [max_events]
//   aurv_cli adversary s1|s2 [algorithm]
//   aurv_cli sweep     scenario.json [threads] [--threads N] [--quiet]
//                      [--progress [SECS]] [--metrics-out PATH]
//                      [--trace-out PATH] [--status-port PORT]
//
//   algorithms: aurv (default) | latecomers | cgkk | cgkk-ext |
//               wait-and-search | boundary | recommended
//   tau, v, t accept exact rationals ("3/2"); phi is radians. All numeric
//   arguments are parsed strictly: malformed input is an error, not 0.
//
// Examples:
//   aurv_cli classify 1 3 4 0 1 1 4 1          # the S1 boundary
//   aurv_cli run 1 2 0.6 0 1 1 3/2 -1          # type-1 rendezvous via AURV
//   aurv_cli run 1 3 4 0 1 1 4 1 boundary      # dedicated S1 algorithm
//   aurv_cli adversary s2 latecomers           # defeat Latecomers on S2
//   aurv_cli sweep scenarios/smoke_type2.json  # campaign, summary on stdout
//
// `sweep` is a thin alias for `aurv_sweep run` (which has the full option
// set: JSONL records, checkpoints, resume) sharing its observability
// surface: `--progress` heartbeats, `--metrics-out` snapshots,
// `--trace-out` Chrome-trace spans and the `--status-port` embedded HTTP
// status server (see EXPERIMENTS.md, "Watching a live run").
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "algo/boundary.hpp"
#include "core/adversary.hpp"
#include "core/feasibility.hpp"
#include "driver_telemetry.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "gatherx/census.hpp"
#include "gatherx/scenario.hpp"
#include "sim/engine.hpp"
#include "support/jsonl.hpp"
#include "support/parse.hpp"
#include "support/telemetry.hpp"

namespace {

using namespace aurv;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s classify  r x y phi tau v t chi\n"
               "  %s run       r x y phi tau v t chi [algorithm] [max_events]\n"
               "  %s adversary s1|s2 [algorithm]\n"
               "  %s sweep     scenario.json [threads] [--threads N] [--quiet]\n"
               "               [--progress [SECS]] [--metrics-out PATH] [--trace-out PATH]\n"
               "               [--status-port PORT]\n"
               "algorithms: aurv | latecomers | cgkk | cgkk-ext | wait-and-search |"
               " boundary | recommended\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

agents::Instance parse_instance(char** argv) {
  return agents::Instance(
      support::parse_double(argv[0], "r"),
      geom::Vec2{support::parse_double(argv[1], "x"), support::parse_double(argv[2], "y")},
      support::parse_double(argv[3], "phi"), numeric::Rational::from_string(argv[4]),
      numeric::Rational::from_string(argv[5]), numeric::Rational::from_string(argv[6]),
      static_cast<int>(support::parse_int(argv[7], "chi")));
}

sim::AlgorithmFactory pick_algorithm(const std::string& name, const agents::Instance& instance) {
  return exp::resolve_algorithm(name)(instance);
}

void print_classification(const agents::Instance& instance) {
  const core::Classification c = core::classify(instance, 1e-9);
  std::printf("instance : %s\n", instance.to_string().c_str());
  std::printf("kind     : %s\n", core::to_string(c.kind).c_str());
  std::printf("clause   : %s\n", c.clause.c_str());
  std::printf("feasible : %s\ncovered  : %s\nslack    : %+.6g\n", c.feasible ? "yes" : "no",
              c.covered_by_aurv ? "yes" : "no", c.boundary_slack);
}

int cmd_classify(int argc, char** argv) {
  if (argc != 8) return usage("aurv_cli");
  print_classification(parse_instance(argv));
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 8 || argc > 10) return usage("aurv_cli");
  const agents::Instance instance = parse_instance(argv);
  const std::string algorithm = argc >= 9 ? argv[8] : "aurv";
  print_classification(instance);

  sim::EngineConfig config;
  config.max_events = argc >= 10 ? support::parse_uint(argv[9], "max_events") : 20'000'000;
  const sim::SimResult result =
      sim::Engine(instance, config).run(pick_algorithm(algorithm, instance));
  std::printf("algorithm: %s\n", algorithm.c_str());
  std::printf("result   : %s\n", sim::to_string(result.reason).c_str());
  if (result.met) {
    std::printf("meet time: %.6g\n", result.meet_time);
    std::printf("distance : %.9f\n", result.final_distance);
    std::printf("A at (%.4f, %.4f), B at (%.4f, %.4f)\n", result.a_position.x,
                result.a_position.y, result.b_position.x, result.b_position.y);
  } else {
    std::printf("closest  : %.6f\n", result.min_distance_seen);
  }
  std::printf("events   : %llu\n", static_cast<unsigned long long>(result.events));
  return result.met ? 0 : 1;
}

int cmd_adversary(int argc, char** argv) {
  if (argc < 1 || argc > 2) return usage("aurv_cli");
  const std::string set = argv[0];
  const std::string name = argc >= 2 ? argv[1] : "aurv";
  if (set != "s1" && set != "s2") return usage("aurv_cli");

  // The candidate must be instance-independent; dedicated/recommended make
  // no sense here.
  const agents::Instance dummy = agents::Instance::synchronous(1.0, {2, 0}, 0, 0, 1);
  const sim::AlgorithmFactory candidate = pick_algorithm(name, dummy);
  const core::AdversaryReport report = set == "s2"
                                           ? core::construct_s2_counterexample(candidate)
                                           : core::construct_s1_counterexample(candidate);
  std::printf("defeating %s instance for '%s':\n", set.c_str(), name.c_str());
  std::printf("  %s\n", report.instance.to_string().c_str());
  std::printf("  aimed direction %.6f rad, margin %.6f rad over %zu used directions\n",
              report.chosen_direction, report.angular_gap, report.directions_used);

  sim::EngineConfig config;
  config.horizon = numeric::Rational(4096);
  config.max_events = 8'000'000;
  const sim::SimResult defeat = sim::Engine(report.instance, config).run(candidate);
  std::printf("  candidate within horizon 4096: %s (closest %.6f > r = %.3f)\n",
              defeat.met ? "MET (unexpected)" : "no rendezvous", defeat.min_distance_seen,
              report.instance.r());
  const bool s2 = set == "s2";
  const sim::SimResult dedicated = sim::Engine(report.instance, {}).run([&report, s2] {
    return s2 ? algo::boundary_s2_algorithm(report.instance)
              : algo::boundary_s1_algorithm(report.instance);
  });
  std::printf("  dedicated algorithm: %s at distance %.9f\n",
              dedicated.met ? "meets" : "fails", dedicated.final_distance);
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  if (argc < 1) return usage("aurv_cli");
  namespace telemetry = support::telemetry;
  const auto started = std::chrono::steady_clock::now();
  const std::string spec_path = argv[0];
  exp::CampaignOptions options;
  driver::TelemetryCli telemetry_cli;
  bool quiet = false;

  for (int k = 1; k < argc; ++k) {
    const std::string flag = argv[k];
    if (flag == "--threads") {
      if (k + 1 >= argc) throw std::invalid_argument("--threads needs a value");
      options.threads = support::parse_uint(argv[++k], "--threads");
    } else if (flag == "--quiet") {
      quiet = true;
    } else if (telemetry_cli.parse(flag, k, argc, argv)) {
    } else if (k == 1 && flag[0] != '-') {
      // Pre-flag spelling: a bare thread count right after the scenario.
      options.threads = support::parse_uint(argv[k], "threads");
    } else {
      std::fprintf(stderr, "unknown option: %s\n", flag.c_str());
      return usage("aurv_cli");
    }
  }

  telemetry_cli.open_trace();

  // Same kind dispatch as aurv_sweep run: a gather-census spec drives the
  // gathering census runner, anything else the two-agent campaign runner.
  // One load + parse; path context is added to either kind's parse error.
  try {
    const auto finish = [&](const char* kind, std::uint64_t fingerprint) {
      telemetry_cli.close_trace(quiet);
      telemetry::RunManifest manifest;
      manifest.kind = kind;
      manifest.spec_path = spec_path;
      manifest.fingerprint = support::fingerprint_hex(fingerprint);
      manifest.threads = driver::resolved_threads(options.threads);
      telemetry_cli.write_metrics(manifest, driver::wall_ms_since(started), quiet);
    };
    support::Json spec_json;
    {
      const support::trace::Span span("load", "phase",
                                      support::trace::Span::Options{.announce = true});
      spec_json = support::Json::load_file(spec_path);
    }
    if (spec_json.string_or("kind", "") == "gather-census") {
      const gatherx::GatherScenarioSpec spec = gatherx::GatherScenarioSpec::from_json(spec_json);
      std::optional<telemetry::Heartbeat> heartbeat =
          telemetry_cli.start_heartbeat("gather-census", spec_path);
      const auto statusd = telemetry_cli.start_statusd(
          "gather-census", spec_path, support::fingerprint_hex(spec.fingerprint()),
          driver::resolved_threads(options.threads));
      std::optional<gatherx::CensusResult> run;
      {
        const support::trace::Span span("run", "phase",
                                        support::trace::Span::Options{.announce = true});
        run.emplace(gatherx::run_census(spec, options));
      }
      if (heartbeat.has_value()) heartbeat->stop();
      std::printf("%s", run->summary(spec).dump(2).c_str());
      finish("gather-census", spec.fingerprint());
      return 0;
    }
    const exp::ScenarioSpec spec = exp::ScenarioSpec::from_json(spec_json);
    std::optional<telemetry::Heartbeat> heartbeat =
        telemetry_cli.start_heartbeat("campaign", spec_path);
    const auto statusd = telemetry_cli.start_statusd(
        "campaign", spec_path, support::fingerprint_hex(spec.fingerprint()),
        driver::resolved_threads(options.threads));
    std::optional<exp::CampaignResult> run;
    {
      const support::trace::Span span("run", "phase",
                                      support::trace::Span::Options{.announce = true});
      run.emplace(exp::run_campaign(spec, options));
    }
    if (heartbeat.has_value()) heartbeat->stop();
    std::printf("%s", run->summary(spec).dump(2).c_str());
    finish("campaign", spec.fingerprint());
    return 0;
  } catch (const std::invalid_argument& error) {
    throw std::invalid_argument(spec_path + ": " + error.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  try {
    if (std::strcmp(argv[1], "classify") == 0) return cmd_classify(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "run") == 0) return cmd_run(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "adversary") == 0) return cmd_adversary(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "sweep") == 0) return cmd_sweep(argc - 2, argv + 2);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 3;
  }
  return usage(argv[0]);
}
