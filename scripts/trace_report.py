#!/usr/bin/env python3
"""Inspect aurv --trace-out files (Chrome Trace Event Format).

Subcommands:

    python3 scripts/trace_report.py show trace.json
        Pretty-print one trace: the phase-level wall breakdown
        (load/run/emit spans), per-span-name duration aggregates
        (count, total, p50, p95) and per-lane shard utilization —
        busy time per lane (tid), the imbalance ratio max/mean, and
        the busiest lanes. Lane 0 is the serialized side (wave loop,
        checkpoints); lanes >= 1 are shard-local tracks.

    python3 scripts/trace_report.py diff before.json after.json
        Per-span-name count and total-duration comparison between two
        traces of the same workload (e.g. before/after an optimisation,
        or 1-shard vs 4-shard). Timestamps are wall-clock, so expect
        noise — this is a profile diff, not a determinism check.

Stdlib-only, like metrics_report.py. A trace written by a run that was
killed mid-flight has no JSON footer; that parse failure is reported as
such rather than a traceback.
"""

import json
import sys


def load_events(path: str) -> list:
    try:
        with open(path) as handle:
            trace = json.load(handle)
    except OSError as error:
        raise SystemExit(f"{path}: {error}")
    except json.JSONDecodeError as error:
        raise SystemExit(
            f"{path}: not a complete trace file ({error}); a killed run "
            "leaves no JSON footer — re-run to completion, or trim the "
            "partial last line and append \"]}\"")
    events = trace.get("traceEvents") if isinstance(trace, dict) else None
    if not isinstance(events, list):
        raise SystemExit(f"{path}: no traceEvents array")
    return events


def complete_spans(events: list) -> list:
    """The ph == "X" spans: (name, cat, ts_us, dur_us, tid)."""
    spans = []
    for event in events:
        if isinstance(event, dict) and event.get("ph") == "X":
            spans.append((str(event.get("name", "?")), str(event.get("cat", "?")),
                          int(event.get("ts", 0)), int(event.get("dur", 0)),
                          int(event.get("tid", 0))))
    return spans


def percentile(sorted_values: list, fraction: float) -> int:
    """Nearest-rank percentile of a pre-sorted list."""
    if not sorted_values:
        return 0
    rank = max(1, round(fraction * len(sorted_values)))
    return sorted_values[rank - 1]


def format_us(us: int) -> str:
    if us >= 1_000_000:
        return f"{us / 1e6:.2f} s"
    if us >= 1_000:
        return f"{us / 1e3:.2f} ms"
    return f"{us} us"


def by_name(spans: list) -> dict:
    """name -> list of durations (us)."""
    groups: dict = {}
    for name, _cat, _ts, dur, _tid in spans:
        groups.setdefault(name, []).append(dur)
    return groups


# ---------------------------------------------------------------------------
# show
# ---------------------------------------------------------------------------


def show(path: str) -> None:
    events = load_events(path)
    spans = complete_spans(events)
    if not spans:
        print(f"{path}: no complete spans")
        return
    wall_start = min(ts for _n, _c, ts, _d, _t in spans)
    wall_end = max(ts + dur for _n, _c, ts, dur, _t in spans)
    wall = max(1, wall_end - wall_start)
    print(f"{path}: {len(events)} events, {len(spans)} spans, "
          f"wall {format_us(wall)}")

    phases = [(name, dur) for name, cat, _ts, dur, _tid in spans if cat == "phase"]
    if phases:
        print("\nphases (wall breakdown):")
        for name, dur in phases:
            print(f"    {name:<20} {format_us(dur):>12}  {100.0 * dur / wall:5.1f}%")

    print("\nspans by name:")
    print(f"    {'name':<20} {'count':>8} {'total':>12} {'p50':>10} {'p95':>10}")
    groups = by_name(spans)
    for name in sorted(groups, key=lambda n: -sum(groups[n])):
        durations = sorted(groups[name])
        print(f"    {name:<20} {len(durations):>8} {format_us(sum(durations)):>12} "
              f"{format_us(percentile(durations, 0.50)):>10} "
              f"{format_us(percentile(durations, 0.95)):>10}")

    lanes: dict = {}
    for _name, _cat, _ts, dur, tid in spans:
        if tid > 0:
            count, busy = lanes.get(tid, (0, 0))
            lanes[tid] = (count + 1, busy + dur)
    if lanes:
        busies = [busy for _count, busy in lanes.values()]
        mean_busy = sum(busies) / len(busies)
        imbalance = max(busies) / mean_busy if mean_busy else 0.0
        print(f"\nshard lanes: {len(lanes)}, busy mean {format_us(round(mean_busy))}, "
              f"max {format_us(max(busies))}, imbalance {imbalance:.2f}x, "
              f"aggregate utilization {100.0 * sum(busies) / (len(lanes) * wall):.1f}%")
        top = sorted(lanes.items(), key=lambda item: -item[1][1])[:8]
        for tid, (count, busy) in top:
            print(f"    lane {tid:<6} {count:>8} spans {format_us(busy):>12} busy")


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------


def diff(before_path: str, after_path: str) -> None:
    before = by_name(complete_spans(load_events(before_path)))
    after = by_name(complete_spans(load_events(after_path)))
    print(f"before: {before_path}")
    print(f"after : {after_path}")
    print(f"\n    {'name':<20} {'count':>13} {'total':>22}  ratio")
    for name in sorted(set(before) | set(after)):
        b_durations, a_durations = before.get(name, []), after.get(name, [])
        b_total, a_total = sum(b_durations), sum(a_durations)
        ratio = f"{a_total / b_total:.2f}x" if b_total else "-"
        print(f"    {name:<20} {len(b_durations):>5} -> {len(a_durations):<5} "
              f"{format_us(b_total):>9} -> {format_us(a_total):<9}  {ratio}")


def main() -> None:
    if len(sys.argv) < 2:
        raise SystemExit(__doc__)
    command, arguments = sys.argv[1], sys.argv[2:]
    if command == "show" and len(arguments) == 1:
        show(arguments[0])
    elif command == "diff" and len(arguments) == 2:
        diff(arguments[0], arguments[1])
    else:
        raise SystemExit(__doc__)


if __name__ == "__main__":
    main()
