#!/usr/bin/env python3
"""Inspect and audit aurv_sweep search --provenance streams.

Subcommands:

    python3 scripts/provenance_report.py show prov.jsonl
        Summarise the stream: record counts per action, wave span, the
        incumbent trajectory, and the pruning pressure per wave.

    python3 scripts/provenance_report.py audit prov.jsonl certificate.json
        Replay the decision stream and cross-check it against the
        certificate the same (completed) search emitted. The audit
        re-derives from first principles what the certificate claims:

          * every decision is structurally sound — box ids are unique,
            every decided box (except the root) is a recorded child of a
            box branched in a strictly earlier wave;
          * the incumbent ladder is strictly improving, numbered 1..N
            with N == stats.improvements, and its final rung matches the
            certificate's incumbent (score, box id, found_at_box);
          * every prune is justified — pruned-bound / pruned-pop records
            cite an incumbent that existed at decision time and a bound
            that cannot beat it by more than min_improvement;
            pruned-infeasible records carry a -inf bound;
          * the decision tally reproduces the certificate statistics
            (evaluated, branched, leaves, pruned, improvements);
          * the open frontier reconstructed from the stream (branched
            children never decided) matches open_boxes and
            frontier_bound, and is empty when the certificate claims
            exhaustion.

        Exits nonzero with one diagnostic per violation. A passing audit
        means the certificate's claims are entailed by the recorded
        decisions, not merely asserted. The stream and the certificate
        must come from the same search run to completion (one shot or
        across resume — the stream is byte-identical either way).

Stdlib-only on purpose, like the other report scripts.
"""

import json
import sys

ACTIONS = ("branched", "leaf", "pruned-infeasible", "pruned-bound", "pruned-pop")
# Bounds round-trip through JSON at full double precision; the slack only
# absorbs decimal-formatting wobble, not real bound violations.
EPSILON = 1e-9


def fail(message: str) -> None:
    raise SystemExit(f"AUDIT FAIL: {message}")


def as_bound(value):
    """Decodes the bound encoding: a number, or "inf"/"-inf" strings."""
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    fail(f"malformed bound {value!r}")


def load_stream(path: str):
    """Returns (header, records). Tolerates no torn tail: every line must
    parse — the writer flushes records before the journal they fold under,
    and an audit of a completed run must see the complete stream."""
    try:
        with open(path) as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        raise SystemExit(f"{path}: {error}")
    if not lines:
        fail(f"{path}: empty stream (no header)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        fail(f"{path}:1: unparseable header ({error})")
    if not isinstance(header, dict) or header.get("kind") != "search-provenance":
        fail(f"{path}:1: not a search-provenance header")
    if header.get("schema") != 1:
        fail(f"{path}:1: schema {header.get('schema')!r}, expected 1")
    records = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            fail(f"{path}:{number}: unparseable record ({error})")
        if not isinstance(record, dict):
            fail(f"{path}:{number}: record is not an object")
        record["_line"] = number
        records.append(record)
    return header, records


def load_certificate(path: str):
    try:
        with open(path) as handle:
            certificate = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"{path}: {error}")
    if certificate.get("kind") != "search-certificate":
        raise SystemExit(f"{path}: not a search-certificate")
    return certificate


# ---------------------------------------------------------------------------
# audit
# ---------------------------------------------------------------------------


def audit(stream_path: str, certificate_path: str) -> None:
    _, records = load_stream(stream_path)
    certificate = load_certificate(certificate_path)
    search = certificate["search"]
    stats = search["stats"]
    budget = certificate.get("scenario", {}).get("budget", {})
    min_improvement = float(budget.get("min_improvement", 0.0))

    decisions = {}    # box id -> decision record
    children = {}     # child id -> bound recorded at spawn time
    incumbents = []   # incumbent records, in stream order
    last_wave = 0

    for record in records:
        line = record["_line"]
        wave = record.get("wave")
        if not isinstance(wave, int) or isinstance(wave, bool) or wave < 0:
            fail(f"line {line}: missing or malformed wave number")
        if wave < last_wave:
            fail(f"line {line}: wave {wave} after wave {last_wave} (stream out of order)")
        last_wave = wave
        box = record.get("box")
        if not isinstance(box, str):
            fail(f"line {line}: missing box id")

        if "incumbent" in record:
            seq = record["incumbent"]
            if seq != len(incumbents) + 1:
                fail(f"line {line}: incumbent #{seq}, expected #{len(incumbents) + 1} "
                     f"(ladder must be numbered 1..N in order)")
            score = record.get("score")
            if not isinstance(score, (int, float)) or isinstance(score, bool):
                fail(f"line {line}: incumbent without a numeric score")
            if incumbents and score <= incumbents[-1]["score"] + min_improvement:
                fail(f"line {line}: incumbent #{seq} score {score} does not improve "
                     f"on #{seq - 1} ({incumbents[-1]['score']}) by more than "
                     f"min_improvement={min_improvement}")
            incumbents.append(record)
            continue

        action = record.get("action")
        if action not in ACTIONS:
            fail(f"line {line}: unknown action {action!r}")
        if box in decisions:
            fail(f"line {line}: box {box!r} decided twice "
                 f"(first at line {decisions[box]['_line']})")
        bound = as_bound(record.get("bound"))
        inc = record.get("inc")
        if not isinstance(inc, int) or isinstance(inc, bool) or inc < 0:
            fail(f"line {line}: missing or malformed incumbent sequence number")
        if inc > len(incumbents):
            fail(f"line {line}: cites incumbent #{inc} before it was found")

        # Prune justification: the cited incumbent must make the bound
        # worthless (or the box must be infeasible outright).
        if action in ("pruned-bound", "pruned-pop"):
            if bound == float("-inf"):
                pass  # infeasible bounds are always prunable
            elif inc == 0:
                fail(f"line {line}: {action} of {box!r} cites no incumbent and the "
                     f"bound {bound} is not -inf — nothing justified this prune")
            else:
                threshold = incumbents[inc - 1]["score"] + min_improvement
                if bound > threshold + EPSILON:
                    fail(f"line {line}: {action} of {box!r} with bound {bound} > "
                         f"incumbent #{inc} score + min_improvement = {threshold} "
                         f"— this box could have beaten the incumbent")
        if action == "pruned-infeasible" and bound != float("-inf"):
            fail(f"line {line}: pruned-infeasible of {box!r} with finite bound {bound}")

        # Lineage: every decided box except the root must have been
        # recorded as a child of its parent's branch. Popped decisions
        # (branched / leaf / pruned-pop) happen in a strictly later wave
        # than the parent's branch; spawn prunes (pruned-bound and
        # pruned-infeasible at spawn time) land in the parent's own wave.
        if box:
            parent = box[:-1]
            parent_decision = decisions.get(parent)
            if parent_decision is None or parent_decision["action"] != "branched":
                fail(f"line {line}: box {box!r} decided but parent {parent!r} "
                     f"was never branched")
            popped = action in ("branched", "leaf", "pruned-pop")
            if popped and parent_decision["wave"] >= wave:
                fail(f"line {line}: box {box!r} popped in wave {wave} but its "
                     f"parent branched in wave {parent_decision['wave']} — "
                     f"children must pop in a strictly later wave")
            if not popped and parent_decision["wave"] > wave:
                fail(f"line {line}: box {box!r} spawn-pruned in wave {wave} "
                     f"before its parent branched in wave {parent_decision['wave']}")
            if box not in children:
                fail(f"line {line}: box {box!r} decided but absent from its "
                     f"parent's children list")

        if action == "branched":
            child_entries = record.get("children")
            if not isinstance(child_entries, list) or not child_entries:
                fail(f"line {line}: branched {box!r} without a children list")
            for entry in child_entries:
                child = entry.get("box")
                if not isinstance(child, str) or child[:-1] != box:
                    fail(f"line {line}: branched {box!r} lists child "
                         f"{entry.get('box')!r} that is not its refinement")
                if child in children:
                    fail(f"line {line}: child {child!r} spawned twice")
                children[child] = as_bound(entry.get("bound"))
        decisions[box] = record

    # ---- tally vs. the certificate statistics -----------------------------
    tally = {action: 0 for action in ACTIONS}
    for record in decisions.values():
        tally[record["action"]] += 1
    evaluated = tally["branched"] + tally["leaf"]
    pruned = tally["pruned-infeasible"] + tally["pruned-bound"] + tally["pruned-pop"]
    checks = [
        ("evaluated", evaluated, stats["evaluated"]),
        ("branched", tally["branched"], stats["branched"]),
        ("leaves", tally["leaf"], stats["leaves"]),
        ("pruned", pruned, stats["pruned"]),
        ("improvements", len(incumbents), stats["improvements"]),
    ]
    for name, derived, claimed in checks:
        if derived != claimed:
            fail(f"stats.{name}: stream entails {derived}, certificate claims {claimed}")

    # ---- incumbent ladder vs. the certificate incumbent -------------------
    incumbent = search.get("incumbent", {})
    if incumbents:
        final = incumbents[-1]
        if final["score"] != incumbent.get("score"):
            fail(f"final incumbent score {final['score']} != certificate "
                 f"{incumbent.get('score')}")
        if final["box"] != incumbent.get("box"):
            fail(f"final incumbent box {final['box']!r} != certificate "
                 f"{incumbent.get('box')!r}")
        if final.get("at") != incumbent.get("found_at_box"):
            fail(f"final incumbent found at box #{final.get('at')} != certificate "
                 f"found_at_box {incumbent.get('found_at_box')}")
    elif incumbent:
        fail("certificate has an incumbent the stream never recorded")

    # ---- the open frontier, reconstructed ---------------------------------
    # Everything ever spawned (plus the root) minus everything decided is
    # exactly what the certificate must report as still open.
    universe = set(children)
    universe.add("")
    open_boxes = universe - set(decisions)
    if len(open_boxes) != search["open_boxes"]:
        fail(f"open frontier: stream entails {len(open_boxes)} open boxes, "
             f"certificate claims {search['open_boxes']}")
    if search.get("exhausted") and open_boxes:
        fail(f"certificate claims exhaustion but {len(open_boxes)} boxes are "
             f"still open in the stream")
    if open_boxes:
        frontier_bound = max(children[box] for box in open_boxes)
        claimed = as_bound(search["frontier_bound"])
        if abs(frontier_bound - claimed) > EPSILON:
            fail(f"frontier_bound: stream entails {frontier_bound}, certificate "
                 f"claims {claimed}")

    print(f"AUDIT PASS: {len(records)} records entail the certificate "
          f"({evaluated} evaluated, {pruned} pruned, {len(incumbents)} incumbent "
          f"improvements, {len(open_boxes)} open)")


# ---------------------------------------------------------------------------
# show
# ---------------------------------------------------------------------------


def show(stream_path: str) -> None:
    header, records = load_stream(stream_path)
    print(f"{stream_path}: search-provenance, fingerprint {header.get('fingerprint', '?')}")
    decisions = [r for r in records if "action" in r]
    incumbents = [r for r in records if "incumbent" in r]
    waves = [r["wave"] for r in records if isinstance(r.get("wave"), int)]
    print(f"  {len(records)} records over waves "
          f"{min(waves, default=0)}..{max(waves, default=0)}")

    counts = {}
    for record in decisions:
        counts[record["action"]] = counts.get(record["action"], 0) + 1
    if counts:
        print("\ndecisions:")
        for action in ACTIONS:
            if action in counts:
                print(f"    {action:<18} {counts[action]:>10,}")
    if incumbents:
        print("\nincumbent trajectory:")
        for record in incumbents:
            print(f"    #{record['incumbent']:<3} wave {record['wave']:<5} "
                  f"score {record['score']:<22} box {record['box']!r}")

    per_wave = {}
    for record in decisions:
        entry = per_wave.setdefault(record["wave"], {"popped": 0, "pruned": 0})
        entry["popped"] += 1
        if record["action"].startswith("pruned"):
            entry["pruned"] += 1
    if per_wave:
        print("\npruning pressure (pruned/popped per wave):")
        for wave in sorted(per_wave):
            entry = per_wave[wave]
            print(f"    wave {wave:<5} {entry['pruned']:>6}/{entry['popped']:<6}")


def main() -> None:
    if len(sys.argv) < 2:
        raise SystemExit(__doc__)
    command, arguments = sys.argv[1], sys.argv[2:]
    if command == "show" and len(arguments) == 1:
        show(arguments[0])
    elif command == "audit" and len(arguments) == 2:
        audit(arguments[0], arguments[1])
    else:
        raise SystemExit(__doc__)


if __name__ == "__main__":
    main()
