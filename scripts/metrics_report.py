#!/usr/bin/env python3
"""Inspect aurv_sweep --metrics-out snapshots.

Subcommands:

    python3 scripts/metrics_report.py show metrics.json
        Pretty-print one snapshot: run manifest, phase timings, and the
        counter/gauge/histogram tables grouped by subsystem prefix.

    python3 scripts/metrics_report.py diff before.json after.json \
            [--fail-on NAME=PCT ...]
        Counter deltas and timing ratios between two snapshots of the
        same scenario (e.g. before/after an optimisation, or 1-thread
        vs 4-thread). Counters are expected to be thread-count-invariant;
        a nonzero counter delta between thread configurations is a
        determinism smell worth chasing.

        Each --fail-on NAME=PCT turns a drift into a hard failure: the
        command exits nonzero when counter NAME moved by more than PCT
        percent of its before value (in either direction; PCT=0 demands
        exact equality, and any growth from a zero baseline trips the
        threshold). Designed for CI gates, e.g.
        --fail-on vfs.retries=0 --fail-on engine.events=5.

    python3 scripts/metrics_report.py validate metrics.json
        Check the snapshot against scripts/metrics_schema.json (schema
        version, required manifest fields, value shapes). Exits nonzero
        with a diagnostic on the first violation. Used by the CI
        metrics-smoke job.

    python3 scripts/metrics_report.py prom metrics.json
        Render the snapshot as Prometheus text exposition format 0.0.4 —
        the exact format the embedded status server's /metrics endpoint
        serves (support/statusd.cpp render_prometheus; keep the two in
        lockstep), so offline snapshots and live scrapes diff cleanly.
        wall_ms maps to aurv_uptime_seconds.

Stdlib-only on purpose: the validator is a hand-rolled checker driven by
the committed schema file, not a jsonschema dependency.
"""

import json
import pathlib
import sys

SCHEMA_PATH = pathlib.Path(__file__).resolve().parent / "metrics_schema.json"


def load(path: str) -> dict:
    try:
        with open(path) as handle:
            snapshot = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"{path}: {error}")
    if not isinstance(snapshot, dict):
        raise SystemExit(f"{path}: top level is not a JSON object")
    return snapshot


# ---------------------------------------------------------------------------
# validate
# ---------------------------------------------------------------------------


def is_uint(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def check_scalar(path: str, where: str, shape: str, value) -> None:
    ok = is_uint(value) if shape == "uint" else is_int(value)
    if not ok:
        raise SystemExit(f"{path}: {where} = {value!r} is not a {shape}")


def validate(path: str) -> dict:
    with SCHEMA_PATH.open() as handle:
        schema = json.load(handle)
    snapshot = load(path)

    for key in schema["required_top"]:
        if key not in snapshot:
            raise SystemExit(f"{path}: missing top-level key {key!r}")
    if snapshot["schema"] != schema["schema"]:
        raise SystemExit(f"{path}: schema {snapshot['schema']!r}, expected {schema['schema']}")
    if snapshot["kind"] != schema["kind"]:
        raise SystemExit(f"{path}: kind {snapshot['kind']!r}, expected {schema['kind']!r}")

    run = snapshot["run"]
    for key in schema["required_run"]:
        if key not in run:
            raise SystemExit(f"{path}: missing run.{key}")
    for key in schema["required_build"]:
        if key not in run["build"]:
            raise SystemExit(f"{path}: missing run.build.{key}")
    if run["kind"] not in schema["run_kinds"]:
        raise SystemExit(f"{path}: run.kind {run['kind']!r} not in {schema['run_kinds']}")
    if not is_uint(run["threads"]) or run["threads"] < 1:
        raise SystemExit(f"{path}: run.threads = {run['threads']!r} is not a positive integer")
    wall_ms = snapshot["wall_ms"]
    if not isinstance(wall_ms, (int, float)) or isinstance(wall_ms, bool) or wall_ms < 0:
        raise SystemExit(f"{path}: wall_ms = {wall_ms!r} is not a non-negative number")

    for family, shape in schema["families"].items():
        section = snapshot[family]
        if not isinstance(section, dict):
            raise SystemExit(f"{path}: {family} is not an object")
        for name, value in section.items():
            where = f"{family}.{name}"
            if isinstance(shape, str):
                check_scalar(path, where, shape, value)
                continue
            # Structured entry (histograms / timers): a dict of named fields.
            if not isinstance(value, dict):
                raise SystemExit(f"{path}: {where} is not an object")
            for field, field_shape in shape.items():
                if field not in value:
                    raise SystemExit(f"{path}: {where} missing field {field!r}")
                if field_shape == "uint-map":
                    if not isinstance(value[field], dict):
                        raise SystemExit(f"{path}: {where}.{field} is not an object")
                    for bucket, count in value[field].items():
                        check_scalar(path, f"{where}.{field}[{bucket}]", "uint", count)
                else:
                    check_scalar(path, f"{where}.{field}", field_shape, value[field])
    return snapshot


# ---------------------------------------------------------------------------
# show
# ---------------------------------------------------------------------------


def group_by_prefix(section: dict) -> dict:
    groups: dict = {}
    for name in sorted(section):
        prefix = name.split(".", 1)[0]
        groups.setdefault(prefix, []).append(name)
    return groups


def format_ns(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.2f} s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.2f} us"
    return f"{ns} ns"


def show(path: str) -> None:
    snapshot = load(path)
    run = snapshot.get("run", {})
    build = run.get("build", {})
    print(f"{path}: {run.get('kind', '?')} of {run.get('spec', '?')}")
    print(f"  fingerprint {run.get('fingerprint', '?')}, threads {run.get('threads', '?')}, "
          f"{build.get('compiler', '?')} {build.get('build_type', '?')}")
    if "config" in run:
        pairs = ", ".join(f"{k}={v}" for k, v in run["config"].items())
        print(f"  config: {pairs}")
    print(f"  wall: {snapshot.get('wall_ms', 0):.1f} ms")

    counters = snapshot.get("counters", {})
    if counters:
        print("\ncounters:")
        for prefix, names in group_by_prefix(counters).items():
            print(f"  [{prefix}]")
            for name in names:
                print(f"    {name:<28} {counters[name]:>14,}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        print("\ngauges:")
        for name in sorted(gauges):
            print(f"    {name:<28} {gauges[name]:>14,}")
    timers = snapshot.get("timers", {})
    if timers:
        print("\ntimers:")
        for name in sorted(timers):
            entry = timers[name]
            total, count = entry["ns"], entry["count"]
            mean = format_ns(total // count) if count else "-"
            print(f"    {name:<28} {format_ns(total):>12}  x{count}  (mean {mean})")
    histograms = snapshot.get("histograms", {})
    if histograms:
        print("\nhistograms:")
        for name in sorted(histograms):
            entry = histograms[name]
            print(f"    {name}: count {entry['count']:,}, sum {entry['sum']:,}")
            buckets = entry.get("buckets", {})
            peak = max(buckets.values(), default=0)
            for lower in sorted(buckets, key=int):
                count = buckets[lower]
                bar = "#" * max(1, round(40 * count / peak)) if peak else ""
                print(f"      >= {lower:<12} {count:>12,} {bar}")


# ---------------------------------------------------------------------------
# prom (Prometheus text exposition — mirror of statusd.cpp render_prometheus)
# ---------------------------------------------------------------------------


def prom_name(name: str) -> str:
    """aurv_ prefix, dots and dashes flattened to the legal name alphabet."""
    return "aurv_" + name.replace(".", "_").replace("-", "_")


def prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prom_bucket_le(lower: int) -> str:
    """Inclusive upper bound of the log2 bucket whose lower bound is `lower`:
    bucket [2^(k-1), 2^k) ends at 2*lower - 1; the zero bucket holds only 0."""
    return "0" if lower == 0 else str(2 * lower - 1)


def prom(path: str) -> None:
    snapshot = load(path)
    run = snapshot.get("run", {})
    lines = []
    lines.append("# TYPE aurv_run_info gauge")
    lines.append(
        'aurv_run_info{{kind="{}",spec="{}",fingerprint="{}",threads="{}"}} 1'.format(
            prom_escape(str(run.get("kind", ""))),
            prom_escape(str(run.get("spec", ""))),
            prom_escape(str(run.get("fingerprint", ""))),
            run.get("threads", 0)))
    lines.append("# TYPE aurv_uptime_seconds gauge")
    lines.append(f"aurv_uptime_seconds {snapshot.get('wall_ms', 0) / 1000.0:.9f}")

    counters = snapshot.get("counters", {})
    for name in sorted(counters):
        metric = prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counters[name]}")
    gauges = snapshot.get("gauges", {})
    for name in sorted(gauges):
        metric = prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {gauges[name]}")
    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        metric = prom_name(name)
        entry = histograms[name]
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for lower in sorted(entry.get("buckets", {}), key=int):
            cumulative += entry["buckets"][lower]
            lines.append(f'{metric}_bucket{{le="{prom_bucket_le(int(lower))}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {entry["count"]}')
        lines.append(f"{metric}_sum {entry['sum']}")
        lines.append(f"{metric}_count {entry['count']}")
    timers = snapshot.get("timers", {})
    for name in sorted(timers):
        entry = timers[name]
        seconds = prom_name(name) + "_seconds_total"
        lines.append(f"# TYPE {seconds} counter")
        lines.append(f"{seconds} {entry['ns'] / 1e9:.9f}")
        spans = prom_name(name) + "_spans_total"
        lines.append(f"# TYPE {spans} counter")
        lines.append(f"{spans} {entry['count']}")
    sys.stdout.write("\n".join(lines) + "\n")


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------


def parse_fail_on(spec: str) -> tuple:
    """Parses one NAME=PCT threshold; returns (counter_name, pct)."""
    name, equals, pct_text = spec.partition("=")
    if not equals or not name:
        raise SystemExit(f"--fail-on {spec!r}: expected NAME=PCT")
    try:
        pct = float(pct_text)
    except ValueError:
        raise SystemExit(f"--fail-on {spec!r}: {pct_text!r} is not a number")
    if pct < 0:
        raise SystemExit(f"--fail-on {spec!r}: PCT must be >= 0")
    return name, pct


def diff(before_path: str, after_path: str, fail_on=()) -> None:
    before, after = load(before_path), load(after_path)
    b_run, a_run = before.get("run", {}), after.get("run", {})
    print(f"before: {before_path} ({b_run.get('kind', '?')}, threads {b_run.get('threads', '?')})")
    print(f"after : {after_path} ({a_run.get('kind', '?')}, threads {a_run.get('threads', '?')})")
    if b_run.get("fingerprint") != a_run.get("fingerprint"):
        print("note  : different spec fingerprints — counter deltas compare different work")

    b_counters = before.get("counters", {})
    a_counters = after.get("counters", {})
    changed = []
    for name in sorted(set(b_counters) | set(a_counters)):
        b_value, a_value = b_counters.get(name, 0), a_counters.get(name, 0)
        if b_value != a_value:
            changed.append((name, b_value, a_value))
    if changed:
        print("\ncounter deltas:")
        for name, b_value, a_value in changed:
            print(f"    {name:<28} {b_value:>14,} -> {a_value:<14,} ({a_value - b_value:+,})")
    else:
        print("\ncounters identical (as expected for the same spec at any thread count)")

    b_wall, a_wall = before.get("wall_ms", 0), after.get("wall_ms", 0)
    if b_wall and a_wall:
        print(f"\nwall_ms: {b_wall:.1f} -> {a_wall:.1f}  ({a_wall / b_wall:.2f}x)")
    b_timers, a_timers = before.get("timers", {}), after.get("timers", {})
    shared = sorted(set(b_timers) & set(a_timers))
    if shared:
        print("timer ratios (after/before, total ns):")
        for name in shared:
            b_ns, a_ns = b_timers[name]["ns"], a_timers[name]["ns"]
            ratio = f"{a_ns / b_ns:.2f}x" if b_ns else "-"
            print(f"    {name:<28} {format_ns(b_ns):>12} -> {format_ns(a_ns):<12} {ratio}")

    # Threshold gates: each violation is reported, then one nonzero exit.
    violations = []
    for name, pct in fail_on:
        b_value, a_value = b_counters.get(name, 0), a_counters.get(name, 0)
        delta = abs(a_value - b_value)
        if delta == 0:
            continue
        if b_value == 0:
            violations.append(f"{name}: {b_value:,} -> {a_value:,} "
                              f"(grew from a zero baseline; threshold {pct:g}%)")
        elif delta * 100.0 > pct * b_value:
            violations.append(f"{name}: {b_value:,} -> {a_value:,} "
                              f"({delta * 100.0 / b_value:.2f}% > {pct:g}%)")
    if violations:
        print("\nFAIL: counter thresholds exceeded:")
        for violation in violations:
            print(f"    {violation}")
        raise SystemExit(1)
    if fail_on:
        print(f"\nall {len(fail_on)} --fail-on threshold(s) satisfied")


def main() -> None:
    if len(sys.argv) < 2:
        raise SystemExit(__doc__)
    command, arguments = sys.argv[1], sys.argv[2:]
    if command == "show" and len(arguments) == 1:
        show(arguments[0])
    elif command == "diff" and len(arguments) >= 2:
        positional, fail_on, k = [], [], 0
        while k < len(arguments):
            if arguments[k] == "--fail-on":
                if k + 1 >= len(arguments):
                    raise SystemExit("--fail-on needs a NAME=PCT value")
                fail_on.append(parse_fail_on(arguments[k + 1]))
                k += 2
            else:
                positional.append(arguments[k])
                k += 1
        if len(positional) != 2:
            raise SystemExit(__doc__)
        diff(positional[0], positional[1], fail_on)
    elif command == "validate" and len(arguments) == 1:
        validate(arguments[0])
        print(f"{arguments[0]}: valid metrics-snapshot (schema 1)")
    elif command == "prom" and len(arguments) == 1:
        prom(arguments[0])
    else:
        raise SystemExit(__doc__)


if __name__ == "__main__":
    main()
