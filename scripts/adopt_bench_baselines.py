#!/usr/bin/env python3
"""Promote a CI `bench-multicore-baselines` artifact to the committed
BENCH_*.json baselines.

The committed baselines are regenerated serial-only (`--threads 1` /
`--shards 1`) because the development container has one core — parallel
rows measured there show oversubscription, not scaling. The honest
multicore numbers come from the CI `bench-multicore` job, which runs
both throughput benches on a 4-vCPU runner on every push and uploads
`BENCH_campaign.json` + `BENCH_search.json` as the
`bench-multicore-baselines` artifact.

Usage (from the repo root, after downloading + unzipping the artifact
of a green main run):

    python3 scripts/adopt_bench_baselines.py path/to/artifact-dir

Or let the script drive the download through the GitHub CLI (requires
an authenticated `gh`):

    python3 scripts/adopt_bench_baselines.py --from-ci

which fetches the `bench-multicore-baselines` artifact of the latest
green CI run on main into a temporary directory and adopts it from
there. The nightly workflow reminds you to run this when the committed
baselines still carry only serial rows.

The script validates each file (schema, unit, presence of both serial
and multicore rows) and then replaces the committed file wholesale, so
the serial rows in the repo also move to the CI runner's hardware and
the whole file stays one machine's measurements — ratios inside a
baseline file are only meaningful that way.
"""

import json
import pathlib
import shutil
import subprocess
import sys
import tempfile

EXPECTED = {
    "BENCH_campaign.json": ["BM_CampaignRun/threads:1", "BM_CampaignRun/threads:4"],
    "BENCH_search.json": ["BM_SearchBnb/shards:1", "BM_SearchBnb/shards:4"],
}


def validate(path: pathlib.Path, required_rows: list[str]) -> dict:
    with path.open() as handle:
        bench = json.load(handle)
    if bench.get("schema") != 1:
        raise SystemExit(f"{path}: unsupported schema {bench.get('schema')!r}")
    if bench.get("unit") != "ns/op":
        raise SystemExit(f"{path}: unexpected unit {bench.get('unit')!r}")
    rows = bench.get("benchmarks", {})
    for row in required_rows:
        if row not in rows:
            raise SystemExit(
                f"{path}: missing row {row!r} — is this really the "
                "bench-multicore-baselines artifact of a 4-vCPU runner?"
            )
    return bench


def download_from_ci(destination: pathlib.Path) -> None:
    """Fetch the bench-multicore-baselines artifact of the latest CI run
    on main via the GitHub CLI into `destination`."""
    if shutil.which("gh") is None:
        raise SystemExit(
            "--from-ci needs the GitHub CLI (`gh`). Alternatively download the "
            "bench-multicore-baselines artifact of a green main run from the "
            "Actions tab, unzip it, and pass the directory instead."
        )
    run_id = subprocess.run(
        ["gh", "run", "list", "--workflow", "ci.yml", "--branch", "main",
         "--status", "success", "--limit", "1", "--json", "databaseId",
         "--jq", ".[0].databaseId"],
        check=True, capture_output=True, text=True,
    ).stdout.strip()
    if not run_id:
        raise SystemExit("no green ci.yml run found on main")
    print(f"downloading bench-multicore-baselines from run {run_id} ...")
    subprocess.run(
        ["gh", "run", "download", run_id, "--name", "bench-multicore-baselines",
         "--dir", str(destination)],
        check=True,
    )


def adopt(artifact_dir: pathlib.Path) -> None:
    repo_root = pathlib.Path(__file__).resolve().parent.parent

    for name, required_rows in EXPECTED.items():
        source = artifact_dir / name
        if not source.exists():
            raise SystemExit(f"{source}: not found in the artifact directory")
        bench = validate(source, required_rows)
        target = repo_root / name
        with target.open("w") as handle:
            json.dump(bench, handle, indent=2)
            handle.write("\n")
        print(f"adopted {name}: {len(bench['benchmarks'])} rows -> {target}")


def main() -> None:
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    if sys.argv[1] == "--from-ci":
        with tempfile.TemporaryDirectory() as scratch:
            artifact_dir = pathlib.Path(scratch)
            download_from_ci(artifact_dir)
            adopt(artifact_dir)
    else:
        adopt(pathlib.Path(sys.argv[1]))


if __name__ == "__main__":
    main()
