#!/usr/bin/env python3
"""Promote a CI `bench-multicore-baselines` artifact to the committed
BENCH_*.json baselines.

The committed baselines are regenerated serial-only (`--threads 1` /
`--shards 1`) because the development container has one core — parallel
rows measured there show oversubscription, not scaling. The honest
multicore numbers come from the CI `bench-multicore` job, which runs
both throughput benches on a 4-vCPU runner on every push and uploads
`BENCH_campaign.json` + `BENCH_search.json` as the
`bench-multicore-baselines` artifact.

Usage (from the repo root, after downloading + unzipping the artifact
of a green main run):

    python3 scripts/adopt_bench_baselines.py path/to/artifact-dir

The script validates each file (schema, unit, presence of both serial
and multicore rows) and then replaces the committed file wholesale, so
the serial rows in the repo also move to the CI runner's hardware and
the whole file stays one machine's measurements — ratios inside a
baseline file are only meaningful that way.
"""

import json
import pathlib
import sys

EXPECTED = {
    "BENCH_campaign.json": ["BM_CampaignRun/threads:1", "BM_CampaignRun/threads:4"],
    "BENCH_search.json": ["BM_SearchBnb/shards:1", "BM_SearchBnb/shards:4"],
}


def validate(path: pathlib.Path, required_rows: list[str]) -> dict:
    with path.open() as handle:
        bench = json.load(handle)
    if bench.get("schema") != 1:
        raise SystemExit(f"{path}: unsupported schema {bench.get('schema')!r}")
    if bench.get("unit") != "ns/op":
        raise SystemExit(f"{path}: unexpected unit {bench.get('unit')!r}")
    rows = bench.get("benchmarks", {})
    for row in required_rows:
        if row not in rows:
            raise SystemExit(
                f"{path}: missing row {row!r} — is this really the "
                "bench-multicore-baselines artifact of a 4-vCPU runner?"
            )
    return bench


def main() -> None:
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    artifact_dir = pathlib.Path(sys.argv[1])
    repo_root = pathlib.Path(__file__).resolve().parent.parent

    for name, required_rows in EXPECTED.items():
        source = artifact_dir / name
        if not source.exists():
            raise SystemExit(f"{source}: not found in the artifact directory")
        bench = validate(source, required_rows)
        target = repo_root / name
        with target.open("w") as handle:
            json.dump(bench, handle, indent=2)
            handle.write("\n")
        print(f"adopted {name}: {len(bench['benchmarks'])} rows -> {target}")


if __name__ == "__main__":
    main()
