#!/usr/bin/env python3
"""Docs lint: keep the prose as trustworthy as the artifacts.

Two checks, both cheap enough to run on every commit:

1. Markdown link check — every relative link in README.md,
   EXPERIMENTS.md and docs/*.md must resolve to an existing file or
   directory inside the repo (anchors are stripped; external
   http(s)/mailto links are skipped).
2. Architecture coverage — every subsystem directory under src/ must
   be mentioned in docs/ARCHITECTURE.md, so the subsystem map cannot
   silently rot as the tree grows.

Exit 0 with a one-line summary when clean; exit 1 listing every
violation otherwise. No dependencies beyond the standard library.

Usage: python3 scripts/docs_lint.py [repo_root]
"""

from __future__ import annotations

import pathlib
import re
import sys

# [text](target) — excluding images' leading "!" is unnecessary: image
# targets must resolve too. Targets with a scheme (http:, https:,
# mailto:) are external and skipped.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")

DOC_FILES = ["README.md", "EXPERIMENTS.md"]
DOC_GLOBS = ["docs/*.md"]


def lint_links(root: pathlib.Path) -> list[str]:
    errors: list[str] = []
    files = [root / name for name in DOC_FILES]
    for pattern in DOC_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    for doc in files:
        if not doc.exists():
            errors.append(f"{doc.relative_to(root)}: file listed for lint is missing")
            continue
        in_fence = False
        for lineno, line in enumerate(doc.read_text(encoding="utf-8").splitlines(), 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if SCHEME_RE.match(target) or target.startswith("#"):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{doc.relative_to(root)}:{lineno}: broken link"
                        f" '{target}' -> {path_part}"
                    )
    return errors


def lint_architecture_coverage(root: pathlib.Path) -> list[str]:
    arch = root / "docs" / "ARCHITECTURE.md"
    if not arch.exists():
        return ["docs/ARCHITECTURE.md is missing"]
    text = arch.read_text(encoding="utf-8")
    errors: list[str] = []
    for subsystem in sorted(p.name for p in (root / "src").iterdir() if p.is_dir()):
        # A subsystem counts as covered when its directory name appears
        # with the trailing slash the map and bullets use (`numeric/`).
        if f"{subsystem}/" not in text:
            errors.append(
                f"docs/ARCHITECTURE.md: no entry for src/{subsystem}/ —"
                " add it to the subsystem map"
            )
    return errors


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    errors = lint_links(root) + lint_architecture_coverage(root)
    if errors:
        for error in errors:
            print(f"docs-lint: {error}", file=sys.stderr)
        print(f"docs-lint: FAILED ({len(errors)} problem(s))", file=sys.stderr)
        return 1
    print("docs-lint: ok (links resolve, every src/ subsystem documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
