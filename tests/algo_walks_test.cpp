// Tests for the search procedures: LinearCowWalk/PlanarCowWalk (Algorithms
// 3 and 2), Latecomers, CGKK, and WaitAndSearch. These check the structural
// claims the paper's proofs rely on (return-to-start, coverage, durations)
// directly on the instruction streams.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "algo/cgkk.hpp"
#include "algo/cow_walk.hpp"
#include "algo/latecomers.hpp"
#include "algo/wait_and_search.hpp"
#include "geom/angle.hpp"
#include "geom/vec2.hpp"
#include "program/combinators.hpp"
#include "program/instruction.hpp"

namespace aurv::algo {
namespace {

using geom::Vec2;
using numeric::Rational;
using program::Instruction;

std::vector<Instruction> collect(program::Program p) {
  std::vector<Instruction> result;
  for (const Instruction& instruction : p) result.push_back(instruction);
  return result;
}

/// All points visited by a finite move sequence, at instruction endpoints.
std::vector<Vec2> waypoints(const std::vector<Instruction>& instructions) {
  std::vector<Vec2> points{Vec2{0, 0}};
  Vec2 at{};
  for (const Instruction& instruction : instructions) {
    if (const auto* move = std::get_if<program::Go>(&instruction)) {
      at += move->distance.to_double() * geom::unit_vector(move->heading);
    }
    points.push_back(at);
  }
  return points;
}

TEST(LinearCowWalk, StructureMatchesAlgorithm3) {
  const std::vector<Instruction> walk = collect(linear_cow_walk(3));
  ASSERT_EQ(walk.size(), 9u);  // 3 steps of 3 moves
  // Step j: E 2^j, W 2^{j+1}, E 2^j.
  for (std::uint32_t j = 1; j <= 3; ++j) {
    const auto& east1 = std::get<program::Go>(walk[3 * (j - 1)]);
    const auto& west = std::get<program::Go>(walk[3 * (j - 1) + 1]);
    const auto& east2 = std::get<program::Go>(walk[3 * (j - 1) + 2]);
    EXPECT_EQ(east1.distance, Rational::pow2(j));
    EXPECT_EQ(west.distance, Rational::pow2(j + 1));
    EXPECT_EQ(east2.distance, Rational::pow2(j));
    EXPECT_DOUBLE_EQ(east1.heading, program::kEast);
    EXPECT_DOUBLE_EQ(west.heading, program::kWest);
  }
  EXPECT_THROW((void)linear_cow_walk(0), std::logic_error);
  EXPECT_THROW((void)linear_cow_walk(kMaxCowWalkIndex + 1), std::logic_error);
}

TEST(LinearCowWalk, ReturnsToStartAndCoversSegment) {
  for (std::uint32_t i = 1; i <= 5; ++i) {
    const std::vector<Instruction> walk = collect(linear_cow_walk(i));
    // Ends where it started (the walk is used inside loops that rely on it).
    EXPECT_NEAR(program::net_displacement(walk).norm(), 0.0, 1e-9) << i;
    // Visits every x in [-2^i, 2^i]: check the extreme waypoints.
    double min_x = 0.0;
    double max_x = 0.0;
    for (const Vec2& p : waypoints(walk)) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      EXPECT_NEAR(p.y, 0.0, 1e-12);  // purely horizontal
    }
    EXPECT_NEAR(max_x, std::ldexp(1.0, static_cast<int>(i)), 1e-9);
    EXPECT_NEAR(min_x, -std::ldexp(1.0, static_cast<int>(i)), 1e-9);
  }
}

TEST(LinearCowWalk, DurationClosedForm) {
  for (std::uint32_t i = 1; i <= 8; ++i) {
    EXPECT_EQ(program::total_duration(collect(linear_cow_walk(i))),
              linear_cow_walk_duration(i))
        << i;
  }
}

TEST(PlanarCowWalk, ReturnsToStart) {
  for (std::uint32_t i = 1; i <= 3; ++i) {
    const std::vector<Instruction> walk = collect(planar_cow_walk(i));
    EXPECT_NEAR(program::net_displacement(walk).norm(), 0.0, 1e-9) << i;
  }
}

TEST(PlanarCowWalk, DurationClosedForm) {
  for (std::uint32_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(program::total_duration(collect(planar_cow_walk(i))),
              planar_cow_walk_duration(i))
        << i;
  }
}

TEST(PlanarCowWalk, Claim37GridCoverage) {
  // Claim 3.7: the walk passes within 1/2^i of every point of the square
  // [-2^i, 2^i]^2 — because it traverses the full horizontal segment at
  // every height k/2^i, |k| <= 2^(2i). Verify the set of heights visited.
  const std::uint32_t i = 2;
  const std::vector<Instruction> walk = collect(planar_cow_walk(i));
  std::set<long long> heights;  // in units of 1/2^i
  Vec2 at{};
  double min_x = 0.0;
  double max_x = 0.0;
  for (const Instruction& instruction : walk) {
    if (const auto* move = std::get_if<program::Go>(&instruction)) {
      at += move->distance.to_double() * geom::unit_vector(move->heading);
    }
    const double scaled = at.y * std::ldexp(1.0, static_cast<int>(i));
    const long long rounded = std::llround(scaled);
    EXPECT_NEAR(scaled, static_cast<double>(rounded), 1e-9);  // dyadic heights only
    heights.insert(rounded);
    min_x = std::min(min_x, at.x);
    max_x = std::max(max_x, at.x);
  }
  const long long reach = 1LL << (2 * i);  // 2^(2i) rungs of 1/2^i each side
  for (long long k = -reach; k <= reach; ++k) {
    EXPECT_TRUE(heights.count(k)) << "missing height " << k << "/2^" << i;
  }
  EXPECT_NEAR(max_x, std::ldexp(1.0, static_cast<int>(i)), 1e-9);
  EXPECT_NEAR(min_x, -std::ldexp(1.0, static_cast<int>(i)), 1e-9);
}

TEST(Latecomers, PhaseStructure) {
  // Phase i: 2^(i+1) out-and-back trips of reach 2^i, headings k*pi/2^i.
  const Rational phase1 = latecomers_phase_duration(1);
  EXPECT_EQ(phase1, Rational(16));  // 4 trips * 2*2
  const std::vector<Instruction> prefix =
      program::take_duration(latecomers(), phase1);
  ASSERT_EQ(prefix.size(), 8u);  // 4 trips, 2 moves each
  for (std::size_t trip = 0; trip < 4; ++trip) {
    const auto& out = std::get<program::Go>(prefix[2 * trip]);
    const auto& back = std::get<program::Go>(prefix[2 * trip + 1]);
    EXPECT_EQ(out.distance, Rational(2));
    EXPECT_EQ(back.distance, Rational(2));
    EXPECT_NEAR(out.heading, geom::dyadic_angle(static_cast<std::int64_t>(trip), 1), 1e-12);
    EXPECT_NEAR(back.heading - out.heading, geom::kPi, 1e-12);
  }
  // Every trip returns to the origin.
  EXPECT_NEAR(program::net_displacement(prefix).norm(), 0.0, 1e-9);
}

TEST(Latecomers, DirectionsDensifyAcrossPhases) {
  // Phase i uses direction granularity pi/2^i; the union over phases is
  // dense — count distinct headings in the first three phases.
  const Rational horizon =
      latecomers_phase_duration(1) + latecomers_phase_duration(2) + latecomers_phase_duration(3);
  const std::vector<Instruction> prefix = program::take_duration(latecomers(), horizon);
  std::set<long long> headings;  // quantized
  for (const Instruction& instruction : prefix) {
    const auto& move = std::get<program::Go>(instruction);
    headings.insert(std::llround(geom::normalize_angle(move.heading) * 1e9));
  }
  // Phase 3 alone contributes 2^4 = 16 outbound directions k*pi/8 covering
  // the full circle; the return headings (+pi) and the coarser phase-1/2
  // grids are subsets of the same set, so exactly 16 distinct headings.
  EXPECT_EQ(headings.size(), 16u);
}

TEST(Cgkk, IsIteratedPlanarCowWalk) {
  const Rational horizon = planar_cow_walk_duration(1) + planar_cow_walk_duration(2);
  const std::vector<Instruction> prefix = program::take_duration(cgkk(), horizon);
  std::vector<Instruction> expected = collect(planar_cow_walk(1));
  const std::vector<Instruction> second = collect(planar_cow_walk(2));
  expected.insert(expected.end(), second.begin(), second.end());
  ASSERT_EQ(prefix.size(), expected.size());
  for (std::size_t k = 0; k < prefix.size(); ++k) {
    EXPECT_EQ(prefix[k], expected[k]) << k;
  }
}

TEST(Cgkk, PureSearchHasNoWaits) {
  // Block 4 of Algorithm 1 cuts the CGKK solo execution into time slices;
  // our CGKK being wait-free keeps every slice a pure move (so the paper's
  // "agent travels at most r/4 per segment" argument applies verbatim).
  const std::vector<Instruction> prefix =
      program::take_duration(cgkk(), Rational::pow2(6));
  for (const Instruction& instruction : prefix) {
    EXPECT_TRUE(program::is_move(instruction));
  }
}

TEST(CgkkExtended, InterleavesWaits) {
  const Rational horizon = planar_cow_walk_duration(1) + Rational::pow2(15) + Rational(1);
  const std::vector<Instruction> prefix =
      program::take_duration(cgkk_extended(), horizon);
  bool saw_wait = false;
  for (const Instruction& instruction : prefix) {
    if (!program::is_move(instruction)) {
      saw_wait = true;
      EXPECT_GE(program::duration_of(instruction), Rational(1));
    }
  }
  EXPECT_TRUE(saw_wait);
}

TEST(WaitAndSearch, PhaseIsWaitThenWalk) {
  const std::vector<Instruction> prefix = program::take_duration(
      wait_and_search(), wait_and_search_pause(1) + planar_cow_walk_duration(1));
  ASSERT_FALSE(prefix.empty());
  EXPECT_FALSE(program::is_move(prefix.front()));
  EXPECT_EQ(program::duration_of(prefix.front()), Rational::pow2(15));
  for (std::size_t k = 1; k < prefix.size(); ++k) {
    EXPECT_TRUE(program::is_move(prefix[k])) << k;
  }
  EXPECT_EQ(wait_and_search_pause(2), Rational::pow2(60));
  EXPECT_EQ(wait_and_search_pause(3), Rational::pow2(135));
}

}  // namespace
}  // namespace aurv::algo
