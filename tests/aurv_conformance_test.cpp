// Instruction-level conformance of AlmostUniversalRV against the paper's
// pseudocode: phase 1 of Algorithm 1 hand-transcribed from Algorithms 1-3
// and compared to the generated stream, plus a sampler-driven randomized
// end-to-end sweep of Theorem 3.2.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "agents/sampler.hpp"
#include "algo/cow_walk.hpp"
#include "algo/latecomers.hpp"
#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "program/combinators.hpp"
#include "sim/batch.hpp"

namespace aurv::core {
namespace {

using numeric::Rational;
using program::Instruction;

// Phase 1 of Algorithm 1, transcribed by hand from the paper:
//   block 1 (lines 5-7):  for j = 1..4: PlanarCowWalk(1) in Rot(j*pi/2)
//   block 2 (lines 9-12): wait(2); Latecomers for time 2; backtrack
//   block 3 (lines 14-15): wait(2^15); PlanarCowWalk(1)
//   block 4 (lines 17-20): CGKK solo prefix of time 2 cut into 4 segments
//                          of 1/2, each + wait(2); backtrack
std::vector<Instruction> hand_phase1() {
  using program::go;
  using program::go_east;
  using program::go_north;
  using program::go_south;
  using program::go_west;
  using program::wait;
  std::vector<Instruction> expected;

  // PlanarCowWalk(1) from Algorithm 2: LCW(1); 4x {N 1/2; LCW(1)}; S 2;
  // 4x {S 1/2; LCW(1)}; N 2 — where LCW(1) = E 2, W 4, E 2 (Algorithm 3).
  const auto emit_pcw1 = [&expected](double alpha) {
    const auto lcw = [&expected, alpha] {
      expected.push_back(go(program::kEast + alpha, 2));
      expected.push_back(go(program::kWest + alpha, 4));
      expected.push_back(go(program::kEast + alpha, 2));
    };
    lcw();
    for (int k = 0; k < 4; ++k) {
      expected.push_back(go(program::kNorth + alpha, Rational::dyadic(1, 1)));
      lcw();
    }
    expected.push_back(go(program::kSouth + alpha, 2));
    for (int k = 0; k < 4; ++k) {
      expected.push_back(go(program::kSouth + alpha, Rational::dyadic(1, 1)));
      lcw();
    }
    expected.push_back(go(program::kNorth + alpha, 2));
  };

  // Block 1: j = 1..2^(i+1) = 4, Rot(j*pi/2).
  for (int j = 1; j <= 4; ++j) emit_pcw1(geom::dyadic_angle(j, 1));

  // Block 2: wait 2^1; Latecomers during time 2 — its first trip is
  // go(0, 2) (phase-1 trip reach 2^1 = 2), of which exactly the outbound
  // fits the budget; then backtrack.
  expected.push_back(wait(2));
  expected.push_back(go(0.0, 2));
  expected.push_back(go(0.0 + geom::kPi, 2));

  // Block 3: wait 2^15; PlanarCowWalk(1) unrotated.
  expected.push_back(wait(Rational::pow2(15)));
  emit_pcw1(0.0);

  // Block 4: the CGKK solo prefix of time 2 is the start of
  // PlanarCowWalk(1): E 2 — cut into 4 segments of 1/2 each + wait(2);
  // then backtrack (W 2 in one move... backtrack reverses each piece).
  for (int k = 0; k < 4; ++k) {
    expected.push_back(go(program::kEast, Rational::dyadic(1, 1)));
    expected.push_back(wait(2));
  }
  for (int k = 0; k < 4; ++k) {
    expected.push_back(go(program::kEast + geom::kPi, Rational::dyadic(1, 1)));
  }
  return expected;
}

TEST(AurvConformance, Phase1MatchesHandTranscription) {
  const std::vector<Instruction> expected = hand_phase1();
  program::Program stream = almost_universal_rv();
  for (std::size_t k = 0; k < expected.size(); ++k) {
    ASSERT_TRUE(stream.next()) << "stream ended early at " << k;
    const Instruction& actual = stream.value();
    // Compare kind, duration/distance exactly, heading to 1e-12.
    ASSERT_EQ(program::is_move(actual), program::is_move(expected[k])) << k;
    EXPECT_EQ(program::duration_of(actual), program::duration_of(expected[k])) << k;
    if (program::is_move(actual)) {
      EXPECT_NEAR(std::get<program::Go>(actual).heading,
                  std::get<program::Go>(expected[k]).heading, 1e-12)
          << k << ": " << program::to_string(actual) << " vs "
          << program::to_string(expected[k]);
    }
  }
  // Phase 2 starts right after, with PlanarCowWalk(2) in Rot(pi/4): its
  // first instruction is go East (in that frame) 2.
  ASSERT_TRUE(stream.next());
  const auto& first_phase2 = std::get<program::Go>(stream.value());
  EXPECT_NEAR(first_phase2.heading, geom::dyadic_angle(1, 2), 1e-12);
  EXPECT_EQ(first_phase2.distance, Rational(2));
}

TEST(AurvConformance, RandomizedTheorem32Sweep) {
  // 20 sampler-drawn instances per covered type, all simulated in parallel:
  // Theorem 3.2 demands every one of them meets.
  std::mt19937_64 rng(424242);
  std::vector<agents::Instance> instances;
  for (int k = 0; k < 20; ++k) instances.push_back(agents::sample_type1(rng));
  for (int k = 0; k < 20; ++k) instances.push_back(agents::sample_type2(rng));
  for (int k = 0; k < 20; ++k) instances.push_back(agents::sample_type3(rng));
  for (int k = 0; k < 20; ++k) instances.push_back(agents::sample_type4(rng));

  sim::EngineConfig config;
  config.max_events = 30'000'000;
  const std::vector<sim::SimResult> results =
      sim::run_sweep(instances, [] { return almost_universal_rv(); }, config);
  for (std::size_t k = 0; k < instances.size(); ++k) {
    EXPECT_TRUE(results[k].met)
        << instances[k].to_string() << " -> " << sim::to_string(results[k].reason)
        << " min dist " << results[k].min_distance_seen;
    if (results[k].met) {
      EXPECT_LE(results[k].final_distance, instances[k].r() + 1e-6);
    }
  }
}

TEST(AurvConformance, RandomizedBoundarySweep) {
  // Sampler-drawn S1/S2 instances: the dedicated algorithms meet at
  // distance exactly r on every draw.
  std::mt19937_64 rng(515151);
  std::vector<sim::BatchJob> jobs;
  for (int k = 0; k < 15; ++k) {
    const agents::Instance s1 = agents::sample_boundary_s1(rng);
    jobs.push_back({s1, recommended_algorithm(s1), {}});
    const agents::Instance s2 = agents::sample_boundary_s2(rng);
    jobs.push_back({s2, recommended_algorithm(s2), {}});
  }
  std::vector<double> radii;
  for (const sim::BatchJob& job : jobs) radii.push_back(job.instance.r());
  const std::vector<sim::SimResult> results = sim::run_batch(std::move(jobs));
  for (std::size_t k = 0; k < results.size(); ++k) {
    EXPECT_TRUE(results[k].met) << k;
    EXPECT_NEAR(results[k].final_distance, radii[k], 1e-5) << k;
  }
}

}  // namespace
}  // namespace aurv::core
