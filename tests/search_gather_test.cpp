// Gather-side search tests: the gather-tuple space's point-to-configuration
// mapping, the max-gather-time objective (pairing rules, the shifted-frames
// reachability prune and its soundness), branch-and-bound determinism on a
// gathering search, and the Section 5 distinct-radii dimensions — r_a/r_b
// as searchable axes with the feasibility prune generalized to min(r_a, r_b).
#include <gtest/gtest.h>

#include <filesystem>
#include <limits>

#include "test_paths.hpp"
#include "exp/registry.hpp"
#include "exp/scenario.hpp"
#include "exp/search_driver.hpp"
#include "search/bnb.hpp"
#include "search/objective.hpp"

namespace aurv::search {
namespace {

using exp::SearchOptions;
using exp::SearchSpec;
using numeric::Rational;
using support::Json;
using testpaths::scenario_path;
using testpaths::slurp;
using testpaths::temp_path;

constexpr double kInf = std::numeric_limits<double>::infinity();

SearchSpace gather_space() {
  SearchSpace space;
  space.family = SearchSpace::Family::GatherTuple;
  space.dim_names = {"spread", "delay"};
  space.fixed = {{"n", Rational(3)}, {"r", Rational(1)}, {"policy", Rational(0)}};
  return space;
}

/// A fast gather-tuple max-gather-time spec for the determinism tests.
SearchSpec gather_search_spec() {
  SearchSpec spec;
  spec.name = "test_gather_search";
  spec.algorithm = "latecomers";
  spec.objective = "max-gather-time";
  spec.space = gather_space();
  spec.box = {Interval{Rational::from_string("1/2"), Rational(4)},
              Interval{Rational(0), Rational(3)}};
  spec.limits.max_boxes = 64;
  spec.limits.wave_size = 8;
  spec.limits.min_width = Rational(numeric::BigInt(1), numeric::BigInt(16));
  spec.engine.max_events = 400'000;
  spec.engine.horizon = Rational(256);
  return spec;
}

// ------------------------------------------------------------------ space --

TEST(GatherSpace, MapsPointsToStaggeredChains) {
  SearchSpace space;
  space.family = SearchSpace::Family::GatherTuple;
  space.dim_names = {"spread", "delay"};
  space.fixed = {{"n", Rational(4)}, {"r", Rational(2)}};
  space.validate();

  const std::vector<Rational> point = {Rational(2), Rational::from_string("3/2")};
  const agents::GatherInstance instance = space.gather_instance_at(point);
  EXPECT_EQ(instance.r, 2.0);
  ASSERT_EQ(instance.n(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(instance.agents[k].start.x, 2.0 * static_cast<double>(k));
    EXPECT_EQ(instance.agents[k].start.y, 0.0);
    EXPECT_EQ(instance.agents[k].wake,
              Rational::from_string("3/2") * Rational(static_cast<long long>(k)));
  }
  EXPECT_TRUE(space.synchronous());  // the restricted model is synchronous

  // The two-agent accessor has no meaning here (and vice versa).
  EXPECT_THROW((void)space.instance_at(point), std::logic_error);
  SearchSpace tuple;
  tuple.dim_names = {"t"};
  EXPECT_THROW((void)tuple.gather_instance_at({Rational(1)}), std::logic_error);
}

TEST(GatherSpace, PolicyCoordinateAndAgentCountSemantics) {
  SearchSpace space = gather_space();
  space.dim_names = {"spread", "delay", "policy"};
  space.fixed = {{"n", Rational(3)}, {"r", Rational(1)}};
  space.validate();

  const auto policy_at = [&](const char* text) {
    return space.gather_policy_at(
        {Rational(2), Rational(2), Rational::from_string(text)});
  };
  EXPECT_EQ(policy_at("0"), gather::StopPolicy::FirstSight);
  EXPECT_EQ(policy_at("1/4"), gather::StopPolicy::FirstSight);
  EXPECT_EQ(policy_at("1/2"), gather::StopPolicy::AllVisible);
  EXPECT_EQ(policy_at("1"), gather::StopPolicy::AllVisible);

  // n: floor, clamped to [1, kMaxGatherAgents]; exact at integers.
  SearchSpace counted = gather_space();
  counted.dim_names = {"n"};
  counted.fixed = {{"r", Rational(1)}, {"spread", Rational(2)}, {"delay", Rational(2)}};
  EXPECT_EQ(counted.gather_instance_at({Rational::from_string("5/2")}).n(), 2u);
  EXPECT_EQ(counted.gather_instance_at({Rational(3)}).n(), 3u);
  EXPECT_EQ(counted.gather_instance_at({Rational(1000)}).n(),
            static_cast<std::size_t>(SearchSpace::kMaxGatherAgents));
  EXPECT_EQ(counted.gather_instance_at({Rational(-7)}).n(), 1u);

  // Negative wake delays have no model meaning.
  SearchSpace delayed = gather_space();
  EXPECT_THROW((void)delayed.gather_instance_at({Rational(2), Rational(-1)}),
               std::invalid_argument);
}

// -------------------------------------------------------------- objective --

TEST(GatherObjective, PairsOnlyWithTheGatherFamily) {
  const AlgorithmResolverFn resolver = exp::resolve_algorithm("latecomers");
  SearchSpace tuple;
  tuple.dim_names = {"t"};
  EXPECT_THROW((void)make_objective("max-gather-time", tuple, resolver, {}),
               std::invalid_argument);
  for (const char* name : {"max-meet-time", "near-miss", "boundary-distance"}) {
    EXPECT_THROW((void)make_objective(name, gather_space(), resolver, {}),
                 std::invalid_argument)
        << name;
  }
  // The gathering model has one common radius; per-agent overrides are a
  // two-agent Section 5 construct.
  sim::EngineConfig distinct;
  distinct.r_a = 2.0;
  EXPECT_THROW((void)make_objective("max-gather-time", gather_space(), resolver, distinct),
               std::invalid_argument);
}

TEST(GatherObjective, ReachabilityBoundPrunesChainsThatNeverClose) {
  sim::EngineConfig config;
  config.max_events = 400'000;
  config.horizon = Rational(256);
  const auto objective = make_objective("max-gather-time", gather_space(),
                                        exp::resolve_algorithm("latecomers"), config);

  // spread - delay > r everywhere: adjacent gaps can never reach the sight
  // radius (1-Lipschitz trajectories in shifted frames), no freeze ever
  // happens, and the diameter floor exceeds both success diameters.
  const ParamBox never({Interval{Rational(3), Rational(4)},
                        Interval{Rational(0), Rational::from_string("1/2")}});
  EXPECT_EQ(objective->bound(never), -kInf);
  // Soundness: every point in the pruned box indeed fails to gather.
  for (const auto& point :
       {std::vector<Rational>{Rational(3), Rational(0)},
        std::vector<Rational>{Rational(4), Rational::from_string("1/2")},
        std::vector<Rational>{Rational::from_string("7/2"), Rational::from_string("1/4")}}) {
    const Evaluation evaluation = objective->evaluate(point);
    EXPECT_FALSE(evaluation.met) << evaluation.instance;
    EXPECT_EQ(evaluation.score, -1.0);
  }

  // A funnel box (delay > spread) cannot be pruned; the horizon caps it and
  // over-estimates every inside evaluation.
  const ParamBox funnel({Interval{Rational(1), Rational(2)},
                         Interval{Rational(2), Rational(3)}});
  EXPECT_GE(objective->bound(funnel), 256.0);
  // spread 3/2 keeps the chain out of initial contact (adjacent gap > r),
  // so the gather time is genuinely positive.
  const Evaluation gathered =
      objective->evaluate({Rational::from_string("3/2"), Rational(2)});
  EXPECT_TRUE(gathered.met);
  EXPECT_GT(gathered.score, 0.0);
  EXPECT_LE(gathered.score, objective->bound(funnel));
}

TEST(GatherObjective, BoxesContainingASingleAgentAreNeverPruned) {
  // n = 1 is trivially gathered (score 0): the chain argument needs a pair,
  // so a box whose n interval reaches below 2 must survive any spread/delay.
  SearchSpace space = gather_space();
  space.dim_names = {"n"};
  space.fixed = {{"r", Rational(1)}, {"spread", Rational(10)}, {"delay", Rational(0)},
                 {"policy", Rational(0)}};
  sim::EngineConfig config;
  config.horizon = Rational(64);
  const auto objective = make_objective("max-gather-time", space,
                                        exp::resolve_algorithm("latecomers"), config);
  const ParamBox with_singleton({Interval{Rational(1), Rational(2)}});
  EXPECT_GT(objective->bound(with_singleton), -kInf);
  const Evaluation trivial = objective->evaluate({Rational(1)});
  EXPECT_TRUE(trivial.met);
  EXPECT_EQ(trivial.score, 0.0);

  // The same spread/delay with n pinned at >= 2 *is* pruned.
  const ParamBox pair_only({Interval{Rational(2), Rational(3)}});
  EXPECT_EQ(objective->bound(pair_only), -kInf);
}

// ------------------------------------------------- distinct radii (S5) ----

TEST(DistinctRadii, SearchedPerAgentRadiiReachTheEngine) {
  // x = 5, t = 0, instance r = 1: infeasible as-is (t < dist - r), but a
  // searched (r_a, r_b) point large enough to cover the gap meets at once.
  SearchSpace space;
  space.chi = +1;
  space.dim_names = {"r_a", "r_b"};
  space.fixed = {{"r", Rational(1)}, {"x", Rational(5)}, {"y", Rational(0)},
                 {"phi", Rational(0)}, {"t", Rational(0)}};
  sim::EngineConfig config;
  config.max_events = 400'000;
  config.horizon = Rational(64);
  const auto objective =
      make_objective("max-meet-time", space, exp::resolve_algorithm("aurv"), config);

  const Evaluation wide = objective->evaluate({Rational(6), Rational(6)});
  EXPECT_TRUE(wide.met);  // initial distance 5 < min(r_a, r_b) = 6
  const Evaluation narrow = objective->evaluate({Rational(1), Rational(1)});
  EXPECT_FALSE(narrow.met);  // back on the infeasible instance
}

TEST(DistinctRadii, FeasibilityPruneUsesTheMinimumRadius) {
  // Fixed geometry x = 5, t = 0, phi = 0, chi = +1 throughout; only the
  // radii move. The Theorem 3.1 slack is t - (dist - r) with r the
  // *rendezvous* radius min(r_a, r_b).
  const auto objective_with = [](std::vector<std::pair<std::string, Rational>> fixed,
                                 sim::EngineConfig config) {
    SearchSpace space;
    space.chi = +1;
    space.dim_names = {"t"};
    fixed.emplace_back("x", Rational(5));
    fixed.emplace_back("y", Rational(0));
    fixed.emplace_back("phi", Rational(0));
    space.fixed = std::move(fixed);
    config.horizon = Rational(64);
    return make_objective("max-meet-time", space, exp::resolve_algorithm("aurv"),
                          std::move(config));
  };
  const ParamBox low_t({Interval{Rational(0), Rational(1)}});

  // Instance r = 1: slack <= 1 - (5 - 1) < 0 -> pruned.
  EXPECT_EQ(objective_with({{"r", Rational(1)}}, {})->bound(low_t), -kInf);

  // Same instance r but generous per-agent overrides (min = 6 > dist):
  // feasible, must NOT be pruned.
  EXPECT_GT(objective_with({{"r", Rational(1)}, {"r_a", Rational(6)}, {"r_b", Rational(6)}},
                           {})
                ->bound(low_t),
            -kInf);

  // Feasible instance r = 6, but one far-sighted and one near-sighted agent
  // (min = 1): rendezvous needs distance <= 1, provably unreachable ->
  // pruned. This is exactly the min(r_a, r_b) generalization.
  EXPECT_EQ(objective_with({{"r", Rational(6)}, {"r_a", Rational(6)}, {"r_b", Rational(1)}},
                           {})
                ->bound(low_t),
            -kInf);

  // Engine-config overrides (not space-pinned) participate the same way.
  sim::EngineConfig engine_override;
  engine_override.r_a = 6.0;
  engine_override.r_b = 1.0;
  EXPECT_EQ(objective_with({{"r", Rational(6)}}, engine_override)->bound(low_t), -kInf);
}

TEST(DistinctRadii, NearMissBoundTracksTheSearchedMinimumRadius) {
  SearchSpace space;
  space.chi = +1;
  space.dim_names = {"r_b"};
  space.fixed = {{"r", Rational(1)}, {"x", Rational(3)}, {"y", Rational(0)},
                 {"phi", Rational(0)}, {"t", Rational(4)}};
  sim::EngineConfig config;
  config.r_a = 3.0;
  const auto objective =
      make_objective("near-miss", space, exp::resolve_algorithm("aurv"), config);
  // -(clearance) <= min(r_a, r_b) <= min(3, 2) over the box.
  const ParamBox box({Interval{Rational(1), Rational(2)}});
  EXPECT_LE(objective->bound(box), 2.0 + 1e-6);
  EXPECT_GE(objective->bound(box), 2.0);
}

TEST(DistinctRadii, TupleSpecRoundTripsRadiusDimensions) {
  SearchSpec spec;
  spec.name = "distinct_radii";
  spec.algorithm = "aurv";
  spec.objective = "max-meet-time";
  spec.space.chi = +1;
  spec.space.dim_names = {"r_a", "r_b", "t"};
  spec.space.fixed = {{"r", Rational(1)}, {"x", Rational(3)}, {"y", Rational(0)},
                      {"phi", Rational(0)}};
  spec.box = {Interval{Rational::from_string("1/2"), Rational(2)},
              Interval{Rational::from_string("1/2"), Rational(2)},
              Interval{Rational(0), Rational(4)}};
  spec.engine.horizon = Rational(64);
  const SearchSpec reloaded = SearchSpec::from_json(spec.to_json());
  EXPECT_EQ(reloaded.to_json(), spec.to_json());
  EXPECT_EQ(reloaded.space.dim_names, spec.space.dim_names);
}

TEST(GatherSearch, SpecLoadRejectsBoxesTheChainMappingCannotEvaluate) {
  // gather_instance_at throws on negative delays and the engine on r <= 0;
  // such boxes must be refused at load time, not from a worker shard
  // halfway through the search.
  SearchSpec negative_delay = gather_search_spec();
  negative_delay.box[1] = Interval{Rational(-1), Rational(3)};
  EXPECT_THROW((void)SearchSpec::from_json(negative_delay.to_json()), std::invalid_argument);

  SearchSpec zero_radius = gather_search_spec();
  zero_radius.space.fixed = {{"n", Rational(3)}, {"r", Rational(0)}, {"policy", Rational(0)}};
  EXPECT_THROW((void)SearchSpec::from_json(zero_radius.to_json()), std::invalid_argument);
}

// ------------------------------------------------------------ determinism --

TEST(GatherSearch, CertificateAndIncumbentLogAreShardCountInvariant) {
  const SearchSpec spec = gather_search_spec();
  const std::string log_1 = temp_path("gather_inc_1.jsonl");
  const std::string log_4 = temp_path("gather_inc_4.jsonl");

  SearchOptions serial;
  serial.max_shards = 1;
  serial.incumbent_log_path = log_1;
  SearchOptions parallel;
  parallel.max_shards = 4;
  parallel.incumbent_log_path = log_4;

  const Json cert_1 = exp::run_search(spec, serial).certificate(spec);
  const Json cert_4 = exp::run_search(spec, parallel).certificate(spec);
  EXPECT_EQ(cert_1.dump(2), cert_4.dump(2));
  EXPECT_EQ(slurp(log_1), slurp(log_4));

  const Json& incumbent = cert_1.at("search").at("incumbent");
  ASSERT_FALSE(incumbent.is_null());
  EXPECT_GT(incumbent.at("score").as_number(), 0.0);  // something gathers in the box
  (void)incumbent.at("point").at("spread");
  (void)incumbent.at("point").at("delay");
}

TEST(GatherSearch, CheckpointResumeMatchesOneShot) {
  const SearchSpec spec = gather_search_spec();
  const std::string checkpoint = temp_path("gather_search_ck.json");
  const std::string log = temp_path("gather_search_inc.jsonl");
  const std::string log_oneshot = temp_path("gather_search_inc_oneshot.jsonl");
  std::filesystem::remove(checkpoint);

  SearchOptions oneshot;
  oneshot.max_shards = 4;
  oneshot.incumbent_log_path = log_oneshot;
  const Json expected = exp::run_search(spec, oneshot).certificate(spec);

  SearchOptions interrupted;
  interrupted.max_shards = 4;
  interrupted.incumbent_log_path = log;
  interrupted.checkpoint_path = checkpoint;
  interrupted.checkpoint_every = 1;
  interrupted.max_waves = 3;
  const exp::SearchRunResult partial = exp::run_search(spec, interrupted);
  EXPECT_FALSE(partial.bnb.complete());

  SearchOptions resume = interrupted;
  resume.max_waves = 0;
  resume.resume = true;
  resume.max_shards = 1;  // resume on a different worker count, same result
  const exp::SearchRunResult finished = exp::run_search(spec, resume);
  EXPECT_TRUE(finished.bnb.complete());
  EXPECT_EQ(finished.certificate(spec).dump(2), expected.dump(2));
  EXPECT_EQ(slurp(log), slurp(log_oneshot));
}

TEST(GatherSearch, SpilledFrontierIsByteIdenticalToInMemory) {
  // The gather-tuple oracle through the spill-to-disk frontier: a run
  // whose cold frontier tail lives in JSONL segments must certify the
  // same worst chain, byte for byte, as the all-in-memory run.
  const SearchSpec spec = gather_search_spec();
  const std::string log_mem = temp_path("gather_spill_mem.jsonl");
  const std::string log_disk = temp_path("gather_spill_disk.jsonl");
  const std::string spill_dir = temp_path("gather_spill_dir");
  std::filesystem::remove_all(spill_dir);

  SearchOptions in_memory;
  in_memory.max_shards = 2;
  in_memory.incumbent_log_path = log_mem;
  SearchOptions spilled = in_memory;
  spilled.incumbent_log_path = log_disk;
  spilled.spill_dir = spill_dir;
  spilled.frontier_mem = 2;

  const exp::SearchRunResult mem = exp::run_search(spec, in_memory);
  const exp::SearchRunResult disk = exp::run_search(spec, spilled);
  EXPECT_EQ(mem.certificate(spec).dump(2), disk.certificate(spec).dump(2));
  EXPECT_EQ(slurp(log_mem), slurp(log_disk));
  EXPECT_GT(disk.bnb.frontier_spilled, 0u) << "frontier_mem=2 must actually spill";
}

TEST(GatherSearch, CommittedScenarioRunsToACompleteCertificate) {
  const SearchSpec spec = SearchSpec::load(scenario_path("search_gather_worst.json"));
  SearchOptions options;
  options.max_shards = 2;
  const exp::SearchRunResult result = exp::run_search(spec, options);
  EXPECT_TRUE(result.bnb.complete());
  ASSERT_TRUE(result.bnb.incumbent.found);
  // The worst chain found must genuinely gather, slower than trivially.
  EXPECT_GT(result.bnb.incumbent.score, 1.0);
  EXPECT_GT(result.bnb.stats.pruned, 0u);  // the reachability bound fires
}

}  // namespace
}  // namespace aurv::search
