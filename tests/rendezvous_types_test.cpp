// End-to-end validation of Theorem 3.2: Algorithm AlmostUniversalRV (and the
// standalone procedures it is built from) achieve rendezvous for instances
// of each of the four types, and fail exactly where Theorem 3.1 says no
// algorithm can succeed.
//
// Note on budgets: the paper's phase bounds are astronomically conservative
// (e.g. phase ~ log of the full Latecomers rendezvous time); the observed
// meets land in phases 1-5, which is what the event-fuel budgets here are
// sized for. EXPERIMENTS.md discusses the bound-vs-observed gap.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/cgkk.hpp"
#include "algo/latecomers.hpp"
#include "algo/wait_and_search.hpp"
#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "sim/engine.hpp"

namespace aurv::core {
namespace {

using agents::Instance;
using geom::Vec2;
using numeric::Rational;

sim::SimResult run_aurv(const Instance& instance, std::uint64_t fuel = 8'000'000) {
  sim::EngineConfig config;
  config.max_events = fuel;
  return sim::Engine(instance, config).run([] { return almost_universal_rv(); });
}

std::uint32_t meet_phase(const sim::SimResult& result) {
  // Agent A's local clock is the absolute clock; the phase in progress at
  // the meet time is the phase the rendezvous landed in.
  return aurv_phase_at(result.meet_window_start);
}

// ---------------- Type 1: synchronous, chi = -1 ----------------

TEST(RendezvousType1, AxisAlignedCanonicalLine) {
  // phi = 0: canonical line horizontal; dist_proj = 2, t = 1.5 > 2 - 1.
  const Instance instance = Instance::synchronous(
      1.0, Vec2{2.0, 0.6}, 0.0, Rational(numeric::BigInt(3), numeric::BigInt(2)), -1);
  ASSERT_EQ(classify(instance).kind, InstanceKind::Type1);
  const sim::SimResult result = run_aurv(instance);
  ASSERT_TRUE(result.met) << sim::to_string(result.reason)
                          << " min dist " << result.min_distance_seen;
  EXPECT_LE(result.final_distance, instance.r() + 1e-6);
  EXPECT_LE(meet_phase(result), 6u);
}

TEST(RendezvousType1, RotatedCanonicalLine) {
  // phi = pi/2: canonical line at inclination pi/4 — hit exactly by the
  // Rot(j*pi/4) epochs of phase 2.
  const double phi = geom::kPi / 2;
  const Vec2 along = geom::unit_vector(phi / 2.0);
  const Vec2 b = 2.0 * along + 0.5 * along.perp();
  const Instance instance = Instance::synchronous(
      1.0, b, phi, Rational(numeric::BigInt(3), numeric::BigInt(2)), -1);
  ASSERT_EQ(classify(instance).kind, InstanceKind::Type1);
  const sim::SimResult result = run_aurv(instance);
  ASSERT_TRUE(result.met) << sim::to_string(result.reason);
  EXPECT_LE(result.final_distance, instance.r() + 1e-6);
}

TEST(RendezvousType1, LargeDelayStillMeets) {
  // t far above the boundary: plenty of margin (e = 3.5).
  const Instance instance =
      Instance::synchronous(1.0, Vec2{2.0, 0.4}, 0.0, 4, -1);
  ASSERT_EQ(classify(instance).kind, InstanceKind::Type1);
  const sim::SimResult result = run_aurv(instance);
  ASSERT_TRUE(result.met) << sim::to_string(result.reason);
}

// ---------------- Type 2: synchronous shift (chi=+1, phi=0) ----------------

TEST(RendezvousType2, OffsetAlongAxis) {
  // d = 1.5, r = 1, t = 1 > 0.5 = d - r.
  const Instance instance = Instance::synchronous(1.0, Vec2{1.5, 0.0}, 0.0, 1, 1);
  ASSERT_EQ(classify(instance).kind, InstanceKind::Type2);
  const sim::SimResult result = run_aurv(instance);
  ASSERT_TRUE(result.met) << sim::to_string(result.reason)
                          << " min dist " << result.min_distance_seen;
  EXPECT_LE(result.final_distance, instance.r() + 1e-6);
}

TEST(RendezvousType2, GenericOffsetDirection) {
  const Instance instance = Instance::synchronous(1.0, Vec2{1.2, 0.9}, 0.0, 1, 1);
  ASSERT_EQ(classify(instance).kind, InstanceKind::Type2);
  const sim::SimResult result = run_aurv(instance, 30'000'000);
  ASSERT_TRUE(result.met) << sim::to_string(result.reason)
                          << " min dist " << result.min_distance_seen;
}

TEST(RendezvousType2, StandaloneLatecomersContract) {
  // Our Latecomers substitution must solve type-2 instances by itself
  // (the [38] contract the paper imports).
  const Instance instance = Instance::synchronous(1.0, Vec2{1.2, 0.9}, 0.0, 1, 1);
  sim::EngineConfig config;
  config.max_events = 4'000'000;
  const sim::SimResult result =
      sim::Engine(instance, config).run([] { return algo::latecomers(); });
  ASSERT_TRUE(result.met) << " min dist " << result.min_distance_seen;
  EXPECT_LE(result.final_distance, instance.r() + 1e-6);
}

TEST(RendezvousType2, LatecomersSweepAcrossDelays) {
  // t from just above the boundary to far above it.
  for (const double t : {0.6, 1.0, 2.0, 4.0}) {
    const Instance instance =
        Instance::synchronous(1.0, Vec2{1.5, 0.0}, 0.0, Rational::from_double(t), 1);
    ASSERT_EQ(classify(instance).kind, InstanceKind::Type2) << t;
    sim::EngineConfig config;
    config.max_events = 4'000'000;
    const sim::SimResult result =
        sim::Engine(instance, config).run([] { return algo::latecomers(); });
    EXPECT_TRUE(result.met) << "t=" << t << " min dist " << result.min_distance_seen;
  }
}

// ---------------- Type 3: different clock rates ----------------

TEST(RendezvousType3, SlowerAgentB) {
  // tau = 2: B's clock ticks at half rate. Rendezvous through the phase-3
  // block 3 (wait 2^135 — exactly why the timeline is exact rational).
  const Instance instance(1.0, Vec2{2.0, 0.5}, 0.3, /*tau=*/2, /*v=*/1,
                          /*t=*/Rational(numeric::BigInt(3), numeric::BigInt(4)), 1);
  ASSERT_EQ(classify(instance).kind, InstanceKind::Type3);
  const sim::SimResult result = run_aurv(instance);
  ASSERT_TRUE(result.met) << sim::to_string(result.reason);
  EXPECT_LE(result.final_distance, instance.r() + 1e-6);
}

TEST(RendezvousType3, FasterAgentB) {
  const Instance instance(1.0, Vec2{2.0, 0.5}, 0.0,
                          /*tau=*/Rational(numeric::BigInt(1), numeric::BigInt(2)),
                          /*v=*/1, /*t=*/0, -1);
  ASSERT_EQ(classify(instance).kind, InstanceKind::Type3);
  const sim::SimResult result = run_aurv(instance);
  ASSERT_TRUE(result.met) << sim::to_string(result.reason);
}

TEST(RendezvousType3, StandaloneWaitAndSearch) {
  const Instance instance(1.0, Vec2{2.0, 0.5}, 0.3, /*tau=*/2, /*v=*/1, /*t=*/0, 1);
  sim::EngineConfig config;
  config.max_events = 2'000'000;
  const sim::SimResult result =
      sim::Engine(instance, config).run([] { return algo::wait_and_search(); });
  ASSERT_TRUE(result.met) << " min dist " << result.min_distance_seen;
}

TEST(RendezvousType3, ClockRatioSweep) {
  for (const char* tau_text : {"3/2", "2", "3", "2/3", "1/3"}) {
    const Instance instance(1.0, Vec2{1.5, 0.25}, 0.0,
                            Rational::from_string(tau_text), 1, 0, 1);
    ASSERT_EQ(classify(instance).kind, InstanceKind::Type3) << tau_text;
    const sim::SimResult result = run_aurv(instance);
    EXPECT_TRUE(result.met) << "tau=" << tau_text << " "
                            << sim::to_string(result.reason);
  }
}

// ---------------- Type 4: rotation / speed symmetry breaking ----------------

TEST(RendezvousType4, SynchronousRotated) {
  // Synchronous, chi=+1, phi=pi/2, simultaneous start: lock-step fixed
  // point at (I - R(phi))^{-1} b.
  const Instance instance =
      Instance::synchronous(0.8, Vec2{2.0, 0.0}, geom::kPi / 2, 0, 1);
  ASSERT_EQ(classify(instance).kind, InstanceKind::Type4);
  const sim::SimResult result = run_aurv(instance);
  ASSERT_TRUE(result.met) << sim::to_string(result.reason);
  EXPECT_LE(meet_phase(result), 4u);
}

TEST(RendezvousType4, SpeedDifference) {
  // tau = 1, v = 2 (non-synchronous but equal clocks): type 4.
  const Instance instance(0.8, Vec2{1.5, 0.0}, 0.0, 1, /*v=*/2, 0, 1);
  ASSERT_EQ(classify(instance).kind, InstanceKind::Type4);
  const sim::SimResult result = run_aurv(instance);
  ASSERT_TRUE(result.met) << sim::to_string(result.reason);
}

TEST(RendezvousType4, SpeedAndMirrorChirality) {
  const Instance instance(0.8, Vec2{1.0, 0.5}, 0.7, 1, /*v=*/2, 0, -1);
  ASSERT_EQ(classify(instance).kind, InstanceKind::Type4);
  const sim::SimResult result = run_aurv(instance);
  ASSERT_TRUE(result.met) << sim::to_string(result.reason);
}

TEST(RendezvousType4, NonzeroDelay) {
  // The genuinely new regime the paper adds over [18]: different dynamics
  // *and* different wake-up times.
  const Instance instance(0.75, Vec2{1.2, 0.0}, 0.0, 1, /*v=*/2,
                          /*t=*/Rational(numeric::BigInt(1), numeric::BigInt(2)), 1);
  ASSERT_EQ(classify(instance).kind, InstanceKind::Type4);
  const sim::SimResult result = run_aurv(instance, 30'000'000);
  ASSERT_TRUE(result.met) << sim::to_string(result.reason)
                          << " min dist " << result.min_distance_seen;
}

TEST(RendezvousType4, StandaloneCgkkContract) {
  // Our CGKK substitution must solve t=0 instances with invertible I-M by
  // itself (the [18] contract restricted to tau=1).
  const Instance rotated = Instance::synchronous(0.8, Vec2{2.0, 0.0}, geom::kPi / 2, 0, 1);
  const Instance scaled(0.8, Vec2{1.5, 0.0}, 0.0, 1, 2, 0, 1);
  const Instance mirrored_scaled(0.8, Vec2{1.0, 0.5}, 0.7, 1, 2, 0, -1);
  for (const Instance& instance : {rotated, scaled, mirrored_scaled}) {
    sim::EngineConfig config;
    config.max_events = 2'000'000;
    const sim::SimResult result =
        sim::Engine(instance, config).run([] { return algo::cgkk(); });
    EXPECT_TRUE(result.met) << instance.to_string()
                            << " min dist " << result.min_distance_seen;
  }
}

TEST(RendezvousType4, LockStepGapTracksFixedPoint) {
  // White-box check of the CGKK analysis: with t=0, tau=1, the gap equals
  // (I-M)A(s) - b at every trace point.
  const Instance instance = Instance::synchronous(0.8, Vec2{2.0, 0.0}, geom::kPi / 2, 0, 1);
  sim::EngineConfig config;
  config.max_events = 100'000;
  config.trace_capacity = 4096;
  const sim::SimResult result =
      sim::Engine(instance, config).run([] { return algo::cgkk(); });
  const geom::Similarity pose = instance.b_pose();
  for (const sim::TracePoint& point : result.trace.points()) {
    const Vec2 predicted_b = pose.apply(point.a);  // B replays A's local path
    EXPECT_NEAR(geom::dist(point.b, predicted_b), 0.0, 1e-6);
  }
}

// ---------------- Trivial and infeasible boundaries ----------------

TEST(RendezvousTrivial, OverlapMeetsAtTimeZero) {
  const Instance instance = Instance::synchronous(2.0, Vec2{1.0, 0.0}, 0.0, 0, 1);
  const sim::SimResult result = run_aurv(instance, 1000);
  ASSERT_TRUE(result.met);
  EXPECT_DOUBLE_EQ(result.meet_time, 0.0);
}

TEST(RendezvousInfeasible, SymmetricShiftNeverCloses) {
  // chi=+1, phi=0, synchronous, t < d - r: the gap satisfies
  // |gap(s)| >= d - t at all times, whatever the common program does.
  const Instance instance = Instance::synchronous(1.0, Vec2{4.0, 0.0}, 0.0, 1, 1);
  ASSERT_EQ(classify(instance).kind, InstanceKind::Infeasible);
  const sim::SimResult result = run_aurv(instance, 2'000'000);
  EXPECT_FALSE(result.met);
  EXPECT_GE(result.min_distance_seen, instance.initial_distance() - instance.t_d() - 1e-6);
}

TEST(RendezvousInfeasible, MirroredProjectionBoundHolds) {
  // chi=-1, t < dist_proj - r: projections can close by at most t.
  const Instance instance = Instance::synchronous(1.0, Vec2{5.0, 0.8}, 0.0, 2, -1);
  ASSERT_EQ(classify(instance).kind, InstanceKind::Infeasible);
  const sim::SimResult result = run_aurv(instance, 2'000'000);
  EXPECT_FALSE(result.met);
  EXPECT_GE(result.min_distance_seen,
            instance.projection_distance() - instance.t_d() - 1e-6);
}

// ---------------- Section 5: distinct visibility radii ----------------

TEST(RendezvousDistinctRadii, FarSightedFreezesThenOtherCloses) {
  // Type-1 instance, r_a = 1.5 > r_b = 0.75. A freezes on first sighting;
  // B's continuing searches close the remaining gap.
  const Instance instance = Instance::synchronous(
      0.75, Vec2{2.0, 0.6}, 0.0, Rational(numeric::BigInt(3), numeric::BigInt(2)), -1);
  sim::EngineConfig config;
  config.max_events = 30'000'000;
  config.r_a = 1.5;
  config.r_b = 0.75;
  const sim::SimResult result =
      sim::Engine(instance, config).run([] { return almost_universal_rv(); });
  ASSERT_TRUE(result.met) << sim::to_string(result.reason)
                          << " min dist " << result.min_distance_seen;
  EXPECT_LE(result.final_distance, 0.75 + 1e-6);
}

}  // namespace
}  // namespace aurv::core
