// Golden regression fixtures: exact observed outcomes for fixed scenarios.
// The simulation is deterministic, so these values are stable across runs;
// any drift signals a behavioral change in the algorithm transcription,
// the engine's event ordering, or the numeric substrate — the three places
// a regression would otherwise hide.
#include <gtest/gtest.h>

#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "numeric/bigint.hpp"
#include "sim/engine.hpp"

namespace aurv::core {
namespace {

using agents::Instance;
using geom::Vec2;
using numeric::BigInt;
using numeric::Rational;

sim::SimResult run(const Instance& instance, std::uint64_t fuel = 40'000'000) {
  sim::EngineConfig config;
  config.max_events = fuel;
  return sim::Engine(instance, config).run([] { return almost_universal_rv(); });
}

TEST(Golden, Type1Canonical) {
  // The README/quickstart instance.
  const sim::SimResult result = run(Instance::synchronous(
      1.0, Vec2{2.0, 0.6}, 0.0, Rational::from_string("3/2"), -1));
  ASSERT_TRUE(result.met);
  EXPECT_NEAR(result.meet_time, 43.344663, 1e-5);
  EXPECT_EQ(result.events, 38u);
  EXPECT_NEAR(result.a_position.x, -0.6553, 1e-4);
  EXPECT_NEAR(result.b_position.y, 0.7553, 1e-4);
}

TEST(Golden, Type2Canonical) {
  const sim::SimResult result =
      run(Instance::synchronous(1.0, Vec2{1.5, 0.0}, 0.0, 1, 1));
  ASSERT_TRUE(result.met);
  EXPECT_NEAR(result.meet_time, 42.588562, 1e-5);
  EXPECT_EQ(result.events, 38u);
}

TEST(Golden, Type4SpeedDifference) {
  const sim::SimResult result = run(Instance(0.8, Vec2{1.5, 0.0}, 0.0, 1, 2, 0, 1));
  ASSERT_TRUE(result.met);
  EXPECT_NEAR(result.meet_time, 16.7, 1e-6);
  EXPECT_EQ(result.events, 14u);
}

TEST(Golden, HardType4MeetsAfterHugeWait) {
  // v = 5/4, d = 5: the meet lands in phase 4, right after the phase-3
  // block-3 wait of 2^135 local units — the regime that requires the exact
  // rational timeline end to end (double saturates at 2^53).
  const Instance instance(1.0, Vec2{5.0, 0.0}, 0.0, 1, Rational::from_string("5/4"), 0, 1);
  const sim::SimResult result = run(instance, 120'000'000);
  ASSERT_TRUE(result.met);
  EXPECT_EQ(aurv_phase_at(result.meet_window_start), 4u);
  // The exact meet-window start exceeds 2^135 (and the double view agrees
  // in magnitude).
  EXPECT_GT(result.meet_window_start, Rational::pow2(135));
  EXPECT_LT(result.meet_window_start, Rational::pow2(136));
  EXPECT_NEAR(std::log2(result.meet_time), 135.0, 0.1);
  // Sub-unit structure above the huge integer part is preserved exactly:
  // the window start is not a round power of two.
  EXPECT_NE(result.meet_window_start, Rational::pow2(135));
}

TEST(Golden, BoundaryS1ExactMeetGeometry) {
  // Dedicated S1 on (3,4), r=1, t=4: meet at exactly t with A at 4/5 of
  // the way to B.
  const Instance instance = Instance::synchronous(1.0, Vec2{3.0, 4.0}, 0.0, 4, 1);
  const sim::SimResult result =
      sim::Engine(instance, {}).run(recommended_algorithm(instance));
  ASSERT_TRUE(result.met);
  EXPECT_NEAR(result.meet_time, 4.0, 1e-6);
  EXPECT_NEAR(result.a_position.x, 2.4, 1e-6);
  EXPECT_NEAR(result.a_position.y, 3.2, 1e-6);
  EXPECT_EQ(result.b_position, (Vec2{3.0, 4.0}));
}

TEST(Golden, InfeasibleClosestApproachIsTight) {
  // The analytic bound dist - t is *attained* (the algorithm's straight
  // runs realize the maximum displacement difference).
  const Instance instance = Instance::synchronous(1.0, Vec2{4.0, 0.0}, 0.0, 1, 1);
  const sim::SimResult result = run(instance, 1'000'000);
  EXPECT_FALSE(result.met);
  EXPECT_NEAR(result.min_distance_seen, 3.0, 1e-9);
}

}  // namespace
}  // namespace aurv::core
