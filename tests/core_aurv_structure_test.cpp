// Structural tests of Algorithm 1 (AlmostUniversalRV): block composition,
// the Lemma 3.1 return-to-start invariant, and the closed-form phase
// durations used by the phase-index reporting.
#include <gtest/gtest.h>

#include <vector>

#include "algo/cow_walk.hpp"
#include "algo/wait_and_search.hpp"
#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "program/combinators.hpp"

namespace aurv::core {
namespace {

using numeric::Rational;
using program::Instruction;

TEST(AurvStructure, Lemma31EveryBlockReturnsToStart) {
  // Lemma 3.1: each time an agent starts a line other than the backtrack
  // bookkeeping it does so from its initial position — equivalently, every
  // block's net displacement is zero.
  for (std::uint32_t phase = 1; phase <= 3; ++phase) {
    for (int block = 1; block <= 4; ++block) {
      const std::vector<Instruction> instructions = aurv_phase_block(phase, block);
      EXPECT_NEAR(program::net_displacement(instructions).norm(), 0.0, 1e-9)
          << "phase " << phase << " block " << block;
    }
  }
}

TEST(AurvStructure, PhaseDurationClosedFormMatchesMaterialized) {
  for (std::uint32_t phase = 1; phase <= 3; ++phase) {
    Rational materialized = 0;
    for (int block = 1; block <= 4; ++block) {
      materialized += program::total_duration(aurv_phase_block(phase, block));
    }
    EXPECT_EQ(materialized, aurv_phase_duration(phase)) << phase;
  }
}

TEST(AurvStructure, Block1Has2ToIPlus1Epochs) {
  // Block 1 of phase i: 2^(i+1) PlanarCowWalk(i) executions, rotated.
  for (std::uint32_t phase = 1; phase <= 2; ++phase) {
    const std::vector<Instruction> block = aurv_phase_block(phase, 1);
    const Rational expected =
        Rational::pow2(phase + 1) * algo::planar_cow_walk_duration(phase);
    EXPECT_EQ(program::total_duration(block), expected);
    // All instructions are moves (PlanarCowWalk is wait-free).
    for (const Instruction& instruction : block) {
      ASSERT_TRUE(program::is_move(instruction));
    }
  }
}

TEST(AurvStructure, Block2IsWaitLatecomersBacktrack) {
  const std::uint32_t phase = 3;
  const std::vector<Instruction> block = aurv_phase_block(phase, 2);
  ASSERT_FALSE(block.empty());
  // Line 9: leading wait of 2^i.
  ASSERT_FALSE(program::is_move(block.front()));
  EXPECT_EQ(program::duration_of(block.front()), Rational::pow2(phase));
  // Total: wait 2^i + prefix 2^i + backtrack 2^i.
  EXPECT_EQ(program::total_duration(block), Rational(3) * Rational::pow2(phase));
  // The move part nets to zero (prefix + backtrack).
  EXPECT_NEAR(program::net_displacement(block).norm(), 0.0, 1e-9);
}

TEST(AurvStructure, Block3IsHugeWaitThenWalk) {
  const std::uint32_t phase = 2;
  const std::vector<Instruction> block = aurv_phase_block(phase, 3);
  ASSERT_FALSE(block.empty());
  EXPECT_FALSE(program::is_move(block.front()));
  EXPECT_EQ(program::duration_of(block.front()), algo::wait_and_search_pause(phase));
  for (std::size_t k = 1; k < block.size(); ++k) {
    EXPECT_TRUE(program::is_move(block[k]));
  }
}

TEST(AurvStructure, Block4SegmentsOfExactDuration) {
  // Line 18: the CGKK prefix of local length 2^i is cut into 2^(2i)
  // segments of 1/2^i, each followed by wait(2^i).
  const std::uint32_t phase = 2;
  const std::vector<Instruction> block = aurv_phase_block(phase, 4);
  const Rational segment = Rational::dyadic(1, phase);
  const Rational pause = Rational::pow2(phase);
  Rational move_acc = 0;
  std::uint64_t waits = 0;
  bool in_backtrack = false;
  Rational backtrack_moves = 0;
  for (const Instruction& instruction : block) {
    if (program::is_move(instruction)) {
      if (in_backtrack) {
        backtrack_moves += program::duration_of(instruction);
      } else {
        move_acc += program::duration_of(instruction);
      }
    } else {
      EXPECT_EQ(program::duration_of(instruction), pause);
      EXPECT_FALSE(in_backtrack);
      EXPECT_EQ(move_acc, segment);  // each segment is exactly 1/2^i of motion
      move_acc = 0;
      ++waits;
      if (waits == (std::uint64_t{1} << (2 * phase))) in_backtrack = true;
    }
  }
  EXPECT_EQ(waits, std::uint64_t{1} << (2 * phase));  // 2^(2i) interruptions
  EXPECT_EQ(backtrack_moves, Rational::pow2(phase));  // full path retraced
  EXPECT_NEAR(program::net_displacement(block).norm(), 0.0, 1e-9);
}

TEST(AurvStructure, PhaseStartsAccumulate) {
  EXPECT_EQ(aurv_phase_start(1), Rational(0));
  EXPECT_EQ(aurv_phase_start(2), aurv_phase_duration(1));
  EXPECT_EQ(aurv_phase_start(3), aurv_phase_duration(1) + aurv_phase_duration(2));
}

TEST(AurvStructure, PhaseAtInvertsPhaseStart) {
  EXPECT_EQ(aurv_phase_at(Rational(0)), 1u);
  EXPECT_EQ(aurv_phase_at(aurv_phase_duration(1) - Rational(1)), 1u);
  EXPECT_EQ(aurv_phase_at(aurv_phase_duration(1)), 2u);
  EXPECT_EQ(aurv_phase_at(aurv_phase_start(3)), 3u);
  EXPECT_EQ(aurv_phase_at(aurv_phase_start(4)), 4u);
  EXPECT_THROW((void)aurv_phase_at(Rational(-1)), std::logic_error);
}

TEST(AurvStructure, StreamMatchesMaterializedBlocks) {
  // The infinite program yields exactly phase-1 blocks 1..4 then phase 2...
  program::Program stream = almost_universal_rv();
  std::vector<Instruction> expected;
  for (int block = 1; block <= 4; ++block) {
    const std::vector<Instruction> blk = aurv_phase_block(1, block);
    expected.insert(expected.end(), blk.begin(), blk.end());
  }
  for (const Instruction& want : expected) {
    ASSERT_TRUE(stream.next());
    EXPECT_EQ(stream.value(), want);
  }
  // The stream continues into phase 2.
  ASSERT_TRUE(stream.next());
}

TEST(AurvStructure, PhaseBlockValidation) {
  EXPECT_THROW((void)aurv_phase_block(0, 1), std::logic_error);
  EXPECT_THROW((void)aurv_phase_block(1, 0), std::logic_error);
  EXPECT_THROW((void)aurv_phase_block(1, 5), std::logic_error);
}

TEST(AurvStructure, RecommendedAlgorithmDispatch) {
  using agents::Instance;
  using geom::Vec2;
  // S1 boundary -> dedicated S1 program (finite, one move).
  const Instance s1 = Instance::synchronous(1.0, Vec2{3.0, 4.0}, 0.0, 4, 1);
  ASSERT_EQ(classify(s1).kind, InstanceKind::BoundaryS1);
  auto p1 = recommended_algorithm(s1)();
  std::size_t count1 = 0;
  while (p1.next()) ++count1;
  EXPECT_EQ(count1, 1u);
  // Covered instance -> the infinite universal program.
  const Instance covered = Instance::synchronous(1.0, Vec2{3.0, 4.0}, 0.0, 5, 1);
  auto p2 = recommended_algorithm(covered)();
  for (int k = 0; k < 100; ++k) ASSERT_TRUE(p2.next());
}

}  // namespace
}  // namespace aurv::core
