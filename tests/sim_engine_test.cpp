// Tests for the event-driven rendezvous simulator: timing semantics of the
// agent frames, first-contact detection, freeze-on-sight, huge exact waits,
// horizon/fuel stops, and the Section 5 distinct-radii model.
#include <gtest/gtest.h>

#include <cmath>

#include "agents/instance.hpp"
#include "geom/angle.hpp"
#include "program/combinators.hpp"
#include "program/instruction.hpp"
#include "sim/engine.hpp"

namespace aurv::sim {
namespace {

using agents::Instance;
using geom::Vec2;
using numeric::Rational;
using program::go;
using program::go_east;
using program::go_north;
using program::go_west;
using program::replay;
using program::wait;

Instance basic_instance(Vec2 b_start, double r = 1.0) {
  return Instance::synchronous(r, b_start, /*phi=*/0.0, /*t=*/0, /*chi=*/1);
}

program::Program endless_dance() {
  const program::Instruction east = go_east(1);
  const program::Instruction west = go_west(1);
  while (true) {
    co_yield east;
    co_yield west;
  }
}

TEST(Engine, TrivialOverlapMeetsAtTimeZero) {
  const Instance inst = basic_instance(Vec2{0.5, 0.0}, /*r=*/1.0);
  const SimResult result = Engine(inst, {}).run(replay({}), replay({}));
  EXPECT_TRUE(result.met);
  EXPECT_EQ(result.reason, StopReason::Rendezvous);
  EXPECT_DOUBLE_EQ(result.meet_time, 0.0);
  EXPECT_DOUBLE_EQ(result.final_distance, 0.5);
}

TEST(Engine, HeadOnApproachMeetsAtRadius) {
  const Instance inst = basic_instance(Vec2{10.0, 0.0});
  const SimResult result = Engine(inst, {}).run(replay({go_east(20)}), replay({wait(100)}));
  ASSERT_TRUE(result.met);
  // A closes at speed 1 until distance r (+slack): meet at ~9.
  EXPECT_NEAR(result.meet_time, 9.0, 1e-6);
  EXPECT_NEAR(result.final_distance, 1.0, 1e-6);
  EXPECT_NEAR(result.a_position.x, 9.0, 1e-6);
  EXPECT_EQ(result.b_position, (Vec2{10.0, 0.0}));
}

TEST(Engine, BothIdleWhenProgramsEndApart) {
  const Instance inst = basic_instance(Vec2{10.0, 0.0});
  const SimResult result = Engine(inst, {}).run(replay({go_east(2)}), replay({go_east(2)}));
  EXPECT_FALSE(result.met);
  EXPECT_EQ(result.reason, StopReason::BothIdle);
  EXPECT_NEAR(result.final_distance, 10.0, 1e-9);  // parallel motion, constant gap
  EXPECT_NEAR(result.min_distance_seen, 10.0, 1e-9);
}

TEST(Engine, WakeUpDelayHoldsAgentB) {
  // B wakes at t=6. Both programs say "go east 4"; B's motion starts at 6.
  Instance inst = basic_instance(Vec2{0.0, 10.0}).with_delay(6);
  EngineConfig config;
  config.trace_capacity = 1024;
  const SimResult result =
      Engine(inst, config).run(replay({go_east(4)}), replay({go_east(4)}));
  EXPECT_FALSE(result.met);
  EXPECT_EQ(result.reason, StopReason::BothIdle);
  // B ends displaced east by 4 from (0,10) — same displacement, delayed.
  EXPECT_NEAR(result.b_position.x, 4.0, 1e-9);
  EXPECT_NEAR(result.b_position.y, 10.0, 1e-9);
  // The trace shows B still at its start at the time A finished (t=4).
  bool saw_b_static_at_4 = false;
  for (const TracePoint& point : result.trace.points()) {
    if (std::abs(point.time - 4.0) < 1e-12) {
      saw_b_static_at_4 = std::abs(point.b.x) < 1e-12;
    }
  }
  EXPECT_TRUE(saw_b_static_at_4);
}

TEST(Engine, ClockRateScalesDurations) {
  // tau = 2: B's go(4) takes 8 absolute time units; with v = 1 its length
  // unit is 2, so it covers 8 absolute units of distance.
  const Instance inst(1.0, Vec2{0.0, 30.0}, 0.0, /*tau=*/2, /*v=*/1, /*t=*/0, 1);
  EngineConfig config;
  config.trace_capacity = 1024;
  const SimResult result =
      Engine(inst, config).run(replay({go_east(4)}), replay({go_east(4)}));
  EXPECT_EQ(result.reason, StopReason::BothIdle);
  EXPECT_NEAR(result.b_position.x, 8.0, 1e-9);
  // Find B's position halfway through its move (absolute time 4): speed v=1.
  for (const TracePoint& point : result.trace.points()) {
    if (std::abs(point.time - 4.0) < 1e-12) {
      EXPECT_NEAR(point.b.x, 4.0, 1e-9);
    }
  }
}

TEST(Engine, SpeedScalesVelocityAndLengthUnit) {
  // v = 3, tau = 1: B's go(2) covers 6 absolute units in 2 time units.
  const Instance inst(1.0, Vec2{0.0, 30.0}, 0.0, /*tau=*/1, /*v=*/3, /*t=*/0, 1);
  const SimResult result =
      Engine(inst, {}).run(replay({go_east(2)}), replay({go_east(2)}));
  EXPECT_NEAR(result.b_position.x, 6.0, 1e-9);
  EXPECT_NEAR(result.a_position.x, 2.0, 1e-9);
}

TEST(Engine, ChiralityMirrorsHeadings) {
  // chi = -1, phi = 0: B's "north" is absolute south.
  const Instance inst = Instance::synchronous(1.0, Vec2{0.0, 30.0}, 0.0, 0, -1);
  const SimResult result =
      Engine(inst, {}).run(replay({go_north(2)}), replay({go_north(2)}));
  EXPECT_NEAR(result.a_position.y, 2.0, 1e-9);
  EXPECT_NEAR(result.b_position.y, 28.0, 1e-9);
}

TEST(Engine, RotationTurnsHeadings) {
  // phi = pi/2: B's east is absolute north.
  const Instance inst = Instance::synchronous(1.0, Vec2{30.0, 0.0}, geom::kPi / 2, 0, 1);
  const SimResult result =
      Engine(inst, {}).run(replay({go_east(2)}), replay({go_east(2)}));
  EXPECT_NEAR(result.a_position.x, 2.0, 1e-9);
  EXPECT_NEAR(result.b_position.x, 30.0, 1e-9);
  EXPECT_NEAR(result.b_position.y, 2.0, 1e-9);
}

TEST(Engine, HugeWaitsKeepExactTimeline) {
  // A waits 2^200 time units and then closes in. Double time would lose the
  // sub-unit structure entirely; the rational timeline must not.
  const Instance inst = basic_instance(Vec2{4.0, 0.0});
  const Rational huge = Rational::pow2(200);
  const SimResult result = Engine(inst, {}).run(
      replay({wait(huge), go_east(10)}), replay({wait(huge + Rational(100))}));
  ASSERT_TRUE(result.met);
  // Meet occurs inside the window starting exactly at 2^200.
  EXPECT_EQ(result.meet_window_start, huge);
  EXPECT_NEAR(result.meet_window_offset, 3.0, 1e-6);  // 4 - r
  EXPECT_NEAR(result.final_distance, 1.0, 1e-6);
}

TEST(Engine, FuelExhaustionStopsCleanly) {
  const Instance inst = basic_instance(Vec2{100.0, 0.0});
  EngineConfig config;
  config.max_events = 50;
  // Endless tiny shuttle dance, never approaching.
  const SimResult result = Engine(inst, config).run(endless_dance(), endless_dance());
  EXPECT_FALSE(result.met);
  EXPECT_EQ(result.reason, StopReason::FuelExhausted);
  EXPECT_LE(result.events, 50u);
}

TEST(Engine, HorizonStopsAtExactTime) {
  const Instance inst = basic_instance(Vec2{100.0, 0.0});
  EngineConfig config;
  config.horizon = Rational(7);
  const SimResult result =
      Engine(inst, config).run(replay({go_east(50)}), replay({wait(100)}));
  EXPECT_FALSE(result.met);
  EXPECT_EQ(result.reason, StopReason::HorizonReached);
  EXPECT_NEAR(result.a_position.x, 7.0, 1e-9);
  EXPECT_NEAR(result.final_distance, 93.0, 1e-9);
}

TEST(Engine, MinDistanceSeenOnFlyBy) {
  // A passes B at lateral offset 2 with r = 1: no rendezvous, min ~2.
  const Instance inst = basic_instance(Vec2{10.0, 2.0});
  const SimResult result = Engine(inst, {}).run(replay({go_east(20)}), replay({wait(30)}));
  EXPECT_FALSE(result.met);
  EXPECT_NEAR(result.min_distance_seen, 2.0, 1e-9);
}

TEST(Engine, GrazingContactWithinSlack) {
  // Closest approach exactly r: declared rendezvous thanks to contact_slack.
  const Instance inst = basic_instance(Vec2{10.0, 1.0});
  const SimResult result = Engine(inst, {}).run(replay({go_east(20)}), replay({wait(30)}));
  EXPECT_TRUE(result.met);
  EXPECT_NEAR(result.final_distance, 1.0, 1e-3);
}

TEST(Engine, ZeroDurationInstructionsDoNotHang) {
  const Instance inst = basic_instance(Vec2{50.0, 0.0});
  EngineConfig config;
  config.max_events = 1000;
  const SimResult result = Engine(inst, config).run(
      replay({go_east(0), go_east(0), wait(0), go_east(1)}),
      replay({go_east(0), wait(2)}));
  EXPECT_EQ(result.reason, StopReason::BothIdle);
  EXPECT_NEAR(result.a_position.x, 1.0, 1e-9);
}

TEST(Engine, AnonymousFactoryRunsSameProgramOnBoth) {
  // Identical frames, delayed B: both trace out the same "L", displaced.
  const Instance inst = basic_instance(Vec2{3.0, 40.0}).with_delay(2);
  const SimResult result = simulate(
      inst, [] { return replay({go_east(2), go_north(1)}); }, {});
  EXPECT_EQ(result.reason, StopReason::BothIdle);
  EXPECT_NEAR(result.a_position.x, 2.0, 1e-9);
  EXPECT_NEAR(result.a_position.y, 1.0, 1e-9);
  EXPECT_NEAR(result.b_position.x, 5.0, 1e-9);
  EXPECT_NEAR(result.b_position.y, 41.0, 1e-9);
}

TEST(Engine, DistinctRadiiFarSightedFreezes) {
  // Section 5: A sees at 5, B at 1. A approaches and freezes at distance 5;
  // B never moves, so the run ends apart (no mutual sighting).
  const Instance inst = basic_instance(Vec2{10.0, 0.0});
  EngineConfig config;
  config.r_a = 5.0;
  config.r_b = 1.0;
  const SimResult result = Engine(inst, config).run(replay({go_east(20)}), replay({wait(50)}));
  EXPECT_FALSE(result.met);
  EXPECT_EQ(result.reason, StopReason::BothIdle);
  EXPECT_NEAR(result.final_distance, 5.0, 1e-6);  // frozen at its own radius
}

TEST(Engine, DistinctRadiiCompletesWhenNearSightedCloses) {
  // A (radius 5) walks in and freezes at distance 5; B (radius 1) then
  // closes to distance 1 — rendezvous complete.
  const Instance inst = basic_instance(Vec2{10.0, 0.0});
  EngineConfig config;
  config.r_a = 5.0;
  config.r_b = 1.0;
  const SimResult result =
      Engine(inst, config).run(replay({go_east(4), wait(100)}),
                               replay({wait(10), go_west(20)}));
  ASSERT_TRUE(result.met);
  EXPECT_NEAR(result.final_distance, 1.0, 1e-6);
  // A froze at x=4 (wait), never moved further; B closed the gap westward.
  EXPECT_NEAR(result.a_position.x, 4.0, 1e-6);
  EXPECT_NEAR(result.b_position.x, 5.0, 1e-6);
}

TEST(Engine, DistinctRadiiFreezeMidMove) {
  // A's radius is 6; it freezes mid-instruction the moment dist hits 6.
  const Instance inst = basic_instance(Vec2{10.0, 0.0});
  EngineConfig config;
  config.r_a = 6.0;
  config.r_b = 0.5;
  const SimResult result =
      Engine(inst, config).run(replay({go_east(20), wait(100)}),
                               replay({wait(100)}));
  EXPECT_FALSE(result.met);
  EXPECT_NEAR(result.a_position.x, 4.0, 1e-6);  // froze at distance 6
  EXPECT_NEAR(result.final_distance, 6.0, 1e-6);
}

TEST(Engine, TraceRecordsBoundariesUpToCapacity) {
  const Instance inst = basic_instance(Vec2{100.0, 0.0});
  EngineConfig config;
  config.trace_capacity = 4;
  const SimResult result = Engine(inst, config).run(
      replay({go_east(1), go_east(1), go_east(1), go_east(1), go_east(1)}),
      replay({wait(10)}));
  EXPECT_EQ(result.trace.points().size(), 4u);
  EXPECT_GT(result.trace.dropped(), 0u);
  // Times are nondecreasing.
  for (std::size_t k = 1; k < result.trace.points().size(); ++k) {
    EXPECT_LE(result.trace.points()[k - 1].time, result.trace.points()[k].time);
  }
}

TEST(Engine, InstructionCountsReported) {
  const Instance inst = basic_instance(Vec2{100.0, 0.0});
  const SimResult result = Engine(inst, {}).run(
      replay({go_east(1), go_west(1), wait(1)}), replay({wait(5)}));
  EXPECT_EQ(result.instructions_a, 3u);
  EXPECT_EQ(result.instructions_b, 1u);
}

TEST(Engine, ConfigValidation) {
  EngineConfig bad;
  bad.r_a = -1.0;
  EXPECT_THROW(Engine(basic_instance(Vec2{5, 0}), bad), std::logic_error);
}

}  // namespace
}  // namespace aurv::sim
