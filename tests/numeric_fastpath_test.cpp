// Randomized differential tests: the numeric layer's fast paths (SBO
// BigInt in-place ops, dyadic-tagged Rational shift-align arithmetic) must
// be bit-exact against the slow/general paths over mixed small / huge /
// dyadic / non-dyadic operands, including the tier-transition boundaries
// (|v| around 2^62 for the Rational inline tier, 2-limb -> 3-limb spill for
// the BigInt small buffer).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "numeric/bigint.hpp"
#include "numeric/rational.hpp"

namespace aurv::numeric {
namespace {

using u64 = std::uint64_t;

// ---------------------------------------------------------------- BigInt --

/// Reference addition via the public string round-trip is overkill; instead
/// cross-check the in-place ops against the expression forms, which share
/// only the primitive magnitude helpers, and against algebraic identities.
BigInt random_bigint(std::mt19937_64& rng, int max_limbs) {
  std::uniform_int_distribution<int> limb_count(0, max_limbs);
  std::uniform_int_distribution<u64> limb;
  const int limbs = limb_count(rng);
  BigInt value;
  for (int i = 0; i < limbs; ++i) {
    value <<= 64;
    value += BigInt(limb(rng));
  }
  // Bias toward boundary shapes: exact powers of two, all-ones, tiny.
  switch (rng() % 8) {
    case 0: value = BigInt::pow2(static_cast<u64>(rng() % 200)); break;
    case 1: value = BigInt::pow2(static_cast<u64>(rng() % 200)) - BigInt(1); break;
    case 2: value = BigInt(static_cast<long long>(rng() % 5)); break;
    default: break;
  }
  if (rng() % 2 == 0) value = -value;
  return value;
}

TEST(FastPathBigInt, AddSubRoundTrip) {
  std::mt19937_64 rng(20260729);
  for (int round = 0; round < 4000; ++round) {
    const BigInt a = random_bigint(rng, 5);
    const BigInt b = random_bigint(rng, 5);
    BigInt acc = a;
    acc += b;                       // in-place (capacity-reusing) path
    EXPECT_EQ(acc, a + b);          // expression path
    EXPECT_EQ(acc - b, a);          // subtraction inverts addition
    EXPECT_EQ(acc - a, b);
    BigInt neg = a;
    neg -= b;
    EXPECT_EQ(neg, a - b);
    EXPECT_EQ(neg + b, a);
  }
}

TEST(FastPathBigInt, AddShiftedMatchesShiftThenAdd) {
  std::mt19937_64 rng(42);
  for (int round = 0; round < 4000; ++round) {
    const BigInt a = random_bigint(rng, 5);
    const BigInt b = random_bigint(rng, 5);
    const u64 shift = rng() % 200;
    const int sign_mult = rng() % 2 == 0 ? 1 : -1;
    BigInt fast = a;
    fast.add_shifted(b, shift, sign_mult);
    const BigInt slow = sign_mult > 0 ? a + (b << shift) : a - (b << shift);
    EXPECT_EQ(fast, slow) << "a=" << a.to_string() << " b=" << b.to_string()
                          << " shift=" << shift << " sign=" << sign_mult;
  }
}

TEST(FastPathBigInt, SpillBoundaryTwoToThreeLimbs) {
  // 2^128 is the first value that cannot live in the 2-limb inline buffer.
  const BigInt below = BigInt::pow2(128) - BigInt(1);
  EXPECT_TRUE(below.is_inline());
  BigInt spilled = below;
  spilled += BigInt(1);
  EXPECT_FALSE(spilled.is_inline());
  EXPECT_EQ(spilled, BigInt::pow2(128));
  // Arithmetic across the spill stays exact both directions.
  spilled -= BigInt(1);
  EXPECT_EQ(spilled, below);
  EXPECT_EQ(spilled.to_string(), below.to_string());
  // Shift across the boundary and back.
  BigInt shifted = BigInt::pow2(127);
  EXPECT_TRUE(shifted.is_inline());
  shifted <<= 1;
  EXPECT_EQ(shifted, BigInt::pow2(128));
  shifted >>= 1;
  EXPECT_EQ(shifted, BigInt::pow2(127));
}

TEST(FastPathBigInt, MulSmallFastPathMatchesSchoolbook) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<u64> limb;
  for (int round = 0; round < 2000; ++round) {
    // One-limb operands take the 64x64 fast path; cross-check against the
    // same product computed through multi-limb operands.
    const u64 raw_a = limb(rng);
    const u64 raw_b = limb(rng);
    const BigInt a(raw_a);
    const BigInt b(raw_b);
    const BigInt fast = a * b;
    BigInt slow = a << 64;  // two-limb shape of the same magnitude, scaled
    slow *= b;
    EXPECT_EQ(fast << 64, slow);
    const unsigned __int128 expect =
        static_cast<unsigned __int128>(raw_a) * raw_b;
    EXPECT_EQ(fast, (BigInt(static_cast<unsigned long long>(expect >> 64)) << 64) +
                        BigInt(static_cast<unsigned long long>(expect)));
  }
}

// -------------------------------------------------------------- Rational --

/// General-path reference: combine through BigInt cross multiplication and
/// gcd-canonicalize explicitly, bypassing every dyadic shortcut.
Rational ref_add(const Rational& a, const Rational& b, int sign_mult) {
  const BigInt an = a.numerator(), ad = a.denominator();
  const BigInt bn = b.numerator(), bd = b.denominator();
  BigInt num = an * bd;
  if (sign_mult > 0) {
    num += bn * ad;
  } else {
    num -= bn * ad;
  }
  BigInt den = ad * bd;
  if (num.is_zero()) return Rational(0);
  const BigInt g = BigInt::gcd(num, den);
  return Rational(num / g, den / g);
}

Rational ref_mul(const Rational& a, const Rational& b) {
  return Rational(a.numerator() * b.numerator(), a.denominator() * b.denominator());
}

int ref_compare(const Rational& a, const Rational& b) {
  const BigInt left = a.numerator() * b.denominator();
  const BigInt right = b.numerator() * a.denominator();
  if (left < right) return -1;
  if (left > right) return 1;
  return 0;
}

/// Mixed operand pool: inline/big x dyadic/non-dyadic, clustered around the
/// inline-tier boundary 2^62 and the paper's huge phase waits.
Rational random_rational(std::mt19937_64& rng) {
  const auto small = [&]() -> long long {
    return static_cast<long long>(rng() % 2048) - 1024;
  };
  switch (rng() % 8) {
    case 0:  // small non-dyadic
      return Rational(BigInt(small()), BigInt(small() * 2 + 1));
    case 1:  // small dyadic
      return Rational::dyadic(small(), rng() % 10);
    case 2:  // inline boundary: numerators straddling 2^62
      return Rational(BigInt::pow2(62) + BigInt(small()), BigInt(small() * 2 + 1));
    case 3:  // inline boundary: dyadic with den straddling 2^61..2^63
      return Rational::dyadic(small() * 2 + 1, 60 + rng() % 4);
    case 4:  // huge dyadic (phase-wait shape)
      return Rational::pow2(100 + rng() % 300) + Rational::dyadic(small(), 1 + rng() % 12);
    case 5:  // huge non-dyadic
      return Rational(BigInt::pow2(100 + rng() % 200) + BigInt(small()),
                      BigInt::pow2(50) + BigInt(3));
    case 6:  // negative huge dyadic
      return -(Rational::pow2(100 + rng() % 300) + Rational::dyadic(small(), 1 + rng() % 12));
    default:  // zero and integers
      return Rational(small());
  }
}

void expect_same(const Rational& fast, const Rational& reference, const char* what,
                 const Rational& a, const Rational& b) {
  EXPECT_EQ(fast, reference) << what << "\n  a = " << a.to_string()
                             << "\n  b = " << b.to_string()
                             << "\n  fast = " << fast.to_string()
                             << "\n  ref  = " << reference.to_string();
  // Representation must be canonical and tier-correct, not just equal.
  EXPECT_EQ(fast.numerator(), reference.numerator()) << what;
  EXPECT_EQ(fast.denominator(), reference.denominator()) << what;
  EXPECT_EQ(fast.is_inline(), reference.is_inline()) << what;
}

TEST(FastPathRational, AddSubDifferential) {
  std::mt19937_64 rng(20260729);
  for (int round = 0; round < 3000; ++round) {
    const Rational a = random_rational(rng);
    const Rational b = random_rational(rng);
    Rational sum = a;
    sum += b;
    expect_same(sum, ref_add(a, b, 1), "a += b", a, b);
    Rational diff = a;
    diff -= b;
    expect_same(diff, ref_add(a, b, -1), "a -= b", a, b);
    // Round trip restores the original representation exactly.
    Rational back = sum;
    back -= b;
    expect_same(back, a, "(a + b) - b", a, b);
  }
}

TEST(FastPathRational, MulDivDifferential) {
  std::mt19937_64 rng(99);
  for (int round = 0; round < 3000; ++round) {
    const Rational a = random_rational(rng);
    const Rational b = random_rational(rng);
    Rational product = a;
    product *= b;
    expect_same(product, ref_mul(a, b), "a *= b", a, b);
    if (!b.is_zero()) {
      Rational quotient = a;
      quotient /= b;
      expect_same(quotient, ref_mul(a, b.reciprocal()), "a /= b", a, b);
    }
  }
}

TEST(FastPathRational, CompareDifferential) {
  std::mt19937_64 rng(123);
  for (int round = 0; round < 5000; ++round) {
    const Rational a = random_rational(rng);
    const Rational b = random_rational(rng);
    const int reference = ref_compare(a, b);
    const std::strong_ordering fast = a <=> b;
    const int got = fast < 0 ? -1 : (fast > 0 ? 1 : 0);
    EXPECT_EQ(got, reference) << "a = " << a.to_string() << "\nb = " << b.to_string();
    EXPECT_EQ(a == b, reference == 0);
  }
}

TEST(FastPathRational, SelfAliasingOps) {
  std::mt19937_64 rng(5);
  for (int round = 0; round < 500; ++round) {
    const Rational a = random_rational(rng);
    Rational doubled = a;
    doubled += doubled;
    expect_same(doubled, ref_add(a, a, 1), "x += x", a, a);
    Rational zero = a;
    zero -= zero;
    EXPECT_TRUE(zero.is_zero()) << a.to_string();
    EXPECT_TRUE(zero.is_inline());
    Rational squared = a;
    squared *= squared;
    expect_same(squared, ref_mul(a, a), "x *= x", a, a);
  }
}

TEST(FastPathRational, InlineTierBoundaryExact) {
  // 2^62 - 1 is the largest inline numerator; one more promotes.
  const Rational max_inline((std::int64_t{1} << 62) - 1);
  EXPECT_TRUE(max_inline.is_inline());
  Rational promoted = max_inline;
  promoted += Rational(1);
  EXPECT_FALSE(promoted.is_inline());
  EXPECT_EQ(promoted.numerator(), BigInt::pow2(62));
  // And the demotion on the way back down is exact.
  promoted -= Rational(1);
  EXPECT_TRUE(promoted.is_inline());
  EXPECT_EQ(promoted, max_inline);
  // Denominator side: 2^61 stays inline, 2^62 promotes.
  EXPECT_TRUE(Rational::dyadic(1, 61).is_inline());
  EXPECT_FALSE(Rational::dyadic(1, 62).is_inline());
  EXPECT_EQ(Rational::dyadic(1, 61) * Rational::dyadic(1, 1), Rational::dyadic(1, 62));
}

TEST(FastPathRational, DyadicObservability) {
  EXPECT_TRUE(Rational(0).is_dyadic());
  EXPECT_TRUE(Rational(7).is_dyadic());
  EXPECT_TRUE(Rational::dyadic(3, 5).is_dyadic());
  EXPECT_TRUE((Rational::pow2(375) + Rational::dyadic(3, 7)).is_dyadic());
  EXPECT_FALSE(Rational(BigInt(1), BigInt(3)).is_dyadic());
  EXPECT_FALSE(Rational(BigInt(1), BigInt::pow2(100) + BigInt(1)).is_dyadic());
  // Dyadic-ness is a property of the value, surviving arithmetic that
  // cancels the odd parts: (1/3) * 3 = 1 is dyadic again.
  EXPECT_TRUE((Rational(BigInt(1), BigInt(3)) * Rational(3)).is_dyadic());
}

TEST(FastPathRational, FloorCeilDifferential) {
  std::mt19937_64 rng(17);
  for (int round = 0; round < 2000; ++round) {
    const Rational a = random_rational(rng);
    const BigInt::DivModResult dm = BigInt::divmod(a.numerator(), a.denominator());
    BigInt floor_ref = dm.quotient;
    if (a.is_negative() && !dm.remainder.is_zero()) floor_ref -= BigInt(1);
    BigInt ceil_ref = dm.quotient;
    if (!a.is_negative() && !dm.remainder.is_zero()) ceil_ref += BigInt(1);
    EXPECT_EQ(a.floor(), floor_ref) << a.to_string();
    EXPECT_EQ(a.ceil(), ceil_ref) << a.to_string();
  }
}

}  // namespace
}  // namespace aurv::numeric
