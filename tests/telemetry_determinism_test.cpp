// The telemetry layer's hard invariant, enforced end to end: every
// deterministic artifact (search certificates, incumbent logs, campaign
// JSONL streams and summaries) is byte-identical with telemetry observers
// on, off, or at any heartbeat interval, and at any worker count — only
// the metrics sink and stderr may carry wall-clock values. Also checks
// that real runs actually populate the counters the snapshot schema
// promises (nonzero engine.* / search.* / runner.*).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "test_paths.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/search_driver.hpp"
#include "support/telemetry.hpp"

namespace aurv {
namespace {

namespace telemetry = support::telemetry;
using exp::SearchOptions;
using exp::SearchSpec;
using numeric::Rational;
using support::Json;
using testpaths::fresh_dir;
using testpaths::slurp;
using testpaths::temp_path;

/// The same fast tuple-space spec the spill/bnb determinism tests use:
/// 48 boxes in waves of 8 — several waves, several incumbents.
SearchSpec search_spec() {
  SearchSpec spec;
  spec.name = "test_telemetry_search";
  spec.algorithm = "aurv";
  spec.objective = "max-meet-time";
  spec.space.family = search::SearchSpace::Family::Tuple;
  spec.space.chi = -1;
  spec.space.fixed = {{"r", Rational(1)},
                      {"y", Rational(numeric::BigInt(6), numeric::BigInt(5))},
                      {"phi", Rational(0)}};
  spec.space.dim_names = {"x", "t"};
  spec.box = {search::Interval{Rational(numeric::BigInt(3), numeric::BigInt(2)),
                               Rational(numeric::BigInt(7), numeric::BigInt(2))},
              search::Interval{Rational(0), Rational(3)}};
  spec.limits.max_boxes = 48;
  spec.limits.wave_size = 8;
  spec.limits.min_width = Rational(numeric::BigInt(1), numeric::BigInt(64));
  spec.engine.max_events = 2'000'000;
  spec.engine.horizon = Rational(256);
  return spec;
}

exp::ScenarioSpec campaign_spec() {
  exp::ScenarioSpec spec;
  spec.name = "test_telemetry_campaign";
  spec.algorithm = "aurv";
  spec.seed = 7;
  spec.sampler = "type2";
  spec.count = 60;
  spec.engine.max_events = 2'000'000;
  return spec;
}

/// A discarding heartbeat sink: observation pressure without terminal spam.
class NullSink {
 public:
  NullSink() : file_(std::fopen(testpaths::temp_path("telemetry_null.jsonl").c_str(), "wb")) {}
  ~NullSink() {
    if (file_ != nullptr) std::fclose(file_);
  }
  [[nodiscard]] std::FILE* get() const { return file_; }

 private:
  std::FILE* file_;
};

// --------------------------------------------------- search byte-identity --

TEST(TelemetryDeterminism, SearchArtifactsIdenticalUnderObservation) {
  const SearchSpec spec = search_spec();

  // Baseline: telemetry idle (registry exists but no heartbeat), 1 shard.
  telemetry::registry().reset();
  SearchOptions plain;
  plain.max_shards = 1;
  plain.incumbent_log_path = temp_path("telemetry_plain.jsonl");
  const exp::SearchRunResult baseline = exp::run_search(spec, plain);
  const std::string baseline_certificate = baseline.certificate(spec).dump(2);
  const std::string baseline_log = slurp(plain.incumbent_log_path);

  // Observed: 4 shards, an aggressive heartbeat hammering the registry
  // mid-run, spill enabled, and a metrics snapshot written at the end.
  telemetry::registry().reset();
  SearchOptions observed;
  observed.max_shards = 4;
  observed.incumbent_log_path = temp_path("telemetry_observed.jsonl");
  observed.spill_dir = fresh_dir("telemetry_spill");
  observed.frontier_mem = 2;
  NullSink sink;
  ASSERT_NE(sink.get(), nullptr);
  {
    telemetry::HeartbeatConfig config;
    config.interval_s = 0.001;  // far faster than production: maximum interference
    config.out = sink.get();
    telemetry::Heartbeat heartbeat(std::move(config));
    const exp::SearchRunResult result = exp::run_search(spec, observed);
    heartbeat.stop();
    EXPECT_EQ(result.certificate(spec).dump(2), baseline_certificate);
  }
  EXPECT_EQ(slurp(observed.incumbent_log_path), baseline_log);

  // The run populated the counter families the snapshot schema promises.
  const auto counters = telemetry::registry().counter_values();
  const auto nonzero = [&](const char* name) {
    const auto it = counters.find(name);
    return it != counters.end() && it->second > 0;
  };
  EXPECT_TRUE(nonzero("engine.runs"));
  EXPECT_TRUE(nonzero("engine.events"));
  EXPECT_TRUE(nonzero("search.waves"));
  EXPECT_TRUE(nonzero("search.evaluated"));
  EXPECT_TRUE(nonzero("search.improvements"));
  EXPECT_TRUE(nonzero("spill.segments")) << "frontier_mem=2 must spill";

  // And the snapshot of this run validates structurally.
  telemetry::RunManifest manifest;
  manifest.kind = "search";
  manifest.spec_path = "inline";
  manifest.fingerprint = "0";
  manifest.threads = 4;
  const Json snapshot = telemetry::metrics_snapshot(manifest, 1.0);
  EXPECT_EQ(snapshot.at("schema").as_uint(), 1u);
  EXPECT_GT(snapshot.at("counters").at("engine.runs").as_uint(), 0u);
}

TEST(TelemetryDeterminism, SearchCountersAreThreadCountInvariant) {
  const SearchSpec spec = search_spec();

  telemetry::registry().reset();
  SearchOptions serial;
  serial.max_shards = 1;
  (void)exp::run_search(spec, serial);
  const auto counters_serial = telemetry::registry().counter_values();

  telemetry::registry().reset();
  SearchOptions parallel;
  parallel.max_shards = 4;
  (void)exp::run_search(spec, parallel);
  const auto counters_parallel = telemetry::registry().counter_values();

  EXPECT_EQ(counters_serial, counters_parallel)
      << "counter totals are part of the determinism contract";
}

// -------------------------------------------------- campaign byte-identity --

TEST(TelemetryDeterminism, CampaignArtifactsIdenticalUnderObservation) {
  const exp::ScenarioSpec spec = campaign_spec();

  telemetry::registry().reset();
  exp::CampaignOptions plain;
  plain.threads = 1;
  plain.shard_size = 16;
  plain.jsonl_path = temp_path("telemetry_campaign_plain.jsonl");
  const exp::CampaignResult baseline = exp::run_campaign(spec, plain);
  const std::string baseline_summary = baseline.summary(spec).dump(2);
  const std::string baseline_jsonl = slurp(plain.jsonl_path);

  telemetry::registry().reset();
  exp::CampaignOptions observed;
  observed.threads = 4;
  observed.shard_size = 16;
  observed.jsonl_path = temp_path("telemetry_campaign_observed.jsonl");
  observed.checkpoint_path = temp_path("telemetry_campaign_ckpt.json");
  observed.checkpoint_every = 1;
  NullSink sink;
  ASSERT_NE(sink.get(), nullptr);
  {
    telemetry::HeartbeatConfig config;
    config.interval_s = 0.001;
    config.out = sink.get();
    telemetry::Heartbeat heartbeat(std::move(config));
    const exp::CampaignResult result = exp::run_campaign(spec, observed);
    heartbeat.stop();
    EXPECT_EQ(result.summary(spec).dump(2), baseline_summary);
  }
  EXPECT_EQ(slurp(observed.jsonl_path), baseline_jsonl);

  const auto counters = telemetry::registry().counter_values();
  EXPECT_EQ(counters.at("runner.jobs"), 60u);
  EXPECT_EQ(counters.at("runner.shards"), 4u);  // 60 jobs / shard_size 16
  EXPECT_GT(counters.at("runner.checkpoints"), 0u);
  EXPECT_GT(counters.at("engine.runs"), 0u);
  EXPECT_GT(counters.at("telemetry.merges"), 0u);
}

}  // namespace
}  // namespace aurv
