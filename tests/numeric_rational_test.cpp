// Unit and property tests for numeric::Rational — the exact time type.
#include "numeric/rational.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace aurv::numeric {
namespace {

TEST(Rational, DefaultIsZero) {
  const Rational zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_TRUE(zero.is_integer());
  EXPECT_EQ(zero.to_string(), "0");
}

TEST(Rational, NormalizationInvariants) {
  const Rational r(BigInt(6), BigInt(-4));
  EXPECT_EQ(r.numerator(), BigInt(-3));
  EXPECT_EQ(r.denominator(), BigInt(2));
  const Rational z(BigInt(0), BigInt(-7));
  EXPECT_EQ(z.denominator(), BigInt(1));
  EXPECT_THROW(Rational(BigInt(1), BigInt(0)), std::logic_error);
}

TEST(Rational, DyadicConstruction) {
  EXPECT_EQ(Rational::dyadic(1, 3), Rational(BigInt(1), BigInt(8)));
  EXPECT_EQ(Rational::dyadic(4, 2), Rational(1));
  EXPECT_EQ(Rational::dyadic(-3, 1), Rational(BigInt(-3), BigInt(2)));
  EXPECT_EQ(Rational::pow2(15), Rational(32768));
}

TEST(Rational, FromStringFormats) {
  EXPECT_EQ(Rational::from_string("5"), Rational(5));
  EXPECT_EQ(Rational::from_string("-3/6"), Rational(BigInt(-1), BigInt(2)));
  EXPECT_EQ(Rational::from_string("10/4").to_string(), "5/2");
  EXPECT_THROW((void)Rational::from_string("1/"), std::invalid_argument);
}

TEST(Rational, FromDoubleIsExact) {
  EXPECT_EQ(Rational::from_double(0.0), Rational(0));
  EXPECT_EQ(Rational::from_double(1.0), Rational(1));
  EXPECT_EQ(Rational::from_double(0.5), Rational::dyadic(1, 1));
  EXPECT_EQ(Rational::from_double(-0.75), Rational::dyadic(-3, 2));
  EXPECT_EQ(Rational::from_double(std::ldexp(1.0, 100)), Rational::pow2(100));
  // 0.1 is not exactly 1/10 in binary; the conversion must reproduce the
  // double's exact dyadic value, which converts back bit-identically.
  const Rational tenth = Rational::from_double(0.1);
  EXPECT_NE(tenth, Rational(BigInt(1), BigInt(10)));
  EXPECT_EQ(tenth.to_double(), 0.1);
  EXPECT_THROW((void)Rational::from_double(std::nan("")), std::invalid_argument);
  EXPECT_THROW((void)Rational::from_double(INFINITY), std::invalid_argument);
}

TEST(Rational, ArithmeticKnownValues) {
  const Rational half = Rational::dyadic(1, 1);
  const Rational third(BigInt(1), BigInt(3));
  EXPECT_EQ(half + third, Rational(BigInt(5), BigInt(6)));
  EXPECT_EQ(half - third, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(half * third, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(half / third, Rational(BigInt(3), BigInt(2)));
  EXPECT_EQ(-half, Rational(BigInt(-1), BigInt(2)));
  EXPECT_EQ((-half).abs(), half);
  EXPECT_EQ(third.reciprocal(), Rational(3));
  EXPECT_THROW((void)Rational(0).reciprocal(), std::logic_error);
  EXPECT_THROW((void)(half / Rational(0)), std::logic_error);
}

TEST(Rational, ComparisonCrossMultiplies) {
  EXPECT_LT(Rational(BigInt(1), BigInt(3)), Rational(BigInt(1), BigInt(2)));
  EXPECT_LT(Rational(BigInt(-1), BigInt(2)), Rational(BigInt(-1), BigInt(3)));
  EXPECT_EQ(Rational(BigInt(2), BigInt(4)), Rational(BigInt(1), BigInt(2)));
  EXPECT_EQ(min(Rational(1), Rational(2)), Rational(1));
  EXPECT_EQ(max(Rational(1), Rational(2)), Rational(2));
}

TEST(Rational, HugeTimesWithTinyOffsetsStayExact) {
  // The scenario that forced exact time: a phase-4 wait of 2^240 followed
  // by a sub-unit move. Double would collapse the offset entirely.
  const Rational huge = Rational::pow2(240);
  const Rational offset = Rational::dyadic(3, 5);  // 3/32
  const Rational sum = huge + offset;
  EXPECT_GT(sum, huge);
  EXPECT_EQ(sum - huge, offset);
  EXPECT_LT(huge, sum);
  // Double view saturates (cannot see the offset) but stays finite/ordered.
  EXPECT_EQ(sum.to_double(), huge.to_double());
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(BigInt(7), BigInt(2)).floor(), BigInt(3));
  EXPECT_EQ(Rational(BigInt(7), BigInt(2)).ceil(), BigInt(4));
  EXPECT_EQ(Rational(BigInt(-7), BigInt(2)).floor(), BigInt(-4));
  EXPECT_EQ(Rational(BigInt(-7), BigInt(2)).ceil(), BigInt(-3));
  EXPECT_EQ(Rational(5).floor(), BigInt(5));
  EXPECT_EQ(Rational(5).ceil(), BigInt(5));
}

TEST(Rational, ToDoubleAccuracy) {
  EXPECT_DOUBLE_EQ(Rational(BigInt(1), BigInt(3)).to_double(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Rational(BigInt(-2), BigInt(7)).to_double(), -2.0 / 7.0);
  // Huge numerator and denominator that individually overflow double.
  const Rational ratio(BigInt::pow2(1100) * BigInt(3), BigInt::pow2(1100));
  EXPECT_DOUBLE_EQ(ratio.to_double(), 3.0);
  const Rational tiny(BigInt(3), BigInt::pow2(80));
  EXPECT_DOUBLE_EQ(tiny.to_double(), 3.0 * std::ldexp(1.0, -80));
}

TEST(Rational, ToStringFormats) {
  EXPECT_EQ(Rational(BigInt(4), BigInt(2)).to_string(), "2");
  EXPECT_EQ(Rational(BigInt(-3), BigInt(9)).to_string(), "-1/3");
}


TEST(Rational, TierInvariants) {
  // Any value whose reduced form fits int64-range magnitudes is stored in
  // the inline tier; bigger values promote and demote transparently.
  EXPECT_TRUE(Rational(0).is_inline());
  EXPECT_TRUE(Rational::dyadic(3, 40).is_inline());
  EXPECT_TRUE(Rational::pow2(61).is_inline());
  EXPECT_FALSE(Rational::pow2(70).is_inline());
  // Arithmetic that cancels the huge parts demotes back to inline.
  const Rational huge = Rational::pow2(200) + Rational::dyadic(3, 5);
  EXPECT_FALSE(huge.is_inline());
  const Rational small_again = huge - Rational::pow2(200);
  EXPECT_TRUE(small_again.is_inline());
  EXPECT_EQ(small_again, Rational::dyadic(3, 5));
  // Inline overflow promotes: (2^61)^2 = 2^122.
  const Rational squared = Rational::pow2(61) * Rational::pow2(61);
  EXPECT_FALSE(squared.is_inline());
  EXPECT_EQ(squared, Rational::pow2(122));
}

TEST(Rational, CrossTierArithmeticAndOrdering) {
  const Rational small = Rational(BigInt(7), BigInt(3));
  const Rational big = Rational(BigInt::pow2(100) + BigInt(1), BigInt::pow2(80));
  EXPECT_TRUE(small.is_inline());
  EXPECT_FALSE(big.is_inline());
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_NE(small, big);
  const Rational sum = small + big;
  EXPECT_EQ(sum - big, small);
  EXPECT_EQ(sum - small, big);
  const Rational product = small * big;
  EXPECT_EQ(product / big, small);
  // Copy semantics across tiers (deep copy of the big payload).
  Rational copy = big;
  copy += Rational(1);
  EXPECT_NE(copy, big);
  EXPECT_EQ(copy - Rational(1), big);
}

TEST(Rational, InlineBoundaryPromotion) {
  // Values straddling the 2^62 inline bound: arithmetic stays exact.
  const Rational just_under = Rational((std::int64_t{1} << 62) - 1);
  const Rational just_over = just_under + Rational(1);
  EXPECT_TRUE(just_under.is_inline());
  EXPECT_EQ(just_over - just_under, Rational(1));
  EXPECT_EQ(just_over.numerator(), BigInt::pow2(62));
  // Long long constructor beyond the bound promotes.
  const Rational max_ll(std::numeric_limits<long long>::max());
  EXPECT_EQ(max_ll.numerator(), BigInt(std::numeric_limits<long long>::max()));
}

class RationalRandomProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RationalRandomProperty, FieldAxiomsAndOrdering) {
  std::mt19937_64 rng(GetParam() * 1337 + 7);
  std::uniform_int_distribution<long long> num(-1000000, 1000000);
  std::uniform_int_distribution<long long> den(1, 1000);
  const auto random_rational = [&] { return Rational(BigInt(num(rng)), BigInt(den(rng))); };
  for (int iteration = 0; iteration < 300; ++iteration) {
    const Rational a = random_rational();
    const Rational b = random_rational();
    const Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - b + b, a);
    if (!b.is_zero()) {
      EXPECT_EQ(a / b * b, a);
    }
    // Ordering is consistent with subtraction sign.
    EXPECT_EQ(a < b, (a - b).is_negative());
    // Double view is monotone-consistent for values this small.
    if (a != b) {
      EXPECT_EQ(a < b, a.to_double() < b.to_double());
    }
    // gcd-normalized: numerator and denominator coprime.
    EXPECT_EQ(BigInt::gcd(a.numerator(), a.denominator()), BigInt(1));
  }
}

TEST_P(RationalRandomProperty, FromDoubleRoundTripsExactly) {
  std::mt19937_64 rng(GetParam() * 31 + 5);
  std::uniform_real_distribution<double> dist(-1e9, 1e9);
  for (int iteration = 0; iteration < 300; ++iteration) {
    const double value = dist(rng);
    EXPECT_EQ(Rational::from_double(value).to_double(), value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalRandomProperty, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace aurv::numeric
