// Tests for the multi-agent gathering engine (the paper's concluding open
// problem, in the restricted shifted-frames model of [38]).
#include <gtest/gtest.h>

#include <cmath>

#include "algo/latecomers.hpp"
#include "gather/engine.hpp"
#include "program/combinators.hpp"
#include "sim/engine.hpp"

namespace aurv::gather {
namespace {

using geom::Vec2;
using numeric::Rational;
using program::go_east;
using program::go_west;
using program::replay;
using program::wait;

TEST(GatherEngine, ValidatesInput) {
  EXPECT_THROW(GatherEngine({}, {}), std::logic_error);
  GatherConfig bad;
  bad.r = 0.0;
  EXPECT_THROW(GatherEngine({{Vec2{0, 0}, 0}, {Vec2{3, 0}, 0}}, bad), std::logic_error);
  GatherConfig ok;
  EXPECT_THROW(GatherEngine({{Vec2{0, 0}, -1}, {Vec2{3, 0}, 0}}, ok), std::logic_error);
}

TEST(GatherEngine, SingleAgentIsTriviallyGathered) {
  // n = 1: diameter 0 from the start, under either policy, at time 0 — even
  // when the lone agent's program would walk forever.
  for (const StopPolicy policy : {StopPolicy::FirstSight, StopPolicy::AllVisible}) {
    GatherConfig config;
    config.r = 1.0;
    config.policy = policy;
    const GatherResult result =
        GatherEngine({{Vec2{3, -2}, 5}}, config).run([] { return algo::latecomers(); });
    ASSERT_TRUE(result.gathered) << to_string(policy);
    EXPECT_EQ(result.reason, GatherStop::Gathered);
    EXPECT_DOUBLE_EQ(result.gather_time, 0.0);
    EXPECT_DOUBLE_EQ(result.min_diameter_seen, 0.0);
    ASSERT_EQ(result.positions.size(), 1u);
    EXPECT_EQ(result.positions.front(), (Vec2{3, -2}));
    ASSERT_EQ(result.frozen.size(), 1u);
    EXPECT_TRUE(result.frozen.front());
  }
}

TEST(GatherEngine, AllAgentsColocatedGatherImmediately) {
  // Everyone starts at the same point with scattered wakes: the diameter is
  // exactly 0 at t = 0, so both policies succeed at time 0 regardless of
  // what the common program would later do.
  for (const StopPolicy policy : {StopPolicy::FirstSight, StopPolicy::AllVisible}) {
    GatherConfig config;
    config.r = 0.25;
    config.policy = policy;
    const GatherResult result =
        GatherEngine({{Vec2{1, 1}, 0}, {Vec2{1, 1}, 2}, {Vec2{1, 1}, 7}, {Vec2{1, 1}, 3}},
                     config)
            .run([] { return algo::latecomers(); });
    ASSERT_TRUE(result.gathered) << to_string(policy);
    EXPECT_DOUBLE_EQ(result.gather_time, 0.0);
    EXPECT_LE(result.final_diameter, config.r);
  }
}

TEST(GatherEngine, TwoAgentsMatchRendezvousEngine) {
  // For n = 2 both policies coincide with the paper's rendezvous rule; the
  // gather engine must agree with the two-agent engine on a type-2-like
  // scenario driven by Latecomers.
  const Vec2 b{1.5, 0.0};
  const Rational delay = 1;
  const agents::Instance instance = agents::Instance::synchronous(1.0, b, 0.0, delay, 1);
  sim::EngineConfig pair_config;
  pair_config.max_events = 2'000'000;
  const sim::SimResult pair =
      sim::Engine(instance, pair_config).run([] { return algo::latecomers(); });
  ASSERT_TRUE(pair.met);

  for (const StopPolicy policy : {StopPolicy::FirstSight, StopPolicy::AllVisible}) {
    GatherConfig config;
    config.r = 1.0;
    config.policy = policy;
    config.max_events = 2'000'000;
    const GatherResult group = GatherEngine({{Vec2{0, 0}, 0}, {b, delay}}, config)
                                   .run([] { return algo::latecomers(); });
    ASSERT_TRUE(group.gathered) << to_string(policy);
    EXPECT_NEAR(group.gather_time, pair.meet_time, 1e-6) << to_string(policy);
    EXPECT_NEAR(group.final_diameter, pair.final_distance, 1e-6) << to_string(policy);
  }
}

TEST(GatherEngine, TrivialClusterGathersImmediately) {
  GatherConfig config;
  config.r = 2.0;
  const GatherResult result =
      GatherEngine({{Vec2{0, 0}, 0}, {Vec2{1, 0}, 0}, {Vec2{0.5, 0.5}, 0}}, config)
          .run([] { return replay({}); });
  ASSERT_TRUE(result.gathered);
  EXPECT_DOUBLE_EQ(result.gather_time, 0.0);
  EXPECT_LE(result.final_diameter, 2.0);
}

TEST(GatherEngine, FirstSightChainsAccrete) {
  // Three colinear agents, 3 apart, r = 1. A scripted approach: the outer
  // agents walk inward, each freezing on first sight; the chain ends with
  // diameter <= 2r but > r.
  GatherConfig config;
  config.r = 1.0;
  config.policy = StopPolicy::FirstSight;
  config.success_diameter = 2.0;  // a chain of three
  const GatherResult result =
      GatherEngine({{Vec2{-3, 0}, 0}, {Vec2{0, 0}, 0}, {Vec2{3, 0}, 0}}, config)
          .run([] { return replay({go_east(6)}); });
  // All agents walk East: the left agent catches the middle one only if a
  // freeze happens; with everyone translating East in lockstep nothing
  // changes — so instead check the no-freeze outcome first.
  EXPECT_FALSE(result.gathered);
  EXPECT_EQ(result.reason, GatherStop::AllIdleApart);
  EXPECT_NEAR(result.final_diameter, 6.0, 1e-9);
}

TEST(GatherEngine, FirstSightFreezeThenAccretion) {
  // Agent 1 sleeps (wake far in the future), agents 0 and 2 walk toward it
  // with staggered wakes: 0 reaches sight of 1 and both freeze; 2 arrives
  // later and freezes at distance r of the nearest — a chain of diameter
  // <= 2r.
  GatherConfig config;
  config.r = 1.0;
  config.policy = StopPolicy::FirstSight;
  // Each freeze happens at r + contact slack, so a chain of three spans a
  // shade over 2r; allow for the accumulated slack.
  config.success_diameter = 2.0 + 1e-6;
  config.horizon = Rational(100);
  const GatherResult result =
      GatherEngine({{Vec2{-4, 0}, 0}, {Vec2{0, 0}, 50}, {Vec2{5, 0}, 2}}, config)
          .run([] { return replay({go_east(20), go_west(40)}); });
  // Agent 0 walks east from -4, sees agent 1 at x = -1 (time 3), both
  // freeze (1 was asleep; on wake it sees 0 and stays). Agent 2 walks east
  // first (away), then back west, meeting the frozen pair from the right.
  ASSERT_TRUE(result.gathered) << to_string(result.reason)
                               << " diameter " << result.final_diameter;
  EXPECT_LE(result.final_diameter, 2.0 + 1e-5);
  EXPECT_GT(result.final_diameter, 1.0 - 1e-6);  // genuinely a chain, not a point
}

TEST(GatherEngine, AllVisibleRequiresSimultaneity) {
  // Two outer agents shuttle through the middle one in counterphase: each
  // pair is within r at *some* time but all three are never simultaneously
  // within r. AllVisible must not declare success.
  GatherConfig config;
  config.r = 0.5;
  config.policy = StopPolicy::AllVisible;
  config.horizon = Rational(40);
  const GatherResult result =
      GatherEngine({{Vec2{-3, 0}, 0}, {Vec2{0, 0}, 0}, {Vec2{3, 0}, 4}}, config)
          .run([] {
            return replay({go_east(3), go_west(3), go_east(3), go_west(3)});
          });
  // Agent 0 visits the middle at t=3 (before agent 2 arrives: it starts at
  // t=4); agent 2 visits the middle at t=4+3=7 travelling west... never all
  // three within 0.5 at once.
  EXPECT_FALSE(result.gathered) << " diameter " << result.final_diameter;
}

TEST(GatherEngine, AllVisibleGathersOnStaggeredMarch) {
  // A funnel configuration where simultaneity is achievable: agents at
  // 0, 2.4, 4.4 on the x-axis with wakes 0, 2.7, 5.2, all marching East.
  // Agent 0 sweeps past the sleeping agent 2 while agent 1 is right
  // behind: at s ~ 3.7 every pairwise distance is <= 1 simultaneously.
  GatherConfig config;
  config.r = 1.0;
  config.policy = StopPolicy::AllVisible;
  const std::vector<GatherAgent> agents = {
      {Vec2{0, 0}, 0},
      {Vec2{2.4, 0.0}, numeric::Rational::from_string("27/10")},
      {Vec2{4.4, 0.0}, numeric::Rational::from_string("26/5")}};
  EXPECT_TRUE(is_funnel_configuration(agents, config.r));
  const GatherResult result =
      GatherEngine(agents, config).run([] { return replay({go_east(20)}); });
  ASSERT_TRUE(result.gathered) << to_string(result.reason)
                               << " min diameter " << result.min_diameter_seen;
  EXPECT_NEAR(result.gather_time, 3.7, 1e-6);
  EXPECT_LE(result.final_diameter, config.r + 1e-6);
}

TEST(GatherEngine, FunnelPredicateIsNotSufficientForThree) {
  // A genuinely n-agent phenomenon surfaced by this engine: the natural
  // "everyone is a late-enough comer w.r.t. the earliest agent" predicate
  // is NOT sufficient for n >= 3. Here agents 1 and 2 wake at the same
  // instant: with shifted frames and a common program their mutual gap is
  // *constant forever* (T(s - t1) - T(s - t2) = 0), pinned at 4.8 > r, so
  // no algorithm whatsoever gathers this configuration — yet the
  // earliest-agent funnel predicate accepts it.
  GatherConfig config;
  config.r = 1.0;
  config.policy = StopPolicy::AllVisible;
  config.horizon = numeric::Rational(2000);
  config.max_events = 2'000'000;
  const std::vector<GatherAgent> agents = {
      {Vec2{0, 0}, 0}, {Vec2{2.4, 0.0}, 2}, {Vec2{-2.4, 0.0}, 2}};
  EXPECT_TRUE(is_funnel_configuration(agents, config.r));  // accepted — wrongly
  const GatherResult result =
      GatherEngine(agents, config).run([] { return algo::latecomers(); });
  EXPECT_FALSE(result.gathered);
  // The diameter can never drop below the constant pair gap.
  EXPECT_GE(result.min_diameter_seen, 4.8 - 1e-9);
}

TEST(GatherEngine, FunnelPredicateMatchesTwoAgentBoundary) {
  // For n = 2 the predicate must reduce to the paper's t > dist - r.
  const std::vector<GatherAgent> above = {{Vec2{0, 0}, 0}, {Vec2{3, 0}, Rational(3)}};
  const std::vector<GatherAgent> below = {{Vec2{0, 0}, 0}, {Vec2{3, 0}, Rational(1)}};
  EXPECT_TRUE(is_funnel_configuration(above, 1.0));
  EXPECT_FALSE(is_funnel_configuration(below, 1.0));
  // Boundary (t = dist - r = 2) is excluded, like the paper's strict case.
  const std::vector<GatherAgent> boundary = {{Vec2{0, 0}, 0}, {Vec2{3, 0}, Rational(2)}};
  EXPECT_FALSE(is_funnel_configuration(boundary, 1.0));
}

TEST(GatherEngine, HorizonAndFuelStops) {
  GatherConfig config;
  config.r = 0.5;
  config.horizon = Rational(5);
  const GatherResult horizon_stop =
      GatherEngine({{Vec2{0, 0}, 0}, {Vec2{100, 0}, 0}}, config)
          .run([] { return replay({go_east(50)}); });
  EXPECT_EQ(horizon_stop.reason, GatherStop::HorizonReached);

  GatherConfig tiny;
  tiny.r = 0.5;
  tiny.max_events = 3;
  const GatherResult fuel_stop =
      GatherEngine({{Vec2{0, 0}, 0}, {Vec2{100, 0}, 0}}, tiny)
          .run([] { return algo::latecomers(); });
  EXPECT_EQ(fuel_stop.reason, GatherStop::FuelExhausted);
}

}  // namespace
}  // namespace aurv::gather
