// Executable counterpart of the impossibility results (Section 4): for any
// fixed algorithm the adversary builds a boundary instance (S1 or S2) it
// cannot solve — verified by simulation — while the *same* instance is
// solved by its dedicated boundary algorithm. "We miss little and cannot
// avoid it altogether."
#include <gtest/gtest.h>

#include <cmath>

#include "algo/boundary.hpp"
#include "algo/latecomers.hpp"
#include "core/adversary.hpp"
#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "sim/engine.hpp"

namespace aurv::core {
namespace {

using agents::Instance;
using geom::Vec2;
using numeric::Rational;

TEST(Adversary, LargestGapMidpointBasics) {
  EXPECT_DOUBLE_EQ(largest_gap_midpoint({}, geom::kPi), geom::kPi / 4);
  // Directions at 0 and pi/2 on a period-pi circle: both gaps are pi/2;
  // the midpoint of the first found (wrap gap [pi/2..pi..0]) or interior.
  const double mid = largest_gap_midpoint({0.0, geom::kPi / 2}, geom::kPi);
  EXPECT_TRUE(std::fabs(mid - geom::kPi / 4) < 1e-9 ||
              std::fabs(mid - 3 * geom::kPi / 4) < 1e-9);
  // Clustered directions: the midpoint lands in the big empty arc.
  const double mid2 = largest_gap_midpoint({0.1, 0.2, 0.3}, geom::kTwoPi);
  EXPECT_GT(mid2, 0.3);
  EXPECT_LT(mid2, geom::kTwoPi + 0.1);
  EXPECT_NEAR(mid2, 0.3 + (geom::kTwoPi - 0.2) / 2.0, 1e-9);
}

TEST(Adversary, PrefixDirectionsOfAurv) {
  // The phase-1 prefix of AlmostUniversalRV uses only multiples of pi/2
  // (PlanarCowWalk(1) in Rot(j*pi/2)) plus Latecomers' pi/2-grid: the
  // inclination set is tiny and leaves big gaps.
  const std::vector<double> inclinations = prefix_directions(
      [] { return almost_universal_rv(); }, Rational(256), /*period_pi=*/true, 1'000'000);
  EXPECT_FALSE(inclinations.empty());
  EXPECT_LE(inclinations.size(), 8u);
  for (const double d : inclinations) {
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, geom::kPi);
  }
}

TEST(Adversary, DefeatsAurvOnS2) {
  // Theorem 4.1's diagonalization, executed: pick phi/2 in an inclination
  // gap of AURV's prefix; the resulting S2 instance is not solved within
  // the analyzed horizon and the distance stays strictly above r.
  const sim::AlgorithmFactory aurv = [] { return almost_universal_rv(); };
  AdversaryConfig adv_config;
  adv_config.analysis_horizon = 4096;
  adv_config.r = 1.0;
  adv_config.t = 2;
  const AdversaryReport report = construct_s2_counterexample(aurv, adv_config);

  EXPECT_GT(report.angular_gap, 0.05);  // comfortably away from used inclinations
  const Classification c = classify(report.instance, /*boundary_eps=*/1e-9);
  EXPECT_EQ(c.kind, InstanceKind::BoundaryS2);

  sim::EngineConfig config;
  config.horizon = Rational(4096);
  config.max_events = 4'000'000;
  const sim::SimResult result = sim::Engine(report.instance, config).run(aurv);
  EXPECT_FALSE(result.met);
  EXPECT_GT(result.min_distance_seen, report.instance.r() + 1e-6);

  // ... while the dedicated Lemma 3.9 algorithm solves the same instance.
  const sim::SimResult dedicated =
      sim::Engine(report.instance, {}).run([&report] {
        return algo::boundary_s2_algorithm(report.instance);
      });
  ASSERT_TRUE(dedicated.met);
  EXPECT_NEAR(dedicated.final_distance, report.instance.r(), 1e-5);
}

TEST(Adversary, DefeatsAurvOnS1) {
  const sim::AlgorithmFactory aurv = [] { return almost_universal_rv(); };
  AdversaryConfig adv_config;
  adv_config.analysis_horizon = 4096;
  adv_config.r = 1.0;
  adv_config.t = 2;
  const AdversaryReport report = construct_s1_counterexample(aurv, adv_config);

  EXPECT_GT(report.angular_gap, 0.05);
  const Classification c = classify(report.instance, /*boundary_eps=*/1e-9);
  EXPECT_EQ(c.kind, InstanceKind::BoundaryS1);

  sim::EngineConfig config;
  config.horizon = Rational(4096);
  config.max_events = 4'000'000;
  const sim::SimResult result = sim::Engine(report.instance, config).run(aurv);
  EXPECT_FALSE(result.met);
  EXPECT_GT(result.min_distance_seen, report.instance.r() + 1e-6);

  const sim::SimResult dedicated =
      sim::Engine(report.instance, {}).run([&report] {
        return algo::boundary_s1_algorithm(report.instance);
      });
  ASSERT_TRUE(dedicated.met);
  EXPECT_NEAR(dedicated.final_distance, report.instance.r(), 1e-5);
}

TEST(Adversary, DefeatsLatecomersOnS1Too) {
  // The diagonalization applies to *any* fixed algorithm, not just AURV.
  const sim::AlgorithmFactory lc = [] { return algo::latecomers(); };
  AdversaryConfig adv_config;
  adv_config.analysis_horizon = 1024;  // phases 1-3 of Latecomers
  const AdversaryReport report = construct_s1_counterexample(lc, adv_config);
  EXPECT_GT(report.directions_used, 8u);  // denser direction grid than AURV's
  EXPECT_GT(report.angular_gap, 0.0);

  sim::EngineConfig config;
  config.horizon = Rational(1024);
  config.max_events = 2'000'000;
  const sim::SimResult result = sim::Engine(report.instance, config).run(lc);
  EXPECT_FALSE(result.met);
  EXPECT_GT(result.min_distance_seen, report.instance.r());
}

TEST(Adversary, BoundaryInstanceBecomesSolvableWithAnyExtraDelay) {
  // The knife-edge nature of S2: the same geometry with t increased by any
  // eps > 0 is covered by AlmostUniversalRV (type 1).
  const sim::AlgorithmFactory aurv = [] { return almost_universal_rv(); };
  AdversaryConfig adv_config;
  adv_config.analysis_horizon = 1024;
  adv_config.t = 1;
  adv_config.lateral_offset = 0.8;
  const AdversaryReport report = construct_s2_counterexample(aurv, adv_config);
  const Instance nudged =
      report.instance.with_delay(report.instance.t() + Rational(numeric::BigInt(1), numeric::BigInt(2)));
  ASSERT_EQ(classify(nudged).kind, InstanceKind::Type1);
  sim::EngineConfig config;
  config.max_events = 30'000'000;
  const sim::SimResult result = sim::Engine(nudged, config).run(aurv);
  EXPECT_TRUE(result.met) << sim::to_string(result.reason)
                          << " min dist " << result.min_distance_seen;
}

}  // namespace
}  // namespace aurv::core
