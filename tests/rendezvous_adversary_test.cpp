// Executable counterpart of the impossibility results (Section 4): for any
// fixed algorithm the adversary builds a boundary instance (S1 or S2) it
// cannot solve — verified by simulation — while the *same* instance is
// solved by its dedicated boundary algorithm. "We miss little and cannot
// avoid it altogether."
#include <gtest/gtest.h>

#include <cmath>

#include "algo/boundary.hpp"
#include "algo/latecomers.hpp"
#include "core/adversary.hpp"
#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "program/combinators.hpp"
#include "sim/engine.hpp"

namespace aurv::core {
namespace {

using agents::Instance;
using geom::Vec2;
using numeric::Rational;

TEST(Adversary, LargestGapMidpointBasics) {
  EXPECT_DOUBLE_EQ(largest_gap_midpoint({}, geom::kPi), geom::kPi / 4);
  // Directions at 0 and pi/2 on a period-pi circle: both gaps are pi/2;
  // the midpoint of the first found (wrap gap [pi/2..pi..0]) or interior.
  const double mid = largest_gap_midpoint({0.0, geom::kPi / 2}, geom::kPi);
  EXPECT_TRUE(std::fabs(mid - geom::kPi / 4) < 1e-9 ||
              std::fabs(mid - 3 * geom::kPi / 4) < 1e-9);
  // Clustered directions: the midpoint lands in the big empty arc.
  const double mid2 = largest_gap_midpoint({0.1, 0.2, 0.3}, geom::kTwoPi);
  EXPECT_GT(mid2, 0.3);
  EXPECT_LT(mid2, geom::kTwoPi + 0.1);
  EXPECT_NEAR(mid2, 0.3 + (geom::kTwoPi - 0.2) / 2.0, 1e-9);
}

TEST(Adversary, PrefixDirectionsOfAurv) {
  // The phase-1 prefix of AlmostUniversalRV uses only multiples of pi/2
  // (PlanarCowWalk(1) in Rot(j*pi/2)) plus Latecomers' pi/2-grid: the
  // inclination set is tiny and leaves big gaps.
  const std::vector<double> inclinations = prefix_directions(
      [] { return almost_universal_rv(); }, Rational(256), /*period_pi=*/true, 1'000'000);
  EXPECT_FALSE(inclinations.empty());
  EXPECT_LE(inclinations.size(), 8u);
  for (const double d : inclinations) {
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, geom::kPi);
  }
}

TEST(Adversary, DefeatsAurvOnS2) {
  // Theorem 4.1's diagonalization, executed: pick phi/2 in an inclination
  // gap of AURV's prefix; the resulting S2 instance is not solved within
  // the analyzed horizon and the distance stays strictly above r.
  const sim::AlgorithmFactory aurv = [] { return almost_universal_rv(); };
  AdversaryConfig adv_config;
  adv_config.analysis_horizon = 4096;
  adv_config.r = 1.0;
  adv_config.t = 2;
  const AdversaryReport report = construct_s2_counterexample(aurv, adv_config);

  EXPECT_GT(report.angular_gap, 0.05);  // comfortably away from used inclinations
  const Classification c = classify(report.instance, /*boundary_eps=*/1e-9);
  EXPECT_EQ(c.kind, InstanceKind::BoundaryS2);

  sim::EngineConfig config;
  config.horizon = Rational(4096);
  config.max_events = 4'000'000;
  const sim::SimResult result = sim::Engine(report.instance, config).run(aurv);
  EXPECT_FALSE(result.met);
  EXPECT_GT(result.min_distance_seen, report.instance.r() + 1e-6);

  // ... while the dedicated Lemma 3.9 algorithm solves the same instance.
  const sim::SimResult dedicated =
      sim::Engine(report.instance, {}).run([&report] {
        return algo::boundary_s2_algorithm(report.instance);
      });
  ASSERT_TRUE(dedicated.met);
  EXPECT_NEAR(dedicated.final_distance, report.instance.r(), 1e-5);
}

TEST(Adversary, DefeatsAurvOnS1) {
  const sim::AlgorithmFactory aurv = [] { return almost_universal_rv(); };
  AdversaryConfig adv_config;
  adv_config.analysis_horizon = 4096;
  adv_config.r = 1.0;
  adv_config.t = 2;
  const AdversaryReport report = construct_s1_counterexample(aurv, adv_config);

  EXPECT_GT(report.angular_gap, 0.05);
  const Classification c = classify(report.instance, /*boundary_eps=*/1e-9);
  EXPECT_EQ(c.kind, InstanceKind::BoundaryS1);

  sim::EngineConfig config;
  config.horizon = Rational(4096);
  config.max_events = 4'000'000;
  const sim::SimResult result = sim::Engine(report.instance, config).run(aurv);
  EXPECT_FALSE(result.met);
  EXPECT_GT(result.min_distance_seen, report.instance.r() + 1e-6);

  const sim::SimResult dedicated =
      sim::Engine(report.instance, {}).run([&report] {
        return algo::boundary_s1_algorithm(report.instance);
      });
  ASSERT_TRUE(dedicated.met);
  EXPECT_NEAR(dedicated.final_distance, report.instance.r(), 1e-5);
}

TEST(Adversary, DefeatsLatecomersOnS1Too) {
  // The diagonalization applies to *any* fixed algorithm, not just AURV.
  const sim::AlgorithmFactory lc = [] { return algo::latecomers(); };
  AdversaryConfig adv_config;
  adv_config.analysis_horizon = 1024;  // phases 1-3 of Latecomers
  const AdversaryReport report = construct_s1_counterexample(lc, adv_config);
  EXPECT_GT(report.directions_used, 8u);  // denser direction grid than AURV's
  EXPECT_GT(report.angular_gap, 0.0);

  sim::EngineConfig config;
  config.horizon = Rational(1024);
  config.max_events = 2'000'000;
  const sim::SimResult result = sim::Engine(report.instance, config).run(lc);
  EXPECT_FALSE(result.met);
  EXPECT_GT(result.min_distance_seen, report.instance.r());
}

TEST(Adversary, DegeneratePrefixWithZeroDirections) {
  // An algorithm that only waits uses no directions at all: the gap spans
  // the whole circle, the midpoint defaults to period/4, and the
  // counterexample constructions still produce well-formed boundary
  // instances with the full circle as margin.
  const sim::AlgorithmFactory idle = [] {
    return program::replay({program::wait(4096)});
  };
  const std::vector<double> rays =
      prefix_directions(idle, Rational(1024), /*period_pi=*/false, 1'000'000);
  EXPECT_TRUE(rays.empty());

  AdversaryConfig config;
  config.analysis_horizon = 1024;
  const AdversaryReport s1 = construct_s1_counterexample(idle, config);
  EXPECT_EQ(s1.directions_used, 0u);
  EXPECT_DOUBLE_EQ(s1.chosen_direction, geom::kTwoPi / 4);
  EXPECT_DOUBLE_EQ(s1.angular_gap, geom::kTwoPi);
  EXPECT_EQ(classify(s1.instance, 1e-9).kind, InstanceKind::BoundaryS1);

  const AdversaryReport s2 = construct_s2_counterexample(idle, config);
  EXPECT_EQ(s2.directions_used, 0u);
  EXPECT_DOUBLE_EQ(s2.chosen_direction, geom::kPi / 4);
  EXPECT_DOUBLE_EQ(s2.angular_gap, geom::kPi);
  EXPECT_EQ(classify(s2.instance, 1e-9).kind, InstanceKind::BoundaryS2);

  // A waiting algorithm trivially never meets the boundary instance.
  sim::EngineConfig engine;
  engine.horizon = Rational(1024);
  const sim::SimResult result = sim::Engine(s1.instance, engine).run(idle);
  EXPECT_FALSE(result.met);
  EXPECT_GT(result.min_distance_seen, s1.instance.r());
}

TEST(Adversary, DegeneratePrefixWithOneDirection) {
  // One distinct direction: the largest gap is the rest of the circle and
  // its midpoint is the antipode (resp. the perpendicular, for the
  // period-pi inclination circle).
  const sim::AlgorithmFactory beeline = [] {
    // East forever, re-issued in segments (one direction after dedup).
    return program::replay({program::go_east(512), program::go_east(512)});
  };
  const std::vector<double> rays =
      prefix_directions(beeline, Rational(1024), /*period_pi=*/false, 1'000'000);
  ASSERT_EQ(rays.size(), 1u);
  EXPECT_DOUBLE_EQ(rays[0], 0.0);

  EXPECT_DOUBLE_EQ(largest_gap_midpoint({0.0}, geom::kTwoPi), geom::kPi);
  EXPECT_DOUBLE_EQ(largest_gap_midpoint({0.0}, geom::kPi), geom::kPi / 2);
  // The wrap-around midpoint is reduced into [0, period).
  EXPECT_NEAR(largest_gap_midpoint({3.0}, geom::kPi),
              3.0 - geom::kPi / 2, 1e-12);

  AdversaryConfig config;
  config.analysis_horizon = 1024;
  const AdversaryReport s1 = construct_s1_counterexample(beeline, config);
  EXPECT_EQ(s1.directions_used, 1u);
  EXPECT_DOUBLE_EQ(s1.chosen_direction, geom::kPi);  // antipode of east
  EXPECT_NEAR(s1.angular_gap, geom::kPi, 1e-12);

  // Aimed away from the only direction the algorithm ever travels, the
  // boundary instance defeats it.
  sim::EngineConfig engine;
  engine.horizon = Rational(1024);
  const sim::SimResult result = sim::Engine(s1.instance, engine).run(beeline);
  EXPECT_FALSE(result.met);
  EXPECT_GT(result.min_distance_seen, s1.instance.r());
}

TEST(Adversary, BoundaryInstanceBecomesSolvableWithAnyExtraDelay) {
  // The knife-edge nature of S2: the same geometry with t increased by any
  // eps > 0 is covered by AlmostUniversalRV (type 1).
  const sim::AlgorithmFactory aurv = [] { return almost_universal_rv(); };
  AdversaryConfig adv_config;
  adv_config.analysis_horizon = 1024;
  adv_config.t = 1;
  adv_config.lateral_offset = 0.8;
  const AdversaryReport report = construct_s2_counterexample(aurv, adv_config);
  const Instance nudged =
      report.instance.with_delay(report.instance.t() + Rational(numeric::BigInt(1), numeric::BigInt(2)));
  ASSERT_EQ(classify(nudged).kind, InstanceKind::Type1);
  sim::EngineConfig config;
  config.max_events = 30'000'000;
  const sim::SimResult result = sim::Engine(nudged, config).run(aurv);
  EXPECT_TRUE(result.met) << sim::to_string(result.reason)
                          << " min dist " << result.min_distance_seen;
}

}  // namespace
}  // namespace aurv::core
