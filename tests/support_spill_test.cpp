// SpillDeque unit tests: the bounded-memory best-first container must pop
// the exact sequence an unbounded in-memory set would — at any capacity,
// across segment merges, and across a state_to_json/from_json round trip —
// and must refuse segment files that do not match the recorded state.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "test_paths.hpp"
#include "support/spill.hpp"
#include "support/vfs.hpp"

namespace aurv::support {
namespace {

using testpaths::fresh_dir;
using testpaths::temp_path;

/// A priority/payload pair mirroring the frontier's (bound, box-id) shape:
/// priority descending, tag ascending — tags unique, so never a tie.
struct Item {
  double priority;
  std::string tag;

  friend bool operator==(const Item& a, const Item& b) = default;
};

struct ItemOrder {
  bool operator()(const Item& a, const Item& b) const {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.tag < b.tag;
  }
};

struct ItemCodec {
  static Json to_json(const Item& item) {
    Json json = Json::object();
    json.set("priority", Json(item.priority));
    json.set("tag", Json(item.tag));
    return json;
  }
  static Item from_json(const Json& json) {
    return Item{json.at("priority").as_number(), json.at("tag").as_string()};
  }
};

using ItemDeque = SpillDeque<Item, ItemOrder, ItemCodec>;

/// Deterministic pseudo-random items (fixed seed: the test is reproducible).
std::vector<Item> random_items(std::size_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> priority(-10.0, 10.0);
  std::vector<Item> items;
  items.reserve(count);
  for (std::size_t k = 0; k < count; ++k)
    items.push_back(Item{priority(rng), "tag" + std::to_string(k)});
  return items;
}

TEST(SpillDeque, UnboundedModeNeedsNoDirectory) {
  ItemDeque deque;
  deque.insert(Item{1.0, "a"});
  deque.insert(Item{2.0, "b"});
  EXPECT_EQ(deque.size(), 2u);
  EXPECT_EQ(deque.pop_best().tag, "b");  // highest priority first
  EXPECT_EQ(deque.pop_best().tag, "a");
  EXPECT_TRUE(deque.empty());
  EXPECT_EQ(deque.spilled(), 0u);
}

TEST(SpillDeque, CapacityWithoutDirectoryIsRejected) {
  ItemDeque::Config config;
  config.mem_capacity = 4;
  EXPECT_THROW(ItemDeque{config}, std::logic_error);
}

TEST(SpillDeque, SpilledPopSequenceMatchesInMemory) {
  // Interleave inserts and pops; every capacity (including ones small
  // enough to force many spills and segment merges) must yield the same
  // pop sequence as the unbounded in-memory deque.
  const std::vector<Item> items = random_items(200, 7);
  const auto run = [&](ItemDeque deque) {
    std::vector<Item> popped;
    std::size_t next = 0;
    while (next < items.size() || !deque.empty()) {
      // Two inserts then one pop, tail-drained at the end.
      for (int burst = 0; burst < 2 && next < items.size(); ++burst)
        deque.insert(items[next++]);
      if (!deque.empty()) popped.push_back(deque.pop_best());
    }
    return popped;
  };

  const std::vector<Item> expected = run(ItemDeque{});
  ASSERT_EQ(expected.size(), items.size());
  for (const std::size_t capacity : {1u, 2u, 5u, 17u, 100u}) {
    ItemDeque::Config config;
    config.spill_dir = fresh_dir("spill_seq_" + std::to_string(capacity));
    config.mem_capacity = capacity;
    config.max_segments = 3;  // force merges, not just spills
    ItemDeque deque(config);
    EXPECT_EQ(run(std::move(deque)), expected) << "capacity " << capacity;
  }
}

TEST(SpillDeque, SpillsTrackObservabilityCounters) {
  ItemDeque::Config config;
  config.spill_dir = fresh_dir("spill_counters");
  config.mem_capacity = 4;
  ItemDeque deque(config);
  for (const Item& item : random_items(32, 3)) deque.insert(item);
  EXPECT_EQ(deque.size(), 32u);
  EXPECT_GT(deque.spilled(), 0u);
  EXPECT_LE(deque.hot_high_water(), 5u);  // capacity + the overflowing insert
  ASSERT_FALSE(deque.empty());
  // peek_best agrees with pop_best.
  const Item best = *deque.peek_best();
  EXPECT_EQ(deque.pop_best(), best);
}

TEST(SpillDeque, StateRoundTripContinuesTheSameSequence) {
  const std::vector<Item> items = random_items(64, 11);
  ItemDeque::Config config;
  config.spill_dir = fresh_dir("spill_roundtrip");
  config.mem_capacity = 6;
  config.max_segments = 2;
  ItemDeque original(config);
  for (const Item& item : items) original.insert(item);
  for (int k = 0; k < 10; ++k) (void)original.pop_best();  // advance offsets

  const Json state = original.state_to_json();
  ItemDeque reloaded = ItemDeque::from_json(state, config);
  EXPECT_EQ(reloaded.size(), original.size());
  while (!original.empty()) {
    ASSERT_FALSE(reloaded.empty());
    EXPECT_EQ(reloaded.pop_best(), original.pop_best());
  }
  EXPECT_TRUE(reloaded.empty());
}

TEST(SpillDeque, RestoreSweepsOrphanedSegmentFiles) {
  // A kill between the owner's checkpoint write and prune_retired()
  // leaves segment files nothing references; restoring from the
  // checkpoint must reclaim them — and touch nothing else.
  ItemDeque::Config config;
  config.spill_dir = fresh_dir("spill_orphans");
  config.mem_capacity = 2;
  ItemDeque deque(config);
  for (const Item& item : random_items(16, 13)) deque.insert(item);
  const Json state = deque.state_to_json();

  const auto plant = [&](const std::string& leaf) {
    const std::string path = (std::filesystem::path(config.spill_dir) / leaf).string();
    std::ofstream(path, std::ios::binary) << "leftover\n";
    return path;
  };
  const std::string orphan = plant("seg-999.jsonl");
  const std::string unrelated = plant("not-a-segment.txt");

  ItemDeque reloaded = ItemDeque::from_json(state, config);
  EXPECT_FALSE(std::filesystem::exists(orphan));
  EXPECT_TRUE(std::filesystem::exists(unrelated));  // only seg-<n>.jsonl is ours
  // The referenced segments survived the sweep and still drain in order.
  Item previous = reloaded.pop_best();
  while (!reloaded.empty()) {
    Item next = reloaded.pop_best();
    EXPECT_TRUE(ItemOrder{}(previous, next));
    previous = std::move(next);
  }
}

TEST(SpillDeque, RestoreRefusesMissingOrTruncatedSegments) {
  ItemDeque::Config config;
  config.spill_dir = fresh_dir("spill_truncated");
  config.mem_capacity = 2;
  ItemDeque deque(config);
  for (const Item& item : random_items(16, 5)) deque.insert(item);
  const Json state = deque.state_to_json();
  ASSERT_FALSE(state.at("segments").as_array().empty());

  // Truncate the first referenced segment to zero records.
  const std::string path = state.at("segments").as_array()[0].at("path").as_string();
  { std::ofstream truncate(path, std::ios::binary | std::ios::trunc); }
  EXPECT_THROW((void)ItemDeque::from_json(state, config), std::invalid_argument);

  std::filesystem::remove(path);
  EXPECT_THROW((void)ItemDeque::from_json(state, config), std::invalid_argument);
}

TEST(SpillDeque, PruneRetiredDeletesOnlyDrainedFiles) {
  ItemDeque::Config config;
  config.spill_dir = fresh_dir("spill_prune");
  config.mem_capacity = 2;
  config.max_segments = 2;  // merges retire their input files
  ItemDeque deque(config);
  for (const Item& item : random_items(24, 9)) deque.insert(item);

  const auto file_count = [&] {
    std::size_t count = 0;
    for ([[maybe_unused]] const auto& entry :
         std::filesystem::directory_iterator(config.spill_dir))
      ++count;
    return count;
  };
  const std::size_t before = file_count();
  deque.prune_retired();
  const std::size_t after_prune = file_count();
  EXPECT_LT(after_prune, before);      // merge inputs are gone...
  EXPECT_EQ(after_prune, deque.segment_count());  // ...live segments are not

  // Draining everything and discarding leaves an empty directory.
  while (!deque.empty()) (void)deque.pop_best();
  deque.discard_files();
  EXPECT_EQ(file_count(), 0u);
}

// ------------------------------------------------- crash-stop recovery --

TEST(SpillDeque, CrashAtEveryFileOperationRestoresTheCheckpointedSequence) {
  // Kill the "process" (scripted crash-stop) after every single segment
  // file operation of an insert-heavy run — including ops inside segment
  // merges — then restore from the last in-memory checkpoint like a
  // restarted process would: the reloaded deque must pop exactly the
  // sequence an unbounded in-memory deque holding the checkpointed items
  // would, with the crashed run's newer files swept as orphans.
  const std::vector<Item> items = random_items(48, 21);

  const auto expected_after = [&](std::size_t count) {
    ItemDeque unbounded;
    for (std::size_t k = 0; k < count; ++k) unbounded.insert(items[k]);
    std::vector<Item> popped;
    while (!unbounded.empty()) popped.push_back(unbounded.pop_best());
    return popped;
  };

  std::size_t crashes = 0;
  for (std::uint64_t crash_op = 0;; ++crash_op) {
    ItemDeque::Config config;
    config.spill_dir = fresh_dir("spill_crash_" + std::to_string(crash_op));
    config.mem_capacity = 4;
    config.max_segments = 2;  // several merges happen within 48 inserts

    FaultSchedule schedule;
    FaultSpec spec;
    spec.after = crash_op;
    spec.path_contains = "seg-";
    spec.klass = FaultClass::CrashStop;
    schedule.faults.push_back(spec);
    FaultVfs faulty(schedule);

    Json checkpoint;
    std::size_t checkpointed = 0;
    bool crashed = false;
    {
      ScopedVfs guard(faulty);
      ItemDeque deque(config);
      try {
        for (std::size_t k = 0; k < items.size(); ++k) {
          deque.insert(items[k]);
          if ((k + 1) % 8 == 0) {  // the owner's checkpoint cadence
            checkpoint = deque.state_to_json();
            checkpointed = k + 1;
          }
        }
      } catch (const VfsCrashStop&) {
        crashed = true;
        ++crashes;
      }
    }
    if (!crashed) break;  // crash_op is past the run's op count: done
    if (checkpointed == 0) continue;  // died before the first checkpoint

    // "Restart": reload from the checkpoint through the real vfs.
    ItemDeque restored = ItemDeque::from_json(checkpoint, config);
    std::vector<Item> popped;
    while (!restored.empty()) popped.push_back(restored.pop_best());
    EXPECT_EQ(popped, expected_after(checkpointed)) << "crash after seg op " << crash_op;
  }
  EXPECT_GT(crashes, 50u) << "the sweep should cover spills AND merges";
}

TEST(SpillDeque, CrashDuringRetireLeavesARestorableState) {
  // prune_retired() deletes the files a merge/drain stopped referencing; a
  // crash after the first removal must leave a state the checkpoint still
  // restores byte-for-byte (the un-removed leftovers are swept on resume).
  const std::vector<Item> items = random_items(24, 17);
  ItemDeque::Config config;
  config.spill_dir = fresh_dir("spill_crash_retire");
  config.mem_capacity = 4;
  config.max_segments = 2;
  ItemDeque deque(config);
  for (const Item& item : items) deque.insert(item);

  const auto file_count = [&] {
    std::size_t count = 0;
    for ([[maybe_unused]] const auto& entry :
         std::filesystem::directory_iterator(config.spill_dir))
      ++count;
    return count;
  };
  ASSERT_GT(file_count(), deque.segment_count()) << "merges must have retired files";
  const Json checkpoint = deque.state_to_json();

  FaultSchedule schedule;
  FaultSpec spec;
  spec.after = 0;  // the first removal completes, then the process dies
  spec.path_contains = "seg-";
  spec.klass = FaultClass::CrashStop;
  schedule.faults.push_back(spec);
  FaultVfs faulty(schedule);
  {
    ScopedVfs guard(faulty);
    EXPECT_THROW(deque.prune_retired(), VfsCrashStop);
  }

  ItemDeque restored = ItemDeque::from_json(checkpoint, config);
  EXPECT_EQ(file_count(), restored.segment_count());  // leftovers swept on resume
  ItemDeque unbounded;
  for (const Item& item : items) unbounded.insert(item);
  while (!unbounded.empty()) {
    ASSERT_FALSE(restored.empty());
    EXPECT_EQ(restored.pop_best(), unbounded.pop_best());
  }
  EXPECT_TRUE(restored.empty());
}

}  // namespace
}  // namespace aurv::support
