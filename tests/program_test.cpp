// Tests for the mobility-program substrate: instructions and the structural
// combinators Algorithm 1 is assembled from (rotation, slicing, backtrack,
// segmentation-with-waits).
#include <gtest/gtest.h>

#include <vector>

#include "geom/angle.hpp"
#include "program/combinators.hpp"
#include "program/instruction.hpp"

namespace aurv::program {
namespace {

using numeric::Rational;

std::vector<Instruction> collect(Program p) {
  std::vector<Instruction> result;
  for (const Instruction& instruction : p) result.push_back(instruction);
  return result;
}

TEST(Instruction, DurationAccounting) {
  // go(d) lasts d local time units (one length unit per time unit).
  EXPECT_EQ(duration_of(go_east(Rational(5))), Rational(5));
  EXPECT_EQ(duration_of(wait(Rational::dyadic(3, 2))), Rational::dyadic(3, 2));
  EXPECT_TRUE(is_move(go_north(1)));
  EXPECT_FALSE(is_move(wait(1)));
  EXPECT_THROW((void)go_east(Rational(-1)), std::logic_error);
  EXPECT_THROW((void)wait(Rational(-1)), std::logic_error);
}

TEST(Instruction, CompassHeadings) {
  EXPECT_DOUBLE_EQ(std::get<Go>(go_east(1)).heading, 0.0);
  EXPECT_DOUBLE_EQ(std::get<Go>(go_north(1)).heading, geom::kPi / 2);
  EXPECT_DOUBLE_EQ(std::get<Go>(go_west(1)).heading, geom::kPi);
  EXPECT_DOUBLE_EQ(std::get<Go>(go_south(1)).heading, 3 * geom::kPi / 2);
}

TEST(Instruction, TotalDuration) {
  const std::vector<Instruction> seq = {go_east(2), wait(3), go_north(Rational::dyadic(1, 1))};
  EXPECT_EQ(total_duration(seq), Rational(5) + Rational::dyadic(1, 1));
}

TEST(Combinators, RotatedOffsetsHeadingsOnly) {
  const std::vector<Instruction> base = {go_east(1), wait(2), go_north(3)};
  const std::vector<Instruction> rot = rotated(base, geom::kPi / 4);
  EXPECT_DOUBLE_EQ(std::get<Go>(rot[0]).heading, geom::kPi / 4);
  EXPECT_EQ(rot[1], wait(2));
  EXPECT_DOUBLE_EQ(std::get<Go>(rot[2]).heading, geom::kPi / 2 + geom::kPi / 4);
  // Stream version agrees.
  const std::vector<Instruction> streamed = collect(rotated(replay(base), geom::kPi / 4));
  ASSERT_EQ(streamed.size(), 3u);
  EXPECT_DOUBLE_EQ(std::get<Go>(streamed[0]).heading, geom::kPi / 4);
}

TEST(Combinators, TakeDurationExactBoundary) {
  const auto make = [] { return replay({go_east(2), wait(3), go_north(5)}); };
  // Budget hits an instruction boundary exactly.
  const auto exact = take_duration(make(), Rational(5));
  ASSERT_EQ(exact.size(), 2u);
  EXPECT_EQ(total_duration(exact), Rational(5));
  // Budget splits the wait.
  const auto split_wait = take_duration(make(), Rational(3));
  ASSERT_EQ(split_wait.size(), 2u);
  EXPECT_EQ(split_wait[1], wait(1));
  // Budget splits a go proportionally (distance == remaining time).
  const auto split_go = take_duration(make(), Rational(6));
  ASSERT_EQ(split_go.size(), 3u);
  EXPECT_EQ(std::get<Go>(split_go[2]).distance, Rational(1));
  EXPECT_DOUBLE_EQ(std::get<Go>(split_go[2]).heading, geom::kPi / 2);
  // Budget beyond the program: returns what exists.
  const auto all = take_duration(make(), Rational(100));
  EXPECT_EQ(all.size(), 3u);
  EXPECT_EQ(total_duration(all), Rational(10));
  // Zero budget.
  EXPECT_TRUE(take_duration(make(), Rational(0)).empty());
  EXPECT_THROW((void)take_duration(make(), Rational(-1)), std::logic_error);
}

TEST(Combinators, TakeDurationCapThrows) {
  const auto make = [] { return replay({go_east(1), go_east(1), go_east(1)}); };
  EXPECT_THROW((void)take_duration_capped(make(), Rational(3), 2), std::logic_error);
}

TEST(Combinators, BacktrackReversesPath) {
  const std::vector<Instruction> path = {go_east(2), wait(7), go_north(1),
                                         go(geom::kPi / 3, Rational::dyadic(1, 1))};
  const std::vector<Instruction> back = backtrack_moves(path);
  ASSERT_EQ(back.size(), 3u);  // waits dropped
  EXPECT_DOUBLE_EQ(std::get<Go>(back[0]).heading, geom::kPi / 3 + geom::kPi);
  EXPECT_EQ(std::get<Go>(back[0]).distance, Rational::dyadic(1, 1));
  EXPECT_DOUBLE_EQ(std::get<Go>(back[1]).heading, kNorth + geom::kPi);
  EXPECT_DOUBLE_EQ(std::get<Go>(back[2]).heading, kEast + geom::kPi);
  // Forward + backtrack nets zero displacement.
  std::vector<Instruction> round_trip = path;
  round_trip.insert(round_trip.end(), back.begin(), back.end());
  EXPECT_NEAR(net_displacement(round_trip).norm(), 0.0, 1e-12);
}

TEST(Combinators, SegmentedWithWaitsExactCut) {
  // 4 time units of motion cut into segments of 1 with pauses of 10:
  // go(2.5)E, go(1.5)N -> E1|w|E1|w|[E.5 N.5]|w|N1|w
  const std::vector<Instruction> solo = {go_east(Rational::dyadic(5, 1)),
                                         go_north(Rational::dyadic(3, 1))};
  const std::vector<Instruction> cut = segmented_with_waits(solo, Rational(1), Rational(10));
  // Total move duration preserved; one wait per started segment.
  Rational moves = 0;
  int waits = 0;
  for (const Instruction& instruction : cut) {
    if (is_move(instruction)) {
      moves += duration_of(instruction);
    } else {
      EXPECT_EQ(duration_of(instruction), Rational(10));
      ++waits;
    }
  }
  EXPECT_EQ(moves, Rational(4));
  EXPECT_EQ(waits, 4);
  // Segment boundaries are exact: between consecutive waits exactly 1 time
  // unit of motion.
  Rational acc = 0;
  for (const Instruction& instruction : cut) {
    if (is_move(instruction)) {
      acc += duration_of(instruction);
    } else {
      EXPECT_TRUE(acc.is_zero() || acc == Rational(1)) << acc.to_string();
      acc = 0;
    }
  }
  // Net displacement preserved by cutting.
  const geom::Vec2 before = net_displacement(solo);
  const geom::Vec2 after = net_displacement(cut);
  EXPECT_NEAR(geom::dist(before, after), 0.0, 1e-12);
}

TEST(Combinators, SegmentedWithWaitsShortTail) {
  // 2.5 units cut into segments of 1: the trailing 0.5 also gets its wait.
  const std::vector<Instruction> solo = {go_east(Rational::dyadic(5, 1))};
  const std::vector<Instruction> cut = segmented_with_waits(solo, Rational(1), Rational(2));
  int waits = 0;
  for (const Instruction& instruction : cut) {
    if (!is_move(instruction)) ++waits;
  }
  EXPECT_EQ(waits, 3);
  EXPECT_THROW((void)segmented_with_waits(solo, Rational(0), Rational(1)), std::logic_error);
}

TEST(Combinators, ReplayAndConcat) {
  const std::vector<Instruction> first = {go_east(1)};
  const std::vector<Instruction> second = {wait(2), go_west(3)};
  const std::vector<Instruction> joined = collect(concat(replay(first), replay(second)));
  ASSERT_EQ(joined.size(), 3u);
  EXPECT_EQ(joined[0], go_east(1));
  EXPECT_EQ(joined[1], wait(2));
  EXPECT_EQ(joined[2], go_west(3));
}

TEST(Combinators, NetDisplacement) {
  const std::vector<Instruction> square = {go_east(1), go_north(1), go_west(1), go_south(1)};
  EXPECT_NEAR(net_displacement(square).norm(), 0.0, 1e-12);
  const std::vector<Instruction> northeast = {go(geom::kPi / 4, Rational(2))};
  const geom::Vec2 d = net_displacement(northeast);
  EXPECT_NEAR(d.x, std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(d.y, std::sqrt(2.0), 1e-12);
}

}  // namespace
}  // namespace aurv::program
