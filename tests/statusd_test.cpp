// The embedded status server, bottom to top: ProgressRegistry semantics,
// the Prometheus renderer, the request router (no sockets), the real
// HTTP/1.1 transport (timeouts, oversized requests, port-in-use soft
// degradation) — and the layer's hard invariant: a spilled multi-shard
// search scraped in a tight client loop produces certificates, incumbent
// logs and checkpoints byte-identical to an unobserved serial run.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "test_paths.hpp"
#include "exp/search_driver.hpp"
#include "support/statusd.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

namespace aurv {
namespace {

namespace statusd = support::statusd;
namespace telemetry = support::telemetry;
using exp::SearchOptions;
using exp::SearchSpec;
using numeric::Rational;
using support::Json;
using testpaths::copy_dir;
using testpaths::fresh_dir;
using testpaths::slurp;
using testpaths::temp_path;

// ------------------------------------------------------------- helpers --

/// One blocking HTTP GET against the loopback server: full raw response
/// (status line + headers + body), or "" when the connection yields no
/// bytes (refused, or dropped by a server-side timeout).
std::string http_get(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) break;
    response.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return response;
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// --------------------------------------------------- progress registry --

TEST(StatusdProgress, CollectEmbedsProvidersAndIsolatesFailures) {
  const statusd::ScopedProgress good("unit_good", [] {
    Json value = Json::object();
    value.set("done", Json(std::uint64_t{7}));
    return value;
  });
  const statusd::ScopedProgress bad("unit_bad",
                                    []() -> Json { throw std::runtime_error("provider broke"); });
  const Json collected = statusd::progress().collect();
  EXPECT_EQ(collected.at("unit_good").at("done").as_uint(), 7u);
  EXPECT_TRUE(contains(collected.at("unit_bad").at("error").as_string(), "provider broke"));
}

TEST(StatusdProgress, RemoveUnregistersImmediately) {
  {
    const statusd::ScopedProgress scoped("unit_transient", [] { return Json::object(); });
    EXPECT_NE(statusd::progress().collect().find("unit_transient"), nullptr);
  }
  EXPECT_EQ(statusd::progress().collect().find("unit_transient"), nullptr);
}

// ------------------------------------------------- prometheus renderer --

TEST(StatusdPrometheus, RendersCountersGaugesAndRunInfo) {
  telemetry::registry().reset();
  telemetry::registry().counter("statusd-test.count").add(3);
  telemetry::registry().gauge("statusd_test.level").set(-5);

  statusd::RunInfo run;
  run.kind = "search";
  run.spec = "spec\"with\\odd\nchars.json";
  run.fingerprint = "deadbeefdeadbeef";
  run.threads = 4;
  const std::string text =
      statusd::render_prometheus(telemetry::registry().read_snapshot(), run, 1.5);

  EXPECT_TRUE(contains(text,
                       "aurv_run_info{kind=\"search\",spec=\"spec\\\"with\\\\odd\\nchars.json\","
                       "fingerprint=\"deadbeefdeadbeef\",threads=\"4\"} 1\n"));
  EXPECT_TRUE(contains(text, "aurv_uptime_seconds 1.500000000\n"));
  // Dots and dashes both mangle to underscores; counters carry _total.
  EXPECT_TRUE(contains(text, "# TYPE aurv_statusd_test_count_total counter\n"));
  EXPECT_TRUE(contains(text, "aurv_statusd_test_count_total 3\n"));
  EXPECT_TRUE(contains(text, "aurv_statusd_test_level -5\n"));
}

TEST(StatusdPrometheus, HistogramBucketsAreCumulativeWithInf) {
  telemetry::registry().reset();
  auto& histogram = telemetry::registry().histogram("statusd_test.hist");
  histogram.record(0);    // bucket le="0"
  histogram.record(1);    // bucket le="1"
  histogram.record(5);    // bucket le="7"
  histogram.record(100);  // bucket le="127"
  const std::string text =
      statusd::render_prometheus(telemetry::registry().read_snapshot(), statusd::RunInfo{}, 0.0);

  EXPECT_TRUE(contains(text, "# TYPE aurv_statusd_test_hist histogram\n"));
  EXPECT_TRUE(contains(text, "aurv_statusd_test_hist_bucket{le=\"0\"} 1\n"));
  EXPECT_TRUE(contains(text, "aurv_statusd_test_hist_bucket{le=\"1\"} 2\n"));
  EXPECT_TRUE(contains(text, "aurv_statusd_test_hist_bucket{le=\"7\"} 3\n"));
  EXPECT_TRUE(contains(text, "aurv_statusd_test_hist_bucket{le=\"127\"} 4\n"));
  EXPECT_TRUE(contains(text, "aurv_statusd_test_hist_bucket{le=\"+Inf\"} 4\n"));
  EXPECT_TRUE(contains(text, "aurv_statusd_test_hist_sum 106\n"));
  EXPECT_TRUE(contains(text, "aurv_statusd_test_hist_count 4\n"));
}

// ----------------------------------------------------------- routing --

TEST(StatusdRouter, RejectsNonGetAndUnknownPaths) {
  telemetry::registry().reset();
  const statusd::Response post = statusd::handle_request("POST", "/metrics", {}, 0.0);
  EXPECT_EQ(post.status, 405);
  const statusd::Response missing = statusd::handle_request("GET", "/nope", {}, 0.0);
  EXPECT_EQ(missing.status, 404);
  EXPECT_TRUE(contains(missing.body, "/metrics"));  // 404 lists the endpoints
  EXPECT_GE(telemetry::registry().counter("statusd.requests").value(), 2u);
}

TEST(StatusdRouter, HealthzReflectsDegradedGauges) {
  telemetry::registry().reset();
  const statusd::Response healthy = statusd::handle_request("GET", "/healthz", {}, 0.0);
  EXPECT_EQ(healthy.status, 200);
  EXPECT_EQ(healthy.body, "ok\n");

  telemetry::registry().gauge("statusd_test.degraded").set(1);
  const statusd::Response sick = statusd::handle_request("GET", "/healthz", {}, 0.0);
  EXPECT_EQ(sick.status, 503);
  EXPECT_TRUE(contains(sick.body, "statusd_test.degraded"));
  telemetry::registry().gauge("statusd_test.degraded").set(0);
}

TEST(StatusdRouter, StatusEmbedsRunAndProviders) {
  telemetry::registry().reset();
  statusd::RunInfo run;
  run.kind = "campaign";
  run.spec = "scenario.json";
  run.fingerprint = "0123456789abcdef";
  run.threads = 2;
  const statusd::ScopedProgress scoped("unit_runner", [] {
    Json value = Json::object();
    value.set("jobs_done", Json(std::uint64_t{12}));
    return value;
  });
  const statusd::Response response = statusd::handle_request("GET", "/status", run, 3.0);
  EXPECT_EQ(response.status, 200);
  const Json body = Json::parse(response.body);
  EXPECT_EQ(body.at("kind").as_string(), "campaign");
  EXPECT_EQ(body.at("fingerprint").as_string(), "0123456789abcdef");
  EXPECT_EQ(body.at("threads").as_uint(), 2u);
  EXPECT_EQ(body.at("progress").at("unit_runner").at("jobs_done").as_uint(), 12u);
}

TEST(StatusdRouter, TraceEndpointNeedsAnOpenSink) {
  support::trace::sink().close();
  const statusd::Response off = statusd::handle_request("GET", "/trace", {}, 0.0);
  EXPECT_EQ(off.status, 404);

  ASSERT_TRUE(support::trace::sink().open(temp_path("statusd_router_trace.json")));
  support::trace::sink().emit(R"({"name":"a","cat":"t","ph":"X","ts":1,"dur":2,"pid":1,"tid":0})");
  support::trace::sink().emit(R"({"name":"b","cat":"t","ph":"X","ts":3,"dur":4,"pid":1,"tid":0})");
  const statusd::Response two = statusd::handle_request("GET", "/trace?last=2", {}, 0.0);
  EXPECT_EQ(two.status, 200);
  const Json spans = Json::parse(two.body).at("spans");
  ASSERT_EQ(spans.as_array().size(), 2u);
  EXPECT_EQ(spans.as_array()[0].at("name").as_string(), "a");
  EXPECT_EQ(spans.as_array()[1].at("name").as_string(), "b");

  const statusd::Response bad = statusd::handle_request("GET", "/trace?last=bogus", {}, 0.0);
  EXPECT_EQ(bad.status, 400);
  support::trace::sink().close();
}

// ---------------------------------------------------------- transport --

TEST(StatusdServer, ServesAllEndpointsOverHttp) {
  telemetry::registry().reset();
  telemetry::registry().counter("statusd_test.live").add(1);
  statusd::Config config;
  config.run.kind = "search";
  config.run.fingerprint = "feedfacefeedface";
  const auto server = statusd::StatusServer::start(std::move(config));
  ASSERT_NE(server, nullptr);
  EXPECT_GT(server->port(), 0);

  const std::string health = http_get(server->port(), "/healthz");
  EXPECT_TRUE(contains(health, "200 OK"));
  EXPECT_TRUE(contains(health, "ok\n"));

  const std::string metrics = http_get(server->port(), "/metrics");
  EXPECT_TRUE(contains(metrics, "text/plain; version=0.0.4"));
  EXPECT_TRUE(contains(metrics, "aurv_statusd_test_live_total 1\n"));
  EXPECT_TRUE(contains(metrics, "fingerprint=\"feedfacefeedface\""));

  const std::string status = http_get(server->port(), "/status");
  EXPECT_TRUE(contains(status, "application/json"));
  EXPECT_TRUE(contains(status, "\"kind\": \"search\""));
}

TEST(StatusdServer, PortInUseDegradesSoft) {
  telemetry::registry().reset();
  const auto first = statusd::StatusServer::start({});
  ASSERT_NE(first, nullptr);

  statusd::Config clashing;
  clashing.port = first->port();
  const auto second = statusd::StatusServer::start(std::move(clashing));
  EXPECT_EQ(second, nullptr);
  EXPECT_EQ(telemetry::registry().counter("statusd.dropped").value(), 1u);
  // The first server is unaffected by the failed bind.
  EXPECT_TRUE(contains(http_get(first->port(), "/healthz"), "200 OK"));
}

TEST(StatusdServer, SlowClientTimesOutWithoutWedgingService) {
  statusd::Config config;
  config.read_timeout_ms = 100;
  config.write_timeout_ms = 100;
  const auto server = statusd::StatusServer::start(std::move(config));
  ASSERT_NE(server, nullptr);

  // A client that connects and never sends: the server must drop it at
  // the read deadline and get back to serving.
  const int stalled = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(stalled, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(server->port()));
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  ASSERT_EQ(::connect(stalled, reinterpret_cast<const sockaddr*>(&address), sizeof(address)), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let accept() pick it up

  const std::string after = http_get(server->port(), "/healthz");
  EXPECT_TRUE(contains(after, "200 OK")) << "server wedged behind a stalled client";

  char byte = 0;
  EXPECT_LE(::recv(stalled, &byte, 1, 0), 0);  // dropped without a response
  ::close(stalled);
}

TEST(StatusdServer, OversizedRequestIsRejected) {
  statusd::Config config;
  config.max_request_bytes = 64;
  const auto server = statusd::StatusServer::start(std::move(config));
  ASSERT_NE(server, nullptr);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(server->port()));
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)), 0);
  const std::string flood = "GET /" + std::string(200, 'A');  // no header terminator
  (void)::send(fd, flood.data(), flood.size(), 0);
  std::string response;
  char chunk[1024];
  for (;;) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) break;
    response.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);
  EXPECT_TRUE(contains(response, "400"));
}

// -------------------------------------------------------- determinism --

/// The same fast tuple-space spec the telemetry/spill determinism tests
/// use: 48 boxes in waves of 8 — several waves, several incumbents.
SearchSpec search_spec() {
  SearchSpec spec;
  spec.name = "test_statusd_search";
  spec.algorithm = "aurv";
  spec.objective = "max-meet-time";
  spec.space.family = search::SearchSpace::Family::Tuple;
  spec.space.chi = -1;
  spec.space.fixed = {{"r", Rational(1)},
                      {"y", Rational(numeric::BigInt(6), numeric::BigInt(5))},
                      {"phi", Rational(0)}};
  spec.space.dim_names = {"x", "t"};
  spec.box = {search::Interval{Rational(numeric::BigInt(3), numeric::BigInt(2)),
                               Rational(numeric::BigInt(7), numeric::BigInt(2))},
              search::Interval{Rational(0), Rational(3)}};
  spec.limits.max_boxes = 48;
  spec.limits.wave_size = 8;
  spec.limits.min_width = Rational(numeric::BigInt(1), numeric::BigInt(64));
  spec.engine.max_events = 2'000'000;
  spec.engine.horizon = Rational(256);
  return spec;
}

/// (relative path, bytes) of every regular file under `dir`, sorted —
/// the whole-directory byte-identity primitive.
std::map<std::string, std::string> dir_bytes(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    files[std::filesystem::relative(entry.path(), dir).string()] = slurp(entry.path().string());
  }
  return files;
}

TEST(StatusdDeterminism, ArtifactsByteIdenticalUnderScraping) {
  const SearchSpec spec = search_spec();
  // Checkpoints may embed the paths they were asked to write, so both
  // runs use the *same* option paths; the baseline is stashed between.
  const std::string log_path = temp_path("statusd_det.jsonl");
  const std::string ckpt_leaf = "statusd_det_ckpt";
  const std::string spill_leaf = "statusd_det_spill";

  SearchOptions options;
  options.max_shards = 1;
  options.incumbent_log_path = log_path;
  options.checkpoint_path = fresh_dir(ckpt_leaf) + "/base.json";
  options.checkpoint_every = 2;
  options.spill_dir = fresh_dir(spill_leaf);
  options.frontier_mem = 2;

  // Baseline: serial, spilled, checkpointed, unobserved.
  telemetry::registry().reset();
  const exp::SearchRunResult baseline = exp::run_search(spec, options);
  const std::string baseline_certificate = baseline.certificate(spec).dump(2);
  const std::string baseline_log = slurp(log_path);
  const std::string stash = temp_path("statusd_det_ckpt_stash");
  copy_dir(temp_path(ckpt_leaf), stash);

  // Observed: 4 shards, the status server up, and a client hammering all
  // four endpoints in a tight loop for the whole run.
  telemetry::registry().reset();
  options.max_shards = 4;
  (void)fresh_dir(ckpt_leaf);
  (void)fresh_dir(spill_leaf);
  statusd::Config config;
  config.run.kind = "search";
  config.run.fingerprint = "0";
  config.run.threads = 4;
  const auto server = statusd::StatusServer::start(std::move(config));
  ASSERT_NE(server, nullptr);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const char* target : {"/metrics", "/status", "/healthz", "/trace?last=8"}) {
        if (!http_get(server->port(), target).empty()) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  const exp::SearchRunResult observed = exp::run_search(spec, options);
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  EXPECT_EQ(observed.certificate(spec).dump(2), baseline_certificate);
  EXPECT_EQ(slurp(log_path), baseline_log);
  EXPECT_EQ(dir_bytes(temp_path(ckpt_leaf)), dir_bytes(stash))
      << "checkpoint bytes must not see the observer";
  EXPECT_GT(scrapes.load(), 0u) << "the server was never actually scraped";
}

}  // namespace
}  // namespace aurv
