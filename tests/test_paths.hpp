// Path plumbing shared by the exp/search test suites: per-test temp files,
// whole-file reads for byte-identity assertions, and locating the committed
// scenarios/ directory from wherever ctest runs the binary.
#pragma once

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace aurv::testpaths {

inline std::string temp_path(const std::string& leaf) {
  return (std::filesystem::path(::testing::TempDir()) / leaf).string();
}

inline std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// scenarios/ relative to the test binary: tests run from build/, the repo
/// root is the source dir recorded at configure time via the working tree.
inline std::string scenario_path(const std::string& leaf) {
  for (const char* prefix : {"scenarios/", "../scenarios/", "../../scenarios/"}) {
    const std::string candidate = prefix + leaf;
    if (std::filesystem::exists(candidate)) return candidate;
  }
  return "scenarios/" + leaf;
}

}  // namespace aurv::testpaths
