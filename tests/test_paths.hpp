// Path plumbing shared by the exp/search test suites: per-test temp files,
// whole-file reads for byte-identity assertions, and locating the committed
// scenarios/ directory from wherever ctest runs the binary.
#pragma once

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace aurv::testpaths {

inline std::string temp_path(const std::string& leaf) {
  return (std::filesystem::path(::testing::TempDir()) / leaf).string();
}

inline std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Per-test scratch directory, recreated empty on every call.
inline std::string fresh_dir(const std::string& leaf) {
  const std::string dir = temp_path(leaf);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Recursive directory copy replacing `to` — the snapshot/restore
/// primitive of the kill-simulation tests.
inline void copy_dir(const std::string& from, const std::string& to) {
  std::filesystem::remove_all(to);
  std::filesystem::copy(from, to, std::filesystem::copy_options::recursive);
}

/// scenarios/ relative to the test binary: tests run from build/, the repo
/// root is the source dir recorded at configure time via the working tree.
inline std::string scenario_path(const std::string& leaf) {
  for (const char* prefix : {"scenarios/", "../scenarios/", "../../scenarios/"}) {
    const std::string candidate = prefix + leaf;
    if (std::filesystem::exists(candidate)) return candidate;
  }
  return "scenarios/" + leaf;
}

}  // namespace aurv::testpaths
