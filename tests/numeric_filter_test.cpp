// Differential tests for the filtered numeric kernel: every tier of the
// ladder (double interval, two-limb dyadic, exact rational) must return the
// same answer the Rational authority would, the interval tier must always
// enclose the true value, and Dyadic128::to_double must replay
// Rational::to_double bit for bit so artifact bytes never depend on which
// tier happened to hold a value. Includes constructed near-ties whose
// intervals overlap, forcing the deeper tiers to settle the comparison.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <compare>
#include <cstdint>
#include <random>
#include <vector>

#include "agents/instance.hpp"
#include "core/almost_universal.hpp"
#include "numeric/filter.hpp"
#include "numeric/rational.hpp"
#include "sim/engine.hpp"

namespace aurv::numeric {
namespace {

/// RAII toggle for the global exact-only mode: restores the previous mode
/// so tests never leak the flag into each other (the suite also runs with
/// AURV_EXACT_ONLY=1 in CI, where the ambient mode is on).
class ExactOnlyGuard {
 public:
  explicit ExactOnlyGuard(bool exact_only) : previous_(filter_exact_only()) {
    set_filter_exact_only(exact_only);
  }
  ~ExactOnlyGuard() { set_filter_exact_only(previous_); }

 private:
  bool previous_;
};

bool same_double_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Random rationals spanning every tier: small dyadics (interval-point
/// resident), two-limb dyadics (Dyadic128 resident), wide dyadics and
/// non-dyadics (Rational escapes).
Rational random_rational(std::mt19937_64& rng) {
  const auto small = [&](std::uint64_t bound) {
    return static_cast<long long>(rng() % bound) - static_cast<long long>(bound / 2);
  };
  switch (rng() % 6) {
    case 0:  // small integer
      return Rational(small(1000));
    case 1:  // small dyadic: exactly representable as a double
      return Rational::dyadic(small(1 << 20), rng() % 30);
    case 2:  // two-limb dyadic: Dyadic128 tier, beyond double's mantissa
      return Rational::pow2(40 + rng() % 40) + Rational::dyadic(small(1 << 20), rng() % 50);
    case 3:  // wide dyadic: > 127 mantissa bits, escapes to Rational
      return Rational::pow2(150 + rng() % 100) + Rational::dyadic(1 + small(64) % 7, 30 + rng() % 30);
    case 4:  // non-dyadic: never enters the dyadic tier
      return Rational(BigInt(small(10000)), BigInt(1 + rng() % 97));
    default:  // huge magnitude integer
      return Rational::pow2(300 + rng() % 80) - Rational(small(50));
  }
}

TEST(FilteredKernel, ComparisonMatchesRationalAcrossAllTiers) {
  std::mt19937_64 rng(20260807);
  for (int round = 0; round < 4000; ++round) {
    const Rational ra = random_rational(rng);
    const Rational rb = rng() % 8 == 0 ? ra : random_rational(rng);
    const Filtered a(ra);
    const Filtered b(rb);
    EXPECT_EQ(a <=> b, ra <=> rb) << ra.to_string() << " vs " << rb.to_string();
    EXPECT_EQ(a == b, ra == rb);
  }
}

TEST(FilteredKernel, NearTiesInsideIntervalOverlapEscalateCorrectly) {
  // Pairs whose 2-ulp double intervals overlap; the interval tier must
  // refuse and the deeper tier named in the comment must settle them.
  struct Case {
    Rational lhs;
    Rational rhs;
  };
  const std::vector<Case> cases = {
      // Dyadic128-resident: identical leading 60 bits, tail differs.
      {Rational::pow2(60) + Rational::dyadic(3, 60), Rational::pow2(60) + Rational::dyadic(5, 61)},
      // Dyadic128-resident exact tie spelled two ways.
      {Rational::pow2(60) + Rational::dyadic(2, 60), Rational::pow2(60) + Rational::dyadic(1, 59)},
      // Rational-resident (> 127 mantissa bits): tail below double visibility.
      {Rational::pow2(200) + Rational::dyadic(1, 100),
       Rational::pow2(200) + Rational::dyadic(1, 101)},
      // Non-dyadic equality spelled two ways.
      {Rational(BigInt(1), BigInt(3)), Rational(BigInt(2), BigInt(6))},
      // Non-dyadic near-tie.
      {Rational(BigInt(1), BigInt(3)), Rational(BigInt(333333333), BigInt(1000000000))},
  };
  for (const Case& c : cases) {
    const Filtered a(c.lhs);
    const Filtered b(c.rhs);
    EXPECT_EQ(a <=> b, c.lhs <=> c.rhs) << c.lhs.to_string() << " vs " << c.rhs.to_string();
    EXPECT_EQ(b <=> a, c.rhs <=> c.lhs);
  }
}

TEST(FilteredKernel, ComparisonCountsExactlyOneTierPerDecision) {
  // Tier attribution is only meaningful with the ladder live; under the
  // ambient exact-only mode every decision is (correctly) an exact escape.
  ExactOnlyGuard guard(false);
  FilterStats& stats = filter_stats();
  const auto total = [&] { return stats.fast_hits + stats.limb2_hits + stats.exact_escapes; };

  const Filtered small_a(Rational::dyadic(3, 7));
  const Filtered small_b(Rational::dyadic(5, 9));
  std::uint64_t before = total();
  const std::uint64_t fast_before = stats.fast_hits;
  (void)(small_a < small_b);
  EXPECT_EQ(total(), before + 1);
  EXPECT_EQ(stats.fast_hits, fast_before + 1);

  const Filtered tie_a(Rational::pow2(60) + Rational::dyadic(3, 60));
  const Filtered tie_b(Rational::pow2(60) + Rational::dyadic(5, 61));
  before = total();
  const std::uint64_t limb2_before = stats.limb2_hits;
  (void)(tie_a < tie_b);
  EXPECT_EQ(total(), before + 1);
  EXPECT_EQ(stats.limb2_hits, limb2_before + 1);

  const Filtered deep_a(Rational(BigInt(1), BigInt(3)));
  const Filtered deep_b(Rational(BigInt(2), BigInt(6)));
  before = total();
  const std::uint64_t exact_before = stats.exact_escapes;
  (void)(deep_a == deep_b);
  EXPECT_EQ(total(), before + 1);
  EXPECT_EQ(stats.exact_escapes, exact_before + 1);
}

TEST(FilteredKernel, ArithmeticMatchesRationalAcrossTierTransitions) {
  std::mt19937_64 rng(424242);
  for (int round = 0; round < 2000; ++round) {
    const Rational ra = random_rational(rng);
    const Rational rb = random_rational(rng);
    Filtered sum(ra);
    sum += Filtered(rb);
    EXPECT_EQ(sum.to_rational(), ra + rb);
    Filtered diff(ra);
    diff -= Filtered(rb);
    EXPECT_EQ(diff.to_rational(), ra - rb);
    Filtered prod(ra);
    prod *= Filtered(rb);
    EXPECT_EQ(prod.to_rational(), ra * rb);
  }
}

TEST(FilteredKernel, IntervalAlwaysEnclosesAndPointsAreExact) {
  std::mt19937_64 rng(777);
  for (int round = 0; round < 2000; ++round) {
    const Rational value = random_rational(rng);
    const Filtered filtered(value);
    const FInterval interval = filtered.interval();
    EXPECT_LE(Rational::from_double(interval.lo), value) << value.to_string();
    EXPECT_GE(Rational::from_double(interval.hi), value) << value.to_string();
    if (interval.is_point()) {
      EXPECT_EQ(Rational::from_double(interval.lo), value)
          << "point interval must mean exactly representable: " << value.to_string();
    }
  }
}

TEST(FilteredKernel, DyadicToDoubleReplaysRationalToDoubleBitForBit) {
  std::mt19937_64 rng(991199);
  for (int round = 0; round < 4000; ++round) {
    const Rational value = random_rational(rng);
    const Filtered filtered(value);
    // Whichever tier holds the value, to_double must equal the authority's.
    EXPECT_TRUE(same_double_bits(filtered.to_double(), value.to_double()))
        << value.to_string() << " tier=" << filtered.in_dyadic_tier();
    __int128 mantissa = 0;
    std::int64_t scale = 0;
    if (value.dyadic128_view(mantissa, scale)) {
      Dyadic128 dyadic{mantissa, scale};
      dyadic.normalize();
      EXPECT_TRUE(same_double_bits(dyadic.to_double(), value.to_double()))
          << value.to_string();
      EXPECT_EQ(dyadic.to_rational(), value);
    }
  }
  // Deep/huge endpoints of the conversion: denominator exponent past the
  // inline tier, numerator past 62 bits, and saturation to infinity.
  const std::vector<Rational> edges = {
      Rational::dyadic(1, 120),
      Rational::dyadic((1ll << 62) - 3, 120),
      Rational::pow2(120) + Rational::dyadic(1, 5),
      Rational::pow2(1023),
      Rational::pow2(1024),  // overflows to inf in both paths
      Rational::dyadic(1, 1074),
      Rational::dyadic(1, 1100),  // underflows to zero in both paths
  };
  for (const Rational& value : edges) {
    const Filtered filtered(value);
    EXPECT_TRUE(same_double_bits(filtered.to_double(), value.to_double()))
        << value.to_string();
  }
}

TEST(FilteredKernel, PointProductMatchesDirectedHelpers) {
  std::mt19937_64 rng(5150);
  std::uniform_real_distribution<double> mantissa(-4.0, 4.0);
  std::uniform_int_distribution<int> exponent(-540, 540);
  for (int round = 0; round < 4000; ++round) {
    const double a = std::ldexp(mantissa(rng), exponent(rng));
    const double b = std::ldexp(mantissa(rng), exponent(rng));
    const FInterval product = FInterval::product(a, b);
    EXPECT_TRUE(same_double_bits(product.lo, filter_detail::mul_down(a, b))) << a << " * " << b;
    EXPECT_TRUE(same_double_bits(product.hi, filter_detail::mul_up(a, b))) << a << " * " << b;
  }
  // Exactness corners: zero factors keep signed-zero parity with the
  // directed helpers; total underflow widens to the denormal pair.
  for (const auto& [a, b] : std::vector<std::pair<double, double>>{
           {0.0, 3.5}, {-0.0, 3.5}, {1e-200, 1e-200}, {-1e-300, 1e-300}}) {
    const FInterval product = FInterval::product(a, b);
    EXPECT_TRUE(same_double_bits(product.lo, filter_detail::mul_down(a, b)));
    EXPECT_TRUE(same_double_bits(product.hi, filter_detail::mul_up(a, b)));
  }
}

TEST(FilteredKernel, ExactOnlyModeAgreesWithFilteredLadder) {
  std::mt19937_64 rng(31337);
  for (int round = 0; round < 500; ++round) {
    const Rational ra = random_rational(rng);
    const Rational rb = rng() % 8 == 0 ? ra : random_rational(rng);
    const std::strong_ordering filtered_order = Filtered(ra) <=> Filtered(rb);
    ExactOnlyGuard guard(true);
    const Filtered a(ra);
    const Filtered b(rb);
    EXPECT_FALSE(a.in_dyadic_tier());
    EXPECT_EQ(a <=> b, filtered_order);
  }
}

TEST(FilteredKernel, EngineRunsAreByteIdenticalFilteredVsExactOnly) {
  // The soundness contract made observable: the simulation reaches the same
  // meet time, positions, and event count whichever ladder mode decided the
  // comparisons. This is the in-process twin of the CI byte-compare.
  const auto run = [] {
    sim::EngineConfig config;
    config.max_events = 2000;
    const agents::Instance instance =
        agents::Instance::synchronous(0.25, {37.5, 0.0}, 0.0, 0, 1);
    return sim::Engine(instance, config).run([] { return core::almost_universal_rv(); });
  };
  const sim::SimResult filtered = run();
  ExactOnlyGuard guard(true);
  const sim::SimResult exact = run();
  EXPECT_EQ(filtered.met, exact.met);
  EXPECT_EQ(filtered.reason, exact.reason);
  EXPECT_EQ(filtered.events, exact.events);
  EXPECT_EQ(filtered.instructions_a, exact.instructions_a);
  EXPECT_EQ(filtered.instructions_b, exact.instructions_b);
  EXPECT_TRUE(same_double_bits(filtered.meet_time, exact.meet_time));
  EXPECT_TRUE(same_double_bits(filtered.min_distance_seen, exact.min_distance_seen));
  EXPECT_TRUE(same_double_bits(filtered.final_distance, exact.final_distance));
  EXPECT_TRUE(same_double_bits(filtered.a_position.x, exact.a_position.x));
  EXPECT_TRUE(same_double_bits(filtered.a_position.y, exact.a_position.y));
  EXPECT_TRUE(same_double_bits(filtered.b_position.x, exact.b_position.x));
  EXPECT_TRUE(same_double_bits(filtered.b_position.y, exact.b_position.y));
}

TEST(FilteredKernel, Dyadic128ViewRoundTripsThroughRational) {
  std::mt19937_64 rng(8086);
  for (int round = 0; round < 2000; ++round) {
    const Rational value = random_rational(rng);
    __int128 mantissa = 0;
    std::int64_t scale = 0;
    if (!value.dyadic128_view(mantissa, scale)) continue;
    EXPECT_EQ(Rational::from_dyadic128(mantissa, scale), value) << value.to_string();
  }
  // Wide-but-fitting and just-too-wide mantissas around the 127-bit cap.
  __int128 mantissa = 0;
  std::int64_t scale = 0;
  EXPECT_TRUE((Rational::pow2(126) + Rational(1)).dyadic128_view(mantissa, scale));
  EXPECT_EQ(Rational::from_dyadic128(mantissa, scale), Rational::pow2(126) + Rational(1));
  EXPECT_FALSE((Rational::pow2(127) + Rational(1)).dyadic128_view(mantissa, scale));
  // Trailing zeros rescue wide raw numerators: 2^200 has one significant bit.
  EXPECT_TRUE(Rational::pow2(200).dyadic128_view(mantissa, scale));
  EXPECT_EQ(Rational::from_dyadic128(mantissa, scale), Rational::pow2(200));
  EXPECT_FALSE(Rational(BigInt(1), BigInt(3)).dyadic128_view(mantissa, scale));
}

}  // namespace
}  // namespace aurv::numeric
