// Tests for the self-contained JSON reader/writer: parse/dump round-trips,
// exact number rendering, strict error reporting.
#include <gtest/gtest.h>

#include <cmath>

#include "support/json.hpp"

namespace aurv::support {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_EQ(Json::parse("-17").as_int(), -17);
  EXPECT_EQ(Json::parse("2.5e3").as_number(), 2500.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(Json::parse("  42  ").as_number(), 42.0);
}

TEST(Json, ParsesContainers) {
  const Json doc = Json::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(doc.is_object());
  const Json::Array& a = doc.at("a").as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].as_number(), 1.0);
  EXPECT_TRUE(a[2].at("b").as_bool());
  EXPECT_EQ(doc.at("c").as_string(), "x");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW((void)doc.at("missing"), JsonError);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  const Json doc = Json::parse(R"({"z": 1, "a": 2, "m": 3})");
  const Json::Object& object = doc.as_object();
  ASSERT_EQ(object.size(), 3u);
  EXPECT_EQ(object[0].first, "z");
  EXPECT_EQ(object[1].first, "a");
  EXPECT_EQ(object[2].first, "m");
  EXPECT_EQ(doc.dump(), R"({"z":1,"a":2,"m":3})");
}

TEST(Json, StringEscapes) {
  const Json doc = Json::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(doc.as_string(), "a\"b\\c\nd\teA");
  // Dump escapes what must be escaped and round-trips.
  const std::string out = doc.dump();
  EXPECT_EQ(Json::parse(out).as_string(), doc.as_string());
}

TEST(Json, NumberRendering) {
  EXPECT_EQ(Json(5.0).dump(), "5");
  EXPECT_EQ(Json(-3.0).dump(), "-3");
  EXPECT_EQ(Json(std::uint64_t{4000000}).dump(), "4000000");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
  EXPECT_EQ(Json(-0.0).dump(), "-0");  // sign bit survives the round trip
  EXPECT_TRUE(std::signbit(Json::parse("-0").as_number()));
  // Round-trip-exact for arbitrary doubles.
  const double value = 0.1 + 0.2;
  EXPECT_EQ(Json::parse(Json(value).dump()).as_number(), value);
  const double tiny = 1e-9;
  EXPECT_EQ(Json::parse(Json(tiny).dump()).as_number(), tiny);
}

TEST(Json, RoundTripNested) {
  const std::string text =
      R"({"name":"x","values":[1,2.5,true,null,"s"],"nested":{"deep":[[]]}})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.dump(), text);
  // Pretty-printed output parses back to an equal document.
  EXPECT_EQ(Json::parse(doc.dump(2)), doc);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse(""), JsonError);
  EXPECT_THROW((void)Json::parse("{"), JsonError);
  EXPECT_THROW((void)Json::parse("[1,]"), JsonError);
  EXPECT_THROW((void)Json::parse("{\"a\":1,}"), JsonError);
  EXPECT_THROW((void)Json::parse("{'a':1}"), JsonError);
  EXPECT_THROW((void)Json::parse("nul"), JsonError);
  EXPECT_THROW((void)Json::parse("1 2"), JsonError);
  EXPECT_THROW((void)Json::parse("01x"), JsonError);
  EXPECT_THROW((void)Json::parse("012"), JsonError);
  EXPECT_THROW((void)Json::parse("-00.5"), JsonError);
  EXPECT_THROW((void)Json::parse(R"({"k":1,"k":2})"), JsonError);
  EXPECT_THROW((void)Json::parse("-"), JsonError);
  EXPECT_THROW((void)Json::parse("1."), JsonError);
  EXPECT_THROW((void)Json::parse("1e"), JsonError);
  EXPECT_THROW((void)Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW((void)Json::parse("\"bad\\escape\""), JsonError);
  EXPECT_THROW((void)Json::parse("NaN"), JsonError);
}

TEST(Json, ErrorsNameTheProblem) {
  try {
    (void)Json::parse("{\"a\": }");
    FAIL() << "expected JsonError";
  } catch (const JsonError& error) {
    EXPECT_NE(std::string(error.what()).find("offset"), std::string::npos);
  }
}

TEST(Json, TypedAccessorsAreStrict) {
  const Json number(1.5);
  EXPECT_THROW((void)number.as_string(), JsonError);
  EXPECT_THROW((void)number.as_object(), JsonError);
  EXPECT_THROW((void)number.as_uint(), JsonError);  // not integral
  EXPECT_THROW((void)Json(-1.0).as_uint(), JsonError);
  EXPECT_EQ(Json(-1.0).as_int(), -1);
}

TEST(Json, SetRejectsDuplicateKeys) {
  Json object = Json::object();
  object.set("k", Json(1.0));
  EXPECT_THROW(object.set("k", Json(2.0)), JsonError);
}

TEST(Json, DefaultedLookups) {
  const Json doc = Json::parse(R"({"present": 3})");
  EXPECT_EQ(doc.number_or("present", 7.0), 3.0);
  EXPECT_EQ(doc.number_or("absent", 7.0), 7.0);
  EXPECT_EQ(doc.uint_or("absent", 9u), 9u);
  EXPECT_EQ(doc.string_or("absent", "d"), "d");
  EXPECT_EQ(doc.bool_or("absent", true), true);
}

TEST(Json, DeepNestingThrowsInsteadOfOverflowingTheStack) {
  const std::string deep(100000, '[');
  EXPECT_THROW((void)Json::parse(deep), JsonError);
  EXPECT_THROW((void)Json::parse("1e999"), JsonError);  // out of double range
}

TEST(Json, NonFiniteNumbersRefuseToSerialize) {
  EXPECT_THROW((void)Json(std::nan("")).dump(), JsonError);
  EXPECT_THROW((void)Json(INFINITY).dump(), JsonError);
}

}  // namespace
}  // namespace aurv::support
