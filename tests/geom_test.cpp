// Tests for the geometry kernel: vectors, angles, lines, similarity
// transforms, the canonical line of Definition 2.1, and the closest-approach
// solver the simulator is built on.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "geom/angle.hpp"
#include "geom/canonical_line.hpp"
#include "geom/closest_approach.hpp"
#include "geom/line.hpp"
#include "geom/similarity.hpp"
#include "geom/vec2.hpp"

namespace aurv::geom {
namespace {

constexpr double kTol = 1e-12;

TEST(Vec2, BasicAlgebra) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{-3.0, 4.0};
  EXPECT_EQ(a + b, (Vec2{-2.0, 6.0}));
  EXPECT_EQ(a - b, (Vec2{4.0, -2.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(a.dot(b), 5.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 10.0);
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_EQ(a.perp(), (Vec2{-2.0, 1.0}));
  EXPECT_NEAR((Vec2{3.0, 4.0}).normalized().norm(), 1.0, kTol);
  EXPECT_EQ((Vec2{0.0, 0.0}).normalized(), (Vec2{0.0, 0.0}));
}

TEST(Angle, NormalizeRanges) {
  EXPECT_NEAR(normalize_angle(0.0), 0.0, kTol);
  EXPECT_NEAR(normalize_angle(kTwoPi), 0.0, kTol);
  EXPECT_NEAR(normalize_angle(-kPi / 2), 3 * kPi / 2, kTol);
  EXPECT_NEAR(normalize_angle(5 * kPi), kPi, kTol);
  EXPECT_NEAR(normalize_angle_signed(3 * kPi / 2), -kPi / 2, kTol);
  EXPECT_NEAR(normalize_angle_signed(kPi), kPi, kTol);
  for (double a = -20.0; a < 20.0; a += 0.377) {
    const double n = normalize_angle(a);
    EXPECT_GE(n, 0.0);
    EXPECT_LT(n, kTwoPi);
    EXPECT_NEAR(std::cos(n), std::cos(a), 1e-9);
    EXPECT_NEAR(std::sin(n), std::sin(a), 1e-9);
  }
}

TEST(Angle, DyadicAngleExactIntegers) {
  EXPECT_DOUBLE_EQ(dyadic_angle(1, 0), kPi);
  EXPECT_DOUBLE_EQ(dyadic_angle(1, 1), kPi / 2);
  EXPECT_DOUBLE_EQ(dyadic_angle(3, 2), 3 * kPi / 4);
  EXPECT_DOUBLE_EQ(dyadic_angle(-1, 1), -kPi / 2);
  // Direct construction, no drift: k pi/2^i summed 2^i times equals k pi.
  const double step = dyadic_angle(1, 10);
  EXPECT_NEAR(step * 1024, kPi, 1e-12);
}

TEST(Angle, LineAndRayAngles) {
  EXPECT_NEAR(line_angle_between(0.0, kPi), 0.0, kTol);       // same line
  EXPECT_NEAR(line_angle_between(0.0, kPi / 2), kPi / 2, kTol);
  EXPECT_NEAR(line_angle_between(0.1, kPi + 0.1), 0.0, kTol);
  EXPECT_NEAR(ray_angle_between(0.0, kPi), kPi, kTol);        // opposite rays
  EXPECT_NEAR(ray_angle_between(0.1, kTwoPi + 0.1), 0.0, kTol);
  EXPECT_NEAR(ray_angle_between(-0.3, 0.3), 0.6, kTol);
}

TEST(Line, ProjectionAndDistance) {
  const Line x_axis(Vec2{0.0, 0.0}, Vec2{1.0, 0.0});
  EXPECT_EQ(x_axis.project(Vec2{3.0, 4.0}), (Vec2{3.0, 0.0}));
  EXPECT_DOUBLE_EQ(x_axis.distance_to(Vec2{3.0, 4.0}), 4.0);
  EXPECT_DOUBLE_EQ(x_axis.signed_distance_to(Vec2{3.0, 4.0}), 4.0);
  EXPECT_DOUBLE_EQ(x_axis.signed_distance_to(Vec2{3.0, -4.0}), -4.0);
  EXPECT_DOUBLE_EQ(x_axis.coordinate(Vec2{7.0, 1.0}), 7.0);
  EXPECT_EQ(x_axis.reflect(Vec2{2.0, 5.0}), (Vec2{2.0, -5.0}));
  EXPECT_THROW(Line(Vec2{}, Vec2{}), std::logic_error);

  const Line diag = Line::through_at_angle(Vec2{1.0, 1.0}, kPi / 4);
  EXPECT_NEAR(diag.inclination(), kPi / 4, kTol);
  EXPECT_NEAR(diag.distance_to(Vec2{2.0, 2.0}), 0.0, kTol);
  const Vec2 p = diag.project(Vec2{2.0, 0.0});
  EXPECT_NEAR(p.x, 1.0, kTol);
  EXPECT_NEAR(p.y, 1.0, kTol);
}

TEST(Line, ProjectionIsIdempotentAndOrthogonal) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> coord(-10.0, 10.0);
  std::uniform_real_distribution<double> angle(0.0, kTwoPi);
  for (int k = 0; k < 100; ++k) {
    const Line line = Line::through_at_angle(Vec2{coord(rng), coord(rng)}, angle(rng));
    const Vec2 p{coord(rng), coord(rng)};
    const Vec2 foot = line.project(p);
    EXPECT_NEAR(dist(line.project(foot), foot), 0.0, 1e-9);
    EXPECT_NEAR((p - foot).dot(line.direction()), 0.0, 1e-9);
    EXPECT_NEAR((p - foot).norm(), line.distance_to(p), 1e-9);
  }
}

TEST(Similarity, IdentityAndBasicMaps) {
  const Similarity id;
  EXPECT_EQ(id.apply(Vec2{3.0, 4.0}), (Vec2{3.0, 4.0}));
  EXPECT_DOUBLE_EQ(id.apply_heading(1.0), 1.0);

  // Pure rotation by pi/2.
  const Similarity rot({}, kPi / 2, 1, 1.0);
  const Vec2 image = rot.apply(Vec2{1.0, 0.0});
  EXPECT_NEAR(image.x, 0.0, kTol);
  EXPECT_NEAR(image.y, 1.0, kTol);

  // Mirror (chi = -1, phi = 0) flips y and heading sign.
  const Similarity mirror({}, 0.0, -1, 1.0);
  EXPECT_NEAR(mirror.apply(Vec2{1.0, 2.0}).y, -2.0, kTol);
  EXPECT_NEAR(normalize_angle_signed(mirror.apply_heading(0.7)), -0.7, kTol);

  EXPECT_THROW(Similarity({}, 0.0, 2, 1.0), std::logic_error);
  EXPECT_THROW(Similarity({}, 0.0, 1, 0.0), std::logic_error);
}

TEST(Similarity, HeadingMatchesLinearMap) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> angle(0.0, kTwoPi);
  std::uniform_real_distribution<double> scale(0.1, 5.0);
  for (int k = 0; k < 200; ++k) {
    const int chi = (k % 2 == 0) ? 1 : -1;
    const Similarity sim({}, angle(rng), chi, scale(rng));
    const double beta = angle(rng);
    const Vec2 mapped = sim.apply_linear(unit_vector(beta));
    const double expected = sim.apply_heading(beta);
    EXPECT_NEAR(ray_angle_between(std::atan2(mapped.y, mapped.x), expected), 0.0, 1e-9);
    EXPECT_NEAR(mapped.norm(), sim.scale(), 1e-9);
  }
}

TEST(Similarity, InverseComposesToIdentity) {
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> coord(-5.0, 5.0);
  std::uniform_real_distribution<double> angle(0.0, kTwoPi);
  std::uniform_real_distribution<double> scale(0.2, 4.0);
  for (int k = 0; k < 200; ++k) {
    const int chi = (k % 2 == 0) ? 1 : -1;
    const Similarity sim({coord(rng), coord(rng)}, angle(rng), chi, scale(rng));
    const Similarity inv = sim.inverse();
    const Vec2 p{coord(rng), coord(rng)};
    EXPECT_NEAR(dist(inv.apply(sim.apply(p)), p), 0.0, 1e-9);
    EXPECT_NEAR(dist(sim.apply(inv.apply(p)), p), 0.0, 1e-9);
    // compose() agrees with function composition.
    const Similarity sim2({coord(rng), coord(rng)}, angle(rng), -chi, scale(rng));
    const Vec2 q{coord(rng), coord(rng)};
    EXPECT_NEAR(dist(sim.compose(sim2).apply(q), sim.apply(sim2.apply(q))), 0.0, 1e-9);
  }
}

TEST(Similarity, FixedPointTheory) {
  // The CGKK substitution's invertibility claim (DESIGN.md): I - M singular
  // exactly when scale = 1 and (chi=-1 or phi=0).
  const Similarity sync_shift({1.0, 2.0}, 0.0, 1, 1.0);
  EXPECT_FALSE(sync_shift.fixed_point().has_value());
  const Similarity mirror_any_phi({1.0, 2.0}, 1.234, -1, 1.0);
  EXPECT_FALSE(mirror_any_phi.fixed_point().has_value());

  const Similarity rotated({1.0, 2.0}, 0.8, 1, 1.0);
  const Similarity scaled({1.0, 2.0}, 0.0, 1, 2.0);
  const Similarity scaled_mirror({1.0, 2.0}, 0.8, -1, 2.0);
  for (const Similarity& sim : {rotated, scaled, scaled_mirror}) {
    const auto fp = sim.fixed_point();
    ASSERT_TRUE(fp.has_value());
    EXPECT_NEAR(dist(sim.apply(*fp), *fp), 0.0, 1e-9);
  }
}

TEST(CanonicalLine, Definition21Properties) {
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> coord(-10.0, 10.0);
  std::uniform_real_distribution<double> angle(0.0, kTwoPi);
  for (int k = 0; k < 200; ++k) {
    const Vec2 b{coord(rng), coord(rng)};
    const double phi = (k % 5 == 0) ? 0.0 : angle(rng);
    const Line line = canonical_line(b, phi);
    // Equidistant from both origins (Definition 2.1).
    EXPECT_NEAR(line.distance_to(Vec2{0.0, 0.0}), line.distance_to(b), 1e-9);
    // Parallel to the bisectrix: inclination phi/2 (phi = 0: x-axis).
    EXPECT_NEAR(line_angle_between(line.inclination(), normalize_angle(phi) / 2.0), 0.0, 1e-9);
    // Projection distance consistency.
    const double dp = projection_distance(b, phi);
    EXPECT_NEAR(dp, dist(line.project(Vec2{0.0, 0.0}), line.project(b)), 1e-9);
    EXPECT_LE(dp, b.norm() + 1e-9);
  }
}

TEST(CanonicalLine, SameEquationInBothFramesForChiMinus1) {
  // Lemma 3.9 relies on the canonical line having the same equation in both
  // agents' systems when chi = -1 (synchronous): computing "the line through
  // (x/2, y/2) at inclination phi/2" in B's private coordinates and mapping
  // through B's pose must give the same absolute line.
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> coord(-5.0, 5.0);
  std::uniform_real_distribution<double> angle(0.0, kTwoPi);
  for (int k = 0; k < 200; ++k) {
    const Vec2 b{coord(rng), coord(rng)};
    const double phi = angle(rng);
    const Similarity pose(b, phi, -1, 1.0);  // B's frame, synchronous chi=-1
    const Line absolute = canonical_line(b, phi);
    // B evaluates the same tuple formula in its local coordinates:
    const Line local = canonical_line(b, phi);
    const Vec2 p0 = pose.apply(local.point());
    const Vec2 p1 = pose.apply(local.point() + local.direction());
    EXPECT_NEAR(absolute.distance_to(p0), 0.0, 1e-9) << "b=(" << b.x << "," << b.y << ")";
    EXPECT_NEAR(absolute.distance_to(p1), 0.0, 1e-9);
  }
}

TEST(ClosestApproach, StaticAndHeadOn) {
  // Static points.
  const auto still = closest_approach(Vec2{3.0, 4.0}, Vec2{}, 10.0);
  EXPECT_DOUBLE_EQ(still.min_distance, 5.0);
  // Head-on collision: offset (2,0), relative velocity (-1,0).
  const auto collide = closest_approach(Vec2{2.0, 0.0}, Vec2{-1.0, 0.0}, 10.0);
  EXPECT_NEAR(collide.min_distance, 0.0, kTol);
  EXPECT_NEAR(collide.at, 2.0, kTol);
  // Window too short to reach the minimum.
  const auto clipped = closest_approach(Vec2{2.0, 0.0}, Vec2{-1.0, 0.0}, 1.0);
  EXPECT_NEAR(clipped.min_distance, 1.0, kTol);
  EXPECT_NEAR(clipped.at, 1.0, kTol);
}

TEST(ClosestApproach, FirstContactRoots) {
  // Approach from distance 3 at unit speed toward radius 1: contact at s=2.
  const auto hit = first_contact(Vec2{3.0, 0.0}, Vec2{-1.0, 0.0}, 1.0, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(*hit, 2.0, 1e-9);
  // Already inside the radius: contact at 0.
  EXPECT_EQ(first_contact(Vec2{0.5, 0.0}, Vec2{1.0, 0.0}, 1.0, 10.0), 0.0);
  // Moving away: no contact.
  EXPECT_FALSE(first_contact(Vec2{3.0, 0.0}, Vec2{1.0, 0.0}, 1.0, 10.0).has_value());
  // Passing by at miss distance 2 > 1: no contact.
  EXPECT_FALSE(first_contact(Vec2{3.0, 2.0}, Vec2{-1.0, 0.0}, 1.0, 10.0).has_value());
  // Grazing tangentially at exactly the radius.
  const auto graze = first_contact(Vec2{3.0, 1.0}, Vec2{-1.0, 0.0}, 1.0, 10.0);
  ASSERT_TRUE(graze.has_value());
  EXPECT_NEAR(*graze, 3.0, 1e-6);
  // Window ends before contact.
  EXPECT_FALSE(first_contact(Vec2{3.0, 0.0}, Vec2{-1.0, 0.0}, 1.0, 1.5).has_value());
}

class ClosestApproachProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ClosestApproachProperty, MatchesDenseSampling) {
  std::mt19937_64 rng(GetParam() * 101 + 3);
  std::uniform_real_distribution<double> coord(-8.0, 8.0);
  std::uniform_real_distribution<double> vel(-3.0, 3.0);
  std::uniform_real_distribution<double> dur(0.1, 12.0);
  for (int k = 0; k < 200; ++k) {
    const Vec2 offset{coord(rng), coord(rng)};
    const Vec2 velocity{vel(rng), vel(rng)};
    const double duration = dur(rng);
    const auto result = closest_approach(offset, velocity, duration);
    double sampled = 1e300;
    for (int s = 0; s <= 2000; ++s) {
      const double time = duration * s / 2000.0;
      sampled = std::min(sampled, (offset + time * velocity).norm());
    }
    EXPECT_LE(result.min_distance, sampled + 1e-9);
    EXPECT_GE(result.min_distance, sampled - 1e-3);  // sampling resolution
    // The reported argmin achieves the reported minimum.
    EXPECT_NEAR((offset + result.at * velocity).norm(), result.min_distance, 1e-9);

    // first_contact consistency: contact exists iff min <= radius; the
    // distance at the reported first-contact time equals the radius (or we
    // started inside).
    const double radius = 0.5 + (k % 7) * 0.5;
    const auto contact = first_contact(offset, velocity, radius, duration);
    if (result.min_distance <= radius - 1e-9) {
      ASSERT_TRUE(contact.has_value());
      const double d0 = offset.norm();
      if (d0 > radius) {
        EXPECT_NEAR((offset + *contact * velocity).norm(), radius, 1e-6);
        // No earlier contact: distance strictly above radius before it.
        for (int s = 1; s < 50; ++s) {
          const double time = *contact * s / 50.0;
          EXPECT_GT((offset + time * velocity).norm(), radius - 1e-6);
        }
      } else {
        EXPECT_EQ(*contact, 0.0);
      }
    } else if (result.min_distance > radius + 1e-9) {
      EXPECT_FALSE(contact.has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosestApproachProperty, ::testing::Values(1u, 2u, 3u, 4u));


TEST(ClosestApproach, ContactIntervalKnownCases) {
  // Head-on pass through a radius-1 disk from distance 3: inside during
  // s in [2, 4].
  const auto pass = contact_interval(Vec2{3.0, 0.0}, Vec2{-1.0, 0.0}, 1.0, 10.0);
  ASSERT_TRUE(pass.has_value());
  EXPECT_NEAR(pass->enter, 2.0, 1e-9);
  EXPECT_NEAR(pass->exit, 4.0, 1e-9);
  // Starting inside and leaving.
  const auto leaving = contact_interval(Vec2{0.5, 0.0}, Vec2{1.0, 0.0}, 1.0, 10.0);
  ASSERT_TRUE(leaving.has_value());
  EXPECT_NEAR(leaving->enter, 0.0, 1e-9);
  EXPECT_NEAR(leaving->exit, 0.5, 1e-9);
  // Static inside: whole window. Static outside: none.
  const auto inside = contact_interval(Vec2{0.5, 0.0}, Vec2{}, 1.0, 7.0);
  ASSERT_TRUE(inside.has_value());
  EXPECT_EQ(inside->enter, 0.0);
  EXPECT_EQ(inside->exit, 7.0);
  EXPECT_FALSE(contact_interval(Vec2{3.0, 0.0}, Vec2{}, 1.0, 7.0).has_value());
  // Miss (closest approach 2 > 1).
  EXPECT_FALSE(contact_interval(Vec2{3.0, 2.0}, Vec2{-1.0, 0.0}, 1.0, 10.0).has_value());
  // Window ends before entry.
  EXPECT_FALSE(contact_interval(Vec2{3.0, 0.0}, Vec2{-1.0, 0.0}, 1.0, 1.5).has_value());
  // Window clips the exit.
  const auto clipped = contact_interval(Vec2{3.0, 0.0}, Vec2{-1.0, 0.0}, 1.0, 3.0);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_NEAR(clipped->exit, 3.0, 1e-9);
}

TEST(ClosestApproach, ContactIntervalConsistentWithFirstContact) {
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> coord(-6.0, 6.0);
  std::uniform_real_distribution<double> vel(-2.0, 2.0);
  for (int k = 0; k < 300; ++k) {
    const Vec2 offset{coord(rng), coord(rng)};
    const Vec2 velocity{vel(rng), vel(rng)};
    const double radius = 0.5 + (k % 5) * 0.4;
    const double duration = 0.5 + (k % 7);
    const auto interval = contact_interval(offset, velocity, radius, duration);
    const auto first = first_contact(offset, velocity, radius, duration);
    if (first.has_value()) {
      ASSERT_TRUE(interval.has_value());
      EXPECT_NEAR(interval->enter, *first, 1e-6);
      EXPECT_LE(interval->enter, interval->exit);
      // Midpoint of the interval is inside the disk.
      const double mid = (interval->enter + interval->exit) / 2.0;
      EXPECT_LE((offset + mid * velocity).norm(), radius + 1e-6);
    } else if (interval.has_value()) {
      // first_contact misses only when the approach is receding from an
      // outside start; then contact_interval must also be empty.
      EXPECT_LE(offset.norm(), radius + 1e-9);
    }
  }
}

}  // namespace
}  // namespace aurv::geom
