// Wide property sweeps of Theorem 3.2, run in parallel across cores: grids
// of instances per type, all of which AlmostUniversalRV must solve, plus
// the matching negative sweeps (infeasible grids where the analytic
// closest-approach lower bound must hold).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "sim/batch.hpp"

namespace aurv::core {
namespace {

using agents::Instance;
using geom::Vec2;
using numeric::Rational;

sim::EngineConfig sweep_config(std::uint64_t fuel = 8'000'000) {
  sim::EngineConfig config;
  config.max_events = fuel;
  return config;
}

void expect_all_meet(const std::vector<Instance>& instances, InstanceKind expected_kind,
                     std::uint64_t fuel = 8'000'000) {
  for (const Instance& instance : instances) {
    ASSERT_EQ(classify(instance).kind, expected_kind) << instance.to_string();
  }
  const std::vector<sim::SimResult> results = sim::run_sweep(
      instances, [] { return almost_universal_rv(); }, sweep_config(fuel));
  for (std::size_t k = 0; k < instances.size(); ++k) {
    EXPECT_TRUE(results[k].met)
        << instances[k].to_string() << " -> " << sim::to_string(results[k].reason)
        << " min dist " << results[k].min_distance_seen;
    if (results[k].met) {
      EXPECT_LE(results[k].final_distance, instances[k].r() + 1e-6);
    }
  }
}

TEST(RendezvousSweep, Type1Grid) {
  std::vector<Instance> instances;
  for (const double phi : {0.0, geom::kPi / 2, 1.1}) {
    for (const double dist_proj : {1.5, 2.5}) {
      for (const double lateral : {0.3, 0.9}) {
        for (const double margin : {0.5, 2.0}) {
          const Vec2 along = geom::unit_vector(phi / 2.0);
          const Vec2 b = dist_proj * along + lateral * along.perp();
          instances.push_back(Instance(
              1.0, b, phi, 1, 1, Rational::from_double(dist_proj - 1.0 + margin), -1));
        }
      }
    }
  }
  ASSERT_EQ(instances.size(), 24u);
  expect_all_meet(instances, InstanceKind::Type1);
}

TEST(RendezvousSweep, Type2Grid) {
  std::vector<Instance> instances;
  for (const double direction : {0.0, geom::kPi / 4, 2.1, 4.0}) {
    for (const double dist : {1.3, 2.0, 3.0}) {
      for (const double margin : {0.3, 1.5}) {
        const Vec2 b = dist * geom::unit_vector(direction);
        instances.push_back(Instance::synchronous(
            1.0, b, 0.0, Rational::from_double(dist - 1.0 + margin), 1));
      }
    }
  }
  ASSERT_EQ(instances.size(), 24u);
  expect_all_meet(instances, InstanceKind::Type2, 20'000'000);
}

TEST(RendezvousSweep, Type3Grid) {
  std::vector<Instance> instances;
  for (const char* tau : {"1/3", "2/3", "4/3", "3"}) {
    for (const int chi : {1, -1}) {
      for (const int delay : {0, 1}) {
        for (const double phi : {0.0, 0.8}) {
          instances.push_back(Instance(1.0, {2.0, 0.5}, phi, Rational::from_string(tau), 1,
                                       delay, chi));
        }
      }
    }
  }
  ASSERT_EQ(instances.size(), 32u);
  expect_all_meet(instances, InstanceKind::Type3);
}

TEST(RendezvousSweep, Type4Grid) {
  std::vector<Instance> instances;
  // Speed asymmetry with varied frames (all tau = 1, t = 0 or small).
  for (const char* v : {"1/2", "2", "3"}) {
    for (const int chi : {1, -1}) {
      for (const double phi : {0.0, 1.0}) {
        instances.push_back(Instance(0.8, {1.4, 0.4}, phi, 1, Rational::from_string(v),
                                     0, chi));
      }
    }
  }
  // Pure-rotation synchronous instances (clause 2a).
  for (const double phi : {0.4, geom::kPi / 2, 2.8, 5.2}) {
    instances.push_back(Instance::synchronous(0.8, {1.6, 0.2}, phi, 0, 1));
  }
  ASSERT_EQ(instances.size(), 16u);
  expect_all_meet(instances, InstanceKind::Type4, 20'000'000);
}

TEST(RendezvousSweep, InfeasibleGridRespectsLowerBounds) {
  std::vector<Instance> instances;
  std::vector<double> bounds;
  for (const double dist : {3.0, 5.0}) {
    for (const double t : {0.0, 1.0}) {
      if (t >= dist - 1.0) continue;
      // chi = +1 shift: bound dist - t.
      instances.push_back(
          Instance::synchronous(1.0, {dist, 0.0}, 0.0, Rational::from_double(t), 1));
      bounds.push_back(dist - t);
      // chi = -1: bound dist_proj - t (b placed on the line direction).
      instances.push_back(
          Instance::synchronous(1.0, {dist, 0.8}, 0.0, Rational::from_double(t), -1));
      bounds.push_back(dist - t);
    }
  }
  const std::vector<sim::SimResult> results = sim::run_sweep(
      instances, [] { return almost_universal_rv(); }, sweep_config(600'000));
  for (std::size_t k = 0; k < instances.size(); ++k) {
    ASSERT_EQ(classify(instances[k]).kind, InstanceKind::Infeasible)
        << instances[k].to_string();
    EXPECT_FALSE(results[k].met) << instances[k].to_string();
    EXPECT_GE(results[k].min_distance_seen, bounds[k] - 1e-6) << instances[k].to_string();
  }
}

TEST(RendezvousSweep, MirrorMetamorphic) {
  // Metamorphic property: describing the same physical configuration from
  // B's perspective (t = 0 instances) must produce the same rendezvous
  // outcome — meet or not — and the same meet distance up to the rescaled
  // units. Exercises the whole stack: frames, engine, algorithm.
  std::vector<Instance> originals;
  for (const char* v : {"1/2", "2"}) {
    for (const double phi : {0.7, geom::kPi / 2}) {
      for (const int chi : {1, -1}) {
        originals.push_back(Instance(0.8, {1.4, 0.4}, phi, 1, Rational::from_string(v),
                                     0, chi));
      }
    }
  }
  std::vector<Instance> mirrored;
  mirrored.reserve(originals.size());
  for (const Instance& instance : originals) mirrored.push_back(instance.mirrored());

  const auto run_all = [](const std::vector<Instance>& instances) {
    return sim::run_sweep(instances, [] { return almost_universal_rv(); },
                          sweep_config(8'000'000));
  };
  const std::vector<sim::SimResult> original_results = run_all(originals);
  const std::vector<sim::SimResult> mirrored_results = run_all(mirrored);
  for (std::size_t k = 0; k < originals.size(); ++k) {
    ASSERT_TRUE(original_results[k].met) << originals[k].to_string();
    ASSERT_TRUE(mirrored_results[k].met) << mirrored[k].to_string();
    // Distances in the mirrored description are in B's length unit.
    const double unit = originals[k].b_length_unit_d();
    EXPECT_NEAR(mirrored_results[k].final_distance * unit,
                original_results[k].final_distance, 1e-5)
        << originals[k].to_string();
    // Meet times in the mirrored description are in B's time unit (tau = 1
    // here, so they agree directly).
    EXPECT_NEAR(mirrored_results[k].meet_time, original_results[k].meet_time, 1e-5)
        << originals[k].to_string();
  }
}

}  // namespace
}  // namespace aurv::core
