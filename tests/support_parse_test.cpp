// Tests for the strict CLI numeric parsers: whole-token, range-checked,
// locale-independent.
#include <gtest/gtest.h>

#include <stdexcept>

#include "support/parse.hpp"

namespace aurv::support {
namespace {

TEST(Parse, AcceptsWellFormedNumbers) {
  EXPECT_EQ(parse_double("2.5"), 2.5);
  EXPECT_EQ(parse_double("-1e3"), -1000.0);
  EXPECT_EQ(parse_double("0"), 0.0);
  EXPECT_EQ(parse_int("-42"), -42);
  EXPECT_EQ(parse_uint("17"), 17ull);
  EXPECT_EQ(parse_uint("18446744073709551615"), 18446744073709551615ull);  // full uint64 range
}

TEST(Parse, RejectsGarbage) {
  EXPECT_THROW((void)parse_double(""), std::invalid_argument);
  EXPECT_THROW((void)parse_double("abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_double("0.6bogus"), std::invalid_argument);
  EXPECT_THROW((void)parse_double("1.2.3"), std::invalid_argument);
  EXPECT_THROW((void)parse_int("12x"), std::invalid_argument);
  EXPECT_THROW((void)parse_int("1.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_uint("-3"), std::invalid_argument);
}

TEST(Parse, RejectsNonFiniteAndOutOfRange) {
  EXPECT_THROW((void)parse_double("inf"), std::invalid_argument);
  EXPECT_THROW((void)parse_double("nan"), std::invalid_argument);
  EXPECT_THROW((void)parse_double("0x10"), std::invalid_argument);
  EXPECT_THROW((void)parse_double("1e999"), std::invalid_argument);
  EXPECT_THROW((void)parse_int("99999999999999999999"), std::invalid_argument);
}

TEST(Parse, ErrorsNameTheArgument) {
  try {
    (void)parse_double("junk", "--threads");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--threads"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("junk"), std::string::npos);
  }
}

}  // namespace
}  // namespace aurv::support
