// Tests for the instance model and agent frames (Section 1.2 of the paper).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "agents/frame.hpp"
#include "agents/instance.hpp"
#include "geom/angle.hpp"

namespace aurv::agents {
namespace {

using geom::Vec2;
using numeric::Rational;

Instance sample_instance() {
  return Instance(/*r=*/0.5, Vec2{3.0, 4.0}, /*phi=*/geom::kPi / 3, /*tau=*/Rational(2),
                  /*v=*/Rational(numeric::BigInt(3), numeric::BigInt(2)), /*t=*/Rational(5),
                  /*chi=*/-1);
}

TEST(Instance, ValidationRejectsBadParameters) {
  EXPECT_THROW(Instance(0.0, Vec2{1, 1}, 0, 1, 1, 0, 1), std::logic_error);
  EXPECT_THROW(Instance(-1.0, Vec2{1, 1}, 0, 1, 1, 0, 1), std::logic_error);
  EXPECT_THROW(Instance(1.0, Vec2{1, 1}, 0, 0, 1, 0, 1), std::logic_error);
  EXPECT_THROW(Instance(1.0, Vec2{1, 1}, 0, 1, Rational(-1), 0, 1), std::logic_error);
  EXPECT_THROW(Instance(1.0, Vec2{1, 1}, 0, 1, 1, Rational(-1), 1), std::logic_error);
  EXPECT_THROW(Instance(1.0, Vec2{1, 1}, 0, 1, 1, 0, 0), std::logic_error);
  EXPECT_THROW(Instance(1.0, Vec2{1, 1}, 0, 1, 1, 0, 2), std::logic_error);
}

TEST(Instance, PhiNormalizedToPrincipalRange) {
  const Instance wrapped(1.0, Vec2{2, 0}, 2 * geom::kTwoPi + 1.0, 1, 1, 0, 1);
  EXPECT_NEAR(wrapped.phi(), 1.0, 1e-9);
  const Instance negative(1.0, Vec2{2, 0}, -geom::kPi / 2, 1, 1, 0, 1);
  EXPECT_NEAR(negative.phi(), 3 * geom::kPi / 2, 1e-9);
}

TEST(Instance, SynchronousDetectionIsExact) {
  EXPECT_TRUE(Instance::synchronous(1.0, Vec2{2, 0}, 0.0, 0, 1).is_synchronous());
  const Instance almost(1.0, Vec2{2, 0}, 0.0,
                        Rational(numeric::BigInt(1000000001), numeric::BigInt(1000000000)), 1, 0,
                        1);
  EXPECT_FALSE(almost.is_synchronous());  // off by 1e-9: still non-synchronous
  EXPECT_FALSE(sample_instance().is_synchronous());
}

TEST(Instance, DerivedQuantities) {
  const Instance inst = sample_instance();
  EXPECT_DOUBLE_EQ(inst.initial_distance(), 5.0);
  EXPECT_EQ(inst.b_length_unit(), Rational(3));  // tau*v = 2 * 3/2
  EXPECT_DOUBLE_EQ(inst.b_length_unit_d(), 3.0);
  EXPECT_DOUBLE_EQ(inst.t_d(), 5.0);
  // Canonical line at inclination phi/2 through the midpoint.
  const geom::Line line = inst.canonical_line();
  EXPECT_NEAR(geom::line_angle_between(line.inclination(), geom::kPi / 6), 0.0, 1e-9);
  EXPECT_NEAR(line.distance_to(Vec2{0, 0}), line.distance_to(inst.b_start()), 1e-9);
}

TEST(Instance, TransformHelpers) {
  const Instance inst = sample_instance();
  const Instance h = inst.halved_radius_zero_delay();
  EXPECT_DOUBLE_EQ(h.r(), inst.r() / 2);
  EXPECT_TRUE(h.t().is_zero());
  EXPECT_EQ(h.tau(), inst.tau());
  EXPECT_EQ(inst.with_radius(2.0).r(), 2.0);
  EXPECT_EQ(inst.with_delay(7).t(), Rational(7));
}

TEST(Instance, BPoseMapsLocalToAbsolute) {
  const Instance inst = sample_instance();
  const geom::Similarity pose = inst.b_pose();
  // B's origin maps to its start.
  EXPECT_NEAR(geom::dist(pose.apply(Vec2{0, 0}), inst.b_start()), 0.0, 1e-12);
  // One local x-unit maps to length tau*v at absolute angle phi.
  const Vec2 unit_x = pose.apply(Vec2{1, 0}) - inst.b_start();
  EXPECT_NEAR(unit_x.norm(), 3.0, 1e-12);
  EXPECT_NEAR(std::atan2(unit_x.y, unit_x.x), inst.phi(), 1e-12);
  // chi = -1: B's local +y maps clockwise from its +x.
  const Vec2 unit_y = pose.apply(Vec2{0, 1}) - inst.b_start();
  EXPECT_NEAR(unit_x.cross(unit_y), -9.0, 1e-9);  // negative orientation, |x||y|
}

TEST(Instance, MirroredDescribesSamePhysicalConfiguration) {
  std::mt19937_64 rng(31);
  std::uniform_real_distribution<double> coord(-4.0, 4.0);
  std::uniform_real_distribution<double> angle(0.0, geom::kTwoPi);
  for (int k = 0; k < 100; ++k) {
    const int chi = (k % 2) ? 1 : -1;
    const Instance inst(1.25, Vec2{coord(rng), coord(rng)}, angle(rng),
                        Rational(numeric::BigInt(3), numeric::BigInt(2)),
                        Rational(numeric::BigInt(4), numeric::BigInt(5)), 0, chi);
    const Instance mirror = inst.mirrored();
    // Mirror twice returns the original parameters.
    const Instance twice = mirror.mirrored();
    EXPECT_NEAR(twice.r(), inst.r(), 1e-9);
    EXPECT_NEAR(geom::dist(twice.b_start(), inst.b_start()), 0.0, 1e-9);
    EXPECT_NEAR(geom::ray_angle_between(twice.phi(), inst.phi()), 0.0, 1e-9);
    EXPECT_EQ(twice.tau(), inst.tau());
    EXPECT_EQ(twice.v(), inst.v());
    EXPECT_EQ(twice.chi(), inst.chi());
    // The mirror's pose is the inverse of the original pose (A as seen in
    // B's frame, including unit rescaling).
    const geom::Similarity expected = inst.b_pose().inverse();
    EXPECT_NEAR(geom::dist(mirror.b_start(), expected.apply(Vec2{0, 0})), 0.0, 1e-9);
    // r expressed in B's length unit.
    EXPECT_NEAR(mirror.r(), inst.r() / inst.b_length_unit_d(), 1e-12);
    EXPECT_EQ(mirror.tau(), inst.tau().reciprocal());
    EXPECT_EQ(mirror.v(), inst.v().reciprocal());
  }
  EXPECT_THROW((void)sample_instance().mirrored(), std::logic_error);  // t != 0
}

TEST(AgentFrame, ConventionForAgentA) {
  const AgentFrame a = AgentFrame::for_a(sample_instance());
  EXPECT_EQ(a.time_unit(), Rational(1));
  EXPECT_EQ(a.wake_time(), Rational(0));
  EXPECT_DOUBLE_EQ(a.speed(), 1.0);
  EXPECT_DOUBLE_EQ(a.length_unit(), 1.0);
  EXPECT_EQ(a.start_position(), (Vec2{0, 0}));
  EXPECT_DOUBLE_EQ(a.absolute_heading(0.7), 0.7);
  EXPECT_EQ(a.absolute_time(Rational(9)), Rational(9));
}

TEST(AgentFrame, DerivedForAgentB) {
  const Instance inst = sample_instance();
  const AgentFrame b = AgentFrame::for_b(inst);
  EXPECT_EQ(b.time_unit(), Rational(2));
  EXPECT_EQ(b.wake_time(), Rational(5));
  EXPECT_DOUBLE_EQ(b.speed(), 1.5);
  EXPECT_DOUBLE_EQ(b.length_unit(), 3.0);
  EXPECT_EQ(b.start_position(), inst.b_start());
  // local elapsed z -> absolute t + tau*z.
  EXPECT_EQ(b.absolute_time(Rational(3)), Rational(11));
  // Heading through rotation phi and chirality -1: phi - beta.
  EXPECT_NEAR(b.absolute_heading(0.4), geom::normalize_angle(inst.phi() - 0.4), 1e-12);
  EXPECT_EQ(AgentFrame::for_agent(inst, AgentId::B).wake_time(), Rational(5));
  EXPECT_EQ(AgentFrame::for_agent(inst, AgentId::A).wake_time(), Rational(0));
}

}  // namespace
}  // namespace aurv::agents
