// Spill-to-disk frontier + delta-checkpoint tests: a search forced onto
// disk by a tiny hot-set capacity must produce byte-identical artifacts to
// the in-memory run; the per-wave journal must reproduce those bytes when
// resumed from a simulated kill at every wave boundary — including kills
// mid-compaction (stale journal left behind) and mid-append (partial or
// torn trailing record); and the segment store must round-trip
// exact-rational boxes losslessly.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "test_paths.hpp"
#include "exp/scenario.hpp"
#include "exp/search_driver.hpp"
#include "search/bnb.hpp"
#include "search/box.hpp"
#include "support/spill.hpp"

namespace aurv::search {
namespace {

namespace fs = std::filesystem;
using exp::SearchOptions;
using exp::SearchSpec;
using numeric::Rational;
using support::Json;
using testpaths::copy_dir;
using testpaths::fresh_dir;
using testpaths::slurp;
using testpaths::temp_path;

/// The same fast tuple-space spec the bnb determinism tests use: 48 boxes
/// in waves of 8 gives several waves, several incumbents and a frontier
/// deep enough that frontier_mem=2 forces heavy spilling.
SearchSpec small_spec() {
  SearchSpec spec;
  spec.name = "test_search_spill";
  spec.algorithm = "aurv";
  spec.objective = "max-meet-time";
  spec.space.family = SearchSpace::Family::Tuple;
  spec.space.chi = -1;
  spec.space.fixed = {{"r", Rational(1)},
                      {"y", Rational(numeric::BigInt(6), numeric::BigInt(5))},
                      {"phi", Rational(0)}};
  spec.space.dim_names = {"x", "t"};
  spec.box = {Interval{Rational(numeric::BigInt(3), numeric::BigInt(2)),
                       Rational(numeric::BigInt(7), numeric::BigInt(2))},
              Interval{Rational(0), Rational(3)}};
  spec.limits.max_boxes = 48;
  spec.limits.wave_size = 8;
  spec.limits.min_width = Rational(numeric::BigInt(1), numeric::BigInt(64));
  spec.engine.max_events = 2'000'000;
  spec.engine.horizon = Rational(256);
  return spec;
}

// ---------------------------------------------------- spill byte-identity --

TEST(SpillFrontier, SpilledRunIsByteIdenticalToInMemory) {
  const SearchSpec spec = small_spec();

  SearchOptions in_memory;
  in_memory.incumbent_log_path = temp_path("spill_mem.jsonl");
  const exp::SearchRunResult mem = exp::run_search(spec, in_memory);

  const std::string spill_dir = fresh_dir("spill_frontier_dir");
  SearchOptions spilled = in_memory;
  spilled.incumbent_log_path = temp_path("spill_disk.jsonl");
  spilled.spill_dir = spill_dir;
  spilled.frontier_mem = 2;
  spilled.spill_max_segments = 2;  // exercise segment merging too
  const exp::SearchRunResult disk = exp::run_search(spec, spilled);

  // The whole point: certificates (incumbent, prune stats, frontier
  // residual) and incumbent logs are byte-identical — only the
  // invocation-side observability may differ.
  EXPECT_EQ(mem.certificate(spec).dump(2), disk.certificate(spec).dump(2));
  EXPECT_EQ(slurp(in_memory.incumbent_log_path), slurp(spilled.incumbent_log_path));
  EXPECT_EQ(mem.bnb.stats, disk.bnb.stats);
  EXPECT_GT(disk.bnb.frontier_spilled, 0u) << "frontier_mem=2 must actually spill";
  EXPECT_LE(disk.bnb.frontier_hot_high_water, 3u);  // capacity + overflowing insert
  EXPECT_GE(mem.bnb.frontier_hot_high_water, disk.bnb.frontier_hot_high_water);
  EXPECT_EQ(mem.bnb.frontier_spilled, 0u);

  // A run without a checkpoint owes the disk nothing once it returns.
  EXPECT_TRUE(fs::is_empty(spill_dir));
}

TEST(SpillFrontier, SegmentStoreRoundTripsExactRationalBoxes) {
  using FrontierDeque = support::SpillDeque<OpenBox, FrontierOrder, OpenBoxCodec>;

  FrontierDeque::Config config;
  config.spill_dir = fresh_dir("spill_rational_roundtrip");
  config.mem_capacity = 1;  // everything beyond one box goes through disk
  FrontierDeque deque(config);

  const std::vector<OpenBox> boxes = {
      {ParamBox({Interval{Rational::from_string("1/3"), Rational::from_string("22/7")},
                 Interval{Rational::from_string("-5/391"), Rational(0)}},
                "0101"),
       3.5},
      {ParamBox({Interval{Rational::from_string("123456789123456789123456789/1000000007"),
                          Rational::from_string("123456789123456789123456790/1000000007")},
                 Interval{Rational(-2), Rational(5)}},
                "0110"),
       0.1},  // not exactly representable in decimal: needs shortest-exact doubles
      {ParamBox({Interval{Rational(numeric::BigInt(1), numeric::BigInt(1) << 40),
                          Rational(numeric::BigInt(3), numeric::BigInt(1) << 40)},
                 Interval{Rational(0), Rational(1)}},
                "1"),
       -1e-300},
      {ParamBox({Interval{Rational(0), Rational(1)}, Interval{Rational(0), Rational(1)}}, ""),
       std::numeric_limits<double>::infinity()},
  };
  for (const OpenBox& box : boxes) deque.insert(box);
  EXPECT_GT(deque.spilled(), 0u);

  // Pop order is bound-descending; every reloaded box must compare equal
  // down to the exact rational endpoints and the exact double bound.
  std::vector<OpenBox> popped;
  while (!deque.empty()) popped.push_back(deque.pop_best());
  ASSERT_EQ(popped.size(), boxes.size());
  EXPECT_EQ(popped[0], boxes[3]);  // +inf bound
  EXPECT_EQ(popped[1], boxes[0]);
  EXPECT_EQ(popped[2], boxes[1]);
  EXPECT_EQ(popped[3], boxes[2]);
}

// ----------------------------------------------- delta-checkpoint resume --

/// Harness for the kill simulations: runs the checkpointed search inside
/// one working directory (base checkpoint, wave journals, incumbent log
/// and spill segments all live there), snapshotting the directory after
/// every completed wave — exactly what a kill at that boundary leaves on
/// disk, since every artifact is flushed before the journal record that
/// references it.
struct KillHarness {
  /// `tag` keeps concurrently running tests out of each other's files.
  explicit KillHarness(std::string tag)
      : tag(std::move(tag)), work(fresh_dir(this->tag + "_work")) {}

  std::string tag;
  std::string work;
  std::vector<std::string> snapshots;  // one directory copy per wave

  SearchOptions options(bool spill) {
    SearchOptions options;
    options.incumbent_log_path = (fs::path(work) / "incumbents.jsonl").string();
    options.checkpoint_path = (fs::path(work) / "ck.json").string();
    options.checkpoint_every = 2;  // odd waves die mid-journal, even mid-cycle
    if (spill) {
      options.spill_dir = (fs::path(work) / "spill").string();
      options.frontier_mem = 2;
      options.spill_max_segments = 2;
    }
    return options;
  }

  /// Runs to completion, snapshotting after every wave; returns the final
  /// certificate text.
  std::string run_snapshotting(const SearchSpec& spec, bool spill) {
    SearchOptions opts = options(spill);
    opts.progress = [&](std::uint64_t, std::uint64_t) {
      const std::string snap = temp_path(tag + "_snap_" +
                                         std::to_string(snapshots.size()));
      copy_dir(work, snap);
      snapshots.push_back(snap);
    };
    return exp::run_search(spec, opts).certificate(spec).dump(2);
  }

  /// Restores snapshot `k` into the working directory — the disk state a
  /// kill at that wave boundary would have left behind.
  void restore(std::size_t k) { copy_dir(snapshots[k], work); }

  /// Path of the journal file(s) currently in the working directory.
  std::vector<std::string> journal_files() const {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(work)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("ck.json.wave.", 0) == 0) files.push_back(entry.path().string());
    }
    return files;
  }
};

TEST(DeltaCheckpoint, ResumeFromAKillAtEveryWaveBoundaryReproducesBytes) {
  const SearchSpec spec = small_spec();

  // Ground truth: an uninterrupted, unspilled, uncheckpointed run.
  SearchOptions oneshot;
  oneshot.incumbent_log_path = temp_path("spill_kill_oneshot.jsonl");
  const std::string expected = exp::run_search(spec, oneshot).certificate(spec).dump(2);
  const std::string expected_log = slurp(oneshot.incumbent_log_path);

  KillHarness harness("kill_every_wave");
  EXPECT_EQ(harness.run_snapshotting(spec, /*spill=*/true), expected);
  ASSERT_GE(harness.snapshots.size(), 4u);  // several waves, both parities

  for (std::size_t k = 0; k < harness.snapshots.size(); ++k) {
    harness.restore(k);
    SearchOptions resume = harness.options(/*spill=*/true);
    resume.resume = true;
    resume.max_shards = 3;  // and on a different worker count
    const exp::SearchRunResult finished = exp::run_search(spec, resume);
    EXPECT_TRUE(finished.bnb.complete());
    EXPECT_EQ(finished.certificate(spec).dump(2), expected) << "killed after wave " << k;
    EXPECT_EQ(slurp(resume.incumbent_log_path), expected_log) << "killed after wave " << k;
  }
}

TEST(DeltaCheckpoint, ResumeAcrossSpillModesReproducesBytes) {
  // A checkpoint written by a spilled run resumes in-memory and vice
  // versa: the frontier's location is invocation-side even across a kill.
  const SearchSpec spec = small_spec();
  SearchOptions oneshot;
  oneshot.incumbent_log_path = temp_path("spill_modes_oneshot.jsonl");
  const std::string expected = exp::run_search(spec, oneshot).certificate(spec).dump(2);

  {
    KillHarness spilled("modes_spilled");  // killed spilled run -> in-memory resume
    (void)spilled.run_snapshotting(spec, /*spill=*/true);
    spilled.restore(2);
    SearchOptions resume = spilled.options(/*spill=*/false);
    resume.resume = true;
    EXPECT_EQ(exp::run_search(spec, resume).certificate(spec).dump(2), expected);
  }
  {
    KillHarness in_memory("modes_mem");  // killed in-memory run -> spilled resume
    (void)in_memory.run_snapshotting(spec, /*spill=*/false);
    in_memory.restore(2);
    SearchOptions resume = in_memory.options(/*spill=*/true);
    resume.resume = true;
    const exp::SearchRunResult finished = exp::run_search(spec, resume);
    EXPECT_EQ(finished.certificate(spec).dump(2), expected);
    EXPECT_GT(finished.bnb.frontier_spilled, 0u);
    // The cap holds from the restore on, even though the checkpoint was
    // written by an uncapped in-memory run.
    EXPECT_LE(finished.bnb.frontier_hot_high_water, 3u);
  }
}

TEST(DeltaCheckpoint, PartialOrTornTrailingJournalRecordIsDiscarded) {
  // A kill mid-append leaves a record with no newline, or a torn line; the
  // replay must treat the durable prefix as the checkpoint and reproduce
  // the oneshot bytes (the lost wave is simply re-run).
  const SearchSpec spec = small_spec();
  SearchOptions oneshot;
  oneshot.incumbent_log_path = temp_path("spill_torn_oneshot.jsonl");
  const std::string expected = exp::run_search(spec, oneshot).certificate(spec).dump(2);

  for (const char* tail : {"{\"wave\":99,\"popped\":", "{\"wave\":99,]garbage[}\n"}) {
    KillHarness harness("kill_torn_journal");
    (void)harness.run_snapshotting(spec, /*spill=*/true);
    harness.restore(2);  // wave 3 of checkpoint_every=2: journal has a record
    const std::vector<std::string> journals = harness.journal_files();
    ASSERT_EQ(journals.size(), 1u);
    ASSERT_GT(fs::file_size(journals[0]), 0u) << "snapshot must be mid-journal";
    {
      std::ofstream append(journals[0], std::ios::binary | std::ios::app);
      append << tail;
    }
    SearchOptions resume = harness.options(/*spill=*/true);
    resume.resume = true;
    EXPECT_EQ(exp::run_search(spec, resume).certificate(spec).dump(2), expected) << tail;
  }
}

TEST(DeltaCheckpoint, FreshStartSweepsForeignJournals) {
  // Journal records carry no fingerprint — only the base does. A fresh
  // start over a checkpoint path some earlier lineage used must sweep
  // that lineage's journal files immediately (generation 0 included):
  // one surviving until our own first append could be replayed onto the
  // new base by a resume after a kill in that window.
  const std::string work = fresh_dir("foreign_journal_work");
  const std::string checkpoint = (fs::path(work) / "ck.json").string();
  for (const char* leaf : {"ck.json.wave.0.jsonl", "ck.json.wave.7.jsonl"}) {
    std::ofstream out((fs::path(work) / leaf).string(), std::ios::binary);
    out << "{\"wave\":1,\"popped\":1,\"children\":[],\"incumbent\":null}\n";
  }

  // A spec whose whole box is provably infeasible runs zero waves, so
  // nothing ever opens (and thereby truncates) a journal: the fresh-start
  // sweep alone must have removed the foreign files.
  SearchSpec spec = small_spec();
  spec.box = {Interval{Rational(4), Rational(6)}, Interval{Rational(0), Rational(1)}};
  SearchOptions options;
  options.checkpoint_path = checkpoint;
  const exp::SearchRunResult result = exp::run_search(spec, options);
  EXPECT_TRUE(result.bnb.exhausted);
  EXPECT_EQ(result.bnb.stats.evaluated, 0u);

  EXPECT_TRUE(fs::exists(checkpoint));
  for (const auto& entry : fs::directory_iterator(work)) {
    EXPECT_EQ(entry.path().filename().string().rfind("ck.json.wave.", 0),
              std::string::npos)
        << entry.path() << " survived the fresh-start sweep";
  }
}

TEST(DeltaCheckpoint, TerminalBaseReflectsTheDrainedFrontier) {
  // Aggressive min_improvement pruning tends to end the search on
  // drain-only iterations (every remaining pop pruned, no journal
  // record); the terminal base must still capture that drain — an
  // exhausted search leaves a checkpoint saying so, not a stale
  // non-empty frontier that every resume re-drains forever.
  SearchSpec spec = small_spec();
  spec.limits.max_boxes = 4096;
  spec.limits.min_width = Rational(numeric::BigInt(1), numeric::BigInt(2));
  spec.limits.min_improvement = 1.0;

  const std::string work = fresh_dir("terminal_drain_work");
  SearchOptions options;
  options.incumbent_log_path = (fs::path(work) / "incumbents.jsonl").string();
  options.checkpoint_path = (fs::path(work) / "ck.json").string();
  options.checkpoint_every = 2;
  options.spill_dir = (fs::path(work) / "spill").string();
  options.frontier_mem = 2;
  const exp::SearchRunResult result = exp::run_search(spec, options);
  ASSERT_TRUE(result.bnb.exhausted);

  const Json base = Json::load_file(options.checkpoint_path);
  EXPECT_TRUE(base.at("frontier").at("hot").as_array().empty());
  EXPECT_TRUE(base.at("frontier").at("segments").as_array().empty());
  EXPECT_EQ(base.at("stats").at("evaluated").as_uint(), result.bnb.stats.evaluated);
  EXPECT_EQ(base.at("stats").at("pruned").as_uint(), result.bnb.stats.pruned);

  // Resuming the finished search is a no-op landing on the same bytes.
  SearchOptions resume = options;
  resume.resume = true;
  const exp::SearchRunResult again = exp::run_search(spec, resume);
  EXPECT_EQ(again.certificate(spec).dump(2), result.certificate(spec).dump(2));
}

TEST(DeltaCheckpoint, StaleJournalFromAKilledCompactionIsIgnored) {
  // Compaction writes the new base, then removes the previous journal; a
  // kill in between leaves the stale generation's file behind. Resume must
  // go by the base's recorded generation and ignore the stale file.
  const SearchSpec spec = small_spec();
  SearchOptions oneshot;
  oneshot.incumbent_log_path = temp_path("spill_stale_oneshot.jsonl");
  const std::string expected = exp::run_search(spec, oneshot).certificate(spec).dump(2);

  KillHarness harness("kill_mid_compaction");
  (void)harness.run_snapshotting(spec, /*spill=*/true);
  harness.restore(1);  // wave 2: a compaction boundary (checkpoint_every=2)
  const Json base = Json::load_file((fs::path(harness.work) / "ck.json").string());
  const std::uint64_t generation = base.at("generation").as_uint();
  ASSERT_GE(generation, 1u) << "snapshot must be right after a compaction";

  // Fabricate the stale pre-compaction journal the kill failed to delete:
  // plausible records of an older generation, plus pure garbage.
  const std::string stale = (fs::path(harness.work) /
                             ("ck.json.wave." + std::to_string(generation - 1) + ".jsonl"))
                                .string();
  {
    std::ofstream out(stale, std::ios::binary);
    out << "{\"wave\":1,\"popped\":1,\"children\":[],\"incumbent\":null}\n"
        << "not even json\n";
  }
  SearchOptions resume = harness.options(/*spill=*/true);
  resume.resume = true;
  EXPECT_EQ(exp::run_search(spec, resume).certificate(spec).dump(2), expected);
  // ...and the next compaction swept the stale generation away.
  EXPECT_FALSE(fs::exists(stale));
}

}  // namespace
}  // namespace aurv::search
