#!/usr/bin/env python3
"""End-to-end check of the provenance audit trail (registered via ctest).

Runs the real aurv_sweep binary on scenarios/search_smoke.json with
--provenance, audits the stream against the emitted certificate with
scripts/provenance_report.py, and then verifies the audit fails loudly on
a hand-corrupted stream (an inflated prune bound — the exact forgery the
audit exists to catch — and a dropped decision record).

Usage: provenance_audit_test.py <aurv_sweep-binary> <repo-root>
"""

import json
import pathlib
import subprocess
import sys
import tempfile


def run(argv, **kwargs):
    return subprocess.run([str(a) for a in argv], capture_output=True, text=True, **kwargs)


def main() -> int:
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    sweep, root = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
    report = root / "scripts" / "provenance_report.py"
    scenario = root / "scenarios" / "search_smoke.json"

    with tempfile.TemporaryDirectory(prefix="aurv_prov_audit_") as raw:
        work = pathlib.Path(raw)
        cert = work / "cert.json"
        stream = work / "prov.jsonl"

        search = run([sweep, "search", scenario, "--quiet",
                      "--out", cert, "--provenance", stream])
        if search.returncode != 0:
            print(search.stderr)
            raise SystemExit(f"aurv_sweep search failed with {search.returncode}")

        audit = run([sys.executable, report, "audit", stream, cert])
        if audit.returncode != 0:
            print(audit.stdout + audit.stderr)
            raise SystemExit("audit of an honest stream must pass")
        print(audit.stdout.strip())

        lines = stream.read_text().splitlines()

        # Forgery 1: inflate a pruned box's bound so the prune looks
        # unjustified — the box could have beaten the incumbent.
        forged = list(lines)
        for index, line in enumerate(forged):
            record = json.loads(line)
            if record.get("action") in ("pruned-bound", "pruned-pop"):
                record["bound"] = 1.0e9
                forged[index] = json.dumps(record, separators=(",", ":"))
                break
        else:
            raise SystemExit("smoke stream unexpectedly has no pruned records")
        bad = work / "forged_bound.jsonl"
        bad.write_text("\n".join(forged) + "\n")
        verdict = run([sys.executable, report, "audit", bad, cert])
        if verdict.returncode == 0:
            raise SystemExit("audit must reject an unjustified prune")
        print(f"forged bound rejected: {(verdict.stdout + verdict.stderr).strip()}")

        # Forgery 2: silently drop a decision record.
        forged = list(lines)
        for index in range(len(forged) - 1, -1, -1):
            if '"action"' in forged[index]:
                del forged[index]
                break
        bad = work / "dropped_decision.jsonl"
        bad.write_text("\n".join(forged) + "\n")
        verdict = run([sys.executable, report, "audit", bad, cert])
        if verdict.returncode == 0:
            raise SystemExit("audit must notice a missing decision record")
        print(f"dropped record rejected: {(verdict.stdout + verdict.stderr).strip()}")

    print("PASS: provenance audit trail verified end to end")
    return 0


if __name__ == "__main__":
    sys.exit(main())
