// Gathering experiment subsystem tests: GatherScenarioSpec JSON round-trip
// and strictness, the gather-sampler registry, per-policy aggregate
// round-trips, lazy configuration generation, and the census runner's
// determinism contract — summaries and JSONL streams byte-identical at any
// thread count and across checkpoint/resume cycles, the PR-2 campaign
// guarantee extended to n-agent gathering.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>

#include "test_paths.hpp"
#include "exp/registry.hpp"
#include "gatherx/aggregate.hpp"
#include "gatherx/census.hpp"
#include "gatherx/scenario.hpp"
#include "support/json.hpp"

namespace aurv::gatherx {
namespace {

using support::Json;
using testpaths::scenario_path;
using testpaths::slurp;
using testpaths::temp_path;

/// Copy of `json` with `key` replaced (or appended) — Json::set refuses
/// duplicate keys by design, so edited-spec variants are rebuilt.
Json with_key(const Json& json, std::string_view key, Json value) {
  Json out = Json::object();
  bool replaced = false;
  for (const auto& [k, v] : json.as_object()) {
    if (k == key) {
      out.set(k, std::move(value));
      replaced = true;
    } else {
      out.set(k, v);
    }
  }
  if (!replaced) out.set(std::string(key), std::move(value));
  return out;
}

GatherScenarioSpec small_spec() {
  GatherScenarioSpec spec;
  spec.name = "test_census";
  spec.algorithm = "latecomers";
  spec.seed = 7;
  spec.sampler = "disk";
  spec.count = 48;
  spec.ranges.n_min = 2;
  spec.ranges.n_max = 4;
  spec.ranges.wake_max = 5.0;
  spec.max_events = 400'000;
  spec.horizon = numeric::Rational(1024);
  return spec;
}

// ------------------------------------------------------------------- spec --

TEST(GatherScenario, JsonRoundTrip) {
  GatherScenarioSpec spec = small_spec();
  spec.description = "round trip";
  spec.replications = 2;
  spec.policies = {gather::StopPolicy::AllVisible};
  spec.success_diameter = 2.5;
  spec.contact_slack = 1e-8;

  const GatherScenarioSpec reloaded = GatherScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(reloaded.to_json(), spec.to_json());
  EXPECT_EQ(reloaded.fingerprint(), spec.fingerprint());
  EXPECT_EQ(reloaded.name, "test_census");
  EXPECT_EQ(reloaded.replications, 2u);
  ASSERT_EQ(reloaded.policies.size(), 1u);
  EXPECT_EQ(reloaded.policies.front(), gather::StopPolicy::AllVisible);
  EXPECT_EQ(reloaded.ranges.n_max, 4u);
  ASSERT_TRUE(reloaded.success_diameter.has_value());
  EXPECT_EQ(*reloaded.success_diameter, 2.5);
  ASSERT_TRUE(reloaded.horizon.has_value());
  EXPECT_EQ(*reloaded.horizon, numeric::Rational(1024));
  EXPECT_EQ(reloaded.total_jobs(), 96u);
}

TEST(GatherScenario, FingerprintDetectsEdits) {
  const GatherScenarioSpec spec = small_spec();
  GatherScenarioSpec edited = spec;
  edited.seed = 8;
  EXPECT_NE(spec.fingerprint(), edited.fingerprint());
  GatherScenarioSpec fewer_policies = spec;
  fewer_policies.policies = {gather::StopPolicy::FirstSight};
  EXPECT_NE(spec.fingerprint(), fewer_policies.fingerprint());
}

TEST(GatherScenario, StrictParsingRejectsMistakes) {
  const Json valid = small_spec().to_json();

  // Misspelled key.
  EXPECT_THROW((void)GatherScenarioSpec::from_json(
                   with_key(valid, "algorithim", Json("latecomers"))),
               std::invalid_argument);

  EXPECT_THROW((void)GatherScenarioSpec::from_json(with_key(valid, "kind", Json("search"))),
               std::invalid_argument);

  Json bad_policies = Json::array();
  bad_policies.push_back(Json("first-sight"));
  bad_policies.push_back(Json("sometimes"));
  EXPECT_THROW((void)GatherScenarioSpec::from_json(
                   with_key(valid, "policies", std::move(bad_policies))),
               std::invalid_argument);

  Json twice = Json::array();
  twice.push_back(Json("all-visible"));
  twice.push_back(Json("all-visible"));
  EXPECT_THROW(
      (void)GatherScenarioSpec::from_json(with_key(valid, "policies", std::move(twice))),
      std::invalid_argument);

  EXPECT_THROW((void)GatherScenarioSpec::from_json(with_key(
                   valid, "source", with_key(valid.at("source"), "sampler", Json("no-such")))),
               std::invalid_argument);

  // Instance-dispatching algorithms cannot drive a gathering run: every
  // agent executes the *common* program, there is no two-agent instance.
  for (const char* instance_aware : {"boundary", "recommended"}) {
    EXPECT_THROW((void)GatherScenarioSpec::from_json(
                     with_key(valid, "algorithm", Json(instance_aware))),
                 std::invalid_argument)
        << instance_aware;
  }
}

TEST(GatherScenario, CommittedScenarioFilesLoad) {
  for (const char* leaf : {"gather_census_smoke.json", "gather_census_funnel.json"}) {
    const GatherScenarioSpec spec = GatherScenarioSpec::load(scenario_path(leaf));
    EXPECT_FALSE(spec.name.empty()) << leaf;
    EXPECT_GE(spec.total_jobs(), 1u) << leaf;
    EXPECT_FALSE(spec.policies.empty()) << leaf;
  }
}

// --------------------------------------------------------------- registry --

TEST(GatherRegistry, EverySamplerNameResolvesAndDraws) {
  const std::vector<std::string> expected = {"disk", "cluster", "ring", "spread"};
  EXPECT_EQ(exp::gather_sampler_names(), expected);
  std::mt19937_64 rng(123);
  agents::GatherSamplerRanges ranges;
  ranges.n_min = 2;
  ranges.n_max = 6;
  for (const std::string& name : exp::gather_sampler_names()) {
    const exp::GatherSamplerFn sampler = exp::resolve_gather_sampler(name);
    ASSERT_TRUE(sampler) << name;
    const agents::GatherInstance instance = sampler(rng, ranges);
    EXPECT_GT(instance.r, 0.0) << name;
    EXPECT_GE(instance.n(), 2u) << name;
    EXPECT_LE(instance.n(), 6u) << name;
    // The earliest agent wakes at 0 by the model convention.
    numeric::Rational earliest = instance.agents.front().wake;
    for (const gather::GatherAgent& agent : instance.agents)
      earliest = std::min(earliest, agent.wake);
    EXPECT_TRUE(earliest.is_zero()) << name;
  }
  EXPECT_THROW((void)exp::resolve_gather_sampler("nope"), std::invalid_argument);
}

TEST(GatherRegistry, CommonAlgorithmRejectsInstanceDispatchingEntries) {
  for (const char* name : {"aurv", "latecomers", "cgkk", "cgkk-ext", "wait-and-search"}) {
    const sim::AlgorithmFactory factory = exp::resolve_common_algorithm(name);
    ASSERT_TRUE(factory) << name;
    (void)factory();  // must produce a program without throwing
  }
  EXPECT_THROW((void)exp::resolve_common_algorithm("boundary"), std::invalid_argument);
  EXPECT_THROW((void)exp::resolve_common_algorithm("recommended"), std::invalid_argument);
  EXPECT_THROW((void)exp::resolve_common_algorithm("nope"), std::invalid_argument);
}

// -------------------------------------------------------------- aggregate --

TEST(GatherAggregate, JsonRoundTripIsLossless) {
  CensusOptions options;
  options.threads = 2;
  const CensusResult result = run_census(small_spec(), options);
  ASSERT_GT(result.aggregate.first_sight.gathered, 0u);
  ASSERT_GT(result.aggregate.all_visible.runs, 0u);
  EXPECT_EQ(GatherAggregate::from_json(result.aggregate.to_json()), result.aggregate);
}

TEST(GatherAggregate, SingleAgentRunsCountAsGatheredAtTimeZero) {
  GatherScenarioSpec spec = small_spec();
  spec.ranges.n_min = 1;
  spec.ranges.n_max = 1;
  spec.count = 8;
  const CensusResult result = run_census(spec);
  for (const gather::StopPolicy policy : spec.policies) {
    const PolicyAggregate& slice = result.aggregate.slice(policy);
    EXPECT_EQ(slice.runs, 8u) << gather::to_string(policy);
    EXPECT_EQ(slice.gathered, 8u) << gather::to_string(policy);
    EXPECT_EQ(slice.gather_time_max, 0.0) << gather::to_string(policy);
    EXPECT_EQ(slice.min_diameter_floor, 0.0) << gather::to_string(policy);
  }
}

// ----------------------------------------------------------------- runner --

TEST(Census, InstanceGenerationIsIndexDeterministic) {
  const GatherScenarioSpec spec = small_spec();
  const agents::GatherInstance a = census_instance(spec, 41);
  const agents::GatherInstance b = census_instance(spec, 3);
  EXPECT_EQ(census_instance(spec, 41).to_string(), a.to_string());
  EXPECT_EQ(census_instance(spec, 3).to_string(), b.to_string());
  EXPECT_NE(a.to_string(), b.to_string());
}

TEST(Census, ReplicationsShareTheSampledConfiguration) {
  GatherScenarioSpec spec = small_spec();
  spec.replications = 4;
  EXPECT_EQ(census_instance(spec, 0).to_string(), census_instance(spec, 3).to_string());
  EXPECT_NE(census_instance(spec, 3).to_string(), census_instance(spec, 4).to_string());
}

TEST(Census, SummaryIsThreadCountInvariant) {
  const GatherScenarioSpec spec = small_spec();
  CensusOptions serial;
  serial.threads = 1;
  serial.shard_size = 8;
  CensusOptions parallel;
  parallel.threads = 8;
  parallel.shard_size = 8;
  const std::string summary_1 = run_census(spec, serial).summary(spec).dump(2);
  const std::string summary_8 = run_census(spec, parallel).summary(spec).dump(2);
  EXPECT_EQ(summary_1, summary_8);  // bit-identical, including double sums
}

TEST(Census, CheckpointResumeMatchesOneShot) {
  const GatherScenarioSpec spec = small_spec();
  const std::string checkpoint = temp_path("gather_ck.json");
  const std::string jsonl = temp_path("gather_runs.jsonl");
  const std::string jsonl_oneshot = temp_path("gather_runs_oneshot.jsonl");
  std::filesystem::remove(checkpoint);

  CensusOptions oneshot;
  oneshot.threads = 4;
  oneshot.shard_size = 8;
  oneshot.jsonl_path = jsonl_oneshot;
  const std::string expected = run_census(spec, oneshot).summary(spec).dump(2);

  // Interrupt mid-run: 48 jobs / shard_size 8 = 6 shards; stop after 2.
  CensusOptions interrupted = oneshot;
  interrupted.jsonl_path = jsonl;
  interrupted.checkpoint_path = checkpoint;
  interrupted.checkpoint_every = 2;
  interrupted.max_shards = 2;
  const CensusResult partial = run_census(spec, interrupted);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.jobs_run, 16u);
  EXPECT_TRUE(std::filesystem::exists(checkpoint));

  CensusOptions resume = interrupted;
  resume.max_shards = 0;
  resume.resume = true;
  resume.threads = 1;  // resume on a different thread count, same summary
  const CensusResult finished = run_census(spec, resume);
  EXPECT_TRUE(finished.complete);
  EXPECT_EQ(finished.resumed_shards, 2u);
  EXPECT_EQ(finished.summary(spec).dump(2), expected);
  EXPECT_EQ(slurp(jsonl), slurp(jsonl_oneshot));  // stream identical too
}

TEST(Census, ResumeRefusesEditedSpecAndCampaignCheckpoints) {
  GatherScenarioSpec spec = small_spec();
  const std::string checkpoint = temp_path("gather_ck_edited.json");
  std::filesystem::remove(checkpoint);
  CensusOptions options;
  options.threads = 2;
  options.shard_size = 8;
  options.checkpoint_path = checkpoint;
  options.max_shards = 2;
  (void)run_census(spec, options);

  spec.seed ^= 1;  // a different census now
  options.resume = true;
  options.max_shards = 0;
  EXPECT_THROW((void)run_census(spec, options), std::invalid_argument);

  // A campaign checkpoint is a different kind — refused, not misread.
  spec.seed ^= 1;
  with_key(Json::load_file(checkpoint), "kind", Json("campaign-checkpoint"))
      .save_file(checkpoint);
  EXPECT_THROW((void)run_census(spec, options), std::invalid_argument);
}

TEST(Census, JsonlRecordsAreWellFormedAndInJobOrder) {
  const GatherScenarioSpec spec = small_spec();
  const std::string jsonl = temp_path("gather_order.jsonl");
  CensusOptions options;
  options.threads = 4;
  options.shard_size = 8;
  options.jsonl_path = jsonl;
  (void)run_census(spec, options);

  std::ifstream in(jsonl);
  std::string line;
  std::uint64_t expected_job = 0;
  while (std::getline(in, line)) {
    const Json record = Json::parse(line);
    EXPECT_EQ(record.at("job").as_uint(), expected_job);
    ++expected_job;
    EXPECT_GE(record.at("n").as_uint(), 2u);
    (void)record.at("funnel").as_bool();
    for (const gather::StopPolicy policy : spec.policies) {
      const Json& entry = record.at(gather::to_string(policy));
      (void)entry.at("gathered").as_bool();
      (void)entry.at("reason").as_string();
      (void)entry.at("events").as_uint();
    }
  }
  EXPECT_EQ(expected_job, spec.total_jobs());
}

}  // namespace
}  // namespace aurv::gatherx
