// Tests for the trace-analytics module.
#include <gtest/gtest.h>

#include "program/combinators.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"

namespace aurv::sim {
namespace {

using agents::Instance;
using geom::Vec2;
using program::go_east;
using program::go_west;
using program::replay;
using program::wait;

SimResult traced_run(const Instance& instance, program::Program a, program::Program b) {
  EngineConfig config;
  config.trace_capacity = 4096;
  return Engine(instance, config).run(std::move(a), std::move(b));
}

TEST(Metrics, DistanceSeriesMatchesTrace) {
  const Instance instance = Instance::synchronous(1.0, Vec2{10.0, 0.0}, 0.0, 0, 1);
  const SimResult result =
      traced_run(instance, replay({go_east(2), go_west(2)}), replay({wait(5)}));
  const std::vector<DistanceSample> series = distance_series(result.trace);
  ASSERT_EQ(series.size(), result.trace.points().size());
  for (std::size_t k = 0; k < series.size(); ++k) {
    EXPECT_EQ(series[k].time, result.trace.points()[k].time);
    EXPECT_EQ(series[k].distance, result.trace.points()[k].distance);
  }
  // The shuttle closes to 8 and returns to 10: extrema reflect that.
  const SeriesExtrema extrema = distance_extrema(result.trace);
  EXPECT_NEAR(extrema.min_value, 8.0, 1e-9);
  EXPECT_NEAR(extrema.max_value, 10.0, 1e-9);
  EXPECT_NEAR(extrema.min_time, 2.0, 1e-9);
}

TEST(Metrics, ProjectionGapTracksCanonicalLine) {
  // chi = -1, phi = 0: canonical line horizontal. A moving east shrinks the
  // signed gap coordinate(A) - coordinate(B) from -4 toward 0.
  const Instance instance = Instance::synchronous(0.5, Vec2{4.0, 1.0}, 0.0, 0, -1);
  const SimResult result =
      traced_run(instance, replay({go_east(3)}), replay({wait(10)}));
  const std::vector<ProjectionSample> series = projection_gap_series(instance, result.trace);
  ASSERT_GE(series.size(), 2u);
  EXPECT_NEAR(series.front().signed_gap, -4.0, 1e-9);
  EXPECT_NEAR(series.back().signed_gap, -1.0, 1e-9);
  for (std::size_t k = 1; k < series.size(); ++k) {
    EXPECT_GE(series[k].signed_gap, series[k - 1].signed_gap - 1e-12);  // monotone toward 0
  }
}

TEST(Metrics, Figure4CaseDetection) {
  const Instance instance = Instance::synchronous(0.5, Vec2{4.0, 1.0}, 0.0, 0, -1);
  // Crossing: A walks past B's projection.
  const SimResult crossing =
      traced_run(instance, replay({go_east(6)}), replay({wait(10)}));
  EXPECT_EQ(classify_figure4_case(instance, crossing.trace), Figure4Case::Crossing);
  // Monotone shrink: A stops short of it.
  const SimResult shrink = traced_run(instance, replay({go_east(3)}), replay({wait(10)}));
  EXPECT_EQ(classify_figure4_case(instance, shrink.trace), Figure4Case::MonotoneShrink);
  // Too-short traces are reported as unclassifiable.
  Trace empty;
  EXPECT_FALSE(classify_figure4_case(instance, empty).has_value());
}

TEST(Metrics, EmptyTraceYieldsEmptySeries) {
  const Instance instance = Instance::synchronous(1.0, Vec2{5.0, 0.0}, 0.0, 0, 1);
  Trace off;  // capacity 0: recording disabled
  EXPECT_TRUE(distance_series(off).empty());
  EXPECT_TRUE(projection_gap_series(instance, off).empty());
  const SeriesExtrema extrema = distance_extrema(off);
  EXPECT_EQ(extrema.min_value, 0.0);
  EXPECT_EQ(extrema.max_value, 0.0);
}

}  // namespace
}  // namespace aurv::sim
