// End-to-end I/O fault torture for the persistence layer.
//
// The stack's determinism guarantee (certificates and JSONL streams are
// byte-identical at any shard count and across resume) makes fault
// recovery *exactly* checkable: for a scripted fault at any mutating I/O
// operation of a run, the run must either
//
//   * complete in-process with byte-identical artifacts (the fault was
//     absorbed by bounded retry or by graceful spill degradation), or
//   * die (crash-stop / persistent error) and then a restarted invocation
//     — resuming iff the checkpoint survived — must land on byte-identical
//     artifacts.
//
// The harness runs a small checkpointed + spilled search and a small
// checkpointed + JSONL campaign once under the real vfs (ground truth),
// once under a counting FaultVfs to enumerate every mutating-operation
// site, then replays the run with one fault injected per (site x class)
// cell. Default: sites are sampled with a stride so the matrix stays
// PR-affordable; AURV_FAULT_EXHAUSTIVE=1 covers every site (nightly CI).
// On any mismatch the failing FaultSchedule is dumped as a JSON reproducer
// (AURV_FAULT_ARTIFACT_DIR, uploaded by CI).
//
// Also here: the resume diagnostics contract (missing / truncated /
// foreign checkpoints fail with a structured CheckpointError naming path
// and reason, and `aurv_sweep --resume` exits 5 with that one-liner on
// stderr) and the spill-degradation observability contract (a full disk
// mid-search degrades to in-memory with an identical certificate, visible
// only in BnbResult's non-certificate fields).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "test_paths.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/search_driver.hpp"
#include "search/bnb.hpp"
#include "search/box.hpp"
#include "support/jsonl.hpp"
#include "support/vfs.hpp"

namespace aurv {
namespace {

namespace fs = std::filesystem;
using numeric::Rational;
using support::FaultClass;
using support::FaultSchedule;
using support::FaultSpec;
using support::FaultVfs;
using support::ScopedVfs;
using support::VfsCrashStop;
using support::VfsError;
using testpaths::fresh_dir;
using testpaths::scenario_path;
using testpaths::slurp;
using testpaths::temp_path;

// ------------------------------------------------------------- fixtures --

/// A compressed version of the spill-test tuple-space search: 24 boxes in
/// waves of 6 still produces several waves, incumbent improvements, heavy
/// spilling at frontier_mem=2 and segment merges at max_segments=2 — every
/// persistence code path — while keeping a single run cheap enough to
/// replay hundreds of times.
exp::SearchSpec fault_search_spec() {
  exp::SearchSpec spec;
  spec.name = "test_search_fault";
  spec.algorithm = "aurv";
  spec.objective = "max-meet-time";
  spec.space.family = search::SearchSpace::Family::Tuple;
  spec.space.chi = -1;
  spec.space.fixed = {{"r", Rational(1)},
                      {"y", Rational(numeric::BigInt(6), numeric::BigInt(5))},
                      {"phi", Rational(0)}};
  spec.space.dim_names = {"x", "t"};
  spec.box = {search::Interval{Rational(numeric::BigInt(3), numeric::BigInt(2)),
                               Rational(numeric::BigInt(7), numeric::BigInt(2))},
              search::Interval{Rational(0), Rational(3)}};
  spec.limits.max_boxes = 24;
  spec.limits.wave_size = 6;
  spec.limits.min_width = Rational(numeric::BigInt(1), numeric::BigInt(32));
  spec.engine.max_events = 2'000'000;
  spec.engine.horizon = Rational(256);
  return spec;
}

exp::ScenarioSpec fault_campaign_spec() {
  exp::ScenarioSpec spec;
  spec.name = "test_campaign_fault";
  spec.algorithm = "aurv";
  spec.seed = 7;
  spec.sampler = "type2";
  spec.count = 24;
  spec.engine.max_events = 2'000'000;
  return spec;
}

/// The byte-identity subjects of a run: the certificate/summary artifact
/// and the JSONL stream.
struct Artifacts {
  std::string certificate;
  std::string stream;

  bool operator==(const Artifacts&) const = default;
};

constexpr const char* kSearchCheckpoint = "search.ckpt.json";
constexpr const char* kCampaignCheckpoint = "campaign.ckpt.json";

/// Runs (or resumes) the torture search inside `dir`. Every persistence
/// feature is on: incumbent log, delta checkpoints compacted every 2
/// waves, spill-to-disk frontier with merges.
Artifacts run_search_in(const std::string& dir, bool resume,
                        search::BnbResult* bnb_out = nullptr) {
  const exp::SearchSpec spec = fault_search_spec();
  exp::SearchOptions options;
  options.incumbent_log_path = dir + "/incumbents.jsonl";
  options.checkpoint_path = dir + "/" + kSearchCheckpoint;
  options.checkpoint_every = 2;
  options.spill_dir = dir + "/spill";
  options.frontier_mem = 2;
  options.spill_max_segments = 2;
  options.resume = resume;
  const exp::SearchRunResult result = exp::run_search(spec, options);
  if (bnb_out != nullptr) *bnb_out = result.bnb;
  return {result.certificate(spec).dump(2), slurp(options.incumbent_log_path)};
}

/// Runs (or resumes) the torture campaign inside `dir`: per-run JSONL plus
/// a checkpoint every 2 shards, two worker threads (flushes are serialized
/// in shard order, so the mutating-operation sequence stays deterministic).
Artifacts run_campaign_in(const std::string& dir, bool resume) {
  const exp::ScenarioSpec spec = fault_campaign_spec();
  exp::CampaignOptions options;
  options.threads = 2;
  options.shard_size = 4;
  options.jsonl_path = dir + "/runs.jsonl";
  options.checkpoint_path = dir + "/" + kCampaignCheckpoint;
  options.checkpoint_every = 2;
  options.resume = resume;
  const exp::CampaignResult result = exp::run_campaign(spec, options);
  return {result.summary(spec).dump(2), slurp(options.jsonl_path)};
}

// ------------------------------------------------------- torture harness --

struct FaultCase {
  FaultClass klass;
  bool sticky;
  const char* label;
};

/// One fault per cell: the four transient classes (absorbed in-process),
/// a sticky ENOSPC (dead disk: degrade or die-and-resume) and a scripted
/// crash-stop (always die-and-resume).
constexpr FaultCase kFaultCases[] = {
    {FaultClass::ShortWrite, false, "short-write"},
    {FaultClass::NoSpace, false, "enospc"},
    {FaultClass::FlushIo, false, "flush-eio"},
    {FaultClass::RenameFail, false, "rename-fail"},
    {FaultClass::NoSpace, true, "enospc-sticky"},
    {FaultClass::CrashStop, false, "crash-stop"},
};

/// Writes the failing schedule where CI can pick it up as the reproducer
/// artifact; returns the path for the failure message.
std::string dump_schedule_artifact(const FaultSchedule& schedule, const std::string& label) {
  const char* env = std::getenv("AURV_FAULT_ARTIFACT_DIR");
  const std::string dir =
      (env != nullptr && *env != '\0') ? std::string(env) : temp_path("fault_schedules");
  std::error_code ignored;
  fs::create_directories(dir, ignored);
  const std::string path = dir + "/" + label + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << schedule.to_json().dump(2) << "\n";
  return path;
}

void report_fault_failure(const FaultSchedule& schedule, const std::string& label,
                          const std::string& what) {
  const std::string artifact = dump_schedule_artifact(schedule, label);
  ADD_FAILURE() << label << ": " << what << "\n  reproducer schedule: " << artifact << "\n  "
                << schedule.to_json().dump();
}

/// Counts the mutating-operation sites of one clean run and sanity-checks
/// that the counting pass itself is byte-transparent.
template <typename RunFn>
std::uint64_t enumerate_sites(const Artifacts& expected, RunFn&& run_in_dir,
                              const std::string& dir) {
  FaultVfs counter{FaultSchedule{}};
  Artifacts counted;
  {
    ScopedVfs seam(counter);
    counted = run_in_dir(dir, false);
  }
  EXPECT_EQ(counted, expected) << "a pure counting FaultVfs must be a passthrough";
  EXPECT_FALSE(counter.op_log().empty());
  return counter.ops();
}

/// The matrix: for each sampled site x fault class, replay the run with
/// that one fault scripted. `tag` keys the artifact/trace labels;
/// `checkpoint_leaf` is how the restart decides fresh-vs-resume.
template <typename RunFn>
void torture_matrix(const char* tag, const Artifacts& expected, std::uint64_t total_ops,
                    const char* checkpoint_leaf, RunFn&& run_in_dir) {
  ASSERT_GT(total_ops, 20u) << "the torture run stopped exercising the persistence layer";
  const bool exhaustive = std::getenv("AURV_FAULT_EXHAUSTIVE") != nullptr;
  const std::uint64_t stride = exhaustive ? 1 : std::max<std::uint64_t>(1, total_ops / 12);

  for (std::uint64_t site = 0; site < total_ops; site += stride) {
    for (const FaultCase& fault_case : kFaultCases) {
      const std::string label = std::string(tag) + "_site" + std::to_string(site) + "_" +
                                fault_case.label;
      SCOPED_TRACE(label);
      const std::string dir = fresh_dir("fault_" + label);

      FaultSchedule schedule;
      schedule.faults.push_back(FaultSpec{site, "", fault_case.klass, fault_case.sticky});
      FaultVfs faulty(schedule);

      bool completed = false;
      std::string failure;
      Artifacts got;
      {
        ScopedVfs seam(faulty);
        try {
          got = run_in_dir(dir, false);
          completed = true;
        } catch (const VfsCrashStop& crash) {
          failure = "crash-stop after op " + std::to_string(crash.op_index) + " (" + crash.op +
                    " " + crash.path + ")";
        } catch (const VfsError& error) {
          failure = error.what();
        }
      }

      const bool transient = !fault_case.sticky && fault_case.klass != FaultClass::CrashStop;
      if (transient && !completed) {
        report_fault_failure(schedule, label, "transient fault was not absorbed: " + failure);
        continue;
      }
      if (fault_case.klass == FaultClass::CrashStop && completed) {
        report_fault_failure(schedule, label, "scripted crash-stop never fired");
        continue;
      }

      if (!completed) {
        // Crash-equivalent outcome: restart the invocation in the same
        // directory under the real vfs, resuming iff the checkpoint made
        // it to disk before the "process" died.
        const bool resume = fs::exists(dir + "/" + checkpoint_leaf);
        try {
          got = run_in_dir(dir, resume);
        } catch (const std::exception& error) {
          report_fault_failure(schedule, label,
                               std::string("restart (resume=") + (resume ? "true" : "false") +
                                   ") after [" + failure + "] failed: " + error.what());
          continue;
        }
      }

      if (got.certificate != expected.certificate) {
        report_fault_failure(schedule, label,
                             completed ? "completed run diverged from ground truth (certificate)"
                                       : "resumed run diverged from ground truth (certificate)");
      } else if (got.stream != expected.stream) {
        report_fault_failure(schedule, label,
                             completed ? "completed run diverged from ground truth (JSONL)"
                                       : "resumed run diverged from ground truth (JSONL)");
      }
    }
  }
}

// ------------------------------------------------------------- the tests --

TEST(FaultTorture, SearchSurvivesEveryFaultClassAtEveryIoSite) {
  const auto run = [](const std::string& dir, bool resume) { return run_search_in(dir, resume); };
  const Artifacts expected = run(fresh_dir("fault_search_truth"), false);
  const std::uint64_t total_ops = enumerate_sites(expected, run, fresh_dir("fault_search_count"));
  torture_matrix("search", expected, total_ops, kSearchCheckpoint, run);
}

TEST(FaultTorture, CampaignStreamSurvivesEveryFaultClassAtEveryIoSite) {
  const auto run = [](const std::string& dir, bool resume) {
    return run_campaign_in(dir, resume);
  };
  const Artifacts expected = run(fresh_dir("fault_campaign_truth"), false);
  const std::uint64_t total_ops =
      enumerate_sites(expected, run, fresh_dir("fault_campaign_count"));
  torture_matrix("campaign", expected, total_ops, kCampaignCheckpoint, run);
}

// ------------------------------------------- degradation observability --

TEST(FaultTorture, FullSpillDiskMidSearchDegradesWithIdenticalCertificate) {
  // Ground truth: the same spilled search on a healthy disk.
  search::BnbResult healthy_bnb;
  const std::string healthy_dir = fresh_dir("fault_degrade_truth");
  const Artifacts expected = run_search_in(healthy_dir, false, &healthy_bnb);
  EXPECT_GT(healthy_bnb.frontier_spilled, 0u) << "the spec must actually spill";
  EXPECT_FALSE(healthy_bnb.frontier_degraded);

  // The spill dir fills up mid-run: every segment write after the first
  // few fails with a persistent ENOSPC. "seg-" touches only segment
  // files, so checkpoints and the incumbent log stay healthy.
  FaultSchedule schedule;
  schedule.faults.push_back(FaultSpec{4, "seg-", FaultClass::NoSpace, true});
  FaultVfs faulty(schedule);

  search::BnbResult degraded_bnb;
  Artifacts degraded;
  {
    ScopedVfs seam(faulty);
    degraded = run_search_in(fresh_dir("fault_degrade_run"), false, &degraded_bnb);
  }

  // Byte-identical artifacts; the degradation is visible only in the
  // invocation-side observability fields, never in the certificate.
  EXPECT_EQ(degraded.certificate, expected.certificate);
  EXPECT_EQ(degraded.stream, expected.stream);
  EXPECT_TRUE(degraded_bnb.frontier_degraded);
  EXPECT_NE(degraded_bnb.frontier_degradation.find("injected"), std::string::npos)
      << degraded_bnb.frontier_degradation;
  EXPECT_EQ(degraded.certificate.find("degrad"), std::string::npos);
}

TEST(FaultTorture, DegradedCapacityBoundFailsWithAStructuredError) {
  // Same dead disk, but the operator capped the in-memory fallback far
  // below what this search needs: the run must fail with a structured
  // VfsError naming the bound instead of silently ballooning.
  FaultSchedule schedule;
  schedule.faults.push_back(FaultSpec{0, "seg-", FaultClass::NoSpace, true});
  FaultVfs faulty(schedule);

  const std::string dir = fresh_dir("fault_degrade_cap");
  const exp::SearchSpec spec = fault_search_spec();
  exp::SearchOptions options;
  options.incumbent_log_path = dir + "/incumbents.jsonl";
  options.spill_dir = dir + "/spill";
  options.frontier_mem = 2;
  options.frontier_degraded_capacity = 2;

  ScopedVfs seam(faulty);
  try {
    (void)exp::run_search(spec, options);
    FAIL() << "a degraded frontier over its capacity bound must not complete";
  } catch (const VfsError& error) {
    EXPECT_EQ(error.op(), "spill");
    EXPECT_NE(error.reason().find("degraded_capacity=2"), std::string::npos) << error.reason();
    EXPECT_FALSE(error.transient());
  }
}

// ------------------------------------------------- resume diagnostics --

void expect_checkpoint_error(const std::function<void()>& run, const std::string& path,
                             const std::string& reason_fragment) {
  try {
    run();
    FAIL() << "expected CheckpointError (" << reason_fragment << ") for " << path;
  } catch (const support::CheckpointError& error) {
    EXPECT_EQ(error.path(), path);
    EXPECT_NE(error.reason().find(reason_fragment), std::string::npos)
        << "reason: " << error.reason();
    const std::string line = error.structured();
    EXPECT_NE(line.find("checkpoint-resume"), std::string::npos) << line;
    EXPECT_NE(line.find(path), std::string::npos) << line;
    EXPECT_EQ(line.find('\n'), std::string::npos) << "structured() must be one line: " << line;
  }
}

TEST(ResumeDiagnostics, SearchResumeRefusesMissingTruncatedAndForeignCheckpoints) {
  const std::string dir = fresh_dir("resume_diag_search");
  const std::string checkpoint = dir + "/" + kSearchCheckpoint;
  const auto attempt = [&] { (void)run_search_in(dir, true); };

  expect_checkpoint_error(attempt, checkpoint, "missing");

  std::ofstream(checkpoint, std::ios::binary) << "{\"kind\": \"search-checkpo";  // torn write
  expect_checkpoint_error(attempt, checkpoint, "unreadable or truncated");

  std::ofstream(checkpoint, std::ios::binary | std::ios::trunc)
      << "{\"kind\": \"campaign-checkpoint\", \"schema\": 1}";
  expect_checkpoint_error(attempt, checkpoint, "foreign");
}

TEST(ResumeDiagnostics, CampaignResumeRefusesMissingTruncatedAndForeignCheckpoints) {
  const std::string dir = fresh_dir("resume_diag_campaign");
  const std::string checkpoint = dir + "/" + kCampaignCheckpoint;
  const auto attempt = [&] { (void)run_campaign_in(dir, true); };

  expect_checkpoint_error(attempt, checkpoint, "missing");

  std::ofstream(checkpoint, std::ios::binary) << "not json at all";
  expect_checkpoint_error(attempt, checkpoint, "unreadable or truncated");

  std::ofstream(checkpoint, std::ios::binary | std::ios::trunc)
      << "{\"kind\": \"search-checkpoint\", \"schema\": 1}";
  expect_checkpoint_error(attempt, checkpoint, "foreign");
}

// The CLI contract on top of the same errors: exit code 5 and the
// structured one-liner on stderr, for both sweep kinds.

int run_cli(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(ResumeDiagnostics, CliResumeFailuresExitFiveWithAStructuredStderrLine) {
  if (!fs::exists("./aurv_sweep")) GTEST_SKIP() << "aurv_sweep binary not built next to tests";
  const std::string dir = fresh_dir("resume_diag_cli");
  const std::string checkpoint = dir + "/cli.ckpt.json";
  const std::string stderr_path = dir + "/stderr.txt";

  const auto search_cmd = "./aurv_sweep search " + scenario_path("search_smoke.json") +
                          " --checkpoint " + checkpoint + " --resume --quiet --out " + dir +
                          "/out.json 2> " + stderr_path;

  // Missing checkpoint.
  EXPECT_EQ(run_cli(search_cmd), 5);
  std::string line = slurp(stderr_path);
  EXPECT_NE(line.find("checkpoint-resume"), std::string::npos) << line;
  EXPECT_NE(line.find(checkpoint), std::string::npos) << line;
  EXPECT_NE(line.find("missing"), std::string::npos) << line;

  // Truncated checkpoint.
  std::ofstream(checkpoint, std::ios::binary) << "{\"kind\": \"search-checkpo";
  EXPECT_EQ(run_cli(search_cmd), 5);
  EXPECT_NE(slurp(stderr_path).find("unreadable or truncated"), std::string::npos);

  // Foreign checkpoint.
  std::ofstream(checkpoint, std::ios::binary | std::ios::trunc)
      << "{\"kind\": \"campaign-checkpoint\", \"schema\": 1}";
  EXPECT_EQ(run_cli(search_cmd), 5);
  EXPECT_NE(slurp(stderr_path).find("foreign"), std::string::npos);

  // The campaign runner path through `aurv_sweep run`.
  const auto run_cmd = "./aurv_sweep run " + scenario_path("smoke_type2.json") +
                       " --checkpoint " + checkpoint + " --resume --quiet --out " + dir +
                       "/out.json 2> " + stderr_path;
  std::ofstream(checkpoint, std::ios::binary | std::ios::trunc)
      << "{\"kind\": \"search-checkpoint\", \"schema\": 1}";
  EXPECT_EQ(run_cli(run_cmd), 5);
  line = slurp(stderr_path);
  EXPECT_NE(line.find("checkpoint-resume"), std::string::npos) << line;
  EXPECT_NE(line.find("foreign"), std::string::npos) << line;
}

}  // namespace
}  // namespace aurv
