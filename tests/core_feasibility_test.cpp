// Tests for the Theorem 3.1 feasibility characterization and the type
// taxonomy driving Algorithm 1.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/feasibility.hpp"
#include "geom/angle.hpp"

namespace aurv::core {
namespace {

using agents::Instance;
using geom::Vec2;
using numeric::Rational;

TEST(Feasibility, TrivialOverlapPrecedesEverything) {
  const Classification c =
      classify(Instance::synchronous(5.0, Vec2{3.0, 0.0}, 0.0, 0, 1));
  EXPECT_EQ(c.kind, InstanceKind::TrivialOverlap);
  EXPECT_TRUE(c.feasible);
  EXPECT_TRUE(c.covered_by_aurv);
}

TEST(Feasibility, NonSynchronousAlwaysFeasible) {
  // Theorem 3.1(1). tau != 1 -> type 3; tau = 1, v != 1 -> type 4.
  const Classification slow_clock =
      classify(Instance(1.0, Vec2{5, 0}, 0.0, /*tau=*/2, /*v=*/1, /*t=*/0, 1));
  EXPECT_EQ(slow_clock.kind, InstanceKind::Type3);
  EXPECT_TRUE(slow_clock.feasible);
  EXPECT_FALSE(slow_clock.synchronous);

  const Classification fast_speed =
      classify(Instance(1.0, Vec2{5, 0}, 0.0, /*tau=*/1, /*v=*/2, /*t=*/0, 1));
  EXPECT_EQ(fast_speed.kind, InstanceKind::Type4);
  EXPECT_TRUE(fast_speed.feasible);

  // Even with chi = -1, zero delay and phi = 0 — differences in dynamics
  // break symmetry (no synchronous clause applies).
  const Classification mirrored(
      classify(Instance(1.0, Vec2{5, 0}, 0.0, Rational(numeric::BigInt(3), numeric::BigInt(2)),
                        1, 0, -1)));
  EXPECT_EQ(mirrored.kind, InstanceKind::Type3);
  EXPECT_TRUE(mirrored.feasible);
}

TEST(Feasibility, SynchronousChiPlusRotated) {
  // Theorem 3.1(2a): chi=+1, phi != 0 feasible regardless of t.
  const Classification c =
      classify(Instance::synchronous(1.0, Vec2{5, 0}, 1.0, 0, 1));
  EXPECT_EQ(c.kind, InstanceKind::Type4);
  EXPECT_TRUE(c.feasible);
  EXPECT_TRUE(c.synchronous);
}

TEST(Feasibility, SynchronousShiftClause2b) {
  // chi=+1, phi=0: feasible iff t >= dist - r (Lemma 3.8); strict -> type 2,
  // equality -> S1, below -> infeasible.
  const Vec2 b{3.0, 4.0};  // dist = 5
  const double r = 1.0;
  const Classification above = classify(Instance::synchronous(r, b, 0.0, 5, 1));
  EXPECT_EQ(above.kind, InstanceKind::Type2);
  EXPECT_TRUE(above.covered_by_aurv);
  EXPECT_NEAR(above.boundary_slack, 1.0, 1e-12);

  const Classification at = classify(Instance::synchronous(r, b, 0.0, 4, 1));
  EXPECT_EQ(at.kind, InstanceKind::BoundaryS1);
  EXPECT_TRUE(at.feasible);
  EXPECT_FALSE(at.covered_by_aurv);

  const Classification below = classify(Instance::synchronous(r, b, 0.0, 3, 1));
  EXPECT_EQ(below.kind, InstanceKind::Infeasible);
  EXPECT_FALSE(below.feasible);
}

TEST(Feasibility, SynchronousMirroredClause2c) {
  // chi=-1: feasible iff t >= dist(projA, projB) - r (Lemma 3.9). Projection
  // distance depends on phi: b on the line direction phi/2 projects fully.
  const double phi = geom::kPi / 2;
  const Vec2 along = geom::unit_vector(phi / 2.0);
  const Vec2 b = 4.0 * along + 2.0 * along.perp();  // dist_proj = 4
  const double r = 1.0;
  const Classification above = classify(Instance::synchronous(r, b, phi, 4, -1));
  EXPECT_EQ(above.kind, InstanceKind::Type1);
  EXPECT_NEAR(above.boundary_slack, 1.0, 1e-9);

  const Classification at =
      classify(Instance::synchronous(r, b, phi, 3, -1), /*boundary_eps=*/1e-9);
  EXPECT_EQ(at.kind, InstanceKind::BoundaryS2);
  EXPECT_TRUE(at.feasible);
  EXPECT_FALSE(at.covered_by_aurv);

  const Classification below = classify(Instance::synchronous(r, b, phi, 2, -1));
  EXPECT_EQ(below.kind, InstanceKind::Infeasible);
  // Large lateral separation alone cannot rescue a chi=-1 instance: only
  // the projection distance matters.
  const Vec2 far_lateral = 0.5 * along + 50.0 * along.perp();
  const Classification lateral =
      classify(Instance::synchronous(r, far_lateral, phi, 0, -1));
  EXPECT_EQ(lateral.kind, InstanceKind::Type1);  // dist_proj = 0.5 <= r - t... feasible
  EXPECT_TRUE(lateral.feasible);
}

TEST(Feasibility, PredicatesAgreeWithClassification) {
  std::mt19937_64 rng(97);
  std::uniform_real_distribution<double> coord(-6.0, 6.0);
  std::uniform_real_distribution<double> angle(0.0, geom::kTwoPi);
  std::uniform_int_distribution<int> delay(0, 8);
  for (int k = 0; k < 500; ++k) {
    const bool sync = k % 2 == 0;
    const Rational tau = sync ? Rational(1) : Rational(numeric::BigInt(3), numeric::BigInt(2));
    const Instance instance(0.75, Vec2{coord(rng), coord(rng)},
                            (k % 3 == 0) ? 0.0 : angle(rng), tau, 1, delay(rng),
                            (k % 5 < 2) ? -1 : 1);
    const Classification c = classify(instance);
    EXPECT_EQ(is_feasible(instance), c.feasible);
    EXPECT_EQ(is_covered_by_aurv(instance), c.covered_by_aurv);
    // Structural consistency.
    if (c.covered_by_aurv) {
      EXPECT_TRUE(c.feasible);
    }
    if (c.kind == InstanceKind::Infeasible) {
      EXPECT_FALSE(c.feasible);
    }
    if (c.kind == InstanceKind::BoundaryS1 || c.kind == InstanceKind::BoundaryS2) {
      EXPECT_TRUE(c.feasible);
      EXPECT_FALSE(c.covered_by_aurv);
      EXPECT_NEAR(c.boundary_slack, 0.0, 1e-9);
    }
    EXPECT_FALSE(c.clause.empty());
  }
}

TEST(Feasibility, BoundaryEpsControlsBoundaryWidth) {
  const Vec2 b{3.0, 4.0};
  // Slack of 1e-6 counts as boundary only with a loose epsilon.
  const Instance near_boundary =
      Instance::synchronous(1.0, b, 0.0, Rational::from_double(4.0 + 1e-6), 1);
  EXPECT_EQ(classify(near_boundary, 1e-12).kind, InstanceKind::Type2);
  EXPECT_EQ(classify(near_boundary, 1e-3).kind, InstanceKind::BoundaryS1);
}

TEST(Feasibility, KindNamesAreStable) {
  EXPECT_EQ(to_string(InstanceKind::Type1), "type-1");
  EXPECT_EQ(to_string(InstanceKind::BoundaryS2), "boundary-S2");
  EXPECT_EQ(to_string(InstanceKind::Infeasible), "infeasible");
  EXPECT_EQ(to_string(InstanceKind::TrivialOverlap), "trivial-overlap");
}

TEST(Feasibility, InfeasibleInstancesHaveInvariantDistanceArgument) {
  // The "only if" of Theorem 3.1 for the fully symmetric case: identical
  // attributes, t = 0, chi = +1, phi = 0 — the relative displacement of the
  // two agents can never change, whatever the algorithm.
  const Classification c =
      classify(Instance::synchronous(1.0, Vec2{5.0, 0.0}, 0.0, 0, 1));
  EXPECT_EQ(c.kind, InstanceKind::Infeasible);
  EXPECT_LT(c.boundary_slack, 0.0);
}

}  // namespace
}  // namespace aurv::core
