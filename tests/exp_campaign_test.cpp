// Campaign subsystem tests: spec JSON round-trip, registry completeness,
// thread-count invariance of aggregates, and checkpoint/resume equivalence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "test_paths.hpp"
#include "exp/aggregate.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "support/json.hpp"

namespace aurv::exp {
namespace {

using support::Json;
using testpaths::slurp;
using testpaths::temp_path;

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.name = "test";
  spec.algorithm = "aurv";
  spec.seed = 7;
  spec.sampler = "type2";
  spec.count = 60;
  spec.engine.max_events = 2'000'000;
  return spec;
}

// ------------------------------------------------------------------ spec --

TEST(Scenario, JsonRoundTrip) {
  ScenarioSpec spec = small_spec();
  spec.description = "round trip";
  spec.replications = 3;
  spec.ranges.r_min = 0.75;
  spec.ranges.margin_max = 1.5;
  spec.engine.contact_slack = 1e-8;
  spec.engine.horizon = numeric::Rational::from_string("355/113");
  spec.engine.r_a = 1.25;

  const ScenarioSpec reloaded = ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(reloaded.to_json(), spec.to_json());
  EXPECT_EQ(reloaded.fingerprint(), spec.fingerprint());
  EXPECT_EQ(reloaded.name, "test");
  EXPECT_EQ(reloaded.replications, 3u);
  EXPECT_EQ(reloaded.ranges.r_min, 0.75);
  ASSERT_TRUE(reloaded.engine.horizon.has_value());
  EXPECT_EQ(*reloaded.engine.horizon, numeric::Rational::from_string("355/113"));
  ASSERT_TRUE(reloaded.engine.r_a.has_value());
  EXPECT_EQ(*reloaded.engine.r_a, 1.25);
  EXPECT_EQ(reloaded.total_jobs(), 180u);
}

TEST(Scenario, GridRoundTripPreservesExactRationals) {
  ScenarioSpec spec;
  spec.name = "grid";
  spec.grid.push_back(agents::Instance(1.0, {2.0, 0.6}, 0.25, numeric::Rational(1),
                                       numeric::Rational::from_string("3/2"),
                                       numeric::Rational::from_string("7/3"), -1));
  spec.grid.push_back(agents::Instance::synchronous(2.0, {1.0, 0.5}, 0.0, 0, 1));

  const ScenarioSpec reloaded = ScenarioSpec::from_json(spec.to_json());
  ASSERT_EQ(reloaded.grid.size(), 2u);
  EXPECT_EQ(reloaded.grid[0].v(), numeric::Rational::from_string("3/2"));
  EXPECT_EQ(reloaded.grid[0].t(), numeric::Rational::from_string("7/3"));
  EXPECT_EQ(reloaded.grid[0].chi(), -1);
  EXPECT_EQ(reloaded.grid[0].b_start(), spec.grid[0].b_start());
  EXPECT_EQ(reloaded.to_json(), spec.to_json());
}

TEST(Scenario, FingerprintDetectsEdits) {
  const ScenarioSpec spec = small_spec();
  ScenarioSpec edited = spec;
  edited.seed = 8;
  EXPECT_NE(spec.fingerprint(), edited.fingerprint());
}

TEST(Scenario, StrictParsingRejectsMistakes) {
  const Json valid = small_spec().to_json();

  Json typo = valid;
  typo.set("algorithim", Json("aurv"));  // misspelled key
  EXPECT_THROW((void)ScenarioSpec::from_json(typo), std::invalid_argument);

  EXPECT_THROW((void)ScenarioSpec::from_json(Json::parse(
                   R"({"name":"x","source":{"sampler":"type1","count":1,"grid":[]}})")),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::from_json(Json::parse(R"({"name":"x","source":{}})")),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::from_json(Json::parse(
                   R"({"source":{"sampler":"type1","count":0}})")),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::from_json(Json::parse(
                   R"({"source":{"sampler":"no-such","count":1}})")),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::from_json(Json::parse(
                   R"({"algorithm":"no-such","source":{"sampler":"type1","count":1}})")),
               std::invalid_argument);
}

// -------------------------------------------------------------- registry --

TEST(Registry, EveryAlgorithmNameResolvesAndBuildsAProgram) {
  const agents::Instance probe = agents::Instance::synchronous(1.0, {3.0, 4.0}, 0.0, 4, 1);
  const std::vector<std::string> expected = {"aurv",   "latecomers",      "cgkk",    "cgkk-ext",
                                             "wait-and-search", "boundary", "recommended"};
  EXPECT_EQ(algorithm_names(), expected);
  for (const std::string& name : algorithm_names()) {
    const sim::AlgorithmFactory factory = resolve_algorithm(name)(probe);
    ASSERT_TRUE(factory) << name;
    (void)factory();  // must produce a program without throwing
  }
  EXPECT_THROW((void)resolve_algorithm("nope"), std::invalid_argument);
}

TEST(Registry, EverySamplerNameResolvesAndDraws) {
  const std::vector<std::string> expected = {"type1",       "type2",       "type3",     "type4",
                                             "boundary-s1", "boundary-s2", "infeasible"};
  EXPECT_EQ(sampler_names(), expected);
  std::mt19937_64 rng(123);
  for (const std::string& name : sampler_names()) {
    const SamplerFn sampler = resolve_sampler(name);
    ASSERT_TRUE(sampler) << name;
    const agents::Instance instance = sampler(rng, {});
    EXPECT_GT(instance.r(), 0.0) << name;
  }
  EXPECT_THROW((void)resolve_sampler("nope"), std::invalid_argument);
}

TEST(Registry, UnknownNameErrorListsKnownNames) {
  try {
    (void)resolve_sampler("typo3");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("type3"), std::string::npos);
  }
}

// ------------------------------------------------------------- aggregate --

TEST(Aggregate, JsonRoundTripIsLossless) {
  CampaignOptions options;
  options.threads = 2;
  const CampaignResult result = run_campaign(small_spec(), options);
  const CampaignAggregate& aggregate = result.aggregate;
  ASSERT_GT(aggregate.met, 0u);
  EXPECT_EQ(CampaignAggregate::from_json(aggregate.to_json()), aggregate);
}

TEST(Aggregate, HistogramAndPercentiles) {
  EXPECT_EQ(meet_time_bucket(1.5), CampaignAggregate::kHistogramOffset);
  EXPECT_EQ(meet_time_bucket(0.75), CampaignAggregate::kHistogramOffset - 1);
  EXPECT_EQ(meet_time_bucket(0.0), 0);

  CampaignAggregate aggregate;
  sim::SimResult run;
  run.met = true;
  run.reason = sim::StopReason::Rendezvous;
  for (int k = 0; k < 99; ++k) {
    run.meet_time = 1.5;  // bucket upper edge 2
    aggregate.add(run);
  }
  run.meet_time = 1000.0;  // one huge outlier
  aggregate.add(run);
  EXPECT_EQ(aggregate.meet_time_percentile(0.50), 2.0);
  EXPECT_EQ(aggregate.meet_time_percentile(0.99), 2.0);
  EXPECT_EQ(aggregate.meet_time_percentile(1.0), 1024.0);
  EXPECT_EQ(aggregate.meet_time_min, 1.5);
  EXPECT_EQ(aggregate.meet_time_max, 1000.0);
}

// ---------------------------------------------------------------- runner --

TEST(Campaign, InstanceGenerationIsIndexDeterministic) {
  const ScenarioSpec spec = small_spec();
  // Same (spec, job) -> identical instance, in any call order.
  const agents::Instance a = campaign_instance(spec, 41);
  const agents::Instance b = campaign_instance(spec, 3);
  EXPECT_EQ(campaign_instance(spec, 41).to_string(), a.to_string());
  EXPECT_EQ(campaign_instance(spec, 3).to_string(), b.to_string());
  EXPECT_NE(a.to_string(), b.to_string());
}

TEST(Campaign, ReplicationsShareTheSampledInstance) {
  ScenarioSpec spec = small_spec();
  spec.replications = 4;
  EXPECT_EQ(campaign_instance(spec, 0).to_string(), campaign_instance(spec, 3).to_string());
  EXPECT_NE(campaign_instance(spec, 3).to_string(), campaign_instance(spec, 4).to_string());
}

TEST(Campaign, SummaryIsThreadCountInvariant) {
  const ScenarioSpec spec = small_spec();
  CampaignOptions serial;
  serial.threads = 1;
  serial.shard_size = 16;
  CampaignOptions parallel;
  parallel.threads = 8;
  parallel.shard_size = 16;
  const std::string summary_1 = run_campaign(spec, serial).summary(spec).dump(2);
  const std::string summary_8 = run_campaign(spec, parallel).summary(spec).dump(2);
  EXPECT_EQ(summary_1, summary_8);  // bit-identical, including double sums
}

TEST(Campaign, GridModeRunsEveryInstance) {
  ScenarioSpec spec;
  spec.name = "grid";
  spec.grid.push_back(agents::Instance::synchronous(2.0, {1.0, 0.0}, 0.0, 0, 1));
  spec.grid.push_back(agents::Instance::synchronous(2.0, {0.5, 0.5}, 0.0, 0, 1));
  spec.replications = 2;
  CampaignOptions options;
  options.threads = 2;
  const CampaignResult result = run_campaign(spec, options);
  EXPECT_EQ(result.jobs, 4u);
  EXPECT_EQ(result.aggregate.runs, 4u);
  EXPECT_EQ(result.aggregate.met, 4u);  // trivial overlaps all meet
}

TEST(Campaign, CheckpointResumeMatchesOneShot) {
  const ScenarioSpec spec = small_spec();
  const std::string checkpoint = temp_path("campaign_ck.json");
  const std::string jsonl = temp_path("campaign_runs.jsonl");
  const std::string jsonl_oneshot = temp_path("campaign_runs_oneshot.jsonl");
  std::filesystem::remove(checkpoint);

  CampaignOptions oneshot;
  oneshot.threads = 4;
  oneshot.shard_size = 8;
  oneshot.jsonl_path = jsonl_oneshot;
  const std::string expected = run_campaign(spec, oneshot).summary(spec).dump(2);

  // Interrupt mid-run: 60 jobs / shard_size 8 = 8 shards; stop after 3.
  CampaignOptions interrupted = oneshot;
  interrupted.jsonl_path = jsonl;
  interrupted.checkpoint_path = checkpoint;
  interrupted.checkpoint_every = 2;
  interrupted.max_shards = 3;
  const CampaignResult partial = run_campaign(spec, interrupted);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.jobs_run, 24u);
  EXPECT_TRUE(std::filesystem::exists(checkpoint));

  CampaignOptions resume = interrupted;
  resume.max_shards = 0;
  resume.resume = true;
  resume.threads = 1;  // resume on a different thread count, same summary
  const CampaignResult finished = run_campaign(spec, resume);
  EXPECT_TRUE(finished.complete);
  EXPECT_EQ(finished.resumed_shards, 3u);
  EXPECT_EQ(finished.summary(spec).dump(2), expected);
  EXPECT_EQ(slurp(jsonl), slurp(jsonl_oneshot));  // stream identical too
}

TEST(Campaign, ResumeRefusesADifferentJsonlPath) {
  const ScenarioSpec spec = small_spec();
  const std::string checkpoint = temp_path("campaign_ck_jsonl.json");
  std::filesystem::remove(checkpoint);
  CampaignOptions options;
  options.threads = 2;
  options.shard_size = 8;
  options.checkpoint_path = checkpoint;
  options.jsonl_path = temp_path("campaign_a.jsonl");
  options.max_shards = 2;
  (void)run_campaign(spec, options);

  options.resume = true;
  options.max_shards = 0;
  options.jsonl_path = temp_path("campaign_b.jsonl");  // would truncate the wrong file
  EXPECT_THROW((void)run_campaign(spec, options), std::invalid_argument);
}

TEST(Campaign, ResumeRefusesEditedSpec) {
  ScenarioSpec spec = small_spec();
  const std::string checkpoint = temp_path("campaign_ck_edited.json");
  std::filesystem::remove(checkpoint);
  CampaignOptions options;
  options.threads = 2;
  options.shard_size = 8;
  options.checkpoint_path = checkpoint;
  options.max_shards = 2;
  (void)run_campaign(spec, options);

  spec.seed ^= 1;  // a different campaign now
  options.resume = true;
  options.max_shards = 0;
  EXPECT_THROW((void)run_campaign(spec, options), std::invalid_argument);
}

TEST(Campaign, JsonlRecordsAreWellFormedAndInJobOrder) {
  const ScenarioSpec spec = small_spec();
  const std::string jsonl = temp_path("campaign_order.jsonl");
  CampaignOptions options;
  options.threads = 4;
  options.shard_size = 8;
  options.jsonl_path = jsonl;
  (void)run_campaign(spec, options);

  std::ifstream in(jsonl);
  std::string line;
  std::uint64_t expected_job = 0;
  while (std::getline(in, line)) {
    const Json record = Json::parse(line);
    EXPECT_EQ(record.at("job").as_uint(), expected_job);
    ++expected_job;
    (void)record.at("reason").as_string();
    (void)record.at("events").as_uint();
  }
  EXPECT_EQ(expected_job, spec.total_jobs());
}

TEST(Campaign, ProgressReportsMonotonicallyToTotal) {
  const ScenarioSpec spec = small_spec();
  CampaignOptions options;
  options.threads = 4;
  options.shard_size = 16;
  std::vector<std::uint64_t> seen;
  options.progress = [&](std::uint64_t done, std::uint64_t total) {
    EXPECT_EQ(total, spec.total_jobs());
    seen.push_back(done);
  };
  (void)run_campaign(spec, options);
  ASSERT_FALSE(seen.empty());
  for (std::size_t k = 1; k < seen.size(); ++k) EXPECT_GT(seen[k], seen[k - 1]);
  EXPECT_EQ(seen.back(), spec.total_jobs());
}

}  // namespace
}  // namespace aurv::exp
