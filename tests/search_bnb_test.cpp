// Worst-case search subsystem tests: canonical box refinement, search-space
// families, objective registry and bounds, SearchSpec JSON round-trip, and
// the branch-and-bound's determinism guarantees — byte-identical incumbent
// logs and certificates at any shard count and across checkpoint/resume
// cycles — plus the Theorem 4.1 rediscovery acceptance: the S2 near-miss
// scenario must find a configuration at least as close to rendezvous as the
// committed clearance bound, far inside the analytic adversary's margin.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "test_paths.hpp"
#include "core/adversary.hpp"
#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"
#include "exp/registry.hpp"
#include "exp/scenario.hpp"
#include "exp/search_driver.hpp"
#include "search/bnb.hpp"
#include "search/box.hpp"
#include "search/objective.hpp"

namespace aurv::search {
namespace {

using exp::SearchOptions;
using exp::SearchSpec;
using numeric::Rational;
using support::Json;
using testpaths::scenario_path;
using testpaths::slurp;
using testpaths::temp_path;

/// A fast tuple-space max-meet-time spec used by the determinism tests.
SearchSpec small_spec() {
  SearchSpec spec;
  spec.name = "test_search";
  spec.algorithm = "aurv";
  spec.objective = "max-meet-time";
  spec.space.family = SearchSpace::Family::Tuple;
  spec.space.chi = -1;
  spec.space.fixed = {{"r", Rational(1)}, {"y", Rational(numeric::BigInt(6), numeric::BigInt(5))},
                      {"phi", Rational(0)}};
  spec.space.dim_names = {"x", "t"};
  spec.box = {Interval{Rational(numeric::BigInt(3), numeric::BigInt(2)),
                       Rational(numeric::BigInt(7), numeric::BigInt(2))},
              Interval{Rational(0), Rational(3)}};
  spec.limits.max_boxes = 48;
  spec.limits.wave_size = 8;
  spec.limits.min_width = Rational(numeric::BigInt(1), numeric::BigInt(64));
  spec.engine.max_events = 2'000'000;
  spec.engine.horizon = Rational(256);
  return spec;
}

// ------------------------------------------------------------------- boxes --

TEST(ParamBox, CanonicalBisectionSplitsWidestDimensionTiesLowestIndex) {
  const ParamBox box({Interval{Rational(0), Rational(2)}, Interval{Rational(0), Rational(4)}});
  EXPECT_EQ(box.split_dimension(), 1u);
  EXPECT_EQ(box.width(), Rational(4));

  const auto [lower, upper] = box.bisect();
  EXPECT_EQ(lower.id(), "0");
  EXPECT_EQ(upper.id(), "1");
  EXPECT_EQ(lower.dim(1).hi, Rational(2));
  EXPECT_EQ(upper.dim(1).lo, Rational(2));
  EXPECT_EQ(lower.dim(0), box.dim(0));  // untouched dimension

  // Tie: both dimensions now width 2 -> dimension 0 splits next.
  EXPECT_EQ(lower.split_dimension(), 0u);

  // Exact midpoints: no drift however deep the refinement goes.
  const auto [ll, lu] = lower.bisect();
  (void)lu;
  EXPECT_EQ(ll.dim(0).hi, Rational(1));
  EXPECT_EQ(ll.id(), "00");
  EXPECT_EQ(ll.midpoint()[0], Rational(numeric::BigInt(1), numeric::BigInt(2)));
}

TEST(ParamBox, JsonRoundTripIsLossless) {
  const ParamBox box({Interval{Rational::from_string("1/3"), Rational::from_string("22/7")},
                      Interval{Rational(-2), Rational(5)}},
                     "0110");
  const ParamBox reloaded = ParamBox::from_json(box.to_json());
  EXPECT_EQ(reloaded, box);
  EXPECT_EQ(reloaded.id(), "0110");
}

TEST(ParamBox, RejectsMalformedInput) {
  EXPECT_THROW(ParamBox({Interval{Rational(2), Rational(1)}}), std::logic_error);
  EXPECT_THROW(ParamBox({Interval{Rational(0), Rational(1)}}, "0x1"), std::logic_error);
  EXPECT_THROW(ParamBox({}), std::logic_error);
}

// ------------------------------------------------------------------- space --

TEST(SearchSpace, TupleFamilyMapsPointsToInstances) {
  SearchSpace space;
  space.family = SearchSpace::Family::Tuple;
  space.chi = -1;
  space.dim_names = {"x", "t"};
  space.fixed = {{"y", Rational(2)}};
  space.validate();

  const agents::Instance instance =
      space.instance_at({Rational(3), Rational::from_string("3/2")});
  EXPECT_EQ(instance.b_start().x, 3.0);
  EXPECT_EQ(instance.b_start().y, 2.0);
  EXPECT_EQ(instance.t(), Rational::from_string("3/2"));
  EXPECT_EQ(instance.chi(), -1);
  EXPECT_TRUE(instance.is_synchronous());  // tau/v default to 1
  EXPECT_TRUE(space.synchronous());
}

TEST(SearchSpace, BoundaryFamiliesLandExactlyOnTheExceptionSets) {
  SearchSpace s2;
  s2.family = SearchSpace::Family::BoundaryS2;
  s2.dim_names = {"half_phi"};
  s2.validate();
  // Any point of the boundary-s2 family classifies as S2 (Theorem 4.1's
  // manifold), by the same construction as the analytic adversary.
  const agents::Instance instance = s2.instance_at({Rational::from_string("1/3")});
  EXPECT_EQ(core::classify(instance, 1e-9).kind, core::InstanceKind::BoundaryS2);

  SearchSpace s1;
  s1.family = SearchSpace::Family::BoundaryS1;
  s1.dim_names = {"theta"};
  s1.validate();
  const agents::Instance s1_instance = s1.instance_at({Rational::from_string("5/4")});
  EXPECT_EQ(core::classify(s1_instance, 1e-9).kind, core::InstanceKind::BoundaryS1);
}

TEST(SearchSpace, ValidateRejectsMistakes) {
  SearchSpace space;
  space.dim_names = {"x", "x"};
  EXPECT_THROW(space.validate(), std::invalid_argument);  // duplicate
  space.dim_names = {"theta"};
  EXPECT_THROW(space.validate(), std::invalid_argument);  // not a tuple param
  space.dim_names = {"x"};
  space.fixed = {{"x", Rational(1)}};
  EXPECT_THROW(space.validate(), std::invalid_argument);  // searched and fixed
  space.fixed.clear();
  space.chi = 2;
  EXPECT_THROW(space.validate(), std::invalid_argument);  // bad chirality
}

// -------------------------------------------------------------- objectives --

TEST(Objective, RegistryResolvesEveryNameAndRejectsUnknowns) {
  const std::vector<std::string> expected = {"max-meet-time", "near-miss",
                                             "boundary-distance", "max-gather-time"};
  EXPECT_EQ(objective_names(), expected);

  SearchSpace space;
  space.chi = -1;
  space.dim_names = {"t"};
  SearchSpace gather_space;
  gather_space.family = SearchSpace::Family::GatherTuple;
  gather_space.dim_names = {"spread"};
  const AlgorithmResolverFn resolver = exp::resolve_algorithm("aurv");
  for (const std::string& name : objective_names()) {
    // max-gather-time pairs only with the gather-tuple family (and vice
    // versa), so pick the matching space per name.
    const auto objective = make_objective(
        name, name == "max-gather-time" ? gather_space : space, resolver, {});
    ASSERT_TRUE(objective) << name;
    EXPECT_EQ(objective->name(), name);
  }
  try {
    (void)make_objective("nope", space, resolver, {});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("near-miss"), std::string::npos);
  }
}

TEST(Objective, BoundaryDistanceRejectsSpacesWithoutABoundary) {
  const AlgorithmResolverFn resolver = exp::resolve_algorithm("aurv");
  SearchSpace skewed;
  skewed.dim_names = {"tau"};  // searched clock rate: never synchronous
  EXPECT_THROW((void)make_objective("boundary-distance", skewed, resolver, {}),
               std::invalid_argument);

  SearchSpace rotated;
  rotated.chi = +1;
  rotated.dim_names = {"phi"};  // chi=+1 with phi != 0 is always feasible
  EXPECT_THROW((void)make_objective("boundary-distance", rotated, resolver, {}),
               std::invalid_argument);
}

TEST(Objective, MaxMeetTimePrunesProvablyInfeasibleBoxes) {
  SearchSpace space;
  space.chi = -1;
  space.dim_names = {"x", "t"};
  space.fixed = {{"r", Rational(1)}, {"y", Rational(1)}, {"phi", Rational(0)}};
  sim::EngineConfig config;
  config.horizon = Rational(128);
  const auto objective =
      make_objective("max-meet-time", space, exp::resolve_algorithm("aurv"), config);

  // Entirely below the boundary t = |x| - r: provably infeasible, bound -inf.
  const ParamBox infeasible({Interval{Rational(4), Rational(6)},  // dproj >= 3 + r
                             Interval{Rational(0), Rational(1)}});
  EXPECT_EQ(objective->bound(infeasible), -std::numeric_limits<double>::infinity());

  // Straddles the boundary: cannot be pruned; capped by the horizon.
  const ParamBox mixed({Interval{Rational(2), Rational(3)}, Interval{Rational(0), Rational(4)}});
  EXPECT_GE(objective->bound(mixed), 128.0);

  // Evaluation scores a feasible point with its meet time.
  const Evaluation feasible = objective->evaluate({Rational(2), Rational(3)});
  EXPECT_TRUE(feasible.met);
  EXPECT_EQ(feasible.score, feasible.meet_time);
  EXPECT_GT(feasible.score, 0.0);
}

TEST(Objective, BoundaryDistanceBoundIsConsistentWithEvaluation) {
  SearchSpace space;
  space.chi = +1;
  space.dim_names = {"x", "t"};
  space.fixed = {{"r", Rational(1)}, {"y", Rational(0)}, {"phi", Rational(0)}};
  sim::EngineConfig config;
  config.horizon = Rational(8);
  const auto objective =
      make_objective("boundary-distance", space, exp::resolve_algorithm("aurv"), config);

  // Box far from the boundary t = x - 1 (slack <= 1/16 - 2 + 1 = -15/16
  // everywhere): bound well below zero.
  const ParamBox far({Interval{Rational(2), Rational(3)},
                      Interval{Rational(0), Rational::from_string("1/16")}});
  EXPECT_LT(objective->bound(far), -0.9);
  // The bound over-estimates every evaluation inside the box.
  for (const auto& point :
       {std::vector<Rational>{Rational(2), Rational(0)},
        std::vector<Rational>{Rational(3), Rational::from_string("1/16")},
        std::vector<Rational>{Rational::from_string("5/2"), Rational::from_string("1/32")}}) {
    EXPECT_GE(objective->bound(far) + 1e-6, objective->evaluate(point).score);
  }

  // Box containing the boundary: bound 0 (nothing to prune against).
  const ParamBox across({Interval{Rational(2), Rational(3)}, Interval{Rational(1), Rational(3)}});
  EXPECT_EQ(objective->bound(across), 0.0);
}

// -------------------------------------------------------------------- spec --

TEST(SearchSpec, JsonRoundTrip) {
  const SearchSpec spec = small_spec();
  const SearchSpec reloaded = SearchSpec::from_json(spec.to_json());
  EXPECT_EQ(reloaded.to_json(), spec.to_json());
  EXPECT_EQ(reloaded.fingerprint(), spec.fingerprint());
  EXPECT_EQ(reloaded.objective, "max-meet-time");
  EXPECT_EQ(reloaded.space.dim_names, (std::vector<std::string>{"x", "t"}));
  EXPECT_EQ(reloaded.box[0].lo, Rational::from_string("3/2"));
  EXPECT_EQ(reloaded.limits.max_boxes, 48u);
  EXPECT_EQ(reloaded.limits.min_width, Rational::from_string("1/64"));
  ASSERT_TRUE(reloaded.engine.horizon.has_value());
  EXPECT_EQ(*reloaded.engine.horizon, Rational(256));
}

TEST(SearchSpec, StrictParsingRejectsMistakes) {
  const Json valid = small_spec().to_json();

  Json missing_kind = valid;
  missing_kind.as_object()[1].second = Json("campaign");  // "kind"
  EXPECT_THROW((void)SearchSpec::from_json(missing_kind), std::invalid_argument);

  Json typo = valid;
  typo.set("objektive", Json("near-miss"));
  EXPECT_THROW((void)SearchSpec::from_json(typo), std::invalid_argument);

  EXPECT_THROW((void)SearchSpec::from_json(Json::parse(
                   R"({"kind":"search","objective":"nope",
                       "space":{"family":"tuple","box":{"t":[0,1]}}})")),
               std::invalid_argument);
  EXPECT_THROW((void)SearchSpec::from_json(Json::parse(
                   R"({"kind":"search","space":{"family":"tuple","box":{"t":[1,0]}}})")),
               std::invalid_argument);  // lo > hi
  EXPECT_THROW((void)SearchSpec::from_json(Json::parse(
                   R"({"kind":"search","space":{"family":"boundary-s2","chi":-1,
                       "box":{"half_phi":[0,1]}}})")),
               std::invalid_argument);  // chi on a boundary family
  EXPECT_THROW((void)SearchSpec::from_json(Json::parse(
                   R"({"kind":"search","space":{"family":"tuple","box":{"t":[0,1]}},
                       "budget":{"wave_size":0}})")),
               std::invalid_argument);
}

TEST(SearchSpec, FingerprintDetectsEdits) {
  const SearchSpec spec = small_spec();
  SearchSpec edited = spec;
  edited.limits.max_boxes += 1;
  EXPECT_NE(spec.fingerprint(), edited.fingerprint());
}

TEST(SearchSpec, CommittedScenarioFilesLoad) {
  for (const char* leaf : {"search_smoke.json", "search_type1_worst_meet.json",
                           "search_s2_near_miss.json", "search_gather_worst.json"}) {
    const SearchSpec spec = SearchSpec::load(scenario_path(leaf));
    EXPECT_FALSE(spec.name.empty()) << leaf;
    EXPECT_GE(spec.root_box().dim_count(), 1u) << leaf;
  }
}

// ----------------------------------------------------------- determinism --

TEST(Search, CertificateAndIncumbentLogAreShardCountInvariant) {
  const SearchSpec spec = small_spec();
  const std::string log_1 = temp_path("search_log_1.jsonl");
  const std::string log_n = temp_path("search_log_n.jsonl");

  SearchOptions serial;
  serial.max_shards = 1;
  serial.incumbent_log_path = log_1;
  SearchOptions parallel;
  parallel.max_shards = 8;
  parallel.incumbent_log_path = log_n;

  const std::string cert_1 = exp::run_search(spec, serial).certificate(spec).dump(2);
  const std::string cert_n = exp::run_search(spec, parallel).certificate(spec).dump(2);
  EXPECT_EQ(cert_1, cert_n);  // bit-identical, including double scores
  EXPECT_EQ(slurp(log_1), slurp(log_n));
  EXPECT_FALSE(slurp(log_1).empty());
}

TEST(Search, CheckpointResumeMatchesOneShot) {
  const SearchSpec spec = small_spec();
  const std::string checkpoint = temp_path("search_ck.json");
  const std::string log_resumed = temp_path("search_log_resumed.jsonl");
  const std::string log_oneshot = temp_path("search_log_oneshot.jsonl");
  std::filesystem::remove(checkpoint);

  SearchOptions oneshot;
  oneshot.max_shards = 4;
  oneshot.incumbent_log_path = log_oneshot;
  const std::string expected = exp::run_search(spec, oneshot).certificate(spec).dump(2);

  SearchOptions interrupted = oneshot;
  interrupted.incumbent_log_path = log_resumed;
  interrupted.checkpoint_path = checkpoint;
  interrupted.checkpoint_every = 2;
  interrupted.max_waves = 3;
  const exp::SearchRunResult partial = exp::run_search(spec, interrupted);
  EXPECT_FALSE(partial.bnb.complete());
  EXPECT_TRUE(std::filesystem::exists(checkpoint));

  SearchOptions resume = interrupted;
  resume.max_waves = 0;
  resume.resume = true;
  resume.max_shards = 1;  // resume on a different worker count, same artifacts
  const exp::SearchRunResult finished = exp::run_search(spec, resume);
  EXPECT_TRUE(finished.bnb.complete());
  EXPECT_EQ(finished.certificate(spec).dump(2), expected);
  EXPECT_EQ(slurp(log_resumed), slurp(log_oneshot));
}

TEST(Search, ResumeRefusesEditedSpecAndForeignLogPath) {
  SearchSpec spec = small_spec();
  const std::string checkpoint = temp_path("search_ck_guard.json");
  const std::string log = temp_path("search_ck_guard.jsonl");
  std::filesystem::remove(checkpoint);

  SearchOptions options;
  options.incumbent_log_path = log;
  options.checkpoint_path = checkpoint;
  options.max_waves = 2;
  (void)exp::run_search(spec, options);

  SearchOptions resume = options;
  resume.resume = true;
  resume.max_waves = 0;
  SearchSpec edited = spec;
  edited.limits.min_improvement = 0.5;  // a different search now
  EXPECT_THROW((void)exp::run_search(edited, resume), std::invalid_argument);

  resume.incumbent_log_path = temp_path("somewhere_else.jsonl");
  EXPECT_THROW((void)exp::run_search(spec, resume), std::invalid_argument);
}

TEST(Search, ResumeRefusesRenamedIncumbentPointKeys) {
  // The incumbent point is stored as an object whose key order is the
  // dimension order; a renamed (or reordered) key in a hand-edited
  // checkpoint must be rejected, not silently permuted into the wrong
  // dimensions.
  const SearchSpec spec = small_spec();
  const std::string checkpoint = temp_path("search_ck_point_keys.json");
  const std::string log = temp_path("search_ck_point_keys.jsonl");
  std::filesystem::remove(checkpoint);

  SearchOptions options;
  options.incumbent_log_path = log;
  options.checkpoint_path = checkpoint;
  options.max_waves = 2;
  (void)exp::run_search(spec, options);

  support::Json ck = support::Json::load_file(checkpoint);
  ASSERT_FALSE(ck.at("incumbent").is_null());
  for (auto& [key, value] : ck.as_object()) {
    if (key != "incumbent") continue;
    for (auto& [field, point] : value.as_object()) {
      if (field != "point") continue;
      ASSERT_FALSE(point.as_object().empty());
      point.as_object().front().first = "not_" + point.as_object().front().first;
    }
  }
  ck.save_file(checkpoint);

  SearchOptions resume = options;
  resume.resume = true;
  resume.max_waves = 0;
  EXPECT_THROW((void)exp::run_search(spec, resume), support::JsonError);
}

TEST(Search, CheckpointGuardsEveryLimitEvenWithoutAFingerprint) {
  // Direct run_bnb callers may leave options.fingerprint empty; the
  // checkpoint still refuses a resume under different BnbLimits (which
  // would mix two pruning/leaf regimes into one "optimal" certificate).
  const SearchSpec spec = small_spec();
  const auto objective = make_objective(spec.objective, spec.space,
                                        exp::resolve_algorithm(spec.algorithm), spec.engine);
  const std::string checkpoint = temp_path("bnb_limits_ck.json");
  std::filesystem::remove(checkpoint);

  BnbOptions options;
  options.checkpoint_path = checkpoint;
  options.max_waves = 2;
  (void)run_bnb(spec.root_box(), *objective, spec.limits, options);

  options.resume = true;
  options.max_waves = 0;
  BnbLimits narrower = spec.limits;
  narrower.min_width = Rational(numeric::BigInt(1), numeric::BigInt(4096));
  EXPECT_THROW((void)run_bnb(spec.root_box(), *objective, narrower, options),
               std::invalid_argument);
  BnbLimits stricter = spec.limits;
  stricter.min_improvement = 0.25;
  EXPECT_THROW((void)run_bnb(spec.root_box(), *objective, stricter, options),
               std::invalid_argument);
  // ... and refuses a different search entirely: without a fingerprint the
  // checkpoint still pins the root box and the objective name, so a stale
  // checkpoint can never seed a search over a different space.
  EXPECT_THROW((void)run_bnb(ParamBox({Interval{Rational(0), Rational(2)}}), *objective,
                             spec.limits, options),
               std::invalid_argument);
  const auto other_objective = make_objective(
      "near-miss", spec.space, exp::resolve_algorithm(spec.algorithm), spec.engine);
  EXPECT_THROW((void)run_bnb(spec.root_box(), *other_objective, spec.limits, options),
               std::invalid_argument);
  // Unchanged limits resume fine.
  const BnbResult finished = run_bnb(spec.root_box(), *objective, spec.limits, options);
  EXPECT_TRUE(finished.complete());
}

TEST(Search, ExhaustiveRunProducesOptimalityCertificate) {
  // A coarse search that drains its frontier: exhausted == true and the
  // certificate carries no residual frontier bound.
  SearchSpec spec = small_spec();
  spec.limits.max_boxes = 4096;
  spec.limits.min_width = Rational(numeric::BigInt(1), numeric::BigInt(2));
  spec.limits.min_improvement = 1.0;  // aggressive pruning drains fast
  const exp::SearchRunResult result = exp::run_search(spec, {});
  EXPECT_TRUE(result.bnb.exhausted);
  EXPECT_EQ(result.bnb.open_boxes, 0u);
  EXPECT_TRUE(result.bnb.incumbent.found);
  const Json certificate = result.certificate(spec);
  EXPECT_TRUE(certificate.at("search").at("frontier_bound").is_null());
  EXPECT_TRUE(certificate.at("search").at("complete").as_bool());
}

// ------------------------------------------------- Theorem 4.1 rediscovery --

TEST(Search, S2NearMissRediscoversAdversarialClearance) {
  // Acceptance: the committed S2 near-miss scenario must find a boundary
  // configuration within the committed clearance bound — far closer to
  // rendezvous than the analytic adversary's defeating margin, showing the
  // search probes the same manifold Theorem 4.1 diagonalizes over.
  const SearchSpec spec = SearchSpec::load(scenario_path("search_s2_near_miss.json"));
  const exp::SearchRunResult result = exp::run_search(spec, {});
  ASSERT_TRUE(result.bnb.incumbent.found);
  const Evaluation& best = result.bnb.incumbent.evaluation;

  // The analytic counterexample, simulated under the very same engine
  // config (its clearance is the margin by which AURV misses).
  const sim::AlgorithmFactory aurv = [] { return core::almost_universal_rv(); };
  core::AdversaryConfig adversary;
  adversary.analysis_horizon = 4096;
  adversary.r = 1.0;
  adversary.t = 2;
  adversary.lateral_offset = 1.4;
  const core::AdversaryReport report = core::construct_s2_counterexample(aurv, adversary);
  const sim::SimResult defeat = sim::Engine(report.instance, spec.engine).run(aurv);
  EXPECT_FALSE(defeat.met);
  const double adversary_clearance = defeat.min_distance_seen - report.instance.r();

  constexpr double kCommittedClearanceBound = 0.05;  // also quoted in the spec file
  EXPECT_GT(best.clearance, 0.0);  // a true near-miss, not a rendezvous
  EXPECT_LE(best.clearance, kCommittedClearanceBound);
  EXPECT_LT(best.clearance, adversary_clearance / 4.0);
}

}  // namespace
}  // namespace aurv::search
