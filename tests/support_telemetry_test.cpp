// Telemetry core unit tests: counter/gauge/histogram/timer semantics, the
// registry's first-use registration and reset-in-place contract, the
// shard-local accumulator's deterministic merge (including through the
// run_sharded in-order completion hook at several worker counts), the
// heartbeat reporter's line format, and the metrics snapshot shape.
//
// The registry is process-global, so every test that asserts on totals
// either resets it first or uses names no other test touches.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "test_paths.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace aurv::support::telemetry {
namespace {

using support::Json;
using testpaths::slurp;
using testpaths::temp_path;

// ------------------------------------------------------------- primitives --

TEST(Telemetry, CounterAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Telemetry, GaugeSetAddAndHighWater) {
  Gauge gauge;
  gauge.set(-7);
  EXPECT_EQ(gauge.value(), -7);
  gauge.add(10);
  EXPECT_EQ(gauge.value(), 3);
  gauge.set_max(100);
  EXPECT_EQ(gauge.value(), 100);
  gauge.set_max(5);  // never lowers
  EXPECT_EQ(gauge.value(), 100);
}

TEST(Telemetry, HistogramBucketsByBitWidth) {
  Log2Histogram histogram;
  histogram.record(0);  // bucket 0: the zero sample
  histogram.record(1);  // bucket 1: [1, 2)
  histogram.record(2);  // bucket 2: [2, 4)
  histogram.record(3);
  histogram.record(4);  // bucket 3: [4, 8)
  histogram.record(1023);  // bucket 10: [512, 1024)
  EXPECT_EQ(histogram.count(), 6u);
  EXPECT_EQ(histogram.sum(), 1033u);
  EXPECT_EQ(histogram.bucket(0), 1u);
  EXPECT_EQ(histogram.bucket(1), 1u);
  EXPECT_EQ(histogram.bucket(2), 2u);
  EXPECT_EQ(histogram.bucket(3), 1u);
  EXPECT_EQ(histogram.bucket(10), 1u);

  // to_json: only the nonzero buckets, keyed by their lower bound.
  const Json json = histogram.to_json();
  EXPECT_EQ(json.at("count").as_uint(), 6u);
  EXPECT_EQ(json.at("sum").as_uint(), 1033u);
  const Json& buckets = json.at("buckets");
  EXPECT_EQ(buckets.as_object().size(), 5u);
  EXPECT_EQ(buckets.at("0").as_uint(), 1u);
  EXPECT_EQ(buckets.at("2").as_uint(), 2u);
  EXPECT_EQ(buckets.at("512").as_uint(), 1u);
  EXPECT_EQ(buckets.find("1024"), nullptr);
}

TEST(Telemetry, ScopedTimerRecordsElapsed) {
  Timer timer;
  {
    const ScopedTimer scope(timer);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(timer.count(), 1u);
  EXPECT_GE(timer.total_ns(), 1'000'000u);  // at least ~1ms of the 2ms sleep
}

// --------------------------------------------------------------- registry --

TEST(Telemetry, RegistryHandsOutStableReferences) {
  Counter& first = registry().counter("test.registry.stable");
  Counter& again = registry().counter("test.registry.stable");
  EXPECT_EQ(&first, &again);
  Counter& other = registry().counter("test.registry.other");
  EXPECT_NE(&first, &other);
}

TEST(Telemetry, RegistryResetZeroesInPlace) {
  Counter& counter = registry().counter("test.reset.counter");
  Gauge& gauge = registry().gauge("test.reset.gauge");
  Log2Histogram& histogram = registry().histogram("test.reset.histogram");
  Timer& timer = registry().timer("test.reset.timer");
  counter.add(5);
  gauge.set(9);
  histogram.record(16);
  timer.add_ns(100);

  registry().reset();

  // Same objects, zeroed values: cached references survive a reset.
  EXPECT_EQ(&counter, &registry().counter("test.reset.counter"));
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.bucket(5), 0u);
  EXPECT_EQ(timer.total_ns(), 0u);
  EXPECT_EQ(timer.count(), 0u);
}

TEST(Telemetry, SnapshotIsNameSorted) {
  registry().reset();
  registry().counter("test.sort.zebra").add(1);
  registry().counter("test.sort.apple").add(2);
  const Json snapshot = registry().snapshot();
  const auto& counters = snapshot.at("counters").as_object();
  std::string previous;
  for (const auto& [name, value] : counters) {
    EXPECT_LT(previous, name) << "snapshot keys must be sorted";
    previous = name;
  }
  EXPECT_EQ(snapshot.at("counters").at("test.sort.apple").as_uint(), 2u);
  // All four family sections are present even when empty.
  EXPECT_TRUE(snapshot.at("gauges").is_object());
  EXPECT_TRUE(snapshot.at("histograms").is_object());
  EXPECT_TRUE(snapshot.at("timers").is_object());
}

// ------------------------------------------------------ shard accumulator --

TEST(Telemetry, ShardAccumulatorKeepsFirstTouchOrderAndMerges) {
  registry().reset();
  ShardAccumulator shard;
  EXPECT_TRUE(shard.empty());
  shard.add("test.acc.b", 3);
  shard.add("test.acc.a", 1);
  shard.add("test.acc.b", 4);
  ASSERT_EQ(shard.entries().size(), 2u);
  EXPECT_EQ(shard.entries()[0].first, "test.acc.b");  // first touch wins the slot
  EXPECT_EQ(shard.entries()[0].second, 7u);
  EXPECT_EQ(shard.entries()[1].first, "test.acc.a");

  registry().merge(shard);
  EXPECT_EQ(registry().counter("test.acc.b").value(), 7u);
  EXPECT_EQ(registry().counter("test.acc.a").value(), 1u);
  EXPECT_EQ(registry().counter("telemetry.merges").value(), 1u);
}

TEST(Telemetry, ShardMergeTotalsAreThreadCountInvariant) {
  // The production pattern end to end: each shard accumulates locally,
  // the in-order completion hook merges. Totals — and the sequence of
  // registry values observed at each merge — must not depend on the
  // worker count.
  constexpr std::size_t kShards = 16;
  const auto run_at = [&](std::size_t threads) {
    registry().reset();
    std::vector<ShardAccumulator> locals(kShards);
    std::vector<std::uint64_t> merge_sequence;
    ShardedRunOptions options;
    options.threads = threads;
    run_sharded(
        kShards,
        [&](std::size_t shard) {
          locals[shard].add("test.sharded.work", shard + 1);
          if (shard % 2 == 0) locals[shard].add("test.sharded.even");
        },
        [&](std::size_t shard) {
          registry().merge(locals[shard]);
          merge_sequence.push_back(registry().counter("test.sharded.work").value());
        },
        options);
    return merge_sequence;
  };

  const std::vector<std::uint64_t> serial = run_at(1);
  const std::uint64_t work = registry().counter("test.sharded.work").value();
  const std::uint64_t even = registry().counter("test.sharded.even").value();
  EXPECT_EQ(work, kShards * (kShards + 1) / 2);
  EXPECT_EQ(even, kShards / 2);

  const std::vector<std::uint64_t> parallel = run_at(4);
  EXPECT_EQ(registry().counter("test.sharded.work").value(), work);
  EXPECT_EQ(registry().counter("test.sharded.even").value(), even);
  EXPECT_EQ(serial, parallel) << "in-order merges must yield the same value sequence";
}

// -------------------------------------------------------------- heartbeat --

TEST(Telemetry, HeartbeatEmitsParseableLines) {
  registry().reset();
  registry().counter("test.beat.events").add(10);

  const std::string path = temp_path("heartbeat_lines.jsonl");
  std::FILE* sink = std::fopen(path.c_str(), "wb");
  ASSERT_NE(sink, nullptr);
  {
    HeartbeatConfig config;
    config.interval_s = 0.002;
    config.out = sink;
    config.extra = [] {
      Json extra = Json::object();
      extra.set("kind", Json("unit-test"));
      return extra;
    };
    Heartbeat heartbeat(std::move(config));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    registry().counter("test.beat.events").add(90);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    heartbeat.stop();
    EXPECT_GE(heartbeat.beats(), 2u);
  }
  std::fclose(sink);

  std::uint64_t lines = 0, last_seq = 0;
  std::string text = slurp(path);
  std::size_t begin = 0;
  while (begin < text.size()) {
    const std::size_t end = text.find('\n', begin);
    ASSERT_NE(end, std::string::npos) << "every beat line is newline-terminated";
    const Json line = Json::parse(text.substr(begin, end - begin));
    ++lines;
    const std::uint64_t seq = line.at("heartbeat").as_uint();
    EXPECT_EQ(seq, last_seq + 1) << "beat sequence numbers are contiguous";
    last_seq = seq;
    EXPECT_GT(line.at("elapsed_s").as_number(), 0.0);
    EXPECT_EQ(line.at("kind").as_string(), "unit-test");  // the extra hook
    EXPECT_EQ(line.at("counters").at("test.beat.events").as_uint() % 10, 0u);
    EXPECT_TRUE(line.at("gauges").is_object());
    EXPECT_TRUE(line.at("rates").is_object());
    begin = end + 1;
  }
  EXPECT_GE(lines, 2u);
}

TEST(Telemetry, HeartbeatZeroIntervalStartsNoThreadButBeatsOnDemand) {
  const std::string path = temp_path("heartbeat_manual.jsonl");
  std::FILE* sink = std::fopen(path.c_str(), "wb");
  ASSERT_NE(sink, nullptr);
  {
    HeartbeatConfig config;
    config.interval_s = 0.0;  // disabled: no background thread
    config.out = sink;
    Heartbeat heartbeat(std::move(config));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(heartbeat.beats(), 0u);
    heartbeat.beat_now();
    EXPECT_EQ(heartbeat.beats(), 1u);
  }
  std::fclose(sink);
  const Json line = Json::parse(slurp(path));
  EXPECT_EQ(line.at("heartbeat").as_uint(), 1u);
}

// ------------------------------------------------------- metrics snapshot --

TEST(Telemetry, MetricsSnapshotShape) {
  registry().reset();
  registry().counter("test.snap.counter").add(3);
  registry().gauge("test.snap.gauge").set(-2);
  registry().histogram("test.snap.histogram").record(5);
  registry().timer("test.snap.timer").add_ns(1234);

  RunManifest manifest;
  manifest.kind = "search";
  manifest.spec_path = "scenarios/unit.json";
  manifest.fingerprint = "00000000deadbeef";
  manifest.threads = 4;
  manifest.extra.set("max_waves", Json(std::uint64_t{7}));

  const Json snapshot = metrics_snapshot(manifest, 12.5);
  EXPECT_EQ(snapshot.at("schema").as_uint(), 1u);
  EXPECT_EQ(snapshot.at("kind").as_string(), "metrics-snapshot");
  const Json& run = snapshot.at("run");
  EXPECT_EQ(run.at("kind").as_string(), "search");
  EXPECT_EQ(run.at("spec").as_string(), "scenarios/unit.json");
  EXPECT_EQ(run.at("fingerprint").as_string(), "00000000deadbeef");
  EXPECT_EQ(run.at("threads").as_uint(), 4u);
  EXPECT_EQ(run.at("config").at("max_waves").as_uint(), 7u);
  EXPECT_FALSE(run.at("build").at("compiler").as_string().empty());
  EXPECT_GT(run.at("build").at("cpp_standard").as_uint(), 201703u);
  EXPECT_FALSE(run.at("build").at("build_type").as_string().empty());
  EXPECT_DOUBLE_EQ(snapshot.at("wall_ms").as_number(), 12.5);
  EXPECT_EQ(snapshot.at("counters").at("test.snap.counter").as_uint(), 3u);
  EXPECT_EQ(snapshot.at("gauges").at("test.snap.gauge").as_int(), -2);
  EXPECT_EQ(snapshot.at("histograms").at("test.snap.histogram").at("count").as_uint(), 1u);
  EXPECT_EQ(snapshot.at("timers").at("test.snap.timer").at("ns").as_uint(), 1234u);

  // write_metrics round-trips through a file byte-for-byte re-parseable.
  const std::string path = temp_path("unit_metrics.json");
  write_metrics(path, manifest, 12.5);
  const Json reloaded = Json::load_file(path);
  EXPECT_EQ(reloaded.at("schema").as_uint(), 1u);
  EXPECT_EQ(reloaded.at("counters").at("test.snap.counter").as_uint(), 3u);
}

TEST(Telemetry, ManifestWithoutExtraOmitsConfig) {
  RunManifest manifest;
  manifest.kind = "campaign";
  manifest.spec_path = "x.json";
  manifest.fingerprint = "0";
  manifest.threads = 1;
  const Json snapshot = metrics_snapshot(manifest, 0.0);
  EXPECT_EQ(snapshot.at("run").find("config"), nullptr);
}

}  // namespace
}  // namespace aurv::support::telemetry
