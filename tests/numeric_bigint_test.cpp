// Unit and property tests for numeric::BigInt — the foundation of the exact
// event timeline. Property sweeps cross-check against native __int128.
#include "numeric/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <string>

namespace aurv::numeric {
namespace {

using i128 = __int128;

std::string i128_to_string(i128 value) {
  if (value == 0) return "0";
  const bool negative = value < 0;
  unsigned __int128 mag = negative ? -static_cast<unsigned __int128>(value)
                                   : static_cast<unsigned __int128>(value);
  std::string digits;
  while (mag != 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(mag % 10)));
    mag /= 10;
  }
  if (negative) digits.push_back('-');
  return {digits.rbegin(), digits.rend()};
}

TEST(BigInt, DefaultIsZero) {
  const BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.to_string(), "0");
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_double(), 0.0);
}

TEST(BigInt, SmallValuesRoundTrip) {
  for (const long long value : {0LL, 1LL, -1LL, 42LL, -42LL, 1000000007LL,
                                std::numeric_limits<long long>::max(),
                                std::numeric_limits<long long>::min()}) {
    const BigInt big(value);
    EXPECT_EQ(big.to_string(), std::to_string(value)) << value;
    EXPECT_TRUE(big.fits_int64());
    EXPECT_EQ(big.to_int64(), value);
  }
}

TEST(BigInt, FromStringParsesAndRejects) {
  EXPECT_EQ(BigInt::from_string("0"), BigInt(0));
  EXPECT_EQ(BigInt::from_string("-0"), BigInt(0));
  EXPECT_EQ(BigInt::from_string("+123"), BigInt(123));
  EXPECT_EQ(BigInt::from_string("-987654321987654321"), BigInt(-987654321987654321LL));
  EXPECT_THROW((void)BigInt::from_string(""), std::invalid_argument);
  EXPECT_THROW((void)BigInt::from_string("-"), std::invalid_argument);
  EXPECT_THROW((void)BigInt::from_string("12a3"), std::invalid_argument);
  EXPECT_THROW((void)BigInt::from_string(" 12"), std::invalid_argument);
}

TEST(BigInt, FromStringLargeRoundTrips) {
  const std::string big = "123456789012345678901234567890123456789012345678901234567890";
  EXPECT_EQ(BigInt::from_string(big).to_string(), big);
  EXPECT_EQ(BigInt::from_string("-" + big).to_string(), "-" + big);
}

TEST(BigInt, Pow2Structure) {
  EXPECT_EQ(BigInt::pow2(0), BigInt(1));
  EXPECT_EQ(BigInt::pow2(10), BigInt(1024));
  const BigInt huge = BigInt::pow2(540);  // the phase-6 wait exponent
  EXPECT_EQ(huge.bit_length(), 541u);
  EXPECT_TRUE(huge.is_pow2());
  EXPECT_EQ(huge.trailing_zero_bits(), 540u);
  EXPECT_EQ(huge >> 540, BigInt(1));
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  const BigInt a = BigInt::pow2(64) - BigInt(1);
  EXPECT_EQ(a + BigInt(1), BigInt::pow2(64));
  EXPECT_EQ((a + a).to_string(), (BigInt::pow2(65) - BigInt(2)).to_string());
}

TEST(BigInt, SubtractionBorrowsAcrossLimbs) {
  const BigInt a = BigInt::pow2(128);
  EXPECT_EQ(a - BigInt(1), BigInt::from_string("340282366920938463463374607431768211455"));
  EXPECT_EQ(a - a, BigInt(0));
  EXPECT_EQ(BigInt(5) - BigInt(7), BigInt(-2));
}

TEST(BigInt, MultiplicationKnownValues) {
  EXPECT_EQ(BigInt(0) * BigInt(12345), BigInt(0));
  EXPECT_EQ(BigInt(-3) * BigInt(7), BigInt(-21));
  EXPECT_EQ(BigInt(-3) * BigInt(-7), BigInt(21));
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  const BigInt a = BigInt::pow2(64) - BigInt(1);
  EXPECT_EQ(a * a, BigInt::pow2(128) - BigInt::pow2(65) + BigInt(1));
}

TEST(BigInt, ShiftsInverse) {
  const BigInt a = BigInt::from_string("987654321987654321987654321");
  for (const std::uint64_t shift : {1u, 13u, 64u, 65u, 127u, 200u}) {
    EXPECT_EQ((a << shift) >> shift, a) << shift;
  }
  EXPECT_EQ(BigInt(1) >> 1, BigInt(0));
  EXPECT_EQ(BigInt(-8) >> 2, BigInt(-2));
}

TEST(BigInt, DivModTruncatedSemantics) {
  // C semantics: quotient toward zero, remainder has dividend's sign.
  const auto check = [](long long n, long long d) {
    const auto dm = BigInt::divmod(BigInt(n), BigInt(d));
    EXPECT_EQ(dm.quotient, BigInt(n / d)) << n << "/" << d;
    EXPECT_EQ(dm.remainder, BigInt(n % d)) << n << "%" << d;
  };
  check(7, 2);
  check(-7, 2);
  check(7, -2);
  check(-7, -2);
  check(6, 3);
  check(0, 5);
  check(1, 1000000);
}

TEST(BigInt, DivModReconstruction) {
  const BigInt n = BigInt::from_string("123456789012345678901234567890123456789");
  const BigInt d = BigInt::from_string("98765432109876543210");
  const auto dm = BigInt::divmod(n, d);
  EXPECT_EQ(dm.quotient * d + dm.remainder, n);
  EXPECT_LT(dm.remainder, d);
  EXPECT_GE(dm.remainder, BigInt(0));
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW((void)BigInt::divmod(BigInt(1), BigInt(0)), std::logic_error);
}

TEST(BigInt, GcdKnownValues) {
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(0)), BigInt(0));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt::pow2(100), BigInt::pow2(60)), BigInt::pow2(60));
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)), BigInt(1));
}

TEST(BigInt, ComparisonTotalOrder) {
  const BigInt values[] = {BigInt::from_string("-100000000000000000000"), BigInt(-2), BigInt(0),
                           BigInt(1), BigInt::pow2(64), BigInt::pow2(100)};
  for (std::size_t i = 0; i < std::size(values); ++i) {
    for (std::size_t j = 0; j < std::size(values); ++j) {
      EXPECT_EQ(values[i] < values[j], i < j) << i << " " << j;
      EXPECT_EQ(values[i] == values[j], i == j) << i << " " << j;
    }
  }
}

TEST(BigInt, ToDoubleAccuracy) {
  EXPECT_DOUBLE_EQ(BigInt(123).to_double(), 123.0);
  EXPECT_DOUBLE_EQ(BigInt(-123).to_double(), -123.0);
  EXPECT_DOUBLE_EQ(BigInt::pow2(100).to_double(), std::ldexp(1.0, 100));
  EXPECT_DOUBLE_EQ(BigInt::pow2(1000).to_double(), std::ldexp(1.0, 1000));
  EXPECT_TRUE(std::isinf(BigInt::pow2(1100).to_double()));
  EXPECT_TRUE(std::isinf((-BigInt::pow2(1100)).to_double()));
  // 2^64 + 2^10: the low bit survives in the 53-bit mantissa window.
  const BigInt mixed = BigInt::pow2(64) + BigInt::pow2(10);
  EXPECT_DOUBLE_EQ(mixed.to_double(), std::ldexp(1.0, 64) + 1024.0);
}

TEST(BigInt, ToInt64Bounds) {
  EXPECT_EQ(BigInt(std::numeric_limits<std::int64_t>::max()).to_int64(),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(BigInt(std::numeric_limits<std::int64_t>::min()).to_int64(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_THROW((void)(BigInt(std::numeric_limits<std::int64_t>::max()) + BigInt(1)).to_int64(),
               std::overflow_error);
  EXPECT_THROW((void)BigInt::pow2(200).to_int64(), std::overflow_error);
}

// ---- Randomized property sweeps against __int128 ground truth ----

class BigIntRandomProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BigIntRandomProperty, ArithmeticMatchesInt128) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<std::int64_t> dist(std::numeric_limits<std::int64_t>::min() / 2,
                                                   std::numeric_limits<std::int64_t>::max() / 2);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const std::int64_t x = dist(rng);
    const std::int64_t y = dist(rng);
    const BigInt bx(x);
    const BigInt by(y);
    EXPECT_EQ((bx + by).to_string(), i128_to_string(static_cast<i128>(x) + y));
    EXPECT_EQ((bx - by).to_string(), i128_to_string(static_cast<i128>(x) - y));
    EXPECT_EQ((bx * by).to_string(), i128_to_string(static_cast<i128>(x) * y));
    EXPECT_EQ(bx < by, x < y);
    if (y != 0) {
      const auto dm = BigInt::divmod(bx, by);
      EXPECT_EQ(dm.quotient.to_int64(), x / y);
      EXPECT_EQ(dm.remainder.to_int64(), x % y);
    }
  }
}

TEST_P(BigIntRandomProperty, MultiLimbRingAxioms) {
  std::mt19937_64 rng(GetParam() * 7919 + 17);
  const auto random_big = [&rng] {
    std::uniform_int_distribution<int> limb_count(1, 5);
    std::uniform_int_distribution<std::uint64_t> limb;
    BigInt value(0);
    const int limbs = limb_count(rng);
    for (int i = 0; i < limbs; ++i) value = (value << 64) + BigInt(limb(rng));
    if (limb(rng) % 2 == 0) value = -value;
    return value;
  };
  for (int iteration = 0; iteration < 50; ++iteration) {
    const BigInt a = random_big();
    const BigInt b = random_big();
    const BigInt c = random_big();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, BigInt(0));
    EXPECT_EQ(a + (-a), BigInt(0));
    if (!b.is_zero()) {
      const auto dm = BigInt::divmod(a, b);
      EXPECT_EQ(dm.quotient * b + dm.remainder, a);
      EXPECT_LT(dm.remainder.abs(), b.abs());
      // Remainder sign matches dividend (truncated division).
      if (!dm.remainder.is_zero()) {
        EXPECT_EQ(dm.remainder.sign(), a.sign());
      }
    }
    const BigInt g = BigInt::gcd(a, b);
    if (!a.is_zero() || !b.is_zero()) {
      EXPECT_GT(g, BigInt(0));
      if (!a.is_zero()) {
        EXPECT_TRUE((a % g).is_zero());
      }
      if (!b.is_zero()) {
        EXPECT_TRUE((b % g).is_zero());
      }
    }
    // String round trip.
    EXPECT_EQ(BigInt::from_string(a.to_string()), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntRandomProperty, ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace aurv::numeric
