// Tests for the coroutine generator the mobility programs are built on.
#include "support/generator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace aurv::support {
namespace {

generator<int> count_up_to(int n) {
  for (int i = 0; i < n; ++i) co_yield i;
}

generator<int> infinite_squares() {
  for (long long i = 0;; ++i) {
    const int value = static_cast<int>(i * i % 1000003);
    co_yield value;
  }
}

generator<int> throws_after(int n) {
  for (int i = 0; i < n; ++i) co_yield i;
  throw std::runtime_error("stream failure");
}

TEST(Generator, YieldsInOrderThenEnds) {
  auto gen = count_up_to(3);
  ASSERT_TRUE(gen.next());
  EXPECT_EQ(gen.value(), 0);
  ASSERT_TRUE(gen.next());
  EXPECT_EQ(gen.value(), 1);
  ASSERT_TRUE(gen.next());
  EXPECT_EQ(gen.value(), 2);
  EXPECT_FALSE(gen.next());
  EXPECT_FALSE(gen.next());  // stays exhausted
}

TEST(Generator, EmptyStream) {
  auto gen = count_up_to(0);
  EXPECT_FALSE(gen.next());
}

TEST(Generator, RangeForInterface) {
  std::vector<int> collected;
  for (const int v : count_up_to(5)) collected.push_back(v);
  EXPECT_EQ(collected, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Generator, InfiniteStreamIsLazy) {
  auto gen = infinite_squares();
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(gen.next());
  }
  EXPECT_EQ(gen.value(), static_cast<int>(9999LL * 9999 % 1000003));
}

TEST(Generator, MoveTransfersOwnership) {
  auto gen = count_up_to(3);
  ASSERT_TRUE(gen.next());
  auto moved = std::move(gen);
  EXPECT_FALSE(gen.valid());  // NOLINT(bugprone-use-after-move) — tested on purpose
  EXPECT_EQ(moved.value(), 0);
  ASSERT_TRUE(moved.next());
  EXPECT_EQ(moved.value(), 1);
}

TEST(Generator, ExceptionsPropagateFromNext) {
  auto gen = throws_after(2);
  ASSERT_TRUE(gen.next());
  ASSERT_TRUE(gen.next());
  EXPECT_THROW(gen.next(), std::runtime_error);
}

TEST(Generator, HeavyPayloadByReference) {
  // value() must reference the yielded object without copying per access.
  struct Heavy {
    std::string blob;
  };
  auto gen = []() -> generator<Heavy> {
    Heavy h{std::string(1 << 16, 'x')};
    co_yield h;
  }();
  ASSERT_TRUE(gen.next());
  const Heavy& ref1 = gen.value();
  const Heavy& ref2 = gen.value();
  EXPECT_EQ(&ref1, &ref2);
  EXPECT_EQ(ref1.blob.size(), std::size_t{1} << 16);
}

TEST(Generator, DestructionMidStreamReleasesFrame) {
  // Destroying a suspended coroutine must run destructors of locals.
  auto flag = std::make_shared<int>(0);
  {
    auto gen = [](std::shared_ptr<int> p) -> generator<int> {
      const int one = 1;
      const int two = 2;
      co_yield one;
      co_yield two;
      (void)p;
    }(flag);
    ASSERT_TRUE(gen.next());
    EXPECT_EQ(flag.use_count(), 2);
  }
  EXPECT_EQ(flag.use_count(), 1);  // frame destroyed, shared_ptr released
}

}  // namespace
}  // namespace aurv::support
