// VFS seam + deterministic fault-injection tests: FaultVfs must count,
// trace and script failures exactly as advertised; the retry layer must
// absorb transient faults with a deterministic backoff schedule and
// nothing else; and the persistence primitives built on the seam
// (JsonlSink, save_json_atomically, SpillSegmentWriter, SpillDeque) must
// recover from torn writes, keep atomic checkpoints atomic, and degrade
// the spill store gracefully — producing byte-identical artifacts
// throughout.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "test_paths.hpp"
#include "support/jsonl.hpp"
#include "support/spill.hpp"
#include "support/vfs.hpp"

namespace aurv::support {
namespace {

using testpaths::fresh_dir;
using testpaths::slurp;
using testpaths::temp_path;

FaultSpec fault(std::uint64_t after, const std::string& path_contains, FaultClass klass,
                bool sticky = false) {
  FaultSpec spec;
  spec.after = after;
  spec.path_contains = path_contains;
  spec.klass = klass;
  spec.sticky = sticky;
  return spec;
}

// ------------------------------------------------------------ the seam --

TEST(Vfs, ScopedVfsSwapsAndRestoresTheSeam) {
  Vfs& before = vfs();
  FaultVfs counting(FaultSchedule{});
  {
    ScopedVfs guard(counting);
    EXPECT_EQ(&vfs(), &counting);
    {
      FaultVfs nested(FaultSchedule{});
      ScopedVfs inner(nested);
      EXPECT_EQ(&vfs(), &nested);
    }
    EXPECT_EQ(&vfs(), &counting);
  }
  EXPECT_EQ(&vfs(), &before);
}

TEST(Vfs, FaultVfsCountsMutatingOpsAndTracesSites) {
  FaultVfs counting(FaultSchedule{});
  ScopedVfs guard(counting);
  const std::string path = temp_path("vfs_trace.txt");

  auto file = vfs().open_write(path, Vfs::OpenMode::Truncate);
  file->write("hello");
  file->flush();
  file->close();
  EXPECT_TRUE(vfs().exists(path));                    // read side: not counted
  EXPECT_EQ(vfs().file_size(path), 5u);               // not counted
  EXPECT_EQ(vfs().read_file(path), "hello");          // not counted
  EXPECT_TRUE(vfs().remove(path));

  const std::vector<FaultVfs::OpRecord> log = counting.op_log();
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(counting.ops(), 5u);
  const char* expected[] = {"open_write", "write", "flush", "close", "remove"};
  for (std::size_t k = 0; k < log.size(); ++k) {
    EXPECT_EQ(log[k].index, k);
    EXPECT_EQ(log[k].op, expected[k]);
  }
}

TEST(Vfs, FaultScheduleRoundTripsThroughJson) {
  FaultSchedule schedule;
  schedule.faults.push_back(fault(3, "seg-", FaultClass::ShortWrite));
  schedule.faults.push_back(fault(0, "", FaultClass::CrashStop, /*sticky=*/true));
  const FaultSchedule reloaded = FaultSchedule::from_json(schedule.to_json());
  ASSERT_EQ(reloaded.faults.size(), 2u);
  EXPECT_EQ(reloaded.faults[0].after, 3u);
  EXPECT_EQ(reloaded.faults[0].path_contains, "seg-");
  EXPECT_EQ(reloaded.faults[0].klass, FaultClass::ShortWrite);
  EXPECT_FALSE(reloaded.faults[0].sticky);
  EXPECT_EQ(reloaded.faults[1].klass, FaultClass::CrashStop);
  EXPECT_TRUE(reloaded.faults[1].sticky);
  EXPECT_THROW(fault_class_from_string("made-up"), JsonError);
}

TEST(Vfs, PathFilterAndAfterSelectTheFaultSite) {
  // Only the 2nd (0-based after=1) operation touching "target" faults.
  FaultSchedule schedule;
  schedule.faults.push_back(fault(1, "target", FaultClass::NoSpace));
  FaultVfs faulty(schedule);
  ScopedVfs guard(faulty);

  const std::string other = temp_path("vfs_other.txt");
  const std::string target = temp_path("vfs_target.txt");
  {  // ops on non-matching paths never fault
    auto file = vfs().open_write(other, Vfs::OpenMode::Truncate);
    file->write("x");
    file->close();
  }
  auto file = vfs().open_write(target, Vfs::OpenMode::Truncate);  // match #1: passes
  EXPECT_THROW(file->write("y"), VfsError);                       // match #2: fires
  file->write("y");                                               // one-shot: clear again
  file->close();
  EXPECT_EQ(slurp(target), "y");
}

TEST(Vfs, StickyFaultKeepsFiringAndIsNotTransient) {
  FaultSchedule schedule;
  schedule.faults.push_back(fault(0, "", FaultClass::NoSpace, /*sticky=*/true));
  FaultVfs faulty(schedule);
  ScopedVfs guard(faulty);
  const std::string path = temp_path("vfs_sticky.txt");
  for (int k = 0; k < 3; ++k) {
    try {
      (void)vfs().open_write(path, Vfs::OpenMode::Truncate);
      FAIL() << "sticky fault must keep firing";
    } catch (const VfsError& error) {
      EXPECT_FALSE(error.transient());  // retries may not absorb a dead disk
      EXPECT_EQ(error.op(), "open_write");
    }
  }
}

// ------------------------------------------------------------ retry_io --

TEST(Vfs, RetryAbsorbsTransientFaultsWithDeterministicBackoff) {
  // Three one-shot faults make attempts 1-3 fail; attempt 4 (the last the
  // default policy allows) succeeds. Backoff is 1, 2, 4 ms — recorded by
  // FaultVfs, never slept. (All three use after=0: when a spec fires it
  // short-circuits the scan, so each attempt consumes exactly one spec.)
  FaultSchedule schedule;
  for (int k = 0; k < 3; ++k)
    schedule.faults.push_back(fault(0, "", FaultClass::NoSpace));
  FaultVfs faulty(schedule);
  ScopedVfs guard(faulty);
  const std::string path = temp_path("vfs_retry.txt");

  auto file = retry_io(RetryPolicy{}, [&] {
    return vfs().open_write(path, Vfs::OpenMode::Truncate);
  });
  file->write("recovered");
  file->close();
  EXPECT_EQ(slurp(path), "recovered");
  EXPECT_EQ(faulty.backoff_recorded_ms(), 1u + 2u + 4u);
}

TEST(Vfs, RetryGivesUpAfterTheConfiguredAttempts) {
  FaultSchedule schedule;
  for (int k = 0; k < 8; ++k)
    schedule.faults.push_back(fault(0, "", FaultClass::NoSpace));
  FaultVfs faulty(schedule);
  ScopedVfs guard(faulty);
  RetryPolicy policy;
  policy.attempts = 3;
  EXPECT_THROW(retry_io(policy, [&] {
                 return vfs().open_write(temp_path("vfs_give_up.txt"),
                                         Vfs::OpenMode::Truncate);
               }),
               VfsError);
  EXPECT_EQ(faulty.ops(), 3u);                      // exactly 3 attempts issued
  EXPECT_EQ(faulty.backoff_recorded_ms(), 1u + 2u);  // backoff between them only
}

TEST(Vfs, RetryNeverRetriesPersistentFaults) {
  FaultSchedule schedule;
  schedule.faults.push_back(fault(0, "", FaultClass::NoSpace, /*sticky=*/true));
  FaultVfs faulty(schedule);
  ScopedVfs guard(faulty);
  EXPECT_THROW(retry_io(RetryPolicy{}, [&] {
                 return vfs().open_write(temp_path("vfs_persistent.txt"),
                                         Vfs::OpenMode::Truncate);
               }),
               VfsError);
  EXPECT_EQ(faulty.ops(), 1u);  // no second attempt against a dead disk
  EXPECT_EQ(faulty.backoff_recorded_ms(), 0u);
}

// ----------------------------------------------------------- crash-stop --

TEST(Vfs, CrashStopKeepsOpKDurableAndSuppressesEverythingAfter) {
  const std::string path = temp_path("vfs_crash.txt");
  FaultSchedule schedule;
  schedule.faults.push_back(fault(1, "", FaultClass::CrashStop));  // die after write #1
  FaultVfs faulty(schedule);
  ScopedVfs guard(faulty);

  bool crashed = false;
  try {
    auto file = vfs().open_write(path, Vfs::OpenMode::Truncate);  // op 0
    file->write("durable");                                       // op 1: completes, then dies
    file->write("lost");
    file->close();
  } catch (const VfsCrashStop& crash) {
    crashed = true;
    EXPECT_EQ(crash.op_index, 1u);
    EXPECT_EQ(crash.op, "write");
  }
  ASSERT_TRUE(crashed);
  EXPECT_TRUE(faulty.crashed());
  // The dying op's bytes are on disk; nothing leaked after the "death" —
  // not even from unwinding destructors or fresh open/write attempts.
  EXPECT_EQ(slurp(path), "durable");
  auto post_mortem = vfs().open_write(path, Vfs::OpenMode::Truncate);
  post_mortem->write("ghost");
  post_mortem->close();
  EXPECT_EQ(slurp(path), "durable");
}

// ----------------------------------------------- JsonlSink under faults --

TEST(Vfs, JsonlSinkRecoversTornAppendsWithoutDuplicatingBytes) {
  const std::string clean_path = temp_path("jsonl_clean.jsonl");
  {
    JsonlSink clean(clean_path);
    clean.append("first-record\n");
    clean.append("second-record\n");
    clean.flush();
  }

  // The torn write leaves half of record two on disk before failing; the
  // sink must truncate back to its durable offset and rewrite — identical
  // bytes, no duplicated prefix.
  const std::string faulted_path = temp_path("jsonl_faulted.jsonl");
  FaultSchedule schedule;
  schedule.faults.push_back(fault(2, faulted_path, FaultClass::ShortWrite));
  FaultVfs faulty(schedule);
  {
    ScopedVfs guard(faulty);
    JsonlSink sink(faulted_path);
    sink.append("first-record\n");
    sink.append("second-record\n");
    sink.flush();
  }
  EXPECT_EQ(slurp(faulted_path), slurp(clean_path));
  EXPECT_GT(faulty.backoff_recorded_ms(), 0u);  // the retry actually happened
}

TEST(Vfs, JsonlSinkPropagatesPersistentAppendFailures) {
  const std::string path = temp_path("jsonl_dead.jsonl");
  FaultSchedule schedule;
  schedule.faults.push_back(fault(1, path, FaultClass::NoSpace, /*sticky=*/true));
  FaultVfs faulty(schedule);
  ScopedVfs guard(faulty);
  JsonlSink sink(path);
  EXPECT_THROW(sink.append("doomed\n"), VfsError);
}

TEST(Vfs, JsonlSinkFlushFailuresAreNoLongerSilent) {
  // The log-before-journal ordering depends on flush() actually meaning
  // durable: a persistent flush failure must surface, not vanish.
  const std::string path = temp_path("jsonl_flush.jsonl");
  FaultSchedule schedule;
  // Ops on this sink: open (0), append write (1), flush (2, dies for good).
  schedule.faults.push_back(fault(2, path, FaultClass::FlushIo, /*sticky=*/true));
  FaultVfs faulty(schedule);
  ScopedVfs guard(faulty);
  JsonlSink sink(path);
  sink.append("record\n");
  EXPECT_THROW(sink.flush(), VfsError);
}

// -------------------------------------- atomic checkpoints under faults --

TEST(Vfs, AtomicSaveSurvivesTransientRenameFailure) {
  const std::string path = temp_path("atomic_transient.json");
  Json payload = Json::object();
  payload.set("value", Json(std::uint64_t{42}));
  FaultSchedule schedule;
  schedule.faults.push_back(fault(0, ".tmp -> ", FaultClass::RenameFail));
  FaultVfs faulty(schedule);
  ScopedVfs guard(faulty);
  save_json_atomically(path, payload);
  EXPECT_EQ(Json::load_file(path).at("value").as_uint(), 42u);
}

TEST(Vfs, AtomicSaveLeavesThePreviousCheckpointOnPersistentFailure) {
  const std::string path = temp_path("atomic_previous.json");
  Json old_payload = Json::object();
  old_payload.set("generation", Json(std::uint64_t{1}));
  save_json_atomically(path, old_payload);
  const std::string before = slurp(path);

  Json new_payload = Json::object();
  new_payload.set("generation", Json(std::uint64_t{2}));
  FaultSchedule schedule;
  schedule.faults.push_back(fault(0, ".tmp -> ", FaultClass::RenameFail, /*sticky=*/true));
  FaultVfs faulty(schedule);
  {
    ScopedVfs guard(faulty);
    EXPECT_THROW(save_json_atomically(path, new_payload), VfsError);
  }
  // Write-then-rename is the whole point: the failed replacement never
  // touched the live checkpoint.
  EXPECT_EQ(slurp(path), before);
  EXPECT_EQ(Json::load_file(path).at("generation").as_uint(), 1u);
}

TEST(Vfs, AtomicSaveNeverLeavesATornCheckpointBehind) {
  const std::string path = temp_path("atomic_torn.json");
  Json old_payload = Json::object();
  old_payload.set("generation", Json(std::uint64_t{1}));
  save_json_atomically(path, old_payload);
  const std::string before = slurp(path);

  Json new_payload = Json::object();
  new_payload.set("generation", Json(std::uint64_t{2}));
  FaultSchedule schedule;
  schedule.faults.push_back(fault(1, ".tmp", FaultClass::ShortWrite, /*sticky=*/true));
  FaultVfs faulty(schedule);
  {
    ScopedVfs guard(faulty);
    EXPECT_THROW(save_json_atomically(path, new_payload), VfsError);
  }
  EXPECT_EQ(slurp(path), before);  // live checkpoint untouched by the torn tmp
}

// ------------------------------------- SpillSegmentWriter under faults --

TEST(Vfs, SegmentWriterRecoversTornRecordsAtRecordBoundaries) {
  const std::string clean_path = temp_path("seg_clean.jsonl");
  {
    SpillSegmentWriter clean(clean_path);
    clean.append("{\"record\":1}");
    clean.append("{\"record\":2}");
    clean.close();
  }

  const std::string faulted_path = temp_path("seg_faulted.jsonl");
  FaultSchedule schedule;
  // Tear the first write of record 2 (ops: open, r1, \n, r2...).
  schedule.faults.push_back(fault(3, faulted_path, FaultClass::ShortWrite));
  FaultVfs faulty(schedule);
  {
    ScopedVfs guard(faulty);
    SpillSegmentWriter writer(faulted_path);
    writer.append("{\"record\":1}");
    writer.append("{\"record\":2}");
    writer.close();
    EXPECT_EQ(writer.records(), 2u);
  }
  EXPECT_EQ(slurp(faulted_path), slurp(clean_path));
}

// --------------------------------------- SpillDeque graceful degradation --

std::vector<std::string> pop_all_tags(auto& deque) {
  std::vector<std::string> tags;
  while (!deque.empty()) tags.push_back(deque.pop_best().tag);
  return tags;
}

struct Item {
  double priority;
  std::string tag;
};
struct ItemOrder {
  bool operator()(const Item& a, const Item& b) const {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.tag < b.tag;
  }
};
struct ItemCodec {
  static Json to_json(const Item& item) {
    Json json = Json::object();
    json.set("priority", Json(item.priority));
    json.set("tag", Json(item.tag));
    return json;
  }
  static Item from_json(const Json& json) {
    return Item{json.at("priority").as_number(), json.at("tag").as_string()};
  }
};
using ItemDeque = SpillDeque<Item, ItemOrder, ItemCodec>;

std::vector<Item> some_items(std::size_t count) {
  std::vector<Item> items;
  for (std::size_t k = 0; k < count; ++k)
    items.push_back(Item{static_cast<double>((k * 7919) % 101), "tag" + std::to_string(k)});
  return items;
}

TEST(Vfs, SpillDequeDegradesToInMemoryOnAFullDiskWithIdenticalPops) {
  const std::vector<Item> items = some_items(40);
  std::vector<std::string> expected;
  {
    ItemDeque unbounded;
    for (const Item& item : items) unbounded.insert(item);
    expected = pop_all_tags(unbounded);
  }

  // The disk dies after the first couple of segment writes: the deque
  // must keep the unspillable tail hot, keep draining the segments it
  // already wrote, and pop the exact same sequence.
  ItemDeque::Config config;
  config.spill_dir = fresh_dir("vfs_degrade");
  config.mem_capacity = 4;
  FaultSchedule schedule;
  schedule.faults.push_back(fault(8, "seg-", FaultClass::NoSpace, /*sticky=*/true));
  FaultVfs faulty(schedule);
  ScopedVfs guard(faulty);
  ItemDeque deque(config);
  for (const Item& item : items) deque.insert(item);
  EXPECT_TRUE(deque.degraded());
  EXPECT_FALSE(deque.degradation().empty());
  EXPECT_EQ(pop_all_tags(deque), expected);
}

TEST(Vfs, SpillDequeDegradesFromBirthWhenTheDirectoryCannotBeCreated) {
  ItemDeque::Config config;
  config.spill_dir = temp_path("vfs_no_dir") + "/nested";
  config.mem_capacity = 2;
  FaultSchedule schedule;
  schedule.faults.push_back(fault(0, "vfs_no_dir", FaultClass::NoSpace, /*sticky=*/true));
  FaultVfs faulty(schedule);
  ScopedVfs guard(faulty);
  ItemDeque deque(config);
  EXPECT_TRUE(deque.degraded());
  std::vector<std::string> expected;
  const std::vector<Item> items = some_items(12);
  for (const Item& item : items) deque.insert(item);  // runs fully in memory
  ItemDeque unbounded;
  for (const Item& item : items) unbounded.insert(item);
  EXPECT_EQ(pop_all_tags(deque), pop_all_tags(unbounded));
}

TEST(Vfs, DegradedCapacityBoundsTheUnspillableHotSet) {
  ItemDeque::Config config;
  config.spill_dir = fresh_dir("vfs_degrade_cap");
  config.mem_capacity = 2;
  config.degraded_capacity = 6;
  FaultSchedule schedule;
  schedule.faults.push_back(fault(0, "seg-", FaultClass::NoSpace, /*sticky=*/true));
  FaultVfs faulty(schedule);
  ScopedVfs guard(faulty);
  ItemDeque deque(config);
  const std::vector<Item> items = some_items(20);
  bool failed = false;
  try {
    for (const Item& item : items) deque.insert(item);
  } catch (const VfsError& error) {
    failed = true;
    // The structured error names the degraded bound and the root cause.
    EXPECT_NE(std::string(error.reason()).find("degraded_capacity=6"), std::string::npos);
    EXPECT_FALSE(error.transient());
  }
  EXPECT_TRUE(failed) << "an unbounded degraded frontier would exhaust memory silently";
  EXPECT_TRUE(deque.degraded());
}

TEST(Vfs, SpillDequeMergeFailureDegradesWithoutLosingRecords) {
  const std::vector<Item> items = some_items(60);
  std::vector<std::string> expected;
  {
    ItemDeque unbounded;
    for (const Item& item : items) unbounded.insert(item);
    expected = pop_all_tags(unbounded);
  }

  // Let several segments spill fine, then kill the disk mid-merge: the
  // merge reads through scratch readers, so the live segments are intact
  // and the deque degrades instead of losing the records the failed merge
  // had already consumed.
  ItemDeque::Config config;
  config.spill_dir = fresh_dir("vfs_merge_fail");
  config.mem_capacity = 4;
  config.max_segments = 2;
  FaultSchedule schedule;
  schedule.faults.push_back(fault(40, "seg-", FaultClass::NoSpace, /*sticky=*/true));
  FaultVfs faulty(schedule);
  ScopedVfs guard(faulty);
  ItemDeque deque(config);
  for (const Item& item : items) deque.insert(item);
  EXPECT_TRUE(deque.degraded());
  EXPECT_EQ(pop_all_tags(deque), expected);
}

}  // namespace
}  // namespace aurv::support
