// Tests for the sharded work-queue primitive: in-order completion stream,
// lowest-shard error determinism, error-free-prefix semantics, and the
// in-flight backpressure window.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/parallel.hpp"

namespace aurv::support {
namespace {

TEST(RunSharded, CompletionIsInShardOrderAtAnyThreadCount) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::size_t> completed;
    std::mutex mutex;
    ShardedRunOptions options;
    options.threads = threads;
    run_sharded(
        40, [](std::size_t) {},
        [&](std::size_t shard) {
          const std::scoped_lock lock(mutex);
          completed.push_back(shard);
        },
        options);
    ASSERT_EQ(completed.size(), 40u);
    for (std::size_t k = 0; k < completed.size(); ++k) EXPECT_EQ(completed[k], k);
  }
}

TEST(RunSharded, LowestShardErrorWinsAndStopsTheStream) {
  // Shards 3 and 7 fail; 3 fails *slowly*, so a first-caught policy would
  // surface 7. The contract: error from shard 3, completes exactly 0..2.
  std::vector<std::size_t> completed;
  std::mutex mutex;
  ShardedRunOptions options;
  options.threads = 4;
  try {
    run_sharded(
        12,
        [](std::size_t shard) {
          if (shard == 3) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            throw std::runtime_error("slow-3");
          }
          if (shard == 7) throw std::runtime_error("fast-7");
        },
        [&](std::size_t shard) {
          const std::scoped_lock lock(mutex);
          completed.push_back(shard);
        },
        options);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "slow-3");
  }
  EXPECT_EQ(completed, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(RunSharded, FailureStopsClaimingTheDoomedTail) {
  // Serial execution makes the cut deterministic: shard 0 fails, so shards
  // 1..19 — whose results would be discarded with the rethrow — never run.
  std::atomic<int> bodies{0};
  ShardedRunOptions options;
  options.threads = 1;
  EXPECT_THROW(run_sharded(
                   20,
                   [&](std::size_t shard) {
                     bodies.fetch_add(1);
                     if (shard == 0) throw std::runtime_error("x");
                   },
                   {}, options),
               std::runtime_error);
  EXPECT_EQ(bodies.load(), 1);
}

TEST(RunSharded, BackpressureBoundsClaimedButUndrainedShards) {
  // Shard 0 is a straggler; without the window, the other workers would
  // race through all remaining shards while the drain sits at 0.
  constexpr std::size_t kWindow = 6;
  std::atomic<std::size_t> started{0};
  std::atomic<std::size_t> drained{0};
  std::atomic<std::size_t> max_in_flight{0};
  ShardedRunOptions options;
  options.threads = 4;
  options.max_in_flight = kWindow;
  run_sharded(
      64,
      [&](std::size_t shard) {
        const std::size_t in_flight = started.fetch_add(1) + 1 - drained.load();
        std::size_t seen = max_in_flight.load();
        while (in_flight > seen && !max_in_flight.compare_exchange_weak(seen, in_flight)) {
        }
        if (shard == 0) std::this_thread::sleep_for(std::chrono::milliseconds(80));
      },
      [&](std::size_t) { drained.fetch_add(1); }, options);
  EXPECT_EQ(drained.load(), 64u);
  // +1: the drain advances its cursor just before invoking complete, so a
  // freshly unblocked body can observe `drained` lagging by one.
  EXPECT_LE(max_in_flight.load(), kWindow + 1);
}

}  // namespace
}  // namespace aurv::support
