// The PR-8 observability contract, enforced end to end:
//
//   * the prune-provenance stream is byte-identical at any worker count,
//     with spilling on or off, and across checkpoint/resume — and turning
//     it on changes no other artifact, including the checkpoint bytes;
//   * the trace sink records real runs as loadable Chrome-trace JSON and
//     never perturbs a deterministic artifact;
//   * both writers degrade soft under injected I/O faults: torn writes
//     are absorbed by bounded retry, a dead disk drops the diagnostic
//     stream (visible in trace.dropped / provenance.dropped) while the
//     run and its artifacts continue untouched;
//   * the activity stack feeds the heartbeat's "phase" field.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>

#include "test_paths.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/search_driver.hpp"
#include "support/json.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"
#include "support/vfs.hpp"

namespace aurv {
namespace {

namespace fs = std::filesystem;
namespace telemetry = support::telemetry;
namespace trace = support::trace;
using exp::SearchOptions;
using exp::SearchSpec;
using numeric::Rational;
using support::FaultClass;
using support::FaultSchedule;
using support::FaultSpec;
using support::FaultVfs;
using support::Json;
using support::ScopedVfs;
using testpaths::fresh_dir;
using testpaths::slurp;
using testpaths::temp_path;

/// The same fast tuple-space spec the telemetry/spill determinism tests
/// use: 48 boxes in waves of 8 — several waves, incumbents and prunes.
SearchSpec search_spec() {
  SearchSpec spec;
  spec.name = "test_provenance_search";
  spec.algorithm = "aurv";
  spec.objective = "max-meet-time";
  spec.space.family = search::SearchSpace::Family::Tuple;
  spec.space.chi = -1;
  spec.space.fixed = {{"r", Rational(1)},
                      {"y", Rational(numeric::BigInt(6), numeric::BigInt(5))},
                      {"phi", Rational(0)}};
  spec.space.dim_names = {"x", "t"};
  spec.box = {search::Interval{Rational(numeric::BigInt(3), numeric::BigInt(2)),
                               Rational(numeric::BigInt(7), numeric::BigInt(2))},
              search::Interval{Rational(0), Rational(3)}};
  spec.limits.max_boxes = 48;
  spec.limits.wave_size = 8;
  spec.limits.min_width = Rational(numeric::BigInt(1), numeric::BigInt(64));
  spec.engine.max_events = 2'000'000;
  spec.engine.horizon = Rational(256);
  return spec;
}

exp::ScenarioSpec campaign_spec() {
  exp::ScenarioSpec spec;
  spec.name = "test_provenance_campaign";
  spec.algorithm = "aurv";
  spec.seed = 7;
  spec.sampler = "type2";
  spec.count = 40;
  spec.engine.max_events = 2'000'000;
  return spec;
}

/// Returns every regular file under `dir` as name -> contents; the
/// sharpest possible "these two runs left identical state" comparator.
std::map<std::string, std::string> dir_bytes(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file())
      files[entry.path().filename().string()] = slurp(entry.path().string());
  }
  return files;
}

/// Re-arms the global sink on a healthy scratch path and seals it again,
/// clearing any degraded state a fault test left behind.
void reset_trace_sink() {
  trace::sink().open(temp_path("trace_reset_scratch.json"));
  trace::sink().close();
}

std::uint64_t counter_value(const char* name) {
  const auto counters = telemetry::registry().counter_values();
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

// ---------------------------------------------------------- activity stack --

TEST(TraceProvenance, ActivityStackTracksNestedAndOutOfOrderSpans) {
  telemetry::ActivityStack& stack = telemetry::activity();
  EXPECT_EQ(stack.current(), "");

  const std::uint64_t outer = stack.push("run");
  EXPECT_EQ(stack.current(), "run");
  const std::uint64_t inner = stack.push("wave");
  EXPECT_EQ(stack.current(), "wave");

  // Spans are not strictly LIFO (shard-local spans end in merge order):
  // popping the outer token first must keep the inner name current.
  stack.pop(outer);
  EXPECT_EQ(stack.current(), "wave");
  stack.pop(inner);
  EXPECT_EQ(stack.current(), "");

  stack.pop(inner);  // double-pop is a no-op, not a crash
  EXPECT_EQ(stack.current(), "");
}

TEST(TraceProvenance, HeartbeatLinesNameTheActivePhase) {
  const std::string path = temp_path("trace_heartbeat_phase.jsonl");
  std::FILE* out = std::fopen(path.c_str(), "wb");
  ASSERT_NE(out, nullptr);
  {
    telemetry::HeartbeatConfig config;
    config.interval_s = 0.0;  // manual beats only
    config.out = out;
    telemetry::Heartbeat heartbeat(std::move(config));
    {
      const telemetry::ScopedActivity phase("wave");
      heartbeat.beat_now();
    }
    heartbeat.beat_now();  // idle again
  }
  std::fclose(out);

  const std::string text = slurp(path);
  const std::size_t split = text.find('\n');
  ASSERT_NE(split, std::string::npos);
  const Json busy = Json::parse(text.substr(0, split));
  EXPECT_EQ(busy.at("phase").as_string(), "wave");
  const Json idle = Json::parse(text.substr(split + 1));
  EXPECT_EQ(idle.at("phase").as_string(), "");
}

// ------------------------------------------- provenance determinism matrix --

TEST(TraceProvenance, ProvenanceByteIdenticalAcrossWorkersAndSpill) {
  const SearchSpec spec = search_spec();

  SearchOptions serial;
  serial.max_shards = 1;
  serial.provenance_path = temp_path("prov_serial.jsonl");
  const std::string serial_cert = exp::run_search(spec, serial).certificate(spec).dump(2);
  const std::string serial_stream = slurp(serial.provenance_path);
  EXPECT_FALSE(serial_stream.empty());

  SearchOptions parallel;
  parallel.max_shards = 4;
  parallel.provenance_path = temp_path("prov_parallel.jsonl");
  parallel.spill_dir = fresh_dir("prov_spill");
  parallel.frontier_mem = 2;  // forces real spill traffic
  EXPECT_EQ(exp::run_search(spec, parallel).certificate(spec).dump(2), serial_cert);
  EXPECT_EQ(slurp(parallel.provenance_path), serial_stream)
      << "the provenance stream is part of the determinism contract";

  // And recording provenance must not have changed the certificate at all.
  SearchOptions plain;
  plain.max_shards = 1;
  EXPECT_EQ(exp::run_search(spec, plain).certificate(spec).dump(2), serial_cert);
}

TEST(TraceProvenance, ProvenanceSurvivesResumeAndLeavesCheckpointsUntouched) {
  const SearchSpec spec = search_spec();

  // Ground truth: one-shot run with provenance.
  SearchOptions oneshot;
  oneshot.max_shards = 2;
  oneshot.provenance_path = temp_path("prov_oneshot.jsonl");
  const std::string full_cert = exp::run_search(spec, oneshot).certificate(spec).dump(2);
  const std::string full_stream = slurp(oneshot.provenance_path);

  // Sliced run A: provenance on. The stream lives outside the checkpoint
  // directory so the directories stay comparable across configurations.
  const std::string dir_with = fresh_dir("prov_ckpt_with");
  SearchOptions sliced;
  sliced.max_shards = 2;
  sliced.provenance_path = temp_path("prov_sliced.jsonl");
  sliced.checkpoint_path = dir_with + "/search.ckpt";
  sliced.checkpoint_every = 2;
  sliced.max_waves = 2;
  EXPECT_FALSE(exp::run_search(spec, sliced).bnb.complete());
  const auto ckpt_with_provenance = dir_bytes(dir_with);

  // Sliced run B: identical but provenance off. Checkpoint bytes must be
  // identical — the stream needs no checkpoint bookkeeping.
  const std::string dir_without = fresh_dir("prov_ckpt_without");
  SearchOptions control = sliced;
  control.provenance_path.clear();
  control.checkpoint_path = dir_without + "/search.ckpt";
  EXPECT_FALSE(exp::run_search(spec, control).bnb.complete());
  EXPECT_EQ(dir_bytes(dir_without), ckpt_with_provenance)
      << "enabling --provenance must not change a checkpoint byte";

  // Resume run A to completion: certificate and stream match one-shot.
  sliced.resume = true;
  sliced.max_waves = 0;
  const exp::SearchRunResult resumed = exp::run_search(spec, sliced);
  EXPECT_TRUE(resumed.bnb.complete());
  EXPECT_EQ(resumed.certificate(spec).dump(2), full_cert);
  EXPECT_EQ(slurp(sliced.provenance_path), full_stream)
      << "resume must extend the stream to the identical bytes";
}

TEST(TraceProvenance, ProvenanceResumeTruncatesRecordsPastTheCheckpoint) {
  const SearchSpec spec = search_spec();

  SearchOptions oneshot;
  oneshot.max_shards = 1;
  oneshot.provenance_path = temp_path("prov_trunc_oneshot.jsonl");
  (void)exp::run_search(spec, oneshot);
  const std::string full_stream = slurp(oneshot.provenance_path);

  // Slice, then append garbage the journal never folded (simulating a
  // kill after the provenance flush but before the journal append —
  // flush order makes the other interleaving impossible).
  const std::string dir = fresh_dir("prov_trunc_ckpt");
  SearchOptions sliced;
  sliced.max_shards = 1;
  sliced.provenance_path = temp_path("prov_trunc_sliced.jsonl");
  sliced.checkpoint_path = dir + "/search.ckpt";
  sliced.max_waves = 3;
  ASSERT_FALSE(exp::run_search(spec, sliced).bnb.complete());
  {
    auto file = support::vfs().open_write(sliced.provenance_path,
                                          support::Vfs::OpenMode::Append);
    file->write("{\"wave\":4,\"box\":\"zz\",\"action\":\"leaf\",\"bound\":0,\"inc\":0}\n");
    file->close();
  }

  sliced.resume = true;
  sliced.max_waves = 0;
  const exp::SearchRunResult resumed = exp::run_search(spec, sliced);
  EXPECT_TRUE(resumed.bnb.complete());
  EXPECT_EQ(slurp(sliced.provenance_path), full_stream)
      << "resume must truncate past-checkpoint records before re-running";
}

// ----------------------------------------------------------- trace content --

TEST(TraceProvenance, TraceRecordsLoadableChromeTraceWithoutPerturbingArtifacts) {
  const SearchSpec spec = search_spec();

  SearchOptions plain;
  plain.max_shards = 2;
  const std::string baseline = exp::run_search(spec, plain).certificate(spec).dump(2);

  telemetry::registry().reset();
  const std::string trace_path = temp_path("trace_search.json");
  ASSERT_TRUE(trace::sink().open(trace_path));
  SearchOptions traced;
  traced.max_shards = 2;
  traced.checkpoint_path = fresh_dir("trace_ckpt") + "/search.ckpt";
  traced.checkpoint_every = 2;
  traced.spill_dir = fresh_dir("trace_spill");
  traced.frontier_mem = 2;
  const std::string traced_cert = exp::run_search(spec, traced).certificate(spec).dump(2);
  trace::sink().close();
  EXPECT_EQ(traced_cert, baseline) << "tracing must not change the certificate";
  EXPECT_GT(counter_value("trace.events"), 0u);
  EXPECT_EQ(counter_value("trace.dropped"), 0u);

  const Json document = Json::parse(slurp(trace_path));
  const auto& events = document.at("traceEvents").as_array();
  ASSERT_GT(events.size(), 4u);
  std::map<std::string, std::uint64_t> names;
  for (const Json& event : events) ++names[event.at("name").as_string()];
  EXPECT_EQ(names.count("process_name"), 1u);  // metadata record
  EXPECT_GT(names["wave"], 0u);
  EXPECT_GT(names["box"], 0u);
  EXPECT_GT(names["checkpoint"], 0u);
  EXPECT_GT(names["spill.segment"], 0u) << "frontier_mem=2 must spill";
  for (const Json& event : events) {
    EXPECT_TRUE(event.at("ph").is_string());
    EXPECT_EQ(event.at("pid").as_uint(), 1u);
  }

  // The campaign runner's shard spans land in the same sink vocabulary.
  const std::string campaign_path = temp_path("trace_campaign.json");
  ASSERT_TRUE(trace::sink().open(campaign_path));
  (void)exp::run_campaign(campaign_spec(), {});
  trace::sink().close();
  const Json campaign_doc = Json::parse(slurp(campaign_path));
  bool saw_shard = false;
  for (const Json& event : campaign_doc.at("traceEvents").as_array())
    saw_shard = saw_shard || event.at("name").as_string() == "shard";
  EXPECT_TRUE(saw_shard);
}

// -------------------------------------------------------- fault tolerance --

TEST(TraceProvenance, TraceWriterAbsorbsTornWritesAndSurvivesDeadDisk) {
  const SearchSpec spec = search_spec();
  SearchOptions plain;
  plain.max_shards = 2;
  const std::string baseline = exp::run_search(spec, plain).certificate(spec).dump(2);

  // Torn write: the first write to the trace file fails halfway, once.
  // Bounded retry rewinds the torn prefix and the file stays loadable.
  {
    telemetry::registry().reset();
    FaultSpec torn;
    torn.after = 1;  // let open_write through, tear the first write
    torn.path_contains = "trace_torn.json";
    torn.klass = FaultClass::ShortWrite;
    FaultVfs faulty{FaultSchedule{{torn}}};
    const ScopedVfs seam(faulty);
    const std::string path = temp_path("trace_torn.json");
    ASSERT_TRUE(trace::sink().open(path));
    SearchOptions traced;
    traced.max_shards = 2;
    EXPECT_EQ(exp::run_search(spec, traced).certificate(spec).dump(2), baseline);
    trace::sink().close();
    EXPECT_FALSE(trace::sink().degraded());
    EXPECT_GT(counter_value("trace.retries"), 0u);
    EXPECT_EQ(counter_value("trace.dropped"), 0u);
    EXPECT_GT(Json::parse(slurp(path)).at("traceEvents").as_array().size(), 2u);
  }

  // Dead disk at open: the sink degrades at open time, every would-be
  // span is counted, the run is untouched.
  {
    telemetry::registry().reset();
    FaultSpec dead;
    dead.after = 0;
    dead.path_contains = "trace_dead_open.json";
    dead.klass = FaultClass::NoSpace;
    dead.sticky = true;
    FaultVfs faulty{FaultSchedule{{dead}}};
    const ScopedVfs seam(faulty);
    EXPECT_FALSE(trace::sink().open(temp_path("trace_dead_open.json")));
    EXPECT_TRUE(trace::sink().degraded());
    SearchOptions traced;
    traced.max_shards = 2;
    EXPECT_EQ(exp::run_search(spec, traced).certificate(spec).dump(2), baseline);
    trace::sink().close();
    EXPECT_GT(counter_value("trace.dropped"), 0u)
        << "dropped spans must be visible in the metrics";
  }

  // Disk dies mid-stream (sticky failure on the flush): the sink drops
  // its pending events, degrades, and the run still completes untouched.
  {
    telemetry::registry().reset();
    FaultSpec dead;
    dead.after = 1;
    dead.path_contains = "trace_dead_flush.json";
    dead.klass = FaultClass::NoSpace;
    dead.sticky = true;
    FaultVfs faulty{FaultSchedule{{dead}}};
    const ScopedVfs seam(faulty);
    ASSERT_TRUE(trace::sink().open(temp_path("trace_dead_flush.json")));
    SearchOptions traced;
    traced.max_shards = 2;
    EXPECT_EQ(exp::run_search(spec, traced).certificate(spec).dump(2), baseline);
    trace::sink().close();
    EXPECT_TRUE(trace::sink().degraded());
    EXPECT_GT(counter_value("trace.dropped"), 0u);
  }
  reset_trace_sink();
}

TEST(TraceProvenance, ProvenanceWriterAbsorbsTornWritesAndDegradesSoft) {
  const SearchSpec spec = search_spec();
  SearchOptions plain;
  plain.max_shards = 2;
  const std::string baseline = exp::run_search(spec, plain).certificate(spec).dump(2);
  SearchOptions clean;
  clean.max_shards = 2;
  clean.provenance_path = temp_path("prov_clean.jsonl");
  (void)exp::run_search(spec, clean);
  const std::string clean_stream = slurp(clean.provenance_path);

  // Torn write: absorbed by the sink's bounded retry; the stream is
  // byte-identical to the unfaulted run.
  {
    telemetry::registry().reset();
    FaultSpec torn;
    torn.after = 2;
    torn.path_contains = "prov_torn.jsonl";
    torn.klass = FaultClass::ShortWrite;
    FaultVfs faulty{FaultSchedule{{torn}}};
    const ScopedVfs seam(faulty);
    SearchOptions faulted;
    faulted.max_shards = 2;
    faulted.provenance_path = temp_path("prov_torn.jsonl");
    EXPECT_EQ(exp::run_search(spec, faulted).certificate(spec).dump(2), baseline);
    EXPECT_GT(counter_value("vfs.retries"), 0u);
    EXPECT_EQ(counter_value("provenance.dropped"), 0u);
    EXPECT_EQ(slurp(faulted.provenance_path), clean_stream);
  }

  // Sticky dead disk: the stream degrades soft — dropped records are
  // counted, the run and its certificate continue untouched.
  {
    telemetry::registry().reset();
    FaultSpec dead;
    dead.after = 3;
    dead.path_contains = "prov_dead.jsonl";
    dead.klass = FaultClass::NoSpace;
    dead.sticky = true;
    FaultVfs faulty{FaultSchedule{{dead}}};
    const ScopedVfs seam(faulty);
    SearchOptions faulted;
    faulted.max_shards = 2;
    faulted.provenance_path = temp_path("prov_dead.jsonl");
    EXPECT_EQ(exp::run_search(spec, faulted).certificate(spec).dump(2), baseline);
    EXPECT_GT(counter_value("provenance.dropped"), 0u)
        << "dropped records must be visible in the metrics";
  }
}

}  // namespace
}  // namespace aurv
