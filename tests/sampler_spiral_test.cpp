// Tests for the structured instance samplers (every sample must land in its
// advertised region of the Theorem 3.1 characterization) and for the
// alternative SpiralSearch procedure (coverage, return-to-start, duration,
// and the CGKK-contract equivalence with PlanarCowWalk).
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <set>
#include <vector>

#include "agents/sampler.hpp"
#include "algo/cow_walk.hpp"
#include "algo/spiral.hpp"
#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "program/combinators.hpp"
#include "sim/engine.hpp"

namespace aurv {
namespace {

using agents::Instance;
using core::InstanceKind;
using geom::Vec2;

TEST(Sampler, EverySampleLandsInItsRegion) {
  std::mt19937_64 rng(2026);
  const struct {
    Instance (*sample)(std::mt19937_64&, const agents::SamplerRanges&);
    InstanceKind expected;
  } samplers[] = {
      {agents::sample_type1, InstanceKind::Type1},
      {agents::sample_type2, InstanceKind::Type2},
      {agents::sample_type3, InstanceKind::Type3},
      {agents::sample_type4, InstanceKind::Type4},
      {agents::sample_boundary_s1, InstanceKind::BoundaryS1},
      {agents::sample_boundary_s2, InstanceKind::BoundaryS2},
      {agents::sample_infeasible, InstanceKind::Infeasible},
  };
  for (const auto& sampler : samplers) {
    for (int k = 0; k < 300; ++k) {
      const Instance instance = sampler.sample(rng, {});
      EXPECT_EQ(core::classify(instance).kind, sampler.expected)
          << instance.to_string() << " (draw " << k << ")";
    }
  }
}

TEST(Sampler, SamplesAreDeterministicGivenSeed) {
  std::mt19937_64 a(7);
  std::mt19937_64 b(7);
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(agents::sample_type3(a, {}).to_string(),
              agents::sample_type3(b, {}).to_string());
  }
}

TEST(SpiralSearch, ReturnsToStart) {
  for (std::uint32_t i = 1; i <= 4; ++i) {
    std::vector<program::Instruction> path;
    for (const program::Instruction& instruction : algo::spiral_search(i)) {
      path.push_back(instruction);
    }
    EXPECT_NEAR(program::net_displacement(path).norm(), 0.0, 1e-9) << i;
    EXPECT_EQ(program::total_duration(path), algo::spiral_search_duration(i)) << i;
  }
  EXPECT_THROW((void)algo::spiral_search(0), std::logic_error);
  EXPECT_THROW((void)algo::spiral_search(algo::kMaxSpiralIndex + 1), std::logic_error);
}

TEST(SpiralSearch, CoversTargetSquareAtPitchResolution) {
  // Every grid point of [-2^i, 2^i]^2 at pitch 1/2^i must be within one
  // pitch of the traced path.
  const std::uint32_t i = 2;
  const double pitch = std::ldexp(1.0, -static_cast<int>(i));
  // Trace the polyline.
  std::vector<Vec2> waypoints{Vec2{0, 0}};
  Vec2 at{};
  for (const program::Instruction& instruction : algo::spiral_search(i)) {
    if (const auto* move = std::get_if<program::Go>(&instruction)) {
      at += move->distance.to_double() * geom::unit_vector(move->heading);
    }
    waypoints.push_back(at);
  }
  const auto distance_to_path = [&](Vec2 p) {
    double best = 1e300;
    for (std::size_t k = 1; k < waypoints.size(); ++k) {
      const Vec2 a = waypoints[k - 1];
      const Vec2 b = waypoints[k];
      const Vec2 ab = b - a;
      const double len2 = ab.norm2();
      const double s = len2 > 0 ? std::clamp((p - a).dot(ab) / len2, 0.0, 1.0) : 0.0;
      best = std::min(best, geom::dist(p, a + s * ab));
    }
    return best;
  };
  const double reach = std::ldexp(1.0, static_cast<int>(i));
  for (double x = -reach; x <= reach + 1e-9; x += 4 * pitch) {
    for (double y = -reach; y <= reach + 1e-9; y += 4 * pitch) {
      EXPECT_LE(distance_to_path({x, y}), pitch + 1e-9) << x << "," << y;
    }
  }
}

TEST(SpiralSearch, ShorterThanPlanarCowWalk) {
  // The design-choice trade-off TAB-8 quantifies: the spiral covers the
  // same square in a fraction of the cow walk's duration.
  for (std::uint32_t i = 2; i <= 4; ++i) {
    const numeric::Rational spiral = algo::spiral_search_duration(i);
    const numeric::Rational walk = algo::planar_cow_walk_duration(i);
    EXPECT_LT(spiral, walk) << i;
    // At least 2x shorter on these phases (empirically ~3.5-4x).
    EXPECT_LT(spiral * numeric::Rational(2), walk) << i;
  }
}

TEST(SpiralSearch, CgkkSpiralSatisfiesTheLockStepContract) {
  // Same t=0, tau=1 contract as the cow-walk CGKK (the fixed-point argument
  // is search-agnostic): the spiral variant must also meet.
  const Instance rotated = Instance::synchronous(0.8, Vec2{2.0, 0.0}, geom::kPi / 2, 0, 1);
  const Instance scaled(0.8, Vec2{1.5, 0.0}, 0.0, 1, 2, 0, 1);
  for (const Instance& instance : {rotated, scaled}) {
    sim::EngineConfig config;
    config.max_events = 2'000'000;
    const sim::SimResult result =
        sim::Engine(instance, config).run([] { return algo::cgkk_spiral(); });
    EXPECT_TRUE(result.met) << instance.to_string()
                            << " min dist " << result.min_distance_seen;
  }
}

}  // namespace
}  // namespace aurv
