// Tests for the dedicated boundary algorithms (Lemmas 3.8/3.9): the S1/S2
// instances AlmostUniversalRV provably misses are individually feasible,
// meeting at distance *exactly* r.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/boundary.hpp"
#include "geom/angle.hpp"
#include "sim/engine.hpp"

namespace aurv::algo {
namespace {

using agents::Instance;
using geom::Vec2;
using numeric::Rational;

sim::SimResult run_dedicated(const Instance& instance, bool s2) {
  sim::EngineConfig config;
  config.max_events = 100'000;
  const sim::AlgorithmFactory factory = [&instance, s2] {
    return s2 ? boundary_s2_algorithm(instance) : boundary_s1_algorithm(instance);
  };
  return sim::Engine(instance, config).run(factory);
}

TEST(BoundaryS1, MeetsAtExactlyRadiusWhenBStillAsleep) {
  // t = dist - r: A covers dist - r by time t, reaching distance exactly r
  // at the instant B wakes.
  const double r = 1.0;
  const Vec2 b_start{3.0, 4.0};  // dist = 5
  const Instance instance = Instance::synchronous(r, b_start, 0.0, Rational(4), 1);
  const sim::SimResult result = run_dedicated(instance, /*s2=*/false);
  ASSERT_TRUE(result.met);
  EXPECT_NEAR(result.meet_time, 4.0, 1e-6);
  EXPECT_NEAR(result.final_distance, r, 1e-6);
  // B never moved.
  EXPECT_NEAR(geom::dist(result.b_position, b_start), 0.0, 1e-9);
}

TEST(BoundaryS1, WorksAcrossDirectionsAndScales) {
  for (int k = 0; k < 12; ++k) {
    const double theta = geom::kTwoPi * k / 12.0;
    const double r = 0.25 + 0.25 * (k % 3);
    const double t = 1.0 + k * 0.5;
    const Vec2 b_start = (t + r) * geom::unit_vector(theta);
    const Instance instance =
        Instance::synchronous(r, b_start, 0.0, Rational::from_double(t), 1);
    const sim::SimResult result = run_dedicated(instance, /*s2=*/false);
    ASSERT_TRUE(result.met) << "k=" << k;
    EXPECT_NEAR(result.final_distance, r, 1e-6) << "k=" << k;
  }
}

TEST(BoundaryS1, TrivialOverlapMeetsImmediately) {
  const Instance instance = Instance::synchronous(2.0, Vec2{1.0, 0.0}, 0.0, 0, 1);
  const sim::SimResult result = run_dedicated(instance, /*s2=*/false);
  ASSERT_TRUE(result.met);
  EXPECT_DOUBLE_EQ(result.meet_time, 0.0);
}

TEST(BoundaryS1, RejectsWrongInstances) {
  // Wrong chirality / rotation / asynchrony / infeasible t: checked misuse.
  const auto run = [](const Instance& instance) {
    auto program = boundary_s1_algorithm(instance);
    (void)program.next();
  };
  EXPECT_THROW(run(Instance::synchronous(1.0, Vec2{5, 0}, 0.0, 4, -1)), std::logic_error);
  EXPECT_THROW(run(Instance::synchronous(1.0, Vec2{5, 0}, 0.5, 4, 1)), std::logic_error);
  EXPECT_THROW(run(Instance(1.0, Vec2{5, 0}, 0.0, 2, 1, 4, 1)), std::logic_error);
  EXPECT_THROW(run(Instance::synchronous(1.0, Vec2{5, 0}, 0.0, 1, 1)), std::logic_error);
}

TEST(BoundaryS2, Lemma39CaseProjBNorthOfProjA) {
  // chi = -1, phi = 0: canonical line is horizontal through y/2. Place B
  // "ahead" along the line (its projection East of A's in the paper's Sigma
  // convention is irrelevant — both cases must meet).
  const double r = 1.0;
  const Vec2 b_start{4.0, 1.0};  // dist_proj = 4 along the x-axis
  const Rational t = 3;          // = dist_proj - r
  const Instance instance = Instance::synchronous(r, b_start, 0.0, t, -1);
  const sim::SimResult result = run_dedicated(instance, /*s2=*/true);
  ASSERT_TRUE(result.met);
  EXPECT_NEAR(result.final_distance, r, 1e-6);
  // Both agents ended on the canonical line y = 1/2.
  EXPECT_NEAR(result.a_position.y, 0.5, 1e-6);
  EXPECT_NEAR(result.b_position.y, 0.5, 1e-6);
}

TEST(BoundaryS2, WorksAcrossRotationsAndOffsets) {
  // Sweep phi and lateral offsets; t is pinned to dist_proj - r each time.
  for (int k = 0; k < 16; ++k) {
    const double phi = geom::kTwoPi * k / 16.0;
    const double r = 0.5;
    const double lateral = 0.3 + 0.2 * (k % 4);
    const double along = 2.0 + 0.25 * k;
    const Vec2 dir = geom::unit_vector(phi / 2.0);
    const Vec2 b_start = along * dir + lateral * dir.perp();
    const Instance probe = Instance::synchronous(r, b_start, phi, 0, -1);
    const double dist_proj = probe.projection_distance();
    ASSERT_NEAR(dist_proj, along, 1e-9);
    if (dist_proj <= r) continue;
    const Instance instance =
        probe.with_delay(Rational::from_double(dist_proj - r));
    const sim::SimResult result = run_dedicated(instance, /*s2=*/true);
    ASSERT_TRUE(result.met) << "k=" << k << " " << instance.to_string();
    EXPECT_NEAR(result.final_distance, r, 1e-5) << "k=" << k;
  }
}

TEST(BoundaryS2, InteriorInstancesAlsoCovered) {
  // Lemma 3.9's algorithm also works for t > dist_proj - r (the "if"
  // direction of the feasibility characterization uses it for t >= ...).
  const Instance instance = Instance::synchronous(1.0, Vec2{4.0, 1.0}, 0.0, 5, -1);
  const sim::SimResult result = run_dedicated(instance, /*s2=*/true);
  ASSERT_TRUE(result.met);
  EXPECT_LE(result.final_distance, 1.0 + 1e-6);
}

TEST(BoundaryS2, RejectsWrongInstances) {
  const auto run = [](const Instance& instance) {
    auto program = boundary_s2_algorithm(instance);
    (void)program.next();
  };
  EXPECT_THROW(run(Instance::synchronous(1.0, Vec2{4, 1}, 0.0, 3, 1)), std::logic_error);
  EXPECT_THROW(run(Instance(1.0, Vec2{4, 1}, 0.0, 2, 1, 3, -1)), std::logic_error);
  EXPECT_THROW(run(Instance::synchronous(1.0, Vec2{9, 0}, 0.0, 1, -1)), std::logic_error);
}

TEST(BoundaryS2, AgentsMoveSymmetricallyAboutCanonicalLine) {
  // Trace check of the reflection symmetry (Lemma 2.1): with t = 0 both
  // agents reach the line simultaneously, mirror images of each other.
  const Instance instance = Instance::synchronous(2.0, Vec2{1.0, 3.0}, 0.0, 0, -1);
  // dist_proj = 1 <= r: boundary algorithm is legal (t=0 >= 1-2).
  sim::EngineConfig config;
  config.trace_capacity = 256;
  const sim::AlgorithmFactory factory = [&instance] {
    return boundary_s2_algorithm(instance);
  };
  const sim::SimResult result = sim::Engine(instance, config).run(factory);
  const geom::Line line = instance.canonical_line();
  for (const sim::TracePoint& point : result.trace.points()) {
    EXPECT_NEAR(line.signed_distance_to(point.a), -line.signed_distance_to(point.b), 1e-6);
  }
}

}  // namespace
}  // namespace aurv::algo
