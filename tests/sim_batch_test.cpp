// Tests for the parallel sweep runner: order determinism, serial/parallel
// equivalence, exception propagation.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/almost_universal.hpp"
#include "program/combinators.hpp"
#include "sim/batch.hpp"

namespace aurv::sim {
namespace {

using agents::Instance;
using geom::Vec2;

std::vector<Instance> sweep_instances() {
  std::vector<Instance> instances;
  for (int k = 1; k <= 12; ++k) {
    instances.push_back(
        Instance::synchronous(1.0, Vec2{1.0 + 0.1 * k, 0.2 * k}, 0.0, k, 1));
  }
  return instances;
}

TEST(Batch, ResultsInJobOrderAndMatchSerial) {
  const std::vector<Instance> instances = sweep_instances();
  EngineConfig config;
  config.max_events = 500'000;
  const AlgorithmFactory aurv = [] { return core::almost_universal_rv(); };

  const std::vector<SimResult> parallel = run_sweep(instances, aurv, config, /*threads=*/8);
  const std::vector<SimResult> serial = run_sweep(instances, aurv, config, /*threads=*/1);
  ASSERT_EQ(parallel.size(), instances.size());
  ASSERT_EQ(serial.size(), instances.size());
  for (std::size_t k = 0; k < instances.size(); ++k) {
    // Simulation is deterministic: parallel and serial agree bit-for-bit.
    EXPECT_EQ(parallel[k].met, serial[k].met) << k;
    EXPECT_EQ(parallel[k].reason, serial[k].reason) << k;
    EXPECT_EQ(parallel[k].meet_time, serial[k].meet_time) << k;
    EXPECT_EQ(parallel[k].events, serial[k].events) << k;
    EXPECT_EQ(parallel[k].a_position, serial[k].a_position) << k;
  }
}

TEST(Batch, EmptyAndSingle) {
  EXPECT_TRUE(run_batch({}).empty());
  const Instance instance = Instance::synchronous(2.0, Vec2{1.0, 0.0}, 0.0, 0, 1);
  const std::vector<SimResult> results =
      run_sweep({instance}, [] { return program::replay({}); });
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].met);  // trivial overlap
}

TEST(Batch, HeterogeneousJobs) {
  std::vector<BatchJob> jobs;
  EngineConfig tight;
  tight.max_events = 10;
  jobs.push_back(BatchJob{Instance::synchronous(2.0, Vec2{1.0, 0.0}, 0.0, 0, 1),
                          [] { return program::replay({}); },
                          {}});
  jobs.push_back(BatchJob{Instance::synchronous(1.0, Vec2{50.0, 0.0}, 0.0, 0, 1),
                          [] { return core::almost_universal_rv(); }, tight});
  const std::vector<SimResult> results = run_batch(std::move(jobs), 4);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].met);
  EXPECT_EQ(results[1].reason, StopReason::FuelExhausted);
}

TEST(Batch, ExceptionPropagates) {
  std::vector<BatchJob> jobs;
  for (int k = 0; k < 8; ++k) {
    jobs.push_back(BatchJob{Instance::synchronous(1.0, Vec2{5.0, 0.0}, 0.0, 0, 1),
                            []() -> program::Program {
                              throw std::runtime_error("factory failure");
                            },
                            {}});
  }
  EXPECT_THROW((void)run_batch(std::move(jobs), 4), std::runtime_error);
}

TEST(Batch, FirstExceptionInJobOrderWins) {
  // Every job throws, each with its own message, and job 0 is made the
  // *slowest* to fail — under first-scheduled semantics some later job's
  // error would almost surely surface instead. The contract is: the
  // propagated error is job 0's, at any thread count.
  const auto make_jobs = [] {
    std::vector<BatchJob> jobs;
    for (int k = 0; k < 16; ++k) {
      jobs.push_back(BatchJob{Instance::synchronous(1.0, Vec2{5.0, 0.0}, 0.0, 0, 1),
                              [k]() -> program::Program {
                                if (k == 0) {
                                  // Give every other worker ample time to
                                  // throw first.
                                  std::this_thread::sleep_for(std::chrono::milliseconds(50));
                                }
                                throw std::runtime_error("job-" + std::to_string(k));
                              },
                              {}});
    }
    return jobs;
  };
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    try {
      (void)run_batch(make_jobs(), threads);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "job-0") << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace aurv::sim
