#include "program/instruction.hpp"

#include <sstream>

#include "support/check.hpp"

namespace aurv::program {

numeric::Rational duration_of(const Instruction& instruction) {
  if (const auto* move = std::get_if<Go>(&instruction)) return move->distance;
  return std::get<Wait>(instruction).duration;
}

bool is_move(const Instruction& instruction) noexcept {
  return std::holds_alternative<Go>(instruction);
}

std::string to_string(const Instruction& instruction) {
  std::ostringstream os;
  if (const auto* move = std::get_if<Go>(&instruction)) {
    os << "go(heading=" << move->heading << ", d=" << move->distance.to_string() << ")";
  } else {
    os << "wait(" << std::get<Wait>(instruction).duration.to_string() << ")";
  }
  return os.str();
}

Instruction go(double heading, numeric::Rational distance) {
  AURV_CHECK_MSG(distance.sign() >= 0, "go distance must be nonnegative");
  return Go{heading, std::move(distance)};
}

Instruction go_east(numeric::Rational distance) { return go(kEast, std::move(distance)); }
Instruction go_west(numeric::Rational distance) { return go(kWest, std::move(distance)); }
Instruction go_north(numeric::Rational distance) { return go(kNorth, std::move(distance)); }
Instruction go_south(numeric::Rational distance) { return go(kSouth, std::move(distance)); }

Instruction wait(numeric::Rational duration) {
  AURV_CHECK_MSG(duration.sign() >= 0, "wait duration must be nonnegative");
  return Wait{std::move(duration)};
}

numeric::Rational total_duration(const std::vector<Instruction>& instructions) {
  numeric::Rational total = 0;
  for (const Instruction& instruction : instructions) total += duration_of(instruction);
  return total;
}

}  // namespace aurv::program
