// The paper's move language (Section 1.2): an algorithm is a deterministic
// sequence of
//
//   go(dir, d)  — move d of *my* length units in direction dir of *my*
//                 system of coordinates (we allow any heading angle; the
//                 paper's N/S/E/W are the four axis-aligned shorthands,
//                 possibly inside a rotated local system Rot(alpha)), and
//   wait(z)     — stay idle for z of *my* time units.
//
// Distances and durations are exact rationals (the algorithms only ever use
// dyadic values k/2^i); headings are doubles (k*pi/2^i is irrational).
// Because one local length unit is covered in exactly one local time unit,
// go(dir, d) lasts d local time units — duration_of() below is the single
// source of truth for that accounting.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "numeric/rational.hpp"
#include "support/generator.hpp"

namespace aurv::program {

struct Go {
  double heading = 0.0;            ///< local heading, radians ccw from local +x
  numeric::Rational distance = 0;  ///< local length units, must be >= 0
  friend bool operator==(const Go&, const Go&) = default;
};

struct Wait {
  numeric::Rational duration = 0;  ///< local time units, must be >= 0
  friend bool operator==(const Wait&, const Wait&) = default;
};

using Instruction = std::variant<Go, Wait>;

/// Duration of an instruction in local time units.
[[nodiscard]] numeric::Rational duration_of(const Instruction& instruction);

/// Net local displacement of an instruction (zero for Wait), as exact
/// rational scalars along the heading — returned as (heading, distance);
/// callers combine with trigonometry. Convenience for path accounting.
[[nodiscard]] bool is_move(const Instruction& instruction) noexcept;

[[nodiscard]] std::string to_string(const Instruction& instruction);

// The four compass shorthands used throughout the paper's pseudocode.
inline constexpr double kEast = 0.0;
inline constexpr double kNorth = 1.57079632679489661923132169163975144;       // pi/2
inline constexpr double kWest = 3.14159265358979323846264338327950288;        // pi
inline constexpr double kSouth = 4.71238898038468985769396507491925432;       // 3*pi/2

[[nodiscard]] Instruction go(double heading, numeric::Rational distance);
[[nodiscard]] Instruction go_east(numeric::Rational distance);
[[nodiscard]] Instruction go_west(numeric::Rational distance);
[[nodiscard]] Instruction go_north(numeric::Rational distance);
[[nodiscard]] Instruction go_south(numeric::Rational distance);
[[nodiscard]] Instruction wait(numeric::Rational duration);

/// A mobility program: a lazily produced (possibly infinite) instruction
/// stream. Programs must be deterministic — both agents run the same one.
using Program = support::generator<Instruction>;

/// Total local duration of a finite instruction sequence.
[[nodiscard]] numeric::Rational total_duration(const std::vector<Instruction>& instructions);

}  // namespace aurv::program
