// Stream-to-stream combinators over mobility programs. These are the direct
// transcriptions of the structural operations Algorithm 1 performs on its
// sub-procedures:
//
//   rotated      — execute a program "in the coordinate system Rot(alpha)"
//                  (Alg. 1 line 6): every heading is offset by alpha.
//   take_duration— "execute P during time D" (lines 10, 17): the exact
//                  prefix of local duration D, splitting the instruction
//                  that straddles the boundary.
//   backtrack_moves — "backtrack on P" (lines 12, 20): retrace the moves in
//                  reverse with opposite headings; waits contribute no path
//                  and are skipped.
//   segmented_with_waits — line 18's S_1 wait S_2 wait ... : re-cut a solo
//                  trajectory into segments of exact local duration,
//                  inserting a wait after each segment.
//   replay / concat — plumbing to compose materialized and lazy pieces.
#pragma once

#include <vector>

#include "geom/vec2.hpp"
#include "program/instruction.hpp"

namespace aurv::program {

/// Heading-offset view of a program (local system Rot(alpha)).
[[nodiscard]] Program rotated(Program inner, double alpha);

/// Rotates headings of a materialized instruction sequence.
[[nodiscard]] std::vector<Instruction> rotated(std::vector<Instruction> instructions,
                                               double alpha);

/// Consumes `source` and returns its prefix of exactly `duration` local time
/// units, splitting the final instruction proportionally if needed. If the
/// program ends before the budget, the result is shorter (no padding) —
/// callers that need exact duration can append a wait for the remainder.
[[nodiscard]] std::vector<Instruction> take_duration(Program source,
                                                     const numeric::Rational& duration);

/// Like take_duration but bounded additionally by an instruction-count cap;
/// guards against accidentally materializing astronomically long prefixes.
[[nodiscard]] std::vector<Instruction> take_duration_capped(Program source,
                                                            const numeric::Rational& duration,
                                                            std::size_t max_instructions);

/// The reverse walk of the path traced by `instructions`: go moves in
/// reverse order with headings flipped by pi, waits dropped.
[[nodiscard]] std::vector<Instruction> backtrack_moves(const std::vector<Instruction>& path);

/// Cuts `solo` (a finite trajectory) into consecutive chunks of exactly
/// `segment` local duration (the last chunk may be shorter) and emits each
/// chunk followed by wait(pause). This is Algorithm 1 line 18.
[[nodiscard]] std::vector<Instruction> segmented_with_waits(const std::vector<Instruction>& solo,
                                                            const numeric::Rational& segment,
                                                            const numeric::Rational& pause);

/// A program that yields a materialized sequence.
[[nodiscard]] Program replay(std::vector<Instruction> instructions);

/// first, then second.
[[nodiscard]] Program concat(Program first, Program second);

/// Net local displacement (double precision) of a finite instruction
/// sequence — used by tests for the paper's Lemma 3.1 "every block returns
/// to its start" invariant.
[[nodiscard]] geom::Vec2 net_displacement(const std::vector<Instruction>& instructions);

}  // namespace aurv::program
