#include "program/combinators.hpp"

#include <limits>
#include <utility>

#include "geom/angle.hpp"
#include "support/check.hpp"

namespace aurv::program {

Program rotated(Program inner, double alpha) {
  for (const Instruction& instruction : inner) {
    if (const auto* move = std::get_if<Go>(&instruction)) {
      const Instruction turned{Go{move->heading + alpha, move->distance}};
      co_yield turned;
    } else {
      co_yield instruction;
    }
  }
}

std::vector<Instruction> rotated(std::vector<Instruction> instructions, double alpha) {
  for (Instruction& instruction : instructions) {
    if (auto* move = std::get_if<Go>(&instruction)) move->heading += alpha;
  }
  return instructions;
}

std::vector<Instruction> take_duration(Program source, const numeric::Rational& duration) {
  return take_duration_capped(std::move(source), duration,
                              std::numeric_limits<std::size_t>::max());
}

std::vector<Instruction> take_duration_capped(Program source, const numeric::Rational& duration,
                                              std::size_t max_instructions) {
  AURV_CHECK_MSG(duration.sign() >= 0, "take_duration: negative budget");
  std::vector<Instruction> result;
  numeric::Rational remaining = duration;
  if (remaining.is_zero()) return result;
  for (const Instruction& instruction : source) {
    AURV_CHECK_MSG(result.size() < max_instructions,
                   "take_duration: instruction cap exceeded (prefix too long)");
    const numeric::Rational step = duration_of(instruction);
    if (step < remaining) {
      result.push_back(instruction);
      remaining -= step;
      continue;
    }
    if (step == remaining) {
      result.push_back(instruction);
    } else if (const auto* move = std::get_if<Go>(&instruction)) {
      // Split proportionally: a go covers one length unit per time unit, so
      // the truncated distance equals the remaining time budget.
      result.push_back(Instruction{Go{move->heading, remaining}});
    } else {
      result.push_back(Instruction{Wait{remaining}});
    }
    return result;
  }
  return result;  // program ended before the budget
}

std::vector<Instruction> backtrack_moves(const std::vector<Instruction>& path) {
  std::vector<Instruction> result;
  result.reserve(path.size());
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    if (const auto* move = std::get_if<Go>(&*it)) {
      if (move->distance.is_zero()) continue;
      result.push_back(Instruction{Go{move->heading + geom::kPi, move->distance}});
    }
  }
  return result;
}

std::vector<Instruction> segmented_with_waits(const std::vector<Instruction>& solo,
                                              const numeric::Rational& segment,
                                              const numeric::Rational& pause) {
  AURV_CHECK_MSG(segment.sign() > 0, "segmented_with_waits: segment must be positive");
  std::vector<Instruction> result;
  numeric::Rational room = segment;  // local time left in the current segment
  auto close_segment = [&] {
    result.push_back(wait(pause));
    room = segment;
  };
  for (const Instruction& instruction : solo) {
    numeric::Rational step = duration_of(instruction);
    if (step.is_zero()) {
      result.push_back(instruction);
      continue;
    }
    // Emit the instruction in pieces, closing segments at exact boundaries.
    const bool moving = is_move(instruction);
    const double heading = moving ? std::get<Go>(instruction).heading : 0.0;
    while (step > room) {
      if (moving) {
        result.push_back(Instruction{Go{heading, room}});
      } else {
        result.push_back(Instruction{Wait{room}});
      }
      step -= room;
      room = 0;
      close_segment();
    }
    if (moving) {
      result.push_back(Instruction{Go{heading, step}});
    } else {
      result.push_back(Instruction{Wait{step}});
    }
    room -= step;
    if (room.is_zero()) close_segment();
  }
  // The paper's line 18 ends with a wait after the final segment S_{2^{2i}};
  // close a partially filled trailing segment the same way.
  if (room != segment) close_segment();
  return result;
}

Program replay(std::vector<Instruction> instructions) {
  for (const Instruction& instruction : instructions) {
    co_yield instruction;
  }
}

Program concat(Program first, Program second) {
  for (const Instruction& instruction : first) co_yield instruction;
  for (const Instruction& instruction : second) co_yield instruction;
}

geom::Vec2 net_displacement(const std::vector<Instruction>& instructions) {
  geom::Vec2 total{};
  for (const Instruction& instruction : instructions) {
    if (const auto* move = std::get_if<Go>(&instruction)) {
      total += move->distance.to_double() * geom::unit_vector(move->heading);
    }
  }
  return total;
}

}  // namespace aurv::program
