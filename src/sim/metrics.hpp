// Trace analytics: the quantities the paper's proofs reason about, computed
// from a recorded simulation trace. Used by the figure-regeneration benches
// (FIG-4's case analysis) and available to downstream users who want to
// inspect *why* a rendezvous happened.
//
// All series are sampled at the trace's event boundaries; between samples
// both agents move linearly, so extrema inside a window can differ slightly
// from the sampled ones (the engine's min_distance_seen is the continuous
// minimum; these series are for structure, not bounds).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "agents/instance.hpp"
#include "sim/trace.hpp"

namespace aurv::sim {

struct DistanceSample {
  double time = 0.0;
  double distance = 0.0;
};

/// Inter-agent distance at every trace point.
[[nodiscard]] std::vector<DistanceSample> distance_series(const Trace& trace);

struct ProjectionSample {
  double time = 0.0;
  /// Signed gap between the canonical-line coordinates of A and B
  /// (coordinate(A) - coordinate(B)); the chi = -1 analysis of Lemma 3.2
  /// tracks |gap| and its sign changes.
  double signed_gap = 0.0;
};

/// Projection-gap series onto the instance's canonical line.
[[nodiscard]] std::vector<ProjectionSample> projection_gap_series(
    const agents::Instance& instance, const Trace& trace);

/// Figure 4's dichotomy: did the projections cross (case a) or shrink
/// monotonically in the sampled series (case b)? Returns nullopt for traces
/// with fewer than two points.
enum class Figure4Case : std::uint8_t { Crossing, MonotoneShrink };
[[nodiscard]] std::optional<Figure4Case> classify_figure4_case(
    const agents::Instance& instance, const Trace& trace);

struct SeriesExtrema {
  double min_value = 0.0;
  double min_time = 0.0;
  double max_value = 0.0;
  double max_time = 0.0;
};

/// Extrema of the sampled distance series (empty trace -> zeros).
[[nodiscard]] SeriesExtrema distance_extrema(const Trace& trace);

}  // namespace aurv::sim
