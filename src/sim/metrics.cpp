#include "sim/metrics.hpp"

#include <cmath>

#include "geom/line.hpp"

namespace aurv::sim {

std::vector<DistanceSample> distance_series(const Trace& trace) {
  std::vector<DistanceSample> series;
  series.reserve(trace.points().size());
  for (const TracePoint& point : trace.points()) {
    series.push_back({point.time, point.distance});
  }
  return series;
}

std::vector<ProjectionSample> projection_gap_series(const agents::Instance& instance,
                                                    const Trace& trace) {
  const geom::Line line = instance.canonical_line();
  std::vector<ProjectionSample> series;
  series.reserve(trace.points().size());
  for (const TracePoint& point : trace.points()) {
    series.push_back({point.time, line.coordinate(point.a) - line.coordinate(point.b)});
  }
  return series;
}

std::optional<Figure4Case> classify_figure4_case(const agents::Instance& instance,
                                                 const Trace& trace) {
  const std::vector<ProjectionSample> series = projection_gap_series(instance, trace);
  if (series.size() < 2) return std::nullopt;
  for (std::size_t k = 1; k < series.size(); ++k) {
    const bool previous_negative = series[k - 1].signed_gap < 0.0;
    const bool current_negative = series[k].signed_gap < 0.0;
    if (previous_negative != current_negative) return Figure4Case::Crossing;
  }
  return Figure4Case::MonotoneShrink;
}

SeriesExtrema distance_extrema(const Trace& trace) {
  SeriesExtrema extrema;
  bool first = true;
  for (const TracePoint& point : trace.points()) {
    if (first || point.distance < extrema.min_value) {
      extrema.min_value = point.distance;
      extrema.min_time = point.time;
    }
    if (first || point.distance > extrema.max_value) {
      extrema.max_value = point.distance;
      extrema.max_time = point.time;
    }
    first = false;
  }
  return extrema;
}

}  // namespace aurv::sim
