#include "sim/engine.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "geom/angle.hpp"
#include "geom/closest_approach.hpp"
#include "numeric/filter.hpp"
#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace aurv::sim {

namespace {

using numeric::Filtered;
using numeric::Rational;

/// Execution state of one agent: the current constant-velocity segment plus
/// the pending instruction stream. Positions are derived lazily from the
/// segment anchor so long waits cost nothing and positions accumulate
/// round-off only once per instruction.
struct AgentSim {
  AgentSim(agents::AgentFrame frame_in, program::Program stream_in)
      : frame(std::move(frame_in)),
        stream(std::move(stream_in)),
        time_unit(Filtered(frame.time_unit())) {
    seg_start_pos = frame.start_position();
    seg_end_pos = seg_start_pos;
    if (frame.wake_time().sign() > 0) {
      // Pre-wake-up sleep is a segment, not an instruction.
      seg_end = Filtered(frame.wake_time());
    } else {
      next_instruction();
    }
  }

  [[nodiscard]] geom::Vec2 position_at(const Filtered& time) const {
    if (velocity.x == 0.0 && velocity.y == 0.0) return seg_start_pos;
    Filtered elapsed = time;
    elapsed -= seg_start;
    return seg_start_pos + elapsed.to_double() * velocity;
  }

  void next_instruction() {
    if (frozen || exhausted) return;
    if (!stream.next()) {
      exhausted = true;
      seg_end.reset();
      velocity = {};
      seg_end_pos = seg_start_pos;
      return;
    }
    const program::Instruction& instruction = stream.value();
    ++instructions;
    // Built in place (scale, then accumulate) so the huge event times pass
    // through the filtered kernel's in-place fast tiers instead of a chain
    // of temporaries.
    Filtered end_time = time_unit;
    end_time *= Filtered(program::duration_of(instruction));
    end_time += seg_start;
    seg_end = std::move(end_time);
    if (const auto* move = std::get_if<program::Go>(&instruction)) {
      if (move->distance.is_zero()) {
        velocity = {};
        seg_end_pos = seg_start_pos;
      } else {
        const geom::Vec2 direction = geom::unit_vector(frame.absolute_heading(move->heading));
        velocity = frame.speed() * direction;
        seg_end_pos =
            seg_start_pos + (move->distance.to_double() * frame.length_unit()) * direction;
      }
    } else {
      velocity = {};
      seg_end_pos = seg_start_pos;
    }
  }

  /// Timeline reached the end of the current segment: anchor there and pull
  /// the next instruction.
  void advance_segment() {
    AURV_CHECK(seg_end.has_value());
    seg_start = std::move(*seg_end);  // the segment end is consumed, not copied
    seg_start_pos = seg_end_pos;
    velocity = {};
    seg_end.reset();
    next_instruction();
  }

  /// The agent saw its peer: it stops forever at `time` (Alg. 1 line 1).
  void freeze_at(const Filtered& time) {
    seg_start_pos = position_at(time);
    seg_start = time;
    seg_end.reset();
    seg_end_pos = seg_start_pos;
    velocity = {};
    frozen = true;
  }

  agents::AgentFrame frame;
  program::Program stream;
  Filtered time_unit;                     // cached: one tier probe per run, not per instruction
  Filtered seg_start;                     // absolute time of the segment anchor
  std::optional<Filtered> seg_end;        // empty = idle forever
  geom::Vec2 seg_start_pos;
  geom::Vec2 seg_end_pos;
  geom::Vec2 velocity;                    // absolute units per absolute time
  std::uint64_t instructions = 0;
  bool frozen = false;
  bool exhausted = false;
};

}  // namespace

std::string to_string(StopReason reason) {
  switch (reason) {
    case StopReason::Rendezvous: return "rendezvous";
    case StopReason::FuelExhausted: return "fuel-exhausted";
    case StopReason::HorizonReached: return "horizon-reached";
    case StopReason::BothIdle: return "both-idle";
  }
  return "unknown";
}

Engine::Engine(agents::Instance instance, EngineConfig config)
    : instance_(std::move(instance)), config_(std::move(config)) {
  if (config_.r_a) AURV_CHECK_MSG(*config_.r_a > 0.0, "r_a override must be positive");
  if (config_.r_b) AURV_CHECK_MSG(*config_.r_b > 0.0, "r_b override must be positive");
}

SimResult Engine::run(const AlgorithmFactory& factory) const {
  return run(factory(), factory());
}

SimResult Engine::run(program::Program for_a, program::Program for_b) const {
  namespace telemetry = support::telemetry;
  static telemetry::Counter& runs_counter = telemetry::registry().counter("engine.runs");
  static telemetry::Counter& events_counter = telemetry::registry().counter("engine.events");
  static telemetry::Counter& instructions_counter =
      telemetry::registry().counter("engine.instructions");
  static telemetry::Counter& rendezvous_counter =
      telemetry::registry().counter("engine.rendezvous");
  static telemetry::Counter& window_solves_counter =
      telemetry::registry().counter("engine.window_solves");
  static telemetry::Counter& trace_dropped_counter =
      telemetry::registry().counter("engine.trace_dropped");
  static telemetry::Log2Histogram& events_histogram =
      telemetry::registry().histogram("engine.events_per_run");

  AgentSim a(agents::AgentFrame::for_a(instance_), std::move(for_a));
  AgentSim b(agents::AgentFrame::for_b(instance_), std::move(for_b));
  std::uint64_t window_solves = 0;

  const double radius_a = config_.r_a.value_or(instance_.r());
  const double radius_b = config_.r_b.value_or(instance_.r());
  const double r_success = std::min(radius_a, radius_b) + config_.contact_slack;
  const double r_big = std::max(radius_a, radius_b) + config_.contact_slack;
  const bool distinct_radii = radius_a != radius_b;
  // The far-sighted agent sees (and freezes) first in the Section 5 model.
  AgentSim* const far_sighted = radius_a >= radius_b ? &a : &b;

  SimResult result;
  result.min_distance_seen = std::numeric_limits<double>::infinity();
  result.trace = Trace(config_.trace_capacity);

  std::optional<Filtered> horizon;
  if (config_.horizon) horizon.emplace(*config_.horizon);

  Filtered now;

  const auto record = [&](const Filtered& time) {
    if (!result.trace.enabled()) return;
    const geom::Vec2 pa = a.position_at(time);
    const geom::Vec2 pb = b.position_at(time);
    result.trace.record({time.to_double(), pa, pb, geom::dist(pa, pb)});
  };
  const auto finish = [&](StopReason reason, const Filtered& time) {
    result.reason = reason;
    result.met = reason == StopReason::Rendezvous;
    result.a_position = a.position_at(time);
    result.b_position = b.position_at(time);
    result.final_distance = geom::dist(result.a_position, result.b_position);
    result.min_distance_seen = std::min(result.min_distance_seen, result.final_distance);
    result.instructions_a = a.instructions;
    result.instructions_b = b.instructions;
    record(time);
    // Telemetry only observes the finished run — it never feeds back into
    // the result, so instrumented and plain runs produce identical bytes.
    runs_counter.add();
    events_counter.add(result.events);
    instructions_counter.add(result.instructions_a + result.instructions_b);
    window_solves_counter.add(window_solves);
    if (result.met) rendezvous_counter.add();
    if (result.trace.enabled()) trace_dropped_counter.add(result.trace.dropped());
    events_histogram.record(result.events);
    // Tier-traffic counts drain here, at the run's deterministic end, so
    // the filter.* totals stay thread-count-invariant like every series.
    numeric::flush_filter_stats();
    return result;
  };

  record(now);
  while (true) {
    if (result.events >= config_.max_events) return finish(StopReason::FuelExhausted, now);

    // Window end: earliest segment boundary, possibly clipped by the
    // horizon. Tracked by pointer: event times can hold multi-limb
    // rationals, so a per-event std::optional<Filtered> copy is an
    // allocation the loop does not need.
    const Filtered* window_end = nullptr;
    for (const AgentSim* agent : {&a, &b}) {
      if (agent->seg_end && (window_end == nullptr || *agent->seg_end < *window_end))
        window_end = &*agent->seg_end;
    }
    bool at_horizon = false;
    if (horizon && (window_end == nullptr || *window_end >= *horizon)) {
      window_end = &*horizon;
      at_horizon = true;
    }

    const geom::Vec2 pa = a.position_at(now);
    const geom::Vec2 pb = b.position_at(now);
    const geom::Vec2 offset = pa - pb;
    const geom::Vec2 relative_velocity = a.velocity - b.velocity;

    if (!window_end) {
      // Both agents idle forever: the distance never changes again.
      result.min_distance_seen = std::min(result.min_distance_seen, offset.norm());
      return finish(offset.norm() <= r_success ? StopReason::Rendezvous : StopReason::BothIdle,
                    now);
    }

    Filtered window_span = *window_end;
    window_span -= now;
    const double window = window_span.to_double();
    result.min_distance_seen = std::min(
        result.min_distance_seen,
        geom::closest_approach(offset, relative_velocity, window).min_distance);

    if (distinct_radii && !far_sighted->frozen) {
      // The larger radius is crossed first; the far-sighted agent freezes
      // there while the other keeps executing (Section 5 of the paper).
      ++window_solves;
      if (const std::optional<double> hit =
              geom::first_contact(offset, relative_velocity, r_big, window)) {
        Filtered freeze_time = now;
        freeze_time += Filtered::from_double(*hit);
        if (freeze_time > *window_end) freeze_time = *window_end;  // round-off guard
        far_sighted->freeze_at(freeze_time);
        now = freeze_time;
        ++result.events;
        record(now);
        continue;
      }
    } else if (++window_solves; const std::optional<double> hit =
                   geom::first_contact(offset, relative_velocity, r_success, window)) {
      Filtered meet_time = now;
      meet_time += Filtered::from_double(*hit);
      if (meet_time > *window_end) meet_time = *window_end;  // round-off guard
      result.meet_window_start = now.to_rational();
      result.meet_window_offset = *hit;
      result.meet_time = meet_time.to_double();
      a.freeze_at(meet_time);
      b.freeze_at(meet_time);
      return finish(StopReason::Rendezvous, meet_time);
    }

    if (at_horizon) return finish(StopReason::HorizonReached, *window_end);

    now = *window_end;
    for (AgentSim* agent : {&a, &b}) {
      if (agent->seg_end && *agent->seg_end == now) {
        agent->advance_segment();
        ++result.events;
      }
    }
    record(now);
  }
}

SimResult simulate(const agents::Instance& instance, const AlgorithmFactory& factory,
                   const EngineConfig& config) {
  return Engine(instance, config).run(factory);
}

}  // namespace aurv::sim
