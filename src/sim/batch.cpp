#include "sim/batch.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "support/check.hpp"

namespace aurv::sim {

std::vector<SimResult> run_batch(std::vector<BatchJob> jobs, std::size_t threads) {
  if (jobs.empty()) return {};
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads = std::min(threads, jobs.size());

  std::vector<SimResult> results(jobs.size());
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker = [&] {
    while (true) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= jobs.size()) return;
      try {
        const BatchJob& job = jobs[index];
        results[index] = Engine(job.instance, job.config).run(job.algorithm);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t k = 0; k < threads; ++k) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::vector<SimResult> run_sweep(const std::vector<agents::Instance>& instances,
                                 const AlgorithmFactory& algorithm, const EngineConfig& config,
                                 std::size_t threads) {
  std::vector<BatchJob> jobs;
  jobs.reserve(instances.size());
  for (const agents::Instance& instance : instances) {
    jobs.push_back(BatchJob{instance, algorithm, config});
  }
  return run_batch(std::move(jobs), threads);
}

}  // namespace aurv::sim
