#include "sim/batch.hpp"

#include "support/parallel.hpp"

namespace aurv::sim {

std::vector<SimResult> run_batch(std::vector<BatchJob> jobs, std::size_t threads) {
  if (jobs.empty()) return {};
  std::vector<SimResult> results(jobs.size());
  support::ShardedRunOptions options;
  options.threads = threads;
  // One job per shard: simulation jobs dwarf the per-shard bookkeeping, and
  // job-granular claiming keeps the load balance of the old per-job queue.
  // Error determinism comes from the primitive: the exception from the
  // lowest job index is the one rethrown, at any thread count.
  support::run_sharded(
      jobs.size(),
      [&](std::size_t index) {
        const BatchJob& job = jobs[index];
        results[index] = Engine(job.instance, job.config).run(job.algorithm);
      },
      {}, options);
  return results;
}

std::vector<SimResult> run_sweep(const std::vector<agents::Instance>& instances,
                                 const AlgorithmFactory& algorithm, const EngineConfig& config,
                                 std::size_t threads) {
  std::vector<BatchJob> jobs;
  jobs.reserve(instances.size());
  for (const agents::Instance& instance : instances) {
    jobs.push_back(BatchJob{instance, algorithm, config});
  }
  return run_batch(std::move(jobs), threads);
}

}  // namespace aurv::sim
