// Parallel sweep runner: simulate many independent (instance, algorithm)
// jobs across a thread pool. Rendezvous simulations are embarrassingly
// parallel — each job owns its engine, streams and result — so the sweep
// experiments (TAB-1/2/3 style) and the property-test grids scale with
// cores. Determinism: results are returned in job order regardless of
// scheduling.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "agents/instance.hpp"
#include "sim/engine.hpp"

namespace aurv::sim {

struct BatchJob {
  agents::Instance instance;
  AlgorithmFactory algorithm;   ///< must be thread-safe to *call* (each call
                                ///< builds a fresh program; the factories in
                                ///< this library are stateless)
  EngineConfig config;
};

/// Runs all jobs and returns their results in job order. `threads = 0`
/// picks std::thread::hardware_concurrency(). Exceptions thrown by a job
/// propagate to the caller (first one wins; remaining jobs still complete).
[[nodiscard]] std::vector<SimResult> run_batch(std::vector<BatchJob> jobs,
                                               std::size_t threads = 0);

/// Convenience: same algorithm and config for a sweep of instances.
[[nodiscard]] std::vector<SimResult> run_sweep(const std::vector<agents::Instance>& instances,
                                               const AlgorithmFactory& algorithm,
                                               const EngineConfig& config = {},
                                               std::size_t threads = 0);

}  // namespace aurv::sim
