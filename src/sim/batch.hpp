// Parallel sweep runner: simulate many independent (instance, algorithm)
// jobs across a thread pool. Rendezvous simulations are embarrassingly
// parallel — each job owns its engine, streams and result — so the sweep
// experiments (TAB-1/2/3 style) and the property-test grids scale with
// cores. Determinism: results are returned in job order, and the exception
// that propagates is the one from the lowest job index — both regardless of
// scheduling. Built on support::run_sharded; campaigns over lazily
// generated jobs (no materialized result vector) live in exp::CampaignRunner.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "agents/instance.hpp"
#include "sim/engine.hpp"

namespace aurv::sim {

struct BatchJob {
  agents::Instance instance;
  AlgorithmFactory algorithm;   ///< must be thread-safe to *call* (each call
                                ///< builds a fresh program; the factories in
                                ///< this library are stateless)
  EngineConfig config;
};

/// Runs all jobs and returns their results in job order. `threads = 0`
/// picks std::thread::hardware_concurrency(). Exceptions thrown by jobs
/// propagate to the caller — the first *in job order* wins (not the first
/// one scheduled), so the error is identical at any thread count. Jobs
/// already running when one fails still finish; unstarted jobs are skipped
/// (their results would be discarded with the throw anyway).
[[nodiscard]] std::vector<SimResult> run_batch(std::vector<BatchJob> jobs,
                                               std::size_t threads = 0);

/// Convenience: same algorithm and config for a sweep of instances.
[[nodiscard]] std::vector<SimResult> run_sweep(const std::vector<agents::Instance>& instances,
                                               const AlgorithmFactory& algorithm,
                                               const EngineConfig& config = {},
                                               std::size_t threads = 0);

}  // namespace aurv::sim
