// Continuous-time, event-driven co-simulation of the two agents.
//
// Both agents run the *same* deterministic mobility program (the anonymity
// assumption), each interpreted through its own frame (origin, rotation,
// chirality, clock rate, speed, wake-up delay). Between two consecutive
// instruction breakpoints each agent moves with constant velocity, so the
// engine advances breakpoint-to-breakpoint on an exact rational timeline
// and detects first contact inside each window by solving a quadratic —
// no time-stepping. This is what makes Algorithm 1's waits of 2^(15 i^2)
// local time units simulable: a wait is one event.
//
// Rendezvous semantics ("interrupt as soon as the other agent is seen",
// Alg. 1 line 1): an agent freezes forever at the first instant the
// distance drops to its own visibility radius; the run succeeds at the
// first instant the distance reaches min(r_a, r_b). With equal radii
// (the paper's main model) both happen simultaneously. Distinct radii
// implement the Section 5 extension.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "agents/frame.hpp"
#include "agents/instance.hpp"
#include "numeric/rational.hpp"
#include "program/instruction.hpp"
#include "sim/trace.hpp"

namespace aurv::sim {

/// Factory producing a fresh run of the common deterministic program. Called
/// once per agent; both streams must be identical (anonymity) — the engine
/// does not and cannot verify this, it is the caller's contract.
using AlgorithmFactory = std::function<program::Program()>;

struct EngineConfig {
  /// Fuel: maximum number of processed events (instruction boundaries,
  /// freezes, horizon checks). The run stops with FuelExhausted beyond it.
  std::uint64_t max_events = 4'000'000;

  /// Rendezvous is declared at distance <= radius + contact_slack. The
  /// boundary instances of S1/S2 meet at distance *exactly* r analytically,
  /// which double arithmetic cannot certify with zero slack.
  double contact_slack = 1e-9;

  /// Optional absolute-time horizon; the run stops with HorizonReached when
  /// the timeline passes it. Disabled when empty. Used by the impossibility
  /// experiments ("no rendezvous within time T").
  std::optional<numeric::Rational> horizon;

  /// Optional per-agent visibility radii overriding the instance's r
  /// (Section 5: r_a is A's radius, r_b is B's).
  std::optional<double> r_a;
  std::optional<double> r_b;

  /// Trace recording (0 = off).
  std::size_t trace_capacity = 0;
};

enum class StopReason : std::uint8_t {
  Rendezvous,     ///< distance reached min(r_a, r_b): both agents saw each other
  FuelExhausted,  ///< event budget ran out
  HorizonReached, ///< configured time horizon passed without rendezvous
  BothIdle,       ///< both programs ended (or froze) and the agents are apart
};

[[nodiscard]] std::string to_string(StopReason reason);

struct SimResult {
  bool met = false;
  StopReason reason = StopReason::FuelExhausted;

  /// Absolute meet time. `meet_time` is the double view; the exact value is
  /// meet_window_start (rational) + meet_window_offset (double, small).
  double meet_time = 0.0;
  numeric::Rational meet_window_start;
  double meet_window_offset = 0.0;

  geom::Vec2 a_position;  ///< positions at stop time
  geom::Vec2 b_position;
  double final_distance = 0.0;

  /// Smallest inter-agent distance observed over the whole run (including
  /// runs that do not meet) — the impossibility experiments assert it stays
  /// above r.
  double min_distance_seen = 0.0;

  std::uint64_t events = 0;
  std::uint64_t instructions_a = 0;
  std::uint64_t instructions_b = 0;

  Trace trace;
};

class Engine {
 public:
  Engine(agents::Instance instance, EngineConfig config);

  /// Runs the common program produced by `factory` on both agents.
  [[nodiscard]] SimResult run(const AlgorithmFactory& factory) const;

  /// Runs with explicitly provided per-agent programs. Exposed for white-box
  /// tests (e.g. pinning one agent); the anonymous model is run().
  [[nodiscard]] SimResult run(program::Program for_a, program::Program for_b) const;

  [[nodiscard]] const agents::Instance& instance() const noexcept { return instance_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

 private:
  agents::Instance instance_;
  EngineConfig config_;
};

/// Convenience wrapper: simulate `factory` on `instance` with `config`.
[[nodiscard]] SimResult simulate(const agents::Instance& instance,
                                 const AlgorithmFactory& factory,
                                 const EngineConfig& config = {});

}  // namespace aurv::sim
