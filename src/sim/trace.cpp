#include "sim/trace.hpp"

namespace aurv::sim {

void Trace::record(const TracePoint& point) {
  if (capacity_ == 0) return;
  if (points_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  points_.push_back(point);
}

}  // namespace aurv::sim
