// Bounded trajectory trace recorded by the simulation engine: one sample per
// event boundary (instruction start/end of either agent). Used by the
// figure-regeneration benches and by the trajectory_plot example.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"

namespace aurv::sim {

struct TracePoint {
  double time = 0.0;  ///< absolute time (double view; may saturate for huge waits)
  geom::Vec2 a;
  geom::Vec2 b;
  double distance = 0.0;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::size_t capacity) : capacity_(capacity) {}

  void record(const TracePoint& point);

  [[nodiscard]] const std::vector<TracePoint>& points() const noexcept { return points_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }

 private:
  std::size_t capacity_ = 0;
  std::vector<TracePoint> points_;
  std::uint64_t dropped_ = 0;
};

}  // namespace aurv::sim
