// Chunked, deterministic work-queue primitive shared by the batch runner
// and the campaign runner.
//
// Work is split into `shard_count` shards claimed in index order from an
// atomic counter (chunking amortizes the claim and gives downstream
// consumers a deterministic merge unit). Two guarantees make results
// independent of the number of workers:
//
//   * completion callback order: `complete(shard)` is invoked exactly once
//     per shard in strictly increasing shard order, serialized (never two
//     concurrently), from whichever worker closes the gap. Aggregation,
//     streaming output and checkpointing all hang off this hook.
//   * error order: if shard bodies throw, the exception from the *lowest*
//     shard index is rethrown after all shards ran — not the first one a
//     thread happened to hit (the Bobpp-style "identical results at any
//     core count" discipline).
#pragma once

#include <cstddef>
#include <functional>

namespace aurv::support {

struct ShardedRunOptions {
  /// 0 picks std::thread::hardware_concurrency().
  std::size_t threads = 0;

  /// Backpressure: cap on shards claimed but not yet drained by the
  /// in-order completion stream. Bounds the memory a consumer must stash
  /// when one slow shard stalls the drain while fast workers race ahead.
  /// 0 = unbounded; values below the worker count are raised to it (a
  /// smaller window would idle workers for no benefit).
  std::size_t max_in_flight = 0;
};

/// Runs `body(shard)` for every shard in [0, shard_count) across a worker
/// pool, then rethrows the recorded lowest-shard exception, if any. The
/// optional `complete(shard)` hook runs under the guarantees documented
/// above and is invoked for the longest *error-free prefix* of shards: the
/// first shard whose body (or whose own `complete`) throws ends the stream,
/// so a consumer never observes a prefix with a hole in it. After a
/// failure, in-flight bodies finish but no new shards are claimed — the
/// tail would be discarded anyway, and because shards are claimed in index
/// order the skipped tail can never hold the lowest-index error.
void run_sharded(std::size_t shard_count, const std::function<void(std::size_t)>& body,
                 const std::function<void(std::size_t)>& complete = {},
                 const ShardedRunOptions& options = {});

}  // namespace aurv::support
