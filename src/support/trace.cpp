#include "support/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

#include "support/vfs.hpp"

namespace aurv::support::trace {

namespace {

constexpr std::size_t kFlushBytes = 256 * 1024;
constexpr std::size_t kRingCapacity = 1024;  ///< recent-event lines kept for /trace

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct TraceSink::Impl {
  std::mutex mutex;
  std::atomic<bool> enabled{false};
  std::atomic<bool> degraded{false};
  std::atomic<std::uint64_t> open_ns{0};

  // Everything below is guarded by `mutex`.
  std::unique_ptr<VfsFile> file;
  std::string path;
  std::string pending;           ///< serialized bytes awaiting a flush
  std::uint64_t pending_events = 0;
  std::uint64_t durable_bytes = 0;  ///< bytes known to be on disk (torn-write rewind point)
  bool first_event = true;
  RetryPolicy retry;
  /// Bounded ring of the most recent event lines (statusd's /trace
  /// source). `ring` grows to kRingCapacity then wraps at `ring_next`.
  std::vector<std::string> ring;
  std::size_t ring_next = 0;

  /// Appends `data` to the file with bounded deterministic retry,
  /// rewinding any torn prefix before each attempt. Returns false on a
  /// persistent failure (caller degrades). Deliberately hand-rolled
  /// instead of retry_io: retry_io emits a trace instant, and re-entering
  /// this sink from its own write path would deadlock.
  bool write_all(const std::string& data) {
    for (int attempt = 1;; ++attempt) {
      try {
        file->write(data);
        durable_bytes += data.size();
        return true;
      } catch (const VfsError& error) {
        try {
          file->truncate_to(durable_bytes);
        } catch (const VfsError&) {
          // Rewind failed too; the file may keep a torn tail. It is a
          // diagnostic stream, so this only costs viewer-loadability.
        }
        if (!error.transient() || attempt >= retry.attempts) return false;
        const std::uint64_t backoff = retry.backoff_ms << (attempt - 1);
        telemetry::registry().counter("trace.retries").add();
        telemetry::registry().counter("trace.backoff_ms").add(backoff);
        vfs().sleep_for_ms(backoff);
      }
    }
  }

  /// Flushes `pending` to disk; on persistent failure degrades the sink
  /// (mutex held). Returns whether the sink is still healthy.
  bool flush_pending() {
    if (pending.empty()) return true;
    if (!write_all(pending)) {
      degrade("write failed: " + path);
      return false;
    }
    pending.clear();
    pending_events = 0;
    return true;
  }

  /// Turns the sink into a counting no-op: pending events are dropped
  /// and counted, later spans tick `trace.dropped` instead of recording.
  void degrade(const std::string& reason) {
    enabled.store(false, std::memory_order_relaxed);
    degraded.store(true, std::memory_order_relaxed);
    if (pending_events > 0)
      telemetry::registry().counter("trace.dropped").add(pending_events);
    pending.clear();
    pending_events = 0;
    file.reset();  // closes silently; a partial trace file is left for triage
    std::fprintf(stderr, "aurv: trace: %s; tracing disabled, events dropped\n",
                 reason.c_str());
  }

  void append(std::string line) {
    if (!enabled.load(std::memory_order_relaxed)) {
      if (degraded.load(std::memory_order_relaxed))
        telemetry::registry().counter("trace.dropped").add();
      return;
    }
    if (!first_event) pending += ",\n";
    first_event = false;
    pending += line;
    ++pending_events;
    if (ring.size() < kRingCapacity) {
      ring.push_back(std::move(line));
    } else {
      ring[ring_next] = std::move(line);
      ring_next = (ring_next + 1) % kRingCapacity;
    }
    telemetry::registry().counter("trace.events").add();
    if (pending.size() >= kFlushBytes) flush_pending();
  }
};

TraceSink::TraceSink() : impl_(new Impl()) {}

TraceSink& TraceSink::instance() {
  static TraceSink* the_sink = new TraceSink();  // never destroyed: spans may
                                                 // outlive every exit path
  return *the_sink;
}

bool TraceSink::open(const std::string& path) {
  std::lock_guard lock(impl_->mutex);
  if (impl_->file) {
    // A previous trace is still open (multi-spec driver): finish it first.
    impl_->pending += "\n]}\n";
    impl_->flush_pending();
    if (impl_->file) {
      try {
        impl_->file->close();
      } catch (const VfsError&) {
      }
      impl_->file.reset();
    }
  }
  impl_->enabled.store(false, std::memory_order_relaxed);
  impl_->degraded.store(false, std::memory_order_relaxed);
  try {
    impl_->file = vfs().open_write(path, Vfs::OpenMode::Truncate);
  } catch (const VfsError& error) {
    impl_->file.reset();
    impl_->degraded.store(true, std::memory_order_relaxed);
    std::fprintf(stderr, "aurv: trace: cannot open %s (%s); tracing disabled\n",
                 path.c_str(), error.reason().c_str());
    return false;
  }
  impl_->path = path;
  impl_->pending = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  impl_->pending_events = 0;
  impl_->durable_bytes = 0;
  impl_->first_event = true;
  impl_->ring.clear();
  impl_->ring_next = 0;
  impl_->open_ns.store(steady_ns(), std::memory_order_relaxed);
  impl_->enabled.store(true, std::memory_order_relaxed);

  Json args = Json::object();
  args.set("name", Json("aurv"));
  Json meta = Json::object();
  meta.set("name", Json("process_name"));
  meta.set("ph", Json("M"));
  meta.set("pid", Json(1));
  meta.set("tid", Json(0));
  meta.set("args", std::move(args));
  impl_->append(meta.dump());
  return true;
}

void TraceSink::close() {
  std::lock_guard lock(impl_->mutex);
  if (!impl_->file) return;
  impl_->enabled.store(false, std::memory_order_relaxed);
  impl_->pending += "\n]}\n";
  if (!impl_->flush_pending()) return;  // degrade() already dropped the file
  try {
    impl_->file->close();
  } catch (const VfsError& error) {
    std::fprintf(stderr, "aurv: trace: close failed for %s (%s)\n", impl_->path.c_str(),
                 error.reason().c_str());
  }
  impl_->file.reset();
}

bool TraceSink::enabled() const noexcept {
  return impl_->enabled.load(std::memory_order_relaxed);
}

bool TraceSink::degraded() const noexcept {
  return impl_->degraded.load(std::memory_order_relaxed);
}

std::uint64_t TraceSink::now_us() const noexcept {
  const std::uint64_t open_ns = impl_->open_ns.load(std::memory_order_relaxed);
  const std::uint64_t now = steady_ns();
  return now > open_ns ? (now - open_ns) / 1000 : 0;
}

void TraceSink::emit(std::string line) {
  std::lock_guard lock(impl_->mutex);
  impl_->append(std::move(line));
}

void TraceSink::merge(TraceBuffer& buffer) {
  const std::vector<std::string> lines = buffer.take();
  if (lines.empty()) return;
  std::lock_guard lock(impl_->mutex);
  for (const std::string& line : lines) impl_->append(line);
}

std::vector<std::string> TraceSink::recent(std::size_t last_n) const {
  std::lock_guard lock(impl_->mutex);
  const std::size_t stored = impl_->ring.size();
  const std::size_t n = std::min(last_n, stored);
  std::vector<std::string> out;
  out.reserve(n);
  // Once the ring has wrapped (stored == capacity) the oldest line sits at
  // ring_next; before that it is index 0.
  const std::size_t oldest = stored == kRingCapacity ? impl_->ring_next : 0;
  for (std::size_t k = 0; k < n; ++k)
    out.push_back(impl_->ring[(oldest + (stored - n) + k) % stored]);
  return out;
}

// ------------------------------------------------------------------------
// Event serialization
// ------------------------------------------------------------------------

std::string complete_event(std::string_view name, std::string_view cat,
                           std::uint64_t ts_us, std::uint64_t dur_us, std::uint32_t lane,
                           const Json* args) {
  Json event = Json::object();
  event.set("name", Json(std::string(name)));
  event.set("cat", Json(std::string(cat)));
  event.set("ph", Json("X"));
  event.set("ts", Json(ts_us));
  event.set("dur", Json(dur_us));
  event.set("pid", Json(1));
  event.set("tid", Json(lane));
  if (args != nullptr) event.set("args", *args);
  return event.dump();
}

void instant(std::string_view name, std::string_view cat, TraceBuffer* buffer,
             std::uint32_t lane) {
  TraceSink& the_sink = sink();
  if (!the_sink.enabled()) {
    if (the_sink.degraded()) telemetry::registry().counter("trace.dropped").add();
    return;
  }
  Json event = Json::object();
  event.set("name", Json(std::string(name)));
  event.set("cat", Json(std::string(cat)));
  event.set("ph", Json("i"));
  event.set("s", Json("p"));
  event.set("ts", Json(the_sink.now_us()));
  event.set("pid", Json(1));
  event.set("tid", Json(buffer != nullptr ? buffer->lane() : lane));
  if (buffer != nullptr) {
    buffer->add(event.dump());
  } else {
    the_sink.emit(event.dump());
  }
}

// ------------------------------------------------------------------------
// Span
// ------------------------------------------------------------------------

Span::Span(std::string_view name, std::string_view cat, Options options)
    : name_(name), cat_(cat), options_(options) {
  if (options_.announce) activity_token_ = telemetry::activity().push(name_);
  TraceSink& the_sink = sink();
  armed_ = the_sink.enabled();
  if (armed_) {
    start_us_ = the_sink.now_us();
  } else if (the_sink.degraded()) {
    telemetry::registry().counter("trace.dropped").add();
  }
}

Span::~Span() {
  try {
    if (armed_) {
      const std::uint64_t end_us = sink().now_us();
      const std::uint32_t lane =
          options_.buffer != nullptr ? options_.buffer->lane() : options_.lane;
      std::string line =
          complete_event(name_, cat_, start_us_, end_us > start_us_ ? end_us - start_us_ : 0,
                         lane, args_ ? &*args_ : nullptr);
      if (options_.buffer != nullptr) {
        options_.buffer->add(std::move(line));
      } else {
        sink().emit(std::move(line));
      }
    }
  } catch (...) {
    // A span destructor must never throw (it runs during unwinding); any
    // failure here is the trace layer's to absorb, not the run's.
  }
  if (options_.announce) telemetry::activity().pop(activity_token_);
}

}  // namespace aurv::support::trace
