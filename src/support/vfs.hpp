// The file-I/O seam of the persistence layer.
//
// Everything that makes state durable — spill segments, JSONL sinks,
// checkpoint bases and wave journals — performs its mutating I/O through
// the process-current `Vfs` instead of calling the C/std::filesystem
// APIs directly. In production the seam is `real_vfs()`, a thin
// passthrough. In tests it can be swapped (ScopedVfs) for a `FaultVfs`
// that injects *scripted, deterministic* failures: fail the Nth write,
// persist only a torn prefix, report ENOSPC, fail a flush with EIO, fail
// a rename, or crash-stop the whole process image after operation K.
//
// Why this is worth a seam at all: the stack is deterministic in the
// Bobpp sense — certificates and JSONL streams are byte-identical at any
// shard count and across resume — so fault recovery is *exactly*
// checkable. For any injected failure the run must either complete with
// byte-identical artifacts (the fault was absorbed by bounded retry or
// by graceful degradation) or die and then *resume* to byte-identical
// artifacts (the fault was crash-equivalent). tests/search_fault_test.cpp
// enumerates every mutating I/O operation of a smoke run and asserts
// exactly that, for every fault class, at every site.
//
// Failure vocabulary:
//   * VfsError      — a structured I/O failure (op, path, reason,
//                     transient?). Transient errors may be absorbed by
//                     `retry_io`; persistent ones propagate to the
//                     caller's degradation or abort policy.
//   * VfsCrashStop  — thrown by FaultVfs for a scripted crash: simulates
//                     the process dying right after operation K.
//                     Deliberately NOT a VfsError (and not a
//                     std::exception subclass the retry helper would
//                     recognize): no retry or degradation layer may
//                     absorb it. After it fires, every later operation on
//                     the same FaultVfs silently does nothing — exactly
//                     like a dead process — so unwinding destructors
//                     cannot leak "post-mortem" bytes onto disk.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "support/json.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

namespace aurv::support {

/// Structured persistence-layer failure: which operation, on which path,
/// why, and whether a bounded retry is worth attempting.
class VfsError : public std::runtime_error {
 public:
  VfsError(std::string op, std::string path, std::string reason, bool transient);

  [[nodiscard]] const std::string& op() const noexcept { return op_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::string& reason() const noexcept { return reason_; }
  /// True when the failure is plausibly momentary (injected one-shot
  /// faults; EINTR-class errors): `retry_io` retries these, nothing else.
  [[nodiscard]] bool transient() const noexcept { return transient_; }

 private:
  std::string op_;
  std::string path_;
  std::string reason_;
  bool transient_;
};

/// Scripted process death (FaultVfs only). Not derived from VfsError on
/// purpose: see the header comment.
struct VfsCrashStop {
  std::uint64_t op_index = 0;  ///< the operation the "process" died after
  std::string op;
  std::string path;
};

/// A writable file handle. Writes are durable in operation order (the
/// fault model treats every completed operation as on disk).
class VfsFile {
 public:
  virtual ~VfsFile() = default;
  /// Appends `data`; throws VfsError (possibly after a torn prefix
  /// reached the file — the caller's byte accounting is the truth).
  virtual void write(std::string_view data) = 0;
  virtual void flush() = 0;
  /// Truncates the file back to `size` bytes (recovery from a torn
  /// write: rewind to the last known-good offset, then rewrite).
  virtual void truncate_to(std::uint64_t size) = 0;
  /// Flush + close; throws VfsError if either fails. The destructor
  /// closes silently instead (never throws).
  virtual void close() = 0;
};

class Vfs {
 public:
  enum class OpenMode { Truncate, Append };

  virtual ~Vfs() = default;

  /// ---- mutating operations (the fault-injection surface) -------------
  [[nodiscard]] virtual std::unique_ptr<VfsFile> open_write(const std::string& path,
                                                            OpenMode mode) = 0;
  virtual void rename(const std::string& from, const std::string& to) = 0;
  /// Best-effort removal: returns whether the file went away; never
  /// throws VfsError (many call sites are cleanup paths that must not
  /// fail the run) — but a scripted crash-stop still propagates.
  virtual bool remove(const std::string& path) = 0;
  virtual void resize_file(const std::string& path, std::uint64_t size) = 0;
  virtual void create_directories(const std::string& dir) = 0;

  /// ---- read-side operations (never fault-injected: a failure here is
  ///      a *resume* diagnostic, exercised by its own tests) ------------
  [[nodiscard]] virtual bool exists(const std::string& path) = 0;
  /// Size in bytes; throws VfsError (non-transient) when unreadable.
  [[nodiscard]] virtual std::uint64_t file_size(const std::string& path) = 0;
  /// Whole-file read; throws VfsError (non-transient) when unreadable.
  [[nodiscard]] virtual std::string read_file(const std::string& path) = 0;
  /// Filenames (leaf names, sorted) in `dir`; empty when unreadable.
  [[nodiscard]] virtual std::vector<std::string> list_dir(const std::string& dir) = 0;

  /// Backoff hook for retry_io: production sleeps, FaultVfs records the
  /// would-be sleep instead so the torture matrix runs at full speed.
  virtual void sleep_for_ms(std::uint64_t ms);
};

/// The production backend (direct passthrough to cstdio/std::filesystem).
[[nodiscard]] Vfs& real_vfs();

/// The process-current seam every persistence call site routes through.
[[nodiscard]] Vfs& vfs();

/// Swaps the current seam for the guard's lifetime (tests only; nesting
/// restores in reverse order).
class ScopedVfs {
 public:
  explicit ScopedVfs(Vfs& replacement);
  ~ScopedVfs();
  ScopedVfs(const ScopedVfs&) = delete;
  ScopedVfs& operator=(const ScopedVfs&) = delete;

 private:
  Vfs* previous_;
};

/// Bounded deterministic retry: exponential backoff (base << attempt),
/// retrying only transient VfsErrors. The schedule is a pure function of
/// (policy, attempt) — no randomness, no clock reads — so a faulted run
/// and its replay issue the identical operation sequence.
struct RetryPolicy {
  int attempts = 4;               ///< total tries (>= 1)
  std::uint64_t backoff_ms = 1;   ///< sleep before retry k is backoff_ms << (k-1)
};

template <typename Fn>
auto retry_io(const RetryPolicy& policy, Fn&& fn) -> decltype(fn()) {
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const VfsError& error) {
      if (!error.transient() || attempt >= policy.attempts) throw;
      const std::uint64_t backoff = policy.backoff_ms << (attempt - 1);
      telemetry::registry().counter("vfs.retries").add();
      telemetry::registry().counter("vfs.backoff_ms").add(backoff);
      trace::instant("vfs.retry", "vfs");
      vfs().sleep_for_ms(backoff);
    }
  }
}

// ------------------------------------------------------------------------
// Deterministic fault injection
// ------------------------------------------------------------------------

/// The injectable failure classes (the schedule's vocabulary).
enum class FaultClass {
  ShortWrite,  ///< half the payload reaches the file, then the write fails
  NoSpace,     ///< ENOSPC: nothing written, non-transient while sticky
  FlushIo,     ///< EIO on flush (or on the flush half of close)
  RenameFail,  ///< rename fails; source and destination are untouched
  CrashStop,   ///< process dies right after this operation completes
};

[[nodiscard]] const char* to_string(FaultClass klass);
[[nodiscard]] FaultClass fault_class_from_string(const std::string& name);

/// One scripted fault. Matching is deterministic: among mutating
/// operations whose path contains `path_contains` (empty matches all),
/// let `after` of them through, then fire. `sticky` keeps firing on every
/// later matching operation (a dead disk / full filesystem) — and marks
/// the error non-transient, so retries cannot absorb it; a non-sticky
/// fault fires once and is transient (a retry succeeds).
struct FaultSpec {
  std::uint64_t after = 0;
  std::string path_contains;
  FaultClass klass = FaultClass::NoSpace;
  bool sticky = false;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static FaultSpec from_json(const Json& json);
};

/// A replayable fault schedule — what the torture harness iterates over
/// and what CI uploads as the reproducer artifact on a mismatch.
struct FaultSchedule {
  std::vector<FaultSpec> faults;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static FaultSchedule from_json(const Json& json);
};

/// A Vfs decorator that counts mutating operations, injects the scripted
/// faults of its schedule, and records an operation trace (the site
/// enumeration the torture harness replays against). Thread-safe; with an
/// empty schedule it is a pure counting/tracing passthrough.
class FaultVfs : public Vfs {
 public:
  struct OpRecord {
    std::uint64_t index;  ///< 0-based mutating-operation index
    std::string op;       ///< "open_write", "write", "flush", ...
    std::string path;
  };

  explicit FaultVfs(FaultSchedule schedule, Vfs& inner = real_vfs());

  std::unique_ptr<VfsFile> open_write(const std::string& path, OpenMode mode) override;
  void rename(const std::string& from, const std::string& to) override;
  bool remove(const std::string& path) override;
  void resize_file(const std::string& path, std::uint64_t size) override;
  void create_directories(const std::string& dir) override;
  bool exists(const std::string& path) override;
  std::uint64_t file_size(const std::string& path) override;
  std::string read_file(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  void sleep_for_ms(std::uint64_t ms) override;

  /// Mutating operations observed (including the ones that faulted).
  [[nodiscard]] std::uint64_t ops() const;
  /// The operation trace, for site enumeration.
  [[nodiscard]] std::vector<OpRecord> op_log() const;
  /// Total backoff the retry layer *would* have slept (recorded, not slept).
  [[nodiscard]] std::uint64_t backoff_recorded_ms() const;
  /// Whether a scripted crash-stop has fired (everything after is a no-op).
  [[nodiscard]] bool crashed() const;

 private:
  friend class FaultFile;

  /// Records op (index, kind, path); returns the fault to inject, if any.
  /// nullptr when the op proceeds normally. When `crashed_`, sets
  /// `suppress` instead — the op must silently do nothing.
  struct Decision {
    bool suppress = false;
    const FaultSpec* fault = nullptr;
    std::uint64_t index = 0;
  };
  [[nodiscard]] Decision on_op(const char* op, const std::string& path);
  [[noreturn]] void crash(const Decision& decision, const char* op, const std::string& path);

  mutable std::mutex mutex_;
  FaultSchedule schedule_;
  std::vector<std::uint64_t> matched_;  ///< per-spec count of matching ops seen
  Vfs& inner_;
  std::uint64_t next_index_ = 0;
  std::vector<OpRecord> log_;
  std::uint64_t backoff_ms_ = 0;
  bool crashed_ = false;
};

}  // namespace aurv::support
