// Spill-to-disk priority deque — the bounded-memory frontier primitive
// behind the search subsystem's million-box hunts.
//
// A SpillDeque orders elements by a strict total order `Less` (least =
// best = popped first) and keeps at most `mem_capacity` of them in memory
// (the "hot" set). When the hot set overflows, its cold tail is written —
// already sorted — into an append-only JSONL segment file under
// `spill_dir`; pop_best() k-way-merges the hot set with the head of every
// open segment, so the pop sequence is element-for-element the sequence an
// unbounded in-memory set would produce, at any capacity. That invariant
// is what lets the branch-and-bound promise byte-identical certificates
// whether the frontier lived in RAM or on disk (the Bobpp-style
// determinism discipline of Menouer & Le Cun, arXiv:1406.2844, extended
// to an externalized frontier).
//
// Segments are immutable once written: draining one only advances a read
// offset, never rewrites bytes. That makes them safe to reference from a
// base checkpoint — `state_to_json()` records each segment's path, byte
// offset and remaining record count plus the hot set, and `from_json()`
// reopens the exact same logical container. Files drained or superseded
// by a merge are only *retired* (remembered, not deleted) until the owner
// calls `prune_retired()` after its next durable checkpoint, so a crash
// between the two never orphans state a resume still needs.
//
// `Codec` maps T to/from support::Json (lossless — segment records and
// checkpointed hot entries both go through it).
//
// Fault policy: every mutating file operation goes through the
// support::vfs() seam. Transient failures are absorbed by bounded
// deterministic retry inside the segment writer; a *persistent* write
// failure (ENOSPC, EIO, read-only directory) does not kill the deque —
// it **degrades** to in-memory mode: the elements that failed to spill
// stay in the hot set, no further segments are written, and existing
// segments keep draining normally. Degradation never changes the pop
// sequence (the elements are the same, only their residence differs), so
// certificates stay byte-identical; it is surfaced through `degraded()` /
// `degradation()` for invocation-side observability only. If a
// `degraded_capacity` is configured and the unspillable hot set outgrows
// it, the deque fails the job with a structured VfsError instead of
// exhausting memory.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/json.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"
#include "support/vfs.hpp"

namespace aurv::support {

/// Writes one sorted run of JSONL records to a fresh segment file
/// (truncating any leftover of the same name from a pre-crash run).
/// Transient write failures are retried after rewinding to the last
/// record boundary; persistent ones propagate as VfsError.
class SpillSegmentWriter {
 public:
  explicit SpillSegmentWriter(std::string path, RetryPolicy retry = {});
  ~SpillSegmentWriter();
  SpillSegmentWriter(const SpillSegmentWriter&) = delete;
  SpillSegmentWriter& operator=(const SpillSegmentWriter&) = delete;

  /// `line` is one record without the trailing newline.
  void append(const std::string& line);
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  /// Flushes and closes; throws VfsError if any write failed.
  void close();

 private:
  std::string path_;
  RetryPolicy retry_;
  std::unique_ptr<VfsFile> file_;  ///< closed silently by the destructor
  std::uint64_t bytes_ = 0;        ///< durable record-boundary offset
  std::uint64_t records_ = 0;
};

/// Streams the records of an immutable segment file from a byte offset.
/// The current record ("head") stays loaded; advance() moves to the next.
class SpillSegmentReader {
 public:
  /// Opens `path` positioned at `offset` with `remaining` records left to
  /// read; throws std::invalid_argument when the file is missing or holds
  /// fewer records than promised (a segment/checkpoint mismatch).
  SpillSegmentReader(std::string path, std::uint64_t offset, std::uint64_t remaining);
  SpillSegmentReader(SpillSegmentReader&&) = default;
  SpillSegmentReader& operator=(SpillSegmentReader&&) = default;

  [[nodiscard]] bool done() const noexcept { return remaining_ == 0; }
  /// The current record line; valid only while !done().
  [[nodiscard]] const std::string& head() const noexcept { return head_; }
  void advance();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Byte offset of the head record (what a checkpoint must store).
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }
  [[nodiscard]] std::uint64_t remaining() const noexcept { return remaining_; }

 private:
  void read_head();

  std::string path_;
  std::unique_ptr<std::ifstream> file_;  // pointer: keeps the reader movable
  std::string head_;
  std::uint64_t offset_ = 0;
  std::uint64_t remaining_ = 0;
};

template <typename T, typename Less, typename Codec>
class SpillDeque {
 public:
  struct Config {
    /// Directory for segment files; "" disables spilling entirely. The
    /// directory belongs to ONE deque (plus its checkpoint/resume
    /// lineage): segments are numbered from a per-deque counter and
    /// restore sweeps every unreferenced segment-named file, so two
    /// deques sharing a directory would truncate and delete each
    /// other's data — same exclusivity contract as a checkpoint path.
    std::string spill_dir;
    /// Max elements resident in memory; 0 = unbounded (never spills).
    /// Nonzero requires spill_dir.
    std::size_t mem_capacity = 0;
    /// Open-segment cap: one more spill past this k-way-merges every
    /// segment into a single sorted run (bounds open file handles and the
    /// per-pop head scan). Must be >= 1.
    std::size_t max_segments = 8;
    /// Hot-set bound while *degraded* (spill dir unwritable/full): exceed
    /// it and the deque fails the job with a structured VfsError instead
    /// of growing without limit. 0 = unbounded in-memory fallback.
    std::size_t degraded_capacity = 0;
  };

  explicit SpillDeque(Config config = {}, Less less = {})
      : config_(std::move(config)), less_(less), hot_(less) {
    AURV_CHECK_MSG(config_.max_segments >= 1, "SpillDeque: max_segments must be >= 1");
    AURV_CHECK_MSG(config_.mem_capacity == 0 || !config_.spill_dir.empty(),
                   "SpillDeque: mem_capacity requires a spill_dir");
    if (!config_.spill_dir.empty()) {
      try {
        vfs().create_directories(config_.spill_dir);
      } catch (const VfsError& error) {
        // An uncreatable spill dir degrades the deque from birth: it runs
        // fully in memory (under degraded_capacity) instead of failing.
        degrade(error.what());
      }
    }
  }

  [[nodiscard]] std::uint64_t size() const noexcept {
    std::uint64_t total = hot_.size();
    for (const Segment& segment : segments_) total += segment.reader.remaining();
    return total;
  }
  [[nodiscard]] bool empty() const noexcept { return hot_.empty() && segments_.empty(); }

  /// `Less` must order every inserted element strictly (no two distinct
  /// live elements may compare equal — the frontier guarantees this via
  /// unique box ids): a duplicate's twin may already live in a segment,
  /// where it cannot be deduplicated, and the pop sequence would then
  /// depend on spill timing. The detectable half is checked here.
  void insert(T value) {
    AURV_CHECK_MSG(hot_.insert(std::move(value)).second,
                   "SpillDeque: duplicate element (Less must be a strict total order "
                   "over all live elements)");
    hot_high_water_ = std::max<std::uint64_t>(hot_high_water_, hot_.size());
    if (config_.mem_capacity > 0 && hot_.size() > config_.mem_capacity) spill_tail();
  }

  /// True once a persistent spill-write failure demoted the deque to
  /// in-memory mode (never part of any certificate).
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }
  /// The first failure that caused the degradation ("" when healthy).
  [[nodiscard]] const std::string& degradation() const noexcept { return degradation_; }

  /// The least (best) element across memory and disk; nullptr when empty.
  /// The pointer is valid until the next mutation.
  [[nodiscard]] const T* peek_best() const {
    const Segment* best = best_segment();
    if (best == nullptr) return hot_.empty() ? nullptr : &*hot_.begin();
    if (hot_.empty() || less_(*best->head, *hot_.begin())) return &*best->head;
    return &*hot_.begin();
  }

  T pop_best() {
    AURV_CHECK_MSG(!empty(), "SpillDeque: pop from an empty deque");
    Segment* best = best_segment();
    if (best != nullptr && (hot_.empty() || less_(*best->head, *hot_.begin()))) {
      T out = std::move(*best->head);
      advance_segment(*best);
      return out;
    }
    return std::move(hot_.extract(hot_.begin()).value());
  }

  /// ---- checkpoint support -------------------------------------------
  /// {"seq": n, "hot": [...], "segments": [{"path","offset","remaining"}]}
  [[nodiscard]] Json state_to_json() const {
    Json json = Json::object();
    json.set("seq", Json(seq_));
    Json hot = Json::array();
    for (const T& value : hot_) hot.push_back(Codec::to_json(value));
    json.set("hot", std::move(hot));
    Json segments = Json::array();
    for (const Segment& segment : segments_) {
      Json entry = Json::object();
      entry.set("path", Json(segment.reader.path()));
      entry.set("offset", Json(segment.reader.offset()));
      entry.set("remaining", Json(segment.reader.remaining()));
      segments.push_back(std::move(entry));
    }
    json.set("segments", std::move(segments));
    return json;
  }

  [[nodiscard]] static SpillDeque from_json(const Json& json, Config config, Less less = {}) {
    SpillDeque deque(std::move(config), less);
    deque.seq_ = json.at("seq").as_uint();
    // Through insert(), not straight into hot_: a state checkpointed
    // under a looser (or absent) memory cap can hold more hot entries
    // than this restore's config allows — e.g. an in-memory run resumed
    // on a smaller machine — and insert() spills the overflow as it
    // loads, keeping the cap honest even during the restore itself.
    for (const Json& entry : json.at("hot").as_array()) deque.insert(Codec::from_json(entry));
    for (const Json& entry : json.at("segments").as_array()) {
      Segment segment{SpillSegmentReader(entry.at("path").as_string(),
                                         entry.at("offset").as_uint(),
                                         entry.at("remaining").as_uint()),
                      std::nullopt};
      if (!segment.reader.done())
        segment.head = Codec::from_json(Json::parse(segment.reader.head()));
      if (segment.head.has_value()) deque.segments_.push_back(std::move(segment));
    }
    // A kill between the owner's checkpoint write and its prune_retired()
    // call leaves segment files no state references; without this sweep,
    // repeated crash/resume cycles would accumulate them forever (the
    // restored state only ever recreates files with seq >= the stored
    // counter). Deleting unreferenced segment-named files is always safe:
    // anything needed again is rewritten from scratch.
    deque.sweep_orphans();
    return deque;
  }

  /// Deletes every file retired by draining or merging since the last
  /// call. Call only after the state that stopped referencing them is
  /// durable (e.g. right after a base checkpoint write), so a crash in
  /// between never deletes a file an older checkpoint still needs.
  void prune_retired() {
    for (const std::string& path : retired_) vfs().remove(path);  // best-effort
    retired_.clear();
  }

  /// Closes every open segment and deletes every file this deque created
  /// (open and retired alike), emptying the container. For runs without
  /// durable checkpoints, where segment files have no value once the run
  /// ends; never call while a checkpoint still references the files.
  void discard_files() {
    for (Segment& segment : segments_) retired_.push_back(segment.reader.path());
    segments_.clear();
    hot_.clear();
    prune_retired();
  }

  /// Deletes every segment-named file ("seg-<n>.jsonl"), in the
  /// configured spill directory and in the directories of the referenced
  /// segments, that the current state does not reference. The reclaim
  /// half of the exclusive-directory contract: leftovers of a crashed
  /// run are garbage *because* no other deque may share the directory.
  /// from_json() calls this automatically; call it on a fresh start too,
  /// before the first spill renumbers segments from zero.
  void sweep_orphans() const {
    std::error_code ec;
    std::set<std::filesystem::path> keep;
    std::set<std::filesystem::path> dirs;
    if (!config_.spill_dir.empty())
      dirs.insert(std::filesystem::weakly_canonical(config_.spill_dir, ec));
    for (const Segment& segment : segments_) {
      const std::filesystem::path path =
          std::filesystem::weakly_canonical(segment.reader.path(), ec);
      keep.insert(path);
      dirs.insert(path.parent_path());
    }
    for (const std::filesystem::path& dir : dirs) {
      for (const std::string& name : vfs().list_dir(dir.string())) {
        if (!is_segment_name(name)) continue;
        const std::filesystem::path candidate = dir / name;
        if (keep.count(std::filesystem::weakly_canonical(candidate, ec)) == 0)
          vfs().remove(candidate.string());  // best-effort
      }
    }
  }

  /// ---- invocation-side observability (never part of any certificate) --
  [[nodiscard]] std::uint64_t hot_high_water() const noexcept { return hot_high_water_; }
  [[nodiscard]] std::uint64_t spilled() const noexcept { return spilled_; }
  [[nodiscard]] std::size_t segment_count() const noexcept { return segments_.size(); }

 private:
  struct Segment {
    SpillSegmentReader reader;
    std::optional<T> head;
  };

  /// "seg-<digits>.jsonl" — the only files the sweep may touch.
  [[nodiscard]] static bool is_segment_name(const std::string& name) {
    const std::string::size_type dot = name.size() > 6 ? name.size() - 6 : 0;
    if (name.rfind("seg-", 0) != 0 || dot <= 4 || name.compare(dot, 6, ".jsonl") != 0)
      return false;
    for (std::string::size_type k = 4; k < dot; ++k)
      if (name[k] < '0' || name[k] > '9') return false;
    return true;
  }

  [[nodiscard]] std::string segment_path(std::uint64_t seq) const {
    return (std::filesystem::path(config_.spill_dir) / ("seg-" + std::to_string(seq) + ".jsonl"))
        .string();
  }

  [[nodiscard]] const Segment* best_segment() const {
    const Segment* best = nullptr;
    for (const Segment& segment : segments_)
      if (best == nullptr || less_(*segment.head, *best->head)) best = &segment;
    return best;
  }
  [[nodiscard]] Segment* best_segment() {
    return const_cast<Segment*>(std::as_const(*this).best_segment());
  }

  void advance_segment(Segment& segment) {
    segment.reader.advance();
    if (segment.reader.done()) {
      retired_.push_back(segment.reader.path());
      for (auto it = segments_.begin(); it != segments_.end(); ++it) {
        if (&*it == &segment) {
          segments_.erase(it);
          break;
        }
      }
    } else {
      segment.head = Codec::from_json(Json::parse(segment.reader.head()));
    }
  }

  /// Marks the deque degraded (first failure wins) — spilling stops,
  /// elements stay hot, existing segments keep draining.
  void degrade(const std::string& reason) {
    if (!degraded_) {
      degradation_ = reason;
      telemetry::registry().counter("spill.degradations").add();
    }
    degraded_ = true;
  }

  /// While degraded, an unspillable hot set may not outgrow the
  /// configured bound — beyond it, fail the job with a structured error
  /// rather than exhaust memory.
  void enforce_degraded_cap() const {
    if (config_.degraded_capacity == 0 || hot_.size() <= config_.degraded_capacity) return;
    throw VfsError("spill", config_.spill_dir,
                   "degraded frontier exceeds degraded_capacity=" +
                       std::to_string(config_.degraded_capacity) + " (hot=" +
                       std::to_string(hot_.size()) + "; first failure: " + degradation_ + ")",
                   /*transient=*/false);
  }

  /// Moves the worst half of the hot set, in sorted order, into a fresh
  /// segment file. A persistent write failure degrades the deque instead
  /// of propagating: the unspilled elements simply stay hot (the pop
  /// sequence — and thus every certificate — is unchanged).
  void spill_tail() {
    if (degraded_) {
      enforce_degraded_cap();
      return;
    }
    trace::Span span("spill.segment", "spill", trace::Span::Options{.announce = true});
    const std::size_t keep = config_.mem_capacity / 2;
    auto first_cold = hot_.begin();
    std::advance(first_cold, keep);
    const std::string path = segment_path(seq_++);
    std::uint64_t count = 0;
    try {
      SpillSegmentWriter writer(path);
      for (auto it = first_cold; it != hot_.end(); ++it)
        writer.append(Codec::to_json(*it).dump());
      writer.close();
      count = writer.records();
    } catch (const VfsError& error) {
      // Nothing was erased from hot_ yet, so the failed segment can be
      // dropped wholesale and the elements served from memory.
      vfs().remove(path);
      degrade(error.what());
      enforce_degraded_cap();
      return;
    }
    spilled_ += count;
    if (span.armed()) {
      Json args = Json::object();
      args.set("records", Json(count));
      span.set_args(std::move(args));
    }
    hot_.erase(first_cold, hot_.end());
    Segment segment{SpillSegmentReader(path, 0, count), std::nullopt};
    segment.head = Codec::from_json(Json::parse(segment.reader.head()));
    segments_.push_back(std::move(segment));
    if (segments_.size() > config_.max_segments) merge_segments();
  }

  /// K-way-merges every open segment into one sorted run. Raw record
  /// lines are copied as-is (no decode/re-encode), so a merged segment is
  /// byte-equivalent to the concatenation of its inputs in pop order.
  /// Fault-safe: the merge reads through *scratch* readers opened at the
  /// live segments' current offsets, so a failed merge write leaves the
  /// live state untouched — the deque degrades (keeps serving from the
  /// unmerged segments) instead of losing records.
  void merge_segments() {
    if (segments_.size() <= 1) return;
    trace::Span span("spill.merge", "spill", trace::Span::Options{.announce = true});
    struct Scratch {
      SpillSegmentReader reader;
      T head;
    };
    std::vector<Scratch> scratch;
    scratch.reserve(segments_.size());
    for (const Segment& segment : segments_)
      scratch.push_back(Scratch{SpillSegmentReader(segment.reader.path(),
                                                   segment.reader.offset(),
                                                   segment.reader.remaining()),
                                *segment.head});
    const std::string path = segment_path(seq_++);
    std::uint64_t count = 0;
    try {
      SpillSegmentWriter writer(path);
      std::size_t open = scratch.size();
      while (open > 0) {
        Scratch* best = nullptr;
        for (Scratch& s : scratch)
          if (!s.reader.done() && (best == nullptr || less_(s.head, best->head))) best = &s;
        writer.append(best->reader.head());
        best->reader.advance();
        if (best->reader.done())
          --open;
        else
          best->head = Codec::from_json(Json::parse(best->reader.head()));
      }
      writer.close();
      count = writer.records();
    } catch (const VfsError& error) {
      vfs().remove(path);
      degrade(error.what());
      return;
    }
    AURV_CHECK_MSG(count > 0, "SpillDeque: merged zero records from nonempty segments");
    telemetry::registry().counter("spill.merges").add();
    if (span.armed()) {
      Json args = Json::object();
      args.set("records", Json(count));
      span.set_args(std::move(args));
    }
    for (Segment& segment : segments_) retired_.push_back(segment.reader.path());
    segments_.clear();
    Segment merged{SpillSegmentReader(path, 0, count), std::nullopt};
    merged.head = Codec::from_json(Json::parse(merged.reader.head()));
    segments_.push_back(std::move(merged));
  }

  Config config_;
  Less less_;
  std::set<T, Less> hot_;
  std::vector<Segment> segments_;
  std::uint64_t seq_ = 0;                 ///< next segment file number
  std::vector<std::string> retired_;      ///< files awaiting prune_retired()
  std::uint64_t spilled_ = 0;             ///< lifetime records written to disk
  std::uint64_t hot_high_water_ = 0;      ///< max elements resident at once
  bool degraded_ = false;                 ///< spilling demoted to in-memory mode
  std::string degradation_;               ///< first failure behind the demotion
};

}  // namespace aurv::support
