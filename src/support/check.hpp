// Lightweight precondition checking for the aurv library.
//
// AURV_CHECK is used for API contract violations (caller errors). It throws
// std::logic_error so tests can assert on misuse, instead of aborting like
// assert(); it is active in all build types because the simulator is used
// for validating *theorems* and silent UB would invalidate experiments.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace aurv::support {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "AURV_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace aurv::support

#define AURV_CHECK(expr)                                                          \
  do {                                                                            \
    if (!(expr)) ::aurv::support::check_failed(#expr, __FILE__, __LINE__, {});    \
  } while (0)

#define AURV_CHECK_MSG(expr, msg)                                                 \
  do {                                                                            \
    if (!(expr)) ::aurv::support::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
