// Embedded HTTP status server: live introspection of a running driver
// over plain HTTP/1.1 (`--status-port PORT` on aurv_sweep / aurv_cli
// sweep; 0 asks the kernel for an ephemeral port, announced as one JSON
// line on stderr). Four GET endpoints:
//
//   /metrics   Prometheus text exposition (format 0.0.4) rendered from a
//              live telemetry::Registry snapshot + run-manifest labels
//   /status    one JSON object: active phase, per-run progress providers
//              (jobs or waves/frontier/incumbent), spill + degradation
//              state, elapsed seconds, spec fingerprint
//   /healthz   200 "ok" / 503 with a JSON degradation detail
//   /trace     tail of the in-memory span ring (?last=N) when a
//              --trace-out stream is active
//
// The same hard invariant as the rest of the observability layer: the
// server NEVER touches a deterministic artifact and NEVER fails a run.
// Every handler only *reads* — registry atomics via the lock-free
// snapshot path, the activity stack, the trace ring, and progress
// providers that read per-run atomics — and writes to a socket. A port
// that cannot be bound degrades soft: one stderr warning, a tick of
// `statusd.dropped`, and the run proceeds unobserved. Certificates,
// JSONL streams and checkpoints are byte-identical with the server on or
// off, under concurrent scraping, at any worker count —
// tests/statusd_test.cpp enforces exactly that.
//
// Transport: a blocking accept loop on one dedicated thread (poll() with
// a short tick so stop() is prompt), connections served one at a time
// (the natural connection bound for a diagnostics endpoint), per-socket
// read/write timeouts so a stalled scraper cannot wedge the server,
// GET-only, `Connection: close`, requests capped at a few KiB.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/json.hpp"
#include "support/telemetry.hpp"

namespace aurv::support::statusd {

// ------------------------------------------------------------------------
// Progress providers (what /status reports beyond the registry)
// ------------------------------------------------------------------------

/// Process-wide registry of named progress providers. A runner that
/// knows its own notion of progress (jobs done/total, wave + frontier +
/// incumbent) registers a callback for the lifetime of the run; /status
/// invokes every provider and embeds the results under its name.
///
/// Thread-safety contract: collect() invokes providers *under the
/// registry mutex*, so remove() blocks until any in-flight collection
/// has finished — a provider whose captures die with the caller's stack
/// frame is safe as long as it is removed (ScopedProgress) before the
/// frame unwinds. Providers run on the server thread: they must only
/// read atomics / take their own short locks, and must not register or
/// remove providers themselves (the registry mutex is not recursive).
class ProgressRegistry {
 public:
  [[nodiscard]] static ProgressRegistry& instance();

  /// Registers `provider` under `name`; returns a token for remove().
  std::uint64_t add(std::string name, std::function<Json()> provider);
  /// Unregisters; blocks until any in-flight collect() finishes, so the
  /// provider's captures may be destroyed immediately afterwards.
  void remove(std::uint64_t token);

  /// {"<name>": provider(), ...} in registration order. A provider that
  /// throws contributes {"error": "..."} instead of killing the scrape.
  [[nodiscard]] Json collect() const;

 private:
  ProgressRegistry() = default;

  mutable std::mutex mutex_;
  std::uint64_t next_token_ = 1;
  struct Entry {
    std::uint64_t token;
    std::string name;
    std::function<Json()> provider;
  };
  std::vector<Entry> entries_;
};

/// Shorthand for ProgressRegistry::instance().
[[nodiscard]] inline ProgressRegistry& progress() { return ProgressRegistry::instance(); }

/// RAII provider registration: adds on construction, removes (blocking
/// on in-flight scrapes) on destruction.
class ScopedProgress {
 public:
  ScopedProgress(std::string name, std::function<Json()> provider)
      : token_(ProgressRegistry::instance().add(std::move(name), std::move(provider))) {}
  ~ScopedProgress() { ProgressRegistry::instance().remove(token_); }
  ScopedProgress(const ScopedProgress&) = delete;
  ScopedProgress& operator=(const ScopedProgress&) = delete;

 private:
  std::uint64_t token_;
};

// ------------------------------------------------------------------------
// Server
// ------------------------------------------------------------------------

/// What identifies the run in /metrics labels and /status fields — the
/// live-run analogue of telemetry::RunManifest.
struct RunInfo {
  std::string kind;         ///< "campaign" | "gather-census" | "search" | ...
  std::string spec;         ///< the spec file the run executes
  std::string fingerprint;  ///< spec fingerprint, 16 hex digits ("" if n/a)
  std::uint64_t threads = 0;  ///< effective worker count
};

struct Config {
  /// TCP port to bind; 0 = ephemeral (kernel-chosen, reported by port()
  /// and the stderr announce line).
  int port = 0;
  /// Loopback by default: this is a diagnostics endpoint, not a service.
  std::string bind_address = "127.0.0.1";
  int read_timeout_ms = 2000;   ///< per-connection receive deadline
  int write_timeout_ms = 2000;  ///< per-send deadline
  std::size_t max_request_bytes = 8192;
  RunInfo run;
};

/// One rendered HTTP response (status + body), exposed so unit tests can
/// drive the router without sockets.
struct Response {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Renders a registry snapshot as Prometheus text exposition format
/// 0.0.4. Deterministic given the snapshot: `aurv_` prefix, dots and
/// dashes to underscores, counters as `_total`, gauges plain, log2
/// histograms as cumulative `_bucket{le="2^k-1"}`/`_sum`/`_count`,
/// timers as `_seconds_total` (%.9f) + `_spans_total`, preceded by
/// `aurv_run_info{...} 1` and `aurv_uptime_seconds`.
/// `scripts/metrics_report.py prom` renders the identical format from an
/// offline snapshot file — keep the two in lockstep.
[[nodiscard]] std::string render_prometheus(const telemetry::Registry::Snapshot& snapshot,
                                            const RunInfo& run, double uptime_s);

/// The /status JSON: run identity, elapsed, innermost activity phase,
/// every registered progress provider, spill.* metrics and the active
/// degradation list.
[[nodiscard]] Json render_status(const RunInfo& run, double uptime_s);

/// Active degradations as a JSON array of metric-ish names — every gauge
/// ending in ".degraded" with a nonzero value, plus "trace" when the
/// trace sink has degraded. Empty array = healthy (/healthz 200).
[[nodiscard]] Json degradation_detail();

/// Routes one parsed request to an endpoint response and ticks
/// `statusd.requests`. `target` is the raw request target (path +
/// optional ?query). Exposed for unit tests.
[[nodiscard]] Response handle_request(std::string_view method, std::string_view target,
                                      const RunInfo& run, double uptime_s);

/// The embedded status server. start() binds, announces the chosen port
/// as one stderr JSON line ({"statusd":{"port":N}}) and spawns the
/// accept-loop thread; destruction stops the loop and joins. On any
/// bind/listen failure start() returns nullptr after one stderr warning
/// and a `statusd.dropped` tick — callers treat that as "run
/// unobserved", never as an error.
class StatusServer {
 public:
  [[nodiscard]] static std::unique_ptr<StatusServer> start(Config config);
  ~StatusServer();
  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// The bound port (the kernel's choice when Config::port was 0).
  [[nodiscard]] int port() const noexcept;

 private:
  StatusServer();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace aurv::support::statusd
