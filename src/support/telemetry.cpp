#include "support/telemetry.hpp"

#include <chrono>
#include <string>

namespace aurv::support::telemetry {

namespace {

/// Decimal string of the lower bound of bit_width bucket `index`:
/// "0", "1", "2", "4", "8", ... (bucket 0 holds only the sample 0).
std::string bucket_lower_bound(int index) {
  if (index == 0) return "0";
  return std::to_string(std::uint64_t{1} << (index - 1));
}

}  // namespace

Json Log2Histogram::to_json() const {
  Json buckets = Json::object();
  for (int i = 0; i < 65; ++i) {
    const std::uint64_t n = bucket(i);
    if (n != 0) buckets.set(bucket_lower_bound(i), Json(n));
  }
  Json out = Json::object();
  out.set("count", Json(count()));
  out.set("sum", Json(sum()));
  out.set("buckets", std::move(buckets));
  return out;
}

Registry& Registry::instance() {
  static Registry* the_registry = new Registry();  // never destroyed: references
                                                   // handed out must outlive exit paths
  return *the_registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[std::string(name)];
  if (!slot) {
    slot = std::make_unique<Counter>();
    generation_.fetch_add(1, std::memory_order_release);
  }
  return *slot;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[std::string(name)];
  if (!slot) {
    slot = std::make_unique<Gauge>();
    generation_.fetch_add(1, std::memory_order_release);
  }
  return *slot;
}

Log2Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[std::string(name)];
  if (!slot) {
    slot = std::make_unique<Log2Histogram>();
    generation_.fetch_add(1, std::memory_order_release);
  }
  return *slot;
}

Timer& Registry::timer(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto& slot = timers_[std::string(name)];
  if (!slot) {
    slot = std::make_unique<Timer>();
    generation_.fetch_add(1, std::memory_order_release);
  }
  return *slot;
}

void Registry::merge(const ShardAccumulator& shard) {
  for (const auto& [name, delta] : shard.entries()) counter(name).add(delta);
  counter("telemetry.merges").add();
}

std::shared_ptr<const Registry::Index> Registry::current_index() const {
  // Fast path: the cached index matches the registration generation.
  // Loading the generation first (acquire, paired with the registration
  // release) means a stale-generation index can never pass the check.
  const std::uint64_t generation = generation_.load(std::memory_order_acquire);
  if (auto cached = index_.load(std::memory_order_acquire);
      cached && cached->generation == generation) {
    return cached;
  }
  // Slow path (first snapshot after a registration): rebuild under the
  // mutex from the name-ordered maps, so index order — and therefore
  // every rendering — stays name-sorted.
  std::lock_guard lock(mutex_);
  auto index = std::make_shared<Index>();
  index->generation = generation_.load(std::memory_order_relaxed);
  index->counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) index->counters.emplace_back(name, c.get());
  index->gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) index->gauges.emplace_back(name, g.get());
  index->histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) index->histograms.emplace_back(name, h.get());
  index->timers.reserve(timers_.size());
  for (const auto& [name, t] : timers_) index->timers.emplace_back(name, t.get());
  index_.store(index, std::memory_order_release);
  return index;
}

Registry::Snapshot Registry::read_snapshot() const {
  const std::shared_ptr<const Index> index = current_index();
  Snapshot out;
  out.counters.reserve(index->counters.size());
  for (const auto& [name, c] : index->counters) out.counters.emplace_back(name, c->value());
  out.gauges.reserve(index->gauges.size());
  for (const auto& [name, g] : index->gauges) out.gauges.emplace_back(name, g->value());
  out.histograms.reserve(index->histograms.size());
  for (const auto& [name, h] : index->histograms) {
    Snapshot::HistogramValue value;
    value.count = h->count();
    value.sum = h->sum();
    for (int i = 0; i < 65; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n != 0) value.buckets.emplace_back(i, n);
    }
    out.histograms.emplace_back(name, std::move(value));
  }
  out.timers.reserve(index->timers.size());
  for (const auto& [name, t] : index->timers) {
    out.timers.emplace_back(name, Snapshot::TimerValue{t->total_ns(), t->count()});
  }
  return out;
}

Json Registry::snapshot() const {
  const Snapshot snap = read_snapshot();
  Json counters = Json::object();
  for (const auto& [name, value] : snap.counters) counters.set(name, Json(value));
  Json gauges = Json::object();
  for (const auto& [name, value] : snap.gauges) gauges.set(name, Json(value));
  Json histograms = Json::object();
  for (const auto& [name, value] : snap.histograms) {
    Json buckets = Json::object();
    for (const auto& [index, n] : value.buckets) buckets.set(bucket_lower_bound(index), Json(n));
    Json entry = Json::object();
    entry.set("count", Json(value.count));
    entry.set("sum", Json(value.sum));
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }
  Json timers = Json::object();
  for (const auto& [name, value] : snap.timers) {
    Json entry = Json::object();
    entry.set("ns", Json(value.total_ns));
    entry.set("count", Json(value.count));
    timers.set(name, std::move(entry));
  }
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  out.set("timers", std::move(timers));
  return out;
}

std::map<std::string, std::uint64_t> Registry::counter_values() const {
  const Snapshot snap = read_snapshot();
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] : snap.counters) out.emplace(name, value);
  return out;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->value_.store(0, std::memory_order_relaxed);
  for (auto& [name, g] : gauges_) g->value_.store(0, std::memory_order_relaxed);
  for (auto& [name, h] : histograms_) {
    for (auto& bucket : h->buckets_) bucket.store(0, std::memory_order_relaxed);
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, t] : timers_) {
    t->total_ns_.store(0, std::memory_order_relaxed);
    t->count_.store(0, std::memory_order_relaxed);
  }
}

// ------------------------------------------------------------------------
// Activity stack
// ------------------------------------------------------------------------

ActivityStack& ActivityStack::instance() {
  static ActivityStack* the_stack = new ActivityStack();  // never destroyed, like the registry
  return *the_stack;
}

std::uint64_t ActivityStack::push(std::string name) {
  std::lock_guard lock(mutex_);
  const std::uint64_t token = next_token_++;
  stack_.emplace_back(token, std::move(name));
  return token;
}

void ActivityStack::pop(std::uint64_t token) {
  std::lock_guard lock(mutex_);
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (it->first == token) {
      stack_.erase(std::next(it).base());
      return;
    }
  }
}

std::string ActivityStack::current() const {
  std::lock_guard lock(mutex_);
  return stack_.empty() ? std::string() : stack_.back().second;
}

// ------------------------------------------------------------------------
// Heartbeat
// ------------------------------------------------------------------------

Heartbeat::Heartbeat(HeartbeatConfig config)
    : config_(std::move(config)), start_(std::chrono::steady_clock::now()), last_beat_(start_) {
  if (config_.out == nullptr) config_.out = stderr;
  last_counters_ = registry().counter_values();
  if (config_.interval_s > 0) {
    thread_ = std::thread([this] { run(); });
  }
}

Heartbeat::~Heartbeat() { stop(); }

void Heartbeat::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Heartbeat::beat_now() {
  std::lock_guard lock(mutex_);
  emit();
}

void Heartbeat::run() {
  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.interval_s));
  std::unique_lock lock(mutex_);
  auto next = start_ + interval;
  while (!stopping_) {
    if (cv_.wait_until(lock, next, [this] { return stopping_; })) break;
    emit();
    next += interval;
  }
}

void Heartbeat::emit() {
  // Called with mutex_ held. One read_snapshot() call feeds the counter
  // list, the rate computation AND the gauges — a single capture instead
  // of the counter-walk + full-snapshot pair this used to do.
  const auto now = std::chrono::steady_clock::now();
  const double elapsed_s = std::chrono::duration<double>(now - start_).count();
  const double since_last_s = std::chrono::duration<double>(now - last_beat_).count();
  const Registry::Snapshot snap = registry().read_snapshot();

  Json counters_json = Json::object();
  for (const auto& [name, value] : snap.counters) counters_json.set(name, Json(value));

  Json rates = Json::object();
  if (since_last_s > 0) {
    for (const auto& [name, value] : snap.counters) {
      const auto it = last_counters_.find(name);
      const std::uint64_t before = it == last_counters_.end() ? 0 : it->second;
      if (value > before) {
        rates.set(name, Json(static_cast<double>(value - before) / since_last_s));
      }
    }
  }

  Json gauges = Json::object();
  for (const auto& [name, value] : snap.gauges) gauges.set(name, Json(value));

  const std::uint64_t seq = beats_.fetch_add(1, std::memory_order_relaxed) + 1;
  Json line = Json::object();
  line.set("heartbeat", Json(seq));
  line.set("elapsed_s", Json(elapsed_s));
  line.set("phase", Json(activity().current()));
  if (config_.extra) {
    // Named, not inlined into the range-for: the range-init temporary is
    // not lifetime-extended in C++20.
    const Json extra = config_.extra();
    for (const auto& [key, value] : extra.as_object()) line.set(key, value);
  }
  line.set("counters", std::move(counters_json));
  line.set("gauges", std::move(gauges));
  line.set("rates", std::move(rates));

  const std::string text = line.dump() + "\n";
  std::fwrite(text.data(), 1, text.size(), config_.out);
  std::fflush(config_.out);

  last_counters_.clear();
  for (const auto& [name, value] : snap.counters) last_counters_.emplace_hint(
      last_counters_.end(), name, value);  // snapshot order is name-sorted
  last_beat_ = now;
}

// ------------------------------------------------------------------------
// Metrics snapshot
// ------------------------------------------------------------------------

Json build_info() {
  Json out = Json::object();
#if defined(__clang__)
  out.set("compiler", Json(std::string("clang ") + std::to_string(__clang_major__) + "." +
                           std::to_string(__clang_minor__)));
#elif defined(__GNUC__)
  out.set("compiler", Json(std::string("gcc ") + std::to_string(__GNUC__) + "." +
                           std::to_string(__GNUC_MINOR__)));
#else
  out.set("compiler", Json("unknown"));
#endif
  out.set("cpp_standard", Json(static_cast<std::uint64_t>(__cplusplus)));
#if defined(NDEBUG)
  out.set("build_type", Json("release"));
#else
  out.set("build_type", Json("debug"));
#endif
  return out;
}

Json metrics_snapshot(const RunManifest& manifest, double wall_ms) {
  Json run = Json::object();
  run.set("kind", Json(manifest.kind));
  run.set("spec", Json(manifest.spec_path));
  run.set("fingerprint", Json(manifest.fingerprint));
  run.set("threads", Json(manifest.threads));
  if (manifest.extra.is_object() && !manifest.extra.as_object().empty()) {
    run.set("config", manifest.extra);
  }
  run.set("build", build_info());

  Json out = Json::object();
  out.set("schema", Json(1));
  out.set("kind", Json("metrics-snapshot"));
  out.set("run", std::move(run));
  out.set("wall_ms", Json(wall_ms));
  const Json metrics = registry().snapshot();
  for (const auto& [key, value] : metrics.as_object()) out.set(key, value);
  return out;
}

void write_metrics(const std::string& path, const RunManifest& manifest, double wall_ms) {
  metrics_snapshot(manifest, wall_ms).save_file(path);
}

}  // namespace aurv::support::telemetry
