// Minimal lazy generator coroutine (C++20 has coroutines but std::generator
// only arrives in C++23). Used to express the paper's mobility programs —
// which are infinite instruction sequences — as lazily produced streams.
//
// The generator owns its coroutine frame; moving transfers ownership. Values
// are yielded by const reference to avoid copies of heavyweight payloads
// (instructions carry arbitrary-precision rationals).
#pragma once

#include <coroutine>
#include <exception>
#include <iterator>
#include <utility>

namespace aurv::support {

template <typename T>
class generator {
 public:
  struct promise_type {
    const T* current = nullptr;
    std::exception_ptr exception;

    generator get_return_object() {
      return generator{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    std::suspend_always yield_value(const T& value) noexcept {
      current = &value;
      return {};
    }
    // GCC 12 (the pinned toolchain) double-destroys non-trivial temporaries
    // used as co_yield operands (frame cleanup re-runs the temporary's
    // destructor). Deleting the rvalue overload turns that latent
    // use-after-free into a compile error: bind to a named local, then
    // co_yield it.
    std::suspend_always yield_value(T&& value) = delete;
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  generator() = default;
  explicit generator(std::coroutine_handle<promise_type> h) : handle_(h) {}
  generator(generator&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  generator& operator=(generator&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  generator(const generator&) = delete;
  generator& operator=(const generator&) = delete;
  ~generator() { destroy(); }

  /// Advances to the next value. Returns false when the stream is exhausted.
  bool next() {
    if (!handle_ || handle_.done()) return false;
    handle_.resume();
    if (handle_.promise().exception) std::rethrow_exception(handle_.promise().exception);
    return !handle_.done();
  }

  /// The value produced by the last successful next(). Valid only after
  /// next() returned true, until the following next() call.
  [[nodiscard]] const T& value() const { return *handle_.promise().current; }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }

  // Input-iterator interface so generators compose with range-for loops.
  class iterator {
   public:
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::input_iterator_tag;

    iterator() = default;
    explicit iterator(generator* g) : gen_(g) { advance(); }
    const T& operator*() const { return gen_->value(); }
    iterator& operator++() {
      advance();
      return *this;
    }
    void operator++(int) { advance(); }
    bool operator==(std::default_sentinel_t) const { return gen_ == nullptr; }

   private:
    void advance() {
      if (gen_ && !gen_->next()) gen_ = nullptr;
    }
    generator* gen_ = nullptr;
  };

  iterator begin() { return iterator{this}; }
  std::default_sentinel_t end() { return {}; }

 private:
  void destroy() {
    if (handle_) handle_.destroy();
    handle_ = {};
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace aurv::support
