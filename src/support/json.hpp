// Minimal self-contained JSON reader/writer for the experiment layer.
//
// Scenario specs, campaign summaries and checkpoints are all JSON, and the
// campaign subsystem needs them to be *deterministic*: the same campaign
// must serialize to byte-identical text regardless of thread count or
// platform locale. Hence this small library instead of an external
// dependency: objects preserve insertion order, numbers round-trip IEEE
// doubles exactly (std::to_chars shortest form; integral values up to 2^53
// print as integers), and number I/O goes through <charconv>, which never
// consults the process locale.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aurv::support {

/// Parse/serialization failure; `what()` includes the byte offset.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& message) : std::runtime_error(message) {}
};

class Json {
 public:
  using Array = std::vector<Json>;
  /// Insertion-ordered: round-tripping a spec preserves the author's layout
  /// and makes summary output deterministic.
  using Object = std::vector<std::pair<std::string, Json>>;

  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Json() : kind_(Kind::Null) {}
  Json(std::nullptr_t) : kind_(Kind::Null) {}
  Json(bool value) : kind_(Kind::Bool), bool_(value) {}
  Json(double value) : kind_(Kind::Number), number_(value) {}
  /// Any other arithmetic type converts through double (exact up to 2^53,
  /// which as_uint/as_int enforce on the way back out).
  template <typename T, typename = std::enable_if_t<std::is_arithmetic_v<T> && !std::is_same_v<T, bool>>>
  Json(T value) : Json(static_cast<double>(value)) {}
  Json(const char* value) : kind_(Kind::String), string_(value) {}
  Json(std::string value) : kind_(Kind::String), string_(std::move(value)) {}
  Json(Array value) : kind_(Kind::Array), array_(std::move(value)) {}
  Json(Object value) : kind_(Kind::Object), object_(std::move(value)) {}

  [[nodiscard]] static Json object() { return Json(Object{}); }
  [[nodiscard]] static Json array() { return Json(Array{}); }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::Object; }

  /// Typed accessors; throw JsonError on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  /// `as_number()` checked to be integral and within the exact-double range.
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] std::int64_t as_int() const;

  /// Object lookup: nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Object lookup; throws JsonError naming the key when absent.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Object field with a default when the key is absent.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::uint64_t uint_or(std::string_view key, std::uint64_t fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key, std::string fallback) const;

  /// Appends (object) / pushes (array); `set` never overwrites silently —
  /// duplicate keys are a bug in the writer, checked.
  void set(std::string key, Json value);
  void push_back(Json value);

  /// Serialize. indent < 0 emits compact one-line JSON; indent >= 0 emits
  /// pretty-printed text with that many spaces per level and a trailing
  /// newline at top level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses exactly one JSON document; trailing non-whitespace is an error.
  [[nodiscard]] static Json parse(std::string_view text);

  /// File convenience wrappers (throw JsonError on I/O failure).
  [[nodiscard]] static Json load_file(const std::string& path);
  void save_file(const std::string& path, int indent = 2) const;

  friend bool operator==(const Json& a, const Json& b);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Formats a double the way Json::dump does: integers in the exact range as
/// integers, everything else in the shortest round-trip-exact to_chars
/// form. Exposed so JSONL sinks can emit numbers identically to the
/// summary artifact.
[[nodiscard]] std::string json_number_to_string(double value);

}  // namespace aurv::support
