// Strict numeric parsing for CLI front-ends.
//
// std::atof / std::atoi silently return 0 on garbage, which for this code
// base means "run a different experiment than the one the user typed".
// These helpers require the *entire* token to parse and throw
// std::invalid_argument naming the offending text otherwise.
#pragma once

#include <charconv>
#include <cmath>
#include <stdexcept>
#include <string>
#include <system_error>

namespace aurv::support {

namespace detail {
[[noreturn]] inline void parse_failed(const char* what, const std::string& text) {
  throw std::invalid_argument(std::string("invalid ") + what + ": \"" + text + "\"");
}
}  // namespace detail

/// std::from_chars-based: locale-independent, whole-token, and strict about
/// range — overflow, "inf"/"nan" spellings and hex floats are all rejected.
[[nodiscard]] inline double parse_double(const std::string& text, const char* what = "number") {
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || !std::isfinite(value))
    detail::parse_failed(what, text);
  return value;
}

[[nodiscard]] inline long long parse_int(const std::string& text, const char* what = "integer") {
  long long value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec != std::errc{} || ptr != end) detail::parse_failed(what, text);
  return value;
}

[[nodiscard]] inline unsigned long long parse_uint(const std::string& text,
                                                   const char* what = "non-negative integer") {
  unsigned long long value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  // from_chars on an unsigned type rejects a leading '-' and accepts the
  // full uint64 range (parse_int would cap at 2^63 - 1).
  const auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec != std::errc{} || ptr != end) detail::parse_failed(what, text);
  return value;
}

}  // namespace aurv::support
