// Structured trace spans: a process-wide sink emitting Chrome Trace Event
// Format JSON (loadable in Perfetto / chrome://tracing), opened by the
// drivers' `--trace-out PATH` flag.
//
// The same hard invariant as the rest of the telemetry layer: tracing
// NEVER touches a deterministic artifact, and it NEVER fails a run. The
// sink writes through the support::vfs() seam so fault-injection tests
// can script its disk dying, and on any persistent write failure it
// degrades to a counting no-op — `trace.dropped` ticks, one warning lands
// on stderr, the run continues untouched.
//
// Two emission paths, mirroring the telemetry counter discipline:
//   * serialized contexts (CLI phases, wave loop, checkpoint writes,
//     spill merges) construct a `Span` that writes straight to the sink;
//   * sharded work records spans into a shard-local `TraceBuffer` (plain
//     vector, no locks on the hot path), which the runner's *in-order*
//     completion hook folds into the sink — so the event order of a trace
//     file is shard-deterministic even though the timestamps are not.
//
// A `Span` with `announce = true` additionally pushes its name onto the
// telemetry ActivityStack for the heartbeat's "phase" field — that part
// works whether or not a trace file is open.
//
// Include-cycle note: this header includes only json.hpp + telemetry.hpp;
// all vfs interaction lives behind the TraceSink pimpl in trace.cpp. That
// lets vfs.hpp / jsonl.hpp / spill.hpp include *this* header to emit
// retry/merge events without a cycle.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/json.hpp"
#include "support/telemetry.hpp"

namespace aurv::support::trace {

class TraceBuffer;

/// The process-wide trace sink. `open` arms it; every API is no-throw
/// with respect to I/O failure (VfsError degrades the sink instead).
class TraceSink {
 public:
  [[nodiscard]] static TraceSink& instance();

  /// Opens `path` (truncating) and writes the stream header. Returns
  /// false — after a stderr warning — when the file cannot be opened;
  /// the run proceeds untraced, with `trace.dropped` counting the spans
  /// that would have been emitted.
  bool open(const std::string& path);

  /// Flushes buffered events, writes the JSON footer and closes the
  /// file. Idempotent; called by the drivers at end of run.
  void close();

  /// Whether events are currently being collected.
  [[nodiscard]] bool enabled() const noexcept;
  /// Whether a trace was requested but the writer has failed (events are
  /// being counted into `trace.dropped` instead of written).
  [[nodiscard]] bool degraded() const noexcept;

  /// Microseconds since open() — the `ts` clock of every event.
  [[nodiscard]] std::uint64_t now_us() const noexcept;

  /// Appends one serialized event line (thread-safe; buffered, flushed in
  /// ~256 KiB batches). Dropped (and counted) when the sink is not open.
  void emit(std::string line);

  /// Folds a shard-local buffer's events into the sink, in the buffer's
  /// order, and empties the buffer. Call from the in-order completion
  /// hook so event order is shard-deterministic.
  void merge(TraceBuffer& buffer);

  /// The most recent `last_n` recorded event lines (oldest first), from a
  /// bounded in-memory ring the sink keeps alongside the file — the
  /// statusd `/trace?last=N` source. Empty when no trace is collecting;
  /// the ring is cleared by open(). Thread-safe.
  [[nodiscard]] std::vector<std::string> recent(std::size_t last_n) const;

 private:
  TraceSink();
  struct Impl;
  Impl* impl_;  ///< leaked with the singleton, like the metric registry
};

/// Shorthand for TraceSink::instance().
[[nodiscard]] inline TraceSink& sink() { return TraceSink::instance(); }

/// Shard-local event staging: spans append serialized lines here with no
/// locking; the runner merges buffers in shard order. `lane` becomes the
/// events' `tid`, giving each shard its own track in the viewer.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::uint32_t lane = 0) : lane_(lane) {}

  [[nodiscard]] std::uint32_t lane() const noexcept { return lane_; }
  [[nodiscard]] bool empty() const noexcept { return lines_.empty(); }
  void add(std::string line) { lines_.push_back(std::move(line)); }
  [[nodiscard]] std::vector<std::string> take() { return std::move(lines_); }

 private:
  std::uint32_t lane_;
  std::vector<std::string> lines_;
};

/// One serialized complete event ("ph":"X"): `ts`/`dur` in microseconds,
/// `pid` 1, `tid` = lane. `args` optional.
[[nodiscard]] std::string complete_event(std::string_view name, std::string_view cat,
                                         std::uint64_t ts_us, std::uint64_t dur_us,
                                         std::uint32_t lane, const Json* args);

/// Emits (or buffers) a zero-duration instant event ("ph":"i"), e.g. a
/// vfs retry firing inside a span. No-op when the sink is not collecting.
void instant(std::string_view name, std::string_view cat, TraceBuffer* buffer = nullptr,
             std::uint32_t lane = 0);

/// RAII trace span: measures from construction to destruction and emits
/// one complete event — to `options.buffer` when given (shard-local
/// path), else straight to the sink. With `announce`, also pushes `name`
/// onto the telemetry ActivityStack for the heartbeat's "phase" field
/// (independent of whether a trace file is open). Never throws.
class Span {
 public:
  struct Options {
    bool announce = false;        ///< surface in heartbeat "phase"
    TraceBuffer* buffer = nullptr;  ///< stage shard-locally instead of emitting
    std::uint32_t lane = 0;       ///< tid when buffer == nullptr
  };

  Span(std::string_view name, std::string_view cat) : Span(name, cat, Options{}) {}
  Span(std::string_view name, std::string_view cat, Options options);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches an args object to the completed event (kept only when the
  /// span is actually recording).
  void set_args(Json args) {
    if (armed_) args_ = std::move(args);
  }

  [[nodiscard]] bool armed() const noexcept { return armed_; }

 private:
  std::string name_;
  std::string cat_;
  Options options_;
  std::optional<Json> args_;
  std::uint64_t activity_token_ = 0;
  std::uint64_t start_us_ = 0;
  bool armed_ = false;
};

}  // namespace aurv::support::trace
