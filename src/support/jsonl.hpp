// Checkpoint plumbing shared by the campaign runner and the search
// subsystem: an append-mode JSONL sink with checkpoint-resume truncation,
// and atomic JSON checkpoint writes.
//
// The contract that makes streamed records byte-identical across
// checkpoint/resume cycles: a checkpoint stores the byte offset of the
// stream's durable prefix; on resume the sink truncates the file back to
// that offset (dropping records written after the checkpoint and lost to
// the interruption) and appends from there. A file *shorter* than the
// recorded offset means stream and checkpoint are out of sync, which is
// refused instead of silently padding the hole.
//
// All mutating I/O goes through the support::vfs() seam (see vfs.hpp),
// with a bounded deterministic retry for transient failures: a torn
// append is rolled back to the sink's durable byte count before the
// retry, so the rewrite can never duplicate a partial record.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>

#include "support/json.hpp"
#include "support/vfs.hpp"

namespace aurv::support {

/// A checkpoint that cannot be resumed: missing, unreadable/truncated, or
/// written by a different run ("foreign"). Carries the path and a
/// one-line reason so drivers can exit with a structured diagnostic
/// instead of a bare parse error. Derived from std::invalid_argument: it
/// *is* an option/checkpoint mismatch, just a self-describing one.
class CheckpointError : public std::invalid_argument {
 public:
  CheckpointError(std::string path, std::string reason)
      : std::invalid_argument("checkpoint " + path + ": " + reason),
        path_(std::move(path)),
        reason_(std::move(reason)) {}

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::string& reason() const noexcept { return reason_; }

  /// One-line machine-parseable form for CLI stderr:
  ///   {"error":"checkpoint-resume","path":"...","reason":"..."}
  [[nodiscard]] std::string structured() const {
    Json json = Json::object();
    json.set("error", Json("checkpoint-resume"));
    json.set("path", Json(path_));
    json.set("reason", Json(reason_));
    return json.dump();
  }

 private:
  std::string path_;
  std::string reason_;
};

/// Write-then-rename so an interrupted write can never leave a truncated
/// checkpoint behind: the previous checkpoint survives until the new one is
/// fully on disk. Transient write/rename failures are retried with
/// deterministic backoff; persistent ones propagate as VfsError.
inline void save_json_atomically(const std::string& path, const Json& json,
                                 const RetryPolicy& retry = {}) {
  const std::string tmp = path + ".tmp";
  const std::string text = json.dump(2);
  retry_io(retry, [&] {
    // Reopen-truncate on every attempt: a torn first try leaves no prefix
    // for the retry to double-write.
    const std::unique_ptr<VfsFile> file = vfs().open_write(tmp, Vfs::OpenMode::Truncate);
    file->write(text);
    file->close();
  });
  retry_io(retry, [&] { vfs().rename(tmp, path); });
}

/// Canonical rendering of a spec fingerprint in checkpoint files: 16
/// zero-padded lowercase hex digits. Campaign and search checkpoints share
/// this format, so keep them on one helper.
inline std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%016" PRIx64, fingerprint);
  return buffer;
}

class JsonlSink {
 public:
  /// Opens `path` for writing ("" = disabled sink, every call a no-op).
  /// `resume_bytes` > 0 truncates to that offset and appends; 0 starts the
  /// stream over.
  explicit JsonlSink(const std::string& path, std::uint64_t resume_bytes = 0,
                     RetryPolicy retry = {})
      : path_(path), retry_(retry) {
    if (path.empty()) return;
    if (resume_bytes > 0) {
      std::uint64_t existing = 0;
      bool readable = vfs().exists(path);
      if (readable) {
        try {
          existing = vfs().file_size(path);
        } catch (const VfsError&) {
          readable = false;
        }
      }
      if (!readable || existing < resume_bytes)
        throw std::invalid_argument(
            "jsonl: " + path + " is shorter than the checkpoint's recorded offset (" +
            std::to_string(resume_bytes) +
            " bytes); the stream does not match this checkpoint — delete both to start over");
      try {
        retry_io(retry_, [&] { vfs().resize_file(path, resume_bytes); });
      } catch (const VfsError& error) {
        throw std::invalid_argument("jsonl: cannot truncate " + path +
                                    " for resume: " + error.reason());
      }
      file_ = retry_io(retry_, [&] { return vfs().open_write(path, Vfs::OpenMode::Append); });
    } else {
      file_ = retry_io(retry_, [&] { return vfs().open_write(path, Vfs::OpenMode::Truncate); });
    }
    bytes_ = resume_bytes;
  }

  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  void append(const std::string& text) {
    if (file_ == nullptr) return;
    for (int attempt = 1;; ++attempt) {
      try {
        file_->write(text);
        bytes_ += text.size();
        return;
      } catch (const VfsError& error) {
        // Roll back whatever torn prefix reached the file so a retry (or
        // a later resume against the recorded offset) never sees it.
        try {
          file_->truncate_to(bytes_);
        } catch (const VfsError&) {
          // The rewind itself failed: the durable-prefix contract now
          // rests on the resume-side truncation, which uses the recorded
          // offset and is therefore still sound.
        }
        if (!error.transient() || attempt >= retry_.attempts) throw;
        const std::uint64_t backoff = retry_.backoff_ms << (attempt - 1);
        telemetry::registry().counter("vfs.retries").add();
        telemetry::registry().counter("vfs.backoff_ms").add(backoff);
        trace::instant("vfs.retry", "vfs");
        vfs().sleep_for_ms(backoff);
      }
    }
  }

  void flush() {
    if (file_ == nullptr) return;
    retry_io(retry_, [&] { file_->flush(); });
  }

  /// Durable-prefix offset to record in checkpoints.
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

 private:
  std::string path_;
  RetryPolicy retry_;
  std::unique_ptr<VfsFile> file_;  ///< closed silently by the destructor
  std::uint64_t bytes_ = 0;
};

/// A fail-soft JsonlSink for observability streams that are deterministic
/// artifacts *when healthy* but must never fail the run (the search
/// provenance stream): a persistent I/O failure — at open or on any
/// append — degrades the sink to a counting no-op. Each record that
/// cannot be written ticks `<counter_prefix>.dropped`, and one warning
/// lands on stderr. Resume-offset mismatches (the caller pointed a
/// checkpoint at the wrong file) still throw: those are configuration
/// errors, not disk weather.
class SoftJsonlSink {
 public:
  SoftJsonlSink() = default;

  SoftJsonlSink(const std::string& path, std::string counter_prefix,
                std::uint64_t resume_bytes = 0, RetryPolicy retry = {})
      : counter_prefix_(std::move(counter_prefix)), path_hint_(path) {
    if (path.empty()) return;
    try {
      sink_ = std::make_unique<JsonlSink>(path, resume_bytes, retry);
    } catch (const VfsError& error) {
      degrade(path, error.reason());
    }
  }

  /// Whether records are currently reaching the file.
  [[nodiscard]] bool healthy() const noexcept { return sink_ != nullptr; }
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }

  void append(const std::string& text) {
    if (degraded_) {
      telemetry::registry().counter(counter_prefix_ + ".dropped").add();
      return;
    }
    if (sink_ == nullptr) return;
    try {
      sink_->append(text);
    } catch (const VfsError& error) {
      // JsonlSink already rolled the file back to its durable prefix.
      bytes_at_degrade_ = sink_->bytes();
      degrade(path_hint_.empty() ? "<provenance>" : path_hint_, error.reason());
      telemetry::registry().counter(counter_prefix_ + ".dropped").add();
    }
  }

  void flush() {
    if (sink_ == nullptr) return;
    try {
      sink_->flush();
    } catch (const VfsError& error) {
      bytes_at_degrade_ = sink_->bytes();
      degrade(path_hint_.empty() ? "<provenance>" : path_hint_, error.reason());
    }
  }

  /// Durable-prefix offset for checkpoints (frozen at degrade time).
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return sink_ != nullptr ? sink_->bytes() : bytes_at_degrade_;
  }

 private:
  void degrade(const std::string& path, const std::string& reason) {
    sink_.reset();
    degraded_ = true;
    std::fprintf(stderr, "aurv: %s: %s (%s); stream disabled, records dropped\n",
                 counter_prefix_.c_str(), path.c_str(), reason.c_str());
  }

  std::string counter_prefix_ = "jsonl";
  std::string path_hint_;
  std::unique_ptr<JsonlSink> sink_;
  std::uint64_t bytes_at_degrade_ = 0;
  bool degraded_ = false;
};

}  // namespace aurv::support
