// Checkpoint plumbing shared by the campaign runner and the search
// subsystem: an append-mode JSONL sink with checkpoint-resume truncation,
// and atomic JSON checkpoint writes.
//
// The contract that makes streamed records byte-identical across
// checkpoint/resume cycles: a checkpoint stores the byte offset of the
// stream's durable prefix; on resume the sink truncates the file back to
// that offset (dropping records written after the checkpoint and lost to
// the interruption) and appends from there. A file *shorter* than the
// recorded offset means stream and checkpoint are out of sync, which is
// refused instead of silently padding the hole.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "support/json.hpp"

namespace aurv::support {

/// Write-then-rename so an interrupted write can never leave a truncated
/// checkpoint behind: the previous checkpoint survives until the new one is
/// fully on disk.
inline void save_json_atomically(const std::string& path, const Json& json) {
  const std::string tmp = path + ".tmp";
  json.save_file(tmp);
  std::filesystem::rename(tmp, path);
}

/// Canonical rendering of a spec fingerprint in checkpoint files: 16
/// zero-padded lowercase hex digits. Campaign and search checkpoints share
/// this format, so keep them on one helper.
inline std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%016" PRIx64, fingerprint);
  return buffer;
}

class JsonlSink {
 public:
  /// Opens `path` for writing ("" = disabled sink, every call a no-op).
  /// `resume_bytes` > 0 truncates to that offset and appends; 0 starts the
  /// stream over.
  explicit JsonlSink(const std::string& path, std::uint64_t resume_bytes = 0) {
    if (path.empty()) return;
    if (resume_bytes > 0) {
      std::error_code ec;
      const std::uintmax_t existing = std::filesystem::file_size(path, ec);
      if (ec || existing < resume_bytes)
        throw std::invalid_argument(
            "jsonl: " + path + " is shorter than the checkpoint's recorded offset (" +
            std::to_string(resume_bytes) +
            " bytes); the stream does not match this checkpoint — delete both to start over");
      std::filesystem::resize_file(path, resume_bytes, ec);
      if (ec)
        throw std::invalid_argument("jsonl: cannot truncate " + path + " for resume: " +
                                    ec.message());
      file_ = std::fopen(path.c_str(), "ab");
    } else {
      file_ = std::fopen(path.c_str(), "wb");
    }
    if (file_ == nullptr) throw std::invalid_argument("jsonl: cannot open " + path);
    bytes_ = resume_bytes;
  }
  ~JsonlSink() {
    if (file_ != nullptr) std::fclose(file_);
  }
  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  void append(const std::string& text) {
    if (file_ == nullptr) return;
    if (std::fwrite(text.data(), 1, text.size(), file_) != text.size())
      throw std::runtime_error("jsonl: write failed");
    bytes_ += text.size();
  }
  void flush() {
    if (file_ != nullptr) std::fflush(file_);
  }
  /// Durable-prefix offset to record in checkpoints.
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t bytes_ = 0;
};

}  // namespace aurv::support
