// Run telemetry: process-wide named counters, gauges, log2 histograms and
// scoped wall-clock timers, a clock-driven heartbeat reporter, and a
// versioned end-of-run metrics snapshot.
//
// The hard invariant the whole layer is built around: telemetry NEVER
// touches a deterministic artifact. Certificates, JSONL streams,
// checkpoints and summaries are byte-identical with telemetry on, off, or
// at any heartbeat interval; wall-clock values may only ever appear in
// the metrics sink (`metrics_snapshot`) and on stderr (the heartbeat).
// tests/telemetry_determinism_test.cpp enforces exactly that.
//
// Determinism of the numbers themselves:
//   * counters/gauges/histograms hold integers updated with relaxed
//     atomics — integer sums commute, so end-of-run totals are identical
//     at any thread count;
//   * per-shard work is accumulated in a thread-local ShardAccumulator
//     (plain integers, no atomics on the hot path) and merged into the
//     registry by the runner's *in-order* completion hook — the same
//     shard-ordered merge discipline the aggregates use, so even the
//     intermediate counter sequence is deterministic;
//   * timers are wall-clock and therefore the one deliberately
//     nondeterministic family; they are confined to the metrics sink.
//
// Metric objects are registered on first use and never deallocated, so a
// `static auto& c = telemetry::registry().counter("x")` at a call site
// pays the registry lock exactly once. `Registry::reset()` zeroes values
// in place (references stay valid) — for tests and for drivers that run
// several specs in one process.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "support/json.hpp"

namespace aurv::support::telemetry {

/// Monotonic event count. Totals are thread-count-invariant (relaxed
/// integer adds commute).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (frontier depth, jobs total, degradation state).
/// Writers must be serialized (e.g. the in-order completion hook) for the
/// sequence of values to be deterministic; the final value then is too.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if above the current value (high-water marks).
  void set_max(std::int64_t v) noexcept {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::int64_t> value_{0};
};

/// Power-of-two bucketed distribution of nonnegative integer samples
/// (event counts, byte sizes). Bucket k holds samples in [2^(k-1), 2^k)
/// — i.e. bucket index = std::bit_width(sample) — with bucket 0 reserved
/// for zero. Integer counts: totals are thread-count-invariant.
class Log2Histogram {
 public:
  void record(std::uint64_t sample) noexcept {
    buckets_[std::bit_width(sample)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(int index) const noexcept {
    return buckets_[static_cast<std::size_t>(index)].load(std::memory_order_relaxed);
  }

  /// {"count":n,"sum":s,"buckets":{"<lower bound>":count,...}} — only
  /// nonzero buckets, keyed by the bucket's lower bound ("0", "1", "2",
  /// "4", "8", ...), in increasing order.
  [[nodiscard]] Json to_json() const;

 private:
  friend class Registry;
  std::array<std::atomic<std::uint64_t>, 65> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Accumulated wall-clock time. The one nondeterministic metric family:
/// values go to the metrics sink and stderr only, never into artifacts.
class Timer {
 public:
  void add_ns(std::uint64_t ns) noexcept {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// RAII wall-clock span: adds the elapsed time to `timer` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer) noexcept
      : timer_(&timer), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_->add_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Thread-local (well, shard-local) counter deltas: plain integers on the
/// hot path, folded into the registry by the runner's in-order completion
/// hook — so the merge sequence, like every aggregate merge, happens in
/// deterministic shard order.
class ShardAccumulator {
 public:
  void add(std::string_view name, std::uint64_t n = 1) {
    for (auto& [key, value] : entries_) {
      if (key == name) {
        value += n;
        return;
      }
    }
    entries_.emplace_back(std::string(name), n);
  }
  [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>& entries()
      const noexcept {
    return entries_;
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

 private:
  std::vector<std::pair<std::string, std::uint64_t>> entries_;  ///< first-touch order
};

/// The process-wide metric registry. Lookup registers on first use;
/// objects live for the process lifetime, so cached references never
/// dangle. Snapshots render every family with name-sorted keys.
///
/// Snapshot thread-safety: `read_snapshot()` is the one snapshot
/// implementation (the JSON `snapshot()` and `counter_values()` are thin
/// renderings of it) and is safe to call concurrently from any number of
/// threads — the heartbeat thread and every statusd scrape share it.
/// After the first call following a registration, readers take no lock
/// at all: they load a cached immutable name→object index (rebuilt under
/// the mutex only when the registration generation changed, published
/// via an atomic shared_ptr) and read each metric with relaxed atomic
/// loads. A snapshot is therefore NOT a cross-metric atomic cut — values
/// racing with concurrent updates may mix "before" and "after" per
/// metric — but every value is itself a coherent atomic read, and a
/// quiescent registry snapshots exactly.
class Registry {
 public:
  /// A point-in-time value capture of every registered metric, every
  /// family name-sorted (the index is built from the name-ordered maps).
  /// Plain values, no locks, no references into the registry: safe to
  /// ship across threads or render at leisure.
  struct Snapshot {
    struct HistogramValue {
      std::uint64_t count = 0;
      std::uint64_t sum = 0;
      /// Nonzero buckets only, as (bit_width bucket index, count),
      /// index-ascending. Bucket k >= 1 holds samples in [2^(k-1), 2^k);
      /// bucket 0 holds only the sample 0.
      std::vector<std::pair<int, std::uint64_t>> buckets;
    };
    struct TimerValue {
      std::uint64_t total_ns = 0;
      std::uint64_t count = 0;
    };
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, HistogramValue>> histograms;
    std::vector<std::pair<std::string, TimerValue>> timers;
  };

  [[nodiscard]] static Registry& instance();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Log2Histogram& histogram(std::string_view name);
  [[nodiscard]] Timer& timer(std::string_view name);

  /// Folds a shard's local deltas into the registry counters, in the
  /// accumulator's insertion order. Callers invoke this from an in-order
  /// completion hook, which is what makes the merge sequence
  /// deterministic; the call itself also counts into "telemetry.merges".
  void merge(const ShardAccumulator& shard);

  /// Captures every metric's current value. Lock-free for readers once
  /// the cached index is warm (see the class comment); this is the one
  /// snapshot implementation everything else renders from.
  [[nodiscard]] Snapshot read_snapshot() const;

  /// {"counters":{...},"gauges":{...},"histograms":{...},"timers":{...}}
  /// — every family name-sorted; timers as {"ns":...,"count":...}.
  /// Rendered from read_snapshot().
  [[nodiscard]] Json snapshot() const;

  /// Counter values only (the heartbeat's rate baseline). Rendered from
  /// read_snapshot().
  [[nodiscard]] std::map<std::string, std::uint64_t> counter_values() const;

  /// Zeroes every value in place; registered objects (and references to
  /// them) survive. For tests and multi-spec drivers.
  void reset();

 private:
  /// Immutable name→object view of the registry, shared by concurrent
  /// readers. Pointers stay valid forever (metric objects are never
  /// deallocated); the index itself is replaced, never mutated, when a
  /// registration bumps `generation_`.
  struct Index {
    std::uint64_t generation = 0;
    std::vector<std::pair<std::string, const Counter*>> counters;
    std::vector<std::pair<std::string, const Gauge*>> gauges;
    std::vector<std::pair<std::string, const Log2Histogram*>> histograms;
    std::vector<std::pair<std::string, const Timer*>> timers;
  };

  Registry() = default;

  [[nodiscard]] std::shared_ptr<const Index> current_index() const;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Log2Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
  /// Bumped (under mutex_) by every first-use registration; readers
  /// compare it against the cached index's generation without locking.
  std::atomic<std::uint64_t> generation_{1};
  mutable std::atomic<std::shared_ptr<const Index>> index_;
};

/// Shorthand for Registry::instance().
[[nodiscard]] inline Registry& registry() { return Registry::instance(); }

// ------------------------------------------------------------------------
// Activity stack (what is the run doing *right now*?)
// ------------------------------------------------------------------------

/// Process-wide stack of named activities (phases, waves, checkpoint
/// writes, spill merges). The heartbeat stamps the innermost name into
/// every beat line, so a long checkpoint or merge reads as itself instead
/// of a stall. Entries are token-addressed, not strictly LIFO: announced
/// spans may close out of order across threads, and pop(token) removes
/// the matching entry wherever it sits.
class ActivityStack {
 public:
  [[nodiscard]] static ActivityStack& instance();

  /// Pushes `name`; returns a token for pop().
  std::uint64_t push(std::string name);
  void pop(std::uint64_t token);
  /// The innermost active name ("" when idle).
  [[nodiscard]] std::string current() const;

 private:
  ActivityStack() = default;

  mutable std::mutex mutex_;
  std::uint64_t next_token_ = 1;
  std::vector<std::pair<std::uint64_t, std::string>> stack_;
};

/// Shorthand for ActivityStack::instance().
[[nodiscard]] inline ActivityStack& activity() { return ActivityStack::instance(); }

/// RAII activity entry: pushes on construction, pops on destruction.
class ScopedActivity {
 public:
  explicit ScopedActivity(std::string name)
      : token_(ActivityStack::instance().push(std::move(name))) {}
  ~ScopedActivity() { ActivityStack::instance().pop(token_); }
  ScopedActivity(const ScopedActivity&) = delete;
  ScopedActivity& operator=(const ScopedActivity&) = delete;

 private:
  std::uint64_t token_;
};

// ------------------------------------------------------------------------
// Heartbeat
// ------------------------------------------------------------------------

struct HeartbeatConfig {
  /// Seconds between beats; <= 0 disables the reporter entirely (the
  /// constructor then starts no thread).
  double interval_s = 10.0;
  /// One-line JSON per beat lands here (default stderr). Never a
  /// deterministic artifact stream.
  std::FILE* out = nullptr;
  /// Optional extra fields merged into every beat line (e.g. the spec
  /// name). Called on the heartbeat thread; must be thread-safe.
  std::function<Json()> extra;
};

/// Clock-driven progress reporter: a background thread that every
/// `interval_s` seconds writes one line of compact JSON to `out`:
///
///   {"heartbeat":k,"elapsed_s":...,"phase":"<innermost activity>",
///    "counters":{...},"gauges":{...},
///    "rates":{"<counter>":per_second_since_last_beat,...}}
///
/// Purely observational: it reads the registry's atomics and writes to a
/// FILE*, so it cannot perturb any artifact byte. Destruction (or stop())
/// joins the thread; beat_now() emits one synchronous line (the final
/// beat, and the unit tests' hook).
class Heartbeat {
 public:
  explicit Heartbeat(HeartbeatConfig config);
  ~Heartbeat();
  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  void stop();
  void beat_now();

  [[nodiscard]] std::uint64_t beats() const noexcept {
    return beats_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void emit();

  HeartbeatConfig config_;
  std::chrono::steady_clock::time_point start_;
  std::map<std::string, std::uint64_t> last_counters_;  ///< rate baseline
  std::chrono::steady_clock::time_point last_beat_;
  std::atomic<std::uint64_t> beats_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;  ///< last member: joins before the rest tears down
};

// ------------------------------------------------------------------------
// Metrics snapshot
// ------------------------------------------------------------------------

/// What identifies the run inside a metrics snapshot. All fields are
/// stamped by the driver; `extra` is an open object for driver-specific
/// shape (shard_size, wave counts, spill config, ...).
struct RunManifest {
  std::string kind;         ///< "campaign" | "gather-census" | "search" | ...
  std::string spec_path;    ///< the spec file the run executed
  std::string fingerprint;  ///< spec fingerprint, 16 hex digits ("" if n/a)
  std::uint64_t threads = 0;  ///< worker cap the invocation asked for
  Json extra = Json::object();
};

/// Compiler / standard / build-mode identification, for snapshot triage.
[[nodiscard]] Json build_info();

/// The versioned end-of-run snapshot (`schema` 1, `kind`
/// "metrics-snapshot"): run manifest + build info + wall_ms + the full
/// registry snapshot. THE one place wall-clock values are allowed besides
/// stderr. `wall_ms` is measured from the registry-process start of this
/// manifest's construction — pass the driver's own span for honesty.
[[nodiscard]] Json metrics_snapshot(const RunManifest& manifest, double wall_ms);

/// Writes `metrics_snapshot(...)` to `path` (pretty-printed, trailing
/// newline). Deliberately NOT routed through the support::vfs() seam: the
/// metrics sink is diagnostics, not a durable artifact, so it must not
/// enlarge the fault-injection site enumeration the torture matrix
/// replays against.
void write_metrics(const std::string& path, const RunManifest& manifest, double wall_ms);

}  // namespace aurv::support::telemetry
