#include "support/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace aurv::support {

void run_sharded(std::size_t shard_count, const std::function<void(std::size_t)>& body,
                 const std::function<void(std::size_t)>& complete,
                 const ShardedRunOptions& options) {
  if (shard_count == 0) return;
  std::size_t threads = options.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads = std::min(threads, shard_count);
  std::size_t window = options.max_in_flight;
  if (window != 0) window = std::max(window, threads);

  std::atomic<std::size_t> next{0};
  std::atomic<bool> aborted{false};
  // The mutex guards everything below; `complete` runs under it, which both
  // serializes the hook and keeps the in-order drain simple. Workers only
  // touch the lock once per *shard*, so contention is amortized by the
  // chunk size, not per job.
  std::mutex mutex;
  std::condition_variable drained;
  enum : char { kPending = 0, kDone = 1, kFailed = 2 };
  std::vector<char> status(shard_count, kPending);
  std::size_t next_complete = 0;
  std::size_t error_shard = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  const auto record_error = [&](std::size_t shard, std::exception_ptr e) {
    // Lowest shard wins; caller holds the mutex.
    if (shard < error_shard) {
      error_shard = shard;
      error = std::move(e);
    }
    aborted.store(true, std::memory_order_relaxed);
  };

  const auto worker = [&] {
    while (true) {
      // After a failure, stop claiming: everything past the break point
      // would be computed, stashed by the consumer, and then thrown away.
      // In-flight shards still finish, and because shards are claimed in
      // index order every shard below a failed one is already claimed — so
      // skipping the tail cannot change which error is the lowest-index
      // one, at any thread count.
      if (aborted.load(std::memory_order_relaxed)) return;
      const std::size_t shard = next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= shard_count) return;
      if (window != 0) {
        // Backpressure: don't run ahead of the drain by more than the
        // window. Deadlock-free because shards are claimed in order, so the
        // drain's head shard is always already claimed and executing (never
        // waiting here — its index is below next_complete + window).
        std::unique_lock<std::mutex> lock(mutex);
        drained.wait(lock, [&] {
          return shard < next_complete + window || next_complete >= shard_count;
        });
      }
      std::exception_ptr body_error;
      try {
        body(shard);
      } catch (...) {
        body_error = std::current_exception();
      }
      const std::scoped_lock lock(mutex);
      status[shard] = body_error ? kFailed : kDone;  // before the move below
      if (body_error) record_error(shard, std::move(body_error));
      while (next_complete < shard_count && status[next_complete] != kPending) {
        if (status[next_complete] == kFailed) {
          // The in-order stream is broken: consumers must never observe a
          // prefix with a hole in it, so no further shard completes (the
          // remaining bodies still run; the error is rethrown after join).
          next_complete = shard_count;
          break;
        }
        const std::size_t ready = next_complete++;
        if (complete) {
          try {
            complete(ready);
          } catch (...) {
            record_error(ready, std::current_exception());
            next_complete = shard_count;
          }
        }
      }
      if (window != 0) drained.notify_all();
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t k = 0; k < threads; ++k) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace aurv::support
