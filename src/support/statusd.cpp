#include "support/statusd.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <thread>

#include "support/trace.hpp"

namespace aurv::support::statusd {

namespace {

// ----------------------------------------------------------------------
// Prometheus text exposition
// ----------------------------------------------------------------------

/// "aurv_" + name with every '.' and '-' flattened to '_' (the legal
/// Prometheus metric-name alphabet is [a-zA-Z0-9_:]).
std::string prom_name(std::string_view name) {
  std::string out = "aurv_";
  for (const char c : name) out += (c == '.' || c == '-') ? '_' : c;
  return out;
}

/// Label-value escaping per the exposition format: backslash, quote,
/// newline.
std::string escape_label(std::string_view value) {
  std::string out;
  for (const char c : value) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '"')
      out += "\\\"";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

/// Seconds with fixed 9-digit precision — the one float format the C++
/// and Python renderers must agree on byte-for-byte.
std::string seconds_text(double seconds) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9f", seconds);
  return buffer;
}

/// Inclusive upper bound of bit_width bucket `index` as a decimal string:
/// bucket 0 holds only 0, bucket k >= 1 holds [2^(k-1), 2^k) i.e. up to
/// 2^k - 1.
std::string bucket_le(int index) {
  if (index == 0) return "0";
  if (index >= 64) return "18446744073709551615";
  return std::to_string((std::uint64_t{1} << index) - 1);
}

// ----------------------------------------------------------------------
// HTTP plumbing
// ----------------------------------------------------------------------

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

Response json_response(int status, Json body) {
  Response response;
  response.status = status;
  response.content_type = "application/json";
  response.body = body.dump(2) + "\n";
  return response;
}

Response error_response(int status, std::string_view message) {
  Json body = Json::object();
  body.set("error", Json(std::string(message)));
  return json_response(status, std::move(body));
}

/// Parses the decimal value of `key` out of `query` ("a=1&b=2"). Returns
/// `fallback` when absent, nullopt on a malformed value.
std::optional<std::uint64_t> query_uint(std::string_view query, std::string_view key,
                                        std::uint64_t fallback) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view pair = query.substr(pos, end - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      const std::string_view value = pair.substr(eq + 1);
      if (value.empty() || value.size() > 10) return std::nullopt;
      std::uint64_t parsed = 0;
      for (const char c : value) {
        if (c < '0' || c > '9') return std::nullopt;
        parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
      }
      return parsed;
    }
    pos = end + 1;
  }
  return fallback;
}

}  // namespace

// ----------------------------------------------------------------------
// Progress providers
// ----------------------------------------------------------------------

ProgressRegistry& ProgressRegistry::instance() {
  static ProgressRegistry* the_registry = new ProgressRegistry();  // leaked like
                                                                   // the metric registry
  return *the_registry;
}

std::uint64_t ProgressRegistry::add(std::string name, std::function<Json()> provider) {
  std::lock_guard lock(mutex_);
  const std::uint64_t token = next_token_++;
  entries_.push_back(Entry{token, std::move(name), std::move(provider)});
  return token;
}

void ProgressRegistry::remove(std::uint64_t token) {
  // Taking the mutex is what blocks until an in-flight collect() — which
  // invokes providers under the same mutex — has finished.
  std::lock_guard lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->token == token) {
      entries_.erase(it);
      return;
    }
  }
}

Json ProgressRegistry::collect() const {
  std::lock_guard lock(mutex_);
  Json out = Json::object();
  for (const Entry& entry : entries_) {
    try {
      out.set(entry.name, entry.provider());
    } catch (const std::exception& error) {
      Json failed = Json::object();
      failed.set("error", Json(std::string(error.what())));
      out.set(entry.name, std::move(failed));
    } catch (...) {
      Json failed = Json::object();
      failed.set("error", Json("provider threw"));
      out.set(entry.name, std::move(failed));
    }
  }
  return out;
}

// ----------------------------------------------------------------------
// Renderers
// ----------------------------------------------------------------------

std::string render_prometheus(const telemetry::Registry::Snapshot& snapshot,
                              const RunInfo& run, double uptime_s) {
  std::string out;
  out.reserve(4096);

  out += "# TYPE aurv_run_info gauge\n";
  out += "aurv_run_info{kind=\"" + escape_label(run.kind) + "\",spec=\"" +
         escape_label(run.spec) + "\",fingerprint=\"" + escape_label(run.fingerprint) +
         "\",threads=\"" + std::to_string(run.threads) + "\"} 1\n";
  out += "# TYPE aurv_uptime_seconds gauge\n";
  out += "aurv_uptime_seconds " + seconds_text(uptime_s) + "\n";

  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = prom_name(name) + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = prom_name(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.histograms) {
    const std::string metric = prom_name(name);
    out += "# TYPE " + metric + " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [index, count] : value.buckets) {
      cumulative += count;
      out += metric + "_bucket{le=\"" + bucket_le(index) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(value.count) + "\n";
    out += metric + "_sum " + std::to_string(value.sum) + "\n";
    out += metric + "_count " + std::to_string(value.count) + "\n";
  }
  for (const auto& [name, value] : snapshot.timers) {
    const std::string seconds = prom_name(name) + "_seconds_total";
    out += "# TYPE " + seconds + " counter\n";
    out += seconds + " " + seconds_text(static_cast<double>(value.total_ns) / 1e9) + "\n";
    const std::string spans = prom_name(name) + "_spans_total";
    out += "# TYPE " + spans + " counter\n";
    out += spans + " " + std::to_string(value.count) + "\n";
  }
  return out;
}

Json degradation_detail() {
  Json out = Json::array();
  const telemetry::Registry::Snapshot snapshot = telemetry::registry().read_snapshot();
  for (const auto& [name, value] : snapshot.gauges) {
    if (value != 0 && name.size() > 9 && name.ends_with(".degraded"))
      out.push_back(Json(name));
  }
  if (trace::sink().degraded()) out.push_back(Json("trace"));
  return out;
}

Json render_status(const RunInfo& run, double uptime_s) {
  Json out = Json::object();
  out.set("kind", Json(run.kind));
  out.set("spec", Json(run.spec));
  out.set("fingerprint", Json(run.fingerprint));
  out.set("threads", Json(run.threads));
  out.set("elapsed_s", Json(uptime_s));
  out.set("phase", Json(telemetry::activity().current()));
  out.set("progress", ProgressRegistry::instance().collect());

  const telemetry::Registry::Snapshot snapshot = telemetry::registry().read_snapshot();
  Json spill = Json::object();
  for (const auto& [name, value] : snapshot.counters) {
    if (name.starts_with("spill.")) spill.set(name, Json(value));
  }
  out.set("spill", std::move(spill));
  out.set("degraded", degradation_detail());
  return out;
}

Response handle_request(std::string_view method, std::string_view target,
                        const RunInfo& run, double uptime_s) {
  telemetry::registry().counter("statusd.requests").add();
  if (method != "GET") return error_response(405, "method not allowed (GET only)");

  std::string_view path = target;
  std::string_view query;
  if (const std::size_t mark = target.find('?'); mark != std::string_view::npos) {
    path = target.substr(0, mark);
    query = target.substr(mark + 1);
  }

  if (path == "/metrics") {
    Response response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body =
        render_prometheus(telemetry::registry().read_snapshot(), run, uptime_s);
    return response;
  }
  if (path == "/status") return json_response(200, render_status(run, uptime_s));
  if (path == "/healthz") {
    Json detail = degradation_detail();
    if (detail.as_array().empty()) {
      Response response;
      response.body = "ok\n";
      return response;
    }
    Json body = Json::object();
    body.set("degraded", std::move(detail));
    return json_response(503, std::move(body));
  }
  if (path == "/trace") {
    if (!trace::sink().enabled())
      return error_response(404, "tracing not active (run with --trace-out)");
    const std::optional<std::uint64_t> last = query_uint(query, "last", 32);
    if (!last) return error_response(400, "malformed last=N");
    Json spans = Json::array();
    for (const std::string& line : trace::sink().recent(*last)) {
      try {
        spans.push_back(Json::parse(line));
      } catch (const JsonError&) {
        // A ring line is always a complete serialized event; skip defensively.
      }
    }
    Json body = Json::object();
    body.set("spans", std::move(spans));
    return json_response(200, std::move(body));
  }
  Json body = Json::object();
  body.set("error", Json("not found"));
  Json endpoints = Json::array();
  endpoints.push_back(Json("/metrics"));
  endpoints.push_back(Json("/status"));
  endpoints.push_back(Json("/healthz"));
  endpoints.push_back(Json("/trace?last=N"));
  body.set("endpoints", std::move(endpoints));
  return json_response(404, std::move(body));
}

// ----------------------------------------------------------------------
// Server
// ----------------------------------------------------------------------

struct StatusServer::Impl {
  Config config;
  int listen_fd = -1;
  int port = 0;
  std::chrono::steady_clock::time_point started;
  std::atomic<bool> stopping{false};
  std::thread thread;  ///< last concern torn down: stop() joins before close

  ~Impl() {
    stopping.store(true, std::memory_order_relaxed);
    if (thread.joinable()) thread.join();
    if (listen_fd >= 0) ::close(listen_fd);
  }

  void run() {
    while (!stopping.load(std::memory_order_relaxed)) {
      pollfd waiter{};
      waiter.fd = listen_fd;
      waiter.events = POLLIN;
      // A short tick keeps stop() prompt without any wakeup machinery.
      const int ready = ::poll(&waiter, 1, 200);
      if (ready <= 0) continue;
      const int connection = ::accept(listen_fd, nullptr, nullptr);
      if (connection < 0) continue;
      serve(connection);
      ::close(connection);
    }
  }

  /// Handles one connection start to finish (the connection bound: no
  /// concurrent request handling on a diagnostics endpoint).
  void serve(int fd) {
    set_timeout(fd, SO_RCVTIMEO, config.read_timeout_ms);
    set_timeout(fd, SO_SNDTIMEO, config.write_timeout_ms);

    std::string request;
    while (request.find("\r\n\r\n") == std::string::npos) {
      if (request.size() >= config.max_request_bytes) {
        send_response(fd, error_response(400, "request too large"));
        return;
      }
      char buffer[2048];
      const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
      if (got <= 0) return;  // timeout, reset or premature close: drop silently
      request.append(buffer, static_cast<std::size_t>(got));
    }

    const std::size_t line_end = request.find("\r\n");
    const std::string_view line = std::string_view(request).substr(0, line_end);
    const std::size_t method_end = line.find(' ');
    const std::size_t target_end =
        method_end == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', method_end + 1);
    if (method_end == std::string_view::npos || target_end == std::string_view::npos ||
        !line.substr(target_end + 1).starts_with("HTTP/1.")) {
      send_response(fd, error_response(400, "malformed request line"));
      return;
    }
    const std::string_view method = line.substr(0, method_end);
    const std::string_view target =
        line.substr(method_end + 1, target_end - method_end - 1);
    const double uptime_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
    send_response(fd, handle_request(method, target, config.run, uptime_s));
  }

  static void set_timeout(int fd, int option, int timeout_ms) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<decltype(tv.tv_usec)>((timeout_ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
  }

  static void send_response(int fd, const Response& response) {
    std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                       reason_phrase(response.status) +
                       "\r\nContent-Type: " + response.content_type +
                       "\r\nContent-Length: " + std::to_string(response.body.size()) +
                       "\r\nConnection: close\r\n\r\n";
    send_all(fd, head + response.body);
  }

  static void send_all(int fd, std::string_view data) {
    while (!data.empty()) {
      const ssize_t sent = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
      if (sent <= 0) return;  // write timeout or reset: the scraper's loss
      data.remove_prefix(static_cast<std::size_t>(sent));
    }
  }
};

StatusServer::StatusServer() : impl_(std::make_unique<Impl>()) {}

StatusServer::~StatusServer() = default;

int StatusServer::port() const noexcept { return impl_->port; }

std::unique_ptr<StatusServer> StatusServer::start(Config config) {
  const auto fail_soft = [&config](const char* what) -> std::unique_ptr<StatusServer> {
    telemetry::registry().counter("statusd.dropped").add();
    std::fprintf(stderr, "aurv: statusd: %s for %s:%d (%s); status server disabled\n",
                 what, config.bind_address.c_str(), config.port, std::strerror(errno));
    return nullptr;
  };

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(config.port));
  if (::inet_pton(AF_INET, config.bind_address.c_str(), &address.sin_addr) != 1) {
    errno = EINVAL;
    return fail_soft("bad bind address");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail_soft("cannot create socket");
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0 ||
      ::listen(fd, 8) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return fail_soft("cannot bind");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return fail_soft("cannot read bound port");
  }

  auto server = std::unique_ptr<StatusServer>(new StatusServer());
  server->impl_->config = std::move(config);
  server->impl_->listen_fd = fd;
  server->impl_->port = static_cast<int>(ntohs(bound.sin_port));
  server->impl_->started = std::chrono::steady_clock::now();
  // The one announce line: machine-parseable, so a harness scraping an
  // ephemeral port can find it. stderr, never an artifact stream.
  std::fprintf(stderr, "{\"statusd\":{\"port\":%d}}\n", server->impl_->port);
  std::fflush(stderr);
  server->impl_->thread = std::thread([impl = server->impl_.get()] { impl->run(); });
  return server;
}

}  // namespace aurv::support::statusd
