#include "support/spill.hpp"

#include <stdexcept>

#include "support/telemetry.hpp"
#include "support/vfs.hpp"

namespace aurv::support {

SpillSegmentWriter::SpillSegmentWriter(std::string path, RetryPolicy retry)
    : path_(std::move(path)), retry_(retry) {
  // Truncate: a leftover segment of the same name from a pre-crash run is
  // overwritten — deterministic replay recreates it byte-identically.
  file_ = retry_io(retry_, [&] { return vfs().open_write(path_, Vfs::OpenMode::Truncate); });
}

SpillSegmentWriter::~SpillSegmentWriter() = default;  // VfsFile closes silently

void SpillSegmentWriter::append(const std::string& line) {
  for (int attempt = 1;; ++attempt) {
    try {
      file_->write(line);
      file_->write("\n");
      bytes_ += line.size() + 1;
      ++records_;
      return;
    } catch (const VfsError& error) {
      // A torn record may have reached the file; rewind to the last
      // record boundary so a retry cannot leave duplicate bytes behind.
      try {
        file_->truncate_to(bytes_);
      } catch (const VfsError&) {
        // Rewind failed too: give up through the throw below — the
        // partially-written segment is removed by the caller.
      }
      if (!error.transient() || attempt >= retry_.attempts) throw;
      const std::uint64_t backoff = retry_.backoff_ms << (attempt - 1);
      telemetry::registry().counter("vfs.retries").add();
      telemetry::registry().counter("vfs.backoff_ms").add(backoff);
      vfs().sleep_for_ms(backoff);
    }
  }
}

void SpillSegmentWriter::close() {
  if (file_ == nullptr) return;
  // flush() failures may be transient (retried); a failed close is final.
  retry_io(retry_, [&] { file_->flush(); });
  file_->close();
  file_ = nullptr;
  // Tally only durably closed segments: a writer abandoned mid-fault is
  // removed by its caller and never becomes a live segment.
  namespace telemetry = support::telemetry;
  static telemetry::Counter& segments_counter = telemetry::registry().counter("spill.segments");
  static telemetry::Counter& records_counter = telemetry::registry().counter("spill.records");
  static telemetry::Counter& bytes_counter = telemetry::registry().counter("spill.bytes");
  segments_counter.add();
  records_counter.add(records_);
  bytes_counter.add(bytes_);
}

SpillSegmentReader::SpillSegmentReader(std::string path, std::uint64_t offset,
                                       std::uint64_t remaining)
    : path_(std::move(path)), offset_(offset), remaining_(remaining) {
  if (remaining_ == 0) return;  // fully drained: nothing to open
  file_ = std::make_unique<std::ifstream>(path_, std::ios::binary);
  if (!file_->is_open())
    throw std::invalid_argument("spill: cannot open segment " + path_ +
                                " (missing or unreadable; the spill directory does not match "
                                "this checkpoint)");
  file_->seekg(static_cast<std::streamoff>(offset_));
  read_head();
}

void SpillSegmentReader::advance() {
  AURV_CHECK_MSG(remaining_ > 0, "spill: advance past the end of a segment");
  offset_ += head_.size() + 1;  // the record and its newline
  --remaining_;
  if (remaining_ > 0) read_head();
}

void SpillSegmentReader::read_head() {
  if (!std::getline(*file_, head_))
    throw std::invalid_argument("spill: segment " + path_ +
                                " is shorter than the checkpoint's recorded record count "
                                "(truncated or mismatched segment file)");
}

}  // namespace aurv::support
