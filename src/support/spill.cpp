#include "support/spill.hpp"

#include <stdexcept>

namespace aurv::support {

SpillSegmentWriter::SpillSegmentWriter(std::string path) : path_(std::move(path)) {
  // "wb": a leftover segment of the same name from a pre-crash run is
  // truncated — deterministic replay recreates it byte-identically.
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr)
    throw std::runtime_error("spill: cannot create segment " + path_);
}

SpillSegmentWriter::~SpillSegmentWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void SpillSegmentWriter::append(const std::string& line) {
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF)
    throw std::runtime_error("spill: write failed on segment " + path_);
  ++records_;
}

void SpillSegmentWriter::close() {
  if (file_ == nullptr) return;
  const bool ok = std::fflush(file_) == 0 && std::ferror(file_) == 0;
  std::fclose(file_);
  file_ = nullptr;
  if (!ok) throw std::runtime_error("spill: flush failed on segment " + path_);
}

SpillSegmentReader::SpillSegmentReader(std::string path, std::uint64_t offset,
                                       std::uint64_t remaining)
    : path_(std::move(path)), offset_(offset), remaining_(remaining) {
  if (remaining_ == 0) return;  // fully drained: nothing to open
  file_ = std::make_unique<std::ifstream>(path_, std::ios::binary);
  if (!file_->is_open())
    throw std::invalid_argument("spill: cannot open segment " + path_ +
                                " (missing or unreadable; the spill directory does not match "
                                "this checkpoint)");
  file_->seekg(static_cast<std::streamoff>(offset_));
  read_head();
}

void SpillSegmentReader::advance() {
  AURV_CHECK_MSG(remaining_ > 0, "spill: advance past the end of a segment");
  offset_ += head_.size() + 1;  // the record and its newline
  --remaining_;
  if (remaining_ > 0) read_head();
}

void SpillSegmentReader::read_head() {
  if (!std::getline(*file_, head_))
    throw std::invalid_argument("spill: segment " + path_ +
                                " is shorter than the checkpoint's recorded record count "
                                "(truncated or mismatched segment file)");
}

}  // namespace aurv::support
