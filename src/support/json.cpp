#include "support/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>

namespace aurv::support {

namespace {

[[noreturn]] void fail(const std::string& message) { throw JsonError("json: " + message); }

const char* kind_name(Json::Kind kind) {
  switch (kind) {
    case Json::Kind::Null: return "null";
    case Json::Kind::Bool: return "bool";
    case Json::Kind::Number: return "number";
    case Json::Kind::String: return "string";
    case Json::Kind::Array: return "array";
    case Json::Kind::Object: return "object";
  }
  return "?";
}

[[noreturn]] void fail_kind(const char* wanted, Json::Kind got) {
  fail(std::string("expected ") + wanted + ", got " + kind_name(got));
}

/// Recursive-descent parser over a string_view with byte-offset errors.
/// Nesting is capped so hostile input throws JsonError instead of
/// overflowing the stack.
constexpr int kMaxParseDepth = 256;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) error("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void error(const std::string& message) const {
    fail(message + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) error("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) error(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    if (depth_ >= kMaxParseDepth) error("nesting too deep");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        error("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        error("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        error("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    ++depth_;
    expect('{');
    Json::Object object;
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return Json(std::move(object));
    }
    while (true) {
      if (peek() != '"') error("expected object key");
      std::string key = parse_string();
      // Strict: a duplicate key would make one of the two values silently
      // win — for a scenario spec that means silently running a different
      // experiment, the exact failure mode this library exists to prevent.
      for (const auto& [existing, value] : object) {
        if (existing == key) error("duplicate object key \"" + key + "\"");
      }
      expect(':');
      object.emplace_back(std::move(key), parse_value());
      const char next = peek();
      ++pos_;
      if (next == '}') {
        --depth_;
        return Json(std::move(object));
      }
      if (next != ',') error("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    ++depth_;
    expect('[');
    Json::Array array;
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') {
        --depth_;
        return Json(std::move(array));
      }
      if (next != ',') error("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) error("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) error("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': out.append(parse_unicode_escape()); break;
        default: error("invalid escape character");
      }
    }
  }

  std::string parse_unicode_escape() {
    const unsigned code = parse_hex4();
    // Minimal UTF-8 encoding; surrogate pairs are passed through as two
    // 3-byte sequences (the specs this library reads are ASCII in practice).
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int k = 0; k < 4; ++k) {
      if (pos_ >= text_.size()) error("unterminated \\u escape");
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else error("invalid hex digit in \\u escape");
    }
    return value;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_start = pos_;
    if (digits() == 0) error("invalid number");
    // JSON forbids leading zeros ("012"); accepting them would silently
    // reinterpret malformed artifacts.
    if (text_[int_start] == '0' && pos_ - int_start > 1) error("leading zero in number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) error("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) error("digits required in exponent");
    }
    // from_chars: locale-independent, and the grammar above already
    // excludes NaN/Inf spellings and hex floats.
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc::result_out_of_range || !std::isfinite(value))
      error("number out of double range");
    if (ec != std::errc{} || ptr != token.data() + token.size()) error("invalid number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void write_escaped(std::string& out, const std::string& text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string json_number_to_string(double value) {
  if (!std::isfinite(value)) fail("cannot serialize non-finite number");
  // to_chars, not printf: the output must never depend on the process
  // locale (an embedder calling setlocale must not corrupt checkpoints).
  char buffer[40];
  // 2^53: largest range where every integer is exactly representable, so
  // the integer rendering is lossless. -0.0 is excluded — "0" would drop
  // its sign bit; the to_chars path below prints "-0".
  if (value == std::floor(value) && std::fabs(value) <= 9007199254740992.0 &&
      !(value == 0.0 && std::signbit(value))) {
    const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof buffer,
                                         static_cast<std::int64_t>(value));
    return std::string(buffer, ptr);
  }
  // Shortest round-trip-exact form (to_chars without precision).
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof buffer, value);
  return std::string(buffer, ptr);
}

bool Json::as_bool() const {
  if (kind_ != Kind::Bool) fail_kind("bool", kind_);
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::Number) fail_kind("number", kind_);
  return number_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::String) fail_kind("string", kind_);
  return string_;
}

const Json::Array& Json::as_array() const {
  if (kind_ != Kind::Array) fail_kind("array", kind_);
  return array_;
}

const Json::Object& Json::as_object() const {
  if (kind_ != Kind::Object) fail_kind("object", kind_);
  return object_;
}

Json::Array& Json::as_array() {
  if (kind_ != Kind::Array) fail_kind("array", kind_);
  return array_;
}

Json::Object& Json::as_object() {
  if (kind_ != Kind::Object) fail_kind("object", kind_);
  return object_;
}

std::uint64_t Json::as_uint() const {
  const double value = as_number();
  if (value < 0 || value != std::floor(value) || value > 9007199254740992.0)
    fail("expected non-negative integer, got " + json_number_to_string(value));
  return static_cast<std::uint64_t>(value);
}

std::int64_t Json::as_int() const {
  const double value = as_number();
  if (value != std::floor(value) || std::fabs(value) > 9007199254740992.0)
    fail("expected integer, got " + json_number_to_string(value));
  return static_cast<std::int64_t>(value);
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  if (kind_ != Kind::Object) fail_kind("object", kind_);
  const Json* value = find(key);
  if (value == nullptr) fail("missing key \"" + std::string(key) + "\"");
  return *value;
}

double Json::number_or(std::string_view key, double fallback) const {
  const Json* value = find(key);
  return value != nullptr ? value->as_number() : fallback;
}

std::uint64_t Json::uint_or(std::string_view key, std::uint64_t fallback) const {
  const Json* value = find(key);
  return value != nullptr ? value->as_uint() : fallback;
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  const Json* value = find(key);
  return value != nullptr ? value->as_bool() : fallback;
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  const Json* value = find(key);
  return value != nullptr ? value->as_string() : fallback;
}

void Json::set(std::string key, Json value) {
  if (kind_ != Kind::Object) fail_kind("object", kind_);
  if (find(key) != nullptr) fail("duplicate key \"" + key + "\"");
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  if (kind_ != Kind::Array) fail_kind("array", kind_);
  array_.push_back(std::move(value));
}

void Json::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_indent = [&](int level) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (kind_) {
    case Kind::Null: out += "null"; return;
    case Kind::Bool: out += bool_ ? "true" : "false"; return;
    case Kind::Number: out += json_number_to_string(number_); return;
    case Kind::String: write_escaped(out, string_); return;
    case Kind::Array: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t k = 0; k < array_.size(); ++k) {
        if (k != 0) out.push_back(',');
        newline_indent(depth + 1);
        array_[k].write(out, indent, depth + 1);
      }
      newline_indent(depth);
      out.push_back(']');
      return;
    }
    case Kind::Object: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t k = 0; k < object_.size(); ++k) {
        if (k != 0) out.push_back(',');
        newline_indent(depth + 1);
        write_escaped(out, object_[k].first);
        out += pretty ? ": " : ":";
        object_[k].second.write(out, indent, depth + 1);
      }
      newline_indent(depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent >= 0) out.push_back('\n');
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

Json Json::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

void Json::save_file(const std::string& path, int indent) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("cannot open " + path + " for writing");
  out << dump(indent);
  if (!out) fail("write to " + path + " failed");
}

bool operator==(const Json& a, const Json& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Json::Kind::Null: return true;
    case Json::Kind::Bool: return a.bool_ == b.bool_;
    case Json::Kind::Number: return a.number_ == b.number_;
    case Json::Kind::String: return a.string_ == b.string_;
    case Json::Kind::Array: return a.array_ == b.array_;
    case Json::Kind::Object: return a.object_ == b.object_;
  }
  return false;
}

}  // namespace aurv::support
