#include "support/vfs.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace aurv::support {

namespace fs = std::filesystem;

VfsError::VfsError(std::string op, std::string path, std::string reason, bool transient)
    : std::runtime_error("vfs: " + op + " " + path + ": " + reason),
      op_(std::move(op)),
      path_(std::move(path)),
      reason_(std::move(reason)),
      transient_(transient) {}

void Vfs::sleep_for_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

namespace {

/// Telemetry shadows of the real-backend operations (counted at the
/// RealFile/RealVfs layer, so FaultVfs-wrapped runs tally the bytes that
/// actually reached the inner backend).
telemetry::Counter& vfs_opens_counter() {
  static telemetry::Counter& c = telemetry::registry().counter("vfs.opens");
  return c;
}
telemetry::Counter& vfs_writes_counter() {
  static telemetry::Counter& c = telemetry::registry().counter("vfs.writes");
  return c;
}
telemetry::Counter& vfs_bytes_counter() {
  static telemetry::Counter& c = telemetry::registry().counter("vfs.bytes_written");
  return c;
}
telemetry::Counter& vfs_renames_counter() {
  static telemetry::Counter& c = telemetry::registry().counter("vfs.renames");
  return c;
}

/// cstdio-backed writable file. EINTR is the one genuinely transient
/// errno here; everything else (ENOSPC, EIO, EROFS...) is persistent
/// until an operator intervenes, so it propagates non-transient and the
/// caller's degradation policy decides.
class RealFile final : public VfsFile {
 public:
  RealFile(std::string path, Vfs::OpenMode mode) : path_(std::move(path)) {
    file_ = std::fopen(path_.c_str(), mode == Vfs::OpenMode::Append ? "ab" : "wb");
    if (file_ == nullptr)
      throw VfsError("open_write", path_, std::strerror(errno), errno == EINTR);
    vfs_opens_counter().add();
  }
  ~RealFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  void write(std::string_view data) override {
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size())
      throw VfsError("write", path_, std::strerror(errno), errno == EINTR);
    vfs_writes_counter().add();
    vfs_bytes_counter().add(data.size());
  }
  void flush() override {
    if (std::fflush(file_) != 0 || std::ferror(file_) != 0)
      throw VfsError("flush", path_, std::strerror(errno), errno == EINTR);
  }
  void truncate_to(std::uint64_t size) override {
    // Flush the stdio buffer first so the kernel-side truncate sees every
    // byte, then rewind the stream position to the new end.
    if (std::fflush(file_) != 0 ||
        ::ftruncate(::fileno(file_), static_cast<off_t>(size)) != 0 ||
        std::fseek(file_, 0, SEEK_END) != 0)
      throw VfsError("truncate", path_, std::strerror(errno), errno == EINTR);
  }
  void close() override {
    if (file_ == nullptr) return;
    const bool flushed = std::fflush(file_) == 0 && std::ferror(file_) == 0;
    const bool closed = std::fclose(file_) == 0;
    file_ = nullptr;
    if (!flushed || !closed)
      throw VfsError("close", path_, "flush-on-close failed", false);
  }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

class RealVfs final : public Vfs {
 public:
  std::unique_ptr<VfsFile> open_write(const std::string& path, OpenMode mode) override {
    return std::make_unique<RealFile>(path, mode);
  }
  void rename(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) throw VfsError("rename", from + " -> " + to, ec.message(), false);
    vfs_renames_counter().add();
  }
  bool remove(const std::string& path) override {
    std::error_code ec;
    return fs::remove(path, ec) && !ec;
  }
  void resize_file(const std::string& path, std::uint64_t size) override {
    std::error_code ec;
    fs::resize_file(path, size, ec);
    if (ec) throw VfsError("resize", path, ec.message(), false);
  }
  void create_directories(const std::string& dir) override {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) throw VfsError("mkdir", dir, ec.message(), false);
  }
  bool exists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }
  std::uint64_t file_size(const std::string& path) override {
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(path, ec);
    if (ec) throw VfsError("stat", path, ec.message(), false);
    return size;
  }
  std::string read_file(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw VfsError("read", path, "cannot open", false);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) throw VfsError("read", path, "read failed", false);
    return buffer.str();
  }
  std::vector<std::string> list_dir(const std::string& dir) override {
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec))
      names.push_back(entry.path().filename().string());
    std::sort(names.begin(), names.end());
    return names;
  }
};

std::atomic<Vfs*>& current_vfs_slot() {
  static RealVfs real;
  static std::atomic<Vfs*> current{&real};
  return current;
}

}  // namespace

Vfs& real_vfs() {
  static RealVfs real;
  return real;
}

Vfs& vfs() { return *current_vfs_slot().load(std::memory_order_acquire); }

ScopedVfs::ScopedVfs(Vfs& replacement)
    : previous_(current_vfs_slot().exchange(&replacement, std::memory_order_acq_rel)) {}

ScopedVfs::~ScopedVfs() { current_vfs_slot().store(previous_, std::memory_order_release); }

// ------------------------------------------------------------------------
// Fault schedule
// ------------------------------------------------------------------------

const char* to_string(FaultClass klass) {
  switch (klass) {
    case FaultClass::ShortWrite: return "short-write";
    case FaultClass::NoSpace: return "enospc";
    case FaultClass::FlushIo: return "eio-flush";
    case FaultClass::RenameFail: return "rename-fail";
    case FaultClass::CrashStop: return "crash-stop";
  }
  return "?";
}

FaultClass fault_class_from_string(const std::string& name) {
  for (const FaultClass klass :
       {FaultClass::ShortWrite, FaultClass::NoSpace, FaultClass::FlushIo,
        FaultClass::RenameFail, FaultClass::CrashStop}) {
    if (name == to_string(klass)) return klass;
  }
  throw JsonError("fault schedule: unknown fault class \"" + name + "\"");
}

Json FaultSpec::to_json() const {
  Json json = Json::object();
  json.set("after", Json(after));
  json.set("path_contains", Json(path_contains));
  json.set("class", Json(to_string(klass)));
  json.set("sticky", Json(sticky));
  return json;
}

FaultSpec FaultSpec::from_json(const Json& json) {
  FaultSpec spec;
  spec.after = json.at("after").as_uint();
  spec.path_contains = json.string_or("path_contains", "");
  spec.klass = fault_class_from_string(json.at("class").as_string());
  spec.sticky = json.bool_or("sticky", false);
  return spec;
}

Json FaultSchedule::to_json() const {
  Json json = Json::object();
  Json list = Json::array();
  for (const FaultSpec& fault : faults) list.push_back(fault.to_json());
  json.set("faults", std::move(list));
  return json;
}

FaultSchedule FaultSchedule::from_json(const Json& json) {
  FaultSchedule schedule;
  for (const Json& entry : json.at("faults").as_array())
    schedule.faults.push_back(FaultSpec::from_json(entry));
  return schedule;
}

// ------------------------------------------------------------------------
// FaultVfs
// ------------------------------------------------------------------------

// Not in an anonymous namespace: FaultVfs befriends this exact type so it
// can reach the private on_op/crash hooks.
/// Wraps an inner file: every operation is counted/injected by the owner.
class FaultFile final : public VfsFile {
 public:
  FaultFile(FaultVfs& owner, std::string path, std::unique_ptr<VfsFile> inner)
      : owner_(owner), path_(std::move(path)), inner_(std::move(inner)) {}

  void write(std::string_view data) override;
  void flush() override;
  void truncate_to(std::uint64_t size) override;
  void close() override;

 private:
  FaultVfs& owner_;
  std::string path_;
  std::unique_ptr<VfsFile> inner_;
};

FaultVfs::FaultVfs(FaultSchedule schedule, Vfs& inner)
    : schedule_(std::move(schedule)), matched_(schedule_.faults.size(), 0), inner_(inner) {}

FaultVfs::Decision FaultVfs::on_op(const char* op, const std::string& path) {
  const std::scoped_lock lock(mutex_);
  Decision decision;
  if (crashed_) {
    decision.suppress = true;
    return decision;
  }
  decision.index = next_index_++;
  log_.push_back(OpRecord{decision.index, op, path});
  for (std::size_t k = 0; k < schedule_.faults.size(); ++k) {
    const FaultSpec& fault = schedule_.faults[k];
    if (!fault.path_contains.empty() && path.find(fault.path_contains) == std::string::npos)
      continue;
    const std::uint64_t seen = matched_[k]++;
    if (seen == fault.after || (fault.sticky && seen > fault.after)) {
      decision.fault = &fault;
      return decision;  // first matching fault wins
    }
  }
  return decision;
}

void FaultVfs::crash(const Decision& decision, const char* op, const std::string& path) {
  {
    const std::scoped_lock lock(mutex_);
    crashed_ = true;
  }
  throw VfsCrashStop{decision.index, op, path};
}

std::uint64_t FaultVfs::ops() const {
  const std::scoped_lock lock(mutex_);
  return next_index_;
}

std::vector<FaultVfs::OpRecord> FaultVfs::op_log() const {
  const std::scoped_lock lock(mutex_);
  return log_;
}

std::uint64_t FaultVfs::backoff_recorded_ms() const {
  const std::scoped_lock lock(mutex_);
  return backoff_ms_;
}

bool FaultVfs::crashed() const {
  const std::scoped_lock lock(mutex_);
  return crashed_;
}

namespace {

[[noreturn]] void throw_injected(const FaultSpec& fault, const char* op,
                                 const std::string& path) {
  telemetry::registry().counter("vfs.faults_injected").add();
  const bool transient = !fault.sticky;
  switch (fault.klass) {
    case FaultClass::NoSpace:
      throw VfsError(op, path, "no space left on device (injected ENOSPC)", transient);
    case FaultClass::FlushIo:
      throw VfsError(op, path, "input/output error (injected EIO)", transient);
    case FaultClass::RenameFail:
      throw VfsError(op, path, "rename failed (injected)", transient);
    case FaultClass::ShortWrite:
      throw VfsError(op, path, "short write (injected torn write)", transient);
    case FaultClass::CrashStop:
      break;  // handled by the caller, never reaches here
  }
  throw VfsError(op, path, "injected fault", transient);
}

}  // namespace

void FaultFile::write(std::string_view data) {
  const FaultVfs::Decision decision = owner_.on_op("write", path_);
  if (decision.suppress) return;
  if (decision.fault != nullptr) {
    if (decision.fault->klass == FaultClass::ShortWrite) {
      // The torn half reaches the disk before the error surfaces — the
      // signature failure mode of a real kill mid-fwrite.
      inner_->write(data.substr(0, data.size() / 2));
      throw_injected(*decision.fault, "write", path_);
    }
    if (decision.fault->klass == FaultClass::CrashStop) {
      inner_->write(data);
      inner_->flush();  // "after operation K": K's bytes are on disk
      owner_.crash(decision, "write", path_);
    }
    throw_injected(*decision.fault, "write", path_);
  }
  inner_->write(data);
}

void FaultFile::flush() {
  const FaultVfs::Decision decision = owner_.on_op("flush", path_);
  if (decision.suppress) return;
  if (decision.fault != nullptr) {
    if (decision.fault->klass == FaultClass::CrashStop) {
      inner_->flush();
      owner_.crash(decision, "flush", path_);
    }
    throw_injected(*decision.fault, "flush", path_);
  }
  inner_->flush();
}

void FaultFile::truncate_to(std::uint64_t size) {
  const FaultVfs::Decision decision = owner_.on_op("truncate", path_);
  if (decision.suppress) return;
  if (decision.fault != nullptr) {
    if (decision.fault->klass == FaultClass::CrashStop) {
      inner_->truncate_to(size);
      owner_.crash(decision, "truncate", path_);
    }
    throw_injected(*decision.fault, "truncate", path_);
  }
  inner_->truncate_to(size);
}

void FaultFile::close() {
  const FaultVfs::Decision decision = owner_.on_op("close", path_);
  if (decision.suppress) return;
  if (decision.fault != nullptr) {
    if (decision.fault->klass == FaultClass::CrashStop) {
      inner_->close();
      owner_.crash(decision, "close", path_);
    }
    throw_injected(*decision.fault, "close", path_);
  }
  inner_->close();
}

std::unique_ptr<VfsFile> FaultVfs::open_write(const std::string& path, OpenMode mode) {
  const Decision decision = on_op("open_write", path);
  if (decision.suppress) {
    // A dead process opens nothing; hand back a sink that swallows
    // everything so unwinding destructors stay silent.
    struct DeadFile final : VfsFile {
      void write(std::string_view) override {}
      void flush() override {}
      void truncate_to(std::uint64_t) override {}
      void close() override {}
    };
    return std::make_unique<DeadFile>();
  }
  if (decision.fault != nullptr) {
    if (decision.fault->klass == FaultClass::CrashStop) {
      // The open itself completes (creating/truncating the file), then the
      // process dies; the handle is dropped unused.
      const auto created = inner_.open_write(path, mode);
      (void)created;
      crash(decision, "open_write", path);
    }
    throw_injected(*decision.fault, "open_write", path);
  }
  return std::make_unique<FaultFile>(*this, path, inner_.open_write(path, mode));
}

void FaultVfs::rename(const std::string& from, const std::string& to) {
  const Decision decision = on_op("rename", from + " -> " + to);
  if (decision.suppress) return;
  if (decision.fault != nullptr) {
    if (decision.fault->klass == FaultClass::CrashStop) {
      inner_.rename(from, to);
      crash(decision, "rename", from + " -> " + to);
    }
    throw_injected(*decision.fault, "rename", from + " -> " + to);
  }
  inner_.rename(from, to);
}

bool FaultVfs::remove(const std::string& path) {
  const Decision decision = on_op("remove", path);
  if (decision.suppress) return false;
  if (decision.fault != nullptr) {
    if (decision.fault->klass == FaultClass::CrashStop) {
      const bool removed = inner_.remove(path);
      (void)removed;
      crash(decision, "remove", path);
    }
    return false;  // removal is best-effort: injected faults just fail it
  }
  return inner_.remove(path);
}

void FaultVfs::resize_file(const std::string& path, std::uint64_t size) {
  const Decision decision = on_op("resize", path);
  if (decision.suppress) return;
  if (decision.fault != nullptr) {
    if (decision.fault->klass == FaultClass::CrashStop) {
      inner_.resize_file(path, size);
      crash(decision, "resize", path);
    }
    throw_injected(*decision.fault, "resize", path);
  }
  inner_.resize_file(path, size);
}

void FaultVfs::create_directories(const std::string& dir) {
  const Decision decision = on_op("mkdir", dir);
  if (decision.suppress) return;
  if (decision.fault != nullptr) {
    if (decision.fault->klass == FaultClass::CrashStop) {
      inner_.create_directories(dir);
      crash(decision, "mkdir", dir);
    }
    throw_injected(*decision.fault, "mkdir", dir);
  }
  inner_.create_directories(dir);
}

bool FaultVfs::exists(const std::string& path) { return inner_.exists(path); }
std::uint64_t FaultVfs::file_size(const std::string& path) { return inner_.file_size(path); }
std::string FaultVfs::read_file(const std::string& path) { return inner_.read_file(path); }
std::vector<std::string> FaultVfs::list_dir(const std::string& dir) {
  return inner_.list_dir(dir);
}

void FaultVfs::sleep_for_ms(std::uint64_t ms) {
  const std::scoped_lock lock(mutex_);
  backoff_ms_ += ms;  // recorded, never slept: torture runs stay fast
}

}  // namespace aurv::support
