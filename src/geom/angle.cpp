#include "geom/angle.hpp"

#include <cmath>

namespace aurv::geom {

double normalize_angle(double radians) noexcept {
  double a = std::fmod(radians, kTwoPi);
  if (a < 0) a += kTwoPi;
  // fmod can return exactly kTwoPi after the correction when radians is a
  // tiny negative number; fold it back.
  if (a >= kTwoPi) a = 0.0;
  return a;
}

double normalize_angle_signed(double radians) noexcept {
  double a = std::fmod(radians, kTwoPi);
  if (a > kPi) a -= kTwoPi;
  if (a <= -kPi) a += kTwoPi;
  return a;
}

double dyadic_angle(std::int64_t k, std::uint64_t i) noexcept {
  return static_cast<double>(k) * kPi / std::ldexp(1.0, static_cast<int>(i));
}

double line_angle_between(double dir_a, double dir_b) noexcept {
  double d = std::fmod(std::fabs(dir_a - dir_b), kPi);
  if (d > kPi / 2) d = kPi - d;
  return d;
}

double ray_angle_between(double dir_a, double dir_b) noexcept {
  double d = std::fmod(std::fabs(dir_a - dir_b), kTwoPi);
  if (d > kPi) d = kTwoPi - d;
  return d;
}

}  // namespace aurv::geom
