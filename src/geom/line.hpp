// Infinite line in the plane, given by a point and a unit direction.
// Used for the canonical line of an instance (Definition 2.1) and the
// orthogonal projections proj_A / proj_B that drive the chi = -1 analysis.
#pragma once

#include "geom/vec2.hpp"

namespace aurv::geom {

class Line {
 public:
  /// `direction` need not be normalized but must be nonzero (checked).
  Line(Vec2 point, Vec2 direction);

  /// Line through `point` with inclination `angle` radians from the x-axis.
  static Line through_at_angle(Vec2 point, double angle);

  [[nodiscard]] Vec2 point() const noexcept { return point_; }
  [[nodiscard]] Vec2 direction() const noexcept { return dir_; }
  /// Inclination in [0, pi).
  [[nodiscard]] double inclination() const noexcept;

  /// Orthogonal projection of `p` onto the line.
  [[nodiscard]] Vec2 project(Vec2 p) const noexcept;

  /// Signed coordinate of the projection of `p` along the line direction,
  /// measured from the line's base point. Two projections' separation is
  /// |coordinate(p) - coordinate(q)|.
  [[nodiscard]] double coordinate(Vec2 p) const noexcept;

  /// Distance from `p` to the line (>= 0).
  [[nodiscard]] double distance_to(Vec2 p) const noexcept;

  /// Signed distance: positive on the left of `direction`.
  [[nodiscard]] double signed_distance_to(Vec2 p) const noexcept;

  /// Mirror image of `p` across the line.
  [[nodiscard]] Vec2 reflect(Vec2 p) const noexcept;

 private:
  Vec2 point_;
  Vec2 dir_;  // unit
};

}  // namespace aurv::geom
