#include "geom/line.hpp"

#include <cmath>

#include "geom/angle.hpp"
#include "support/check.hpp"

namespace aurv::geom {

Line::Line(Vec2 point, Vec2 direction) : point_(point) {
  AURV_CHECK_MSG(direction.norm2() > 0.0, "Line direction must be nonzero");
  dir_ = direction.normalized();
}

Line Line::through_at_angle(Vec2 point, double angle) {
  return Line(point, unit_vector(angle));
}

double Line::inclination() const noexcept {
  double a = std::atan2(dir_.y, dir_.x);
  if (a < 0) a += kPi;
  if (a >= kPi) a -= kPi;
  return a;
}

Vec2 Line::project(Vec2 p) const noexcept {
  return point_ + dir_.dot(p - point_) * dir_;
}

double Line::coordinate(Vec2 p) const noexcept { return dir_.dot(p - point_); }

double Line::distance_to(Vec2 p) const noexcept { return std::fabs(signed_distance_to(p)); }

double Line::signed_distance_to(Vec2 p) const noexcept { return dir_.cross(p - point_); }

Vec2 Line::reflect(Vec2 p) const noexcept {
  const Vec2 foot = project(p);
  return foot + (foot - p);
}

}  // namespace aurv::geom
