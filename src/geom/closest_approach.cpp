#include "geom/closest_approach.hpp"

#include <algorithm>
#include <cmath>

namespace aurv::geom {

ApproachResult closest_approach(Vec2 offset, Vec2 relative_velocity, double duration) noexcept {
  const double v2 = relative_velocity.norm2();
  if (v2 <= 0.0 || duration <= 0.0) {
    return {offset.norm(), 0.0};
  }
  // d(s)^2 = |offset|^2 + 2 s offset.v + s^2 |v|^2, minimized at
  // s* = -offset.v / |v|^2, clamped to the window.
  const double s_star = std::clamp(-offset.dot(relative_velocity) / v2, 0.0, duration);
  const Vec2 at_min = offset + s_star * relative_velocity;
  return {at_min.norm(), s_star};
}

std::optional<double> first_contact(Vec2 offset, Vec2 relative_velocity, double radius,
                                    double duration) noexcept {
  if (offset.norm2() <= radius * radius) return 0.0;
  const double v2 = relative_velocity.norm2();
  if (v2 <= 0.0 || duration <= 0.0) return std::nullopt;
  // Solve |offset + s v|^2 = radius^2:
  //   v2 s^2 + 2 b s + c = 0, b = offset.v, c = |offset|^2 - radius^2 (> 0 here).
  const double b = offset.dot(relative_velocity);
  if (b >= 0.0) return std::nullopt;  // moving apart; distance only grows
  const double c = offset.norm2() - radius * radius;
  const double discriminant = b * b - v2 * c;
  if (discriminant < 0.0) return std::nullopt;
  // Numerically stable smaller root of the upward parabola: with b < 0,
  // s1 = (-b - sqrt(D)) / v2 = c / (-b + sqrt(D)).
  const double sqrt_d = std::sqrt(discriminant);
  const double s1 = c / (-b + sqrt_d);
  if (s1 < 0.0) return 0.0;  // guards tiny negative round-off
  if (s1 > duration) return std::nullopt;
  return s1;
}

std::optional<ContactInterval> contact_interval(Vec2 offset, Vec2 relative_velocity,
                                                double radius, double duration) noexcept {
  const double v2 = relative_velocity.norm2();
  const bool inside_now = offset.norm2() <= radius * radius;
  if (v2 <= 0.0 || duration <= 0.0) {
    if (inside_now) return ContactInterval{0.0, duration};
    return std::nullopt;
  }
  // Roots of v2 s^2 + 2 b s + c = 0 with c = |offset|^2 - radius^2.
  const double b = offset.dot(relative_velocity);
  const double c = offset.norm2() - radius * radius;
  const double discriminant = b * b - v2 * c;
  if (discriminant < 0.0) {
    if (inside_now) return ContactInterval{0.0, duration};  // grazing round-off
    return std::nullopt;
  }
  const double sqrt_d = std::sqrt(discriminant);
  const double enter = (-b - sqrt_d) / v2;
  const double exit = (-b + sqrt_d) / v2;
  const double lo = std::max(0.0, enter);
  const double hi = std::min(duration, exit);
  if (lo > hi) return std::nullopt;
  return ContactInterval{lo, hi};
}

}  // namespace aurv::geom
