#include "geom/closest_approach.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/filter.hpp"

namespace aurv::geom {

namespace {

using numeric::certified_sign;
using numeric::Filtered;
using numeric::FInterval;
using numeric::SignClass;

// Every *decision* below (inside the disk? approaching? does the quadratic
// touch the window?) is made exactly: the interval tier certifies it when
// it can, and an exact evaluation over the input doubles — which are exact
// dyadic rationals — settles it otherwise. The returned *values* (contact
// times) remain the same double formulas as before; only branch outcomes
// are exact, which is what the engine's correctness depends on.

template <typename ExactFn>
int resolve_sign(const FInterval& filtered, ExactFn&& exact) {
  if (const auto certified = certified_sign(filtered)) {
    switch (*certified) {
      case SignClass::kNegative: return -1;
      case SignClass::kZero: return 0;
      case SignClass::kPositive: return 1;
    }
  }
  return exact().sign();
}

Filtered product(double x, double y) {
  Filtered result = Filtered::from_double(x);
  result *= Filtered::from_double(y);
  return result;
}

/// Exact c = |offset|^2 - radius^2: negative inside the disk.
Filtered exact_c(Vec2 offset, double radius) {
  Filtered result = product(offset.x, offset.x);
  result += product(offset.y, offset.y);
  result -= product(radius, radius);
  return result;
}

/// Exact b = offset . v: negative while the agents approach each other.
Filtered exact_b(Vec2 offset, Vec2 velocity) {
  Filtered result = product(offset.x, velocity.x);
  result += product(offset.y, velocity.y);
  return result;
}

Filtered exact_v2(Vec2 velocity) {
  Filtered result = product(velocity.x, velocity.x);
  result += product(velocity.y, velocity.y);
  return result;
}

/// Exact discriminant b^2 - |v|^2 c of v2 s^2 + 2 b s + c.
Filtered exact_discriminant(Vec2 offset, Vec2 velocity, double radius) {
  Filtered result = exact_b(offset, velocity);
  result *= exact_b(offset, velocity);
  Filtered subtrahend = exact_v2(velocity);
  subtrahend *= exact_c(offset, radius);
  result -= subtrahend;
  return result;
}

/// Exact q(w) = v2 w^2 + 2 b w + c: the squared clearance at the window end
/// (<= 0 iff the agents are within the disk at s = duration).
Filtered exact_q_at(Vec2 offset, Vec2 velocity, double radius, double duration) {
  Filtered result = exact_v2(velocity);
  result *= Filtered::from_double(duration);
  Filtered linear = exact_b(offset, velocity);
  linear *= Filtered::from_double(2.0);
  result += linear;
  result *= Filtered::from_double(duration);
  result += exact_c(offset, radius);
  return result;
}

/// Exact v2 w + b: >= 0 iff the parabola's vertex s* = -b / v2 lies at or
/// before the window end.
Filtered exact_vertex_margin(Vec2 offset, Vec2 velocity, double duration) {
  Filtered result = exact_v2(velocity);
  result *= Filtered::from_double(duration);
  result += exact_b(offset, velocity);
  return result;
}

// Interval legs of the quadratic, built from single-TwoProd point products
// (FInterval::product) — an order of magnitude cheaper than general interval
// multiplies, and computed lazily so the common early exits (already in
// contact, receding) pay for only the legs they actually test.

/// |offset|^2 - radius^2.
FInterval iv_c(Vec2 offset, double radius) {
  return FInterval::product(offset.x, offset.x) + FInterval::product(offset.y, offset.y) -
         FInterval::product(radius, radius);
}

/// offset . v.
FInterval iv_b(Vec2 offset, Vec2 velocity) {
  return FInterval::product(offset.x, velocity.x) + FInterval::product(offset.y, velocity.y);
}

/// |v|^2.
FInterval iv_v2(Vec2 velocity) {
  return FInterval::product(velocity.x, velocity.x) +
         FInterval::product(velocity.y, velocity.y);
}

}  // namespace

ApproachResult closest_approach(Vec2 offset, Vec2 relative_velocity, double duration) noexcept {
  const double v2 = relative_velocity.norm2();
  if (v2 <= 0.0 || duration <= 0.0) {
    return {offset.norm(), 0.0};
  }
  // d(s)^2 = |offset|^2 + 2 s offset.v + s^2 |v|^2, minimized at
  // s* = -offset.v / |v|^2, clamped to the window.
  const double s_star = std::clamp(-offset.dot(relative_velocity) / v2, 0.0, duration);
  const Vec2 at_min = offset + s_star * relative_velocity;
  return {at_min.norm(), s_star};
}

std::optional<double> first_contact(Vec2 offset, Vec2 relative_velocity, double radius,
                                    double duration) noexcept {
  const FInterval c_iv = iv_c(offset, radius);
  const int c_sign =
      resolve_sign(c_iv, [&] { return exact_c(offset, radius); });
  if (c_sign <= 0) return 0.0;  // already in contact
  const double v2 = relative_velocity.norm2();
  if (v2 <= 0.0 || duration <= 0.0) return std::nullopt;
  // Solve |offset + s v|^2 = radius^2:
  //   v2 s^2 + 2 b s + c = 0, b = offset.v, c = |offset|^2 - radius^2 (> 0 here).
  const FInterval b_iv = iv_b(offset, relative_velocity);
  const int b_sign =
      resolve_sign(b_iv, [&] { return exact_b(offset, relative_velocity); });
  if (b_sign >= 0) return std::nullopt;  // moving apart; distance only grows
  const FInterval v2_iv = iv_v2(relative_velocity);
  const int d_sign = resolve_sign(
      b_iv * b_iv - v2_iv * c_iv,
      [&] { return exact_discriminant(offset, relative_velocity, radius); });
  if (d_sign < 0) return std::nullopt;  // the disk is never reached
  // Window containment of the smaller root: s1 <= w iff the vertex lies in
  // the window (v2 w + b >= 0) or the window end is already inside the disk
  // (q(w) <= 0). Rational-decidable — no square root needed for the branch.
  const FInterval w = FInterval::point(duration);
  const int vertex_sign =
      resolve_sign(v2_iv * w + b_iv,
                   [&] { return exact_vertex_margin(offset, relative_velocity, duration); });
  if (vertex_sign < 0) {
    const int qw_sign = resolve_sign(
        (v2_iv * w + FInterval::point(2.0) * b_iv) * w + c_iv,
        [&] { return exact_q_at(offset, relative_velocity, radius, duration); });
    if (qw_sign > 0) return std::nullopt;  // vertex and window-end both clear
  }
  // Contact certified inside the window; the reported time is the same
  // numerically stable double root as before, clamped to the certificate.
  const double b = offset.dot(relative_velocity);
  const double c = offset.norm2() - radius * radius;
  const double discriminant = b * b - v2 * c;
  const double sqrt_d = std::sqrt(std::max(discriminant, 0.0));
  const double s1 = c / (-b + sqrt_d);
  if (!(s1 > 0.0)) return 0.0;  // guards tiny negative round-off (and NaN)
  if (s1 > duration) return duration;  // round-off past the certified window
  return s1;
}

std::optional<ContactInterval> contact_interval(Vec2 offset, Vec2 relative_velocity,
                                                double radius, double duration) noexcept {
  const FInterval c_iv = iv_c(offset, radius);
  const int c_sign = resolve_sign(c_iv, [&] { return exact_c(offset, radius); });
  const bool inside_now = c_sign <= 0;
  const double v2 = relative_velocity.norm2();
  if (v2 <= 0.0 || duration <= 0.0) {
    if (inside_now) return ContactInterval{0.0, duration};
    return std::nullopt;
  }
  // Roots of v2 s^2 + 2 b s + c = 0 with c = |offset|^2 - radius^2.
  const FInterval b_iv = iv_b(offset, relative_velocity);
  const FInterval v2_iv = iv_v2(relative_velocity);
  const int d_sign = resolve_sign(
      b_iv * b_iv - v2_iv * c_iv,
      [&] { return exact_discriminant(offset, relative_velocity, radius); });
  if (d_sign < 0) {
    if (inside_now) return ContactInterval{0.0, duration};  // exactly impossible: c <= 0 forces D >= 0
    return std::nullopt;
  }
  // Overlap of [enter, exit] with [0, w], decided exactly:
  //   exit < 0  iff  b > 0 and c > 0 (both roots negative);
  //   enter > w iff  the vertex is past the window (v2 w + b < 0) and the
  //                  window end is still clear (q(w) > 0).
  if (!inside_now) {
    const int b_sign =
        resolve_sign(b_iv, [&] { return exact_b(offset, relative_velocity); });
    if (b_sign > 0) return std::nullopt;  // c > 0 here, so the disk is behind us
  }
  const FInterval w = FInterval::point(duration);
  const int vertex_sign =
      resolve_sign(v2_iv * w + b_iv,
                   [&] { return exact_vertex_margin(offset, relative_velocity, duration); });
  if (vertex_sign < 0) {
    const int qw_sign = resolve_sign(
        (v2_iv * w + FInterval::point(2.0) * b_iv) * w + c_iv,
        [&] { return exact_q_at(offset, relative_velocity, radius, duration); });
    if (qw_sign > 0) return std::nullopt;
  }
  // Overlap certified; endpoints are the same double roots as before,
  // clamped into the certified window.
  const double b = offset.dot(relative_velocity);
  const double discriminant =
      b * b - v2 * (offset.norm2() - radius * radius);
  const double sqrt_d = std::sqrt(std::max(discriminant, 0.0));
  const double enter = (-b - sqrt_d) / v2;
  const double exit = (-b + sqrt_d) / v2;
  double lo = std::clamp(enter, 0.0, duration);
  double hi = std::clamp(exit, 0.0, duration);
  if (lo > hi) lo = hi;  // round-off in a certified-overlap corner
  return ContactInterval{lo, hi};
}

}  // namespace aurv::geom
