// The canonical line of an instance (Definition 2.1 of the paper):
//
//   * if phi = 0: the line parallel to the x-axes of both agents and
//     equidistant from their origins;
//   * otherwise: the line parallel to the bisectrix of the angle between the
//     agents' x-axes and equidistant from their origins.
//
// In agent A's (absolute) coordinates this is the line of inclination phi/2
// through the midpoint of the two starting positions. The chi = -1
// feasibility clause of Theorem 3.1 is phrased in terms of the distance
// between the orthogonal projections of the two origins onto this line.
#pragma once

#include "geom/line.hpp"
#include "geom/vec2.hpp"

namespace aurv::geom {

/// Canonical line for agent B starting at `b_start` with x-axis rotated by
/// `phi` (radians, in [0, 2*pi)) relative to agent A, whose origin is (0,0).
[[nodiscard]] Line canonical_line(Vec2 b_start, double phi);

/// dist(proj_A, proj_B): separation of the two origins' projections onto the
/// canonical line. For phi = 0 this is |projection of b_start on the x-axis|.
[[nodiscard]] double projection_distance(Vec2 b_start, double phi);

}  // namespace aurv::geom
