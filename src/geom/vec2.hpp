// Plain 2-D double vector. Geometry in this library is floating point:
// headings involve cos/sin of k*pi/2^i and of the arbitrary instance angle
// phi, which are irrational in general. Exactness lives in the *time*
// dimension (numeric::Rational); space is double with documented tolerances.
#pragma once

#include <cmath>

namespace aurv::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(double s, Vec2 v) { return {s * v.x, s * v.y}; }
  friend constexpr Vec2 operator*(Vec2 v, double s) { return {s * v.x, s * v.y}; }
  friend constexpr Vec2 operator-(Vec2 v) { return {-v.x, -v.y}; }
  constexpr Vec2& operator+=(Vec2 other) {
    x += other.x;
    y += other.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 other) {
    x -= other.x;
    y -= other.y;
    return *this;
  }
  friend constexpr bool operator==(Vec2 a, Vec2 b) = default;

  [[nodiscard]] constexpr double dot(Vec2 other) const { return x * other.x + y * other.y; }
  /// z-component of the 3-D cross product; >0 iff `other` is counterclockwise
  /// from *this.
  [[nodiscard]] constexpr double cross(Vec2 other) const { return x * other.y - y * other.x; }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  /// Counterclockwise rotation by 90 degrees.
  [[nodiscard]] constexpr Vec2 perp() const { return {-y, x}; }
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return n == 0.0 ? Vec2{} : Vec2{x / n, y / n};
  }
};

[[nodiscard]] inline double dist(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Unit vector at angle `radians` from the positive x-axis (counterclockwise).
[[nodiscard]] inline Vec2 unit_vector(double radians) {
  return {std::cos(radians), std::sin(radians)};
}

}  // namespace aurv::geom
