#include "geom/similarity.hpp"

#include <cmath>

#include "geom/angle.hpp"
#include "support/check.hpp"

namespace aurv::geom {

Similarity::Similarity(Vec2 translation, double rotation, int chirality, double scale)
    : translation_(translation),
      rotation_(normalize_angle(rotation)),
      chirality_(chirality),
      scale_(scale) {
  AURV_CHECK_MSG(chirality == 1 || chirality == -1, "chirality must be +1 or -1");
  AURV_CHECK_MSG(scale > 0.0, "scale must be positive");
}

double Similarity::a() const noexcept { return scale_ * std::cos(rotation_); }
double Similarity::b() const noexcept { return scale_ * std::sin(rotation_); }
double Similarity::c() const noexcept { return -scale_ * std::sin(rotation_) * chirality_; }
double Similarity::d() const noexcept { return scale_ * std::cos(rotation_) * chirality_; }

Vec2 Similarity::apply(Vec2 p) const noexcept { return translation_ + apply_linear(p); }

Vec2 Similarity::apply_linear(Vec2 v) const noexcept {
  return {a() * v.x + c() * v.y, b() * v.x + d() * v.y};
}

double Similarity::apply_heading(double local_radians) const noexcept {
  // R(phi) * diag(1, chi) maps heading beta to phi + chi*beta.
  return normalize_angle(rotation_ + chirality_ * local_radians);
}

Similarity Similarity::inverse() const {
  // (s R C)^{-1} = s^{-1} C R(-phi) = s^{-1} R(chi * -phi ... ) — derive via
  // C R(phi)^{-1} C = R(chi*phi): inverse linear part is s^{-1} * R(-phi*chi') ...
  // Simplest robust route: inverse of L = s R(phi) C is L' = s^{-1} C R(-phi),
  // and C R(-phi) = R(chi * -phi) C (conjugation flips the rotation sign when
  // chi = -1), so L' = s^{-1} R(-chi*phi... ). Concretely:
  //   chi = +1: L' = s^{-1} R(-phi) C           (rotation -phi, chirality +1)
  //   chi = -1: C R(-phi) = R(+phi) C, so L' = s^{-1} R(phi) C (rotation phi).
  const double inv_rotation = chirality_ == 1 ? -rotation_ : rotation_;
  Similarity result({}, inv_rotation, chirality_, 1.0 / scale_);
  result.translation_ = -result.apply_linear(translation_);
  return result;
}

Similarity Similarity::compose(const Similarity& inner) const {
  // Linear parts: L_out = L_this * L_inner. For L = s R(phi) C:
  //   s R(p1) C1 s2 R(p2) C2 = s*s2 R(p1 + chi1*p2) C1 C2.
  Similarity result({}, rotation_ + chirality_ * inner.rotation_,
                    chirality_ * inner.chirality_, scale_ * inner.scale_);
  result.translation_ = apply(inner.translation_);
  return result;
}

double Similarity::fixed_point_determinant() const noexcept {
  const double m00 = 1.0 - a();
  const double m01 = -c();
  const double m10 = -b();
  const double m11 = 1.0 - d();
  return m00 * m11 - m01 * m10;
}

std::optional<Vec2> Similarity::fixed_point(double eps) const noexcept {
  const double det = fixed_point_determinant();
  if (std::fabs(det) <= eps) return std::nullopt;
  // Solve (I - L) p = T by Cramer's rule.
  const double m00 = 1.0 - a();
  const double m01 = -c();
  const double m10 = -b();
  const double m11 = 1.0 - d();
  const Vec2 t = translation_;
  return Vec2{(t.x * m11 - t.y * m01) / det, (m00 * t.y - m10 * t.x) / det};
}

}  // namespace aurv::geom
