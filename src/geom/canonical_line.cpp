#include "geom/canonical_line.hpp"

#include <cmath>

#include "geom/angle.hpp"

namespace aurv::geom {

Line canonical_line(Vec2 b_start, double phi) {
  // The bisectrix of the angle between direction 0 (A's x-axis) and
  // direction phi (B's x-axis) has inclination phi/2; for phi = 0 the
  // definition's first case gives inclination 0 = phi/2 as well, so one
  // formula covers both cases of Definition 2.1.
  const Vec2 midpoint = 0.5 * b_start;
  return Line::through_at_angle(midpoint, normalize_angle(phi) / 2.0);
}

double projection_distance(Vec2 b_start, double phi) {
  const Line line = canonical_line(b_start, phi);
  return std::fabs(line.coordinate(b_start) - line.coordinate(Vec2{0.0, 0.0}));
}

}  // namespace aurv::geom
