// Angle bookkeeping helpers.
//
// The paper's algorithms only ever turn by rational multiples of pi
// (directions N/S/E/W inside rotated systems Rot(k*pi/2^i)), while the
// instance parameter phi is an arbitrary real. We therefore keep headings
// as doubles but provide helpers that make the dyadic-angle arithmetic
// well-conditioned (building k*pi/2^i from the integers k and i instead of
// accumulating increments).
#pragma once

#include <cstdint>

namespace aurv::geom {

inline constexpr double kPi = 3.14159265358979323846264338327950288;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Normalizes an angle to [0, 2*pi).
[[nodiscard]] double normalize_angle(double radians) noexcept;

/// Normalizes an angle to (-pi, pi].
[[nodiscard]] double normalize_angle_signed(double radians) noexcept;

/// k * pi / 2^i, computed directly from the integers (no drift).
[[nodiscard]] double dyadic_angle(std::int64_t k, std::uint64_t i) noexcept;

/// Smallest unoriented angle between two line *directions* (result in
/// [0, pi/2]); this is the paper's "angle between two lines".
[[nodiscard]] double line_angle_between(double dir_a, double dir_b) noexcept;

/// Smallest unoriented angle between two *rays* (result in [0, pi]).
[[nodiscard]] double ray_angle_between(double dir_a, double dir_b) noexcept;

}  // namespace aurv::geom
