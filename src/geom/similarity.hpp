// Orientation-aware similarity transform of the plane:
//
//   p  |->  translation + scale * R(rotation) * diag(1, chirality) * p
//
// This is exactly the map from agent B's private coordinate system to the
// absolute system (agent A's): translation = B's start (x, y), rotation =
// phi, chirality = chi, scale = B's length unit tau*v. The fixed point of
// this map, when it exists, is the meeting point the lock-step analysis of
// our CGKK substitute converges to (see DESIGN.md section 2).
#pragma once

#include <optional>

#include "geom/vec2.hpp"

namespace aurv::geom {

class Similarity {
 public:
  /// Identity transform.
  Similarity() = default;

  /// `scale` must be positive; `chirality` must be +1 or -1 (checked).
  Similarity(Vec2 translation, double rotation, int chirality, double scale);

  [[nodiscard]] Vec2 translation() const noexcept { return translation_; }
  [[nodiscard]] double rotation() const noexcept { return rotation_; }
  [[nodiscard]] int chirality() const noexcept { return chirality_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }

  /// Applies the full affine map.
  [[nodiscard]] Vec2 apply(Vec2 p) const noexcept;

  /// Applies only the linear part (no translation) — maps local
  /// displacement vectors to absolute displacement vectors.
  [[nodiscard]] Vec2 apply_linear(Vec2 v) const noexcept;

  /// Maps a local heading angle to the absolute heading of the image ray.
  [[nodiscard]] double apply_heading(double local_radians) const noexcept;

  [[nodiscard]] Similarity inverse() const;

  /// Composition: (*this) after `inner`, i.e. apply(inner.apply(p)).
  [[nodiscard]] Similarity compose(const Similarity& inner) const;

  /// Determinant of (I - L) where L is the linear part. Zero iff the map
  /// p -> L p + T has no unique fixed point; for L = s * R(phi) * diag(1,chi)
  /// this vanishes exactly when s = 1 and (phi = 0 (chi=+1) or any phi
  /// (chi=-1, eigenvalue +1 along the mirror axis)).
  [[nodiscard]] double fixed_point_determinant() const noexcept;

  /// Unique fixed point of p -> apply(p), if (I - L) is invertible with
  /// determinant magnitude above `eps`.
  [[nodiscard]] std::optional<Vec2> fixed_point(double eps = 1e-12) const noexcept;

 private:
  // Column-major linear part: [a c; b d] applied as (a x + c y, b x + d y).
  [[nodiscard]] double a() const noexcept;
  [[nodiscard]] double b() const noexcept;
  [[nodiscard]] double c() const noexcept;
  [[nodiscard]] double d() const noexcept;

  Vec2 translation_{};
  double rotation_ = 0.0;
  int chirality_ = 1;
  double scale_ = 1.0;
};

}  // namespace aurv::geom
