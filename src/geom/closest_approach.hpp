// Closest approach of two points in uniform linear motion — the geometric
// kernel of the rendezvous simulator. Between two consecutive instruction
// breakpoints both agents move with constant velocity, so the squared
// inter-agent distance is a quadratic polynomial of time and first contact
// with the visibility disk is a quadratic root: no time-stepping, which is
// what makes the paper's 2^(15 i^2)-long waits simulable.
#pragma once

#include <optional>

#include "geom/vec2.hpp"

namespace aurv::geom {

struct ApproachResult {
  double min_distance = 0.0;  ///< minimum distance over the window
  double at = 0.0;            ///< window-relative time of the minimum, in [0, duration]
};

/// Minimum over s in [0, duration] of |offset + s * relative_velocity|.
/// `offset` is (position of P - position of Q) at window start and
/// `relative_velocity` is (velocity of P - velocity of Q).
[[nodiscard]] ApproachResult closest_approach(Vec2 offset, Vec2 relative_velocity,
                                              double duration) noexcept;

/// First s in [0, duration] with |offset + s * relative_velocity| <= radius,
/// or nullopt if the distance stays above `radius` throughout the window.
/// Exact at s = 0 (already in contact reports 0).
[[nodiscard]] std::optional<double> first_contact(Vec2 offset, Vec2 relative_velocity,
                                                  double radius, double duration) noexcept;

/// The closed sub-interval of [0, duration] during which
/// |offset + s * relative_velocity| <= radius, or nullopt if the distance
/// stays above radius throughout. Used by the gathering engine, which needs
/// *simultaneous* visibility intervals of many pairs.
struct ContactInterval {
  double enter = 0.0;
  double exit = 0.0;
};
[[nodiscard]] std::optional<ContactInterval> contact_interval(Vec2 offset,
                                                              Vec2 relative_velocity,
                                                              double radius,
                                                              double duration) noexcept;

}  // namespace aurv::geom
