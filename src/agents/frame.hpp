// AgentFrame: everything needed to execute a mobility program written in an
// agent's private coordinates/units as motion in absolute coordinates/time.
//
//   * pose          — local point -> absolute point (similarity transform)
//   * time_unit     — one local time unit, in absolute time (exact rational)
//   * wake_time     — absolute time at which the agent starts its program
//   * speed         — absolute distance per absolute time unit while moving
//
// For agent A these are identity/1/0/1 by the paper's convention; for agent
// B they derive from the instance tuple. One local length unit equals
// time_unit * speed absolute units (the distance travelled during one local
// time unit), so a go(d) instruction lasts d local time units for *every*
// agent — a fact the paper's type-4 analysis relies on.
#pragma once

#include "agents/instance.hpp"
#include "geom/similarity.hpp"
#include "numeric/rational.hpp"

namespace aurv::agents {

enum class AgentId { A, B };

class AgentFrame {
 public:
  AgentFrame(geom::Similarity pose, numeric::Rational time_unit, numeric::Rational wake_time,
             double speed);

  /// The frame of agent A (the absolute system) for any instance.
  static AgentFrame for_a(const Instance& instance);
  /// The frame of agent B derived from the instance tuple.
  static AgentFrame for_b(const Instance& instance);
  static AgentFrame for_agent(const Instance& instance, AgentId id);

  [[nodiscard]] const geom::Similarity& pose() const noexcept { return pose_; }
  [[nodiscard]] const numeric::Rational& time_unit() const noexcept { return time_unit_; }
  [[nodiscard]] const numeric::Rational& wake_time() const noexcept { return wake_time_; }
  [[nodiscard]] double speed() const noexcept { return speed_; }

  [[nodiscard]] geom::Vec2 start_position() const noexcept { return pose_.translation(); }

  /// One local length unit in absolute units.
  [[nodiscard]] double length_unit() const noexcept { return time_unit_.to_double() * speed_; }

  /// Absolute time at which `local_elapsed` local time units have passed
  /// since wake-up.
  [[nodiscard]] numeric::Rational absolute_time(const numeric::Rational& local_elapsed) const {
    return wake_time_ + time_unit_ * local_elapsed;
  }

  /// Absolute heading of a ray with the given local heading.
  [[nodiscard]] double absolute_heading(double local_heading) const noexcept {
    return pose_.apply_heading(local_heading);
  }

 private:
  geom::Similarity pose_;
  numeric::Rational time_unit_;
  numeric::Rational wake_time_;
  double speed_;
};

}  // namespace aurv::agents
