#include "agents/sampler.hpp"

#include <algorithm>

#include "geom/angle.hpp"
#include "support/check.hpp"

namespace aurv::agents {

namespace {

using numeric::Rational;

double uniform(std::mt19937_64& rng, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

/// A random exact rational in (lo, hi), quantized to 1/64 so the exact
/// arithmetic stays cheap and the value is reproducible from its string.
Rational rational_in(std::mt19937_64& rng, double lo, double hi) {
  const auto lo64 = static_cast<long long>(lo * 64.0) + 1;
  const auto hi64 = static_cast<long long>(hi * 64.0);
  AURV_CHECK_MSG(lo64 <= hi64, "rational_in: empty range");
  std::uniform_int_distribution<long long> dist(lo64, hi64);
  return Rational::dyadic(dist(rng), 6);
}

/// B start with a prescribed projection distance onto the canonical line of
/// inclination phi/2 and a lateral offset across it.
geom::Vec2 b_with_projection(double phi, double dist_proj, double lateral) {
  const geom::Vec2 along = geom::unit_vector(phi / 2.0);
  return dist_proj * along + lateral * along.perp();
}

}  // namespace

Instance sample_type1(std::mt19937_64& rng, const SamplerRanges& ranges) {
  const double r = uniform(rng, ranges.r_min, ranges.r_max);
  const double phi = uniform(rng, 0.0, geom::kTwoPi);
  // dist >= dist_proj must exceed r or the instance is a trivial overlap.
  const double dist_proj = uniform(rng, std::max(ranges.dist_min, r + 0.2), ranges.dist_max);
  const double lateral = uniform(rng, 0.1, 1.0);
  const geom::Vec2 b = b_with_projection(phi, dist_proj, lateral);
  // t strictly above the boundary dist_proj - r by the margin range; the
  // sampled projection distance of the *constructed* b is dist_proj exactly
  // (the lateral part projects to zero).
  const Rational t = rational_in(rng, std::max(0.0, dist_proj - r) + ranges.margin_min,
                                 std::max(0.0, dist_proj - r) + ranges.margin_max);
  return Instance::synchronous(r, b, phi, t, -1);
}

Instance sample_type2(std::mt19937_64& rng, const SamplerRanges& ranges) {
  const double r = uniform(rng, ranges.r_min, ranges.r_max);
  const double direction = uniform(rng, 0.0, geom::kTwoPi);
  const double dist = uniform(rng, std::max(ranges.dist_min, r + 0.2), ranges.dist_max + r);
  const geom::Vec2 b = dist * geom::unit_vector(direction);
  const Rational t = rational_in(rng, dist - r + ranges.margin_min,
                                 dist - r + ranges.margin_max);
  return Instance::synchronous(r, b, 0.0, t, 1);
}

Instance sample_type3(std::mt19937_64& rng, const SamplerRanges& ranges) {
  const double r = uniform(rng, ranges.r_min, ranges.r_max);
  const double phi = uniform(rng, 0.0, geom::kTwoPi);
  const double dist = uniform(rng, std::max(ranges.dist_min, r + 0.2), ranges.dist_max);
  const geom::Vec2 b = dist * geom::unit_vector(uniform(rng, 0.0, geom::kTwoPi));
  // tau != 1: draw from {1/3 .. 3} \ {1} on the 1/64 grid.
  Rational tau = rational_in(rng, 0.3, 3.0);
  if (tau == Rational(1)) tau = Rational::from_string("3/2");
  const Rational v = rational_in(rng, 0.5, 2.0);
  const Rational t = rational_in(rng, 0.0, 2.0);
  const int chi = std::uniform_int_distribution<int>(0, 1)(rng) == 0 ? 1 : -1;
  return Instance(r, b, phi, tau, v, t, chi);
}

Instance sample_type4(std::mt19937_64& rng, const SamplerRanges& ranges) {
  const double r = uniform(rng, ranges.r_min, ranges.r_max);
  const double dist = uniform(rng, std::max(ranges.dist_min, r + 0.2), ranges.dist_max);
  const geom::Vec2 b = dist * geom::unit_vector(uniform(rng, 0.0, geom::kTwoPi));
  if (std::uniform_int_distribution<int>(0, 1)(rng) == 0) {
    // tau = 1, v != 1 (non-synchronous branch of type 4).
    Rational v = rational_in(rng, 0.4, 2.5);
    if (v == Rational(1)) v = Rational(2);
    const double phi = uniform(rng, 0.0, geom::kTwoPi);
    const int chi = std::uniform_int_distribution<int>(0, 1)(rng) == 0 ? 1 : -1;
    const Rational t = rational_in(rng, 0.0, 1.0);
    return Instance(r, b, phi, 1, v, t, chi);
  }
  // Synchronous, chi = +1, phi != 0 (clause 2a).
  const double phi = uniform(rng, 0.05, geom::kTwoPi - 0.05);
  const Rational t = rational_in(rng, 0.0, 2.0);
  return Instance::synchronous(r, b, phi, t, 1);
}

Instance sample_boundary_s1(std::mt19937_64& rng, const SamplerRanges& ranges) {
  const double r = uniform(rng, ranges.r_min, ranges.r_max);
  const double direction = uniform(rng, 0.0, geom::kTwoPi);
  const double dist = uniform(rng, std::max(ranges.dist_min, r + 0.2), ranges.dist_max + r);
  const geom::Vec2 b = dist * geom::unit_vector(direction);
  // Pin t to the boundary as computed by the classifier's own formula.
  const Instance probe = Instance::synchronous(r, b, 0.0, 0, 1);
  return probe.with_delay(Rational::from_double(probe.initial_distance() - r));
}

Instance sample_boundary_s2(std::mt19937_64& rng, const SamplerRanges& ranges) {
  const double r = uniform(rng, ranges.r_min, ranges.r_max);
  const double phi = uniform(rng, 0.0, geom::kTwoPi);
  const double dist_proj = uniform(rng, std::max(ranges.dist_min, r + 0.2), ranges.dist_max);
  const double lateral = uniform(rng, 0.1, 1.0);
  const geom::Vec2 b = b_with_projection(phi, dist_proj, lateral);
  const Instance probe = Instance::synchronous(r, b, phi, 0, -1);
  return probe.with_delay(Rational::from_double(probe.projection_distance() - r));
}

Instance sample_infeasible(std::mt19937_64& rng, const SamplerRanges& ranges) {
  const double r = uniform(rng, ranges.r_min, ranges.r_max);
  if (std::uniform_int_distribution<int>(0, 1)(rng) == 0) {
    // chi = +1, phi = 0, t < dist - r.
    const double dist = uniform(rng, r + 1.0, ranges.dist_max + r + 1.0);
    const geom::Vec2 b = dist * geom::unit_vector(uniform(rng, 0.0, geom::kTwoPi));
    const Rational t = rational_in(rng, 0.0, dist - r - 0.5);
    return Instance::synchronous(r, b, 0.0, t, 1);
  }
  // chi = -1, t < dist_proj - r.
  const double phi = uniform(rng, 0.0, geom::kTwoPi);
  const double dist_proj = uniform(rng, r + 1.0, ranges.dist_max + r + 1.0);
  const geom::Vec2 b = b_with_projection(phi, dist_proj, uniform(rng, 0.1, 1.0));
  const Rational t = rational_in(rng, 0.0, dist_proj - r - 0.5);
  return Instance::synchronous(r, b, phi, t, -1);
}

}  // namespace aurv::agents
