#include "agents/instance.hpp"

#include <cmath>
#include <sstream>

#include "geom/angle.hpp"
#include "support/check.hpp"

namespace aurv::agents {

Instance::Instance(double r, geom::Vec2 b_start, double phi, numeric::Rational tau,
                   numeric::Rational v, numeric::Rational t, int chi)
    : r_(r),
      b_start_(b_start),
      phi_(geom::normalize_angle(phi)),
      tau_(std::move(tau)),
      v_(std::move(v)),
      t_(std::move(t)),
      chi_(chi) {
  AURV_CHECK_MSG(r_ > 0.0, "visibility radius must be positive");
  AURV_CHECK_MSG(tau_.sign() > 0, "clock rate tau must be positive");
  AURV_CHECK_MSG(v_.sign() > 0, "speed v must be positive");
  AURV_CHECK_MSG(t_.sign() >= 0, "wake-up delay t must be nonnegative");
  AURV_CHECK_MSG(chi_ == 1 || chi_ == -1, "chirality chi must be +1 or -1");
  tau_d_ = tau_.to_double();
  v_d_ = v_.to_double();
  t_d_ = t_.to_double();
}

Instance Instance::synchronous(double r, geom::Vec2 b_start, double phi, numeric::Rational t,
                               int chi) {
  return Instance(r, b_start, phi, 1, 1, std::move(t), chi);
}

bool Instance::is_synchronous() const noexcept {
  return tau_ == numeric::Rational(1) && v_ == numeric::Rational(1);
}

numeric::Rational Instance::b_length_unit() const { return tau_ * v_; }

Instance Instance::halved_radius_zero_delay() const {
  return Instance(r_ / 2.0, b_start_, phi_, tau_, v_, 0, chi_);
}

Instance Instance::with_radius(double new_r) const {
  return Instance(new_r, b_start_, phi_, tau_, v_, t_, chi_);
}

Instance Instance::with_delay(numeric::Rational new_t) const {
  return Instance(r_, b_start_, phi_, tau_, v_, std::move(new_t), chi_);
}

Instance Instance::mirrored() const {
  AURV_CHECK_MSG(t_.is_zero(), "mirrored() requires simultaneous wake-up (t = 0)");
  // B becomes the reference. A's position in B's private system, in B's
  // length units, is the inverse pose applied to the absolute origin.
  const geom::Vec2 a_in_b = b_pose().inverse().apply(geom::Vec2{0.0, 0.0});
  // Rotating B's system counterclockwise *in B's own handedness* by phi'
  // aligns the x-axes: phi' = -phi for chi = +1 (B ccw is absolute ccw),
  // phi' = phi for chi = -1 (B ccw appears cw in absolute terms).
  const double phi_mirror =
      chi_ == 1 ? geom::normalize_angle(-phi_) : phi_;
  // r in B's length units; A's time unit and speed in B's units.
  const double u_b = b_length_unit_d();
  return Instance(r_ / u_b, a_in_b, phi_mirror, tau_.reciprocal(), v_.reciprocal(), 0, chi_);
}

std::string Instance::to_string() const {
  std::ostringstream os;
  os << "Instance(r=" << r_ << ", b=(" << b_start_.x << ", " << b_start_.y << ")"
     << ", phi=" << phi_ << ", tau=" << tau_.to_string() << ", v=" << v_.to_string()
     << ", t=" << t_.to_string() << ", chi=" << (chi_ > 0 ? "+1" : "-1") << ")";
  return os.str();
}

}  // namespace aurv::agents
