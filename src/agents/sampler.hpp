// Structured random instance samplers — one per region of the Theorem 3.1
// characterization. Each sampler draws parameters from documented ranges
// and returns an instance that provably belongs to its region (the
// conformance tests re-classify every sample). Used by the property-test
// grids and the census experiments; deterministic given the engine seed.
#pragma once

#include <random>

#include "agents/instance.hpp"

namespace aurv::agents {

struct SamplerRanges {
  double r_min = 0.5;
  double r_max = 1.5;
  /// Distance scale of B's start (and of projection distances for chi=-1).
  double dist_min = 1.2;
  double dist_max = 4.0;
  /// Margin above the feasibility boundary for types 1/2 (the paper's e).
  double margin_min = 0.25;
  double margin_max = 2.0;
};

/// Synchronous, chi = -1, t > dist(projA,projB) - r.
[[nodiscard]] Instance sample_type1(std::mt19937_64& rng, const SamplerRanges& ranges = {});

/// Synchronous, chi = +1, phi = 0, t > dist - r.
[[nodiscard]] Instance sample_type2(std::mt19937_64& rng, const SamplerRanges& ranges = {});

/// tau != 1 (clock skew), other attributes arbitrary.
[[nodiscard]] Instance sample_type3(std::mt19937_64& rng, const SamplerRanges& ranges = {});

/// tau = 1 and (v != 1, or synchronous with chi = +1 and phi != 0).
[[nodiscard]] Instance sample_type4(std::mt19937_64& rng, const SamplerRanges& ranges = {});

/// Boundary set S1: synchronous, chi = +1, phi = 0, t = dist - r (to double
/// round-off; classify() with the default epsilon recognizes it).
[[nodiscard]] Instance sample_boundary_s1(std::mt19937_64& rng,
                                          const SamplerRanges& ranges = {});

/// Boundary set S2: synchronous, chi = -1, t = dist(projA,projB) - r.
[[nodiscard]] Instance sample_boundary_s2(std::mt19937_64& rng,
                                          const SamplerRanges& ranges = {});

/// Infeasible: synchronous with t strictly below the relevant boundary.
[[nodiscard]] Instance sample_infeasible(std::mt19937_64& rng,
                                         const SamplerRanges& ranges = {});

}  // namespace aurv::agents
