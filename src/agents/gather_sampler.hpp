// Structured random n-agent gathering configurations — the instance side of
// the gathering experiment subsystem (src/gatherx/). Each sampler draws a
// GatherInstance (a visibility radius plus n agents with start positions and
// exact-rational wake-up delays) from documented ranges; like the two-agent
// samplers they are deterministic given the RNG stream, which is what lets
// the census driver regenerate job j's configuration lazily from
// seed_seq{seed, sample} at any thread count.
//
// Four families, one per region of the configuration space TAB-7 probes:
//
//   disk     starts uniform in a disk of radius `spread`, wakes uniform —
//            the unstructured baseline population;
//   cluster  two tight clusters `spread` apart — bimodal geometry, the
//            accretion-chain stress for FirstSight;
//   ring     starts on a circle of radius `spread` with angular jitter —
//            symmetric geometry where AllVisible needs a genuine funnel;
//   spread   adversarial: far-apart colinear starts with wake delays drawn
//            *straddling* the [38] good-configuration boundary
//            (delay = dist - r relative to the earliest agent), so the
//            census maps exactly how predictive the funnel predicate is.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "gather/engine.hpp"

namespace aurv::agents {

struct GatherSamplerRanges {
  /// Agent count, drawn uniformly in [n_min, n_max].
  std::uint32_t n_min = 3;
  std::uint32_t n_max = 5;
  double r_min = 0.5;
  double r_max = 1.5;
  /// Spatial scale: disk radius, cluster separation, ring radius, or
  /// adversarial chain spacing.
  double spread_min = 1.5;
  double spread_max = 4.0;
  /// Wake-up delays land in [0, wake_max] (quantized to the 1/64 grid; the
  /// earliest agent always wakes at 0).
  double wake_max = 8.0;
};

/// One n-agent gathering configuration: the common visibility radius and
/// the agents of the restricted shifted-frames model.
struct GatherInstance {
  double r = 1.0;
  std::vector<gather::GatherAgent> agents;

  [[nodiscard]] std::size_t n() const noexcept { return agents.size(); }
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] GatherInstance sample_gather_disk(std::mt19937_64& rng,
                                                const GatherSamplerRanges& ranges = {});
[[nodiscard]] GatherInstance sample_gather_cluster(std::mt19937_64& rng,
                                                   const GatherSamplerRanges& ranges = {});
[[nodiscard]] GatherInstance sample_gather_ring(std::mt19937_64& rng,
                                                const GatherSamplerRanges& ranges = {});
[[nodiscard]] GatherInstance sample_gather_spread(std::mt19937_64& rng,
                                                  const GatherSamplerRanges& ranges = {});

}  // namespace aurv::agents
