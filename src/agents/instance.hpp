// The instance tuple of the rendezvous problem (Section 1.2 of the paper):
//
//   I = (r, x, y, phi, tau, v, t, chi)
//
// describing agent B relative to agent A, where by convention A is the
// agent woken up first, its coordinate system is the absolute one, its
// clock rate and speed are 1 and its wake-up time is 0:
//
//   r   > 0   visibility radius (absolute length units)
//   (x,y)     B's initial position in A's system
//   phi in [0, 2pi)  rotation between the x-axes
//   tau > 0   B's time unit, in absolute time units      (exact rational)
//   v   > 0   B's speed, in absolute units               (exact rational)
//   t  >= 0   B's wake-up delay, in absolute time units  (exact rational)
//   chi in {+1, -1}   chirality agreement
//
// tau, v and t are exact rationals because event times in the simulator are
// exact; their double views are cached for geometry. B's private length
// unit is tau*v absolute units (it travels for one of its time units at
// speed v).
#pragma once

#include <string>

#include "geom/canonical_line.hpp"
#include "geom/similarity.hpp"
#include "geom/vec2.hpp"
#include "numeric/rational.hpp"

namespace aurv::agents {

class Instance {
 public:
  /// Validates and normalizes the parameters (phi reduced to [0, 2pi)).
  /// Throws std::logic_error (via AURV_CHECK) on invalid input:
  /// r <= 0, tau <= 0, v <= 0, t < 0 or chi not in {+1, -1}.
  Instance(double r, geom::Vec2 b_start, double phi, numeric::Rational tau,
           numeric::Rational v, numeric::Rational t, int chi);

  /// Synchronous instance (tau = v = 1) shorthand.
  static Instance synchronous(double r, geom::Vec2 b_start, double phi, numeric::Rational t,
                              int chi);

  [[nodiscard]] double r() const noexcept { return r_; }
  [[nodiscard]] geom::Vec2 b_start() const noexcept { return b_start_; }
  [[nodiscard]] double phi() const noexcept { return phi_; }
  [[nodiscard]] const numeric::Rational& tau() const noexcept { return tau_; }
  [[nodiscard]] const numeric::Rational& v() const noexcept { return v_; }
  [[nodiscard]] const numeric::Rational& t() const noexcept { return t_; }
  [[nodiscard]] int chi() const noexcept { return chi_; }

  [[nodiscard]] double tau_d() const noexcept { return tau_d_; }
  [[nodiscard]] double v_d() const noexcept { return v_d_; }
  [[nodiscard]] double t_d() const noexcept { return t_d_; }

  /// tau = v = 1 exactly (the paper's "synchronous").
  [[nodiscard]] bool is_synchronous() const noexcept;

  /// B's private length unit in absolute units: tau * v.
  [[nodiscard]] numeric::Rational b_length_unit() const;
  [[nodiscard]] double b_length_unit_d() const noexcept { return tau_d_ * v_d_; }

  /// Euclidean distance between the initial positions.
  [[nodiscard]] double initial_distance() const noexcept { return b_start_.norm(); }

  /// The canonical line of the instance (Definition 2.1).
  [[nodiscard]] geom::Line canonical_line() const { return geom::canonical_line(b_start_, phi_); }

  /// dist(proj_A, proj_B) onto the canonical line.
  [[nodiscard]] double projection_distance() const {
    return geom::projection_distance(b_start_, phi_);
  }

  /// Local-to-absolute map of agent B's coordinate system.
  [[nodiscard]] geom::Similarity b_pose() const {
    return geom::Similarity(b_start_, phi_, chi_, b_length_unit_d());
  }

  /// The paper's h(.) map (Section 3.1.1, type-4 analysis): same instance
  /// with visibility radius halved and wake-up delay zeroed.
  [[nodiscard]] Instance halved_radius_zero_delay() const;

  /// Same instance with a different visibility radius.
  [[nodiscard]] Instance with_radius(double new_r) const;

  /// Same instance with a different wake-up delay.
  [[nodiscard]] Instance with_delay(numeric::Rational new_t) const;

  /// The same physical configuration described from agent B's perspective
  /// (B becomes the reference agent with unit clock/speed). Valid only for
  /// t = 0 (otherwise B is not the first-woken agent and the tuple
  /// convention does not apply); checked.
  [[nodiscard]] Instance mirrored() const;

  [[nodiscard]] std::string to_string() const;

 private:
  double r_;
  geom::Vec2 b_start_;
  double phi_;
  numeric::Rational tau_;
  numeric::Rational v_;
  numeric::Rational t_;
  int chi_;
  double tau_d_;
  double v_d_;
  double t_d_;
};

}  // namespace aurv::agents
