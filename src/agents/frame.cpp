#include "agents/frame.hpp"

#include "support/check.hpp"

namespace aurv::agents {

AgentFrame::AgentFrame(geom::Similarity pose, numeric::Rational time_unit,
                       numeric::Rational wake_time, double speed)
    : pose_(pose),
      time_unit_(std::move(time_unit)),
      wake_time_(std::move(wake_time)),
      speed_(speed) {
  AURV_CHECK_MSG(time_unit_.sign() > 0, "time unit must be positive");
  AURV_CHECK_MSG(wake_time_.sign() >= 0, "wake time must be nonnegative");
  AURV_CHECK_MSG(speed_ > 0.0, "speed must be positive");
}

AgentFrame AgentFrame::for_a(const Instance&) {
  return AgentFrame(geom::Similarity{}, 1, 0, 1.0);
}

AgentFrame AgentFrame::for_b(const Instance& instance) {
  return AgentFrame(instance.b_pose(), instance.tau(), instance.t(), instance.v_d());
}

AgentFrame AgentFrame::for_agent(const Instance& instance, AgentId id) {
  return id == AgentId::A ? for_a(instance) : for_b(instance);
}

}  // namespace aurv::agents
