#include "agents/gather_sampler.hpp"

#include <algorithm>
#include <sstream>

#include "geom/angle.hpp"
#include "support/check.hpp"

namespace aurv::agents {

namespace {

using gather::GatherAgent;
using numeric::Rational;

double uniform(std::mt19937_64& rng, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

/// A random exact rational in [lo, hi], quantized to 1/64 — same grid as the
/// two-agent samplers, so wake-up delays stay cheap exact dyadics.
Rational rational_in(std::mt19937_64& rng, double lo, double hi) {
  const auto lo64 = static_cast<long long>(lo * 64.0);
  const auto hi64 = static_cast<long long>(hi * 64.0);
  AURV_CHECK_MSG(lo64 <= hi64, "gather rational_in: empty range");
  std::uniform_int_distribution<long long> dist(lo64, hi64);
  return Rational::dyadic(dist(rng), 6);
}

std::uint32_t draw_n(std::mt19937_64& rng, const GatherSamplerRanges& ranges) {
  const std::uint32_t lo = std::max<std::uint32_t>(1, ranges.n_min);
  const std::uint32_t hi = std::max(lo, ranges.n_max);
  return std::uniform_int_distribution<std::uint32_t>(lo, hi)(rng);
}

/// The earliest agent wakes at 0 by the model convention (agent A of the
/// two-agent tuple is the first-woken one); shift all wakes accordingly.
void rebase_wakes(std::vector<GatherAgent>& agents) {
  Rational earliest = agents.front().wake;
  for (const GatherAgent& agent : agents) earliest = std::min(earliest, agent.wake);
  for (GatherAgent& agent : agents) agent.wake -= earliest;
}

}  // namespace

std::string GatherInstance::to_string() const {
  std::ostringstream os;
  os << "Gather(r=" << r << ", n=" << agents.size() << ", agents=[";
  for (std::size_t k = 0; k < agents.size(); ++k) {
    if (k != 0) os << ", ";
    os << "(" << agents[k].start.x << ", " << agents[k].start.y << ")@"
       << agents[k].wake.to_string();
  }
  os << "])";
  return os.str();
}

GatherInstance sample_gather_disk(std::mt19937_64& rng, const GatherSamplerRanges& ranges) {
  GatherInstance instance;
  instance.r = uniform(rng, ranges.r_min, ranges.r_max);
  const double radius = uniform(rng, ranges.spread_min, ranges.spread_max);
  const std::uint32_t n = draw_n(rng, ranges);
  for (std::uint32_t k = 0; k < n; ++k) {
    // Uniform in the disk: rejection-free via sqrt-radius.
    const double rho = radius * std::sqrt(uniform(rng, 0.0, 1.0));
    const double theta = uniform(rng, 0.0, geom::kTwoPi);
    instance.agents.push_back(
        {rho * geom::unit_vector(theta), rational_in(rng, 0.0, ranges.wake_max)});
  }
  rebase_wakes(instance.agents);
  return instance;
}

GatherInstance sample_gather_cluster(std::mt19937_64& rng, const GatherSamplerRanges& ranges) {
  GatherInstance instance;
  instance.r = uniform(rng, ranges.r_min, ranges.r_max);
  const double separation = uniform(rng, ranges.spread_min, ranges.spread_max);
  const std::uint32_t n = draw_n(rng, ranges);
  // Two tight clusters `separation` apart; membership alternates so both
  // clusters are populated for every n >= 2.
  const geom::Vec2 centers[2] = {{0.0, 0.0}, {separation, 0.0}};
  const double jitter = 0.25 * instance.r;
  for (std::uint32_t k = 0; k < n; ++k) {
    const geom::Vec2 offset{uniform(rng, -jitter, jitter), uniform(rng, -jitter, jitter)};
    instance.agents.push_back(
        {centers[k % 2] + offset, rational_in(rng, 0.0, ranges.wake_max)});
  }
  rebase_wakes(instance.agents);
  return instance;
}

GatherInstance sample_gather_ring(std::mt19937_64& rng, const GatherSamplerRanges& ranges) {
  GatherInstance instance;
  instance.r = uniform(rng, ranges.r_min, ranges.r_max);
  const double radius = uniform(rng, ranges.spread_min, ranges.spread_max);
  const std::uint32_t n = draw_n(rng, ranges);
  const double base = uniform(rng, 0.0, geom::kTwoPi);
  for (std::uint32_t k = 0; k < n; ++k) {
    // Even spacing plus up to a quarter-slot of angular jitter: symmetric
    // but never *exactly* symmetric, so equal-wake degeneracies come from
    // the wake draw, not the geometry.
    const double slot = geom::kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    const double theta = base + slot + uniform(rng, -0.25, 0.25) * geom::kTwoPi /
                                           (4.0 * static_cast<double>(n));
    instance.agents.push_back(
        {radius * geom::unit_vector(theta), rational_in(rng, 0.0, ranges.wake_max)});
  }
  rebase_wakes(instance.agents);
  return instance;
}

GatherInstance sample_gather_spread(std::mt19937_64& rng, const GatherSamplerRanges& ranges) {
  GatherInstance instance;
  instance.r = uniform(rng, ranges.r_min, ranges.r_max);
  const double spacing = uniform(rng, ranges.spread_min, ranges.spread_max);
  const std::uint32_t n = draw_n(rng, ranges);
  // Colinear chain with the earliest agent at the origin; agent k sits
  // k * spacing away with a small lateral wobble, and its wake delay is
  // drawn in a band *straddling* the funnel boundary delay = dist - r, so
  // roughly half the draws violate the [38] good-configuration condition.
  instance.agents.push_back({geom::Vec2{0.0, 0.0}, Rational(0)});
  for (std::uint32_t k = 1; k < n; ++k) {
    const geom::Vec2 start{static_cast<double>(k) * spacing, uniform(rng, -0.3, 0.3)};
    const double boundary = std::max(0.0, geom::dist(start, {0.0, 0.0}) - instance.r);
    const double band = std::max(1.0, 0.5 * boundary);
    instance.agents.push_back(
        {start, rational_in(rng, std::max(0.0, boundary - band), boundary + band)});
  }
  return instance;
}

}  // namespace aurv::agents
