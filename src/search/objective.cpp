#include "search/objective.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "numeric/filter.hpp"
#include "support/check.hpp"

namespace aurv::search {

using numeric::FInterval;
using numeric::Rational;
using support::Json;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Outward slop for the *transcendental* legs of a bound (hypot, cos, sin)
/// and for core::classify's plain-double slack evaluation, neither of which
/// the outward-rounded FInterval arithmetic can certify. Rational-derived
/// endpoints and the +/-/* combining them need no slop — FInterval rounds
/// those outward by construction. The absolute floor covers tiny
/// magnitudes; the relative term keeps the margin conservative at large
/// coordinates where a fixed absolute slop would be overtaken by round-off.
constexpr double kBoundSlop = 1e-9;
constexpr double kRelBoundSlop = 1e-12;
double bound_slop(double magnitude) { return kBoundSlop + kRelBoundSlop * std::fabs(magnitude); }

struct ParamDefault {
  const char* name;
  long long num;
  long long den;
};

const std::vector<ParamDefault>& defaults_of(SearchSpace::Family family) {
  // r_a/r_b carry a 0 sentinel: "not specified here" — the effective value
  // then falls back to the engine config override or the instance r
  // (SearchSpace::specifies distinguishes the cases; the defaults below are
  // never fed to the engine).
  static const std::vector<ParamDefault> tuple = {
      {"r", 1, 1}, {"x", 2, 1}, {"y", 0, 1}, {"phi", 0, 1},
      {"tau", 1, 1}, {"v", 1, 1}, {"t", 0, 1}, {"r_a", 0, 1}, {"r_b", 0, 1}};
  static const std::vector<ParamDefault> s1 = {{"theta", 0, 1}, {"r", 1, 1}, {"t", 2, 1}};
  static const std::vector<ParamDefault> s2 = {
      {"half_phi", 0, 1}, {"lateral", 7, 5}, {"r", 1, 1}, {"t", 2, 1}};
  static const std::vector<ParamDefault> gather = {
      {"n", 3, 1}, {"r", 1, 1}, {"spread", 2, 1}, {"delay", 2, 1}, {"policy", 1, 1}};
  switch (family) {
    case SearchSpace::Family::Tuple: return tuple;
    case SearchSpace::Family::BoundaryS1: return s1;
    case SearchSpace::Family::BoundaryS2: return s2;
    case SearchSpace::Family::GatherTuple: return gather;
  }
  throw std::logic_error("SearchSpace: unknown family");
}

/// Sound double enclosure of an exact rational interval: each endpoint is
/// outward-rounded by FInterval::enclose, so the hull contains every value
/// of [lo, hi] with no ad-hoc slop.
FInterval view(const Interval& interval) {
  return hull(FInterval::enclose(interval.lo), FInterval::enclose(interval.hi));
}

}  // namespace

// ------------------------------------------------------------ SearchSpace --

const std::vector<std::string>& SearchSpace::param_names(Family family) {
  static const std::vector<std::string> tuple = {"r",   "x", "y", "phi", "tau",
                                                 "v",   "t", "r_a", "r_b"};
  static const std::vector<std::string> s1 = {"theta", "r", "t"};
  static const std::vector<std::string> s2 = {"half_phi", "lateral", "r", "t"};
  static const std::vector<std::string> gather = {"n", "r", "spread", "delay", "policy"};
  switch (family) {
    case Family::Tuple: return tuple;
    case Family::BoundaryS1: return s1;
    case Family::BoundaryS2: return s2;
    case Family::GatherTuple: return gather;
  }
  throw std::logic_error("SearchSpace: unknown family");
}

std::string SearchSpace::to_string(Family family) {
  switch (family) {
    case Family::Tuple: return "tuple";
    case Family::BoundaryS1: return "boundary-s1";
    case Family::BoundaryS2: return "boundary-s2";
    case Family::GatherTuple: return "gather-tuple";
  }
  throw std::logic_error("SearchSpace: unknown family");
}

SearchSpace::Family SearchSpace::family_from_string(const std::string& name) {
  if (name == "tuple") return Family::Tuple;
  if (name == "boundary-s1") return Family::BoundaryS1;
  if (name == "boundary-s2") return Family::BoundaryS2;
  if (name == "gather-tuple") return Family::GatherTuple;
  throw std::invalid_argument("search space: unknown family \"" + name +
                              "\"; known: tuple, boundary-s1, boundary-s2, gather-tuple");
}

void SearchSpace::validate() const {
  if (chi != 1 && chi != -1)
    throw std::invalid_argument("search space: chi must be +1 or -1");
  if (dim_names.empty())
    throw std::invalid_argument("search space: at least one searched dimension required");
  const std::vector<std::string>& legal = param_names(family);
  const auto known = [&](const std::string& name) {
    return std::find(legal.begin(), legal.end(), name) != legal.end();
  };
  for (std::size_t k = 0; k < dim_names.size(); ++k) {
    if (!known(dim_names[k]))
      throw std::invalid_argument("search space: unknown dimension \"" + dim_names[k] +
                                  "\" for family " + to_string(family));
    for (std::size_t j = k + 1; j < dim_names.size(); ++j)
      if (dim_names[k] == dim_names[j])
        throw std::invalid_argument("search space: duplicate dimension \"" + dim_names[k] +
                                    "\"");
  }
  for (const auto& [name, value] : fixed) {
    (void)value;
    if (!known(name))
      throw std::invalid_argument("search space: unknown fixed parameter \"" + name +
                                  "\" for family " + to_string(family));
    if (std::find(dim_names.begin(), dim_names.end(), name) != dim_names.end())
      throw std::invalid_argument("search space: \"" + name +
                                  "\" is both searched and fixed");
  }
}

Rational SearchSpace::param(const std::string& name,
                            const std::vector<Rational>& point) const {
  const auto dim = std::find(dim_names.begin(), dim_names.end(), name);
  if (dim != dim_names.end()) {
    const auto index = static_cast<std::size_t>(dim - dim_names.begin());
    AURV_CHECK_MSG(index < point.size(), "SearchSpace::param: point/dimension mismatch");
    return point[index];
  }
  for (const auto& [fixed_name, value] : fixed)
    if (fixed_name == name) return value;
  for (const ParamDefault& entry : defaults_of(family))
    if (name == entry.name) return Rational(numeric::BigInt(entry.num), numeric::BigInt(entry.den));
  throw std::invalid_argument("search space: no such parameter \"" + name + "\"");
}

bool SearchSpace::specifies(const std::string& name) const {
  if (std::find(dim_names.begin(), dim_names.end(), name) != dim_names.end()) return true;
  for (const auto& [fixed_name, value] : fixed) {
    (void)value;
    if (fixed_name == name) return true;
  }
  return false;
}

Interval SearchSpace::param_interval(const std::string& name, const ParamBox& box) const {
  const auto dim = std::find(dim_names.begin(), dim_names.end(), name);
  if (dim != dim_names.end()) {
    const auto index = static_cast<std::size_t>(dim - dim_names.begin());
    AURV_CHECK_MSG(index < box.dim_count(), "SearchSpace::param_interval: box/dimension mismatch");
    return box.dim(index);
  }
  const Rational value = param(name, {});
  return Interval{value, value};
}

namespace {

/// The integer denoted by a gather-tuple n coordinate: its floor, clamped
/// to [1, kMaxGatherAgents]. Exact despite the double hint — the hint is
/// corrected with rational comparisons, so a coordinate sitting on an
/// integer always lands on that integer at any magnitude.
long long gather_agent_count(const Rational& coordinate) {
  long long n = static_cast<long long>(std::floor(coordinate.to_double()));
  n = std::clamp(n, 1ll, SearchSpace::kMaxGatherAgents);
  while (n < SearchSpace::kMaxGatherAgents && Rational(n + 1) <= coordinate) ++n;
  while (n > 1 && Rational(n) > coordinate) --n;
  return n;
}

}  // namespace

agents::GatherInstance SearchSpace::gather_instance_at(const std::vector<Rational>& point) const {
  if (family != Family::GatherTuple)
    throw std::logic_error("SearchSpace: gather_instance_at on a two-agent family");
  agents::GatherInstance instance;
  instance.r = param("r", point).to_double();
  const long long n = gather_agent_count(param("n", point));
  const double spread = param("spread", point).to_double();
  const Rational delay = param("delay", point);
  if (delay.is_negative())
    throw std::invalid_argument(
        "gather-tuple: delay must be nonnegative (wake-up times are nonnegative by model)");
  Rational wake = 0;
  for (long long k = 0; k < n; ++k) {
    instance.agents.push_back(
        {geom::Vec2{static_cast<double>(k) * spread, 0.0}, wake});
    wake += delay;
  }
  return instance;
}

gather::StopPolicy SearchSpace::gather_policy_at(const std::vector<Rational>& point) const {
  if (family != Family::GatherTuple)
    throw std::logic_error("SearchSpace: gather_policy_at on a two-agent family");
  return param("policy", point) < Rational(numeric::BigInt(1), numeric::BigInt(2))
             ? gather::StopPolicy::FirstSight
             : gather::StopPolicy::AllVisible;
}

agents::Instance SearchSpace::instance_at(const std::vector<Rational>& point) const {
  switch (family) {
    case Family::Tuple: {
      const double r = param("r", point).to_double();
      const geom::Vec2 b{param("x", point).to_double(), param("y", point).to_double()};
      const double phi = geom::normalize_angle(param("phi", point).to_double());
      return agents::Instance(r, b, phi, param("tau", point), param("v", point),
                              param("t", point), chi);
    }
    case Family::BoundaryS1: {
      // S1 manifold: t = dist - r by construction (cf. the adversary's
      // construct_s1_counterexample, which picks theta in a direction gap).
      const double r = param("r", point).to_double();
      const Rational t = param("t", point);
      const double theta = param("theta", point).to_double();
      const geom::Vec2 b = (t.to_double() + r) * geom::unit_vector(theta);
      return agents::Instance::synchronous(r, b, /*phi=*/0.0, t, /*chi=*/+1);
    }
    case Family::BoundaryS2: {
      // S2 manifold of Theorem 4.1: t = dist(projA, projB) - r by
      // construction, with the canonical line at inclination half_phi.
      const double r = param("r", point).to_double();
      const Rational t = param("t", point);
      const double half_phi = param("half_phi", point).to_double();
      const double lateral = param("lateral", point).to_double();
      const geom::Vec2 along = geom::unit_vector(half_phi);
      const geom::Vec2 b = (t.to_double() + r) * along + lateral * along.perp();
      const double phi = geom::normalize_angle(2.0 * half_phi);
      return agents::Instance::synchronous(r, b, phi, t, /*chi=*/-1);
    }
    case Family::GatherTuple:
      throw std::logic_error(
          "SearchSpace: instance_at on the gather-tuple family (use gather_instance_at)");
  }
  throw std::logic_error("SearchSpace: unknown family");
}

bool SearchSpace::synchronous() const {
  if (family != Family::Tuple) return true;
  for (const char* name : {"tau", "v"}) {
    if (std::find(dim_names.begin(), dim_names.end(), name) != dim_names.end()) return false;
    if (param(name, {}) != Rational(1)) return false;
  }
  return true;
}

// ------------------------------------------------------------- Evaluation --

Json Evaluation::to_json() const {
  Json json = Json::object();
  json.set("score", Json(score));
  json.set("met", Json(met));
  if (met) json.set("meet_time", Json(meet_time));
  json.set("min_distance", Json(min_distance));
  json.set("clearance", Json(clearance));
  json.set("events", Json(events));
  json.set("reason", Json(stop_reason));
  json.set("instance", Json(instance));
  return json;
}

Evaluation Evaluation::from_json(const Json& json) {
  Evaluation evaluation;
  evaluation.score = json.at("score").as_number();
  evaluation.met = json.at("met").as_bool();
  evaluation.meet_time = json.number_or("meet_time", 0.0);
  evaluation.min_distance = json.at("min_distance").as_number();
  evaluation.clearance = json.at("clearance").as_number();
  evaluation.events = json.at("events").as_uint();
  evaluation.stop_reason = json.at("reason").as_string();
  evaluation.instance = json.at("instance").as_string();
  return evaluation;
}

// -------------------------------------------------------------- objectives --

namespace {

/// Shared oracle plumbing: map point -> instance, simulate, fill the
/// score-independent record fields.
class SimObjective : public Objective {
 public:
  SimObjective(SearchSpace space, AlgorithmResolverFn algorithm, sim::EngineConfig config)
      : space_(std::move(space)), algorithm_(std::move(algorithm)), config_(std::move(config)) {}

  [[nodiscard]] Json descriptor() const override {
    Json space = Json::object();
    space.set("family", Json(SearchSpace::to_string(space_.family)));
    space.set("chi", Json(space_.chi));
    Json dims = Json::array();
    for (const std::string& dim : space_.dim_names) dims.push_back(Json(dim));
    space.set("dims", std::move(dims));
    Json fixed = Json::object();
    for (const auto& [param, value] : space_.fixed) fixed.set(param, Json(value.to_string()));
    space.set("fixed", std::move(fixed));
    Json engine = Json::object();
    engine.set("max_events", Json(config_.max_events));
    engine.set("contact_slack", Json(config_.contact_slack));
    engine.set("horizon", config_.horizon ? Json(config_.horizon->to_string()) : Json());
    engine.set("r_a", config_.r_a ? Json(*config_.r_a) : Json());
    engine.set("r_b", config_.r_b ? Json(*config_.r_b) : Json());
    Json json = Json::object();
    json.set("objective", Json(name()));
    json.set("space", std::move(space));
    json.set("engine", std::move(engine));
    return json;
  }

 protected:
  [[nodiscard]] Evaluation simulate(const std::vector<Rational>& point) const {
    return simulate(space_.instance_at(point), effective_config(point));
  }

  [[nodiscard]] Evaluation simulate(const agents::Instance& instance,
                                    const sim::EngineConfig& config) const {
    const sim::SimResult run = sim::Engine(instance, config).run(algorithm_(instance));
    Evaluation evaluation;
    evaluation.met = run.met;
    evaluation.meet_time = run.meet_time;
    evaluation.min_distance = run.min_distance_seen;
    evaluation.clearance =
        run.min_distance_seen - std::min(config.r_a.value_or(instance.r()),
                                         config.r_b.value_or(instance.r()));
    evaluation.events = run.events;
    evaluation.stop_reason = sim::to_string(run.reason);
    evaluation.instance = instance.to_string();
    return evaluation;
  }

  /// The engine config a point runs under: the objective's config with the
  /// tuple family's searched/pinned r_a / r_b written in (Section 5
  /// distinct radii as search dimensions).
  [[nodiscard]] sim::EngineConfig effective_config(const std::vector<Rational>& point) const {
    sim::EngineConfig config = config_;
    if (space_.family == SearchSpace::Family::Tuple) {
      if (space_.specifies("r_a")) config.r_a = space_.param("r_a", point).to_double();
      if (space_.specifies("r_b")) config.r_b = space_.param("r_b", point).to_double();
    }
    return config;
  }

  /// Interval of one per-agent radius over `box`: the space's r_a/r_b
  /// dimension if searched or pinned there, else the engine config's
  /// override, else the instance radius r.
  [[nodiscard]] FInterval per_agent_radius_interval(const ParamBox& box, const char* which,
                                                    const std::optional<double>& override)
      const {
    if (space_.family == SearchSpace::Family::Tuple && space_.specifies(which))
      return view(space_.param_interval(which, box));
    if (override) return FInterval::point(*override);
    return view(space_.param_interval("r", box));
  }

  /// Interval of the rendezvous radius min(r_a, r_b) over `box` — the
  /// distance at which a run succeeds, and the radius the Theorem 3.1
  /// necessity argument holds for under Section 5 distinct radii (meeting
  /// requires the distance to reach the *smaller* radius).
  [[nodiscard]] FInterval rendezvous_radius_interval(const ParamBox& box) const {
    const FInterval r_a = per_agent_radius_interval(box, "r_a", config_.r_a);
    const FInterval r_b = per_agent_radius_interval(box, "r_b", config_.r_b);
    return min(r_a, r_b);
  }

  /// Interval of the Theorem 3.1 boundary slack t - (d - r) over `box` for
  /// the caller-chosen radius interval `r` (the rendezvous radius for
  /// feasibility pruning, the instance r for the analytic boundary
  /// distance), where d is dist (chi = +1, phi pinned to 0) or
  /// dist(projA, projB) (chi = -1). Valid only for synchronous tuple
  /// spaces. The t/r legs and the t - d + r combination are outward-rounded
  /// FInterval arithmetic (no slop needed); the distance leg d runs through
  /// hypot and, for fixed phi, cos/sin — so d alone is widened by
  /// bound_slop before combining, which also absorbs core::classify's
  /// plain-double slack evaluation on the boundary-distance path.
  [[nodiscard]] FInterval slack_interval(const ParamBox& box, const FInterval& r) const {
    const FInterval t = view(space_.param_interval("t", box));
    const FInterval x = view(space_.param_interval("x", box)).abs();
    const FInterval y = view(space_.param_interval("y", box)).abs();
    FInterval d{0.0, std::hypot(x.hi, y.hi)};  // 0 <= d <= dist_hi always
    const Interval phi = space_.param_interval("phi", box);
    if (space_.chi == -1) {
      if (phi.is_point()) {
        // Fixed phi: dproj = |b . unit(phi/2)| is linear in (x, y), so its
        // range is spanned by the corner values.
        const double half = phi.lo.to_double() / 2.0;
        const double c = std::cos(half);
        const double s = std::sin(half);
        const FInterval raw_x = view(space_.param_interval("x", box));
        const FInterval raw_y = view(space_.param_interval("y", box));
        double lo = kInf;
        double hi = -kInf;
        for (const double bx : {raw_x.lo, raw_x.hi}) {
          for (const double by : {raw_y.lo, raw_y.hi}) {
            const double proj = bx * c + by * s;
            lo = std::min(lo, proj);
            hi = std::max(hi, proj);
          }
        }
        d = FInterval{lo, hi}.abs();
      }
      // Searched phi: keep the conservative d in [0, dist_hi].
    } else {
      d = FInterval{std::hypot(x.lo, y.lo), std::hypot(x.hi, y.hi)};  // dist itself
    }
    // The slop magnitude must include the raw coordinate maxima (x.hi,
    // y.hi), not just d.hi: the fixed-phi projection above can cancel to a
    // tiny d whose round-off error still scales with |b|. t and r join the
    // set because classify re-derives the slack from them in doubles.
    const double slop = bound_slop(std::max(
        {std::fabs(t.lo), std::fabs(t.hi), x.hi, y.hi, d.hi, std::fabs(r.lo), std::fabs(r.hi)}));
    return t - d.widened(slop) + r;
  }

  /// True when the whole box is provably infeasible under Theorem 3.1
  /// (synchronous, boundary slack entirely negative); such boxes can never
  /// produce a meeting. With distinct radii the slack uses min(r_a, r_b):
  /// reaching the smaller radius is necessary for a rendezvous.
  [[nodiscard]] bool provably_infeasible(const ParamBox& box) const {
    if (space_.family != SearchSpace::Family::Tuple) return false;  // manifolds are feasible
    if (!space_.synchronous()) return false;  // tau != 1 or v != 1: always feasible
    if (space_.chi == +1) {
      const Interval phi = space_.param_interval("phi", box);
      if (!phi.is_point() || !phi.lo.is_zero()) return false;  // phi != 0: always feasible
    }
    // The interval is already slop-widened.
    return slack_interval(box, rendezvous_radius_interval(box)).hi < 0.0;
  }

  SearchSpace space_;
  AlgorithmResolverFn algorithm_;
  sim::EngineConfig config_;
};

/// Theorem 3.2's cost side: the slowest-to-meet instance in the space.
class MaxMeetTimeObjective final : public SimObjective {
 public:
  using SimObjective::SimObjective;
  [[nodiscard]] std::string name() const override { return "max-meet-time"; }

  [[nodiscard]] Evaluation evaluate(const std::vector<Rational>& point) const override {
    Evaluation evaluation = simulate(point);
    // Non-meeting runs score a fixed -1 (below every legal meet time, and
    // finite so artifacts stay valid JSON).
    evaluation.score = evaluation.met ? evaluation.meet_time : -1.0;
    return evaluation;
  }

  [[nodiscard]] double bound(const ParamBox& box) const override {
    if (provably_infeasible(box)) return -kInf;
    // Meet times never exceed the horizon; the outward-rounded enclosure's
    // upper endpoint dominates every nearest-rounded meet_time (rounding is
    // monotone), so no slop is needed.
    if (config_.horizon) return FInterval::enclose(*config_.horizon).hi;
    return kInf;
  }
};

/// Theorem 4.1 probe: how little does a fixed algorithm miss by on the
/// exception manifolds? score = -(clearance to rendezvous).
class NearMissObjective final : public SimObjective {
 public:
  using SimObjective::SimObjective;
  [[nodiscard]] std::string name() const override { return "near-miss"; }

  [[nodiscard]] Evaluation evaluate(const std::vector<Rational>& point) const override {
    Evaluation evaluation = simulate(point);
    evaluation.score = -evaluation.clearance;
    return evaluation;
  }

  [[nodiscard]] double bound(const ParamBox& box) const override {
    // Distances are nonnegative, so -(clearance) <= rendezvous radius
    // (min(r_a, r_b) with Section 5 overrides, searched or config-fixed).
    // The interval's endpoints are outward-rounded, so .hi dominates every
    // point's nearest-rounded radius without extra slop.
    return rendezvous_radius_interval(box).hi;
  }
};

/// Theorem 3.1 knife edge: distance to the S1/S2 feasibility boundary,
/// minimized (score = -|slack|). The bound is pure interval arithmetic —
/// boxes provably far from the boundary are pruned without simulating.
class BoundaryDistanceObjective final : public SimObjective {
 public:
  using SimObjective::SimObjective;
  [[nodiscard]] std::string name() const override { return "boundary-distance"; }

  [[nodiscard]] Evaluation evaluate(const std::vector<Rational>& point) const override {
    const agents::Instance instance = space_.instance_at(point);
    // effective_config so searched/pinned r_a/r_b reach the engine here
    // too: the analytic score ignores them, but the certificate's
    // evaluation record must describe the run the spec declares.
    Evaluation evaluation = simulate(instance, effective_config(point));
    const core::Classification c = core::classify(instance);
    evaluation.score = -std::fabs(c.boundary_slack);
    return evaluation;
  }

  [[nodiscard]] double bound(const ParamBox& box) const override {
    if (space_.family != SearchSpace::Family::Tuple) return 0.0;  // manifolds: slack == 0
    // The analytic boundary slack (core::classify) is defined on the
    // instance r, not the per-agent overrides — mirror it exactly.
    const FInterval r = view(space_.param_interval("r", box));
    const FInterval magnitude = slack_interval(box, r).abs();  // already slop-widened
    return -std::max(0.0, magnitude.lo);
  }
};

/// Section 5's open problem, cost side: the n-agent chain on which the
/// common program takes longest to gather. Not a SimObjective — the oracle
/// is the gathering engine, and the common program is resolved *once* (no
/// two-agent instance to dispatch on).
class MaxGatherTimeObjective final : public Objective {
 public:
  MaxGatherTimeObjective(SearchSpace space, sim::AlgorithmFactory factory,
                         sim::EngineConfig config)
      : space_(std::move(space)), factory_(std::move(factory)), config_(std::move(config)) {}

  [[nodiscard]] std::string name() const override { return "max-gather-time"; }

  [[nodiscard]] Evaluation evaluate(const std::vector<Rational>& point) const override {
    const agents::GatherInstance instance = space_.gather_instance_at(point);
    const gather::StopPolicy policy = space_.gather_policy_at(point);
    gather::GatherConfig config;
    config.r = instance.r;
    config.policy = policy;
    config.success_diameter =
        gather::default_success_diameter(policy, instance.n(), instance.r);
    config.contact_slack = config_.contact_slack;
    config.max_events = config_.max_events;
    config.horizon = config_.horizon;
    const gather::GatherResult run =
        gather::GatherEngine(instance.agents, config).run(factory_);
    Evaluation evaluation;
    evaluation.met = run.gathered;
    evaluation.meet_time = run.gather_time;
    evaluation.min_distance = run.min_diameter_seen;
    evaluation.clearance = run.min_diameter_seen - *config.success_diameter;
    evaluation.events = run.events;
    evaluation.stop_reason = gather::to_string(run.reason);
    evaluation.instance = instance.to_string() + " policy=" + gather::to_string(policy);
    // Non-gathering runs score a fixed -1, mirroring max-meet-time.
    evaluation.score = run.gathered ? run.gather_time : -1.0;
    return evaluation;
  }

  [[nodiscard]] double bound(const ParamBox& box) const override {
    if (provably_ungatherable(box)) return -kInf;
    // Same monotone-rounding argument as max-meet-time: the enclosure's
    // upper endpoint dominates every nearest-rounded gather_time.
    if (config_.horizon) return FInterval::enclose(*config_.horizon).hi;
    return kInf;
  }

  [[nodiscard]] Json descriptor() const override {
    Json space = Json::object();
    space.set("family", Json(SearchSpace::to_string(space_.family)));
    Json dims = Json::array();
    for (const std::string& dim : space_.dim_names) dims.push_back(Json(dim));
    space.set("dims", std::move(dims));
    Json fixed = Json::object();
    for (const auto& [param, value] : space_.fixed) fixed.set(param, Json(value.to_string()));
    space.set("fixed", std::move(fixed));
    Json engine = Json::object();
    engine.set("max_events", Json(config_.max_events));
    engine.set("contact_slack", Json(config_.contact_slack));
    engine.set("horizon", config_.horizon ? Json(config_.horizon->to_string()) : Json());
    Json json = Json::object();
    json.set("objective", Json(name()));
    json.set("space", std::move(space));
    json.set("engine", std::move(engine));
    return json;
  }

 private:
  /// The shifted-frames reachability prune. Two agents running one common
  /// program T at unit speed satisfy |T(s - w_i) - T(s - w_j)| <= |w_i - w_j|
  /// (T is 1-Lipschitz), so while nobody has frozen the pair (i, j) of the
  /// staggered chain keeps distance >= |i - j| * (|spread| - |delay|). If
  /// that floor exceeds the sight radius for the adjacent pair, no freeze
  /// ever happens anywhere in the box — and the same floor applied to the
  /// extreme pair keeps the diameter above *both* policies' success
  /// diameters (r, and (n-1) * r + 1e-6), so no point can score.
  [[nodiscard]] bool provably_ungatherable(const ParamBox& box) const {
    const FInterval n = view(space_.param_interval("n", box));
    // A box containing n = 1 points contains trivially-gathered points
    // (score 0); the chain argument needs at least one pair.
    if (gather_agent_count(Rational::from_double(n.lo)) < 2) return false;
    const FInterval spread = view(space_.param_interval("spread", box)).abs();
    const FInterval delay = view(space_.param_interval("delay", box)).abs();
    const FInterval r = view(space_.param_interval("r", box));
    // Downward-rounded floor of |spread| - |delay| over the box.
    const double gap_floor = (spread - delay).lo;
    // Margins: contact_slack + the engine's 1e-9 freeze slop + the 1e-6
    // FirstSight success-diameter slack, all widened by bound_slop.
    const double margin = config_.contact_slack + 1e-6 +
                          bound_slop(std::max({spread.hi, delay.hi, std::fabs(r.hi)}));
    return gap_floor > r.hi + margin;
  }

  SearchSpace space_;
  sim::AlgorithmFactory factory_;
  sim::EngineConfig config_;
};

}  // namespace

const std::vector<std::string>& objective_names() {
  static const std::vector<std::string> names = {"max-meet-time", "near-miss",
                                                 "boundary-distance", "max-gather-time"};
  return names;
}

std::unique_ptr<Objective> make_objective(const std::string& name, SearchSpace space,
                                          AlgorithmResolverFn algorithm,
                                          sim::EngineConfig config) {
  space.validate();
  AURV_CHECK_MSG(static_cast<bool>(algorithm), "make_objective: algorithm resolver required");
  if (name == "max-gather-time") {
    if (space.family != SearchSpace::Family::GatherTuple)
      throw std::invalid_argument(
          "objective max-gather-time: requires the gather-tuple family (two-agent "
          "families have no gathering semantics)");
    if (config.r_a || config.r_b)
      throw std::invalid_argument(
          "objective max-gather-time: engine r_a/r_b overrides do not apply — the "
          "gathering model has one common visibility radius (the space's r)");
    // Gather searches run one *common* program on every agent; the resolver
    // is probed once with a fixed instance (callers pass an instance-blind
    // resolver — exp::resolve_common_algorithm enforces that upstream).
    static const agents::Instance probe =
        agents::Instance::synchronous(1.0, {2.0, 0.0}, 0.0, 1, +1);
    return std::make_unique<MaxGatherTimeObjective>(std::move(space), algorithm(probe),
                                                    std::move(config));
  }
  if (space.family == SearchSpace::Family::GatherTuple)
    throw std::invalid_argument("objective " + name +
                                ": the gather-tuple family pairs only with max-gather-time");
  if (name == "max-meet-time")
    return std::make_unique<MaxMeetTimeObjective>(std::move(space), std::move(algorithm),
                                                  std::move(config));
  if (name == "near-miss")
    return std::make_unique<NearMissObjective>(std::move(space), std::move(algorithm),
                                               std::move(config));
  if (name == "boundary-distance") {
    if (space.family == SearchSpace::Family::Tuple) {
      if (!space.synchronous())
        throw std::invalid_argument(
            "objective boundary-distance: requires a synchronous space (tau = v = 1); "
            "non-synchronous instances have no feasibility boundary");
      if (space.chi == +1) {
        const bool phi_searched = std::find(space.dim_names.begin(), space.dim_names.end(),
                                            "phi") != space.dim_names.end();
        if (phi_searched || !space.param("phi", {}).is_zero())
          throw std::invalid_argument(
              "objective boundary-distance: chi = +1 requires phi fixed to 0 (the S1 "
              "boundary); chi = +1 with phi != 0 is always feasible");
      }
    }
    return std::make_unique<BoundaryDistanceObjective>(std::move(space), std::move(algorithm),
                                                       std::move(config));
  }
  std::string message = "unknown objective \"" + name + "\"; known: ";
  for (std::size_t k = 0; k < objective_names().size(); ++k) {
    if (k != 0) message += ", ";
    message += objective_names()[k];
  }
  throw std::invalid_argument(message);
}

}  // namespace aurv::search
