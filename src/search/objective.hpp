// Pluggable search objectives — the quantities the branch-and-bound hunts
// for on the adversary's side of the paper, each tied to the theorem it
// probes:
//
//   max-meet-time      Theorem 3.2's cost side: the instance in the box on
//                      which the chosen algorithm takes *longest* to meet.
//                      Boxes whose instances are provably infeasible under
//                      the Theorem 3.1 characterization (interval slack
//                      entirely below the boundary) can never meet and are
//                      pruned outright; the engine horizon caps the score
//                      of everything else.
//
//   near-miss          Theorem 4.1 / Claim 4.1: on the S1/S2 boundary
//                      manifolds, rendezvous requires a trajectory segment
//                      aimed *exactly* right, so a fixed algorithm misses
//                      almost everywhere — but by how little? The score is
//                      r - min_distance_seen (minus the clearance to
//                      rendezvous), so maximizing it finds the
//                      configuration where the algorithm comes closest to
//                      defeating the adversary. Bounded by max(r) over the
//                      box, since distances are nonnegative.
//
//   boundary-distance  Theorem 3.1's knife edge: minimize the analytic
//                      |t - (dist - r)| (S1 side) or |t - (distproj - r)|
//                      (S2 side) — how close a box can sit to the
//                      feasibility boundary. The bound is interval
//                      arithmetic on the same expression, which prunes
//                      boxes provably far from the boundary without a
//                      single simulation.
//
//   max-gather-time    Section 5's open problem, cost side: the n-agent
//                      staggered-chain configuration (gather-tuple family)
//                      on which the common program takes longest to gather.
//                      The prune is the shifted-frames reachability bound:
//                      two agents running one program T at unit speed keep
//                      |gap| >= dist - |wake difference| as long as neither
//                      has frozen, so a box whose chain provably cannot
//                      shrink below the success diameter (under either
//                      reachable stop policy) scores -infinity without a
//                      single simulation.
//
// Every objective evaluates a parameter point by mapping it to an instance
// (SearchSpace below) and running the simulation engine as the oracle; the
// box-level bound must only *over*-estimate the best achievable score, and
// must be cheap — it runs once per open box.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "agents/gather_sampler.hpp"
#include "agents/instance.hpp"
#include "gather/engine.hpp"
#include "search/box.hpp"
#include "sim/engine.hpp"
#include "support/json.hpp"

namespace aurv::search {

/// Maps a search-space point (one rational per searched dimension) to the
/// instance it denotes. Four parameterizations ("families"):
///
///   tuple        dimensions are instance-tuple fields directly; any of
///                {r, x, y, phi, tau, v, t, r_a, r_b} may be searched or
///                fixed (defaults r=1, x=2, y=0, phi=0, tau=1, v=1, t=0;
///                r_a/r_b default to "inherit" — the engine config's
///                override if set, else the instance r), and chi is fixed
///                per spec. Searching r_a/r_b opens the Section 5
///                distinct-radii axis; the feasibility prune then uses
///                min(r_a, r_b).
///   boundary-s1  the S1 exception manifold: dimensions {theta, r, t};
///                B starts at (t + r) * unit(theta), phi = 0, chi = +1,
///                synchronous — every point satisfies t = dist - r.
///   boundary-s2  the S2 manifold of Theorem 4.1: dimensions
///                {half_phi, lateral, r, t}; B starts at
///                (t + r) * unit(half_phi) + lateral * unit(half_phi)^perp,
///                phi = 2 * half_phi, chi = -1, synchronous — every point
///                satisfies t = dist(projA, projB) - r, exactly the
///                construction of core::construct_s2_counterexample.
///   gather-tuple n-agent gathering chains (Section 5 open problem):
///                dimensions {n, r, spread, delay, policy} with defaults
///                n=3, r=1, spread=2, delay=2, policy=1. A point denotes
///                the staggered chain with agent k at (k * spread, 0)
///                waking at k * delay (exact rational wakes) under common
///                visibility radius r; n is the integer part of the n
///                coordinate clamped to [1, 64], and policy < 1/2 means
///                FirstSight, >= 1/2 AllVisible. Points map to
///                agents::GatherInstance via gather_instance_at — the
///                two-agent instance_at throws for this family.
class SearchSpace {
 public:
  enum class Family : std::uint8_t { Tuple, BoundaryS1, BoundaryS2, GatherTuple };

  /// Agent-count cap of the gather-tuple family (keeps a searched n
  /// dimension from denoting quadratic-cost monsters).
  static constexpr long long kMaxGatherAgents = 64;

  Family family = Family::Tuple;
  int chi = +1;  ///< tuple family only; boundary families pin it

  /// Searched dimension names, in box-dimension order. Must be a subset of
  /// param_names(family), without duplicates (validated by validate()).
  std::vector<std::string> dim_names;
  /// Fixed values for non-searched parameters (exact rationals).
  std::vector<std::pair<std::string, numeric::Rational>> fixed;

  /// The legal parameter names of a family, in presentation order.
  [[nodiscard]] static const std::vector<std::string>& param_names(Family family);
  [[nodiscard]] static std::string to_string(Family family);
  [[nodiscard]] static Family family_from_string(const std::string& name);

  /// Throws std::invalid_argument on unknown/duplicate/overlapping names or
  /// chi outside {+1, -1}.
  void validate() const;

  /// The value of parameter `name` at `point`: the searched coordinate if
  /// `name` is a dimension, the fixed override otherwise, the family
  /// default else.
  [[nodiscard]] numeric::Rational param(const std::string& name,
                                        const std::vector<numeric::Rational>& point) const;

  /// Interval of parameter `name` over `box` (a point interval for fixed
  /// parameters) — the raw material of objective bounds.
  [[nodiscard]] Interval param_interval(const std::string& name, const ParamBox& box) const;

  /// True when `name` is given a value by this space (searched dimension
  /// or fixed override) rather than falling back to the family default —
  /// how the tuple family distinguishes "r_a searched/pinned here" from
  /// "r_a inherited from the engine config".
  [[nodiscard]] bool specifies(const std::string& name) const;

  /// The two-agent instance denoted by `point`; throws std::logic_error
  /// for the gather-tuple family (use gather_instance_at).
  [[nodiscard]] agents::Instance instance_at(const std::vector<numeric::Rational>& point) const;

  /// The n-agent chain denoted by `point` (gather-tuple family only;
  /// throws std::logic_error otherwise) and its stop policy.
  [[nodiscard]] agents::GatherInstance gather_instance_at(
      const std::vector<numeric::Rational>& point) const;
  [[nodiscard]] gather::StopPolicy gather_policy_at(
      const std::vector<numeric::Rational>& point) const;

  /// True when tau and v are pinned to 1 over the whole space (the
  /// synchronous families the boundary analysis applies to; the
  /// gather-tuple family is synchronous by model definition).
  [[nodiscard]] bool synchronous() const;
};

/// What the oracle observed at one point; `score` is always oriented so the
/// search maximizes it (minimizing objectives negate internally).
struct Evaluation {
  double score = 0.0;
  bool met = false;
  double meet_time = 0.0;
  double min_distance = 0.0;
  /// min_distance - rendezvous radius: positive = the run missed by this
  /// much, ~0 = contact.
  double clearance = 0.0;
  std::uint64_t events = 0;
  std::string stop_reason;
  std::string instance;  ///< instance.to_string() of the evaluated point

  /// Deterministic record used by incumbent logs and the certificate.
  [[nodiscard]] support::Json to_json() const;
  [[nodiscard]] static Evaluation from_json(const support::Json& json);
};

/// A search objective: point oracle + box bound. Implementations must be
/// deterministic and safe to call concurrently (the wave executor evaluates
/// several boxes in parallel).
class Objective {
 public:
  virtual ~Objective() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Simulates the instance at `point` and scores it.
  [[nodiscard]] virtual Evaluation evaluate(
      const std::vector<numeric::Rational>& point) const = 0;
  /// Upper bound on the score anywhere in `box`; +infinity is legal (never
  /// prunes), -infinity marks a box provably devoid of scoring points.
  [[nodiscard]] virtual double bound(const ParamBox& box) const = 0;
  /// Identity of the search this objective defines. Fingerprint-free
  /// checkpoints pin this JSON, so every construction parameter that
  /// changes scores, bounds, or the point-to-instance mapping must appear
  /// here — a resumed search with a different descriptor is refused.
  [[nodiscard]] virtual support::Json descriptor() const = 0;
};

/// Instance-aware algorithm resolution, shape-compatible with
/// exp::AlgorithmResolver (redeclared here so search/ stays independent of
/// the experiment layer).
using AlgorithmResolverFn = std::function<sim::AlgorithmFactory(const agents::Instance&)>;

/// Registered objective names, in presentation order.
[[nodiscard]] const std::vector<std::string>& objective_names();

/// Builds the named objective over `space`, driving `algorithm` through the
/// engine `config` as its oracle. Throws std::invalid_argument listing the
/// known names on a miss, and for family/objective mismatches: the
/// gather-tuple family pairs only with max-gather-time (and vice versa).
/// Gather searches run one *common* program on every agent — the resolver
/// is probed once with a fixed instance, so callers must pass an
/// instance-blind resolver (exp::resolve_common_algorithm enforces this at
/// the spec layer) — and reject engine r_a/r_b overrides (the model has one
/// common radius).
[[nodiscard]] std::unique_ptr<Objective> make_objective(const std::string& name,
                                                        SearchSpace space,
                                                        AlgorithmResolverFn algorithm,
                                                        sim::EngineConfig config);

}  // namespace aurv::search
