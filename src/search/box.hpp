// Exact-rational parameter boxes — the unit of work of the worst-case
// search subsystem (Section 4 of the paper, made executable).
//
// A box is an axis-aligned product of closed intervals with exact
// numeric::Rational endpoints over the searched dimensions of the
// adversary's instance-parameter space. Exactness matters twice: interval
// endpoints never drift under repeated bisection (the midpoint of a dyadic
// interval is dyadic), and a box serializes losslessly into a checkpoint,
// so a resumed search re-opens *identical* boxes and continues the same
// refinement tree.
//
// The refinement tree is canonical: every box splits at the exact midpoint
// of its widest dimension (ties broken by lowest dimension index), and a
// box's identity is its path of '0'/'1' bisection choices from the root.
// The branch-and-bound driver derives its deterministic ordering — and
// therefore the reproducibility of the whole search — from this tree, not
// from execution order (the Bobpp-style static search-tree partitioning of
// Menouer & Le Cun, arXiv:1406.2844).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "numeric/rational.hpp"
#include "support/json.hpp"

namespace aurv::search {

/// Closed interval [lo, hi] with exact rational endpoints, lo <= hi.
struct Interval {
  numeric::Rational lo;
  numeric::Rational hi;

  [[nodiscard]] numeric::Rational width() const { return hi - lo; }
  [[nodiscard]] numeric::Rational midpoint() const {
    return (lo + hi) * numeric::Rational(numeric::BigInt(1), numeric::BigInt(2));
  }
  [[nodiscard]] bool is_point() const { return lo == hi; }

  friend bool operator==(const Interval& a, const Interval& b) = default;
};

class ParamBox {
 public:
  /// `id` is the bisection path from the root ("" for the root itself);
  /// throws std::logic_error (via AURV_CHECK) if any interval has lo > hi
  /// or the id contains characters other than '0'/'1'.
  explicit ParamBox(std::vector<Interval> dims, std::string id = "");

  [[nodiscard]] const std::vector<Interval>& dims() const noexcept { return dims_; }
  [[nodiscard]] const Interval& dim(std::size_t index) const { return dims_.at(index); }
  [[nodiscard]] std::size_t dim_count() const noexcept { return dims_.size(); }

  /// The bisection path from the root; also the box's identity in logs,
  /// checkpoints and the certificate. Depth == id().size().
  [[nodiscard]] const std::string& id() const noexcept { return id_; }

  /// The dimension the canonical refinement bisects: the widest one, ties
  /// broken by lowest index.
  [[nodiscard]] std::size_t split_dimension() const;

  /// Width of the widest dimension (the box's refinement diameter).
  [[nodiscard]] numeric::Rational width() const;

  /// Canonical children: split_dimension() halved at its exact midpoint;
  /// ids are id()+"0" (lower half) and id()+"1" (upper half).
  [[nodiscard]] std::pair<ParamBox, ParamBox> bisect() const;

  /// The canonical representative point (the exact midpoint of every
  /// dimension) — what the objective oracle evaluates.
  [[nodiscard]] std::vector<numeric::Rational> midpoint() const;

  /// Lossless serialization: {"id": "...", "dims": [["lo","hi"], ...]} with
  /// exact rational strings, so checkpointed boxes reload bit-identically.
  [[nodiscard]] support::Json to_json() const;
  [[nodiscard]] static ParamBox from_json(const support::Json& json);

  friend bool operator==(const ParamBox& a, const ParamBox& b) = default;

 private:
  std::vector<Interval> dims_;
  std::string id_;
};

/// Bounds can be +/-infinity, which JSON numbers cannot hold; the
/// infinities serialize as the strings "inf"/"-inf" and finite doubles
/// round-trip exactly (shortest to_chars form). Shared by checkpoints,
/// the wave journal and spill segments so every artifact agrees.
[[nodiscard]] support::Json bound_to_json(double bound);
/// Throws support::JsonError on anything else — silently mapping garbage
/// to -inf would prune the box and still emit a "complete" certificate.
[[nodiscard]] double bound_from_json(const support::Json& json);

/// One frontier entry: a box and its (cached) objective bound — the unit
/// the branch-and-bound keeps in memory, spills to disk segments, and
/// records in checkpoints. Serialization is the box's lossless JSON plus
/// a "bound" field.
struct OpenBox {
  ParamBox box;
  double bound;

  [[nodiscard]] support::Json to_json() const;
  [[nodiscard]] static OpenBox from_json(const support::Json& json);

  friend bool operator==(const OpenBox& a, const OpenBox& b) = default;
};

/// Best-first, deterministic total order: bound descending, then the
/// refinement-tree path ascending (paths are unique, so this never ties).
struct FrontierOrder {
  bool operator()(const OpenBox& a, const OpenBox& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.box.id() < b.box.id();
  }
};

/// The OpenBox codec in the shape support::SpillDeque expects — one
/// definition shared by the branch-and-bound frontier and its tests.
struct OpenBoxCodec {
  static support::Json to_json(const OpenBox& open) { return open.to_json(); }
  static OpenBox from_json(const support::Json& json) { return OpenBox::from_json(json); }
};

}  // namespace aurv::search
