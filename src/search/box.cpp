#include "search/box.hpp"

#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace aurv::search {

using numeric::Rational;
using support::Json;

ParamBox::ParamBox(std::vector<Interval> dims, std::string id)
    : dims_(std::move(dims)), id_(std::move(id)) {
  AURV_CHECK_MSG(!dims_.empty(), "ParamBox: at least one dimension required");
  for (const Interval& dim : dims_)
    AURV_CHECK_MSG(dim.lo <= dim.hi, "ParamBox: interval with lo > hi");
  for (const char c : id_)
    AURV_CHECK_MSG(c == '0' || c == '1', "ParamBox: id must be a '0'/'1' bisection path");
}

std::size_t ParamBox::split_dimension() const {
  std::size_t best = 0;
  Rational best_width = dims_[0].width();
  for (std::size_t k = 1; k < dims_.size(); ++k) {
    Rational width = dims_[k].width();
    if (width > best_width) {  // strict: ties keep the lowest index
      best = k;
      best_width = std::move(width);
    }
  }
  return best;
}

Rational ParamBox::width() const { return dims_[split_dimension()].width(); }

std::pair<ParamBox, ParamBox> ParamBox::bisect() const {
  const std::size_t axis = split_dimension();
  const Rational mid = dims_[axis].midpoint();
  std::vector<Interval> lower = dims_;
  std::vector<Interval> upper = dims_;
  lower[axis].hi = mid;
  upper[axis].lo = mid;
  return {ParamBox(std::move(lower), id_ + "0"), ParamBox(std::move(upper), id_ + "1")};
}

std::vector<Rational> ParamBox::midpoint() const {
  std::vector<Rational> point;
  point.reserve(dims_.size());
  for (const Interval& dim : dims_) point.push_back(dim.midpoint());
  return point;
}

Json ParamBox::to_json() const {
  Json dims_json = Json::array();
  for (const Interval& dim : dims_) {
    Json pair = Json::array();
    pair.push_back(Json(dim.lo.to_string()));
    pair.push_back(Json(dim.hi.to_string()));
    dims_json.push_back(std::move(pair));
  }
  Json json = Json::object();
  json.set("id", Json(id_));
  json.set("dims", std::move(dims_json));
  return json;
}

ParamBox ParamBox::from_json(const Json& json) {
  std::vector<Interval> dims;
  for (const Json& pair : json.at("dims").as_array()) {
    const Json::Array& ends = pair.as_array();
    if (ends.size() != 2)
      throw support::JsonError("ParamBox: dimension must be a [lo, hi] pair");
    dims.push_back(Interval{Rational::from_string(ends[0].as_string()),
                            Rational::from_string(ends[1].as_string())});
  }
  return ParamBox(std::move(dims), json.at("id").as_string());
}

Json bound_to_json(double bound) {
  if (std::isinf(bound)) return Json(bound > 0 ? "inf" : "-inf");
  return Json(bound);
}

double bound_from_json(const Json& json) {
  if (json.is_string()) {
    if (json.as_string() == "inf") return std::numeric_limits<double>::infinity();
    if (json.as_string() == "-inf") return -std::numeric_limits<double>::infinity();
    throw support::JsonError("bound: expected a number, \"inf\" or \"-inf\", got \"" +
                             json.as_string() + "\"");
  }
  return json.as_number();
}

Json OpenBox::to_json() const {
  Json json = box.to_json();
  json.set("bound", bound_to_json(bound));
  return json;
}

OpenBox OpenBox::from_json(const Json& json) {
  return OpenBox{ParamBox::from_json(json), bound_from_json(json.at("bound"))};
}

}  // namespace aurv::search
