#include "search/bnb.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/jsonl.hpp"
#include "support/parallel.hpp"
#include "support/spill.hpp"
#include "support/statusd.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

namespace aurv::search {

using numeric::Rational;
using support::Json;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string dim_label(const std::vector<std::string>& names, std::size_t index) {
  if (index < names.size()) return names[index];
  std::string label = "d";  // two statements sidestep a GCC 12 -Wrestrict
  label += std::to_string(index);  // false positive on operator+(const char*, string&&)
  return label;
}

Json point_to_json(const std::vector<Rational>& point, const std::vector<std::string>& names) {
  Json json = Json::object();
  for (std::size_t k = 0; k < point.size(); ++k)
    json.set(dim_label(names, k), Json(point[k].to_string()));
  return json;
}

std::vector<Rational> point_from_json(const Json& json, const std::vector<std::string>& names,
                                      std::size_t dim_count) {
  std::vector<Rational> point;
  for (const auto& [name, value] : json.as_object()) {
    // Order in the object is dimension order; a renamed or reordered key
    // would otherwise silently permute coordinates across dimensions.
    const std::string expected = dim_label(names, point.size());
    if (name != expected)
      throw support::JsonError("point: expected dimension \"" + expected + "\", got \"" +
                               name + "\" (corrupted or hand-edited checkpoint)");
    point.push_back(Rational::from_string(value.as_string()));
  }
  if (point.size() != dim_count)
    throw support::JsonError("point: expected " + std::to_string(dim_count) +
                             " dimensions, got " + std::to_string(point.size()) +
                             " (corrupted or hand-edited checkpoint)");
  return point;
}

Json incumbent_to_json(const Incumbent& incumbent, const std::vector<std::string>& names) {
  Json json = Json::object();
  json.set("score", Json(incumbent.score));
  json.set("box", Json(incumbent.box_id));
  json.set("found_at_box", Json(incumbent.found_at_box));
  json.set("point", point_to_json(incumbent.point, names));
  json.set("evaluation", incumbent.evaluation.to_json());
  return json;
}

Incumbent incumbent_from_json(const Json& json, const std::vector<std::string>& names,
                              std::size_t dim_count) {
  Incumbent incumbent;
  incumbent.found = true;
  incumbent.score = json.at("score").as_number();
  incumbent.box_id = json.at("box").as_string();
  incumbent.found_at_box = json.at("found_at_box").as_uint();
  incumbent.point = point_from_json(json.at("point"), names, dim_count);
  incumbent.evaluation = Evaluation::from_json(json.at("evaluation"));
  return incumbent;
}

Json stats_to_json(const BnbStats& stats) {
  Json json = Json::object();
  json.set("evaluated", Json(stats.evaluated));
  json.set("pruned", Json(stats.pruned));
  json.set("branched", Json(stats.branched));
  json.set("leaves", Json(stats.leaves));
  json.set("waves", Json(stats.waves));
  json.set("max_frontier", Json(stats.max_frontier));
  json.set("improvements", Json(stats.improvements));
  return json;
}

BnbStats stats_from_json(const Json& json) {
  BnbStats stats;
  stats.evaluated = json.at("evaluated").as_uint();
  stats.pruned = json.at("pruned").as_uint();
  stats.branched = json.at("branched").as_uint();
  stats.leaves = json.at("leaves").as_uint();
  stats.waves = json.at("waves").as_uint();
  stats.max_frontier = json.at("max_frontier").as_uint();
  stats.improvements = json.at("improvements").as_uint();
  return stats;
}

/// The open frontier: in memory by default, cold tail in JSONL disk
/// segments when BnbOptions configures spilling. Pop order is identical
/// either way, so the spill mode can never change a certificate byte.
using Frontier = support::SpillDeque<OpenBox, FrontierOrder, OpenBoxCodec>;

struct SearchState {
  Frontier frontier;
  Incumbent incumbent;
  BnbStats stats;
  std::uint64_t log_bytes = 0;
  /// Journal generation: each compaction starts a fresh journal file so a
  /// kill between the base write and the old journal's removal leaves a
  /// stale file the resume path ignores by name.
  std::uint64_t generation = 0;
};

std::string journal_path(const std::string& checkpoint_path, std::uint64_t generation) {
  return checkpoint_path + ".wave." + std::to_string(generation) + ".jsonl";
}

/// Removes every sibling journal file of `checkpoint_path` except
/// `keep_filename` ("" keeps nothing — a fresh start owns no journal yet,
/// and a leftover from whatever lineage previously used this path must
/// never be mistaken for the new lineage's records). The cleanup half of
/// compaction, and the sweep that erases leftovers of a kill.
void remove_stale_journals(const std::string& checkpoint_path, const std::string& keep_filename) {
  const std::filesystem::path base(checkpoint_path);
  const std::string prefix = base.filename().string() + ".wave.";
  const std::string& keep = keep_filename;
  const std::filesystem::path dir =
      base.has_parent_path() ? base.parent_path() : std::filesystem::path(".");
  for (const std::string& name : support::vfs().list_dir(dir.string())) {
    if (name.rfind(prefix, 0) == 0 && name != keep)
      support::vfs().remove((dir / name).string());  // best-effort
  }
}

Json checkpoint_to_json(const SearchState& state, const ParamBox& root,
                        const Objective& objective, const BnbLimits& limits,
                        const BnbOptions& options) {
  Json json = Json::object();
  json.set("schema", Json(std::uint64_t{2}));
  json.set("kind", Json("search-checkpoint"));
  json.set("fingerprint", Json(options.fingerprint));
  json.set("root", root.to_json());
  json.set("objective", objective.descriptor());
  json.set("wave_size", Json(limits.wave_size));
  json.set("max_boxes", Json(limits.max_boxes));
  json.set("min_width", Json(limits.min_width.to_string()));
  json.set("min_improvement", Json(limits.min_improvement));
  json.set("incumbent_log_path", Json(options.incumbent_log_path));
  json.set("log_bytes", Json(state.log_bytes));
  json.set("generation", Json(state.generation));
  json.set("stats", stats_to_json(state.stats));
  json.set("incumbent", state.incumbent.found
                            ? incumbent_to_json(state.incumbent, options.dim_names)
                            : Json());
  json.set("frontier", state.frontier.state_to_json());
  return json;
}

SearchState checkpoint_from_json(const Json& json, const std::string& path, const ParamBox& root,
                                 const Objective& objective, const BnbLimits& limits,
                                 const BnbOptions& options,
                                 const Frontier::Config& frontier_config) {
  // "Foreign" checkpoints — written by a different search, spec or build —
  // are CheckpointErrors: structured (path + reason) so a driver can emit
  // one machine-parseable diagnostic line instead of a bare what().
  if (json.string_or("kind", "") != "search-checkpoint")
    throw support::CheckpointError(path, "not a search-checkpoint file (foreign checkpoint)");
  if (json.uint_or("schema", 0) != 2)
    throw support::CheckpointError(
        path, "schema " + std::to_string(json.uint_or("schema", 0)) +
                  " (written by a different build of the search; delete the checkpoint to "
                  "start over)");
  if (json.at("fingerprint").as_string() != options.fingerprint)
    throw support::CheckpointError(
        path,
        "search fingerprint mismatch (spec edited since the checkpoint was "
        "written; delete the checkpoint to start over)");
  // The spec fingerprint covers these for exp::run_search, but direct
  // run_bnb callers may leave it empty — guard the search identity itself
  // (root box plus the objective's full construction descriptor) so a
  // stale checkpoint can never seed a different search.
  if (!(json.at("root") == root.to_json()) ||
      !(json.at("objective") == objective.descriptor()))
    throw support::CheckpointError(
        path,
        "root box or objective mismatch with the running search (stale "
        "checkpoint from a different search; delete it to start over)");
  if (json.at("wave_size").as_uint() != limits.wave_size ||
      json.at("max_boxes").as_uint() != limits.max_boxes ||
      Rational::from_string(json.at("min_width").as_string()) != limits.min_width ||
      json.at("min_improvement").as_number() != limits.min_improvement)
    throw std::invalid_argument("checkpoint: budget mismatch with the running search");
  if (json.at("incumbent_log_path").as_string() != options.incumbent_log_path)
    throw std::invalid_argument(
        "checkpoint: --incumbent-log path differs from the original run's (\"" +
        json.at("incumbent_log_path").as_string() +
        "\"); resuming would truncate the wrong file");
  SearchState state;
  state.log_bytes = json.at("log_bytes").as_uint();
  state.generation = json.at("generation").as_uint();
  state.stats = stats_from_json(json.at("stats"));
  if (!json.at("incumbent").is_null())
    state.incumbent =
        incumbent_from_json(json.at("incumbent"), options.dim_names, root.dim_count());
  state.frontier = Frontier::from_json(json.at("frontier"), frontier_config);
  return state;
}

/// Re-applies one journaled wave's deterministic merge: pop the same
/// boxes (prune decisions recompute identically against the replayed
/// incumbent), adopt the recorded incumbent, insert the surviving
/// children, take the recorded stats — no midpoint is re-simulated.
void replay_record(SearchState& state, const Json& record,
                   const std::vector<std::string>& names, std::size_t dim_count) {
  const std::uint64_t wave = record.at("wave").as_uint();
  if (wave != state.stats.waves + 1)
    throw std::invalid_argument(
        "journal: wave " + std::to_string(wave) + " does not continue this base checkpoint "
        "(expected wave " + std::to_string(state.stats.waves + 1) +
        "; journal and checkpoint are out of sync — delete both to start over)");
  const std::uint64_t popped = record.at("popped").as_uint();
  if (popped > state.frontier.size())
    throw std::invalid_argument(
        "journal: a record pops more boxes than the frontier holds (journal and "
        "checkpoint are out of sync — delete both to start over)");
  for (std::uint64_t k = 0; k < popped; ++k) (void)state.frontier.pop_best();
  if (!record.at("incumbent").is_null())
    state.incumbent = incumbent_from_json(record.at("incumbent"), names, dim_count);
  for (const Json& child : record.at("children").as_array())
    state.frontier.insert(OpenBox::from_json(child));
  state.stats = stats_from_json(record.at("stats"));
  state.log_bytes = record.at("log_bytes").as_uint();
}

/// Replays the wave journal on top of a freshly loaded base checkpoint.
/// Returns the byte length of the journal's durable prefix (a partial or
/// torn trailing record, lost to the kill, is excluded; the sink
/// truncates it on reopen).
std::uint64_t replay_journal(SearchState& state, const std::string& path,
                             const std::vector<std::string>& names, std::size_t dim_count) {
  if (!support::vfs().exists(path)) return 0;
  const std::string data = support::vfs().read_file(path);
  std::size_t consumed = 0;
  while (true) {
    const std::size_t newline = data.find('\n', consumed);
    if (newline == std::string::npos) break;  // partial trailing record
    Json record;
    try {
      record = Json::parse(std::string_view(data).substr(consumed, newline - consumed));
    } catch (const support::JsonError&) {
      break;  // torn write at the kill point: the durable prefix ends here
    }
    // Past this point the record parsed, so a missing or mistyped field is
    // not a torn write but real corruption — refuse with the same guidance
    // as the other mismatch paths instead of leaking a bare key error.
    try {
      replay_record(state, record, names, dim_count);
    } catch (const support::JsonError& error) {
      throw std::invalid_argument(std::string("journal: malformed record (") + error.what() +
                                  "); journal and checkpoint are out of sync — delete both "
                                  "to start over");
    }
    consumed = newline + 1;
  }
  return consumed;
}

/// One line per incumbent improvement: progress counters, the box, the
/// exact point, then the full evaluation record.
std::string improvement_record(const Incumbent& incumbent,
                               const std::vector<std::string>& names) {
  Json record = Json::object();
  record.set("boxes_evaluated", Json(incumbent.found_at_box));
  record.set("box", Json(incumbent.box_id));
  record.set("point", point_to_json(incumbent.point, names));
  Json evaluation = incumbent.evaluation.to_json();
  for (auto& [key, value] : evaluation.as_object()) record.set(key, std::move(value));
  return record.dump() + "\n";
}

// ------------------------------------------------------------------------
// Prune provenance: the auditable decision journal (--provenance). Every
// record is emitted on the serialized side of the wave — assembly loop or
// in-order completion hook — so the stream is byte-identical at any
// worker count. Each record carries the wave number it is folded under
// (the next journal record's wave), which is what lets resume truncate
// the stream to the replayed wave boundary WITHOUT storing any provenance
// bookkeeping in checkpoints: checkpoint bytes are identical with the
// stream on or off.
// ------------------------------------------------------------------------

/// First line of every stream: identifies the search it belongs to.
std::string provenance_header(const std::string& fingerprint) {
  Json record = Json::object();
  record.set("kind", Json("search-provenance"));
  record.set("schema", Json(std::uint64_t{1}));
  record.set("fingerprint", Json(fingerprint));
  return record.dump() + "\n";
}

/// One decision per box: what happened to it and under which incumbent.
/// `children` (branched only) records each child's id and inserted bound —
/// the data the auditor needs to reconstruct the open frontier.
std::string decision_record(std::uint64_t wave, const std::string& box_id, const char* action,
                            double bound, std::uint64_t incumbent_seq,
                            const Json::Array* children) {
  Json record = Json::object();
  record.set("wave", Json(wave));
  record.set("box", Json(box_id));
  record.set("action", Json(action));
  record.set("bound", bound_to_json(bound));
  record.set("inc", Json(incumbent_seq));
  if (children != nullptr) record.set("children", Json(*children));
  return record.dump() + "\n";
}

/// One record per incumbent improvement: the sequence number is the
/// value decision records cite in their "inc" field.
std::string incumbent_provenance_record(std::uint64_t wave, const Incumbent& incumbent,
                                        std::uint64_t seq) {
  Json record = Json::object();
  record.set("wave", Json(wave));
  record.set("incumbent", Json(seq));
  record.set("box", Json(incumbent.box_id));
  record.set("score", Json(incumbent.score));
  record.set("at", Json(incumbent.found_at_box));
  return record.dump() + "\n";
}

/// Resume support: the byte length of the stream's prefix covering waves
/// <= `waves` (the replayed state). Everything past it belongs to waves
/// the resumed run will re-execute — and re-emit byte-identically. A torn
/// trailing line is excluded like every other durable-prefix scan.
std::uint64_t provenance_resume_offset(const std::string& path, std::uint64_t waves,
                                       const std::string& fingerprint) {
  if (!support::vfs().exists(path))
    throw std::invalid_argument(
        "provenance: " + path +
        " is missing; cannot resume --provenance without the original stream (drop "
        "--provenance, or delete the checkpoint to start over)");
  const std::string data = support::vfs().read_file(path);
  std::size_t consumed = 0;
  bool saw_header = false;
  while (true) {
    const std::size_t newline = data.find('\n', consumed);
    if (newline == std::string::npos) break;  // partial trailing record
    Json record;
    try {
      record = Json::parse(std::string_view(data).substr(consumed, newline - consumed));
    } catch (const support::JsonError&) {
      break;  // torn write at the kill point: the durable prefix ends here
    }
    if (!saw_header) {
      if (record.string_or("kind", "") != "search-provenance")
        throw std::invalid_argument("provenance: " + path +
                                    " is not a search-provenance stream; resuming would "
                                    "truncate the wrong file");
      if (record.string_or("fingerprint", "") != fingerprint)
        throw std::invalid_argument(
            "provenance: " + path +
            " belongs to a different search (fingerprint mismatch); delete it to start over");
      saw_header = true;
    } else if (record.uint_or("wave", 0) > waves) {
      break;  // first record of a wave the resumed run will re-execute
    }
    consumed = newline + 1;
  }
  if (!saw_header)
    throw std::invalid_argument("provenance: " + path +
                                " has no stream header; resuming would truncate the wrong file");
  return consumed;
}

}  // namespace

Json BnbResult::to_json() const {
  Json json = Json::object();
  json.set("incumbent", incumbent.found ? incumbent_to_json(incumbent, dim_names) : Json());
  json.set("stats", stats_to_json(stats));
  json.set("complete", Json(complete()));
  json.set("exhausted", Json(exhausted));
  json.set("budget_reached", Json(budget_reached));
  json.set("open_boxes", Json(open_boxes));
  json.set("frontier_bound", open_boxes > 0 ? bound_to_json(frontier_bound) : Json());
  if (incumbent.found && open_boxes > 0 && std::isfinite(frontier_bound))
    json.set("gap", Json(std::max(0.0, frontier_bound - incumbent.score)));
  return json;
}

BnbResult run_bnb(const ParamBox& root, const Objective& objective, const BnbLimits& limits,
                  const BnbOptions& options) {
  AURV_CHECK_MSG(limits.wave_size >= 1, "wave_size must be >= 1");
  AURV_CHECK_MSG(limits.max_boxes >= 1, "max_boxes must be >= 1");
  AURV_CHECK_MSG(options.checkpoint_every >= 1, "checkpoint_every must be >= 1");
  AURV_CHECK_MSG(options.dim_names.empty() || options.dim_names.size() == root.dim_count(),
                 "dim_names must match the root box dimensions");

  // Telemetry. Every bump below happens on the serialized side of the wave
  // (assembly loop, in-order completion hook, post-wave bookkeeping), so
  // the counter sequence — not just the totals — is shard-count-invariant.
  // Certificate stats (state.stats) are tracked independently; telemetry
  // is a read-only shadow that can never change an artifact byte.
  namespace telemetry = support::telemetry;
  telemetry::Registry& metrics = telemetry::registry();
  telemetry::Counter& waves_counter = metrics.counter("search.waves");
  telemetry::Counter& popped_counter = metrics.counter("search.popped");
  telemetry::Counter& evaluated_counter = metrics.counter("search.evaluated");
  telemetry::Counter& pruned_pop_counter = metrics.counter("search.pruned_pop");
  telemetry::Counter& pruned_spawn_counter = metrics.counter("search.pruned_spawn");
  telemetry::Counter& pruned_infeasible_counter = metrics.counter("search.pruned_infeasible");
  telemetry::Counter& branched_counter = metrics.counter("search.branched");
  telemetry::Counter& leaves_counter = metrics.counter("search.leaves");
  telemetry::Counter& improvements_counter = metrics.counter("search.improvements");
  telemetry::Gauge& frontier_open_gauge = metrics.gauge("search.frontier_open");
  telemetry::Gauge& frontier_high_water_gauge = metrics.gauge("search.frontier_high_water");
  telemetry::Gauge& frontier_spilled_gauge = metrics.gauge("search.frontier_spilled");
  telemetry::Gauge& frontier_degraded_gauge = metrics.gauge("search.frontier_degraded");
  telemetry::Timer& wave_timer = metrics.timer("search.wave");
  telemetry::Timer& checkpoint_timer = metrics.timer("search.checkpoint");

  // Live /status progress for the embedded status server: a shadow of the
  // wave-end state in relaxed atomics. Written only on the serialized
  // side (post-wave bookkeeping below), read only by the server thread —
  // it can never feed back into the search. The provider unregisters —
  // blocking on any in-flight scrape — when this frame unwinds.
  struct LiveProgress {
    std::atomic<std::uint64_t> waves{0};
    std::atomic<std::uint64_t> evaluated{0};
    std::atomic<std::uint64_t> open{0};
    std::atomic<std::uint64_t> spilled{0};
    std::atomic<bool> degraded{false};
    std::atomic<bool> incumbent_found{false};
    std::atomic<double> incumbent_score{0.0};
  } live;
  const support::statusd::ScopedProgress progress_provider("search", [&live] {
    Json progress = Json::object();
    progress.set("waves", Json(live.waves.load(std::memory_order_relaxed)));
    progress.set("evaluated", Json(live.evaluated.load(std::memory_order_relaxed)));
    progress.set("frontier_open", Json(live.open.load(std::memory_order_relaxed)));
    progress.set("frontier_spilled", Json(live.spilled.load(std::memory_order_relaxed)));
    progress.set("frontier_degraded", Json(live.degraded.load(std::memory_order_relaxed)));
    if (live.incumbent_found.load(std::memory_order_relaxed)) {
      progress.set("incumbent_score",
                   Json(live.incumbent_score.load(std::memory_order_relaxed)));
    }
    return progress;
  });

  Frontier::Config frontier_config;
  frontier_config.spill_dir = options.spill_dir;
  frontier_config.mem_capacity = options.frontier_mem;
  frontier_config.max_segments = options.spill_max_segments;
  frontier_config.degraded_capacity = options.frontier_degraded_capacity;

  const bool checkpointing = !options.checkpoint_path.empty();

  SearchState state;
  state.frontier = Frontier(frontier_config);
  bool resumed = false;
  bool root_infeasible = false;
  std::uint64_t journal_bytes = 0;
  if (options.resume && checkpointing) {
    // An explicit --resume with nothing (usable) to resume is refused with
    // a structured error instead of silently starting over: restarting
    // would overwrite the very artifacts the caller asked to extend.
    if (!support::vfs().exists(options.checkpoint_path))
      throw support::CheckpointError(
          options.checkpoint_path,
          "missing (no checkpoint at this path; run without --resume to start fresh)");
    Json checkpoint;
    try {
      checkpoint = Json::load_file(options.checkpoint_path);
    } catch (const support::JsonError& error) {
      throw support::CheckpointError(
          options.checkpoint_path,
          std::string("unreadable or truncated (") + error.what() + ")");
    }
    state = checkpoint_from_json(checkpoint, options.checkpoint_path, root, objective, limits,
                                 options, frontier_config);
    journal_bytes = replay_journal(state, journal_path(options.checkpoint_path, state.generation),
                                   options.dim_names, root.dim_count());
    resumed = true;
  } else {
    const double root_bound = objective.bound(root);
    AURV_CHECK_MSG(!std::isnan(root_bound), "objective bound must not be NaN");
    if (root_bound == -kInf) {
      ++state.stats.pruned;  // the entire space is provably scoreless
      root_infeasible = true;
      pruned_infeasible_counter.add();
    } else {
      state.frontier.insert(OpenBox{root, root_bound});
      state.stats.max_frontier = 1;
    }
  }

  // Without a checkpoint no artifact references the segment files, so they
  // are garbage the moment this invocation ends — on every exit path,
  // including an objective throwing mid-wave.
  struct FrontierJanitor {
    Frontier* frontier;
    bool active;
    ~FrontierJanitor() {
      if (active) frontier->discard_files();
    }
  } janitor{&state.frontier, !checkpointing};

  support::JsonlSink log(options.incumbent_log_path, resumed ? state.log_bytes : 0);

  // The prune-provenance stream. Fail-soft by contract: an unwritable
  // stream degrades to a counting no-op and can never perturb the search.
  const bool provenance_on = !options.provenance_path.empty();
  std::uint64_t provenance_resume = 0;
  if (provenance_on && resumed)
    provenance_resume = provenance_resume_offset(options.provenance_path, state.stats.waves,
                                                 options.fingerprint);
  support::SoftJsonlSink provenance(options.provenance_path, "provenance", provenance_resume);
  if (provenance_on && !resumed) {
    provenance.append(provenance_header(options.fingerprint));
    if (root_infeasible)
      provenance.append(decision_record(0, root.id(), "pruned-infeasible", -kInf, 0, nullptr));
  }

  // A box survives only if its bound can still beat the incumbent.
  const auto prunable = [&](double bound) {
    if (bound == -kInf) return true;
    return state.incumbent.found && bound <= state.incumbent.score + limits.min_improvement;
  };

  // Compaction: fold the journal into a fresh base checkpoint. The write
  // order is what makes a kill at any point recoverable: the new base
  // lands atomically first, and only then are the previous generation's
  // journal and the frontier's retired segment files removed — a crash in
  // between leaves stale files the resume path ignores by name.
  std::optional<support::JsonlSink> journal;
  // Records appended (or replayed) since the last base write: when false
  // the base already holds this exact state, and compacting again would
  // only rewrite identical bytes under a new generation.
  bool journal_dirty = journal_bytes > 0;
  const auto compact = [&] {
    if (!checkpointing || !journal_dirty) return;
    log.flush();
    provenance.flush();
    state.log_bytes = log.bytes();
    ++state.generation;
    {
      const telemetry::ScopedTimer time_checkpoint(checkpoint_timer);
      const support::trace::Span span("checkpoint", "search",
                                      support::trace::Span::Options{.announce = true});
      support::save_json_atomically(options.checkpoint_path,
                                    checkpoint_to_json(state, root, objective, limits, options));
    }
    metrics.counter("search.checkpoints").add();
    // The folded journal is closed and removed; the next generation's
    // file is only created when a wave actually appends to it (its
    // absence reads as "no records" on resume), so a terminal base — or
    // one a compaction-boundary stop leaves behind — never has an empty
    // journal sitting beside it.
    journal.reset();
    remove_stale_journals(
        options.checkpoint_path,
        std::filesystem::path(journal_path(options.checkpoint_path, state.generation))
            .filename()
            .string());
    state.frontier.prune_retired();
    journal_dirty = false;
  };

  // Opens the current generation's journal on first use. On a resumed
  // generation the first open truncates the replayed durable prefix's
  // torn tail (JsonlSink's resume contract); after a compaction the
  // generation is fresh and starts at zero.
  const auto journal_sink = [&]() -> support::JsonlSink& {
    if (!journal.has_value()) {
      journal.emplace(journal_path(options.checkpoint_path, state.generation), journal_bytes);
      journal_bytes = 0;
    }
    return *journal;
  };

  if (checkpointing && !resumed) {
    // Fresh start. First sweep EVERY journal leftover of whatever
    // lineage owned this path before — including its generation 0:
    // journal records carry no fingerprint, so a foreign wave.0 file
    // coexisting with our new base could be replayed onto it by a resume
    // after a kill. The sweep comes BEFORE the base write: a kill in
    // between merely costs the old lineage its replay shortcut (its base
    // re-simulates those waves to identical bytes), whereas the reverse
    // order would leave the new base beside the foreign journal. Then
    // put the generation-0 base on disk so a kill before the first
    // compaction still has a base to replay onto.
    remove_stale_journals(options.checkpoint_path, "");
    support::save_json_atomically(options.checkpoint_path,
                                  checkpoint_to_json(state, root, objective, limits, options));
  }

  // Fresh start: the spill directory is exclusively this lineage's (see
  // BnbOptions), so any segment files in it are leftovers of a crashed or
  // abandoned run — reclaim them before the first spill renumbers from 0.
  // Only now, with the generation-0 base already on disk: sweeping before
  // the overwrite would delete segments the *old* checkpoint still
  // references, bricking its resume if we died in between.
  if (!resumed && !options.spill_dir.empty()) state.frontier.sweep_orphans();

  std::uint64_t waves_this_invocation = 0;
  // Pops since the last journal record — includes boxes drained by waves
  // that pruned away entirely (those write no record of their own, so the
  // next record carries their pops; replay stays aligned).
  std::uint64_t pending_popped = 0;

  while (true) {
    if (state.stats.evaluated >= limits.max_boxes || state.frontier.empty()) break;
    if (options.max_waves > 0 && waves_this_invocation >= options.max_waves) break;

    // Provenance records emitted from here to the next completed wave are
    // folded under its journal wave number — drain-only iterations (which
    // write no journal record of their own) included, exactly like their
    // pops ride in pending_popped.
    const std::uint64_t wave_number = state.stats.waves + 1;

    // Assemble the wave: pop best-first, dropping boxes that can no longer
    // beat the incumbent. Wave size is spec-fixed — never thread-derived.
    std::vector<OpenBox> wave;
    const std::uint64_t budget_left = limits.max_boxes - state.stats.evaluated;
    const std::uint64_t target = std::min<std::uint64_t>(limits.wave_size, budget_left);
    while (wave.size() < target && !state.frontier.empty()) {
      OpenBox open = state.frontier.pop_best();
      ++pending_popped;
      popped_counter.add();
      if (prunable(open.bound)) {
        ++state.stats.pruned;
        (open.bound == -kInf ? pruned_infeasible_counter : pruned_pop_counter).add();
        if (provenance_on)
          provenance.append(decision_record(
              wave_number, open.box.id(),
              open.bound == -kInf ? "pruned-infeasible" : "pruned-pop", open.bound,
              state.stats.improvements, nullptr));
        continue;
      }
      wave.push_back(std::move(open));
    }
    // Pops diverge the in-memory state from the base even when the wave
    // comes up empty (a drain-only iteration writes no journal record);
    // without this a search *finishing* on such a drain would skip its
    // terminal compaction and leave a stale, never-terminal base behind.
    if (pending_popped > 0) journal_dirty = true;
    if (wave.empty()) continue;  // frontier drained by pruning; loop re-checks

    // Parallel part: evaluate midpoints and pre-compute child boxes/bounds.
    // Each shard writes only its own slot; all cross-shard state mutation
    // happens in the in-order completion hook below.
    struct ShardOutput {
      std::vector<Rational> point;
      Evaluation evaluation;
      std::vector<OpenBox> children;
      support::trace::TraceBuffer trace;  ///< shard-local spans, merged in order
    };
    std::vector<ShardOutput> outputs(wave.size());

    const auto body = [&](std::size_t shard) {
      ShardOutput& out = outputs[shard];
      out.trace = support::trace::TraceBuffer(static_cast<std::uint32_t>(shard + 1));
      support::trace::Span span("box", "search",
                                support::trace::Span::Options{.buffer = &out.trace});
      if (span.armed()) {
        Json args = Json::object();
        args.set("id", Json(wave[shard].box.id()));
        span.set_args(std::move(args));
      }
      out.point = wave[shard].box.midpoint();
      out.evaluation = objective.evaluate(out.point);
      if (wave[shard].box.width() > limits.min_width) {
        auto [lower, upper] = wave[shard].box.bisect();
        for (ParamBox* child : {&lower, &upper}) {
          // A child's bound never exceeds its parent's (the parent box
          // contains it), so tighten against the cached parent bound.
          const double child_bound = std::min(wave[shard].bound, objective.bound(*child));
          AURV_CHECK_MSG(!std::isnan(child_bound), "objective bound must not be NaN");
          out.children.push_back(OpenBox{std::move(*child), child_bound});
        }
      }
    };

    Json::Array wave_children;  // journal payload: children as inserted
    const std::uint64_t improvements_before = state.stats.improvements;

    const auto complete = [&](std::size_t shard) {
      ShardOutput& out = outputs[shard];
      support::trace::sink().merge(out.trace);
      ++state.stats.evaluated;
      evaluated_counter.add();
      if (!state.incumbent.found || out.evaluation.score > state.incumbent.score) {
        state.incumbent.found = true;
        state.incumbent.score = out.evaluation.score;
        state.incumbent.box_id = wave[shard].box.id();
        state.incumbent.point = std::move(out.point);
        state.incumbent.evaluation = std::move(out.evaluation);
        state.incumbent.found_at_box = state.stats.evaluated;
        ++state.stats.improvements;
        improvements_counter.add();
        log.append(improvement_record(state.incumbent, options.dim_names));
        if (provenance_on)
          provenance.append(incumbent_provenance_record(wave_number, state.incumbent,
                                                        state.stats.improvements));
      }
      if (out.children.empty()) {
        ++state.stats.leaves;
        leaves_counter.add();
        if (provenance_on)
          provenance.append(decision_record(wave_number, wave[shard].box.id(), "leaf",
                                            wave[shard].bound, state.stats.improvements,
                                            nullptr));
      } else {
        ++state.stats.branched;
        branched_counter.add();
        if (provenance_on) {
          // The branched record lists every child with its inserted bound
          // — spawn-pruned ones get their own decision record below, and
          // the remainder is exactly what the auditor reconstructs as the
          // open frontier.
          Json::Array child_entries;
          for (const OpenBox& child : out.children) {
            Json entry = Json::object();
            entry.set("box", Json(child.box.id()));
            entry.set("bound", bound_to_json(child.bound));
            child_entries.push_back(std::move(entry));
          }
          provenance.append(decision_record(wave_number, wave[shard].box.id(), "branched",
                                            wave[shard].bound, state.stats.improvements,
                                            &child_entries));
        }
        for (OpenBox& child : out.children) {
          if (prunable(child.bound)) {
            ++state.stats.pruned;
            (child.bound == -kInf ? pruned_infeasible_counter : pruned_spawn_counter).add();
            if (provenance_on)
              provenance.append(decision_record(
                  wave_number, child.box.id(),
                  child.bound == -kInf ? "pruned-infeasible" : "pruned-bound", child.bound,
                  state.stats.improvements, nullptr));
          } else {
            if (checkpointing) wave_children.push_back(child.to_json());
            state.frontier.insert(std::move(child));
          }
        }
      }
      state.stats.max_frontier =
          std::max<std::uint64_t>(state.stats.max_frontier, state.frontier.size());
    };

    support::ShardedRunOptions sharded;
    sharded.threads = options.max_shards;
    {
      const telemetry::ScopedTimer time_wave(wave_timer);
      support::trace::Span span("wave", "search",
                                support::trace::Span::Options{.announce = true});
      if (span.armed()) {
        Json args = Json::object();
        args.set("wave", Json(wave_number));
        args.set("boxes", Json(static_cast<std::uint64_t>(wave.size())));
        span.set_args(std::move(args));
      }
      support::run_sharded(wave.size(), body, complete, sharded);
    }

    ++state.stats.waves;
    ++waves_this_invocation;
    waves_counter.add();
    frontier_open_gauge.set(static_cast<std::int64_t>(state.frontier.size()));
    frontier_high_water_gauge.set_max(static_cast<std::int64_t>(state.stats.max_frontier));
    frontier_spilled_gauge.set(static_cast<std::int64_t>(state.frontier.spilled()));
    frontier_degraded_gauge.set(state.frontier.degraded() ? 1 : 0);
    live.waves.store(state.stats.waves, std::memory_order_relaxed);
    live.evaluated.store(state.stats.evaluated, std::memory_order_relaxed);
    live.open.store(state.frontier.size(), std::memory_order_relaxed);
    live.spilled.store(state.frontier.spilled(), std::memory_order_relaxed);
    live.degraded.store(state.frontier.degraded(), std::memory_order_relaxed);
    if (state.incumbent.found) {
      live.incumbent_score.store(state.incumbent.score, std::memory_order_relaxed);
      live.incumbent_found.store(true, std::memory_order_relaxed);
    }

    if (checkpointing) {
      // Delta checkpoint: flush the incumbent log (so its recorded offset
      // is durable before the record referencing it) and the provenance
      // stream (its wave-W records must be durable before the wave-W
      // journal record — a resume that replays wave W never re-emits
      // them), then append and flush this wave's journal record.
      log.flush();
      provenance.flush();
      state.log_bytes = log.bytes();
      Json record = Json::object();
      record.set("wave", Json(state.stats.waves));
      record.set("popped", Json(pending_popped));
      record.set("children", Json(std::move(wave_children)));
      record.set("incumbent", state.stats.improvements > improvements_before
                                  ? incumbent_to_json(state.incumbent, options.dim_names)
                                  : Json());
      record.set("stats", stats_to_json(state.stats));
      record.set("log_bytes", Json(state.log_bytes));
      support::JsonlSink& sink = journal_sink();
      sink.append(record.dump() + "\n");
      sink.flush();
      journal_dirty = true;
      pending_popped = 0;
      if (state.stats.waves % options.checkpoint_every == 0) compact();
    } else {
      // No checkpoint references segment files, so drained/merged ones
      // can be deleted as soon as the frontier retires them.
      state.frontier.prune_retired();
    }
    if (options.progress) options.progress(state.stats.evaluated, state.frontier.size());
  }

  // Fold the journal into a terminal base even off a compaction boundary,
  // so the next invocation resumes from exactly where this one stopped —
  // and a finished search leaves a terminal checkpoint behind.
  compact();
  provenance.flush();

  BnbResult result;
  result.incumbent = state.incumbent;
  result.stats = state.stats;
  result.exhausted = state.frontier.empty();
  result.budget_reached = state.stats.evaluated >= limits.max_boxes;
  result.open_boxes = state.frontier.size();
  const OpenBox* best = state.frontier.peek_best();
  result.frontier_bound = best == nullptr ? -kInf : best->bound;
  result.dim_names = options.dim_names;
  result.frontier_hot_high_water = state.frontier.hot_high_water();
  result.frontier_spilled = state.frontier.spilled();
  result.frontier_degraded = state.frontier.degraded();
  result.frontier_degradation = state.frontier.degradation();
  return result;
}

}  // namespace aurv::search
