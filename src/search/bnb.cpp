#include "search/bnb.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/jsonl.hpp"
#include "support/parallel.hpp"

namespace aurv::search {

using numeric::Rational;
using support::Json;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Bounds can be +/-infinity, which JSON numbers cannot hold; serialize the
/// infinities as the strings "inf"/"-inf" and round-trip doubles exactly.
Json bound_to_json(double bound) {
  if (std::isinf(bound)) return Json(bound > 0 ? "inf" : "-inf");
  return Json(bound);
}

double bound_from_json(const Json& json) {
  if (json.is_string()) {
    if (json.as_string() == "inf") return kInf;
    if (json.as_string() == "-inf") return -kInf;
    // Anything else is corruption; silently mapping it to -inf would prune
    // the box and still emit a "complete" certificate.
    throw support::JsonError("bound: expected a number, \"inf\" or \"-inf\", got \"" +
                             json.as_string() + "\"");
  }
  return json.as_number();
}

std::string dim_label(const std::vector<std::string>& names, std::size_t index) {
  if (index < names.size()) return names[index];
  std::string label = "d";  // two statements sidestep a GCC 12 -Wrestrict
  label += std::to_string(index);  // false positive on operator+(const char*, string&&)
  return label;
}

Json point_to_json(const std::vector<Rational>& point, const std::vector<std::string>& names) {
  Json json = Json::object();
  for (std::size_t k = 0; k < point.size(); ++k)
    json.set(dim_label(names, k), Json(point[k].to_string()));
  return json;
}

std::vector<Rational> point_from_json(const Json& json, const std::vector<std::string>& names,
                                      std::size_t dim_count) {
  std::vector<Rational> point;
  for (const auto& [name, value] : json.as_object()) {
    // Order in the object is dimension order; a renamed or reordered key
    // would otherwise silently permute coordinates across dimensions.
    const std::string expected = dim_label(names, point.size());
    if (name != expected)
      throw support::JsonError("point: expected dimension \"" + expected + "\", got \"" +
                               name + "\" (corrupted or hand-edited checkpoint)");
    point.push_back(Rational::from_string(value.as_string()));
  }
  if (point.size() != dim_count)
    throw support::JsonError("point: expected " + std::to_string(dim_count) +
                             " dimensions, got " + std::to_string(point.size()) +
                             " (corrupted or hand-edited checkpoint)");
  return point;
}

Json incumbent_to_json(const Incumbent& incumbent, const std::vector<std::string>& names) {
  Json json = Json::object();
  json.set("score", Json(incumbent.score));
  json.set("box", Json(incumbent.box_id));
  json.set("found_at_box", Json(incumbent.found_at_box));
  json.set("point", point_to_json(incumbent.point, names));
  json.set("evaluation", incumbent.evaluation.to_json());
  return json;
}

Incumbent incumbent_from_json(const Json& json, const std::vector<std::string>& names,
                              std::size_t dim_count) {
  Incumbent incumbent;
  incumbent.found = true;
  incumbent.score = json.at("score").as_number();
  incumbent.box_id = json.at("box").as_string();
  incumbent.found_at_box = json.at("found_at_box").as_uint();
  incumbent.point = point_from_json(json.at("point"), names, dim_count);
  incumbent.evaluation = Evaluation::from_json(json.at("evaluation"));
  return incumbent;
}

Json stats_to_json(const BnbStats& stats) {
  Json json = Json::object();
  json.set("evaluated", Json(stats.evaluated));
  json.set("pruned", Json(stats.pruned));
  json.set("branched", Json(stats.branched));
  json.set("leaves", Json(stats.leaves));
  json.set("waves", Json(stats.waves));
  json.set("max_frontier", Json(stats.max_frontier));
  json.set("improvements", Json(stats.improvements));
  return json;
}

BnbStats stats_from_json(const Json& json) {
  BnbStats stats;
  stats.evaluated = json.at("evaluated").as_uint();
  stats.pruned = json.at("pruned").as_uint();
  stats.branched = json.at("branched").as_uint();
  stats.leaves = json.at("leaves").as_uint();
  stats.waves = json.at("waves").as_uint();
  stats.max_frontier = json.at("max_frontier").as_uint();
  stats.improvements = json.at("improvements").as_uint();
  return stats;
}

/// One frontier entry: a box and its (cached) objective bound.
struct OpenBox {
  ParamBox box;
  double bound;
};

/// Best-first, deterministic total order: bound descending, then the
/// refinement-tree path ascending (paths are unique, so this never ties).
struct FrontierOrder {
  bool operator()(const OpenBox& a, const OpenBox& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.box.id() < b.box.id();
  }
};

using Frontier = std::set<OpenBox, FrontierOrder>;

struct SearchState {
  Frontier frontier;
  Incumbent incumbent;
  BnbStats stats;
  std::uint64_t log_bytes = 0;
};

Json checkpoint_to_json(const SearchState& state, const ParamBox& root,
                        const Objective& objective, const BnbLimits& limits,
                        const BnbOptions& options) {
  Json json = Json::object();
  json.set("schema", Json(std::uint64_t{1}));
  json.set("kind", Json("search-checkpoint"));
  json.set("fingerprint", Json(options.fingerprint));
  json.set("root", root.to_json());
  json.set("objective", objective.descriptor());
  json.set("wave_size", Json(limits.wave_size));
  json.set("max_boxes", Json(limits.max_boxes));
  json.set("min_width", Json(limits.min_width.to_string()));
  json.set("min_improvement", Json(limits.min_improvement));
  json.set("incumbent_log_path", Json(options.incumbent_log_path));
  json.set("log_bytes", Json(state.log_bytes));
  json.set("stats", stats_to_json(state.stats));
  json.set("incumbent", state.incumbent.found
                            ? incumbent_to_json(state.incumbent, options.dim_names)
                            : Json());
  Json frontier_json = Json::array();
  for (const OpenBox& open : state.frontier) {
    Json entry = open.box.to_json();
    entry.set("bound", bound_to_json(open.bound));
    frontier_json.push_back(std::move(entry));
  }
  json.set("frontier", std::move(frontier_json));
  return json;
}

SearchState checkpoint_from_json(const Json& json, const ParamBox& root,
                                 const Objective& objective, const BnbLimits& limits,
                                 const BnbOptions& options) {
  if (json.string_or("kind", "") != "search-checkpoint")
    throw std::invalid_argument("checkpoint: not a search-checkpoint file");
  if (json.at("fingerprint").as_string() != options.fingerprint)
    throw std::invalid_argument(
        "checkpoint: search fingerprint mismatch (spec edited since the checkpoint was "
        "written; delete the checkpoint to start over)");
  // The spec fingerprint covers these for exp::run_search, but direct
  // run_bnb callers may leave it empty — guard the search identity itself
  // (root box plus the objective's full construction descriptor) so a
  // stale checkpoint can never seed a different search.
  if (!(json.at("root") == root.to_json()) ||
      !(json.at("objective") == objective.descriptor()))
    throw std::invalid_argument(
        "checkpoint: root box or objective mismatch with the running search (stale "
        "checkpoint from a different search; delete it to start over)");
  if (json.at("wave_size").as_uint() != limits.wave_size ||
      json.at("max_boxes").as_uint() != limits.max_boxes ||
      Rational::from_string(json.at("min_width").as_string()) != limits.min_width ||
      json.at("min_improvement").as_number() != limits.min_improvement)
    throw std::invalid_argument("checkpoint: budget mismatch with the running search");
  if (json.at("incumbent_log_path").as_string() != options.incumbent_log_path)
    throw std::invalid_argument(
        "checkpoint: --incumbent-log path differs from the original run's (\"" +
        json.at("incumbent_log_path").as_string() +
        "\"); resuming would truncate the wrong file");
  SearchState state;
  state.log_bytes = json.at("log_bytes").as_uint();
  state.stats = stats_from_json(json.at("stats"));
  if (!json.at("incumbent").is_null())
    state.incumbent =
        incumbent_from_json(json.at("incumbent"), options.dim_names, root.dim_count());
  for (const Json& entry : json.at("frontier").as_array()) {
    state.frontier.insert(
        OpenBox{ParamBox::from_json(entry), bound_from_json(entry.at("bound"))});
  }
  return state;
}

/// One line per incumbent improvement: progress counters, the box, the
/// exact point, then the full evaluation record.
std::string improvement_record(const Incumbent& incumbent,
                               const std::vector<std::string>& names) {
  Json record = Json::object();
  record.set("boxes_evaluated", Json(incumbent.found_at_box));
  record.set("box", Json(incumbent.box_id));
  record.set("point", point_to_json(incumbent.point, names));
  Json evaluation = incumbent.evaluation.to_json();
  for (auto& [key, value] : evaluation.as_object()) record.set(key, std::move(value));
  return record.dump() + "\n";
}

}  // namespace

Json BnbResult::to_json() const {
  Json json = Json::object();
  json.set("incumbent", incumbent.found ? incumbent_to_json(incumbent, dim_names) : Json());
  json.set("stats", stats_to_json(stats));
  json.set("complete", Json(complete()));
  json.set("exhausted", Json(exhausted));
  json.set("budget_reached", Json(budget_reached));
  json.set("open_boxes", Json(open_boxes));
  json.set("frontier_bound", open_boxes > 0 ? bound_to_json(frontier_bound) : Json());
  if (incumbent.found && open_boxes > 0 && std::isfinite(frontier_bound))
    json.set("gap", Json(std::max(0.0, frontier_bound - incumbent.score)));
  return json;
}

BnbResult run_bnb(const ParamBox& root, const Objective& objective, const BnbLimits& limits,
                  const BnbOptions& options) {
  AURV_CHECK_MSG(limits.wave_size >= 1, "wave_size must be >= 1");
  AURV_CHECK_MSG(limits.max_boxes >= 1, "max_boxes must be >= 1");
  AURV_CHECK_MSG(options.checkpoint_every >= 1, "checkpoint_every must be >= 1");
  AURV_CHECK_MSG(options.dim_names.empty() || options.dim_names.size() == root.dim_count(),
                 "dim_names must match the root box dimensions");

  SearchState state;
  bool resumed = false;
  if (options.resume && !options.checkpoint_path.empty() &&
      std::filesystem::exists(options.checkpoint_path)) {
    state = checkpoint_from_json(Json::load_file(options.checkpoint_path), root, objective,
                                 limits, options);
    resumed = true;
  } else {
    const double root_bound = objective.bound(root);
    AURV_CHECK_MSG(!std::isnan(root_bound), "objective bound must not be NaN");
    if (root_bound == -kInf) {
      ++state.stats.pruned;  // the entire space is provably scoreless
    } else {
      state.frontier.insert(OpenBox{root, root_bound});
      state.stats.max_frontier = 1;
    }
  }

  support::JsonlSink log(options.incumbent_log_path, resumed ? state.log_bytes : 0);

  // A box survives only if its bound can still beat the incumbent.
  const auto prunable = [&](double bound) {
    if (bound == -kInf) return true;
    return state.incumbent.found && bound <= state.incumbent.score + limits.min_improvement;
  };

  const auto write_checkpoint = [&] {
    if (options.checkpoint_path.empty()) return;
    log.flush();
    state.log_bytes = log.bytes();
    support::save_json_atomically(options.checkpoint_path,
                                  checkpoint_to_json(state, root, objective, limits, options));
  };

  std::uint64_t waves_this_invocation = 0;

  while (true) {
    if (state.stats.evaluated >= limits.max_boxes || state.frontier.empty()) break;
    if (options.max_waves > 0 && waves_this_invocation >= options.max_waves) break;

    // Assemble the wave: pop best-first, dropping boxes that can no longer
    // beat the incumbent. Wave size is spec-fixed — never thread-derived.
    std::vector<OpenBox> wave;
    const std::uint64_t budget_left = limits.max_boxes - state.stats.evaluated;
    const std::uint64_t target = std::min<std::uint64_t>(limits.wave_size, budget_left);
    while (wave.size() < target && !state.frontier.empty()) {
      OpenBox open = *state.frontier.begin();
      state.frontier.erase(state.frontier.begin());
      if (prunable(open.bound)) {
        ++state.stats.pruned;
        continue;
      }
      wave.push_back(std::move(open));
    }
    if (wave.empty()) continue;  // frontier drained by pruning; loop re-checks

    // Parallel part: evaluate midpoints and pre-compute child boxes/bounds.
    // Each shard writes only its own slot; all cross-shard state mutation
    // happens in the in-order completion hook below.
    struct ShardOutput {
      std::vector<Rational> point;
      Evaluation evaluation;
      std::vector<OpenBox> children;
    };
    std::vector<ShardOutput> outputs(wave.size());

    const auto body = [&](std::size_t shard) {
      ShardOutput& out = outputs[shard];
      out.point = wave[shard].box.midpoint();
      out.evaluation = objective.evaluate(out.point);
      if (wave[shard].box.width() > limits.min_width) {
        auto [lower, upper] = wave[shard].box.bisect();
        for (ParamBox* child : {&lower, &upper}) {
          // A child's bound never exceeds its parent's (the parent box
          // contains it), so tighten against the cached parent bound.
          const double child_bound = std::min(wave[shard].bound, objective.bound(*child));
          AURV_CHECK_MSG(!std::isnan(child_bound), "objective bound must not be NaN");
          out.children.push_back(OpenBox{std::move(*child), child_bound});
        }
      }
    };

    const auto complete = [&](std::size_t shard) {
      ShardOutput& out = outputs[shard];
      ++state.stats.evaluated;
      if (!state.incumbent.found || out.evaluation.score > state.incumbent.score) {
        state.incumbent.found = true;
        state.incumbent.score = out.evaluation.score;
        state.incumbent.box_id = wave[shard].box.id();
        state.incumbent.point = std::move(out.point);
        state.incumbent.evaluation = std::move(out.evaluation);
        state.incumbent.found_at_box = state.stats.evaluated;
        ++state.stats.improvements;
        log.append(improvement_record(state.incumbent, options.dim_names));
      }
      if (out.children.empty()) {
        ++state.stats.leaves;
      } else {
        ++state.stats.branched;
        for (OpenBox& child : out.children) {
          if (prunable(child.bound)) {
            ++state.stats.pruned;
          } else {
            state.frontier.insert(std::move(child));
          }
        }
      }
      state.stats.max_frontier =
          std::max<std::uint64_t>(state.stats.max_frontier, state.frontier.size());
    };

    support::ShardedRunOptions sharded;
    sharded.threads = options.max_shards;
    support::run_sharded(wave.size(), body, complete, sharded);

    ++state.stats.waves;
    ++waves_this_invocation;
    if (options.progress) options.progress(state.stats.evaluated, state.frontier.size());
    if (!options.checkpoint_path.empty() && state.stats.waves % options.checkpoint_every == 0)
      write_checkpoint();
  }

  // Persist the frontier even off a checkpoint_every boundary, so the next
  // invocation resumes from exactly where this one stopped — and so a
  // finished search leaves a terminal checkpoint behind.
  write_checkpoint();

  BnbResult result;
  result.incumbent = state.incumbent;
  result.stats = state.stats;
  result.exhausted = state.frontier.empty();
  result.budget_reached = state.stats.evaluated >= limits.max_boxes;
  result.open_boxes = state.frontier.size();
  result.frontier_bound = state.frontier.empty() ? -kInf : state.frontier.begin()->bound;
  result.dim_names = options.dim_names;
  return result;
}

}  // namespace aurv::search
