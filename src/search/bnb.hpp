// Deterministic parallel branch-and-bound over the adversary's parameter
// space.
//
// The search proceeds in *waves* over a best-first frontier of parameter
// boxes ordered by (bound desc, refinement-tree id asc). Each wave pops a
// spec-fixed number of boxes (wave_size — never a function of the thread
// count), evaluates their canonical midpoints in parallel through
// support::run_sharded (one box = one shard), and merges the outcomes in
// strict shard order: incumbent updates, pruning decisions and child
// insertions all happen in that deterministic merge, so the incumbent
// sequence, the pruning statistics and the final certificate are
// byte-identical at any worker count — the Bobpp-style static search-tree
// partitioning discipline (Menouer & Le Cun, arXiv:1406.2844), with the
// objective's box bound playing the role Bounded Dijkstra's cost bound
// plays in search-space pruning (Van Bemten et al., arXiv:1903.00436).
//
// Pruning: a box whose bound cannot beat the incumbent by more than
// min_improvement is discarded when popped or when spawned; a box whose
// bound is -infinity (e.g. provably infeasible under Theorem 3.1) is
// discarded even without an incumbent. Boxes narrower than min_width are
// evaluated but not branched (leaves). The run ends when the frontier is
// empty (exhausted — the certificate then proves global optimality up to
// min_improvement and leaf resolution) or when max_boxes evaluations are
// spent (the certificate reports the residual frontier bound instead: no
// open box can beat the incumbent by more than frontier_bound - score).
//
// Frontier scaling: the open frontier lives in a support::SpillDeque —
// by default fully in memory, but with a spill directory and a hot-set
// capacity the cold tail of the bound-ordered frontier moves to
// append-only JSONL segment files (exact-rational boxes, lossless), so
// million-box frontiers no longer have to fit in RAM. The pop sequence
// of the spilled deque is element-for-element the in-memory sequence, so
// spilling can never change a certificate byte.
//
// Checkpoint/resume is delta-based: a *base* checkpoint (exact-rational
// hot frontier + segment-file references + incumbent + statistics +
// incumbent-log offset) plus an append-only *wave journal* — one JSONL
// record per wave holding the pop count, the surviving children and the
// incumbent/stat deltas. Resume loads the base, replays the journal
// (re-applying each wave's merge without re-simulating a single box) and
// continues the identical wave sequence. Every checkpoint_every waves
// the journal is *compacted* into a fresh base; the write order (new
// base first, then journal/segment cleanup) makes a kill at any point —
// including mid-compaction — recoverable to the same bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "numeric/rational.hpp"
#include "search/box.hpp"
#include "search/objective.hpp"
#include "support/json.hpp"

namespace aurv::search {

/// Spec-side knobs (fingerprinted: changing any of them is a different
/// search, and a checkpoint will refuse to resume across the change).
struct BnbLimits {
  /// Evaluation budget: total midpoint simulations across all invocations.
  std::uint64_t max_boxes = 4096;
  /// Boxes per deterministic wave (the unit of parallel execution and of
  /// checkpointing). Must be >= 1.
  std::uint64_t wave_size = 32;
  /// Boxes whose widest dimension is <= min_width are leaves.
  numeric::Rational min_width = numeric::Rational(numeric::BigInt(1), numeric::BigInt(1024));
  /// A box survives only if its bound exceeds incumbent + min_improvement.
  double min_improvement = 0.0;
};

/// Invocation-side knobs (none of them may change the search result).
struct BnbOptions {
  /// Worker cap for each wave; 0 picks hardware concurrency. Results are
  /// byte-identical at any value.
  std::size_t max_shards = 0;

  /// JSONL stream of incumbent improvements, in deterministic merge order.
  /// Empty = off.
  std::string incumbent_log_path;

  /// Opt-in prune-provenance stream (JSONL): a header record, then one
  /// decision record per popped box — canonical path id, action in
  /// {branched, leaf, pruned-infeasible, pruned-bound, pruned-pop}, the
  /// interval bound, and the incumbent sequence number at decision time —
  /// plus one record per incumbent improvement and per spawn-pruned
  /// child. Emitted on the serialized side of every wave, so the stream
  /// is byte-identical at any worker count and across checkpoint/resume
  /// (records carry their wave number; resume truncates to the replayed
  /// wave boundary — the stream needs no checkpoint bookkeeping, keeping
  /// checkpoints byte-identical with provenance on or off). A persistent
  /// write failure degrades the stream soft (`provenance.dropped` ticks,
  /// the run continues untouched). scripts/provenance_report.py replays
  /// and audits the stream against the certificate. Empty = off.
  std::string provenance_path;

  /// Base-checkpoint file enabling resume; the per-wave journal rides
  /// beside it as "<checkpoint_path>.wave.<generation>.jsonl". Empty = off.
  std::string checkpoint_path;
  /// Compact the wave journal into a fresh base checkpoint every this
  /// many completed waves (>= 1). The journal itself is appended (and
  /// flushed) after *every* wave, so a kill loses at most the wave in
  /// flight regardless of this cadence.
  std::size_t checkpoint_every = 16;
  /// Continue from checkpoint_path. A missing, unreadable/truncated or
  /// foreign (different search) checkpoint is refused with a
  /// support::CheckpointError naming the path and the reason — an
  /// explicit resume silently restarting from scratch would lie about
  /// what the artifacts contain.
  bool resume = false;

  /// Spill-to-disk frontier: directory for cold-tail segment files.
  /// Empty = keep the whole frontier in memory. Invocation-side: a
  /// spilled and an in-memory run produce byte-identical artifacts.
  /// The directory belongs to this search alone (like checkpoint_path):
  /// fresh starts and resumes reclaim every segment file the current
  /// state does not reference, so concurrent searches need distinct
  /// directories.
  std::string spill_dir;
  /// Max open boxes held in memory (0 = unbounded); nonzero requires
  /// spill_dir. Never changes the result, only where the frontier lives.
  std::size_t frontier_mem = 0;
  /// Open segment-file cap before the spill store k-way-merges them into
  /// one sorted run (>= 1).
  std::size_t spill_max_segments = 8;
  /// Hot-frontier bound while the spill store is *degraded* (spill dir
  /// unwritable or full): past it the run fails with a structured error
  /// instead of growing without limit. 0 = unbounded in-memory fallback.
  /// Invocation-side like the rest: degradation never changes the
  /// certificate, only whether the run can finish.
  std::size_t frontier_degraded_capacity = 0;

  /// Stop after this many waves in *this* invocation (0 = run to the end);
  /// with a checkpoint this yields incremental execution.
  std::size_t max_waves = 0;

  /// Identity of the search this run belongs to (e.g. the spec fingerprint,
  /// in hex); stored in the checkpoint and validated on resume so a resumed
  /// run cannot silently continue a different search.
  std::string fingerprint;

  /// Dimension names for logs/certificate (point values are labeled with
  /// these); must match the root box's dimension count when non-empty.
  std::vector<std::string> dim_names;

  /// Progress hook, called serialized after each wave with
  /// (boxes_evaluated, frontier_size).
  std::function<void(std::uint64_t, std::uint64_t)> progress;
};

struct BnbStats {
  std::uint64_t evaluated = 0;      ///< midpoint simulations performed
  std::uint64_t pruned = 0;         ///< boxes discarded by bound (pop or spawn)
  std::uint64_t branched = 0;       ///< boxes split into two children
  std::uint64_t leaves = 0;         ///< boxes at min_width, evaluated only
  std::uint64_t waves = 0;          ///< deterministic waves completed
  std::uint64_t max_frontier = 0;   ///< high-water mark of open boxes
  std::uint64_t improvements = 0;   ///< incumbent updates (log records)

  friend bool operator==(const BnbStats& a, const BnbStats& b) = default;
};

struct Incumbent {
  bool found = false;
  double score = 0.0;
  std::string box_id;                          ///< refinement-tree path
  std::vector<numeric::Rational> point;        ///< exact midpoint coordinates
  Evaluation evaluation;
  std::uint64_t found_at_box = 0;              ///< evaluation count when found
};

struct BnbResult {
  Incumbent incumbent;
  BnbStats stats;

  bool exhausted = false;       ///< frontier emptied: optimality certificate
  bool budget_reached = false;  ///< max_boxes spent
  /// Neither flag set: stopped early by max_waves (resume to continue).
  [[nodiscard]] bool complete() const noexcept { return exhausted || budget_reached; }

  std::uint64_t open_boxes = 0;   ///< frontier size at stop
  /// Max bound over the remaining frontier (the certificate's residual:
  /// nothing unexplored can score above this). -infinity when exhausted.
  double frontier_bound = 0.0;

  /// Dimension labels for the certificate (copied from BnbOptions).
  std::vector<std::string> dim_names;

  /// Invocation-side frontier observability — deliberately NOT part of
  /// the certificate: a spilled and an in-memory run of the same search
  /// report different values here while producing identical certificates.
  std::uint64_t frontier_hot_high_water = 0;  ///< max boxes resident in memory
  std::uint64_t frontier_spilled = 0;         ///< boxes written to disk segments
  /// True when a persistent spill-write failure demoted the frontier to
  /// in-memory mode mid-run; the certificate is still byte-identical.
  bool frontier_degraded = false;
  /// The first failure behind the demotion ("" when healthy).
  std::string frontier_degradation;

  /// The certificate body: incumbent, stats, frontier residual. Depends
  /// only on (spec, limits) — not on worker count, interruption pattern
  /// or spill configuration.
  [[nodiscard]] support::Json to_json() const;
};

/// Runs (or resumes) the branch-and-bound from `root` under `objective`.
/// Throws std::invalid_argument for option/checkpoint mismatches; exceptions
/// from the objective propagate deterministically (lowest shard of the
/// failing wave first).
[[nodiscard]] BnbResult run_bnb(const ParamBox& root, const Objective& objective,
                                const BnbLimits& limits, const BnbOptions& options = {});

}  // namespace aurv::search
